// Extended simulator coverage: kernel cost relationships, scale
// invariances, custom cost weights, and hand-computed small cases.
#include <gtest/gtest.h>

#include "core/heuristic.hpp"
#include "dist/kalinov_lastovetsky.hpp"
#include "dist/panel_distribution.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace hetgrid {
namespace {

Machine machine_of(CycleTimeGrid g, NetworkModel net = NetworkModel::free()) {
  return Machine{std::move(g), net};
}

// ----------------------------------------------------- scale invariance

class SimScaleInvariance : public ::testing::TestWithParam<double> {};

TEST_P(SimScaleInvariance, CycleTimeScalingScalesComputeLinearly) {
  const double s = GetParam();
  Rng rng(7);
  const std::vector<double> pool = rng.cycle_times(4, 0.1);
  std::vector<double> scaled(pool);
  for (double& t : scaled) t *= s;

  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const SimReport base =
      simulate_mmm(machine_of(CycleTimeGrid(2, 2, pool)), d, 8);
  const SimReport sc =
      simulate_mmm(machine_of(CycleTimeGrid(2, 2, scaled)), d, 8);
  EXPECT_NEAR(sc.compute_time, s * base.compute_time,
              1e-9 * sc.compute_time);
  EXPECT_NEAR(sc.perfect_compute_bound, s * base.perfect_compute_bound,
              1e-9 * sc.perfect_compute_bound);
  // Slowdown ratio is scale-free.
  EXPECT_NEAR(sc.slowdown_vs_perfect(), base.slowdown_vs_perfect(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Scales, SimScaleInvariance,
                         ::testing::Values(0.5, 2.0, 10.0));

TEST(SimScale, MmmComputeGrowsCubically) {
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const Machine m = machine_of(CycleTimeGrid(2, 2, {1, 1, 1, 1}));
  const double t8 = simulate_mmm(m, d, 8).compute_time;
  const double t16 = simulate_mmm(m, d, 16).compute_time;
  EXPECT_NEAR(t16 / t8, 8.0, 1e-9);  // (16/8)^3
}

TEST(SimScale, LuComputeGrowsCubically) {
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const Machine m = machine_of(CycleTimeGrid(2, 2, {1, 1, 1, 1}));
  const double t8 = simulate_lu(m, d, 8).compute_time;
  const double t16 = simulate_lu(m, d, 16).compute_time;
  // Asymptotically 8x; small-n lower-order terms push it slightly below.
  EXPECT_GT(t16 / t8, 6.5);
  EXPECT_LT(t16 / t8, 8.5);
}

// ----------------------------------------------------- kernel relations

TEST(SimKernels, CholeskyIsRoughlyHalfOfLu) {
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const Machine m = machine_of(CycleTimeGrid(2, 2, {1, 1, 1, 1}));
  const double lu = simulate_lu(m, d, 32).compute_time;
  const double ch = simulate_cholesky(m, d, 32).compute_time;
  EXPECT_GT(ch, 0.35 * lu);
  EXPECT_LT(ch, 0.75 * lu);
}

TEST(SimKernels, QrIsRoughlyTwiceLu) {
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const Machine m = machine_of(CycleTimeGrid(2, 2, {1, 1, 1, 1}));
  const double lu = simulate_lu(m, d, 32).compute_time;
  const double qr = simulate_qr(m, d, 32).compute_time;
  EXPECT_GT(qr, 1.5 * lu);
  EXPECT_LT(qr, 3.0 * lu);
}

TEST(SimKernels, CustomCostsScaleReports) {
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const Machine m = machine_of(CycleTimeGrid(2, 2, {1, 2, 3, 6}));
  KernelCosts doubled;
  doubled.update = 2.0;
  const double base = simulate_mmm(m, d, 8).compute_time;
  const double two = simulate_mmm(m, d, 8, doubled).compute_time;
  EXPECT_NEAR(two, 2.0 * base, 1e-9);
}

TEST(SimKernels, MmmBusySumsToTotalWorkVolume) {
  Rng rng(9);
  const CycleTimeGrid g(2, 3, rng.cycle_times(6, 0.1));
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 3);
  const std::size_t nb = 12;
  const SimReport rep = simulate_mmm(machine_of(g), d, nb);
  // Sum over processors of busy / t equals the number of block updates.
  double updates = 0.0;
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      updates += rep.busy[i * 3 + j] / g(i, j);
  EXPECT_NEAR(updates, static_cast<double>(nb * nb * nb), 1e-6);
}

TEST(SimKernels, LuBusySumsToTotalWorkVolume) {
  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const std::size_t nb = 10;
  const SimReport rep = simulate_lu(machine_of(g), d, nb);
  double weighted_ops = 0.0;
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j)
      weighted_ops += rep.busy[i * 2 + j] / g(i, j);
  // Volume: sum_k [ (nb-k)*0.5 panel + (nb-k-1)*0.5 trsm + (nb-k-1)^2 ].
  double expect = 0.0;
  for (std::size_t k = 0; k < nb; ++k) {
    const double rest = static_cast<double>(nb - k - 1);
    expect += 0.5 * static_cast<double>(nb - k) + 0.5 * rest + rest * rest;
  }
  EXPECT_NEAR(weighted_ops, expect, 1e-6);
}

// ----------------------------------------------------- communication

TEST(SimComm, FreeNetworkMeansZeroCommEverywhere) {
  const CycleTimeGrid g(3, 3, std::vector<double>(9, 0.3));
  const PanelDistribution d = PanelDistribution::block_cyclic(3, 3);
  for (auto sim : {simulate_mmm, simulate_lu, simulate_qr,
                   simulate_cholesky}) {
    KernelCosts costs;
    const SimReport rep = sim(machine_of(g), d, 9, costs, nullptr);
    EXPECT_DOUBLE_EQ(rep.comm_time, 0.0);
  }
}

TEST(SimComm, LatencyOnlyNetworkChargesPerBroadcast) {
  // latency 1, zero bandwidth cost, 2x2 homogeneous, nb=4, MMM: per step
  // one horizontal + one vertical broadcast on the critical path
  // (switched: max over rows/cols) -> comm = nb * 2 * latency.
  NetworkModel net{Topology::kSwitched, 1.0, 0.0, true};
  const CycleTimeGrid g(2, 2, std::vector<double>(4, 1.0));
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const SimReport rep = simulate_mmm(machine_of(g, net), d, 4);
  EXPECT_DOUBLE_EQ(rep.comm_time, 4.0 * 2.0);
}

TEST(SimComm, EthernetSumsOverRings) {
  NetworkModel sw{Topology::kSwitched, 1.0, 0.0, true};
  NetworkModel eth{Topology::kEthernet, 1.0, 0.0, true};
  const CycleTimeGrid g(3, 3, std::vector<double>(9, 1.0));
  const PanelDistribution d = PanelDistribution::block_cyclic(3, 3);
  const double c_sw = simulate_mmm(machine_of(g, sw), d, 3).comm_time;
  const double c_eth = simulate_mmm(machine_of(g, eth), d, 3).comm_time;
  // Switched: per step max over 3 rows + max over 3 cols = 2; Ethernet:
  // 3 + 3 = 6.
  EXPECT_NEAR(c_eth / c_sw, 3.0, 1e-9);
}

TEST(SimComm, KalinovLastovetskyCommVariesPerStep) {
  // Under K-L the A panel's per-row block counts depend on the step's
  // column owner, so per-step comm is not constant; the simulator must
  // still produce a finite, positive total.
  const CycleTimeGrid g(2, 2, {1, 2, 3, 5});
  const KalinovLastovetskyDistribution kl(g, {4, 7}, 61);
  NetworkModel net{Topology::kSwitched, 1e-3, 1e-3, true};
  const SimReport rep = simulate_mmm(machine_of(g, net), kl, 56);
  EXPECT_GT(rep.comm_time, 0.0);
  EXPECT_DOUBLE_EQ(rep.total_time, rep.compute_time + rep.comm_time);
}

// ----------------------------------------------------- hand-computed

TEST(SimHand, Mmm1x1SingleProcessor) {
  const CycleTimeGrid g(1, 1, {0.25});
  const PanelDistribution d = PanelDistribution::block_cyclic(1, 1);
  const SimReport rep = simulate_mmm(machine_of(g), d, 4);
  // 4 steps x 16 blocks x 0.25 = 16; no communication possible.
  EXPECT_DOUBLE_EQ(rep.total_time, 16.0);
  EXPECT_DOUBLE_EQ(rep.comm_time, 0.0);
  EXPECT_NEAR(rep.average_utilization(), 1.0, 1e-12);
}

TEST(SimHand, CholeskyNb1IsJustTheDiagonalFactor) {
  const CycleTimeGrid g(1, 1, {2.0});
  const PanelDistribution d = PanelDistribution::block_cyclic(1, 1);
  const SimReport rep = simulate_cholesky(machine_of(g), d, 1);
  EXPECT_DOUBLE_EQ(rep.compute_time, 2.0 * 0.5);  // chol_factor weight
}

// ----------------------------------------------------- step traces

TEST(SimTrace, StepRecordsSumToReportTotals) {
  Rng rng(31);
  const CycleTimeGrid g(2, 2, rng.cycle_times(4, 0.1));
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  NetworkModel net{Topology::kSwitched, 1e-3, 1e-3, true};
  for (auto sim : {simulate_mmm, simulate_lu, simulate_qr,
                   simulate_cholesky}) {
    KernelCosts costs;
    const SimReport rep = sim(machine_of(g, net), d, 10, costs, nullptr);
    ASSERT_EQ(rep.steps.size(), 10u) << rep.kernel;
    double compute = 0.0, comm = 0.0;
    for (const StepRecord& s : rep.steps) {
      compute += s.panel + s.row + s.update;
      comm += s.comm;
    }
    EXPECT_NEAR(compute, rep.compute_time, 1e-9) << rep.kernel;
    EXPECT_NEAR(comm, rep.comm_time, 1e-9) << rep.kernel;
  }
}

TEST(SimTrace, FactorizationStepsShrinkTowardsTheEnd) {
  const CycleTimeGrid g(2, 2, std::vector<double>(4, 1.0));
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const SimReport rep = simulate_lu(machine_of(g), d, 16);
  // The trailing update dominates early and vanishes at the last step.
  EXPECT_GT(rep.steps.front().update, rep.steps.back().update);
  EXPECT_DOUBLE_EQ(rep.steps.back().update, 0.0);
  EXPECT_GT(rep.steps.back().panel, 0.0);
}

TEST(SimTrace, MmmStepsAreUniform) {
  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const SimReport rep = simulate_mmm(machine_of(g), d, 8);
  for (const StepRecord& s : rep.steps) {
    EXPECT_DOUBLE_EQ(s.update, rep.steps.front().update);
    EXPECT_DOUBLE_EQ(s.panel, 0.0);
    EXPECT_DOUBLE_EQ(s.row, 0.0);
  }
}

TEST(SimHand, LuTwoStepsHeterogeneous) {
  // Grid {1,2;3,6}, block-cyclic, nb=2, free network.
  // k=0: panel rows {0,1} col 0: max(1*1, 1*3)*0.5 = 1.5;
  //      row panel (0,1): 1 block * t(0,1)=2 * 0.5 = 1.0;
  //      trailing (1,1): 1 block * 6 = 6.  Step = 8.5.
  // k=1: panel (1,1): 1 block * 6 * 0.5 = 3.  Total = 11.5.
  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const SimReport rep = simulate_lu(machine_of(g), d, 2);
  EXPECT_DOUBLE_EQ(rep.compute_time, 11.5);
}

}  // namespace
}  // namespace hetgrid
