// Tests for the placement service (doc/server.md): wire protocol
// round-trips and typed decode errors, Theorem-1 canonicalization
// properties (permutation and power-of-two scale equivalence), the
// monotone cache-upgrade guarantee, deadline fallback with async exact
// refinement, batch admission, concurrent loopback bit-identity, and the
// TCP / unix-domain socket round trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <thread>
#include <vector>

#include "core/arrangement.hpp"
#include "core/heuristic.hpp"
#include "obs/imbalance.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/solution_cache.hpp"
#include "util/rng.hpp"

namespace hetgrid::serve {
namespace {

PlacementRequest make_request(std::size_t p, std::size_t q,
                              std::vector<double> times,
                              Mode mode = Mode::kAuto,
                              std::uint64_t deadline_us = 0) {
  PlacementRequest req;
  req.p = static_cast<std::uint16_t>(p);
  req.q = static_cast<std::uint16_t>(q);
  req.mode = mode;
  req.deadline_us = deadline_us;
  req.times = std::move(times);
  return req;
}

// ---------------------------------------------------------------------------
// Wire protocol.

TEST(Protocol, RequestRoundTrip) {
  const PlacementRequest req =
      make_request(2, 3, {1, 2, 3, 4.5, 5, 6}, Mode::kExact, 12345);
  const Decoded d = decode_payload(encode_request(req));
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d.type, MsgType::kRequest);
  EXPECT_EQ(d.request.p, 2);
  EXPECT_EQ(d.request.q, 3);
  EXPECT_EQ(d.request.mode, Mode::kExact);
  EXPECT_EQ(d.request.deadline_us, 12345u);
  EXPECT_EQ(d.request.times, req.times);
}

TEST(Protocol, ResponseRoundTrip) {
  PlacementResponse rsp;
  rsp.p = 2;
  rsp.q = 2;
  rsp.solver = SolverKind::kExact;
  rsp.cache_state = CacheState::kHitUpgraded;
  rsp.objective = 2.75;
  rsp.r = {1.0, 0.5};
  rsp.c = {0.25, 0.125};
  rsp.perm = {3, 1, 0, 2};
  const Decoded d = decode_payload(encode_response(rsp));
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d.type, MsgType::kResponse);
  EXPECT_EQ(d.response.solver, SolverKind::kExact);
  EXPECT_EQ(d.response.cache_state, CacheState::kHitUpgraded);
  EXPECT_EQ(d.response.objective, 2.75);
  EXPECT_EQ(d.response.r, rsp.r);
  EXPECT_EQ(d.response.c, rsp.c);
  EXPECT_EQ(d.response.perm, rsp.perm);
}

TEST(Protocol, ErrorRoundTrip) {
  const Decoded d =
      decode_payload(encode_error(WireError::kTooCostly, "budget"));
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d.type, MsgType::kError);
  EXPECT_EQ(d.error.code, WireError::kTooCostly);
  EXPECT_EQ(d.error.detail, "budget");
  const Decoded empty = decode_payload(encode_error(WireError::kShutdown, ""));
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.error.detail, "");
}

TEST(Protocol, MalformedFramesYieldTypedErrors) {
  const std::vector<std::uint8_t> good =
      encode_request(make_request(2, 2, {1, 2, 3, 6}));
  ASSERT_TRUE(decode_payload(good).ok());

  // Too short to hold the header.
  EXPECT_EQ(decode_payload(good.data(), 7).parse_error, WireError::kBadFrame);

  // Payload byte layout (protocol.cpp): magic[0..3] version[4..5] type[6]
  // reserved[7] p[8..9] q[10..11] mode[12] ...
  auto corrupt = [&](std::size_t at, std::uint8_t value) {
    std::vector<std::uint8_t> bytes = good;
    bytes[at] = value;
    return decode_payload(bytes).parse_error;
  };
  EXPECT_EQ(corrupt(0, 0x00), WireError::kBadMagic);
  EXPECT_EQ(corrupt(4, 0x00), WireError::kBadVersion);  // version 0
  EXPECT_EQ(corrupt(4, 99), WireError::kBadVersion);    // future version
  EXPECT_EQ(corrupt(6, 42), WireError::kBadType);
  EXPECT_EQ(corrupt(12, 9), WireError::kBadMode);
  EXPECT_EQ(corrupt(8, 0), WireError::kBadDimensions);  // p = 0

  // Truncated times and trailing garbage are both framing errors.
  EXPECT_EQ(decode_payload(good.data(), good.size() - 3).parse_error,
            WireError::kBadFrame);
  std::vector<std::uint8_t> trailing = good;
  trailing.push_back(0);
  EXPECT_EQ(decode_payload(trailing).parse_error, WireError::kBadFrame);
}

TEST(Protocol, FramePrependsLittleEndianLength) {
  const std::vector<std::uint8_t> payload =
      encode_error(WireError::kOk, "abc");
  const std::vector<std::uint8_t> framed = frame(payload);
  ASSERT_EQ(framed.size(), payload.size() + 4);
  const std::size_t len = framed[0] | framed[1] << 8 | framed[2] << 16 |
                          static_cast<std::size_t>(framed[3]) << 24;
  EXPECT_EQ(len, payload.size());
}

// ---------------------------------------------------------------------------
// Canonicalization (Theorem 1: the solvers see only the sorted pool).

TEST(Cache, PermutationsShareOneKey) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t p = 2 + trial % 3, q = 2 + trial % 2;
    std::vector<double> times = rng.cycle_times(p * q);
    const CanonicalPlacement base = canonicalize_placement(p, q, times);
    std::vector<double> shuffled = times;
    rng.shuffle(shuffled);
    const CanonicalPlacement perm = canonicalize_placement(p, q, shuffled);
    EXPECT_EQ(base.hash, perm.hash);
    EXPECT_EQ(base.unit, perm.unit);
    EXPECT_EQ(base.scale, perm.scale);
    EXPECT_EQ(base.sorted, perm.sorted);
    // The back-map must reproduce the request layout it was built from.
    for (std::size_t k = 0; k < p * q; ++k)
      EXPECT_EQ(shuffled[perm.sorted_to_request[k]], perm.sorted[k]);
  }
}

TEST(Cache, Pow2ScalingsShareOneKey) {
  Rng rng(12);
  const double scales[] = {2.0, 0.5, 4.0, 0.25, 1024.0};
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t p = 2, q = 2 + trial % 3;
    std::vector<double> times = rng.cycle_times(p * q);
    const CanonicalPlacement base = canonicalize_placement(p, q, times);
    const double alpha = scales[trial % 5];
    std::vector<double> scaled = times;
    for (double& t : scaled) t *= alpha;
    rng.shuffle(scaled);
    const CanonicalPlacement key = canonicalize_placement(p, q, scaled);
    EXPECT_EQ(base.hash, key.hash);
    EXPECT_EQ(base.unit, key.unit);
    EXPECT_EQ(key.scale, base.scale * alpha);
  }
}

TEST(Cache, DistinctPoolsGetDistinctKeys) {
  const CanonicalPlacement a = canonicalize_placement(2, 2, {1, 2, 3, 6});
  CanonicalPlacement b = canonicalize_placement(2, 2, {1, 2, 3, 6.000001});
  EXPECT_NE(a.hash, b.hash);
  // Same pool, different shape: also distinct.
  const CanonicalPlacement c = canonicalize_placement(4, 1, {1, 2, 3, 6});
  EXPECT_NE(a.hash, c.hash);
}

CachedSolution fake_entry(const CanonicalPlacement& canon, bool exact,
                          double obj2) {
  CachedSolution s;
  s.p = canon.p;
  s.q = canon.q;
  s.unit = canon.unit;
  s.scale = canon.scale;
  s.exact = exact;
  s.obj2 = obj2;
  s.r.assign(canon.p, 1.0);
  s.c.assign(canon.q, 1.0);
  s.arrangement.resize(canon.p * canon.q);
  for (std::size_t k = 0; k < s.arrangement.size(); ++k)
    s.arrangement[k] = static_cast<std::uint32_t>(k);
  return s;
}

TEST(Cache, UpgradeNeverServesAWorseObjective) {
  SolutionCache cache(4);
  const CanonicalPlacement key = canonicalize_placement(2, 2, {1, 2, 3, 6});

  ASSERT_TRUE(cache.insert_or_upgrade(fake_entry(key, false, 1.0)));
  ASSERT_EQ(cache.size(), 1u);

  // An exact result that is *worse* must not displace the heuristic entry:
  // clients that already saw objective 1.0 would regress.
  EXPECT_FALSE(cache.insert_or_upgrade(fake_entry(key, true, 0.5)));
  ASSERT_TRUE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.lookup(key)->obj2, 1.0);
  EXPECT_FALSE(cache.lookup(key)->exact);

  // Equal-objective exact upgrade is allowed (kind improves, value holds).
  EXPECT_TRUE(cache.insert_or_upgrade(fake_entry(key, true, 1.0)));
  EXPECT_TRUE(cache.lookup(key)->exact);
  EXPECT_TRUE(cache.lookup(key)->upgraded);

  // A strictly better objective replaces anything; a worse one never does.
  EXPECT_TRUE(cache.insert_or_upgrade(fake_entry(key, true, 1.5)));
  EXPECT_FALSE(cache.insert_or_upgrade(fake_entry(key, true, 1.25)));
  EXPECT_FALSE(cache.insert_or_upgrade(fake_entry(key, false, 2.0 - 1.0)));
  EXPECT_EQ(cache.lookup(key)->obj2, 1.5);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(Cache, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SolutionCache(1).shard_count(), 1u);
  EXPECT_EQ(SolutionCache(3).shard_count(), 4u);
  EXPECT_EQ(SolutionCache(16).shard_count(), 16u);
}

// ---------------------------------------------------------------------------
// Server semantics.

TEST(Server, ValidationErrorsAreTyped) {
  PlacementServer server;
  EXPECT_EQ(server.place(make_request(0, 2, {})).error.code,
            WireError::kBadDimensions);
  EXPECT_EQ(server.place(make_request(2, 2, {1, 2, 3})).error.code,
            WireError::kBadDimensions);
  EXPECT_EQ(server.place(make_request(2, 2, {1, 2, 3, -6})).error.code,
            WireError::kBadCycleTime);
  EXPECT_EQ(server
                .place(make_request(
                    2, 2, {1, 2, 3, std::numeric_limits<double>::quiet_NaN()}))
                .error.code,
            WireError::kBadCycleTime);
  // 4x4 = 16 processors exceeds the exact pool budget of 10.
  Rng rng(3);
  EXPECT_EQ(server
                .place(make_request(4, 4, rng.cycle_times(16), Mode::kExact))
                .error.code,
            WireError::kTooCostly);
}

TEST(Server, UnsupportedVersionAnswersBadVersion) {
  PlacementServer server;
  std::vector<std::uint8_t> payload =
      encode_request(make_request(2, 2, {1, 2, 3, 6}));
  payload[4] = 99;  // future protocol version
  const Decoded d = decode_payload(server.handle_payload(payload));
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d.type, MsgType::kError);
  EXPECT_EQ(d.error.code, WireError::kBadVersion);
}

TEST(Server, ShutdownAnswersShutdown) {
  PlacementServer server;
  server.shutdown();
  const PlaceOutcome out = server.place(make_request(2, 2, {1, 2, 3, 6}));
  ASSERT_FALSE(out.ok);
  EXPECT_EQ(out.error.code, WireError::kShutdown);
}

TEST(Server, ColdResponseBitIdenticalToDirectSolve) {
  Rng rng(21);
  const std::vector<double> pool = rng.cycle_times(6);
  const OptimalArrangement direct = solve_optimal_arrangement(2, 3, pool);

  PlacementServer server;
  const PlaceOutcome out = server.place(make_request(2, 3, pool));
  ASSERT_TRUE(out.ok);
  const PlacementResponse& rsp = out.response;
  EXPECT_EQ(rsp.solver, SolverKind::kExact);
  EXPECT_EQ(rsp.cache_state, CacheState::kMiss);
  EXPECT_EQ(rsp.objective, direct.solution.obj2);
  EXPECT_EQ(rsp.r, direct.solution.alloc.r);
  EXPECT_EQ(rsp.c, direct.solution.alloc.c);
  // perm lays the request's times out as the solver's arrangement.
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_EQ(pool[rsp.perm[i * 3 + j]], direct.grid(i, j));
}

TEST(Server, PermutedRequestsAreBitIdenticalCacheHits) {
  Rng rng(22);
  const std::vector<double> pool = rng.cycle_times(6);
  PlacementServer server;
  const PlaceOutcome base = server.place(make_request(3, 2, pool));
  ASSERT_TRUE(base.ok);

  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> shuffled = pool;
    rng.shuffle(shuffled);
    const PlaceOutcome out = server.place(make_request(3, 2, shuffled));
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(out.response.cache_state, CacheState::kHit);
    // Identical shares and objective, bit for bit: the canonical entry is
    // served at scale ratio exactly 1.0.
    EXPECT_EQ(out.response.r, base.response.r);
    EXPECT_EQ(out.response.c, base.response.c);
    EXPECT_EQ(out.response.objective, base.response.objective);
    // The perm re-targets the shuffled layout: slot (i,j) must carry the
    // same cycle-time as the base response's slot (i,j).
    for (std::size_t k = 0; k < shuffled.size(); ++k)
      EXPECT_EQ(shuffled[out.response.perm[k]], pool[base.response.perm[k]]);
  }
}

TEST(Server, Pow2ScaledRequestsHitAndRescaleExactly) {
  Rng rng(23);
  const std::vector<double> pool = rng.cycle_times(4);
  PlacementServer server;
  const PlaceOutcome base = server.place(make_request(2, 2, pool));
  ASSERT_TRUE(base.ok);

  const double scales[] = {2.0, 0.5, 8.0, 0.0625};
  for (double alpha : scales) {
    std::vector<double> scaled = pool;
    for (double& t : scaled) t *= alpha;
    rng.shuffle(scaled);
    const PlaceOutcome out = server.place(make_request(2, 2, scaled));
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(out.response.cache_state, CacheState::kHit);
    // Scale covariance, exact under powers of two: t -> alpha t maps the
    // optimum (r, c) to (r/alpha, c) and the objective to obj/alpha.
    EXPECT_EQ(out.response.objective * alpha, base.response.objective);
    for (std::size_t i = 0; i < 2; ++i)
      EXPECT_EQ(out.response.r[i] * alpha, base.response.r[i]);
    EXPECT_EQ(out.response.c, base.response.c);
  }
}

TEST(Server, DeadlineBelowFloorFallsBackThenRefines) {
  Rng rng(24);
  const std::vector<double> pool = rng.cycle_times(6);
  const HeuristicResult heur = solve_heuristic(2, 3, pool);
  const OptimalArrangement exact = solve_optimal_arrangement(2, 3, pool);

  PlacementServer server;
  // deadline 1ms < the 20ms exact floor: auto mode degrades to the
  // heuristic even though the exact solver is affordable...
  const PlaceOutcome first =
      server.place(make_request(2, 3, pool, Mode::kAuto, 1000));
  ASSERT_TRUE(first.ok);
  EXPECT_EQ(first.response.solver, SolverKind::kHeuristic);
  EXPECT_EQ(first.response.cache_state, CacheState::kMiss);
  EXPECT_EQ(first.response.objective, heur.final().obj2);

  // ...and queues an async exact refinement. After drain() the entry is
  // upgraded, and the served objective never got worse (Obj2 is maximized:
  // the exact optimum dominates the feasible heuristic point).
  server.drain();
  const PlaceOutcome second = server.place(make_request(2, 3, pool));
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(second.response.cache_state, CacheState::kHitUpgraded);
  EXPECT_EQ(second.response.solver, SolverKind::kExact);
  EXPECT_EQ(second.response.objective, exact.solution.obj2);
  EXPECT_GE(second.response.objective, first.response.objective);
}

TEST(Server, HeuristicModeNeverRunsExactInline) {
  Rng rng(25);
  const std::vector<double> pool = rng.cycle_times(4);
  ServerOptions opts;
  opts.async_refine = false;
  PlacementServer server(opts);
  const PlaceOutcome out =
      server.place(make_request(2, 2, pool, Mode::kHeuristic));
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.response.solver, SolverKind::kHeuristic);
  // With refinement off the entry stays heuristic.
  server.drain();
  const PlaceOutcome again = server.place(make_request(2, 2, pool));
  ASSERT_TRUE(again.ok);
  EXPECT_EQ(again.response.cache_state, CacheState::kHit);
  EXPECT_EQ(again.response.solver, SolverKind::kHeuristic);
}

TEST(Server, BatchAnswersInRequestOrderWithTypedErrors) {
  Rng rng(26);
  const std::vector<double> a = rng.cycle_times(4);
  const std::vector<double> b = rng.cycle_times(6);
  const OptimalArrangement direct_a = solve_optimal_arrangement(2, 2, a);
  const OptimalArrangement direct_b = solve_optimal_arrangement(2, 3, b);

  ServerOptions opts;
  opts.threads = 2;
  PlacementServer server(opts);
  std::vector<std::vector<std::uint8_t>> payloads;
  payloads.push_back(encode_request(make_request(2, 2, a)));
  payloads.push_back({0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0});  // bad magic
  payloads.push_back(encode_request(make_request(2, 3, b)));

  const std::vector<std::vector<std::uint8_t>> replies =
      server.handle_batch(payloads);
  ASSERT_EQ(replies.size(), 3u);

  const Decoded d0 = decode_payload(replies[0]);
  ASSERT_TRUE(d0.ok());
  ASSERT_EQ(d0.type, MsgType::kResponse);
  EXPECT_EQ(d0.response.r, direct_a.solution.alloc.r);
  EXPECT_EQ(d0.response.objective, direct_a.solution.obj2);

  const Decoded d1 = decode_payload(replies[1]);
  ASSERT_TRUE(d1.ok());
  ASSERT_EQ(d1.type, MsgType::kError);
  EXPECT_EQ(d1.error.code, WireError::kBadMagic);

  const Decoded d2 = decode_payload(replies[2]);
  ASSERT_TRUE(d2.ok());
  ASSERT_EQ(d2.type, MsgType::kResponse);
  EXPECT_EQ(d2.response.c, direct_b.solution.alloc.c);
  EXPECT_EQ(d2.response.objective, direct_b.solution.obj2);
}

TEST(Server, ConcurrentLoopbackIsBitIdenticalAndHitsTheCache) {
  Rng seed_rng(27);
  const std::vector<double> pools[2] = {seed_rng.cycle_times(4),
                                        seed_rng.cycle_times(6)};
  const OptimalArrangement direct[2] = {
      solve_optimal_arrangement(2, 2, pools[0]),
      solve_optimal_arrangement(2, 3, pools[1])};
  const std::size_t shapes[2][2] = {{2, 2}, {2, 3}};

  MetricsRegistry metrics;
  MetricsRegistry* prev = install_metrics(&metrics);
  {
    PlacementServer server;
    constexpr unsigned kClients = 4, kRequests = 16;
    std::vector<std::string> errors(kClients);
    std::vector<std::thread> clients;
    for (unsigned t = 0; t < kClients; ++t) {
      clients.emplace_back([&, t] {
        Rng rng(100 + t);
        for (unsigned i = 0; i < kRequests && errors[t].empty(); ++i) {
          const std::size_t which = (t + i) % 2;
          std::vector<double> times = pools[which];
          if (i % 2 == 1) rng.shuffle(times);
          const Decoded d = decode_payload(server.handle_payload(
              encode_request(make_request(shapes[which][0], shapes[which][1],
                                          times))));
          if (!d.ok() || d.type != MsgType::kResponse) {
            errors[t] = "reply is not a response";
            return;
          }
          if (d.response.r != direct[which].solution.alloc.r ||
              d.response.c != direct[which].solution.alloc.c ||
              d.response.objective != direct[which].solution.obj2)
            errors[t] = "response differs from the direct solve";
        }
      });
    }
    for (std::thread& th : clients) th.join();
    server.drain();
    for (const std::string& err : errors) EXPECT_EQ(err, "");
  }
  install_metrics(prev);
  // Upper bound on misses: once a thread's own miss-insert completes it can
  // never miss that key again, so each of the 4 threads misses each of the
  // 2 pools at most once (concurrent first encounters may each miss — the
  // lookup/solve/insert sequence is not one atomic step).
  EXPECT_GT(metrics.counter("serve.cache.hits").value(), 0u);
  EXPECT_GE(metrics.counter("serve.cache.misses").value(), 2u);
  EXPECT_LE(metrics.counter("serve.cache.misses").value(), 4u * 2u);
}

// ---------------------------------------------------------------------------
// Socket round trips.

TEST(Server, TcpRoundTripMatchesLoopback) {
  Rng rng(28);
  const std::vector<double> pool = rng.cycle_times(4);

  ServerOptions opts;
  opts.threads = 2;
  PlacementServer server(opts);
  std::uint16_t port = 0;
  const int listen_fd = listen_tcp(0, &port);
  ASSERT_GT(port, 0);
  std::thread acceptor([&] { server.serve_fd(listen_fd); });

  Endpoint ep;
  ep.port = port;
  const PlacementRequest req = make_request(2, 2, pool);
  const Decoded first = query_server(ep, req);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first.type, MsgType::kResponse);
  const OptimalArrangement direct = solve_optimal_arrangement(2, 2, pool);
  EXPECT_EQ(first.response.r, direct.solution.alloc.r);
  EXPECT_EQ(first.response.objective, direct.solution.obj2);
  EXPECT_EQ(first.response.cache_state, CacheState::kMiss);

  // Several requests on one reused connection; the repeat hits the cache.
  const int fd = connect_endpoint(ep);
  const Decoded second = query_fd(fd, req);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second.type, MsgType::kResponse);
  EXPECT_EQ(second.response.cache_state, CacheState::kHit);
  EXPECT_EQ(second.response.r, first.response.r);
  const Decoded third = query_fd(fd, make_request(2, 2, {1, 2, 3, 5}));
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third.type, MsgType::kResponse);
  ::close(fd);

  server.shutdown();
  acceptor.join();
}

// ---------------------------------------------------------------------------
// kStats introspection (appended in-place within protocol version 1).

TEST(Protocol, StatsRequestIsHeaderOnly) {
  const std::vector<std::uint8_t> req = encode_stats_request();
  EXPECT_EQ(req.size(), 8u);  // magic + version + type + reserved, no body
  const Decoded d = decode_payload(req);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.type, MsgType::kStatsRequest);
}

TEST(Protocol, StatsRoundTrip) {
  StatsReply stats;
  stats.cache_entries = 1234567;
  stats.cache_shards = 16;
  stats.drift_events = 3;
  stats.metrics_json = "{\"counters\":{\"serve.requests\":7}}";
  StatsReply::Estimate e;
  e.proc = 11;
  e.op = 2;  // ObsOp::kUpdate
  e.samples = 42;
  e.estimate = 1.0 / 3.0;  // not exactly representable: bitwise transport
  e.units = 96.5;
  stats.estimates.push_back(e);
  e.proc = 12;
  e.op = 0;
  e.samples = 1;
  e.estimate = 2.5;
  e.units = 0.125;
  stats.estimates.push_back(e);

  const Decoded d = decode_payload(encode_stats(stats));
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d.type, MsgType::kStatsResponse);
  EXPECT_EQ(d.stats.cache_entries, stats.cache_entries);
  EXPECT_EQ(d.stats.cache_shards, stats.cache_shards);
  EXPECT_EQ(d.stats.drift_events, stats.drift_events);
  EXPECT_EQ(d.stats.metrics_json, stats.metrics_json);
  ASSERT_EQ(d.stats.estimates.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(d.stats.estimates[i].proc, stats.estimates[i].proc);
    EXPECT_EQ(d.stats.estimates[i].op, stats.estimates[i].op);
    EXPECT_EQ(d.stats.estimates[i].samples, stats.estimates[i].samples);
    EXPECT_EQ(d.stats.estimates[i].estimate, stats.estimates[i].estimate);
    EXPECT_EQ(d.stats.estimates[i].units, stats.estimates[i].units);
  }
}

TEST(Protocol, StatsTruncationAndCapViolationsAreFramingErrors) {
  StatsReply stats;
  stats.metrics_json = "{}";
  stats.estimates.resize(2);
  const std::vector<std::uint8_t> good = encode_stats(stats);
  ASSERT_TRUE(decode_payload(good).ok());

  // Any prefix that cuts the body is a framing error, never a crash.
  for (std::size_t len = 8; len < good.size(); ++len)
    EXPECT_EQ(decode_payload(good.data(), len).parse_error,
              WireError::kBadFrame)
        << "prefix " << len;

  // Body layout: cache_entries[8..15] shards[16..19] drift[20..23]
  // metrics_len[24..27]. A declared length over the cap is rejected even
  // if the frame claimed to be long enough.
  std::vector<std::uint8_t> big = good;
  const std::uint32_t huge = kMaxStatsMetricsBytes + 1;
  big[24] = static_cast<std::uint8_t>(huge);
  big[25] = static_cast<std::uint8_t>(huge >> 8);
  big[26] = static_cast<std::uint8_t>(huge >> 16);
  big[27] = static_cast<std::uint8_t>(huge >> 24);
  EXPECT_EQ(decode_payload(big).parse_error, WireError::kBadFrame);

  // Estimate-count word right after the 2-byte metrics JSON.
  std::vector<std::uint8_t> many = good;
  const std::size_t count_at = 28 + stats.metrics_json.size();
  const std::uint32_t over = kMaxStatsEstimates + 1;
  many[count_at] = static_cast<std::uint8_t>(over);
  many[count_at + 1] = static_cast<std::uint8_t>(over >> 8);
  many[count_at + 2] = static_cast<std::uint8_t>(over >> 16);
  many[count_at + 3] = static_cast<std::uint8_t>(over >> 24);
  EXPECT_EQ(decode_payload(many).parse_error, WireError::kBadFrame);

  // Oversized inputs are refused at encode time, before they hit the wire.
  StatsReply too_big;
  too_big.metrics_json.assign(kMaxStatsMetricsBytes + 1, 'x');
  EXPECT_THROW(encode_stats(too_big), std::exception);
}

TEST(Server, StatsSnapshotReflectsCacheMetricsAndEstimator) {
  PlacementServer server;

  // No registries installed: the reply is well-formed with empty fields.
  {
    const Decoded d = decode_payload(
        server.handle_payload(encode_stats_request()));
    ASSERT_TRUE(d.ok());
    ASSERT_EQ(d.type, MsgType::kStatsResponse);
    EXPECT_EQ(d.stats.cache_entries, 0u);
    EXPECT_EQ(d.stats.metrics_json, "");
    EXPECT_TRUE(d.stats.estimates.empty());
    EXPECT_EQ(d.stats.drift_events, 0u);
  }

  MetricsRegistry metrics;
  MetricsRegistry* prev_metrics = install_metrics(&metrics);
  RunObservation obs;
  obs.estimator.sample(5, ObsOp::kPanel, 2.0, 3.0, 0);
  obs.estimator.sample(5, ObsOp::kPanel, 2.0, 3.0, 1);
  RunObservation* prev_obs = install_observation(&obs);

  server.place(make_request(2, 2, {1, 2, 3, 6}));  // populate the cache
  const Decoded d =
      decode_payload(server.handle_payload(encode_stats_request()));

  install_observation(prev_obs);
  install_metrics(prev_metrics);

  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d.type, MsgType::kStatsResponse);
  EXPECT_EQ(d.stats.cache_entries, server.cache().size());
  EXPECT_EQ(d.stats.cache_shards, server.cache().shard_count());
  EXPECT_NE(d.stats.metrics_json.find("serve."), std::string::npos);
  ASSERT_EQ(d.stats.estimates.size(), 1u);
  EXPECT_EQ(d.stats.estimates[0].proc, 5u);
  EXPECT_EQ(d.stats.estimates[0].op,
            static_cast<std::uint8_t>(ObsOp::kPanel));
  EXPECT_EQ(d.stats.estimates[0].samples, 2u);
  EXPECT_EQ(d.stats.estimates[0].estimate, 1.5);
  EXPECT_EQ(d.stats.estimates[0].units, 4.0);
  EXPECT_EQ(d.stats.drift_events, 0u);
  EXPECT_EQ(metrics.counter("serve.stats").value(), 1u);
}

TEST(Server, StatsVersionNegotiationStaysTyped) {
  PlacementServer server;
  // A future-version stats request is rejected exactly like any other
  // future-version frame (version word at bytes 4..5).
  std::vector<std::uint8_t> future = encode_stats_request();
  future[4] = 99;
  const Decoded bad_version =
      decode_payload(server.handle_payload(future));
  ASSERT_TRUE(bad_version.ok());
  ASSERT_EQ(bad_version.type, MsgType::kError);
  EXPECT_EQ(bad_version.error.code, WireError::kBadVersion);

  // What a pre-kStats server answers: its decoder never knew type 4, so
  // the client reads kBadType as "no stats support", not a failure.
  std::vector<std::uint8_t> unknown_type = encode_stats_request();
  unknown_type[6] = 42;
  const Decoded bad_type =
      decode_payload(server.handle_payload(unknown_type));
  ASSERT_TRUE(bad_type.ok());
  ASSERT_EQ(bad_type.type, MsgType::kError);
  EXPECT_EQ(bad_type.error.code, WireError::kBadType);
}

TEST(Server, StatsSocketRoundTrip) {
  const std::string path = "test_serve_stats.sock";
  PlacementServer server;
  const int listen_fd = listen_unix(path);
  std::thread acceptor([&] { server.serve_fd(listen_fd); });

  Endpoint ep;
  ep.unix_path = path;
  // Mixed traffic on one connection: placement, then introspection.
  const int fd = connect_endpoint(ep);
  const Decoded placed = query_fd(fd, make_request(2, 2, {1, 2, 3, 6}));
  ASSERT_TRUE(placed.ok());
  ASSERT_EQ(placed.type, MsgType::kResponse);
  const Decoded stats = query_stats_fd(fd);
  ::close(fd);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats.type, MsgType::kStatsResponse);
  EXPECT_EQ(stats.stats.cache_entries, 1u);
  EXPECT_EQ(stats.stats.cache_shards, server.cache().shard_count());

  // The one-shot convenience wrapper sees the same snapshot.
  const Decoded again = query_stats(ep);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again.type, MsgType::kStatsResponse);
  EXPECT_EQ(again.stats.cache_entries, 1u);

  server.shutdown();
  acceptor.join();
  std::remove(path.c_str());
}

TEST(Server, UnixSocketRoundTrip) {
  const std::string path = "test_serve_unix.sock";
  PlacementServer server;
  const int listen_fd = listen_unix(path);
  std::thread acceptor([&] { server.serve_fd(listen_fd); });

  Endpoint ep;
  ep.unix_path = path;
  const Decoded d = query_server(ep, make_request(2, 2, {1, 2, 3, 6}));
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d.type, MsgType::kResponse);
  EXPECT_EQ(d.response.solver, SolverKind::kExact);

  server.shutdown();
  acceptor.join();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hetgrid::serve
