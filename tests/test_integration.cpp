// End-to-end integration tests: cycle-time pool -> solver -> distribution
// -> simulated/executed kernel, checking the paper's headline claims.
#include <gtest/gtest.h>

#include "core/arrangement.hpp"
#include "core/exact_solver.hpp"
#include "core/heuristic.hpp"
#include "dist/kalinov_lastovetsky.hpp"
#include "dist/panel_distribution.hpp"
#include "matrix/gemm.hpp"
#include "matrix/norms.hpp"
#include "runtime/virtual_runtime.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace hetgrid {
namespace {

struct Pipeline {
  CycleTimeGrid grid;
  GridAllocation alloc;
  PanelDistribution dist;
};

Pipeline build_heuristic_pipeline(std::size_t p, std::size_t q,
                                  const std::vector<double>& pool,
                                  std::size_t bp, std::size_t bq) {
  const HeuristicResult h = solve_heuristic(p, q, pool);
  PanelDistribution d = PanelDistribution::from_allocation(
      h.final().grid, h.final().alloc, bp, bq, PanelOrder::kContiguous,
      PanelOrder::kInterleaved, "heuristic-panel");
  return {h.final().grid, h.final().alloc, std::move(d)};
}

TEST(Integration, HeuristicPipelineBeatsBlockCyclicOnMmmAndLu) {
  Rng rng(201);
  int mmm_wins = 0, lu_wins = 0;
  const int trials = 15;
  for (int trial = 0; trial < trials; ++trial) {
    const std::size_t p = 2, q = 2 + rng.below(2);
    const std::vector<double> pool = rng.cycle_times(p * q, 0.05);
    const Pipeline pl = build_heuristic_pipeline(p, q, pool, 6 * p, 6 * q);
    const Machine m{pl.grid, NetworkModel::free()};
    const PanelDistribution bc = PanelDistribution::block_cyclic(p, q);
    const std::size_t nb = 12 * p * q;

    // Integer rounding of the shares into a finite panel can cost a couple
    // of percent on nearly homogeneous pools, so allow a 3% cushion while
    // requiring the trend across every trial.
    if (simulate_mmm(m, pl.dist, nb).total_time <=
        simulate_mmm(m, bc, nb).total_time * 1.03)
      ++mmm_wins;
    if (simulate_lu(m, pl.dist, nb).total_time <=
        simulate_lu(m, bc, nb).total_time * 1.03)
      ++lu_wins;
  }
  EXPECT_EQ(mmm_wins, trials);
  EXPECT_GE(lu_wins, trials - 1);
}

TEST(Integration, ExactArrangementDominatesHeuristicInSimulation) {
  Rng rng(202);
  for (int trial = 0; trial < 8; ++trial) {
    const std::vector<double> pool = rng.cycle_times(4, 0.1);
    const OptimalArrangement opt = solve_optimal_arrangement(2, 2, pool);
    const HeuristicResult h = solve_heuristic(2, 2, pool);

    const PanelDistribution d_opt = PanelDistribution::from_allocation(
        opt.grid, opt.solution.alloc, 8, 8, PanelOrder::kContiguous,
        PanelOrder::kContiguous, "exact");
    const PanelDistribution d_h = PanelDistribution::from_allocation(
        h.final().grid, h.final().alloc, 8, 8, PanelOrder::kContiguous,
        PanelOrder::kContiguous, "heuristic");

    const Machine m_opt{opt.grid, NetworkModel::free()};
    const Machine m_h{h.final().grid, NetworkModel::free()};
    const std::size_t nb = 32;
    // Rounding to an 8x8 panel can cost the exact solution a little; allow
    // a 5% rounding cushion while requiring the trend.
    EXPECT_LE(simulate_mmm(m_opt, d_opt, nb).total_time,
              simulate_mmm(m_h, d_h, nb).total_time * 1.05)
        << "trial " << trial;
  }
}

TEST(Integration, SimulatedUtilizationTracksSolverWorkload) {
  // The solver predicts mean(B) as the average busy fraction; the MMM
  // simulation of the induced panel (with a fine enough panel) must land
  // close to that prediction.
  Rng rng(203);
  for (int trial = 0; trial < 8; ++trial) {
    const std::vector<double> pool = rng.cycle_times(4, 0.2);
    const HeuristicResult h = solve_heuristic(2, 2, pool);
    const std::size_t bp = 24, bq = 24;
    const PanelDistribution d = PanelDistribution::from_allocation(
        h.final().grid, h.final().alloc, bp, bq, PanelOrder::kContiguous,
        PanelOrder::kContiguous, "fine");
    const Machine m{h.final().grid, NetworkModel::free()};
    const SimReport rep = simulate_mmm(m, d, bp);
    EXPECT_NEAR(rep.average_utilization(), h.final().avg_workload, 0.08)
        << "trial " << trial;
  }
}

TEST(Integration, EndToEndNumericsThroughHeuristicDistribution) {
  // Full stack: pool -> heuristic -> panel -> virtual execution -> exact
  // numerical agreement with the sequential kernels.
  // nb = 36/6 = 6 block rows/columns: exactly one 6x6 panel period.
  const std::size_t n = 36, block = 6;
  const std::vector<double> pool{0.3, 0.55, 0.7, 0.9, 1.0, 1.4};
  const Pipeline pl = build_heuristic_pipeline(2, 3, pool, 6, 6);

  Rng rng(204);
  Matrix a(n, n), b(n, n), c(n, n), ref(n, n, 0.0);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);
  const Machine m{pl.grid, NetworkModel::free()};
  const VirtualReport rep =
      run_distributed_mmm(m, pl.dist, a.view(), b.view(), c.view(), block);
  gemm_reference(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.0,
                 ref.view());
  EXPECT_LT(max_abs_diff(c.view(), ref.view()), 1e-11);
  EXPECT_GT(rep.average_utilization(), 0.5);
}

TEST(Integration, PerfectBoundIsUniversalLowerBound) {
  Rng rng(205);
  for (int trial = 0; trial < 10; ++trial) {
    const std::vector<double> pool = rng.cycle_times(4, 0.05);
    const HeuristicResult h = solve_heuristic(2, 2, pool);
    const Machine m{h.final().grid, NetworkModel::free()};
    const PanelDistribution bc = PanelDistribution::block_cyclic(2, 2);
    const PanelDistribution het = PanelDistribution::from_allocation(
        h.final().grid, h.final().alloc, 8, 8, PanelOrder::kContiguous,
        PanelOrder::kContiguous, "het");
    for (const Distribution2D* d :
         {static_cast<const Distribution2D*>(&bc),
          static_cast<const Distribution2D*>(&het)}) {
      const SimReport mm = simulate_mmm(m, *d, 16);
      const SimReport lu = simulate_lu(m, *d, 16);
      EXPECT_GE(mm.total_time, mm.perfect_compute_bound - 1e-9);
      EXPECT_GE(lu.total_time, lu.perfect_compute_bound - 1e-9);
    }
  }
}

TEST(Integration, KalinovLastovetskyTradeoff) {
  // K-L balances at least as well as the grid-constrained panel (it drops
  // the constraint), but violates the 4-neighbor pattern; the paper's
  // scheme accepts a small balance loss to keep grid communication.
  const CycleTimeGrid g(2, 2, {1, 2, 3, 5});
  const KalinovLastovetskyDistribution kl(g, {4, 7}, 61);
  const HeuristicResult h = solve_heuristic(2, 2, {1, 2, 3, 5});
  const PanelDistribution het = PanelDistribution::from_allocation(
      h.final().grid, h.final().alloc, 28, 61, PanelOrder::kContiguous,
      PanelOrder::kContiguous, "het");

  EXPECT_FALSE(neighbor_census(kl).grid_pattern());
  EXPECT_TRUE(neighbor_census(het).grid_pattern());

  const Machine m{g, NetworkModel::free()};
  const Machine mh{h.final().grid, NetworkModel::free()};
  const std::size_t nb = 2 * 28 * 1;  // multiple of K-L's row period
  const double t_kl = simulate_mmm(m, kl, nb).compute_time;
  const double t_het = simulate_mmm(mh, het, nb).compute_time;
  EXPECT_LE(t_kl, t_het * (1.0 + 1e-9));
  // But the paper's scheme stays within a modest factor.
  EXPECT_LE(t_het, t_kl * 1.25);
}

TEST(Integration, SortedArrangementReducesToHomogeneousCase) {
  // All-equal pool: every strategy coincides; sanity for the whole stack.
  const std::vector<double> pool(4, 0.5);
  const Pipeline pl = build_heuristic_pipeline(2, 2, pool, 4, 4);
  const Machine m{pl.grid, NetworkModel::free()};
  const PanelDistribution bc = PanelDistribution::block_cyclic(2, 2);
  EXPECT_NEAR(simulate_mmm(m, pl.dist, 16).total_time,
              simulate_mmm(m, bc, 16).total_time, 1e-9);
}

}  // namespace
}  // namespace hetgrid
