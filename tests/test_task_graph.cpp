// Tests for the dependency-driven task-graph scheduler: the scoreboard
// dependency rules (RAW / WAR / WAW), the cycle check, deterministic
// execution across thread counts, and the dag-vs-barrier bit-identity of
// all four MP kernels — including the regression that LU's dag mode
// reproduces the barrier lookahead results exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "dist/panel_distribution.hpp"
#include "matrix/cholesky.hpp"
#include "matrix/matrix.hpp"
#include "mp/mp_runtime.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/task_graph.hpp"

namespace hetgrid {
namespace {

using Scheduler = RuntimeOptions::Scheduler;

// ----------------------------------------------------- graph unit tests

TEST(TaskGraph, SerialRunsInlineInSubmissionOrder) {
  TaskGraph g(1);
  std::vector<int> order;
  g.add("a", {}, {1}, [&] { order.push_back(0); });
  g.add("b", {1}, {2}, [&] { order.push_back(1); });
  g.add("c", {2}, {}, [&] { order.push_back(2); });
  g.wait_all();
  EXPECT_TRUE(g.serial());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(g.stats().tasks, 3u);
  EXPECT_EQ(g.stats().edges, 2u);        // a->b (RAW), b->c (RAW)
  EXPECT_EQ(g.stats().critical_path, 3u);
}

TEST(TaskGraph, WarAndWawEdgesSerializeWriters) {
  // reader of key 1, then a writer of key 1: the writer must wait (WAR).
  // A second writer then chains on the first (WAW).
  TaskGraph g(1);
  g.add("w0", {}, {1}, [] {});
  const auto r = g.add("r", {1}, {}, [] {});
  const auto w1 = g.add("w1", {}, {1}, [] {});
  const auto w2 = g.add("w2", {}, {1}, [] {});
  g.wait_all();
  EXPECT_TRUE(g.done(r) && g.done(w1) && g.done(w2));
  // Edges: w0->r (RAW), w0->w1 (WAW) + r->w1 (WAR), w1->w2 (WAW).
  EXPECT_EQ(g.stats().edges, 4u);
  EXPECT_EQ(g.stats().critical_path, 4u);  // w0 -> r -> w1 -> w2
}

TEST(TaskGraph, ReductionOrderBitIdenticalAcrossThreads) {
  // Sum floating-point values in a canonical order through a WAW chain on
  // one accumulator key. Any reordering would change the rounding; bitwise
  // equality across thread counts proves the chain serializes.
  const auto reduce = [](unsigned threads) {
    Rng rng(97);
    std::vector<double> vals(64);
    for (double& v : vals) v = rng.uniform() - 0.5;
    double acc = 0.0;
    TaskGraph g(threads);
    for (std::size_t i = 0; i < vals.size(); ++i) {
      const double v = vals[i];
      g.add("acc", {}, {7}, [&acc, v] { acc += v; });
    }
    g.wait_all();
    return acc;
  };
  const double serial = reduce(1);
  for (unsigned t : {2u, 7u}) {
    const double par = reduce(t);
    EXPECT_EQ(std::memcmp(&serial, &par, sizeof(double)), 0)
        << "threads=" << t;
  }
}

TEST(TaskGraph, IndependentTasksRunConcurrently) {
  // Two tasks with disjoint keys must be in flight simultaneously at some
  // point with 2 workers: each waits for the other to have started.
  TaskGraph g(2);
  std::atomic<int> started{0};
  for (int i = 0; i < 2; ++i)
    g.add("spin", {}, {static_cast<TaskGraph::Key>(i)}, [&started] {
      started.fetch_add(1);
      while (started.load() < 2) {
      }
    });
  g.wait_all();
  EXPECT_EQ(started.load(), 2);
}

TEST(TaskGraph, ExplicitAfterEdgesAreHonored) {
  TaskGraph g(3);
  std::atomic<int> stage{0};
  const auto first = g.add("first", {}, {}, [&] { stage.store(1); });
  g.add("second", {}, {}, [&] { EXPECT_EQ(stage.load(), 1); }, 0, {first});
  g.wait_all();
}

TEST(TaskGraph, ForwardOrSelfAfterReferenceThrows) {
  // Dependencies must point strictly backwards — a forward or self `after`
  // edge is the only way to express a cycle, and it is rejected.
  TaskGraph g(1);
  g.add("a", {}, {}, [] {});
  EXPECT_THROW(g.add("self", {}, {}, [] {}, 0, {1}), PreconditionError);
  EXPECT_THROW(g.add("fwd", {}, {}, [] {}, 0, {42}), PreconditionError);
}

TEST(TaskGraph, PendingOnTracksUnfinishedTasks) {
  TaskGraph g(2);
  std::atomic<bool> release{false};
  std::atomic<bool> ran{false};
  g.add("w", {}, {5}, [&] {
    while (!release.load()) {
    }
    ran.store(true);
  });
  EXPECT_EQ(g.pending_on(5).size(), 1u);
  EXPECT_TRUE(g.pending_on(6).empty());
  release.store(true);
  g.wait_all();
  EXPECT_TRUE(ran.load());
  EXPECT_TRUE(g.pending_on(5).empty());
}

TEST(TaskGraph, HostAcquireWaitsForWritersAndReaders) {
  TaskGraph g(2);
  std::atomic<bool> release{false};
  int value = 0;
  g.add("w", {}, {9}, [&] {
    while (!release.load()) {
    }
    value = 42;
  });
  release.store(true);
  g.host_acquire({}, {9});  // write ownership: waits for the writer
  EXPECT_EQ(value, 42);
  // After host_acquire the host owns the key: a new reader needs no edge.
  const std::size_t edges = g.stats().edges;
  g.add("r", {9}, {}, [] {});
  g.wait_all();
  EXPECT_EQ(g.stats().edges, edges);
}

TEST(TaskGraph, StatsDeterministicAcrossThreadCounts) {
  const auto build = [](unsigned threads) {
    TaskGraph g(threads);
    for (int i = 0; i < 8; ++i)
      g.add("w", {}, {static_cast<TaskGraph::Key>(i % 3)}, [] {});
    g.wait_all();
    return g.stats();
  };
  const TaskGraph::Stats serial = build(1);
  for (unsigned t : {2u, 7u}) {
    const TaskGraph::Stats par = build(t);
    EXPECT_EQ(serial.tasks, par.tasks);
    EXPECT_EQ(serial.edges, par.edges);
    EXPECT_EQ(serial.critical_path, par.critical_path);
  }
}

// ----------------------------------------------------- MP dag-vs-barrier

bool same_bits(const ConstMatrixView& a, const ConstMatrixView& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t j = 0; j < a.cols(); ++j) {
    for (std::size_t i = 0; i < a.rows(); ++i) {
      const double x = a(i, j), y = b(i, j);
      if (std::memcmp(&x, &y, sizeof(double)) != 0) return false;
    }
  }
  return true;
}

void expect_same_events(const std::vector<TraceEvent>& a,
                        const std::vector<TraceEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << "event " << i;
    EXPECT_EQ(a[i].proc, b[i].proc) << "event " << i;
    EXPECT_EQ(a[i].start, b[i].start) << "event " << i;
    EXPECT_EQ(a[i].duration, b[i].duration) << "event " << i;
    EXPECT_EQ(a[i].step, b[i].step) << "event " << i;
    EXPECT_EQ(a[i].blocks, b[i].blocks) << "event " << i;
    EXPECT_EQ(a[i].peer, b[i].peer) << "event " << i;
    EXPECT_EQ(a[i].name, b[i].name) << "event " << i;
  }
}

void expect_same_report(const MpReport& a, const MpReport& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.clock, b.clock);
  EXPECT_EQ(a.busy, b.busy);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.blocks_moved, b.blocks_moved);
  EXPECT_EQ(a.factorized, b.factorized);
}

Machine het_machine(std::uint64_t seed, std::size_t p, std::size_t q) {
  Rng rng(seed);
  return Machine{CycleTimeGrid::sorted_row_major(p, q,
                                                 rng.cycle_times(p * q, 0.2)),
                 NetworkModel{Topology::kSwitched, 1.0e-4, 2.0e-4, true}};
}

constexpr unsigned kThreadCounts[] = {1, 2, 7};

struct MpRun {
  MpReport report;
  Matrix out;
  std::vector<double> tau;  // QR only
  std::vector<TraceEvent> events;
};

RuntimeOptions make_opts(Scheduler sched, unsigned threads) {
  RuntimeOptions opts;
  opts.threads = threads;
  opts.scheduler = sched;
  return opts;
}

MpRun run_mmm(const Machine& machine, const Distribution2D& dist,
              Scheduler sched, unsigned threads) {
  Rng rng(11);
  Matrix a(28, 28), b(28, 28), c(28, 28);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);
  MemoryTraceSink sink;
  MpRun run;
  run.report = run_mp_mmm(machine, dist, a.view(), b.view(), c.view(), 6,
                          {}, &sink, make_opts(sched, threads));
  run.out = std::move(c);
  run.events = sink.events();
  return run;
}

MpRun run_lu(const Machine& machine, const Distribution2D& dist,
             bool lookahead, Scheduler sched, unsigned threads) {
  Rng rng(13);
  Matrix a(28, 28);
  fill_diagonally_dominant(a.view(), rng);
  MemoryTraceSink sink;
  MpRun run;
  run.report = run_mp_lu(machine, dist, a.view(), 6, {}, lookahead, &sink,
                         make_opts(sched, threads));
  run.out = std::move(a);
  run.events = sink.events();
  return run;
}

MpRun run_chol(const Machine& machine, const Distribution2D& dist,
               Scheduler sched, unsigned threads) {
  Rng rng(17);
  Matrix a(28, 28);
  fill_spd(a.view(), rng);
  MemoryTraceSink sink;
  MpRun run;
  run.report = run_mp_cholesky(machine, dist, a.view(), 6, {}, &sink,
                               make_opts(sched, threads));
  run.out = std::move(a);
  run.events = sink.events();
  return run;
}

MpRun run_qr(const Machine& machine, const Distribution2D& dist,
             Scheduler sched, unsigned threads) {
  Rng rng(19);
  Matrix a(32, 20);
  fill_random(a.view(), rng);
  MemoryTraceSink sink;
  MpRun run;
  const MpQrReport rep = run_mp_qr(machine, dist, a.view(), 5, {}, &sink,
                                   make_opts(sched, threads));
  run.report = rep;
  run.tau = rep.tau;
  run.out = std::move(a);
  run.events = sink.events();
  return run;
}

void expect_same_run(const MpRun& ref, const MpRun& got) {
  expect_same_report(ref.report, got.report);
  EXPECT_EQ(ref.tau, got.tau);
  EXPECT_TRUE(same_bits(ref.out.view(), got.out.view()));
  expect_same_events(ref.events, got.events);
}

TEST(MpDag, MmmBitIdenticalToBarrier) {
  const Machine machine = het_machine(23, 2, 3);
  const PanelDistribution dist = PanelDistribution::block_cyclic(2, 3);
  const MpRun barrier = run_mmm(machine, dist, Scheduler::kBarrier, 1);
  for (unsigned t : kThreadCounts) {
    SCOPED_TRACE(testing::Message() << "threads=" << t);
    expect_same_run(barrier, run_mmm(machine, dist, Scheduler::kDag, t));
  }
}

TEST(MpDag, LuBitIdenticalToBarrier) {
  const Machine machine = het_machine(31, 2, 3);
  const PanelDistribution dist = PanelDistribution::block_cyclic(2, 3);
  const MpRun barrier = run_lu(machine, dist, false, Scheduler::kBarrier, 1);
  for (unsigned t : kThreadCounts)
    expect_same_run(barrier,
                    run_lu(machine, dist, false, Scheduler::kDag, t));
}

TEST(MpDag, LuDagReproducesBarrierLookaheadResults) {
  // Regression for the lookahead subsumption: the dag scheduler runs the
  // overlap for real, but the `lookahead` flag still selects the same
  // virtual-time model — dag + lookahead must reproduce the barrier
  // scheduler's lookahead=true reports, traces, and factors bitwise.
  const Machine machine = het_machine(31, 2, 3);
  const PanelDistribution dist = PanelDistribution::block_cyclic(2, 3);
  const MpRun barrier = run_lu(machine, dist, true, Scheduler::kBarrier, 1);
  for (unsigned t : kThreadCounts)
    expect_same_run(barrier,
                    run_lu(machine, dist, true, Scheduler::kDag, t));
}

TEST(MpDag, CholeskyBitIdenticalToBarrier) {
  const Machine machine = het_machine(37, 3, 2);
  const PanelDistribution dist = PanelDistribution::block_cyclic(3, 2);
  const MpRun barrier = run_chol(machine, dist, Scheduler::kBarrier, 1);
  for (unsigned t : kThreadCounts)
    expect_same_run(barrier, run_chol(machine, dist, Scheduler::kDag, t));
}

TEST(MpDag, QrBitIdenticalToBarrier) {
  // The sharp case: QR's W reduction must keep its canonical summation
  // order through the dag's WAW chains, and its W/Y transients exercise
  // the deferred-erase path.
  const Machine machine = het_machine(59, 2, 2);
  const PanelDistribution dist = PanelDistribution::block_cyclic(2, 2);
  const MpRun barrier = run_qr(machine, dist, Scheduler::kBarrier, 1);
  for (unsigned t : kThreadCounts)
    expect_same_run(barrier, run_qr(machine, dist, Scheduler::kDag, t));
}

// ---------------------------------------------------------------------------
// Observation records (set_observe): weighted critical-path chains.

TEST(TaskGraphRecords, OffByDefaultAndFreeOfBookkeeping) {
  TaskGraph g(1);
  g.add("a", {}, {1}, [] {}, 0, {}, 2.0, 7);
  g.add("b", {1}, {}, [] {}, 0, {}, 3.0, 8);
  g.wait_all();
  EXPECT_FALSE(g.observing());
  EXPECT_TRUE(g.records().empty());
}

TEST(TaskGraphRecords, ChainCostTracksTheHeaviestDependencyChain) {
  TaskGraph g(1);
  g.set_observe(true);
  // Diamond: c reads both a's and b's keys; its chain must extend b (the
  // heavier branch), not a.
  g.add("a", {}, {1}, [] {}, 0, {}, 2.0, 0);
  g.add("b", {}, {2}, [] {}, 0, {}, 5.0, 1);
  g.add("c", {1, 2}, {3}, [] {}, 0, {}, 1.0, 0);
  g.wait_all();
  const std::vector<TaskRecord> recs = g.records();
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].chain_pred, -1);  // chain heads
  EXPECT_EQ(recs[1].chain_pred, -1);
  EXPECT_DOUBLE_EQ(recs[0].chain_cost, 2.0);
  EXPECT_DOUBLE_EQ(recs[1].chain_cost, 5.0);
  EXPECT_DOUBLE_EQ(recs[2].chain_cost, 6.0);  // through b
  EXPECT_EQ(recs[2].chain_pred, 1);
  EXPECT_STREQ(recs[2].name, "c");
  EXPECT_EQ(recs[0].tag, 0u);
  EXPECT_EQ(recs[1].tag, 1u);
  EXPECT_FALSE(recs[2].host);
}

TEST(TaskGraphRecords, NoteHostWorkBridgesAHostAcquire) {
  // The MP runtime's panel pattern: a task writes the diagonal block, the
  // host acquires it (erasing the key history), factors the panel inline,
  // notes that work, and later tasks that read the block must chain
  // through the host record back to the original writer.
  TaskGraph g(1);
  g.set_observe(true);
  g.add("update", {}, {42}, [] {}, 0, {}, 3.0, 0);
  g.host_acquire({}, {42});
  g.note_host_work({42}, 2.0, "panel", 9);
  g.add("solve", {42}, {43}, [] {}, 0, {}, 4.0, 1);
  g.wait_all();
  const std::vector<TaskRecord> recs = g.records();
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_TRUE(recs[1].host);
  EXPECT_EQ(recs[1].tag, 9u);
  EXPECT_DOUBLE_EQ(recs[1].chain_cost, 5.0);  // writer (3) + panel (2)
  EXPECT_EQ(recs[1].chain_pred, 0);
  EXPECT_DOUBLE_EQ(recs[2].chain_cost, 9.0);  // ... + solve (4)
  EXPECT_EQ(recs[2].chain_pred, 1);
}

TEST(TaskGraphRecords, ChainsAndStatsAreThreadCountInvariant) {
  // The deterministic fields (weights, chain costs, predecessors) must not
  // depend on worker timing; only the wall-clock spans may differ, and
  // they are only stamped by the threaded scheduler.
  auto build = [](unsigned threads) {
    TaskGraph g(threads);
    g.set_observe(true);
    for (int i = 0; i < 16; ++i)
      g.add("w", {}, {static_cast<TaskGraph::Key>(i % 4)}, [] {}, 0, {},
            1.0 + i, static_cast<std::uint64_t>(i % 3));
    g.wait_all();
    return g.records();
  };
  const std::vector<TaskRecord> serial = build(1);
  ASSERT_EQ(serial.size(), 16u);
  for (const TaskRecord& r : serial) {  // serial mode: no wall stamps
    EXPECT_EQ(r.wall_start, 0.0);
    EXPECT_EQ(r.wall_finish, 0.0);
  }
  for (unsigned threads : {2u, 5u}) {
    const std::vector<TaskRecord> recs = build(threads);
    ASSERT_EQ(recs.size(), serial.size());
    for (std::size_t i = 0; i < recs.size(); ++i) {
      EXPECT_EQ(recs[i].weight, serial[i].weight);
      EXPECT_EQ(recs[i].chain_cost, serial[i].chain_cost);
      EXPECT_EQ(recs[i].chain_pred, serial[i].chain_pred);
      EXPECT_EQ(recs[i].tag, serial[i].tag);
      EXPECT_GE(recs[i].wall_finish, recs[i].wall_start);
    }
  }
}

TEST(MpDag, BarrierSchedulerUnaffectedByThreads) {
  // Sanity: the barrier reference itself stays bit-identical across thread
  // counts (the PR 3 contract still holds with the shared op-emission
  // path).
  const Machine machine = het_machine(41, 2, 2);
  const PanelDistribution dist = PanelDistribution::block_cyclic(2, 2);
  const MpRun serial = run_qr(machine, dist, Scheduler::kBarrier, 1);
  expect_same_run(serial, run_qr(machine, dist, Scheduler::kBarrier, 3));
}

}  // namespace
}  // namespace hetgrid
