// Tests for the parallel numerics engine: the serial/parallel bit-identity
// guarantee of the message-passing and virtual runtimes, the threaded and
// packed GEMM paths, and the block-store hash/pool upgrades that ride
// along with it.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <unordered_map>

#include "dist/kalinov_lastovetsky.hpp"
#include "dist/panel_distribution.hpp"
#include "matrix/cholesky.hpp"
#include "matrix/gemm.hpp"
#include "matrix/lu.hpp"
#include "matrix/norms.hpp"
#include "mp/block_store.hpp"
#include "mp/mp_runtime.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/virtual_runtime.hpp"
#include "util/parallel_engine.hpp"
#include "util/rng.hpp"

namespace hetgrid {
namespace {

// ----------------------------------------------------- helpers

bool same_bits(const ConstMatrixView& a, const ConstMatrixView& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t j = 0; j < a.cols(); ++j) {
    for (std::size_t i = 0; i < a.rows(); ++i) {
      const double x = a(i, j), y = b(i, j);
      if (std::memcmp(&x, &y, sizeof(double)) != 0) return false;
    }
  }
  return true;
}

void expect_same_events(const std::vector<TraceEvent>& a,
                        const std::vector<TraceEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << "event " << i;
    EXPECT_EQ(a[i].proc, b[i].proc) << "event " << i;
    EXPECT_EQ(a[i].start, b[i].start) << "event " << i;
    EXPECT_EQ(a[i].duration, b[i].duration) << "event " << i;
    EXPECT_EQ(a[i].step, b[i].step) << "event " << i;
    EXPECT_EQ(a[i].blocks, b[i].blocks) << "event " << i;
    EXPECT_EQ(a[i].peer, b[i].peer) << "event " << i;
    EXPECT_EQ(a[i].name, b[i].name) << "event " << i;
  }
}

void expect_same_report(const MpReport& a, const MpReport& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.clock, b.clock);
  EXPECT_EQ(a.busy, b.busy);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.blocks_moved, b.blocks_moved);
  EXPECT_EQ(a.factorized, b.factorized);
}

// Random heterogeneous 2x3 machine (distinct cycle-times so owner clocks
// differ and any accounting that leaked onto worker threads would show).
Machine het_machine(std::uint64_t seed, std::size_t p, std::size_t q) {
  Rng rng(seed);
  return Machine{CycleTimeGrid::sorted_row_major(p, q,
                                                 rng.cycle_times(p * q, 0.2)),
                 NetworkModel{Topology::kSwitched, 1.0e-4, 2.0e-4, true}};
}

constexpr unsigned kThreadCounts[] = {2, 7};

// ----------------------------------------------------- hash regression

// The seed hash folded the column into the low bits of a row-only
// product, so structured sweeps (a block diagonal, a fixed column, a
// tagged panel) collided heavily. With the avalanche mix no sweep may
// chain more than a handful of keys into one bucket.
std::size_t longest_chain(const std::vector<BlockKey>& keys) {
  std::unordered_map<BlockKey, int, BlockKeyHash> map;
  map.reserve(keys.size());
  for (const BlockKey& k : keys) map[k] = 1;
  std::size_t worst = 0;
  for (std::size_t bkt = 0; bkt < map.bucket_count(); ++bkt)
    worst = std::max(worst, map.bucket_size(bkt));
  return worst;
}

TEST(BlockKeyHash, SpreadsDiagonalSweep) {
  std::vector<BlockKey> keys;
  for (std::size_t i = 0; i < 1024; ++i) keys.push_back({i, i});
  EXPECT_LE(longest_chain(keys), 6u);
}

TEST(BlockKeyHash, SpreadsColumnSweep) {
  std::vector<BlockKey> keys;
  for (std::size_t i = 0; i < 1024; ++i) keys.push_back({i, 7});
  EXPECT_LE(longest_chain(keys), 6u);
}

TEST(BlockKeyHash, SpreadsTaggedPanelSweep) {
  // The MP runtime keys A/B/C blocks as {tag * nb + bi, bj}: three
  // interleaved panels per step.
  std::vector<BlockKey> keys;
  const std::size_t nb = 341;
  for (std::size_t tag = 0; tag < 3; ++tag)
    for (std::size_t bi = 0; bi < nb; ++bi)
      keys.push_back({tag * nb + bi, 5});
  EXPECT_LE(longest_chain(keys), 6u);
}

// ----------------------------------------------------- block-store pool

TEST(BlockStore, AcquireRecyclesErasedPayload) {
  BlockStore s;
  Matrix m(4, 6, 1.5);
  const double* payload = m.data();
  s.put({3, 4}, std::move(m));
  s.erase({3, 4});
  EXPECT_EQ(s.pooled(), 1u);
  Matrix back = s.acquire(4, 6);
  EXPECT_EQ(back.data(), payload);  // same buffer, no allocation
  EXPECT_EQ(s.pooled(), 0u);
}

TEST(BlockStore, AcquireAllocatesOnShapeMiss) {
  BlockStore s;
  s.put({0, 0}, Matrix(4, 6, 0.0));
  s.erase({0, 0});
  const Matrix other = s.acquire(6, 4);  // transposed shape: no match
  EXPECT_EQ(other.rows(), 6u);
  EXPECT_EQ(other.cols(), 4u);
  EXPECT_EQ(s.pooled(), 1u);  // 4x6 buffer still pooled
}

TEST(BlockStore, ReservePreventsRehash) {
  std::unordered_map<BlockKey, Matrix, BlockKeyHash> probe;
  probe.reserve(256);
  const std::size_t buckets = probe.bucket_count();
  BlockStore s;
  s.reserve(256);
  for (std::size_t i = 0; i < 256; ++i) s.put({i, i}, Matrix(2, 2, 1.0));
  EXPECT_EQ(s.size(), 256u);
  // The probe map shows reserve() pre-sized the table: inserting up to the
  // reserved count must not grow the bucket array.
  for (std::size_t i = 0; i < 256; ++i) probe.emplace(BlockKey{i, i}, Matrix());
  EXPECT_EQ(probe.bucket_count(), buckets);
}

TEST(BlockStore, PoolBoundedPerShapeWithEvictionCounter) {
  // The shape pool is capacity-bounded: once a shape's shelf is full,
  // erase() frees the payload instead of pooling it and counts
  // block_store.pool_evictions — long runs cannot accumulate every
  // transient shape they ever saw.
  MetricsRegistry reg;
  install_metrics(&reg);
  {
    BlockStore s;
    EXPECT_EQ(s.pool_capacity(), BlockStore::kDefaultPoolCapPerShape);
    s.set_pool_capacity(2);
    EXPECT_EQ(s.pool_capacity(), 2u);
    for (std::size_t i = 0; i < 5; ++i) {
      s.put({i, 0}, Matrix(4, 6, 1.0));
      s.erase({i, 0});
    }
    EXPECT_EQ(s.pooled(), 2u);  // shelf capped, not 5
    // A different shape gets its own shelf under the same cap.
    s.put({9, 0}, Matrix(6, 4, 1.0));
    s.erase({9, 0});
    EXPECT_EQ(s.pooled(), 3u);
  }
  install_metrics(nullptr);
  EXPECT_EQ(reg.counter("block_store.pool_evictions").value(), 3u);
}

// ----------------------------------------------------- MP bit-identity

struct MpRun {
  MpReport report;
  Matrix out;
  std::vector<TraceEvent> events;
};

MpRun run_mmm(const Machine& machine, const Distribution2D& dist,
              std::size_t n, std::size_t block, unsigned threads) {
  Rng rng(11);
  Matrix a(n, n), b(n, n), c(n, n);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);
  MemoryTraceSink sink;
  RuntimeOptions opts;
  opts.threads = threads;
  MpRun run;
  run.report = run_mp_mmm(machine, dist, a.view(), b.view(), c.view(),
                          block, {}, &sink, opts);
  run.out = std::move(c);
  run.events = sink.events();
  return run;
}

MpRun run_lu(const Machine& machine, const Distribution2D& dist,
             std::size_t n, std::size_t block, bool lookahead,
             unsigned threads) {
  Rng rng(13);
  Matrix a(n, n);
  fill_diagonally_dominant(a.view(), rng);
  MemoryTraceSink sink;
  RuntimeOptions opts;
  opts.threads = threads;
  MpRun run;
  run.report =
      run_mp_lu(machine, dist, a.view(), block, {}, lookahead, &sink, opts);
  run.out = std::move(a);
  run.events = sink.events();
  return run;
}

MpRun run_chol(const Machine& machine, const Distribution2D& dist,
               std::size_t n, std::size_t block, unsigned threads) {
  Rng rng(17);
  Matrix a(n, n);
  fill_spd(a.view(), rng);
  MemoryTraceSink sink;
  RuntimeOptions opts;
  opts.threads = threads;
  MpRun run;
  run.report =
      run_mp_cholesky(machine, dist, a.view(), block, {}, &sink, opts);
  run.out = std::move(a);
  run.events = sink.events();
  return run;
}

void expect_same_run(const MpRun& serial, const MpRun& parallel) {
  expect_same_report(serial.report, parallel.report);
  EXPECT_TRUE(same_bits(serial.out.view(), parallel.out.view()));
  expect_same_events(serial.events, parallel.events);
}

TEST(MpParallel, MmmBitIdenticalAcrossThreadCounts) {
  const Machine machine = het_machine(23, 2, 3);
  const PanelDistribution dist = PanelDistribution::block_cyclic(2, 3);
  const MpRun serial = run_mmm(machine, dist, 28, 6, 1);  // ragged edge
  for (unsigned t : kThreadCounts)
    expect_same_run(serial, run_mmm(machine, dist, 28, 6, t));
}

TEST(MpParallel, MmmMisalignedDistributionBitIdentical) {
  // Kalinov–Lastovetsky layouts exercise the feeder transfers (blocks
  // shipped to foreign ring sources before the broadcast starts).
  const Machine machine = het_machine(29, 2, 2);
  const KalinovLastovetskyDistribution dist(machine.grid, 8, 8);
  const MpRun serial = run_mmm(machine, dist, 24, 4, 1);
  for (unsigned t : kThreadCounts)
    expect_same_run(serial, run_mmm(machine, dist, 24, 4, t));
}

TEST(MpParallel, LuBitIdenticalAcrossThreadCounts) {
  const Machine machine = het_machine(31, 2, 3);
  const PanelDistribution dist = PanelDistribution::block_cyclic(2, 3);
  for (bool lookahead : {false, true}) {
    const MpRun serial = run_lu(machine, dist, 28, 6, lookahead, 1);
    for (unsigned t : kThreadCounts)
      expect_same_run(serial, run_lu(machine, dist, 28, 6, lookahead, t));
  }
}

TEST(MpParallel, CholeskyBitIdenticalAcrossThreadCounts) {
  const Machine machine = het_machine(37, 3, 2);
  const PanelDistribution dist = PanelDistribution::block_cyclic(3, 2);
  const MpRun serial = run_chol(machine, dist, 28, 6, 1);
  for (unsigned t : kThreadCounts)
    expect_same_run(serial, run_chol(machine, dist, 28, 6, t));
}

TEST(MpParallel, ThreadsZeroMeansAllHardwareThreads) {
  // threads = 0 resolves to hardware concurrency; still bit-identical.
  const Machine machine = het_machine(41, 2, 2);
  const PanelDistribution dist = PanelDistribution::block_cyclic(2, 2);
  expect_same_run(run_mmm(machine, dist, 16, 4, 1),
                  run_mmm(machine, dist, 16, 4, 0));
}

// ----------------------------------------------------- virtual runtime

TEST(VirtualParallel, MmmBitIdentical) {
  const Machine machine = het_machine(43, 2, 3);
  const PanelDistribution dist = PanelDistribution::block_cyclic(2, 3);
  Rng rng(19);
  Matrix a(28, 28), b(28, 28);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);
  Matrix c1(28, 28), c4(28, 28);
  const VirtualReport r1 =
      run_distributed_mmm(machine, dist, a.view(), b.view(), c1.view(), 6);
  RuntimeOptions opts;
  opts.threads = 4;
  const VirtualReport r4 = run_distributed_mmm(
      machine, dist, a.view(), b.view(), c4.view(), 6, {}, nullptr, opts);
  EXPECT_EQ(r1.makespan, r4.makespan);
  EXPECT_EQ(r1.busy, r4.busy);
  EXPECT_EQ(r1.block_ops, r4.block_ops);
  EXPECT_TRUE(same_bits(c1.view(), c4.view()));
}

TEST(VirtualParallel, LuBitIdentical) {
  const Machine machine = het_machine(47, 2, 2);
  const PanelDistribution dist = PanelDistribution::block_cyclic(2, 2);
  Rng rng(23);
  Matrix a1(28, 28);
  fill_diagonally_dominant(a1.view(), rng);
  Matrix a4 = a1;
  const VirtualLuReport r1 = run_distributed_lu(machine, dist, a1.view(), 6);
  RuntimeOptions opts;
  opts.threads = 4;
  const VirtualLuReport r4 =
      run_distributed_lu(machine, dist, a4.view(), 6, {}, nullptr, opts);
  EXPECT_EQ(r1.makespan, r4.makespan);
  EXPECT_EQ(r1.busy, r4.busy);
  EXPECT_TRUE(r4.factorized);
  EXPECT_TRUE(same_bits(a1.view(), a4.view()));
}

TEST(VirtualParallel, PivotedLuBitIdentical) {
  const Machine machine = het_machine(53, 2, 2);
  const PanelDistribution dist = PanelDistribution::block_cyclic(2, 2);
  Rng rng(29);
  Matrix a1(24, 24);
  fill_random(a1.view(), rng);
  Matrix a4 = a1;
  const VirtualPivotedLuReport r1 =
      run_distributed_lu_pivoted(machine, dist, a1.view(), 6);
  RuntimeOptions opts;
  opts.threads = 4;
  const VirtualPivotedLuReport r4 = run_distributed_lu_pivoted(
      machine, dist, a4.view(), 6, {}, nullptr, opts);
  EXPECT_EQ(r1.makespan, r4.makespan);
  EXPECT_EQ(r1.piv, r4.piv);
  EXPECT_FALSE(r4.singular);
  EXPECT_TRUE(same_bits(a1.view(), a4.view()));
}

TEST(VirtualParallel, QrBitIdentical) {
  // QR is the sharp determinism case: pass 1 accumulates different block
  // rows into one shared W block per trailing column, so the lanes must be
  // keyed by block column for the sums to stay in canonical order.
  const Machine machine = het_machine(59, 2, 2);
  const PanelDistribution dist = PanelDistribution::block_cyclic(2, 2);
  Rng rng(31);
  Matrix a1(32, 20);
  fill_random(a1.view(), rng);
  Matrix a4 = a1;
  const VirtualQrReport r1 = run_distributed_qr(machine, dist, a1.view(), 5);
  RuntimeOptions opts;
  opts.threads = 4;
  const VirtualQrReport r4 =
      run_distributed_qr(machine, dist, a4.view(), 5, {}, nullptr, opts);
  EXPECT_EQ(r1.makespan, r4.makespan);
  EXPECT_EQ(r1.tau, r4.tau);
  EXPECT_TRUE(same_bits(a1.view(), a4.view()));
}

TEST(VirtualParallel, CholeskyBitIdentical) {
  const Machine machine = het_machine(61, 2, 3);
  const PanelDistribution dist = PanelDistribution::block_cyclic(2, 3);
  Rng rng(37);
  Matrix a1(30, 30);
  fill_spd(a1.view(), rng);
  Matrix a4 = a1;
  const VirtualCholeskyReport r1 =
      run_distributed_cholesky(machine, dist, a1.view(), 6);
  RuntimeOptions opts;
  opts.threads = 4;
  const VirtualCholeskyReport r4 = run_distributed_cholesky(
      machine, dist, a4.view(), 6, {}, nullptr, opts);
  EXPECT_EQ(r1.makespan, r4.makespan);
  EXPECT_EQ(r1.busy, r4.busy);
  EXPECT_TRUE(r4.factorized);
  EXPECT_TRUE(same_bits(a1.view(), a4.view()));
}

// ----------------------------------------------------- gemm paths

TEST(GemmParallel, ThreadedOverloadBitIdenticalToSerial) {
  Rng rng(67);
  Matrix a(96, 80), b(80, 300), c0(96, 300), c1(96, 300);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);
  fill_random(c0.view(), rng);
  c1.view().copy_from(c0.view());
  gemm(Trans::No, Trans::No, 2.0, a.view(), b.view(), 0.5, c0.view());
  ParallelEngine engine(3);
  gemm(Trans::No, Trans::No, 2.0, a.view(), b.view(), 0.5, c1.view(),
       engine);
  EXPECT_TRUE(same_bits(c0.view(), c1.view()));
}

TEST(GemmParallel, ThreadedOverloadSerialEngineFallsBack) {
  Rng rng(71);
  Matrix a(20, 20), b(20, 20), c0(20, 20, 0.0), c1(20, 20, 0.0);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);
  gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.0, c0.view());
  ParallelEngine engine(1);
  gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.0, c1.view(),
       engine);
  EXPECT_TRUE(same_bits(c0.view(), c1.view()));
}

TEST(GemmParallel, PackedLargePathMatchesReference) {
  // 200 x 150 from an inner dimension of 170 exceeds the 64 x 64 tile, so
  // the packed path runs; validate against the naive reference.
  Rng rng(73);
  Matrix a(200, 170), b(170, 150), c(200, 150), ref(200, 150);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);
  fill_random(c.view(), rng);
  ref.view().copy_from(c.view());
  gemm(Trans::No, Trans::No, 1.5, a.view(), b.view(), -0.5, c.view());
  gemm_reference(Trans::No, Trans::No, 1.5, a.view(), b.view(), -0.5,
                 ref.view());
  EXPECT_LT(max_abs_diff(c.view(), ref.view()), 1e-9);
}

TEST(GemmParallel, ThreadedTransposedOperandsBitIdentical) {
  Rng rng(79);
  Matrix a(60, 90), b(280, 60), c0(90, 280, 1.0), c1(90, 280, 1.0);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);
  gemm(Trans::Yes, Trans::Yes, -1.0, a.view(), b.view(), 1.0, c0.view());
  ParallelEngine engine(4);
  gemm(Trans::Yes, Trans::Yes, -1.0, a.view(), b.view(), 1.0, c1.view(),
       engine);
  EXPECT_TRUE(same_bits(c0.view(), c1.view()));
}

TEST(GemmParallel, ThreadedAllTransposeCombosMatchReference) {
  // Every (trans_a, trans_b) combination through the threaded-stripe
  // overload, wide enough (n = 300) that the engine actually splits
  // stripes: must match the naive reference numerically and the serial
  // overload bit-for-bit.
  Rng rng(83);
  const std::size_t m = 70, n = 300, k = 90;
  for (Trans ta : {Trans::No, Trans::Yes}) {
    for (Trans tb : {Trans::No, Trans::Yes}) {
      Matrix a(ta == Trans::No ? m : k, ta == Trans::No ? k : m);
      Matrix b(tb == Trans::No ? k : n, tb == Trans::No ? n : k);
      Matrix c(m, n), c_serial(m, n), c_ref(m, n);
      fill_random(a.view(), rng);
      fill_random(b.view(), rng);
      fill_random(c.view(), rng);
      c_serial.view().copy_from(c.view());
      c_ref.view().copy_from(c.view());
      ParallelEngine engine(3);
      gemm(ta, tb, 1.5, a.view(), b.view(), -0.5, c.view(), engine);
      gemm(ta, tb, 1.5, a.view(), b.view(), -0.5, c_serial.view());
      gemm_reference(ta, tb, 1.5, a.view(), b.view(), -0.5, c_ref.view());
      EXPECT_TRUE(same_bits(c.view(), c_serial.view()))
          << "ta=" << (ta == Trans::Yes) << " tb=" << (tb == Trans::Yes);
      EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), 1e-11 * k)
          << "ta=" << (ta == Trans::Yes) << " tb=" << (tb == Trans::Yes);
    }
  }
}

// ----------------------------------------------------- kernel dispatch

// Restores runtime kernel detection no matter how a test exits.
struct KernelGuard {
  ~KernelGuard() { gemm_force_kernel("auto"); }
};

TEST(GemmKernel, DispatchReportsAKnownKernel) {
  KernelGuard guard;
  const std::string name = gemm_kernel_name();
  EXPECT_TRUE(name == "scalar" || name == "avx2") << name;
  EXPECT_FALSE(gemm_force_kernel("avx512-dreams"));
  EXPECT_TRUE(gemm_force_kernel("scalar"));
  EXPECT_STREQ(gemm_kernel_name(), "scalar");
  EXPECT_TRUE(gemm_force_kernel("auto"));
  EXPECT_EQ(gemm_kernel_name(), name);
}

TEST(GemmKernel, ScalarAndAvx2BitIdentical) {
  // The dispatch contract: kernel choice can never change a computed bit.
  // The AVX2 kernel vectorizes across rows with separate mul+add (no FMA),
  // so each C element keeps the scalar kernel's rounding sequence exactly.
  KernelGuard guard;
  if (!gemm_force_kernel("avx2")) GTEST_SKIP() << "host lacks AVX2";
  Rng rng(89);
  // Ragged shapes exercise the 8x4 register core plus its row tail (137 =
  // 17*8 + 1), column tail (211 = 52*4 + 3), and partial packs.
  const std::size_t m = 137, n = 211, k = 93;
  Matrix a(m, k), b(k, n), c_simd(m, n), c_scalar(m, n);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);
  fill_random(c_simd.view(), rng);
  c_scalar.view().copy_from(c_simd.view());
  gemm(Trans::No, Trans::No, 1.5, a.view(), b.view(), -0.5, c_simd.view());
  ASSERT_TRUE(gemm_force_kernel("scalar"));
  gemm(Trans::No, Trans::No, 1.5, a.view(), b.view(), -0.5,
       c_scalar.view());
  EXPECT_TRUE(same_bits(c_simd.view(), c_scalar.view()));
}

TEST(GemmKernel, MpRunsBitIdenticalAcrossDispatch) {
  // End-to-end: a distributed MMM and LU with 70-wide blocks (large enough
  // that every local update takes the packed microkernel path) must produce
  // byte-identical reports, matrices, and traces under either kernel.
  KernelGuard guard;
  if (!gemm_force_kernel("avx2")) GTEST_SKIP() << "host lacks AVX2";
  const Machine machine = het_machine(47, 2, 2);
  const PanelDistribution dist = PanelDistribution::block_cyclic(2, 2);
  const MpRun mmm_simd = run_mmm(machine, dist, 140, 70, 2);
  const MpRun lu_simd = run_lu(machine, dist, 140, 70, false, 2);
  ASSERT_TRUE(gemm_force_kernel("scalar"));
  expect_same_run(run_mmm(machine, dist, 140, 70, 2), mmm_simd);
  expect_same_run(run_lu(machine, dist, 140, 70, false, 2), lu_simd);
}

TEST(GemmKernel, SmallPathNBoundBitSafe) {
  // Regression for the small-path bound: a 64 x 64 x 400 call now takes
  // the packed path (the old m/k-only test streamed strided B columns with
  // no reuse). Packed and unpacked kernels are FP-identical per element,
  // so the result must match, bit for bit, the same product computed in
  // column slices narrow enough to stay on the unpacked tile path.
  Rng rng(97);
  const std::size_t m = 64, k = 64, n = 400, slice = 100;
  Matrix a(m, k), b(k, n), c_full(m, n), c_sliced(m, n);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);
  fill_random(c_full.view(), rng);
  c_sliced.view().copy_from(c_full.view());
  gemm(Trans::No, Trans::No, 1.5, a.view(), b.view(), 0.5, c_full.view());
  for (std::size_t j0 = 0; j0 < n; j0 += slice) {
    const std::size_t jlen = std::min(slice, n - j0);
    gemm(Trans::No, Trans::No, 1.5, a.view(), b.block(0, j0, k, jlen), 0.5,
         c_sliced.block(0, j0, m, jlen));
  }
  EXPECT_TRUE(same_bits(c_full.view(), c_sliced.view()));
}

// ----------------------------------------------------- metric stability

// Canonical rendering of the gemm call counters — the part of a metrics
// snapshot the determinism contract pins across thread counts. (The full
// snapshot also holds pool/engine wall-clock histograms, which exist only
// when a pool runs; those are documented as wall-clock-valued and excluded
// from the byte-stability guarantee.)
std::string gemm_counter_fingerprint(MetricsRegistry& m) {
  std::ostringstream os;
  os << "gemm.calls=" << m.counter("gemm.calls").value()
     << " gemm.tile_calls=" << m.counter("gemm.tile_calls").value()
     << " gemm.packed_calls=" << m.counter("gemm.packed_calls").value();
  return os.str();
}

std::string counted_gemm_workload(unsigned threads) {
  MetricsRegistry reg;
  install_metrics(&reg);
  {
    Rng rng(101);
    ParallelEngine engine(threads);
    // One packed logical call, wide enough to split into several stripes.
    Matrix a(96, 80), b(80, 512), c(96, 512);
    fill_random(a.view(), rng);
    fill_random(b.view(), rng);
    fill_random(c.view(), rng);
    gemm(Trans::No, Trans::No, 1.5, a.view(), b.view(), 0.5, c.view(),
         engine);
    // One tile-sized call, one transposed call, one alpha == 0 call.
    Matrix sa(32, 16), sb(16, 40), sc(32, 40, 0.0);
    fill_random(sa.view(), rng);
    fill_random(sb.view(), rng);
    gemm(Trans::No, Trans::No, 1.0, sa.view(), sb.view(), 0.0, sc.view(),
         engine);
    Matrix ta(16, 32), tc(32, 40, 0.0);
    fill_random(ta.view(), rng);
    gemm(Trans::Yes, Trans::No, 1.0, ta.view(), sb.view(), 0.0, tc.view(),
         engine);
    gemm(Trans::No, Trans::No, 0.0, sa.view(), sb.view(), 1.0, sc.view(),
         engine);
  }
  install_metrics(nullptr);
  return gemm_counter_fingerprint(reg);
}

TEST(GemmMetrics, CallCountersIdenticalAcrossThreadCounts) {
  // Regression for the per-stripe counting bug: the ParallelEngine overload
  // used to recurse into the counted serial gemm once per column stripe, so
  // gemm.calls / gemm.packed_calls grew with the thread count. Counting the
  // logical call once restores the "call counts never depend on the thread
  // count" invariant (src/matrix/gemm.cpp) — the counter fingerprint must
  // be byte-identical for threads 1, 2, and 7.
  const std::string serial = counted_gemm_workload(1);
  EXPECT_EQ(serial,
            "gemm.calls=4 gemm.tile_calls=1 gemm.packed_calls=1");
  for (unsigned t : {2u, 7u}) EXPECT_EQ(serial, counted_gemm_workload(t));
}

// ----------------------------------------------------- packed-panel cache

using Scheduler = RuntimeOptions::Scheduler;

// Restores the pack-cache consumption toggle no matter how a test exits.
struct PackCacheGuard {
  explicit PackCacheGuard(bool on) : prev_(gemm_set_pack_cache(on)) {}
  ~PackCacheGuard() { gemm_set_pack_cache(prev_); }

 private:
  bool prev_;
};

struct KernelResults {
  Matrix mmm, lu, chol, qr;
  std::vector<double> tau;
};

// One run of all four MP kernels at n = 140 with 70-wide blocks: every
// local trailing update is big enough for the packed microkernel path, so
// the pack cache (when enabled) is genuinely on the line.
KernelResults run_all_kernels(const Machine& machine,
                              const Distribution2D& dist, Scheduler sched,
                              unsigned threads) {
  const std::size_t n = 140, block = 70;
  RuntimeOptions opts;
  opts.threads = threads;
  opts.scheduler = sched;
  KernelResults r;
  {
    Rng rng(111);
    Matrix a(n, n), b(n, n);
    fill_random(a.view(), rng);
    fill_random(b.view(), rng);
    r.mmm = Matrix(n, n);
    run_mp_mmm(machine, dist, a.view(), b.view(), r.mmm.view(), block, {},
               nullptr, opts);
  }
  {
    Rng rng(113);
    r.lu = Matrix(n, n);
    fill_diagonally_dominant(r.lu.view(), rng);
    run_mp_lu(machine, dist, r.lu.view(), block, {}, false, nullptr, opts);
  }
  {
    Rng rng(117);
    r.chol = Matrix(n, n);
    fill_spd(r.chol.view(), rng);
    run_mp_cholesky(machine, dist, r.chol.view(), block, {}, nullptr, opts);
  }
  {
    Rng rng(119);
    r.qr = Matrix(n, n);
    fill_random(r.qr.view(), rng);
    r.tau =
        run_mp_qr(machine, dist, r.qr.view(), block, {}, nullptr, opts).tau;
  }
  return r;
}

TEST(PackCache, MpKernelsBitIdenticalAcrossKernelCacheThreadsScheduler) {
  // The acceptance matrix of the packed-panel cache: MMM, LU, Cholesky and
  // QR must produce byte-identical outputs across {scalar, avx2} x {cache
  // on, off} x threads {1, 2, 7} x {barrier, dag}. The cache only skips
  // redundant packing — pure data movement — so no cell of this product may
  // move a single bit.
  KernelGuard guard;
  const Machine machine = het_machine(47, 2, 2);
  const PanelDistribution dist = PanelDistribution::block_cyclic(2, 2);
  ASSERT_TRUE(gemm_force_kernel("scalar"));
  const KernelResults base = [&] {
    PackCacheGuard cache_guard(true);
    return run_all_kernels(machine, dist, Scheduler::kBarrier, 1);
  }();
  const bool have_avx2 = gemm_force_kernel("avx2");
  for (const std::string_view kern : {"scalar", "avx2"}) {
    if (kern == "avx2" && !have_avx2) continue;
    ASSERT_TRUE(gemm_force_kernel(kern));
    for (bool cache_on : {true, false}) {
      PackCacheGuard cache_guard(cache_on);
      for (unsigned threads : {1u, 2u, 7u}) {
        for (Scheduler sched : {Scheduler::kBarrier, Scheduler::kDag}) {
          SCOPED_TRACE(testing::Message()
                       << kern << " cache=" << cache_on
                       << " threads=" << threads << " dag="
                       << (sched == Scheduler::kDag));
          const KernelResults got =
              run_all_kernels(machine, dist, sched, threads);
          EXPECT_TRUE(same_bits(base.mmm.view(), got.mmm.view()));
          EXPECT_TRUE(same_bits(base.lu.view(), got.lu.view()));
          EXPECT_TRUE(same_bits(base.chol.view(), got.chol.view()));
          EXPECT_TRUE(same_bits(base.qr.view(), got.qr.view()));
          EXPECT_EQ(base.tau, got.tau);
        }
      }
    }
  }
}

TEST(PackCache, LuPacksEachPanelBlockOncePerStep) {
  // The point of the cache, counted: a 320 / 80 LU (nb = 4) on a 1x1 grid
  // packs each trailing L/U panel block exactly once per step and serves
  // every other trailing-update gemm from the cache. Step k has
  // t = nb - 1 - k panel blocks per side and t^2 tagged gemms, so misses =
  // sum_k 2t = 12 and hits = sum_k 2(t^2 - t) = 16. Exact counts are only
  // pinned under the barrier scheduler with one thread: under dag
  // concurrency two workers can both miss the same key before the first
  // insert lands (the pack is then built twice, used once — still correct,
  // just counted twice).
  KernelGuard guard;
  PackCacheGuard cache_guard(true);
  MetricsRegistry reg;
  install_metrics(&reg);
  {
    const Machine machine = het_machine(67, 1, 1);
    const PanelDistribution dist = PanelDistribution::block_cyclic(1, 1);
    Rng rng(131);
    Matrix a(320, 320);
    fill_diagonally_dominant(a.view(), rng);
    run_mp_lu(machine, dist, a.view(), 80);
  }
  install_metrics(nullptr);
  EXPECT_EQ(reg.counter("gemm.pack_misses").value(), 12u);
  EXPECT_EQ(reg.counter("gemm.pack_hits").value(), 16u);
  EXPECT_EQ(reg.counter("gemm.pack_evictions").value(), 0u);
}

TEST(PackCache, VersionBumpInvalidatesStalePack) {
  // The invalidation protocol: overwriting a block bumps its write version
  // (BlockStore::put), so the next tagged gemm looks up a key that has
  // never been cached — the stale pack is simply never asked for again.
  KernelGuard guard;
  PackCacheGuard cache_guard(true);
  MetricsRegistry reg;
  install_metrics(&reg);
  {
    BlockStore store;
    const BlockKey key{3, 5};
    PackedPanelCache* cache = &store.pack_cache();
    Rng rng(137);
    Matrix a1(80, 80), a2(80, 80), b(80, 80);
    fill_random(a1.view(), rng);
    fill_random(a2.view(), rng);
    fill_random(b.view(), rng);
    store.put(key, a1);
    const BlockStore& cstore = store;
    const auto tag = [&] {
      return PackTag{BlockStore::pack_id(key), store.version(key), true};
    };
    Matrix c1(80, 80, 0.0), c2(80, 80, 0.0), c3(80, 80, 0.0);
    gemm_cached(Trans::No, Trans::No, 1.0, cstore.at(key), tag(), b.view(),
                PackTag{}, 0.0, c1.view(), cache);  // miss: packs a1
    gemm_cached(Trans::No, Trans::No, 1.0, cstore.at(key), tag(), b.view(),
                PackTag{}, 0.0, c2.view(), cache);  // hit: reuses the pack
    EXPECT_TRUE(same_bits(c1.view(), c2.view()));
    store.put(key, a2);  // overwrite: version bump makes the pack stale
    gemm_cached(Trans::No, Trans::No, 1.0, cstore.at(key), tag(), b.view(),
                PackTag{}, 0.0, c3.view(), cache);  // miss: packs a2
    // The post-overwrite result must be the fresh a2 * b product, bit for
    // bit — not a replay of the stale a1 pack.
    Matrix ref(80, 80, 0.0);
    gemm(Trans::No, Trans::No, 1.0, a2.view(), b.view(), 0.0, ref.view());
    EXPECT_TRUE(same_bits(c3.view(), ref.view()));
    EXPECT_FALSE(same_bits(c3.view(), c1.view()));
  }
  install_metrics(nullptr);
  EXPECT_EQ(reg.counter("gemm.pack_misses").value(), 2u);
  EXPECT_EQ(reg.counter("gemm.pack_hits").value(), 1u);
}

TEST(PackCache, CapacityBoundEvictsLeastRecentlyUsed) {
  // A tiny capacity forces evictions: three distinct 80 x 80 packs (6400
  // doubles each) through a 10000-double cache leave at most one resident
  // (eviction never removes the sole entry), and re-touching an evicted key
  // misses again.
  KernelGuard guard;
  PackCacheGuard cache_guard(true);
  MetricsRegistry reg;
  install_metrics(&reg);
  {
    PackedPanelCache cache;
    cache.set_capacity(10000);
    Rng rng(139);
    Matrix a(80, 80), b(80, 80), c(80, 80, 0.0);
    fill_random(a.view(), rng);
    fill_random(b.view(), rng);
    for (std::uint64_t id : {1u, 2u, 3u, 1u}) {
      gemm_cached(Trans::No, Trans::No, 1.0, a.view(), PackTag{id, 1, true},
                  b.view(), PackTag{}, 0.0, c.view(), &cache);
    }
    EXPECT_LE(cache.held_doubles(), cache.capacity());
    EXPECT_EQ(cache.size(), 1u);
  }
  install_metrics(nullptr);
  // All four calls miss: ids 1, 2, 3 are first touches and the second id 1
  // was evicted by 2 and 3 before it came back around.
  EXPECT_EQ(reg.counter("gemm.pack_misses").value(), 4u);
  EXPECT_EQ(reg.counter("gemm.pack_hits").value(), 0u);
  EXPECT_GE(reg.counter("gemm.pack_evictions").value(), 2u);
}

}  // namespace
}  // namespace hetgrid
