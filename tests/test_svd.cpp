// Tests for the SVD kernels backing the paper's Section 4.4 heuristic.
#include <gtest/gtest.h>

#include <cmath>

#include "matrix/gemm.hpp"
#include "matrix/norms.hpp"
#include "svd/svd.hpp"
#include "util/rng.hpp"

namespace hetgrid {
namespace {

Matrix random_matrix(std::size_t m, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix a(m, n);
  fill_random(a.view(), rng);
  return a;
}

Matrix positive_matrix(std::size_t m, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix a(m, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < m; ++i) a(i, j) = 0.1 + rng.uniform();
  return a;
}

// ----------------------------------------------------- dominant triplet

TEST(DominantTriplet, ExactOnDiagonalMatrix) {
  Matrix a(3, 3, 0.0);
  a(0, 0) = 5.0;
  a(1, 1) = 2.0;
  a(2, 2) = 1.0;
  const SingularTriplet t = dominant_triplet(a.view());
  EXPECT_NEAR(t.sigma, 5.0, 1e-10);
  EXPECT_NEAR(std::abs(t.u[0]), 1.0, 1e-8);
  EXPECT_NEAR(std::abs(t.v[0]), 1.0, 1e-8);
}

TEST(DominantTriplet, ExactOnRank1Matrix) {
  // m = 3 * u * v^T with u = (3,4)/5, v = (1,0).
  Matrix m(2, 2, 0.0);
  m(0, 0) = 3.0 * 0.6;
  m(1, 0) = 3.0 * 0.8;
  const SingularTriplet t = dominant_triplet(m.view());
  EXPECT_NEAR(t.sigma, 3.0, 1e-12);
  EXPECT_NEAR(t.u[0], 0.6, 1e-10);
  EXPECT_NEAR(t.u[1], 0.8, 1e-10);
  EXPECT_NEAR(t.v[0], 1.0, 1e-10);
}

TEST(DominantTriplet, UnitNormVectors) {
  const Matrix a = positive_matrix(5, 7, 3);
  const SingularTriplet t = dominant_triplet(a.view());
  double un = 0.0, vn = 0.0;
  for (double x : t.u) un += x * x;
  for (double x : t.v) vn += x * x;
  EXPECT_NEAR(un, 1.0, 1e-12);
  EXPECT_NEAR(vn, 1.0, 1e-12);
}

TEST(DominantTriplet, SignConventionIsDeterministic) {
  const Matrix a = random_matrix(4, 4, 10);
  const SingularTriplet t1 = dominant_triplet(a.view());
  const SingularTriplet t2 = dominant_triplet(a.view());
  EXPECT_GE(t1.v[0], 0.0);
  for (std::size_t i = 0; i < t1.v.size(); ++i)
    EXPECT_DOUBLE_EQ(t1.v[i], t2.v[i]);
}

TEST(DominantTriplet, PositiveMatrixGivesPositiveVectors) {
  // Perron–Frobenius: the dominant singular vectors of an entrywise
  // positive matrix are entrywise positive (after the sign convention) —
  // the property the heuristic relies on for r_i, c_j > 0.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Matrix a = positive_matrix(4, 5, 100 + seed);
    const SingularTriplet t = dominant_triplet(a.view());
    for (double x : t.u) EXPECT_GT(x, 0.0) << "seed " << seed;
    for (double x : t.v) EXPECT_GT(x, 0.0) << "seed " << seed;
  }
}

TEST(DominantTriplet, MatchesJacobiSigma) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Matrix a = random_matrix(6, 4, 200 + seed);
    const SingularTriplet t = dominant_triplet(a.view());
    const SvdResult full = jacobi_svd(a.view());
    EXPECT_NEAR(t.sigma, full.sigma[0], 1e-8 * full.sigma[0])
        << "seed " << seed;
  }
}

TEST(DominantTriplet, ZeroMatrixGivesZeroSigma) {
  Matrix a(3, 3, 0.0);
  const SingularTriplet t = dominant_triplet(a.view());
  EXPECT_DOUBLE_EQ(t.sigma, 0.0);
}

// ----------------------------------------------------- jacobi svd

class JacobiShapes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(JacobiShapes, ReconstructsMatrix) {
  const auto [m, n] = GetParam();
  const Matrix a =
      random_matrix(m, n, static_cast<std::uint64_t>(m * 100 + n));
  const SvdResult svd = jacobi_svd(a.view());

  const std::size_t k = svd.sigma.size();
  Matrix us(m, k, 0.0);
  for (std::size_t j = 0; j < k; ++j)
    for (std::size_t i = 0; i < static_cast<std::size_t>(m); ++i)
      us(i, j) = svd.u(i, j) * svd.sigma[j];
  Matrix rec(m, n, 0.0);
  gemm(Trans::No, Trans::Yes, 1.0, us.view(), svd.v.view(), 0.0, rec.view());
  EXPECT_LT(max_abs_diff(rec.view(), a.view()), 1e-10);
}

TEST_P(JacobiShapes, SigmasSortedAndNonNegative) {
  const auto [m, n] = GetParam();
  const Matrix a =
      random_matrix(m, n, static_cast<std::uint64_t>(m * 51 + n));
  const SvdResult svd = jacobi_svd(a.view());
  for (std::size_t i = 0; i + 1 < svd.sigma.size(); ++i)
    EXPECT_GE(svd.sigma[i], svd.sigma[i + 1]);
  for (double s : svd.sigma) EXPECT_GE(s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, JacobiShapes,
                         ::testing::Values(std::make_pair(1, 1),
                                           std::make_pair(3, 3),
                                           std::make_pair(5, 3),
                                           std::make_pair(3, 5),
                                           std::make_pair(12, 12)));

TEST(JacobiSvd, SingularValuesOfKnownMatrix) {
  // [[3, 0], [0, -4]] has singular values {4, 3}.
  Matrix a(2, 2, 0.0);
  a(0, 0) = 3.0;
  a(1, 1) = -4.0;
  const SvdResult svd = jacobi_svd(a.view());
  EXPECT_NEAR(svd.sigma[0], 4.0, 1e-12);
  EXPECT_NEAR(svd.sigma[1], 3.0, 1e-12);
}

TEST(JacobiSvd, FrobeniusNormIsSigmaNorm) {
  const Matrix a = random_matrix(7, 5, 301);
  const SvdResult svd = jacobi_svd(a.view());
  double sum = 0.0;
  for (double s : svd.sigma) sum += s * s;
  EXPECT_NEAR(std::sqrt(sum), norm_frobenius(a.view()), 1e-10);
}

// ----------------------------------------------------- rank-1 machinery

TEST(Rank1Approximation, EckartYoungError) {
  // The best rank-1 approximation error (Frobenius) is
  // sqrt(sum_{i>=2} sigma_i^2).
  const Matrix a = random_matrix(6, 6, 401);
  const SvdResult svd = jacobi_svd(a.view());
  double tail = 0.0;
  for (std::size_t i = 1; i < svd.sigma.size(); ++i)
    tail += svd.sigma[i] * svd.sigma[i];

  const Matrix r1 = rank1_approximation(a.view());
  Matrix diff(6, 6);
  diff.view().copy_from(a.view());
  for (std::size_t j = 0; j < 6; ++j)
    for (std::size_t i = 0; i < 6; ++i) diff(i, j) -= r1(i, j);
  EXPECT_NEAR(norm_frobenius(diff.view()), std::sqrt(tail), 1e-8);
}

TEST(Rank1Defect, ZeroForRank1Matrix) {
  Matrix a(3, 4, 0.0);
  const double u[] = {1.0, 2.0, 3.0};
  const double v[] = {1.0, 0.5, 2.0, 4.0};
  for (std::size_t j = 0; j < 4; ++j)
    for (std::size_t i = 0; i < 3; ++i) a(i, j) = u[i] * v[j];
  EXPECT_LT(rank1_defect(a.view()), 1e-12);
}

TEST(Rank1Defect, PositiveForFullRankMatrix) {
  EXPECT_GT(rank1_defect(Matrix::identity(3).view()), 0.1);
}

TEST(Rank1Defect, ZeroMatrixHasZeroDefect) {
  Matrix a(2, 2, 0.0);
  EXPECT_DOUBLE_EQ(rank1_defect(a.view()), 0.0);
}

}  // namespace
}  // namespace hetgrid
