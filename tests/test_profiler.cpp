// Tests for the wall-clock observability layer (src/obs/profiler,
// src/obs/metrics): registry semantics, the byte-stable JSON snapshot,
// profiler lane merging, and the two contracts the CLI's --profile mode
// depends on — attaching the instrumentation changes no computed result,
// and a --threads=1 metrics snapshot is identical across repeated runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>

#include "core/exact_solver.hpp"
#include "dist/panel_distribution.hpp"
#include "matrix/lu.hpp"
#include "matrix/matrix.hpp"
#include "mp/mp_runtime.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace hetgrid {
namespace {

// Bit-exact double comparison: EXPECT_EQ on doubles would also pass for
// -0.0 vs 0.0 and fail to distinguish NaN payloads.
std::uint64_t bits(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof u);
  return u;
}

// Installs a registry for the enclosing scope and uninstalls it on exit,
// even when an EXPECT fails out of the test body.
struct ScopedMetrics {
  MetricsRegistry registry;
  ScopedMetrics() { install_metrics(&registry); }
  ~ScopedMetrics() { install_metrics(nullptr); }
};

// ----------------------------------------------------- metrics registry

TEST(Metrics, CountersGaugesAndHistogramsAccumulate) {
  MetricsRegistry m;
  m.counter("c").add();
  m.counter("c").add(4);
  EXPECT_EQ(m.counter("c").value(), 5u);

  m.gauge("g").set(2.0);
  m.gauge("g").set(0.5);
  EXPECT_DOUBLE_EQ(m.gauge("g").last(), 0.5);
  EXPECT_DOUBLE_EQ(m.gauge("g").max(), 2.0);

  Histogram& h = m.histogram("h");
  h.record(1.0);
  h.record(3.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.sum(), 4.0);
}

TEST(Metrics, QuantilesReportBucketUpperEdges) {
  Histogram h;
  for (int i = 0; i < 50; ++i) h.record(1.0);  // bucket edge 2^0 = 1
  for (int i = 0; i < 50; ++i) h.record(3.0);  // bucket edge 2^2 = 4
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 4.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 4.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);   // rank clamps to 1
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(Histogram().quantile(0.5), 0.0);  // empty
}

TEST(Metrics, SnapshotJsonBytesAreDeterministic) {
  MetricsRegistry m;
  m.counter("a.count").add(3);
  m.gauge("b.depth").set(2.0);
  m.gauge("b.depth").set(1.5);
  m.histogram("c.lat").record(1.0);
  m.histogram("c.lat").record(3.0);
  const std::string expected =
      "{\"metrics\":[\n"
      "  {\"name\":\"a.count\",\"type\":\"counter\",\"value\":3},\n"
      "  {\"name\":\"b.depth\",\"type\":\"gauge\",\"last\":1.5,\"max\":2},\n"
      "  {\"name\":\"c.lat\",\"type\":\"histogram\",\"count\":2,\"sum\":4,"
      "\"p50\":1,\"p95\":4,\"p99\":4,\"buckets\":"
      "[{\"le\":1,\"count\":1},{\"le\":4,\"count\":1}]}\n"
      "]}\n";
  EXPECT_EQ(m.snapshot_json(), expected);
  EXPECT_EQ(m.snapshot_json(), m.snapshot_json());
}

TEST(Metrics, HelpersAreNoOpsWithNothingInstalled) {
  ASSERT_EQ(installed_metrics(), nullptr);
  metric_count("nobody.listens");
  metric_gauge("nobody.listens", 1.0);
  metric_record("nobody.listens", 1.0);
  SUCCEED();
}

TEST(Metrics, ConcurrentUpdatesThroughTheHelpersAreLossless) {
  ScopedMetrics scoped;
  {
    ThreadPool pool(4);
    for (int i = 0; i < 400; ++i)
      pool.submit([] {
        metric_count("t.count");
        metric_record("t.hist", 2.0);
      });
    pool.wait_idle();
  }
  EXPECT_EQ(scoped.registry.counter("t.count").value(), 400u);
  EXPECT_EQ(scoped.registry.histogram("t.hist").count(), 400u);
  EXPECT_DOUBLE_EQ(scoped.registry.histogram("t.hist").sum(), 800.0);
  // The pool itself reports under a registry too.
  EXPECT_GE(scoped.registry.counter("pool.tasks_submitted").value(), 400u);
}

// ----------------------------------------------------- profiler

TEST(ProfilerTest, ScopesWithoutARunningProfilerAreSafe) {
  ASSERT_EQ(installed_profiler(), nullptr);
  { ProfScope scope("orphan"); }
  prof_set_thread_name("still-no-profiler");
  SUCCEED();
}

TEST(ProfilerTest, MergesMainAndWorkerLanesAndRanksHotspots) {
  Profiler prof;
  prof.start();
  EXPECT_EQ(installed_profiler(), &prof);
  { ProfScope scope("unit.main"); }
  {
    ThreadPool pool(2);
    for (int i = 0; i < 16; ++i)
      pool.submit([] { ProfScope scope("unit.work"); });
    pool.wait_idle();
  }
  prof.stop();
  EXPECT_EQ(installed_profiler(), nullptr);

  ASSERT_GE(prof.lanes(), 2u);
  EXPECT_EQ(prof.lane_names()[0], "main");
  bool has_worker = false;
  for (const std::string& lane : prof.lane_names())
    has_worker = has_worker || lane.rfind("worker-", 0) == 0;
  EXPECT_TRUE(has_worker);

  EXPECT_GT(prof.total_seconds(), 0.0);
  EXPECT_GT(prof.span_seconds("unit.main"), 0.0);
  EXPECT_GT(prof.span_seconds("unit.work"), 0.0);
  // The pool wraps every task in its own span.
  EXPECT_GT(prof.span_seconds("pool.task"), 0.0);

  std::ostringstream table;
  prof.hotspot_table(3).print(table);
  EXPECT_NE(table.str().find("hotspots"), std::string::npos);
  EXPECT_NE(table.str().find("pool.task"), std::string::npos);

  std::ostringstream chrome;
  prof.write_chrome(chrome);
  EXPECT_NE(chrome.str().find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(chrome.str().find("unit.work"), std::string::npos);
  EXPECT_EQ(chrome.str().substr(chrome.str().size() - 3), "]}\n");
}

TEST(ProfilerTest, RestartsCleanlyAfterStop) {
  Profiler prof;
  prof.start();
  { ProfScope scope("round.one"); }
  prof.stop();
  const std::size_t first_lanes = prof.lanes();
  prof.start();
  { ProfScope scope("round.two"); }
  prof.stop();
  EXPECT_GE(prof.lanes(), 1u);
  EXPECT_LE(prof.lanes(), first_lanes);
  EXPECT_GT(prof.span_seconds("round.two"), 0.0);
  EXPECT_DOUBLE_EQ(prof.span_seconds("round.one"), 0.0);  // not carried over
}

// ------------------------------------- observation changes no result

TEST(ProfilerTest, AttachingInstrumentationDoesNotChangeTheExactSolver) {
  Rng rng(21);
  const CycleTimeGrid grid(3, 3, rng.cycle_times(9, 0.25));
  ExactSolverOptions opts;
  opts.threads = 2;
  const ExactSolution plain = solve_exact(grid, opts);

  Profiler prof;
  prof.start();
  ScopedMetrics scoped;
  const ExactSolution observed = solve_exact(grid, opts);
  install_metrics(nullptr);
  prof.stop();

  EXPECT_EQ(bits(plain.obj2), bits(observed.obj2));
  ASSERT_EQ(plain.alloc.r.size(), observed.alloc.r.size());
  for (std::size_t i = 0; i < plain.alloc.r.size(); ++i)
    EXPECT_EQ(bits(plain.alloc.r[i]), bits(observed.alloc.r[i]));
  for (std::size_t j = 0; j < plain.alloc.c.size(); ++j)
    EXPECT_EQ(bits(plain.alloc.c[j]), bits(observed.alloc.c[j]));
  EXPECT_EQ(plain.nodes_visited, observed.nodes_visited);
  EXPECT_EQ(plain.trees_enumerated, observed.trees_enumerated);

  // ... and the run showed up in both sinks.
  EXPECT_GT(prof.span_seconds("exact.solve"), 0.0);
  EXPECT_EQ(scoped.registry.counter("exact.solves").value(), 1u);
  EXPECT_EQ(scoped.registry.counter("exact.nodes_visited").value(),
            observed.nodes_visited);
}

TEST(ProfilerTest, SerialMetricsSnapshotIsByteStableAcrossRuns) {
  // The determinism contract from doc/observability.md: with --threads=1
  // every recorded metric derives from the computation, never from wall
  // time, so two identical runs must produce identical snapshot bytes.
  const auto run_once = [] {
    Rng rng(31);
    const CycleTimeGrid g(2, 2, rng.cycle_times(4, 0.1));
    const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
    const NetworkModel net{Topology::kSwitched, 1e-3, 1e-3, true};
    const std::size_t block = 4, nb = 6, n = block * nb;
    Matrix a(n, n);
    fill_diagonally_dominant(a.view(), rng);
    ScopedMetrics scoped;
    const MpReport rep = run_mp_lu(Machine{g, net}, d, a.view(), block,
                                   KernelCosts{}, false, nullptr,
                                   RuntimeOptions{});
    HG_CHECK(rep.factorized, "LU failed in metrics stability test");
    return scoped.registry.snapshot_json();
  };
  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"gemm.calls\""), std::string::npos);
  EXPECT_NE(first.find("\"block_store.pool_hits\""), std::string::npos);
  // Wall-clock metrics must be absent on the serial path.
  EXPECT_EQ(first.find("task_run_us"), std::string::npos);
  EXPECT_EQ(first.find("flush_us"), std::string::npos);
}

}  // namespace
}  // namespace hetgrid
