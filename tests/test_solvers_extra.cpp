// Tests for the closed-form 2x2 solver, the local-search arrangement
// solver, and the workload generators.
#include <gtest/gtest.h>

#include "core/exact2x2.hpp"
#include "core/exact_solver.hpp"
#include "core/arrangement.hpp"
#include "core/heuristic.hpp"
#include "core/local_search.hpp"
#include "util/rng.hpp"
#include "util/workloads.hpp"

namespace hetgrid {
namespace {

// ----------------------------------------------------- exact 2x2

TEST(Exact2x2, MatchesEnumerativeSolverOnRandomGrids) {
  Rng rng(71);
  for (int trial = 0; trial < 200; ++trial) {
    const CycleTimeGrid g(2, 2, rng.cycle_times(4, 0.02));
    const Exact2x2Solution closed = solve_exact_2x2(g);
    const ExactSolution enumerated = solve_exact(g);
    EXPECT_NEAR(closed.obj2, enumerated.obj2, 1e-9 * closed.obj2)
        << "trial " << trial;
    EXPECT_TRUE(is_feasible(g, closed.alloc, 1e-9));
  }
}

TEST(Exact2x2, Rank1GridHasAllConstraintsTight) {
  const Exact2x2Solution sol =
      solve_exact_2x2(CycleTimeGrid(2, 2, {1, 2, 3, 6}));
  EXPECT_EQ(sol.slack_constraint, 4);
  EXPECT_NEAR(sol.obj2, 2.0, 1e-12);
}

TEST(Exact2x2, PaperCounterexampleHasOneSlackProcessor) {
  // {1,2;3,5}: perfect balance impossible, so exactly one processor idles
  // at the optimum.
  const Exact2x2Solution sol =
      solve_exact_2x2(CycleTimeGrid(2, 2, {1, 2, 3, 5}));
  EXPECT_NE(sol.slack_constraint, 4);
  EXPECT_LT(sol.obj2, 1.0 + 0.5 + 1.0 / 3.0 + 0.2 - 1e-6);
}

TEST(Exact2x2, RejectsWrongShape) {
  EXPECT_THROW(solve_exact_2x2(CycleTimeGrid(2, 3, {1, 2, 3, 4, 5, 6})),
               PreconditionError);
}

// ----------------------------------------------------- local search

TEST(LocalSearch, NeverWorseThanItsStartingPoint) {
  Rng rng(72);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t p = 2 + rng.below(2), q = 2 + rng.below(2);
    const HeuristicResult h =
        solve_heuristic(p, q, rng.cycle_times(p * q, 0.05));
    const LocalSearchResult ls = local_search(h.final().grid);
    EXPECT_GE(ls.obj2, h.final().obj2 - 1e-9) << "trial " << trial;
    EXPECT_TRUE(is_feasible(ls.grid, ls.alloc, 1e-8));
    EXPECT_TRUE(ls.local_optimum);
  }
}

TEST(LocalSearch, ClosesPartOfTheGapToOptimal) {
  Rng rng(73);
  double heur_total = 0.0, ls_total = 0.0, opt_total = 0.0;
  for (int trial = 0; trial < 15; ++trial) {
    const std::vector<double> pool = rng.cycle_times(6, 0.05);
    const HeuristicResult h = solve_heuristic(2, 3, pool);
    const LocalSearchResult ls = solve_local_search(2, 3, pool);
    const OptimalArrangement opt = solve_optimal_arrangement(2, 3, pool);
    heur_total += h.final().obj2;
    ls_total += ls.obj2;
    opt_total += opt.solution.obj2;
    EXPECT_LE(ls.obj2, opt.solution.obj2 + 1e-9);
  }
  EXPECT_GE(ls_total, heur_total);
  // On aggregate local search recovers a meaningful share of the gap.
  EXPECT_GT(ls_total - heur_total, 0.1 * (opt_total - heur_total));
}

TEST(LocalSearch, ExactAllocatorFindsOptimalArrangementOften) {
  Rng rng(74);
  LocalSearchOptions opts;
  opts.allocator = [](const CycleTimeGrid& g) {
    return solve_exact(g).alloc;
  };
  int hits = 0;
  const int trials = 10;
  for (int trial = 0; trial < trials; ++trial) {
    const std::vector<double> pool = rng.cycle_times(4, 0.05);
    const LocalSearchResult ls = solve_local_search(2, 2, pool, opts);
    const OptimalArrangement opt = solve_optimal_arrangement(2, 2, pool);
    if (std::abs(ls.obj2 - opt.solution.obj2) < 1e-9 * opt.solution.obj2)
      ++hits;
  }
  // 2x2 has only two non-decreasing arrangements; swap search with the
  // exact evaluator should essentially always land on the optimum.
  EXPECT_GE(hits, trials - 1);
}

TEST(LocalSearch, HomogeneousPoolHasNoImprovingSwap) {
  const LocalSearchResult ls =
      solve_local_search(2, 2, std::vector<double>(4, 1.0));
  EXPECT_EQ(ls.swaps, 0);
  EXPECT_TRUE(ls.local_optimum);
}

TEST(LocalSearch, SwapCapRespected) {
  Rng rng(75);
  LocalSearchOptions opts;
  opts.max_swaps = 1;
  const LocalSearchResult ls =
      solve_local_search(3, 3, rng.cycle_times(9, 0.05), opts);
  EXPECT_LE(ls.swaps, 1);
}

// ----------------------------------------------------- workloads

TEST(Workloads, AllKindsProducePositiveTimes) {
  Rng rng(76);
  for (WorkloadKind kind : kAllWorkloadKinds) {
    const auto t = draw_cycle_times(kind, 200, rng);
    EXPECT_EQ(t.size(), 200u);
    for (double v : t) EXPECT_GT(v, 0.0) << workload_name(kind);
  }
}

TEST(Workloads, NamesAreDistinct) {
  std::set<std::string> names;
  for (WorkloadKind kind : kAllWorkloadKinds)
    names.insert(workload_name(kind));
  EXPECT_EQ(names.size(), 4u);
}

TEST(Workloads, TwoGenerationsIsBimodal) {
  Rng rng(77);
  const auto t = draw_cycle_times(WorkloadKind::kTwoGenerations, 100, rng);
  int fast = 0, slow = 0;
  for (double v : t) {
    if (v <= 0.2) ++fast;
    if (v >= 0.5) ++slow;
  }
  EXPECT_EQ(fast, 50);
  EXPECT_EQ(slow, 50);
}

TEST(Workloads, NearHomogeneousHasSmallSpread) {
  Rng rng(78);
  const auto t = draw_cycle_times(WorkloadKind::kNearHomogeneous, 100, rng);
  const double mx = *std::max_element(t.begin(), t.end());
  const double mn = *std::min_element(t.begin(), t.end());
  EXPECT_LT(mx / mn, 1.25);
}

TEST(Workloads, PowerTailIsCapped) {
  Rng rng(79);
  for (double v : draw_cycle_times(WorkloadKind::kPowerTail, 500, rng))
    EXPECT_LE(v, 10.0);
}

TEST(Workloads, SolversHandleEveryKind) {
  Rng rng(80);
  for (WorkloadKind kind : kAllWorkloadKinds) {
    const auto pool = draw_cycle_times(kind, 9, rng);
    const HeuristicResult h = solve_heuristic(3, 3, pool);
    EXPECT_TRUE(is_feasible(h.final().grid, h.final().alloc, 1e-8))
        << workload_name(kind);
    EXPECT_TRUE(is_tight(h.final().grid, h.final().alloc, 1e-8))
        << workload_name(kind);
  }
}

}  // namespace
}  // namespace hetgrid
