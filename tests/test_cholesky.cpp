// Tests for the Cholesky factorization kernels.
#include <gtest/gtest.h>

#include <tuple>

#include "matrix/cholesky.hpp"
#include "matrix/gemm.hpp"
#include "matrix/norms.hpp"
#include "util/rng.hpp"

namespace hetgrid {
namespace {

Matrix random_spd(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix a(n, n);
  fill_spd(a.view(), rng);
  return a;
}

TEST(Cholesky, FactorsKnown2x2) {
  // A = [4 2; 2 5] = L L^T with L = [2 0; 1 2].
  Matrix a(2, 2);
  a(0, 0) = 4.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 5.0;
  ASSERT_TRUE(cholesky_factor_unblocked(a.view()));
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 2.0);
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  Matrix a(2, 2, 0.0);
  a(0, 0) = 1.0;
  a(1, 1) = -1.0;
  EXPECT_FALSE(cholesky_factor_unblocked(a.view()));
}

TEST(Cholesky, FillSpdProducesFactorableMatrices) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    Matrix a(12, 12);
    fill_spd(a.view(), rng);
    Matrix copy(12, 12);
    copy.view().copy_from(a.view());
    EXPECT_TRUE(cholesky_factor_unblocked(copy.view())) << trial;
  }
}

class CholeskyBlockedSizes
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CholeskyBlockedSizes, ReconstructsOriginal) {
  const auto [n, block] = GetParam();
  const Matrix orig = random_spd(static_cast<std::size_t>(n),
                                 static_cast<std::uint64_t>(n * 13 + block));
  Matrix a(orig.rows(), orig.cols());
  a.view().copy_from(orig.view());
  ASSERT_TRUE(
      cholesky_factor_blocked(a.view(), static_cast<std::size_t>(block)));
  const Matrix rec = cholesky_reconstruct(a.view());
  EXPECT_LT(max_abs_diff(rec.view(), orig.view()) / norm_max(orig.view()),
            1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndBlocks, CholeskyBlockedSizes,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(6, 2),
                      std::make_tuple(16, 4), std::make_tuple(25, 8),
                      std::make_tuple(32, 32), std::make_tuple(30, 7)));

TEST(Cholesky, BlockedMatchesUnblockedFactors) {
  const Matrix orig = random_spd(20, 41);
  Matrix a1(20, 20), a2(20, 20);
  a1.view().copy_from(orig.view());
  a2.view().copy_from(orig.view());
  ASSERT_TRUE(cholesky_factor_unblocked(a1.view()));
  ASSERT_TRUE(cholesky_factor_blocked(a2.view(), 5));
  // Compare lower triangles only.
  for (std::size_t j = 0; j < 20; ++j)
    for (std::size_t i = j; i < 20; ++i)
      EXPECT_NEAR(a1(i, j), a2(i, j), 1e-10) << i << "," << j;
}

TEST(Cholesky, SolveRecoversSolution) {
  const std::size_t n = 24;
  const Matrix a = random_spd(n, 43);
  Rng rng(44);
  Matrix x_true(n, 3);
  fill_random(x_true.view(), rng);
  Matrix b(n, 3, 0.0);
  gemm(Trans::No, Trans::No, 1.0, a.view(), x_true.view(), 0.0, b.view());

  Matrix l(n, n);
  l.view().copy_from(a.view());
  ASSERT_TRUE(cholesky_factor_blocked(l.view(), 6));
  cholesky_solve(l.view(), b.view());
  EXPECT_LT(max_abs_diff(b.view(), x_true.view()), 1e-9);
}

TEST(TrsmRightLowerTransposed, InvertsMultiplication) {
  Rng rng(45);
  const std::size_t n = 9, m = 4;
  Matrix l(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    l(i, i) = 1.5 + rng.uniform();
    for (std::size_t j = 0; j < i; ++j) l(i, j) = rng.uniform(-1.0, 1.0);
  }
  Matrix x(m, n);
  fill_random(x.view(), rng);
  // b = x * L^T.
  Matrix b(m, n, 0.0);
  gemm(Trans::No, Trans::Yes, 1.0, x.view(), l.view(), 0.0, b.view());
  trsm_right_lower_transposed(l.view(), b.view());
  EXPECT_LT(max_abs_diff(b.view(), x.view()), 1e-10);
}

TEST(Cholesky, UpperTriangleLeftUntouchedByUnblocked) {
  Matrix a = random_spd(8, 47);
  Matrix orig(8, 8);
  orig.view().copy_from(a.view());
  ASSERT_TRUE(cholesky_factor_unblocked(a.view()));
  for (std::size_t j = 1; j < 8; ++j)
    for (std::size_t i = 0; i < j; ++i)
      EXPECT_DOUBLE_EQ(a(i, j), orig(i, j));
}

}  // namespace
}  // namespace hetgrid
