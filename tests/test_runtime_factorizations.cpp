// Tests for the distributed QR and Cholesky virtual-runtime kernels.
#include <gtest/gtest.h>

#include "core/heuristic.hpp"
#include "dist/panel_distribution.hpp"
#include "matrix/cholesky.hpp"
#include "matrix/gemm.hpp"
#include "matrix/lu.hpp"
#include "matrix/norms.hpp"
#include "matrix/qr.hpp"
#include "runtime/virtual_runtime.hpp"
#include "util/rng.hpp"

namespace hetgrid {
namespace {

Machine free_machine(CycleTimeGrid grid) {
  return Machine{std::move(grid), NetworkModel::free()};
}

// ----------------------------------------------------- block reflector T

TEST(QrFormT, SingleReflectorIsTau) {
  Rng rng(1);
  Matrix panel(6, 1);
  fill_random(panel.view(), rng);
  const QrResult res = qr_factor(panel.view());
  const Matrix t = qr_form_t(panel.view(), res.tau);
  EXPECT_DOUBLE_EQ(t(0, 0), res.tau[0]);
}

TEST(QrFormT, BlockReflectorEqualsReflectorProduct) {
  // (I - V T V^T) x must equal H_0 H_1 ... H_{b-1} x = Q^T' ... applied via
  // qr_apply_qt's reflector loop on a tall panel.
  Rng rng(2);
  const std::size_t m = 10, b = 4;
  Matrix panel(m, b);
  fill_random(panel.view(), rng);
  Matrix packed(m, b);
  packed.view().copy_from(panel.view());
  const QrResult res = qr_factor(packed.view());
  const Matrix t = qr_form_t(packed.view(), res.tau);

  // V: unit lower trapezoid.
  Matrix v(m, b, 0.0);
  for (std::size_t j = 0; j < b; ++j) {
    v(j, j) = 1.0;
    for (std::size_t i = j + 1; i < m; ++i) v(i, j) = packed(i, j);
  }

  Rng rng2(3);
  Matrix x(m, 2), x_wy(m, 2);
  fill_random(x.view(), rng2);
  x_wy.view().copy_from(x.view());

  // Reference: apply reflectors in forward order (this is Q^T x).
  qr_apply_qt(packed.view(), res.tau, x.view());

  // Compact WY: Q^T = I - V T^T V^T  (since Q = H_0...H_{b-1} = I - V T V^T,
  // Q^T = I - V T^T V^T).
  Matrix w(b, 2, 0.0);
  gemm(Trans::Yes, Trans::No, 1.0, v.view(), x_wy.view(), 0.0, w.view());
  Matrix y(b, 2, 0.0);
  gemm(Trans::Yes, Trans::No, 1.0, t.view(), w.view(), 0.0, y.view());
  gemm(Trans::No, Trans::No, -1.0, v.view(), y.view(), 1.0, x_wy.view());

  EXPECT_LT(max_abs_diff(x.view(), x_wy.view()), 1e-12);
}

// ----------------------------------------------------- distributed QR

TEST(RuntimeQr, ReconstructsOriginalMatrix) {
  const std::size_t n = 24, block = 6;
  Rng rng(11);
  Matrix orig(n, n);
  fill_random(orig.view(), rng);
  Matrix a(n, n);
  a.view().copy_from(orig.view());

  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  const PanelDistribution d = PanelDistribution::from_counts(
      {3, 1}, {2, 1}, g, PanelOrder::kContiguous, PanelOrder::kContiguous,
      "het");
  const VirtualQrReport rep =
      run_distributed_qr(free_machine(g), d, a.view(), block);
  ASSERT_EQ(rep.tau.size(), n);

  const Matrix qmat = qr_form_q(a.view(), rep.tau);
  Matrix r(n, n, 0.0);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i <= j; ++i) r(i, j) = a(i, j);
  Matrix prod(n, n, 0.0);
  gemm(Trans::No, Trans::No, 1.0, qmat.view(), r.view(), 0.0, prod.view());
  EXPECT_LT(max_abs_diff(prod.view(), orig.view()), 1e-10);
}

TEST(RuntimeQr, MatchesSequentialUnblockedFactors) {
  // The blocked compact-WY algorithm produces the same packed reflectors
  // and R as the unblocked sequential QR, up to roundoff.
  const std::size_t n = 18, block = 6;
  Rng rng(12);
  Matrix orig(n, n);
  fill_random(orig.view(), rng);
  Matrix seq(n, n), par(n, n);
  seq.view().copy_from(orig.view());
  par.view().copy_from(orig.view());

  const QrResult sres = qr_factor(seq.view());
  const CycleTimeGrid g(2, 2, {1, 2, 3, 5});
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const VirtualQrReport rep =
      run_distributed_qr(free_machine(g), d, par.view(), block);

  EXPECT_LT(max_abs_diff(seq.view(), par.view()), 1e-10);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(sres.tau[i], rep.tau[i], 1e-10) << "tau " << i;
}

TEST(RuntimeQr, RaggedBlocksStillCorrect) {
  const std::size_t n = 22, block = 5;
  Rng rng(13);
  Matrix orig(n, n);
  fill_random(orig.view(), rng);
  Matrix a(n, n);
  a.view().copy_from(orig.view());
  const CycleTimeGrid g(2, 2, {1, 2, 3, 5});
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const VirtualQrReport rep =
      run_distributed_qr(free_machine(g), d, a.view(), block);

  const Matrix qmat = qr_form_q(a.view(), rep.tau);
  Matrix r(n, n, 0.0);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i <= j; ++i) r(i, j) = a(i, j);
  Matrix prod(n, n, 0.0);
  gemm(Trans::No, Trans::No, 1.0, qmat.view(), r.view(), 0.0, prod.view());
  EXPECT_LT(max_abs_diff(prod.view(), orig.view()), 1e-10);
}

TEST(RuntimeQr, ChargesMoreThanLuOnSameMachine) {
  const std::size_t n = 24, block = 4;
  Rng rng(14);
  Matrix a1(n, n), a2(n, n);
  fill_diagonally_dominant(a1.view(), rng);
  a2.view().copy_from(a1.view());
  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const Machine m = free_machine(g);
  const VirtualLuReport lu = run_distributed_lu(m, d, a1.view(), block);
  const VirtualQrReport qr = run_distributed_qr(m, d, a2.view(), block);
  EXPECT_GT(qr.compute_time, lu.compute_time);
}

// ----------------------------------------------------- distributed Cholesky

TEST(RuntimeCholesky, ReconstructsSpdMatrix) {
  const std::size_t n = 24, block = 6;
  Rng rng(21);
  Matrix orig(n, n);
  fill_spd(orig.view(), rng);
  Matrix a(n, n);
  a.view().copy_from(orig.view());

  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  const PanelDistribution d = PanelDistribution::from_counts(
      {3, 1}, {2, 1}, g, PanelOrder::kContiguous, PanelOrder::kInterleaved,
      "het");
  const VirtualCholeskyReport rep =
      run_distributed_cholesky(free_machine(g), d, a.view(), block);
  ASSERT_TRUE(rep.factorized);
  const Matrix rec = cholesky_reconstruct(a.view());
  EXPECT_LT(max_abs_diff(rec.view(), orig.view()) / norm_max(orig.view()),
            1e-12);
}

TEST(RuntimeCholesky, MatchesSequentialBlockedFactors) {
  const std::size_t n = 20, block = 5;
  Rng rng(22);
  Matrix orig(n, n);
  fill_spd(orig.view(), rng);
  Matrix seq(n, n), par(n, n);
  seq.view().copy_from(orig.view());
  par.view().copy_from(orig.view());

  ASSERT_TRUE(cholesky_factor_blocked(seq.view(), block));
  const CycleTimeGrid g(2, 2, {1, 2, 3, 5});
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  ASSERT_TRUE(run_distributed_cholesky(free_machine(g), d, par.view(), block)
                  .factorized);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = j; i < n; ++i)
      EXPECT_NEAR(seq(i, j), par(i, j), 1e-10) << i << "," << j;
}

TEST(RuntimeCholesky, VirtualComputeMatchesSimulator) {
  const std::size_t n = 24, block = 4, nb = n / block;
  Rng rng(23);
  Matrix a(n, n);
  fill_spd(a.view(), rng);
  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const Machine m = free_machine(g);
  const VirtualCholeskyReport vr =
      run_distributed_cholesky(m, d, a.view(), block);
  const SimReport sr = simulate_cholesky(m, d, nb);
  EXPECT_NEAR(vr.compute_time, sr.compute_time, 1e-9);
  for (std::size_t i = 0; i < vr.busy.size(); ++i)
    EXPECT_NEAR(vr.busy[i], sr.busy[i], 1e-9) << "proc " << i;
}

TEST(RuntimeCholesky, ReportsNonSpdMatrix) {
  Matrix a(6, 6, 0.0);
  for (std::size_t i = 0; i < 6; ++i) a(i, i) = -1.0;
  const Machine m = free_machine(CycleTimeGrid(1, 1, {1.0}));
  const PanelDistribution d = PanelDistribution::block_cyclic(1, 1);
  EXPECT_FALSE(
      run_distributed_cholesky(m, d, a.view(), 2).factorized);
}

TEST(RuntimeCholesky, CheaperThanLuOnSameMatrix) {
  // Cholesky does about half the work of LU (triangular trailing update).
  const std::size_t n = 32, block = 4;
  Rng rng(24);
  Matrix spd(n, n);
  fill_spd(spd.view(), rng);
  Matrix a_lu(n, n), a_ch(n, n);
  a_lu.view().copy_from(spd.view());
  a_ch.view().copy_from(spd.view());
  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const Machine m = free_machine(g);
  const double t_lu =
      run_distributed_lu(m, d, a_lu.view(), block).compute_time;
  const double t_ch =
      run_distributed_cholesky(m, d, a_ch.view(), block).compute_time;
  EXPECT_LT(t_ch, t_lu);
}

// ----------------------------------------------------- pivoted LU

TEST(RuntimePivotedLu, MatchesSequentialBlockedFactorsExactly) {
  // Same pivot path as lu_factor_blocked => identical factors and ipiv.
  const std::size_t n = 24, block = 6;
  Rng rng(61);
  Matrix orig(n, n);
  fill_random(orig.view(), rng);  // general matrix: pivoting required
  Matrix seq(n, n), par(n, n);
  seq.view().copy_from(orig.view());
  par.view().copy_from(orig.view());

  const LuResult sres = lu_factor_blocked(seq.view(), block);
  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const VirtualPivotedLuReport rep = run_distributed_lu_pivoted(
      free_machine(g), d, par.view(), block);

  EXPECT_FALSE(rep.singular);
  EXPECT_EQ(rep.piv, sres.piv);
  EXPECT_LT(max_abs_diff(seq.view(), par.view()), 1e-12);
}

TEST(RuntimePivotedLu, SolvesGeneralSystem) {
  const std::size_t n = 30, block = 5;
  Rng rng(62);
  Matrix a_orig(n, n);
  fill_random(a_orig.view(), rng);
  Matrix x_true(n, 1);
  fill_random(x_true.view(), rng);
  Matrix b(n, 1, 0.0);
  gemm(Trans::No, Trans::No, 1.0, a_orig.view(), x_true.view(), 0.0,
       b.view());

  Matrix lu(n, n);
  lu.view().copy_from(a_orig.view());
  const CycleTimeGrid g(2, 3, {1, 2, 3, 2, 4, 6});
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 3);
  const VirtualPivotedLuReport rep = run_distributed_lu_pivoted(
      free_machine(g), d, lu.view(), block);
  ASSERT_FALSE(rep.singular);
  lu_solve(lu.view(), rep.piv, b.view());
  EXPECT_LT(max_abs_diff(b.view(), x_true.view()), 1e-9);
}

TEST(RuntimePivotedLu, ChargesSwapCommunication) {
  const std::size_t n = 24, block = 4;
  Rng rng(63);
  Matrix a(n, n);
  fill_random(a.view(), rng);
  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  Machine m = free_machine(g);
  m.net = {Topology::kSwitched, 1e-3, 1e-3, true};
  const VirtualPivotedLuReport rep =
      run_distributed_lu_pivoted(m, d, a.view(), block);
  // With random data, cross-grid-row pivot swaps are all but certain.
  EXPECT_GT(rep.comm_time, 0.0);
}

TEST(RuntimePivotedLu, DetectsSingularMatrix) {
  Matrix a(6, 6, 1.0);  // rank 1
  const Machine m = free_machine(CycleTimeGrid(1, 1, {1.0}));
  const PanelDistribution d = PanelDistribution::block_cyclic(1, 1);
  const VirtualPivotedLuReport rep =
      run_distributed_lu_pivoted(m, d, a.view(), 2);
  EXPECT_TRUE(rep.singular);
}

// ----------------------------------------------------- simulator parity

TEST(SimCholesky, PerfectBoundAndMonotonicity) {
  Rng rng(25);
  for (int trial = 0; trial < 10; ++trial) {
    const CycleTimeGrid g(2, 2, rng.cycle_times(4, 0.05));
    const Machine m{g, NetworkModel::free()};
    const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
    const SimReport rep = simulate_cholesky(m, d, 16);
    EXPECT_GE(rep.total_time, rep.perfect_compute_bound - 1e-9);
    EXPECT_DOUBLE_EQ(rep.total_time, rep.compute_time + rep.comm_time);
  }
}

TEST(SimCholesky, HeterogeneousPanelBeatsBlockCyclic) {
  const HeuristicResult h = solve_heuristic(2, 2, {1, 2, 3, 6});
  const Machine m{h.final().grid, NetworkModel::free()};
  const PanelDistribution het = PanelDistribution::from_allocation(
      h.final().grid, h.final().alloc, 8, 8, PanelOrder::kContiguous,
      PanelOrder::kInterleaved, "het");
  const PanelDistribution bc = PanelDistribution::block_cyclic(2, 2);
  EXPECT_LT(simulate_cholesky(m, het, 48).total_time,
            simulate_cholesky(m, bc, 48).total_time);
}

}  // namespace
}  // namespace hetgrid
