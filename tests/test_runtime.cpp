// Tests for the virtual-time runtime: real numerics under distributed
// execution, and agreement with the discrete simulator's accounting.
#include <gtest/gtest.h>

#include "core/heuristic.hpp"
#include "dist/kalinov_lastovetsky.hpp"
#include "dist/panel_distribution.hpp"
#include "matrix/gemm.hpp"
#include "matrix/lu.hpp"
#include "matrix/norms.hpp"
#include "runtime/virtual_runtime.hpp"
#include "util/rng.hpp"

namespace hetgrid {
namespace {

Machine free_machine(CycleTimeGrid grid) {
  return Machine{std::move(grid), NetworkModel::free()};
}

// ----------------------------------------------------- MMM numerics

TEST(RuntimeMmm, MatchesSequentialProductExactly) {
  const std::size_t n = 24, block = 6;
  Rng rng(81);
  Matrix a(n, n), b(n, n), c(n, n), ref(n, n, 0.0);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);

  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  const PanelDistribution d = PanelDistribution::from_counts(
      {3, 1}, {2, 1}, g, PanelOrder::kContiguous, PanelOrder::kContiguous,
      "het");
  run_distributed_mmm(free_machine(g), d, a.view(), b.view(), c.view(),
                      block);
  gemm_reference(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.0,
                 ref.view());
  EXPECT_LT(max_abs_diff(c.view(), ref.view()), 1e-11);
}

TEST(RuntimeMmm, RaggedEdgeBlocksStillCorrect) {
  const std::size_t n = 25, block = 6;  // 25 = 4*6 + 1
  Rng rng(82);
  Matrix a(n, n), b(n, n), c(n, n), ref(n, n, 0.0);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);
  const CycleTimeGrid g(2, 2, {1, 2, 3, 5});
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  run_distributed_mmm(free_machine(g), d, a.view(), b.view(), c.view(),
                      block);
  gemm_reference(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.0,
                 ref.view());
  EXPECT_LT(max_abs_diff(c.view(), ref.view()), 1e-11);
}

TEST(RuntimeMmm, CorrectUnderKalinovLastovetsky) {
  const std::size_t n = 28, block = 4;
  Rng rng(83);
  Matrix a(n, n), b(n, n), c(n, n), ref(n, n, 0.0);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);
  const CycleTimeGrid g(2, 2, {1, 2, 3, 5});
  const KalinovLastovetskyDistribution kl(g, {4, 7}, 61);
  run_distributed_mmm(free_machine(g), kl, a.view(), b.view(), c.view(),
                      block);
  gemm_reference(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.0,
                 ref.view());
  EXPECT_LT(max_abs_diff(c.view(), ref.view()), 1e-11);
}

TEST(RuntimeMmm, VirtualComputeMatchesSimulator) {
  // With n divisible by block and a free network, the virtual runtime's
  // clocks must agree with the discrete simulator to rounding error.
  const std::size_t n = 24, block = 4, nb = n / block;
  Rng rng(84);
  Matrix a(n, n), b(n, n), c(n, n);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);

  const CycleTimeGrid g(2, 3, {1, 2, 3, 2, 4, 6});
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 3);
  const Machine m = free_machine(g);
  const VirtualReport vr =
      run_distributed_mmm(m, d, a.view(), b.view(), c.view(), block);
  const SimReport sr = simulate_mmm(m, d, nb);
  EXPECT_NEAR(vr.compute_time, sr.compute_time, 1e-9);
  ASSERT_EQ(vr.busy.size(), sr.busy.size());
  for (std::size_t i = 0; i < vr.busy.size(); ++i)
    EXPECT_NEAR(vr.busy[i], sr.busy[i], 1e-9) << "proc " << i;
}

TEST(RuntimeMmm, CommChargedWithNonFreeNetwork) {
  const std::size_t n = 12, block = 3;
  Rng rng(85);
  Matrix a(n, n), b(n, n), c(n, n);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);
  Machine m = free_machine(CycleTimeGrid(2, 2, {1, 1, 1, 1}));
  m.net = {Topology::kSwitched, 1e-3, 1e-3, true};
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const VirtualReport rep =
      run_distributed_mmm(m, d, a.view(), b.view(), c.view(), block);
  EXPECT_GT(rep.comm_time, 0.0);
  EXPECT_NEAR(rep.makespan, rep.compute_time + rep.comm_time, 1e-12);
}

TEST(RuntimeMmm, RejectsNonSquareInput) {
  Matrix a(4, 5), b(5, 4), c(4, 4);
  const Machine m = free_machine(CycleTimeGrid(1, 1, {1.0}));
  const PanelDistribution d = PanelDistribution::block_cyclic(1, 1);
  EXPECT_THROW(
      run_distributed_mmm(m, d, a.view(), b.view(), c.view(), 2),
      PreconditionError);
}

// ----------------------------------------------------- LU numerics

TEST(RuntimeLu, ReconstructsDiagonallyDominantMatrix) {
  const std::size_t n = 24, block = 4;
  Rng rng(91);
  Matrix orig(n, n);
  fill_diagonally_dominant(orig.view(), rng);
  Matrix a(n, n);
  a.view().copy_from(orig.view());

  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  const PanelDistribution d = PanelDistribution::from_counts(
      {3, 1}, {2, 1}, g, PanelOrder::kContiguous, PanelOrder::kInterleaved,
      "het");
  const VirtualLuReport rep =
      run_distributed_lu(free_machine(g), d, a.view(), block);
  EXPECT_TRUE(rep.factorized);

  const Matrix prod = lu_reconstruct(a.view(), n);
  EXPECT_LT(max_abs_diff(prod.view(), orig.view()) / norm_max(orig.view()),
            1e-12);
}

TEST(RuntimeLu, MatchesSequentialNoPivotFactors) {
  const std::size_t n = 20, block = 5;
  Rng rng(92);
  Matrix orig(n, n);
  fill_diagonally_dominant(orig.view(), rng);
  Matrix seq(n, n), par(n, n);
  seq.view().copy_from(orig.view());
  par.view().copy_from(orig.view());

  ASSERT_TRUE(lu_factor_nopivot(seq.view()));
  const CycleTimeGrid g(2, 2, {1, 2, 3, 5});
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const VirtualLuReport rep =
      run_distributed_lu(free_machine(g), d, par.view(), block);
  EXPECT_TRUE(rep.factorized);
  EXPECT_LT(max_abs_diff(seq.view(), par.view()), 1e-10);
}

TEST(RuntimeLu, VirtualComputeMatchesSimulator) {
  const std::size_t n = 24, block = 4, nb = n / block;
  Rng rng(93);
  Matrix a(n, n);
  fill_diagonally_dominant(a.view(), rng);
  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const Machine m = free_machine(g);
  const VirtualLuReport vr = run_distributed_lu(m, d, a.view(), block);
  const SimReport sr = simulate_lu(m, d, nb);
  EXPECT_NEAR(vr.compute_time, sr.compute_time, 1e-9);
  for (std::size_t i = 0; i < vr.busy.size(); ++i)
    EXPECT_NEAR(vr.busy[i], sr.busy[i], 1e-9) << "proc " << i;
}

TEST(RuntimeLu, ReportsZeroPivot) {
  Matrix a(4, 4, 0.0);  // singular
  const Machine m = free_machine(CycleTimeGrid(1, 1, {1.0}));
  const PanelDistribution d = PanelDistribution::block_cyclic(1, 1);
  const VirtualLuReport rep = run_distributed_lu(m, d, a.view(), 2);
  EXPECT_FALSE(rep.factorized);
}

TEST(RuntimeLu, RaggedBlocksStillCorrect) {
  const std::size_t n = 23, block = 5;
  Rng rng(94);
  Matrix orig(n, n);
  fill_diagonally_dominant(orig.view(), rng);
  Matrix a(n, n);
  a.view().copy_from(orig.view());
  const CycleTimeGrid g(2, 2, {1, 2, 3, 5});
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  ASSERT_TRUE(run_distributed_lu(free_machine(g), d, a.view(), block)
                  .factorized);
  const Matrix prod = lu_reconstruct(a.view(), n);
  EXPECT_LT(max_abs_diff(prod.view(), orig.view()) / norm_max(orig.view()),
            1e-11);
}

TEST(Runtime, UtilizationIsAFraction) {
  const std::size_t n = 16, block = 4;
  Rng rng(95);
  Matrix a(n, n), b(n, n), c(n, n);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);
  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const VirtualReport rep = run_distributed_mmm(
      free_machine(g), d, a.view(), b.view(), c.view(), block);
  EXPECT_GT(rep.average_utilization(), 0.0);
  EXPECT_LE(rep.average_utilization(), 1.0 + 1e-12);
  EXPECT_GT(rep.block_ops, 0u);
}

}  // namespace
}  // namespace hetgrid
