// Tests for the Householder QR factorization.
#include <gtest/gtest.h>

#include "matrix/gemm.hpp"
#include "matrix/norms.hpp"
#include "matrix/qr.hpp"
#include "util/rng.hpp"

namespace hetgrid {
namespace {

Matrix random_matrix(std::size_t m, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix a(m, n);
  fill_random(a.view(), rng);
  return a;
}

Matrix extract_r(const Matrix& qr) {
  const std::size_t n = qr.cols();
  Matrix r(n, n, 0.0);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i <= j; ++i) r(i, j) = qr(i, j);
  return r;
}

class QrShapes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(QrShapes, QTimesRReconstructsA) {
  const auto [m, n] = GetParam();
  const Matrix orig = random_matrix(m, n, static_cast<std::uint64_t>(m * 7 + n));
  Matrix a(m, n);
  a.view().copy_from(orig.view());
  const QrResult res = qr_factor(a.view());

  const Matrix q = qr_form_q(a.view(), res.tau);
  const Matrix r = extract_r(a);
  Matrix prod(m, n, 0.0);
  gemm(Trans::No, Trans::No, 1.0, q.view(), r.view(), 0.0, prod.view());
  EXPECT_LT(max_abs_diff(prod.view(), orig.view()), 1e-11);
}

TEST_P(QrShapes, QHasOrthonormalColumns) {
  const auto [m, n] = GetParam();
  Matrix a = random_matrix(m, n, static_cast<std::uint64_t>(m * 13 + n));
  const QrResult res = qr_factor(a.view());
  const Matrix q = qr_form_q(a.view(), res.tau);
  Matrix qtq(n, n, 0.0);
  gemm(Trans::Yes, Trans::No, 1.0, q.view(), q.view(), 0.0, qtq.view());
  EXPECT_LT(max_abs_diff(qtq.view(), Matrix::identity(n).view()), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrShapes,
                         ::testing::Values(std::make_pair(1, 1),
                                           std::make_pair(5, 3),
                                           std::make_pair(10, 10),
                                           std::make_pair(40, 12),
                                           std::make_pair(33, 33)));

TEST(Qr, RequiresTallMatrix) {
  Matrix a(2, 3, 1.0);
  EXPECT_THROW(qr_factor(a.view()), PreconditionError);
}

TEST(Qr, ApplyQtInvertsQ) {
  const std::size_t m = 15, n = 6;
  Matrix a = random_matrix(m, n, 77);
  const QrResult res = qr_factor(a.view());
  const Matrix q = qr_form_q(a.view(), res.tau);

  Rng rng(78);
  Matrix x(n, 2);
  fill_random(x.view(), rng);
  Matrix qx(m, 2, 0.0);
  gemm(Trans::No, Trans::No, 1.0, q.view(), x.view(), 0.0, qx.view());
  qr_apply_qt(a.view(), res.tau, qx.view());
  // Top n rows of Q^T (Q x) must equal x.
  EXPECT_LT(max_abs_diff(qx.block(0, 0, n, 2), x.view()), 1e-12);
}

TEST(Qr, SolvesConsistentSquareSystem) {
  const std::size_t n = 20;
  Matrix a_orig = random_matrix(n, n, 31);
  Rng rng(32);
  Matrix x_true(n, 1);
  fill_random(x_true.view(), rng);
  Matrix b(n, 1, 0.0);
  gemm(Trans::No, Trans::No, 1.0, a_orig.view(), x_true.view(), 0.0,
       b.view());

  Matrix qr(n, n);
  qr.view().copy_from(a_orig.view());
  const QrResult res = qr_factor(qr.view());
  qr_solve(qr.view(), res.tau, b.view());
  EXPECT_LT(max_abs_diff(b.block(0, 0, n, 1), x_true.view()), 1e-9);
}

TEST(Qr, LeastSquaresResidualIsOrthogonalToRange) {
  // Overdetermined system: residual r = A x - b must satisfy A^T r = 0.
  const std::size_t m = 25, n = 8;
  const Matrix a = random_matrix(m, n, 53);
  Rng rng(54);
  Matrix b(m, 1);
  fill_random(b.view(), rng);

  Matrix qr(m, n);
  qr.view().copy_from(a.view());
  const QrResult res = qr_factor(qr.view());
  Matrix rhs(m, 1);
  rhs.view().copy_from(b.view());
  qr_solve(qr.view(), res.tau, rhs.view());
  const ConstMatrixView x = rhs.block(0, 0, n, 1);

  Matrix resid(m, 1);
  resid.view().copy_from(b.view());
  gemm(Trans::No, Trans::No, 1.0, a.view(), x, -1.0, resid.view());
  // resid now holds A x - b.
  Matrix at_r(n, 1, 0.0);
  gemm(Trans::Yes, Trans::No, 1.0, a.view(), resid.view(), 0.0, at_r.view());
  EXPECT_LT(norm_max(at_r.view()), 1e-10);
}

TEST(Qr, ZeroColumnGetsZeroTau) {
  Matrix a(4, 2, 0.0);
  a(0, 1) = 1.0;  // first column all zero
  const QrResult res = qr_factor(a.view());
  EXPECT_DOUBLE_EQ(res.tau[0], 0.0);
}

TEST(Qr, DiagonalOfRHasMagnitudeOfColumnNorms) {
  // For a matrix with orthogonal columns, |R_jj| equals the column norm.
  Matrix a(4, 2, 0.0);
  a(0, 0) = 3.0;
  a(1, 0) = 4.0;  // ||col0|| = 5
  a(2, 1) = 12.0;
  a(3, 1) = 5.0;  // ||col1|| = 13, orthogonal to col0
  const QrResult res = qr_factor(a.view());
  EXPECT_NEAR(std::abs(a(0, 0)), 5.0, 1e-12);
  EXPECT_NEAR(std::abs(a(1, 1)), 13.0, 1e-12);
}

}  // namespace
}  // namespace hetgrid
