// Equivalence and soundness tests for the branch-and-bound exact solver:
// the parallel prefix-split search must return bit-identical results for
// every thread count, and pruning must never change the optimum it finds.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/allocation.hpp"
#include "core/exact_solver.hpp"
#include "graph/spanning_tree.hpp"
#include "util/rng.hpp"

namespace hetgrid {
namespace {

ExactSolution solve_with(const CycleTimeGrid& g, unsigned threads,
                         bool prune = true) {
  ExactSolverOptions opts;
  opts.threads = threads;
  opts.prune = prune;
  return solve_exact(g, opts);
}

// Bitwise equality of two solutions, counters included.
void expect_identical(const ExactSolution& a, const ExactSolution& b,
                      int trial) {
  EXPECT_EQ(a.obj2, b.obj2) << "trial " << trial;
  EXPECT_EQ(a.alloc.r, b.alloc.r) << "trial " << trial;
  EXPECT_EQ(a.alloc.c, b.alloc.c) << "trial " << trial;
  EXPECT_EQ(a.tree, b.tree) << "trial " << trial;
  EXPECT_EQ(a.trees_enumerated, b.trees_enumerated) << "trial " << trial;
  EXPECT_EQ(a.trees_acceptable, b.trees_acceptable) << "trial " << trial;
  EXPECT_EQ(a.nodes_visited, b.nodes_visited) << "trial " << trial;
  EXPECT_EQ(a.subtrees_pruned, b.subtrees_pruned) << "trial " << trial;
}

TEST(ExactParallel, SerialAndParallelAreBitIdentical) {
  // The issue's contract: the parallel search is a pure wall-clock
  // optimization. Every field — allocation, winning tree, and all four
  // counters — must match the serial run exactly, on a broad random sweep.
  Rng rng(2251);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t p = 1 + rng.below(3), q = 1 + rng.below(4);
    const CycleTimeGrid g(p, q, rng.cycle_times(p * q, 0.05));
    const ExactSolution serial = solve_with(g, 1);
    const ExactSolution parallel = solve_with(g, 4);
    expect_identical(serial, parallel, trial);
  }
}

TEST(ExactParallel, EveryThreadCountAgrees) {
  Rng rng(2252);
  const CycleTimeGrid g(3, 4, rng.cycle_times(12, 0.1));
  const ExactSolution serial = solve_with(g, 1);
  for (unsigned threads : {2u, 3u, 8u, 0u}) {  // 0 = all hardware threads
    const ExactSolution other = solve_with(g, threads);
    expect_identical(serial, other, static_cast<int>(threads));
  }
}

TEST(ExactParallel, ParallelNoPruneAlsoBitIdentical) {
  // The split must be sound independently of the bound, so check the
  // exhaustive mode too.
  Rng rng(2253);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t p = 1 + rng.below(3), q = 1 + rng.below(3);
    const CycleTimeGrid g(p, q, rng.cycle_times(p * q, 0.05));
    expect_identical(solve_with(g, 1, /*prune=*/false),
                     solve_with(g, 4, /*prune=*/false), trial);
  }
}

TEST(ExactParallel, PruningKeepsTheOptimum) {
  // Soundness: the bound is admissible and the infeasibility cut only
  // removes subtrees with no acceptable tree, so pruning must return the
  // same optimum as the exhaustive enumeration — while visiting no more
  // nodes. Also pins the counter semantics: with pruning off, the leaves
  // evaluated are exactly Scoins' tree count.
  Rng rng(2254);
  bool pruned_strictly_somewhere = false;
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t p = 1 + rng.below(3), q = 1 + rng.below(4);
    const CycleTimeGrid g(p, q, rng.cycle_times(p * q, 0.05));
    const ExactSolution pruned = solve_with(g, 1, /*prune=*/true);
    const ExactSolution full = solve_with(g, 1, /*prune=*/false);
    EXPECT_NEAR(pruned.obj2, full.obj2, 1e-9 * full.obj2)
        << "trial " << trial;
    EXPECT_LE(pruned.nodes_visited, full.nodes_visited) << "trial " << trial;
    EXPECT_LE(pruned.trees_enumerated, full.trees_enumerated)
        << "trial " << trial;
    EXPECT_EQ(full.trees_enumerated, spanning_tree_count(p, q))
        << "trial " << trial;
    EXPECT_EQ(full.subtrees_pruned, 0u) << "trial " << trial;
    EXPECT_GE(pruned.trees_acceptable, 1u) << "trial " << trial;
    if (pruned.nodes_visited < full.nodes_visited)
      pruned_strictly_somewhere = true;
  }
  EXPECT_TRUE(pruned_strictly_somewhere)
      << "the bound never pruned anything across 100 random grids";
}

TEST(ExactParallel, SolutionsAreFeasibleTightAndTreeConsistent) {
  Rng rng(2255);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t p = 2 + rng.below(2), q = 2 + rng.below(3);
    const CycleTimeGrid g(p, q, rng.cycle_times(p * q, 0.05));
    const ExactSolution sol = solve_with(g, 2);
    EXPECT_TRUE(is_feasible(g, sol.alloc, 1e-8)) << "trial " << trial;
    ASSERT_EQ(sol.tree.size(), p + q - 1) << "trial " << trial;
    // The returned tree reproduces the returned allocation.
    GridAllocation re;
    ASSERT_TRUE(propagate_tree(g, sol.tree, re)) << "trial " << trial;
    EXPECT_EQ(re.r, sol.alloc.r) << "trial " << trial;
    EXPECT_EQ(re.c, sol.alloc.c) << "trial " << trial;
    EXPECT_EQ(obj2_value(re), sol.obj2) << "trial " << trial;
    // Every tree edge is tight at the returned point.
    for (const BipartiteEdge& e : sol.tree)
      EXPECT_NEAR(sol.alloc.r[e.row] * g(e.row, e.col) * sol.alloc.c[e.col],
                  1.0, 1e-9)
          << "trial " << trial;
  }
}

TEST(ExactParallel, FourByFourSolvesUnderDefaultCap) {
  // Acceptance check from the issue: a 4x4 grid (4096 spanning trees) is
  // comfortably inside the default tree cap and solves quickly.
  Rng rng(2256);
  const CycleTimeGrid g(4, 4, rng.cycle_times(16, 0.3));
  const ExactSolution serial = solve_with(g, 1);
  const ExactSolution parallel = solve_with(g, 4);
  expect_identical(serial, parallel, 0);
  EXPECT_GE(serial.trees_acceptable, 1u);
  const ExactSolution full = solve_with(g, 2, /*prune=*/false);
  EXPECT_EQ(full.trees_enumerated, 4096u);
  EXPECT_NEAR(serial.obj2, full.obj2, 1e-9 * full.obj2);
}

TEST(PropagateTree, RejectsNonSpanningEdgeSets) {
  const CycleTimeGrid g(2, 2, {1, 2, 3, 5});
  GridAllocation out;
  // Too few edges: column 1 never gets a value.
  EXPECT_FALSE(propagate_tree(g, {{0, 0}, {1, 0}}, out));
  // Right count but contains a cycle, leaving row 1 disconnected.
  EXPECT_FALSE(propagate_tree(g, {{0, 0}, {0, 1}, {0, 0}}, out));
}

TEST(PropagateTree, OrderIndependentOnShuffledEdges) {
  // The sweep loop must converge no matter how the edges are ordered —
  // including orders where an edge is unusable on the first pass.
  const CycleTimeGrid g(3, 2, {1, 2, 3, 4, 5, 6});
  const std::vector<BipartiteEdge> tree = {{0, 0}, {1, 0}, {2, 0}, {2, 1}};
  GridAllocation a, b;
  ASSERT_TRUE(propagate_tree(g, tree, a));
  const std::vector<BipartiteEdge> shuffled = {{2, 1}, {2, 0}, {1, 0}, {0, 0}};
  ASSERT_TRUE(propagate_tree(g, shuffled, b));
  EXPECT_EQ(a.r, b.r);
  EXPECT_EQ(a.c, b.c);
  EXPECT_DOUBLE_EQ(a.r[0], 1.0);
  // Chain: c0 = 1/t00, r1 = 1/(c0 t10), r2 = 1/(c0 t20), c1 = 1/(r2 t21).
  EXPECT_DOUBLE_EQ(a.c[0], 1.0);
  EXPECT_DOUBLE_EQ(a.r[1], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(a.r[2], 1.0 / 5.0);
  EXPECT_DOUBLE_EQ(a.c[1], 1.0 / (a.r[2] * 6.0));
}

}  // namespace
}  // namespace hetgrid
