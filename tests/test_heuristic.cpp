// Tests for the polynomial heuristic (paper Section 4.4), anchored on the
// fully worked 3x3 example in Sections 4.4.2–4.4.3.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/exact_solver.hpp"
#include "core/heuristic.hpp"
#include "util/rng.hpp"

namespace hetgrid {
namespace {

// The paper prints values to 4 decimals.
constexpr double kPaperTol = 1.5e-4;

TEST(Heuristic, PaperExampleFirstStepSharesMatch) {
  const HeuristicResult res =
      solve_heuristic(3, 3, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  const HeuristicStep& s0 = res.first();
  ASSERT_EQ(s0.alloc.r.size(), 3u);
  EXPECT_NEAR(s0.alloc.r[0], 1.1661, kPaperTol);
  EXPECT_NEAR(s0.alloc.r[1], 0.3675, kPaperTol);
  EXPECT_NEAR(s0.alloc.r[2], 0.2100, kPaperTol);
  EXPECT_NEAR(s0.alloc.c[0], 0.6803, kPaperTol);
  EXPECT_NEAR(s0.alloc.c[1], 0.4288, kPaperTol);
  EXPECT_NEAR(s0.alloc.c[2], 0.2859, kPaperTol);
}

TEST(Heuristic, PaperExampleFirstStepWorkloadMatrix) {
  const HeuristicResult res =
      solve_heuristic(3, 3, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  const HeuristicStep& s0 = res.first();
  const std::vector<double> b = workload_matrix(s0.grid, s0.alloc);
  // Paper's B matrix, row-major.
  const double expected[] = {0.7933, 1.0, 1.0,    1.0, 0.7879,
                             0.6303, 1.0, 0.7203, 0.5402};
  for (int k = 0; k < 9; ++k) EXPECT_NEAR(b[k], expected[k], kPaperTol);
  EXPECT_NEAR(s0.avg_workload, 0.8302, kPaperTol);
  EXPECT_NEAR(s0.obj2, 2.4322, kPaperTol);
}

TEST(Heuristic, PaperExampleRefinementTrajectory) {
  const HeuristicResult res =
      solve_heuristic(3, 3, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  ASSERT_GE(res.iterations(), 2);
  // After the first refinement the paper reaches {1,2,3;4,5,7;6,8,9} with
  // objective 2.5065.
  EXPECT_EQ(res.steps[1].grid.row_major(),
            (std::vector<double>{1, 2, 3, 4, 5, 7, 6, 8, 9}));
  EXPECT_NEAR(res.steps[1].obj2, 2.5065, kPaperTol);
}

TEST(Heuristic, PaperExampleConvergesToPublishedArrangement) {
  const HeuristicResult res =
      solve_heuristic(3, 3, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.final().grid.row_major(),
            (std::vector<double>{1, 2, 3, 4, 6, 8, 5, 7, 9}));
  EXPECT_NEAR(res.final().obj2, 2.5889, kPaperTol);
}

TEST(Heuristic, InitialArrangementIsSortedRowMajor) {
  const HeuristicResult res = solve_heuristic(2, 2, {5, 1, 4, 2});
  EXPECT_EQ(res.first().grid.row_major(),
            (std::vector<double>{1, 2, 4, 5}));
}

TEST(Heuristic, AllocationsAlwaysFeasibleAndTight) {
  Rng rng(101);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t p = 1 + rng.below(5), q = 1 + rng.below(5);
    const HeuristicResult res =
        solve_heuristic(p, q, rng.cycle_times(p * q, 0.02));
    for (const HeuristicStep& s : res.steps) {
      EXPECT_TRUE(is_feasible(s.grid, s.alloc, 1e-8)) << "trial " << trial;
      EXPECT_TRUE(is_tight(s.grid, s.alloc, 1e-8)) << "trial " << trial;
      EXPECT_LE(s.obj2, obj2_upper_bound(s.grid) * (1 + 1e-9));
    }
  }
}

TEST(Heuristic, PerfectOnRank1Pools) {
  // A pool that can be arranged into a rank-1 matrix: outer product of
  // {1,2} x {1,3}. The sorted row-major arrangement {1,2;3,6} is rank 1,
  // so the very first step is already perfect.
  const HeuristicResult res = solve_heuristic(2, 2, {1, 2, 3, 6});
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.final().avg_workload, 1.0, 1e-9);
  EXPECT_NEAR(res.final().obj2, 2.0, 1e-9);
}

TEST(Heuristic, HomogeneousPoolIsPerfect) {
  const HeuristicResult res =
      solve_heuristic(3, 3, std::vector<double>(9, 2.0));
  EXPECT_NEAR(res.final().avg_workload, 1.0, 1e-9);
  // Obj2 = capacity = 9 / 2.
  EXPECT_NEAR(res.final().obj2, 4.5, 1e-9);
}

TEST(Heuristic, MaxStepsOneDisablesRefinement) {
  HeuristicOptions opts;
  opts.max_steps = 1;
  const HeuristicResult res =
      solve_heuristic(3, 3, {1, 2, 3, 4, 5, 6, 7, 8, 9}, opts);
  EXPECT_EQ(res.iterations(), 1);
  EXPECT_FALSE(res.converged);
  EXPECT_DOUBLE_EQ(res.refinement_gain(), 0.0);
}

TEST(Heuristic, RefineFromCustomStartKeepsPool) {
  const CycleTimeGrid start(2, 2, {5, 1, 2, 4});  // deliberately unsorted
  const HeuristicResult res = refine_from(start);
  std::vector<double> pool = res.final().grid.row_major();
  std::sort(pool.begin(), pool.end());
  EXPECT_EQ(pool, (std::vector<double>{1, 2, 4, 5}));
}

TEST(Heuristic, DirectTApproximationAlsoFeasible) {
  // Ablation path: approximate T instead of T^inv. Still must produce
  // feasible, tight allocations (just usually worse ones).
  Rng rng(102);
  HeuristicOptions opts;
  opts.approximate_inverse = false;
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t p = 2 + rng.below(3), q = 2 + rng.below(3);
    const HeuristicResult res =
        solve_heuristic(p, q, rng.cycle_times(p * q, 0.02), opts);
    const HeuristicStep& f = res.final();
    EXPECT_TRUE(is_feasible(f.grid, f.alloc, 1e-8)) << "trial " << trial;
    EXPECT_TRUE(is_tight(f.grid, f.alloc, 1e-8)) << "trial " << trial;
  }
}

TEST(Heuristic, NeverBeatsExactOnFinalArrangement) {
  Rng rng(103);
  for (int trial = 0; trial < 30; ++trial) {
    const HeuristicResult res = solve_heuristic(2, 3, rng.cycle_times(6, 0.05));
    const ExactSolution ex = solve_exact(res.final().grid);
    EXPECT_GE(ex.obj2, res.final().obj2 - 1e-9) << "trial " << trial;
  }
}

TEST(Heuristic, IterationsAreBounded) {
  Rng rng(104);
  for (int trial = 0; trial < 50; ++trial) {
    const HeuristicResult res = solve_heuristic(4, 4, rng.cycle_times(16, 0.02));
    EXPECT_LE(res.iterations(), 200);
    EXPECT_GE(res.iterations(), 1);
  }
}

TEST(Heuristic, FinalIsBestStepEvenWhenStepCapHit) {
  // The refinement iteration is not monotone in Obj2, so a run truncated by
  // max_steps may end on a worse arrangement than one it already visited.
  // refine_from must then repeat the best step so final() reports the best
  // state seen — the same guarantee the 2-cycle exit gives.
  Rng rng(105);
  int cap_hits = 0;
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t p = 2 + rng.below(3), q = 2 + rng.below(3);
    HeuristicOptions opts;
    opts.max_steps = 2 + static_cast<int>(rng.below(3));
    const HeuristicResult res =
        solve_heuristic(p, q, rng.cycle_times(p * q, 0.02), opts);
    // The repeated step never grows the trajectory by more than one entry.
    EXPECT_LE(res.iterations(), opts.max_steps + 1) << "trial " << trial;
    if (res.converged) continue;  // a converged fixed point may dip; see
                                  // PaperExampleConvergesToPublishedArrangement
    ++cap_hits;
    double best = 0.0;
    for (const HeuristicStep& s : res.steps) best = std::max(best, s.obj2);
    EXPECT_DOUBLE_EQ(res.final().obj2, best) << "trial " << trial;
  }
  EXPECT_GT(cap_hits, 0) << "sweep never hit the step cap";
}

TEST(Heuristic, RefinementGainIsFiniteAndReported) {
  const HeuristicResult res =
      solve_heuristic(3, 3, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_TRUE(std::isfinite(res.refinement_gain()));
  EXPECT_NEAR(res.refinement_gain(), 2.5889 / 2.4322 - 1.0, 1e-3);
}

}  // namespace
}  // namespace hetgrid
