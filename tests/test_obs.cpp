// Tests for the tracing/metrics subsystem (src/obs): counter accounting,
// the Chrome Trace JSON exporter, idle-gap filling, and the invariant that
// per-processor busy + idle time sums to the reported makespan in both the
// bulk-synchronous simulator and the message-passing runtime.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "dist/panel_distribution.hpp"
#include "matrix/lu.hpp"
#include "matrix/matrix.hpp"
#include "mp/mp_runtime.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/trace.hpp"
#include "obs/utilization.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace hetgrid {
namespace {

Machine machine_of(const CycleTimeGrid& g, const NetworkModel& net) {
  return Machine{g, net};
}

// ----------------------------------------------------- summarize_trace

TEST(TraceSummary, CountersAccumulatePerKind) {
  MemoryTraceSink sink;
  trace_span(&sink, TraceEventKind::kComputeBlock, 0, 0.0, 2.0, 0, "u");
  trace_span(&sink, TraceEventKind::kSend, 0, 2.0, 1.0, 0, "send", 3.0, 1);
  trace_span(&sink, TraceEventKind::kRecv, 1, 2.0, 1.0, 0, "recv", 3.0, 0);
  const TraceSummary sum = summarize_trace(sink.events(), 2, 3.0);
  EXPECT_DOUBLE_EQ(sum.makespan, 3.0);
  EXPECT_DOUBLE_EQ(sum.procs[0].compute_time, 2.0);
  EXPECT_DOUBLE_EQ(sum.procs[0].comm_time, 1.0);
  EXPECT_DOUBLE_EQ(sum.procs[0].busy_time, 3.0);
  EXPECT_DOUBLE_EQ(sum.procs[0].idle_time, 0.0);
  EXPECT_EQ(sum.procs[0].messages_sent, 1u);
  EXPECT_DOUBLE_EQ(sum.procs[0].blocks_sent, 3.0);
  EXPECT_EQ(sum.procs[1].messages_received, 1u);
  EXPECT_DOUBLE_EQ(sum.procs[1].blocks_received, 3.0);
  EXPECT_DOUBLE_EQ(sum.procs[1].busy_time, 1.0);
  EXPECT_DOUBLE_EQ(sum.procs[1].idle_time, 2.0);
}

TEST(TraceSummary, OverlappingSpansAreNotDoubleCountedAsBusy) {
  // Async runtimes overlap compute and communication on one processor;
  // busy time is the measure of the union of the spans.
  MemoryTraceSink sink;
  trace_span(&sink, TraceEventKind::kComputeBlock, 0, 0.0, 4.0, 0, "u");
  trace_span(&sink, TraceEventKind::kRecv, 0, 2.0, 4.0, 0, "recv");
  const TraceSummary sum = summarize_trace(sink.events(), 1, 10.0);
  EXPECT_DOUBLE_EQ(sum.procs[0].busy_time, 6.0);  // union [0,6), not 8
  EXPECT_DOUBLE_EQ(sum.procs[0].idle_time, 4.0);
}

TEST(TraceSummary, MachineLaneEventsDoNotTouchProcessorCounters) {
  MemoryTraceSink sink;
  trace_span(&sink, TraceEventKind::kPhase, kMachineLane, 0.0, 5.0, 0, "s");
  const TraceSummary sum = summarize_trace(sink.events(), 2, 5.0);
  EXPECT_DOUBLE_EQ(sum.procs[0].busy_time, 0.0);
  EXPECT_DOUBLE_EQ(sum.procs[0].idle_time, 5.0);
  EXPECT_DOUBLE_EQ(sum.procs[1].idle_time, 5.0);
}

// ----------------------------------------------------- busy + idle == makespan

TEST(TraceInvariant, SimBackendBusyPlusIdleSumsToMakespan) {
  Rng rng(11);
  const CycleTimeGrid g(2, 2, rng.cycle_times(4, 0.1));
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const NetworkModel net{Topology::kSwitched, 1e-3, 1e-3, true};
  MemoryTraceSink sink;
  const SimReport rep =
      simulate_lu(machine_of(g, net), d, 12, KernelCosts{}, &sink);
  const TraceSummary sum = summarize_trace(sink.events(), 4, rep.total_time);
  EXPECT_GE(sum.makespan, rep.total_time);
  for (const ProcCounters& pc : sum.procs)
    EXPECT_NEAR(pc.busy_time + pc.idle_time, sum.makespan, 1e-9);
}

TEST(TraceInvariant, MpBackendBusyPlusIdleSumsToMakespan) {
  Rng rng(12);
  const CycleTimeGrid g(2, 2, rng.cycle_times(4, 0.1));
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const NetworkModel net{Topology::kEthernet, 1e-3, 1e-3, true};
  const std::size_t block = 4, nb = 6, n = block * nb;
  Matrix a(n, n);
  fill_diagonally_dominant(a.view(), rng);
  MemoryTraceSink sink;
  const MpReport rep = run_mp_lu(Machine{g, net}, d, a.view(), block,
                                 KernelCosts{}, false, &sink);
  ASSERT_TRUE(rep.factorized);
  const TraceSummary sum = summarize_trace(sink.events(), 4, rep.makespan);
  for (std::size_t id = 0; id < 4; ++id) {
    EXPECT_NEAR(sum.procs[id].busy_time + sum.procs[id].idle_time,
                sum.makespan, 1e-9);
    // Compute spans reproduce the runtime's own busy accounting.
    EXPECT_NEAR(sum.procs[id].compute_time, rep.busy[id], 1e-9);
  }
}

TEST(TraceInvariant, SimComputeSpansMatchReportedBusyTime) {
  Rng rng(13);
  const CycleTimeGrid g(2, 2, rng.cycle_times(4, 0.1));
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  MemoryTraceSink sink;
  const SimReport rep = simulate_mmm(machine_of(g, NetworkModel::free()), d,
                                     8, KernelCosts{}, &sink);
  const TraceSummary sum = summarize_trace(sink.events(), 4, rep.total_time);
  for (std::size_t id = 0; id < 4; ++id)
    EXPECT_NEAR(sum.procs[id].compute_time, rep.busy[id], 1e-9);
}

// ----------------------------------------------------- null sink

TEST(TraceNullSink, ResultsAreIdenticalWithAndWithoutSink) {
  Rng rng(14);
  const CycleTimeGrid g(2, 2, rng.cycle_times(4, 0.1));
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const NetworkModel net{Topology::kSwitched, 1e-3, 1e-3, true};
  MemoryTraceSink sink;
  const SimReport with =
      simulate_lu(machine_of(g, net), d, 10, KernelCosts{}, &sink);
  const SimReport without =
      simulate_lu(machine_of(g, net), d, 10, KernelCosts{}, nullptr);
  EXPECT_DOUBLE_EQ(with.total_time, without.total_time);
  EXPECT_DOUBLE_EQ(with.compute_time, without.compute_time);
  EXPECT_DOUBLE_EQ(with.comm_time, without.comm_time);
  EXPECT_FALSE(sink.events().empty());
}

// ----------------------------------------------------- idle events

TEST(TraceIdle, GapsAreFilledUpToTheMakespan) {
  std::vector<TraceEvent> ev;
  ev.push_back({TraceEventKind::kComputeBlock, 0, 1.0, 2.0, 0, 0.0,
                kNoPeer, "u"});
  append_idle_events(ev, 2, 5.0);
  double idle0 = 0.0, idle1 = 0.0;
  for (const TraceEvent& e : ev) {
    if (e.kind != TraceEventKind::kIdle) continue;
    (e.proc == 0 ? idle0 : idle1) += e.duration;
  }
  EXPECT_DOUBLE_EQ(idle0, 3.0);  // [0,1) and [3,5)
  EXPECT_DOUBLE_EQ(idle1, 5.0);  // the whole run
}

// ----------------------------------------------------- Chrome JSON export

TEST(ChromeTrace, GoldenOutputForATinyTrace) {
  std::vector<TraceEvent> ev;
  ev.push_back({TraceEventKind::kComputeBlock, 0, 0.0, 1.5, 2, 0.0,
                kNoPeer, "update"});
  ev.push_back({TraceEventKind::kSend, 0, 1.5, 0.25, 2, 3.0, 1, "send"});
  std::ostringstream os;
  write_chrome_trace(os, ev, 1, {"P(0,0) t=1"});
  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "  {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":"
      "{\"name\":\"hetgrid\"}},\n"
      "  {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":"
      "{\"name\":\"P(0,0) t=1\"}},\n"
      "  {\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"sort_index\":0}},\n"
      "  {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":1,\"args\":"
      "{\"name\":\"machine\"}},\n"
      "  {\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":1,"
      "\"args\":{\"sort_index\":1}},\n"
      "  {\"name\":\"update\",\"cat\":\"compute_block\",\"ph\":\"X\","
      "\"ts\":0,\"dur\":1500000,\"pid\":0,\"tid\":0,\"args\":{\"step\":2}},\n"
      "  {\"name\":\"send\",\"cat\":\"send\",\"ph\":\"X\",\"ts\":1500000,"
      "\"dur\":250000,\"pid\":0,\"tid\":0,\"args\":{\"step\":2,"
      "\"blocks\":3,\"peer\":1}}\n"
      "]}\n";
  EXPECT_EQ(os.str(), expected);
}

// The exporter's byte format is a contract: downstream tooling (and the
// bench_compare regression gate's JSON parser) depend on it never drifting.
// The event list below exercises every kind — compute, send, recv,
// broadcast, idle, a machine-lane phase — plus name escaping and the
// compact number format; the expected bytes are checked in under
// tests/golden/. Regenerate the golden file only for a deliberate format
// change, never to silence this test.
std::vector<TraceEvent> golden_trace_events() {
  std::vector<TraceEvent> ev;
  ev.push_back({TraceEventKind::kComputeBlock, 0, 0.0, 1.5, 0, 0.0,
                kNoPeer, "panel"});
  ev.push_back({TraceEventKind::kSend, 0, 1.5, 0.25, 0, 2.5, 1, "send"});
  ev.push_back({TraceEventKind::kRecv, 1, 1.5, 0.25, 0, 2.5, 0, "recv"});
  ev.push_back({TraceEventKind::kBroadcast, 1, 1.75, 0.5, 1, 1.0,
                kNoPeer, "l-bcast"});
  ev.push_back({TraceEventKind::kComputeBlock, 1, 2.25, 1.0, 1, 0.0,
                kNoPeer, "update \"trailing\""});
  ev.push_back({TraceEventKind::kPhase, kMachineLane, 0.0, 3.25, 1, 0.0,
                kNoPeer, "step 1"});
  ev.push_back({TraceEventKind::kIdle, 1, 0.0, 1.5, 0, 0.0, kNoPeer, "idle"});
  return ev;
}

TEST(ChromeTrace, GoldenFileBytesAreStable) {
  std::ostringstream os;
  const double cycle_times[2] = {1.0, 2.5};
  write_chrome_trace(os, golden_trace_events(), 2,
                     proc_lane_labels(1, 2, cycle_times));
  std::ifstream is(
      std::string(HETGRID_TEST_DIR) + "/golden/chrome_trace_small.json",
      std::ios::binary);
  ASSERT_TRUE(is.good()) << "golden file missing";
  std::ostringstream want;
  want << is.rdbuf();
  EXPECT_EQ(os.str(), want.str());
}

TEST(ChromeTrace, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
}

TEST(ChromeTrace, EndToEndOutputIsStructurallySound) {
  Rng rng(15);
  const CycleTimeGrid g(2, 2, rng.cycle_times(4, 0.1));
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const NetworkModel net{Topology::kSwitched, 1e-3, 1e-3, true};
  MemoryTraceSink sink;
  const SimReport rep =
      simulate_mmm(machine_of(g, net), d, 8, KernelCosts{}, &sink);
  std::vector<TraceEvent> ev = sink.events();
  append_idle_events(ev, 4, rep.total_time);
  std::ostringstream os;
  write_chrome_trace(os, ev, 4, {});
  const std::string out = os.str();
  // Structural checks without a JSON parser: balanced braces/brackets,
  // one record per line, and the wrapper keys present.
  EXPECT_NE(out.find("\"traceEvents\":["), std::string::npos);
  std::size_t braces = 0, brackets = 0;
  for (char c : out) {
    braces += c == '{';
    braces -= c == '}';
    brackets += c == '[';
    brackets -= c == ']';
  }
  EXPECT_EQ(braces, 0u);
  EXPECT_EQ(brackets, 0u);
  EXPECT_EQ(out.substr(out.size() - 3), "]}\n");
}

// ----------------------------------------------------- utilization table

TEST(Utilization, EmptyTraceYieldsZeroUtilizationNotNan) {
  // A run that produced no events still summarizes: every lane is fully
  // idle, the scalars are well-defined zeros (no 0/0 anywhere).
  const TraceSummary sum = summarize_trace({}, 3, 0.0);
  EXPECT_DOUBLE_EQ(sum.makespan, 0.0);
  ASSERT_EQ(sum.procs.size(), 3u);
  for (const ProcCounters& pc : sum.procs) {
    EXPECT_DOUBLE_EQ(pc.busy_time, 0.0);
    EXPECT_DOUBLE_EQ(pc.idle_time, 0.0);
  }
  EXPECT_DOUBLE_EQ(min_utilization(sum), 0.0);
  EXPECT_DOUBLE_EQ(mean_idle_fraction(sum), 0.0);
  std::ostringstream os;
  utilization_table(sum, {}).print(os);  // must not divide by zero
  EXPECT_FALSE(os.str().empty());
}

TEST(Utilization, ZeroDurationSpansCountAsWorkButNotAsBusyTime) {
  // Degenerate spans (e.g. a zero-cost phase on a free network) keep their
  // category accounting but contribute nothing to the busy-time union.
  MemoryTraceSink sink;
  trace_span(&sink, TraceEventKind::kComputeBlock, 0, 1.0, 0.0, 0, "u");
  trace_span(&sink, TraceEventKind::kSend, 0, 1.0, 0.0, 0, "send", 2.0, 1);
  trace_span(&sink, TraceEventKind::kComputeBlock, 0, 2.0, 1.0, 0, "u");
  const TraceSummary sum = summarize_trace(sink.events(), 2, 4.0);
  EXPECT_DOUBLE_EQ(sum.procs[0].compute_time, 1.0);
  EXPECT_DOUBLE_EQ(sum.procs[0].comm_time, 0.0);
  EXPECT_DOUBLE_EQ(sum.procs[0].busy_time, 1.0);  // only the real span
  EXPECT_DOUBLE_EQ(sum.procs[0].idle_time, 3.0);
  EXPECT_EQ(sum.procs[0].messages_sent, 1u);
  EXPECT_DOUBLE_EQ(sum.procs[0].blocks_sent, 2.0);
}

TEST(Utilization, SingleProcessorRunIsFullyUtilizedAndHasNoComm) {
  // 1x1 grid: no broadcasts, one lane, utilization exactly busy/makespan.
  const CycleTimeGrid g(1, 1, {2.0});
  const PanelDistribution d = PanelDistribution::block_cyclic(1, 1);
  MemoryTraceSink sink;
  const SimReport rep = simulate_lu(machine_of(g, NetworkModel::free()), d, 6,
                                    KernelCosts{}, &sink);
  EXPECT_DOUBLE_EQ(rep.comm_time, 0.0);
  const TraceSummary sum = summarize_trace(sink.events(), 1, rep.total_time);
  EXPECT_NEAR(min_utilization(sum), 1.0, 1e-12);
  EXPECT_NEAR(mean_idle_fraction(sum), 0.0, 1e-12);
  EXPECT_NEAR(sum.procs[0].busy_time, rep.total_time, 1e-9);
}

TEST(Utilization, TableAndScalarsAgreeWithTheSummary) {
  MemoryTraceSink sink;
  trace_span(&sink, TraceEventKind::kComputeBlock, 0, 0.0, 4.0, 0, "u");
  trace_span(&sink, TraceEventKind::kComputeBlock, 1, 0.0, 1.0, 0, "u");
  const TraceSummary sum = summarize_trace(sink.events(), 2, 4.0);
  EXPECT_DOUBLE_EQ(min_utilization(sum), 0.25);
  EXPECT_DOUBLE_EQ(mean_idle_fraction(sum), 0.375);
  std::ostringstream os;
  utilization_table(sum, {"fast", "slow"}).print(os);
  EXPECT_NE(os.str().find("fast"), std::string::npos);
  EXPECT_NE(os.str().find("slow"), std::string::npos);
}

}  // namespace
}  // namespace hetgrid
