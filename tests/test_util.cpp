// Unit tests for src/util: checks, RNG, statistics, tables, CLI parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace hetgrid {
namespace {

// ---------------------------------------------------------------- check

TEST(Check, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(HG_CHECK(1 + 1 == 2, "fine"));
}

TEST(Check, FailingConditionThrowsPrecondition) {
  EXPECT_THROW(HG_CHECK(false, "boom " << 42), PreconditionError);
}

TEST(Check, MessageContainsExpressionAndPayload) {
  try {
    HG_CHECK(2 < 1, "payload=" << 7);
    FAIL() << "expected throw";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("payload=7"), std::string::npos);
  }
}

TEST(Check, InternalCheckThrowsInternalError) {
  EXPECT_THROW(HG_INTERNAL_CHECK(false, "broken"), InternalError);
}

// ---------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.5, 3.5);
    EXPECT_GE(x, 2.5);
    EXPECT_LT(x, 3.5);
  }
}

TEST(Rng, UniformMeanIsAboutHalf) {
  Rng rng(99);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
  for (std::uint64_t v : seen) EXPECT_LT(v, 7u);
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(5);
  EXPECT_THROW(rng.below(0), PreconditionError);
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.range(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_TRUE(seen.count(-2));
  EXPECT_TRUE(seen.count(2));
}

TEST(Rng, CycleTimesArePositiveAndBounded) {
  Rng rng(3);
  const auto t = rng.cycle_times(1000);
  EXPECT_EQ(t.size(), 1000u);
  for (double v : t) {
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Rng, CycleTimesRespectsEpsFloor) {
  Rng rng(3);
  for (double v : rng.cycle_times(1000, 0.25)) EXPECT_GE(v, 0.25);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

// ---------------------------------------------------------------- stats

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyThrowsOnMean) {
  RunningStats s;
  EXPECT_THROW(s.mean(), PreconditionError);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, CiShrinksWithSamples) {
  Rng rng(1);
  RunningStats small, large;
  for (int i = 0; i < 10; ++i) small.add(rng.uniform());
  for (int i = 0; i < 1000; ++i) large.add(rng.uniform());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Percentile, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(Percentile, Extremes) {
  std::vector<double> v{5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 9.0);
}

TEST(Percentile, InterpolatesBetweenOrderStats) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 25.0), 2.5);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 50.0), PreconditionError);
  EXPECT_THROW(percentile({1.0}, 101.0), PreconditionError);
}

TEST(MeanOf, SimpleAverage) {
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
}

TEST(HarmonicMean, MatchesClosedForm) {
  // harmonic mean of {1, 3} = 2 / (1 + 1/3) = 3/2 (the paper's Figure 3
  // aggregate-column computation).
  EXPECT_NEAR(harmonic_mean({1.0, 3.0}), 1.5, 1e-12);
  EXPECT_NEAR(harmonic_mean({2.0, 5.0}), 20.0 / 7.0, 1e-12);
}

TEST(HarmonicMean, RejectsNonPositive) {
  EXPECT_THROW(harmonic_mean({1.0, 0.0}), PreconditionError);
}

// ---------------------------------------------------------------- table

TEST(Table, AlignsColumnsAndPrintsTitle) {
  Table t("My Title");
  t.header({"a", "long_header"});
  t.row({"12345", "x"});
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("My Title"), std::string::npos);
  EXPECT_NE(out.find("long_header"), std::string::npos);
  EXPECT_NE(out.find("12345"), std::string::npos);
}

TEST(Table, CsvFormat) {
  Table t;
  t.header({"x", "y"});
  t.row({"1", "2"});
  t.row({"3", "4"});
  std::ostringstream oss;
  t.print_csv(oss);
  EXPECT_EQ(oss.str(), "x,y\n1,2\n3,4\n");
}

TEST(Table, RejectsWrongWidthRow) {
  Table t;
  t.header({"x", "y"});
  EXPECT_THROW(t.row({"only-one"}), PreconditionError);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(static_cast<std::int64_t>(42)), "42");
}

// ---------------------------------------------------------------- cli

TEST(Cli, DefaultsApplyWhenAbsent) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv, {{"n", "5"}, {"x", "1.5"}});
  EXPECT_EQ(cli.get_int("n"), 5);
  EXPECT_DOUBLE_EQ(cli.get_double("x"), 1.5);
}

TEST(Cli, ParsesValues) {
  const char* argv[] = {"prog", "--n=12", "--name=hello", "--flag"};
  Cli cli(4, argv, {{"n", "0"}, {"name", ""}, {"flag", "0"}});
  EXPECT_EQ(cli.get_int("n"), 12);
  EXPECT_EQ(cli.get_string("name"), "hello");
  EXPECT_TRUE(cli.get_bool("flag"));
}

TEST(Cli, UnknownFlagThrows) {
  const char* argv[] = {"prog", "--typo=1"};
  EXPECT_THROW(Cli(2, argv, {{"n", "0"}}), PreconditionError);
}

TEST(Cli, NonIntegerThrowsOnIntAccess) {
  const char* argv[] = {"prog", "--n=abc"};
  Cli cli(2, argv, {{"n", "0"}});
  EXPECT_THROW(cli.get_int("n"), PreconditionError);
}

TEST(ParsePositiveList, ParsesCommaSeparatedDoubles) {
  EXPECT_EQ(parse_positive_list("1,2.5,0.125"),
            (std::vector<double>{1.0, 2.5, 0.125}));
  EXPECT_EQ(parse_positive_list("42"), (std::vector<double>{42.0}));
}

TEST(ParsePositiveList, RejectsBadInput) {
  EXPECT_THROW(parse_positive_list(""), PreconditionError);
  EXPECT_THROW(parse_positive_list("1,,2"), PreconditionError);
  EXPECT_THROW(parse_positive_list("1,abc"), PreconditionError);
  EXPECT_THROW(parse_positive_list("1,-2"), PreconditionError);
  EXPECT_THROW(parse_positive_list("0"), PreconditionError);
  EXPECT_THROW(parse_positive_list("1,2,"), PreconditionError);
}

TEST(Cli, DescribeListsAllFlags) {
  const char* argv[] = {"prog", "--n=3"};
  Cli cli(2, argv, {{"n", "0"}, {"m", "7"}});
  const std::string d = cli.describe();
  EXPECT_NE(d.find("n=3"), std::string::npos);
  EXPECT_NE(d.find("m=7"), std::string::npos);
}

}  // namespace
}  // namespace hetgrid
