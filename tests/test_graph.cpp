// Tests for the bipartite spanning-tree enumerator behind the exact solver.
#include <gtest/gtest.h>

#include <set>

#include "graph/spanning_tree.hpp"
#include "util/check.hpp"

namespace hetgrid {
namespace {

// ----------------------------------------------------- union-find

TEST(UnionFind, StartsFullyDisconnected) {
  UnionFind uf(5);
  EXPECT_EQ(uf.components(), 5u);
  EXPECT_NE(uf.find(0), uf.find(1));
}

TEST(UnionFind, UniteMergesComponents) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_EQ(uf.components(), 2u);
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_EQ(uf.components(), 1u);
  EXPECT_EQ(uf.find(0), uf.find(3));
}

TEST(UnionFind, UniteOnSameComponentReturnsFalse) {
  UnionFind uf(3);
  uf.unite(0, 1);
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_EQ(uf.components(), 2u);
}

// ----------------------------------------------------- counting

struct CountCase {
  std::size_t p, q;
  std::uint64_t expected;  // Scoins: p^(q-1) * q^(p-1)
};

class SpanningTreeCounts : public ::testing::TestWithParam<CountCase> {};

TEST_P(SpanningTreeCounts, EnumeratorMatchesScoinsFormula) {
  const CountCase c = GetParam();
  EXPECT_EQ(spanning_tree_count(c.p, c.q), c.expected);
  std::uint64_t visited = enumerate_spanning_trees(
      c.p, c.q, [](const std::vector<BipartiteEdge>&) { return true; });
  EXPECT_EQ(visited, c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, SpanningTreeCounts,
    ::testing::Values(CountCase{1, 1, 1}, CountCase{1, 5, 1},
                      CountCase{2, 2, 4}, CountCase{2, 3, 12},
                      CountCase{3, 3, 81}, CountCase{2, 4, 32},
                      CountCase{3, 4, 432}, CountCase{4, 4, 4096}));

TEST(SpanningTreeCount, SaturatesInsteadOfOverflowing) {
  EXPECT_EQ(spanning_tree_count(50, 50),
            std::numeric_limits<std::uint64_t>::max());
}

// ----------------------------------------------------- tree validity

TEST(SpanningTrees, EveryVisitedTreeIsASpanningTree) {
  const std::size_t p = 3, q = 3;
  enumerate_spanning_trees(p, q, [&](const std::vector<BipartiteEdge>& t) {
    EXPECT_EQ(t.size(), p + q - 1);
    UnionFind uf(p + q);
    for (const BipartiteEdge& e : t) {
      EXPECT_LT(e.row, p);
      EXPECT_LT(e.col, q);
      EXPECT_TRUE(uf.unite(e.row, p + e.col)) << "cycle in emitted tree";
    }
    EXPECT_EQ(uf.components(), 1u) << "emitted tree does not span";
    return true;
  });
}

TEST(SpanningTrees, TreesAreDistinct) {
  std::set<std::vector<std::pair<std::size_t, std::size_t>>> seen;
  enumerate_spanning_trees(2, 3, [&](const std::vector<BipartiteEdge>& t) {
    std::vector<std::pair<std::size_t, std::size_t>> key;
    for (const auto& e : t) key.emplace_back(e.row, e.col);
    EXPECT_TRUE(seen.insert(key).second) << "duplicate tree emitted";
    return true;
  });
  EXPECT_EQ(seen.size(), 12u);
}

TEST(SpanningTrees, EarlyStopHonored) {
  std::uint64_t calls = 0;
  const std::uint64_t visited =
      enumerate_spanning_trees(3, 3, [&](const std::vector<BipartiteEdge>&) {
        return ++calls < 5;
      });
  EXPECT_EQ(calls, 5u);
  EXPECT_EQ(visited, 5u);
}

TEST(SpanningTrees, DegenerateOneByOne) {
  std::uint64_t calls = 0;
  enumerate_spanning_trees(1, 1, [&](const std::vector<BipartiteEdge>& t) {
    ++calls;
    EXPECT_EQ(t.size(), 1u);
    return true;
  });
  EXPECT_EQ(calls, 1u);
}

TEST(SpanningTrees, RejectsZeroDimensions) {
  EXPECT_THROW(enumerate_spanning_trees(
                   0, 3, [](const std::vector<BipartiteEdge>&) {
                     return true;
                   }),
               PreconditionError);
  EXPECT_THROW(spanning_tree_count(3, 0), PreconditionError);
}

}  // namespace
}  // namespace hetgrid
