// Tests for the online panel-boundary rebalancer (doc/rebalance.md):
// plan_rebalance()'s act/hold thresholds and minimal-churn slot remapping,
// the estimated-rate-grid overlay, the drift traces the rebalancer is
// evaluated against, the EWMA-alpha contract (alpha = 1 reproduces
// instantaneous rates), the dynamic bulk-synchronous simulators (off ==
// static bit for bit; a planted 4x straggler rebalanced to within 15% of
// the imbalance report's balanced lower bound), the message-passing
// runtime's migration path (same acceptance scenario with real numerics),
// and migration x packed-panel-cache coherence.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/rebalance.hpp"
#include "dist/panel_distribution.hpp"
#include "matrix/gemm.hpp"
#include "matrix/matrix.hpp"
#include "matrix/norms.hpp"
#include "mp/block_store.hpp"
#include "mp/mp_runtime.hpp"
#include "obs/cycle_estimator.hpp"
#include "obs/imbalance.hpp"
#include "obs/metrics.hpp"
#include "sim/drift.hpp"
#include "sim/dynamic.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace hetgrid {
namespace {

using Rebalance = RuntimeOptions::Rebalance;
using Scheduler = RuntimeOptions::Scheduler;

bool same_bits(const ConstMatrixView& a, const ConstMatrixView& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t j = 0; j < a.cols(); ++j) {
    for (std::size_t i = 0; i < a.rows(); ++i) {
      const double x = a(i, j), y = b(i, j);
      if (std::memcmp(&x, &y, sizeof(double)) != 0) return false;
    }
  }
  return true;
}

Machine uniform_machine(std::size_t p, std::size_t q) {
  return Machine{CycleTimeGrid(p, q, std::vector<double>(p * q, 1.0)),
                 NetworkModel{Topology::kSwitched, 1.0e-4, 2.0e-4, true}};
}

// The planted-straggler acceptance scenario (EXPERIMENTS section 16): a
// uniform 2x2 grid whose first grid row (processors 0 and 1) runs 4x
// slower from step 0 on.
RuntimeOptions straggler_options(Rebalance rebalance) {
  RuntimeOptions opts;
  opts.rebalance = rebalance;
  opts.trace = CycleTimeTrace::straggler({0, 1}, 4.0, 0);
  opts.estimator.alpha = 1.0;  // instantaneous rates: no EWMA warm-up lag
  opts.estimator.min_samples = 1;
  return opts;
}

// ----------------------------------------------------- plan_rebalance

TEST(PlanRebalance, HoldsWhenAllocationAlreadyBalanced) {
  // Uniform rates, balanced maps: the re-solve reproduces the current
  // multiplicities, so nothing moves and the planner holds.
  const CycleTimeGrid rates(2, 2, {1.0, 1.0, 1.0, 1.0});
  const std::vector<std::size_t> rows{0, 0, 1, 1}, cols{0, 1, 0, 1};
  const RebalanceDecision d = plan_rebalance(
      rates, rows, cols, RebalanceRegion{0, 4, 0, 4, false, 10.0, 0.01, 1.0});
  EXPECT_FALSE(d.act);
  EXPECT_EQ(d.row_map, rows);
  EXPECT_EQ(d.col_map, cols);
  EXPECT_EQ(d.blocks_to_move, 0u);
  EXPECT_EQ(d.row_slots_changed + d.col_slots_changed, 0u);
  EXPECT_DOUBLE_EQ(d.current_sweep, d.proposed_sweep);
}

TEST(PlanRebalance, ShiftsSlotsTowardFastRowsWithMinimalChurn) {
  // Grid row 0 runs 4x slower: shares (0.2, 0.8) round to row slots
  // (1, 3). Minimal churn means row 0 gives up exactly its highest-index
  // slot (position 1) and nothing else changes: 1 row line x 4 region
  // columns = 4 migrated blocks.
  const CycleTimeGrid rates(2, 2, {4.0, 4.0, 1.0, 1.0});
  const std::vector<std::size_t> rows{0, 0, 1, 1}, cols{0, 0, 1, 1};
  const RebalanceDecision d = plan_rebalance(
      rates, rows, cols, RebalanceRegion{0, 4, 0, 4, false, 10.0, 0.01, 1.0});
  EXPECT_TRUE(d.act);
  EXPECT_EQ(d.row_map, (std::vector<std::size_t>{0, 1, 1, 1}));
  EXPECT_EQ(d.col_map, cols);
  EXPECT_EQ(d.row_slots_changed, 1u);
  EXPECT_EQ(d.col_slots_changed, 0u);
  EXPECT_EQ(d.blocks_to_move, 4u);
  // Current: the slow (0,0) owns 2x2 blocks at rate 4 -> sweep 16.
  // Proposed: row 0 keeps 1 line (2 blocks x 4 = 8), row 1's processors
  // sweep 3x2 blocks at rate 1 = 6 -> sweep 8.
  EXPECT_DOUBLE_EQ(d.current_sweep, 16.0);
  EXPECT_DOUBLE_EQ(d.proposed_sweep, 8.0);
  EXPECT_DOUBLE_EQ(d.predicted_gain, 80.0);
  EXPECT_DOUBLE_EQ(d.migration_cost, 0.04);
}

TEST(PlanRebalance, BlockMultiplierScalesTheMigrationBill) {
  // MMM drags A, B, and C along with every owner change: same proposal,
  // three times the bill.
  const CycleTimeGrid rates(2, 2, {4.0, 4.0, 1.0, 1.0});
  const std::vector<std::size_t> rows{0, 0, 1, 1}, cols{0, 0, 1, 1};
  const RebalanceDecision d = plan_rebalance(
      rates, rows, cols, RebalanceRegion{0, 4, 0, 4, false, 10.0, 0.01, 3.0});
  EXPECT_EQ(d.blocks_to_move, 12u);
  EXPECT_DOUBLE_EQ(d.migration_cost, 0.12);
}

TEST(PlanRebalance, MigrationCostThresholdHolds) {
  // The same profitable proposal, but with a prohibitive per-block transfer
  // cost and almost no remaining sweeps to amortize it: the planner still
  // reports the proposal (maps, blocks, cost) but refuses to act.
  const CycleTimeGrid rates(2, 2, {4.0, 4.0, 1.0, 1.0});
  const std::vector<std::size_t> rows{0, 0, 1, 1}, cols{0, 0, 1, 1};
  const RebalanceDecision d = plan_rebalance(
      rates, rows, cols,
      RebalanceRegion{0, 4, 0, 4, false, 0.01, 1000.0, 1.0});
  EXPECT_FALSE(d.act);
  EXPECT_EQ(d.row_map, (std::vector<std::size_t>{0, 1, 1, 1}));
  EXPECT_EQ(d.blocks_to_move, 4u);
  EXPECT_DOUBLE_EQ(d.migration_cost, 4000.0);
  EXPECT_LT(d.predicted_gain, d.migration_cost);
}

TEST(PlanRebalance, MinGainBandAbsorbsSmallDrift) {
  // A 2% slowdown re-solves to the same slot counts (shares 0.495/0.505
  // round back to 2/2), so the proposal is a no-op and act stays false —
  // the band keeps the rebalancer from thrashing on noise.
  const CycleTimeGrid rates(2, 2, {1.02, 1.02, 1.0, 1.0});
  const std::vector<std::size_t> rows{0, 0, 1, 1}, cols{0, 1, 0, 1};
  const RebalanceDecision d = plan_rebalance(
      rates, rows, cols, RebalanceRegion{0, 4, 0, 4, false, 10.0, 0.01, 1.0});
  EXPECT_FALSE(d.act);
  EXPECT_EQ(d.blocks_to_move, 0u);
  EXPECT_EQ(d.row_map, rows);
  EXPECT_EQ(d.col_map, cols);
}

TEST(PlanRebalance, LowerOnlyRegionPricesOnlyLowerBlocks) {
  // Processor (0, 1) is 10x slower but owns only the strictly-upper block
  // (0, 1) of a 2x2 region: with lower_only the region sweep ignores it.
  const CycleTimeGrid rates(2, 2, {1.0, 10.0, 1.0, 1.0});
  const std::vector<std::size_t> rows{0, 1}, cols{0, 1};
  RebalanceRegion reg{0, 2, 0, 2, true, 1.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(plan_rebalance(rates, rows, cols, reg).current_sweep, 1.0);
  reg.lower_only = false;
  EXPECT_DOUBLE_EQ(plan_rebalance(rates, rows, cols, reg).current_sweep, 10.0);
}

TEST(EstimatedRateGrid, OverlaysArmedLanesOnStaticFallback) {
  const CycleTimeGrid fallback(2, 2, {1.0, 1.0, 1.0, 1.0});
  std::vector<CycleEstimate> est;
  est.push_back({1, ObsOp::kUpdate, 0.5, 10.0, 3});   // overlays (0, 1)
  est.push_back({0, ObsOp::kPanel, 9.0, 10.0, 5});    // wrong op: ignored
  est.push_back({2, ObsOp::kUpdate, 7.0, 1.0, 1});    // under-sampled
  est.push_back({17, ObsOp::kUpdate, 7.0, 10.0, 9});  // out of range
  const CycleTimeGrid g =
      estimated_rate_grid(est, fallback, ObsOp::kUpdate, 2);
  EXPECT_DOUBLE_EQ(g(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(g(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(g(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(g(1, 1), 1.0);
}

// ----------------------------------------------------- drift traces

TEST(CycleTimeTrace, StepRampAndRecoveryShapes) {
  CycleTimeTrace t;
  EXPECT_TRUE(t.empty());
  EXPECT_DOUBLE_EQ(t.factor(0, 0), 1.0);

  t.add_step(2, 3.0, 5);
  EXPECT_FALSE(t.empty());
  EXPECT_DOUBLE_EQ(t.factor(2, 4), 1.0);
  EXPECT_DOUBLE_EQ(t.factor(2, 5), 3.0);
  EXPECT_DOUBLE_EQ(t.factor(2, 99), 3.0);
  EXPECT_DOUBLE_EQ(t.factor(1, 5), 1.0);  // other processors untouched

  CycleTimeTrace ramp;
  ramp.add_ramp(0, 5.0, 2, 4);  // 1 -> 5 over steps [2, 6)
  EXPECT_DOUBLE_EQ(ramp.factor(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(ramp.factor(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(ramp.factor(0, 3), 3.0);
  EXPECT_DOUBLE_EQ(ramp.factor(0, 5), 5.0);
  EXPECT_DOUBLE_EQ(ramp.factor(0, 6), 5.0);  // holds after the ramp

  CycleTimeTrace rec;
  rec.add_recovery(1, 4.0, 3, 6);
  EXPECT_DOUBLE_EQ(rec.factor(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(rec.factor(1, 3), 4.0);
  EXPECT_DOUBLE_EQ(rec.factor(1, 5), 4.0);
  EXPECT_DOUBLE_EQ(rec.factor(1, 6), 1.0);  // healed
}

TEST(CycleTimeTrace, FactorsOnTheSameProcessorCompose) {
  CycleTimeTrace t;
  t.add_step(0, 2.0, 0).add_step(0, 3.0, 4);
  EXPECT_DOUBLE_EQ(t.factor(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(t.factor(0, 4), 6.0);
}

TEST(CycleTimeTrace, StragglerPresetCoversProcsAndRecovery) {
  const CycleTimeTrace t = CycleTimeTrace::straggler({0, 2}, 4.0, 1, 5);
  EXPECT_DOUBLE_EQ(t.factor(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(t.factor(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(t.factor(2, 4), 4.0);
  EXPECT_DOUBLE_EQ(t.factor(0, 5), 1.0);  // recovered
  EXPECT_DOUBLE_EQ(t.factor(1, 3), 1.0);  // not a straggler

  const CycleTimeTrace forever = CycleTimeTrace::straggler({1}, 2.0, 3);
  EXPECT_DOUBLE_EQ(forever.factor(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(forever.factor(1, 1000), 2.0);  // never recovers
}

// ----------------------------------------------------- estimator alpha

TEST(EstimatorAlpha, AlphaOneReproducesInstantaneousRates) {
  // With alpha = 1 the EWMA is the newest sample: after a rate change the
  // estimate is exactly the post-change seconds-per-unit, no warm-up lag.
  // This is what makes the acceptance scenarios converge in one step.
  CycleTimeEstimator::Options opt;
  opt.alpha = 1.0;
  opt.min_samples = 1;
  CycleTimeEstimator est(opt);
  est.sample(0, ObsOp::kUpdate, 2.0, 8.0, 0);  // 4 s/unit
  est.sample(0, ObsOp::kUpdate, 2.0, 3.0, 1);  // 1.5 s/unit
  const std::vector<CycleEstimate> e = est.estimates();
  ASSERT_EQ(e.size(), 1u);
  EXPECT_DOUBLE_EQ(e[0].seconds_per_unit, 1.5);

  // Contrast: the default-style alpha blends history.
  CycleTimeEstimator::Options half;
  half.alpha = 0.5;
  CycleTimeEstimator blended(half);
  blended.sample(0, ObsOp::kUpdate, 2.0, 8.0, 0);
  blended.sample(0, ObsOp::kUpdate, 2.0, 3.0, 1);
  EXPECT_DOUBLE_EQ(blended.estimates()[0].seconds_per_unit, 2.75);
}

// ----------------------------------------------------- dynamic simulators

TEST(DynamicSim, OffWithEmptyTraceMatchesStaticSimulators) {
  // Gated off, the dynamic entry points must reproduce the static
  // simulators' reports exactly — same totals, same per-processor busy
  // times, no rebalancer activity.
  const Machine machine{
      CycleTimeGrid(2, 2, {1.0, 2.0, 3.0, 6.0}),
      NetworkModel{Topology::kSwitched, 1.0e-4, 2.0e-4, true}};
  const PanelDistribution dist = PanelDistribution::block_cyclic(2, 2);
  const std::size_t nb = 8;

  struct Pair {
    SimReport stat;
    DynamicSimReport dyn;
  };
  const Pair pairs[] = {
      {simulate_mmm(machine, dist, nb), simulate_mmm_dynamic(machine, dist, nb)},
      {simulate_lu(machine, dist, nb), simulate_lu_dynamic(machine, dist, nb)},
      {simulate_qr(machine, dist, nb), simulate_qr_dynamic(machine, dist, nb)},
      {simulate_cholesky(machine, dist, nb),
       simulate_cholesky_dynamic(machine, dist, nb)}};
  for (const Pair& p : pairs) {
    SCOPED_TRACE(p.stat.kernel);
    EXPECT_EQ(p.stat.total_time, p.dyn.total_time);
    EXPECT_EQ(p.stat.compute_time, p.dyn.compute_time);
    EXPECT_EQ(p.stat.comm_time, p.dyn.comm_time);
    EXPECT_EQ(p.stat.perfect_compute_bound, p.dyn.perfect_compute_bound);
    EXPECT_EQ(p.stat.busy, p.dyn.busy);
    EXPECT_EQ(p.stat.steps.size(), p.dyn.steps.size());
    EXPECT_EQ(p.dyn.resolves, 0u);
    EXPECT_EQ(p.dyn.migrations, 0u);
    EXPECT_TRUE(p.dyn.events.empty());
  }
}

TEST(DynamicSim, StragglerRebalanceBeatsStaticAndApproachesBound) {
  // The acceptance scenario: MMM on a uniform 2x2 grid, block-cyclic
  // distribution, nb = 20, grid row 0 slowed 4x from step 0. Static plan:
  // every step sweeps at the stragglers' pace. Rebalanced: one migration
  // at the first boundary hands row 0 its fair 4-of-20 row slots. Required:
  // >= 25% makespan reduction AND within 15% of the imbalance report's
  // balanced lower bound under the post-drift rates.
  const Machine machine = uniform_machine(2, 2);
  const PanelDistribution dist = PanelDistribution::block_cyclic(2, 2);
  const std::size_t nb = 20;

  const DynamicSimReport stat =
      simulate_mmm_dynamic(machine, dist, nb, straggler_options(Rebalance::kOff));
  EXPECT_EQ(stat.migrations, 0u);

  const RuntimeOptions opts = straggler_options(Rebalance::kPanel);
  RunObservation obs(opts.estimator);
  RunObservation* prev = install_observation(&obs);
  const DynamicSimReport reb = simulate_mmm_dynamic(machine, dist, nb, opts);
  install_observation(prev);

  // One decisive migration at the first boundary, moving 120 owner changes
  // x 3 matrices (A, B, C).
  EXPECT_EQ(reb.resolves, nb - 1);
  EXPECT_EQ(reb.migrations, 1u);
  ASSERT_EQ(reb.events.size(), 1u);
  EXPECT_EQ(reb.events[0].step, 1u);
  EXPECT_EQ(reb.blocks_moved, 360u);
  EXPECT_EQ(obs.rebalances.size(), 1u);

  // >= 25% faster than the static plan (actual: ~57%).
  EXPECT_LT(reb.total_time, 0.75 * stat.total_time);

  // Within 15% of the balanced lower bound under post-drift rates.
  const std::vector<double> finish(reb.busy.size(), reb.total_time);
  const ImbalanceReport rep =
      build_imbalance_report(obs, reb.busy, finish);
  ASSERT_GT(rep.lower_bound, 0.0);
  EXPECT_LE(reb.total_time, 1.15 * rep.lower_bound);
  ASSERT_EQ(rep.rebalances.size(), 1u);
  EXPECT_EQ(rep.rebalances[0].blocks_moved, 360u);
}

TEST(DynamicSim, FactorizationsRebalanceUnderStraggler) {
  // The shrinking-region variants: LU, QR, and Cholesky under the same 4x
  // grid-row-0 straggler. Each must migrate at least once and finish no
  // later than the static plan.
  const Machine machine = uniform_machine(2, 2);
  const PanelDistribution dist = PanelDistribution::block_cyclic(2, 2);
  const std::size_t nb = 24;

  using Fn = DynamicSimReport (*)(const Machine&, const Distribution2D&,
                                  std::size_t, const RuntimeOptions&,
                                  const KernelCosts&);
  const Fn kernels[] = {&simulate_lu_dynamic, &simulate_qr_dynamic,
                        &simulate_cholesky_dynamic};
  for (Fn fn : kernels) {
    const DynamicSimReport stat =
        fn(machine, dist, nb, straggler_options(Rebalance::kOff), {});
    const DynamicSimReport reb =
        fn(machine, dist, nb, straggler_options(Rebalance::kPanel), {});
    SCOPED_TRACE(stat.kernel);
    EXPECT_GE(reb.migrations, 1u);
    EXPECT_LT(reb.total_time, stat.total_time);
  }
}

// ----------------------------------------------------- MP runtime

TEST(MpRebalance, OffIsBitIdenticalAcrossThreadsAndSchedulers) {
  // With the rebalancer off, a drift trace only reshapes virtual time:
  // the gathered product must stay bit-identical to the trace-free run,
  // and makespan/bits must agree across thread counts and schedulers.
  const Machine machine = uniform_machine(2, 2);
  const PanelDistribution dist = PanelDistribution::block_cyclic(2, 2);
  const std::size_t n = 24, block = 4;
  Rng rng(211);
  Matrix a(n, n), b(n, n);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);

  Matrix plain(n, n);
  run_mp_mmm(machine, dist, a.view(), b.view(), plain.view(), block);

  double makespan = -1.0;
  for (unsigned threads : {1u, 2u, 7u}) {
    for (Scheduler sched : {Scheduler::kBarrier, Scheduler::kDag}) {
      SCOPED_TRACE(testing::Message() << "threads=" << threads << " dag="
                                      << (sched == Scheduler::kDag));
      RuntimeOptions opts = straggler_options(Rebalance::kOff);
      opts.threads = threads;
      opts.scheduler = sched;
      Matrix c(n, n);
      const MpReport rep = run_mp_mmm(machine, dist, a.view(), b.view(),
                                      c.view(), block, {}, nullptr, opts);
      EXPECT_TRUE(same_bits(plain.view(), c.view()));
      EXPECT_EQ(rep.rebalances, 0u);
      EXPECT_EQ(rep.rebalance_blocks, 0u);
      if (makespan < 0.0) makespan = rep.makespan;
      EXPECT_EQ(rep.makespan, makespan);
    }
  }
}

TEST(MpRebalance, StragglerMakespanDropsAndResultIsUnchanged) {
  // The MP half of the acceptance scenario: real numerics, virtual time.
  // nb = 20 block steps of 2x2 blocks; grid row 0 slows 4x at step 0.
  // Rebalancing must cut the makespan >= 25%, land within 15% of the
  // imbalance report's balanced lower bound, and not move a single bit of
  // the gathered product (MMM migration is pure data movement).
  const Machine machine = uniform_machine(2, 2);
  const PanelDistribution dist = PanelDistribution::block_cyclic(2, 2);
  const std::size_t n = 40, block = 2;
  Rng rng(223);
  Matrix a(n, n), b(n, n);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);

  Matrix c_static(n, n);
  const MpReport stat =
      run_mp_mmm(machine, dist, a.view(), b.view(), c_static.view(), block,
                 {}, nullptr, straggler_options(Rebalance::kOff));

  const RuntimeOptions opts = straggler_options(Rebalance::kPanel);
  RunObservation obs(opts.estimator);
  RunObservation* prev = install_observation(&obs);
  Matrix c_reb(n, n);
  const MpReport reb = run_mp_mmm(machine, dist, a.view(), b.view(),
                                  c_reb.view(), block, {}, nullptr, opts);
  install_observation(prev);

  EXPECT_TRUE(same_bits(c_static.view(), c_reb.view()));
  EXPECT_GE(reb.rebalances, 1u);
  EXPECT_GE(reb.rebalance_blocks, 1u);
  EXPECT_LT(reb.makespan, 0.75 * stat.makespan);

  const ImbalanceReport rep = build_imbalance_report(obs, reb.busy, reb.clock);
  ASSERT_GT(rep.lower_bound, 0.0);
  EXPECT_LE(reb.makespan, 1.15 * rep.lower_bound);
  EXPECT_EQ(rep.rebalances.size(), reb.rebalances);

  // Sanity on the numerics: the product matches the sequential gemm.
  Matrix ref(n, n, 0.0);
  gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.0, ref.view());
  EXPECT_LE(max_abs_diff(ref.view(), c_reb.view()), 1e-10);
}

TEST(MpRebalance, MigrationScheduleIsThreadAndSchedulerInvariant) {
  // Migration decisions are pure functions of the boundary snapshot, so
  // the applied schedule — and every downstream bit — must be identical
  // across thread counts and schedulers.
  const Machine machine = uniform_machine(2, 2);
  const PanelDistribution dist = PanelDistribution::block_cyclic(2, 2);
  const std::size_t n = 40, block = 2;
  Rng rng(227);
  Matrix a(n, n);
  fill_diagonally_dominant(a.view(), rng);

  Matrix first;
  MpReport first_rep;
  bool have_first = false;
  for (unsigned threads : {1u, 2u, 7u}) {
    for (Scheduler sched : {Scheduler::kBarrier, Scheduler::kDag}) {
      SCOPED_TRACE(testing::Message() << "threads=" << threads << " dag="
                                      << (sched == Scheduler::kDag));
      RuntimeOptions opts = straggler_options(Rebalance::kPanel);
      opts.threads = threads;
      opts.scheduler = sched;
      Matrix lu = a;
      const MpReport rep =
          run_mp_lu(machine, dist, lu.view(), block, {}, false, nullptr, opts);
      if (!have_first) {
        first = lu;
        first_rep = rep;
        have_first = true;
        EXPECT_GE(rep.rebalances, 1u);
        continue;
      }
      EXPECT_TRUE(same_bits(first.view(), lu.view()));
      EXPECT_EQ(rep.rebalances, first_rep.rebalances);
      EXPECT_EQ(rep.rebalance_blocks, first_rep.rebalance_blocks);
      EXPECT_EQ(rep.makespan, first_rep.makespan);
    }
  }
}

// ------------------------------------------- migration x pack cache

// Restores the pack-cache consumption toggle no matter how a test exits.
struct PackCacheGuard {
  explicit PackCacheGuard(bool on) : prev_(gemm_set_pack_cache(on)) {}
  ~PackCacheGuard() { gemm_set_pack_cache(prev_); }

 private:
  bool prev_;
};

TEST(MigrationPackCache, EraseAndReputMakeOldPacksUnreachable) {
  // The migration protocol at the block-store level: the old owner erases
  // the migrated block, the new owner puts it. Both bump the write
  // version, so a pack tagged with the pre-migration version is never
  // asked for again — even when the re-put bytes are identical, the fresh
  // version forces a fresh pack instead of replaying the stale one.
  PackCacheGuard cache_guard(true);
  MetricsRegistry reg;
  install_metrics(&reg);
  {
    BlockStore store;
    const BlockKey key{3, 5};
    PackedPanelCache* cache = &store.pack_cache();
    Rng rng(229);
    Matrix a1(80, 80), b(80, 80);
    fill_random(a1.view(), rng);
    fill_random(b.view(), rng);
    EXPECT_EQ(store.version(key), 0u);
    store.put(key, a1);
    EXPECT_EQ(store.version(key), 1u);
    const BlockStore& cstore = store;
    const auto tag = [&] {
      return PackTag{BlockStore::pack_id(key), store.version(key), true};
    };
    Matrix c1(80, 80, 0.0), c2(80, 80, 0.0), c3(80, 80, 0.0);
    gemm_cached(Trans::No, Trans::No, 1.0, cstore.at(key), tag(), b.view(),
                PackTag{}, 0.0, c1.view(), cache);  // miss: packs a1
    gemm_cached(Trans::No, Trans::No, 1.0, cstore.at(key), tag(), b.view(),
                PackTag{}, 0.0, c2.view(), cache);  // hit
    EXPECT_TRUE(same_bits(c1.view(), c2.view()));
    store.erase(key);  // old owner's half of a migration
    EXPECT_EQ(store.version(key), 2u);
    store.put(key, a1);  // new owner's half (same bytes here)
    EXPECT_EQ(store.version(key), 3u);
    gemm_cached(Trans::No, Trans::No, 1.0, cstore.at(key), tag(), b.view(),
                PackTag{}, 0.0, c3.view(), cache);  // miss: fresh version
    EXPECT_TRUE(same_bits(c1.view(), c3.view()));
  }
  install_metrics(nullptr);
  EXPECT_EQ(reg.counter("gemm.pack_misses").value(), 2u);
  EXPECT_EQ(reg.counter("gemm.pack_hits").value(), 1u);
}

TEST(MigrationPackCache, RebalancedLuStaysCoherentCacheOnAndOff) {
  // End to end: an LU run that actually migrates mid-factorization, with
  // blocks big enough for the packed-microkernel path. The pack cache may
  // only skip redundant packing, so the factors must be bit-identical to
  // the static run with the cache on or off, and the hit/miss counts of
  // the rebalanced run must be pinned (identical across repeats).
  const Machine machine = uniform_machine(2, 2);
  const PanelDistribution dist = PanelDistribution::block_cyclic(2, 2);
  const std::size_t n = 560, block = 80;  // nb = 7
  Rng rng(233);
  Matrix a(n, n);
  fill_diagonally_dominant(a.view(), rng);

  Matrix stat = a;
  {
    PackCacheGuard cache_guard(true);
    run_mp_lu(machine, dist, stat.view(), block);
  }

  const RuntimeOptions opts = straggler_options(Rebalance::kPanel);
  std::vector<std::uint64_t> misses, hits;
  for (int repeat = 0; repeat < 2; ++repeat) {
    PackCacheGuard cache_guard(true);
    MetricsRegistry reg;
    install_metrics(&reg);
    Matrix lu = a;
    const MpReport rep =
        run_mp_lu(machine, dist, lu.view(), block, {}, false, nullptr, opts);
    install_metrics(nullptr);
    EXPECT_GE(rep.rebalances, 1u);
    EXPECT_TRUE(same_bits(stat.view(), lu.view()));
    misses.push_back(reg.counter("gemm.pack_misses").value());
    hits.push_back(reg.counter("gemm.pack_hits").value());
  }
  EXPECT_EQ(misses[0], misses[1]);
  EXPECT_EQ(hits[0], hits[1]);
  EXPECT_GT(misses[0], 0u);

  {
    PackCacheGuard cache_guard(false);
    Matrix lu = a;
    const MpReport rep =
        run_mp_lu(machine, dist, lu.view(), block, {}, false, nullptr, opts);
    EXPECT_GE(rep.rebalances, 1u);
    EXPECT_TRUE(same_bits(stat.view(), lu.view()));
  }
}

TEST(BlockStoreMigration, CopyBlockIntoMismatchedShapeThrows) {
  // A migration that lands on a wrong-shaped slot must fail loudly, not
  // read out of bounds.
  Matrix src(2, 3, 1.0), dst(2, 2, 0.0), ok(2, 3, 0.0);
  EXPECT_THROW(BlockStore::copy_block_into(dst.view(), src.view()),
               PreconditionError);
  BlockStore::copy_block_into(ok.view(), src.view());
  EXPECT_TRUE(same_bits(ok.view(), src.view()));
}

}  // namespace
}  // namespace hetgrid
