// Tests for the blocked triangular solves (matrix/trsm.cpp): every variant
// against its historical unblocked reference — bitwise for the three solves
// whose blocked form preserves the per-element floating-point sequence,
// tolerance for trsm_left_upper whose blocked form sums in a different
// (deterministic) order — plus the scalar-vs-AVX2 dispatch contract shared
// with the gemm microkernel.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "matrix/gemm.hpp"
#include "matrix/matrix.hpp"
#include "matrix/norms.hpp"
#include "matrix/trsm.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace hetgrid {
namespace {

bool same_bits(const ConstMatrixView& a, const ConstMatrixView& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t j = 0; j < a.cols(); ++j) {
    for (std::size_t i = 0; i < a.rows(); ++i) {
      const double x = a(i, j), y = b(i, j);
      if (std::memcmp(&x, &y, sizeof(double)) != 0) return false;
    }
  }
  return true;
}

// Random well-conditioned triangular factors. The off-diagonal magnitudes
// stay in [-1, 1] while the diagonal sits near 4, so solves of the sizes
// below neither overflow nor lose all their bits.
Matrix lower_triangular(std::size_t n, bool unit_diag, std::uint64_t seed) {
  Rng rng(seed);
  Matrix l(n, n, 0.0);
  fill_random(l.view(), rng);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < j; ++i) l(i, j) = 0.0;  // keep lower only
    l(j, j) = unit_diag ? 1.0 : 4.0 + l(j, j);
  }
  return l;
}

Matrix upper_triangular(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix u(n, n, 0.0);
  fill_random(u.view(), rng);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = j + 1; i < n; ++i) u(i, j) = 0.0;
    u(j, j) = 4.0 + u(j, j);
  }
  return u;
}

Matrix random_rhs(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Matrix b(rows, cols);
  fill_random(b.view(), rng);
  return b;
}

// Sizes straddling the 64-wide diagonal slice of the blocked solves: below,
// exactly one block, one-past, two blocks, two-plus-ragged-edge.
const std::size_t kSizes[] = {1, 5, 63, 64, 65, 128, 130};

// Right-hand-side width deliberately different from n (non-square B) and
// prime-ish so gemm tail shapes hit partial tiles.
std::size_t rhs_width(std::size_t n) { return n == 1 ? 3 : n - 1 + 7; }

struct KernelGuard {
  ~KernelGuard() { gemm_force_kernel("auto"); }
};

// ------------------------------------------------ blocked vs reference

TEST(Trsm, LeftLowerUnitBitIdenticalToReference) {
  for (std::size_t n : kSizes) {
    const Matrix l = lower_triangular(n, /*unit_diag=*/true, 100 + n);
    Matrix b = random_rhs(n, rhs_width(n), 200 + n);
    Matrix ref = b;
    trsm_left_lower_unit(l.view(), b.view());
    trsm_left_lower_unit_reference(l.view(), ref.view());
    EXPECT_TRUE(same_bits(b.view(), ref.view())) << "n=" << n;
  }
}

TEST(Trsm, LeftLowerUnitIgnoresDiagonalValues) {
  // The unit-diagonal solve must never read the stored diagonal: poisoning
  // it with zeros (which would throw or produce NaN if divided by) changes
  // nothing.
  const std::size_t n = 65;
  Matrix l = lower_triangular(n, /*unit_diag=*/true, 300);
  Matrix b = random_rhs(n, 9, 301);
  Matrix b_poisoned = b;
  Matrix l_poisoned = l;
  for (std::size_t j = 0; j < n; ++j) l_poisoned(j, j) = 0.0;
  trsm_left_lower_unit(l.view(), b.view());
  trsm_left_lower_unit(l_poisoned.view(), b_poisoned.view());
  EXPECT_TRUE(same_bits(b.view(), b_poisoned.view()));
}

TEST(Trsm, RightUpperBitIdenticalToReference) {
  for (std::size_t n : kSizes) {
    const Matrix u = upper_triangular(n, 400 + n);
    Matrix b = random_rhs(rhs_width(n), n, 500 + n);
    Matrix ref = b;
    trsm_right_upper(u.view(), b.view());
    trsm_right_upper_reference(u.view(), ref.view());
    EXPECT_TRUE(same_bits(b.view(), ref.view())) << "n=" << n;
  }
}

TEST(Trsm, RightLowerTransposedBitIdenticalToReference) {
  for (std::size_t n : kSizes) {
    const Matrix l = lower_triangular(n, /*unit_diag=*/false, 600 + n);
    Matrix b = random_rhs(rhs_width(n), n, 700 + n);
    Matrix ref = b;
    trsm_right_lower_transposed(l.view(), b.view());
    trsm_right_lower_transposed_reference(l.view(), ref.view());
    EXPECT_TRUE(same_bits(b.view(), ref.view())) << "n=" << n;
  }
}

TEST(Trsm, LeftUpperMatchesReferenceToRoundoff) {
  // The blocked back substitution sums in a different deterministic order
  // than the reference's ascending-p sweep, so this one compares with a
  // tolerance scaled by the solve depth.
  for (std::size_t n : kSizes) {
    const Matrix u = upper_triangular(n, 800 + n);
    Matrix b = random_rhs(n, rhs_width(n), 900 + n);
    Matrix ref = b;
    trsm_left_upper(u.view(), b.view());
    trsm_left_upper_reference(u.view(), ref.view());
    EXPECT_LT(max_abs_diff(b.view(), ref.view()), 1e-12 * double(n + 1))
        << "n=" << n;
  }
}

TEST(Trsm, LeftUpperResidualSmall) {
  // Independent correctness anchor for the one variant without a bitwise
  // reference tie: U * X must reproduce the original right-hand side.
  const std::size_t n = 130, w = 17;
  const Matrix u = upper_triangular(n, 1000);
  const Matrix b0 = random_rhs(n, w, 1001);
  Matrix x = b0;
  trsm_left_upper(u.view(), x.view());
  Matrix residual(n, w, 0.0);
  gemm_reference(Trans::No, Trans::No, 1.0, u.view(), x.view(), 0.0,
                 residual.view());
  EXPECT_LT(max_abs_diff(residual.view(), b0.view()), 1e-10);
}

// ------------------------------------------------ kernel dispatch

TEST(Trsm, KernelNameFollowsGemmDispatch) {
  KernelGuard guard;
  ASSERT_TRUE(gemm_force_kernel("scalar"));
  EXPECT_STREQ(trsm_kernel_name(), "scalar");
  if (gemm_force_kernel("avx2")) {
    EXPECT_STREQ(trsm_kernel_name(), "avx2");
  }
  gemm_force_kernel("auto");
  const std::string name = trsm_kernel_name();
  EXPECT_TRUE(name == "scalar" || name == "avx2") << name;
}

TEST(Trsm, AllVariantsBitIdenticalAcrossKernels) {
  // The dispatch contract: switching scalar <-> AVX2 (column primitives and
  // the gemm tails together) may never change a computed bit, for any
  // variant — including trsm_left_upper, whose order differs from the
  // *reference* but not across kernels.
  KernelGuard guard;
  if (!gemm_force_kernel("avx2")) GTEST_SKIP() << "host lacks AVX2";
  for (std::size_t n : {std::size_t{65}, std::size_t{130}}) {
    const Matrix l_unit = lower_triangular(n, true, 1100 + n);
    const Matrix l = lower_triangular(n, false, 1200 + n);
    const Matrix u = upper_triangular(n, 1300 + n);
    const std::size_t w = rhs_width(n);
    Matrix b1 = random_rhs(n, w, 1400 + n);
    Matrix b2 = random_rhs(n, w, 1500 + n);
    Matrix b3 = random_rhs(w, n, 1600 + n);
    Matrix b4 = random_rhs(w, n, 1700 + n);
    Matrix s1 = b1, s2 = b2, s3 = b3, s4 = b4;
    ASSERT_TRUE(gemm_force_kernel("avx2"));
    trsm_left_lower_unit(l_unit.view(), b1.view());
    trsm_left_upper(u.view(), b2.view());
    trsm_right_upper(u.view(), b3.view());
    trsm_right_lower_transposed(l.view(), b4.view());
    ASSERT_TRUE(gemm_force_kernel("scalar"));
    trsm_left_lower_unit(l_unit.view(), s1.view());
    trsm_left_upper(u.view(), s2.view());
    trsm_right_upper(u.view(), s3.view());
    trsm_right_lower_transposed(l.view(), s4.view());
    EXPECT_TRUE(same_bits(b1.view(), s1.view())) << "left_lower n=" << n;
    EXPECT_TRUE(same_bits(b2.view(), s2.view())) << "left_upper n=" << n;
    EXPECT_TRUE(same_bits(b3.view(), s3.view())) << "right_upper n=" << n;
    EXPECT_TRUE(same_bits(b4.view(), s4.view())) << "right_lower_t n=" << n;
  }
}

// ------------------------------------------------ preconditions

TEST(Trsm, SingularDiagonalThrows) {
  const std::size_t n = 70;  // > one block so the check covers later slices
  Matrix u = upper_triangular(n, 1800);
  u(67, 67) = 0.0;
  Matrix b = random_rhs(n, 5, 1801);
  EXPECT_THROW(trsm_left_upper(u.view(), b.view()), PreconditionError);
  Matrix br = random_rhs(5, n, 1802);
  EXPECT_THROW(trsm_right_upper(u.view(), br.view()), PreconditionError);
  Matrix l = lower_triangular(n, false, 1803);
  l(67, 67) = 0.0;
  EXPECT_THROW(trsm_right_lower_transposed(l.view(), br.view()),
               PreconditionError);
}

TEST(Trsm, ShapeMismatchThrows) {
  const Matrix l = lower_triangular(8, true, 1900);
  Matrix b = random_rhs(9, 4, 1901);  // 9 != 8 rows
  EXPECT_THROW(trsm_left_lower_unit(l.view(), b.view()), PreconditionError);
  Matrix br = random_rhs(4, 9, 1902);  // 9 != 8 cols
  EXPECT_THROW(trsm_right_upper(upper_triangular(8, 1903).view(), br.view()),
               PreconditionError);
}

}  // namespace
}  // namespace hetgrid
