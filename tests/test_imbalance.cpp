// Tests for the load-imbalance observatory (src/obs/cycle_estimator,
// src/obs/imbalance): EWMA cycle-time estimation and its exact recovery of
// planted t_ij from virtual-time charges, the drift detector's
// fires-exactly-once contract, panel-boundary snapshots, the imbalance
// report (lower bound, lanes, critical-path attribution through the dag
// scheduler's task records), the null-sink contract (observing a run
// changes no computed result), and byte-stable JSON across thread counts.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "dist/panel_distribution.hpp"
#include "matrix/cholesky.hpp"
#include "matrix/matrix.hpp"
#include "mp/mp_runtime.hpp"
#include "obs/cycle_estimator.hpp"
#include "obs/imbalance.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace hetgrid {
namespace {

// ----------------------------------------------------- estimator units

TEST(CycleEstimator, ConstantRateIsRecoveredExactly) {
  CycleTimeEstimator est;
  // Virtual-time charges: seconds = t_ij * units, so every sample's rate
  // is exactly the planted cycle-time and the EWMA of a constant is that
  // constant — bit for bit.
  for (std::size_t k = 0; k < 5; ++k)
    est.sample(2, ObsOp::kUpdate, 3.0 + static_cast<double>(k),
               0.25 * (3.0 + static_cast<double>(k)), k);
  const std::vector<CycleEstimate> rows = est.estimates();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].proc, 2u);
  EXPECT_EQ(rows[0].op, ObsOp::kUpdate);
  EXPECT_EQ(rows[0].seconds_per_unit, 0.25);
  EXPECT_EQ(rows[0].samples, 5u);
  EXPECT_EQ(rows[0].units, 3.0 + 4.0 + 5.0 + 6.0 + 7.0);
}

TEST(CycleEstimator, EwmaWeightsNewestSampleByAlpha) {
  CycleTimeEstimator::Options opt;
  opt.alpha = 0.25;
  CycleTimeEstimator est(opt);
  est.sample(0, ObsOp::kPanel, 1.0, 1.0, 0);  // first sample seeds the EWMA
  est.sample(0, ObsOp::kPanel, 1.0, 2.0, 1);
  EXPECT_EQ(est.estimates()[0].seconds_per_unit, 0.25 * 2.0 + 0.75 * 1.0);
}

TEST(CycleEstimator, NonPositiveSamplesAreIgnored) {
  CycleTimeEstimator est;
  est.sample(0, ObsOp::kUpdate, 0.0, 1.0, 0);
  est.sample(0, ObsOp::kUpdate, 1.0, 0.0, 0);
  est.sample(0, ObsOp::kUpdate, -1.0, 1.0, 0);
  EXPECT_TRUE(est.estimates().empty());
  EXPECT_EQ(est.total_samples(), 0u);
}

TEST(CycleEstimator, LanesAreKeyedByProcessorAndOpClass) {
  CycleTimeEstimator est;
  est.sample(1, ObsOp::kPanel, 1.0, 2.0, 0);
  est.sample(1, ObsOp::kUpdate, 1.0, 3.0, 0);
  est.sample(0, ObsOp::kUpdate, 1.0, 1.0, 0);
  const std::vector<CycleEstimate> rows = est.estimates();
  ASSERT_EQ(rows.size(), 3u);
  // Deterministic (proc, op) ascending order.
  EXPECT_EQ(rows[0].proc, 0u);
  EXPECT_EQ(rows[1].proc, 1u);
  EXPECT_EQ(rows[1].op, ObsOp::kPanel);
  EXPECT_EQ(rows[2].op, ObsOp::kUpdate);
  EXPECT_EQ(rows[2].seconds_per_unit, 3.0);
}

TEST(CycleEstimator, DriftFiresExactlyOnceForAPlantedTwoXSlowdown) {
  // A lane running at rate 1.0 arms its baseline, then the processor
  // slows to 2x. The EWMA walks toward 2.0, crosses the 50% band exactly
  // once, re-arms at the crossing value, and converges inside the
  // re-armed band — one typed event, deterministic, no wall clock.
  CycleTimeEstimator est;  // alpha 0.25, band 0.5, min_samples 2
  for (std::size_t k = 0; k < 4; ++k) est.sample(0, ObsOp::kUpdate, 1.0, 1.0, k);
  ASSERT_TRUE(est.drift_events().empty());
  for (std::size_t k = 4; k < 40; ++k) est.sample(0, ObsOp::kUpdate, 1.0, 2.0, k);
  const std::vector<DriftEvent> events = est.drift_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].proc, 0u);
  EXPECT_EQ(events[0].op, ObsOp::kUpdate);
  EXPECT_EQ(events[0].before, 1.0);       // the armed baseline
  EXPECT_GT(events[0].after, 1.5);        // the EWMA at the crossing
  EXPECT_GE(events[0].step, 4u);          // fired after the slowdown began
  // The estimate itself converged to the new rate.
  EXPECT_NEAR(est.estimates()[0].seconds_per_unit, 2.0, 1e-3);
}

TEST(CycleEstimator, SecondShiftPastTheReArmedBandFiresASecondEvent) {
  // After the 2x slowdown the lane re-armed near 1.58 (the EWMA at the
  // crossing), so its band is roughly [0.79, 2.37]: a recovery to 1.0
  // stays inside it (no event), but a later speed-up to 0.7 s/unit exits
  // below and fires exactly one more.
  CycleTimeEstimator est;
  for (std::size_t k = 0; k < 4; ++k) est.sample(0, ObsOp::kUpdate, 1.0, 1.0, k);
  for (std::size_t k = 4; k < 40; ++k) est.sample(0, ObsOp::kUpdate, 1.0, 2.0, k);
  ASSERT_EQ(est.drift_events().size(), 1u);
  for (std::size_t k = 40; k < 60; ++k) est.sample(0, ObsOp::kUpdate, 1.0, 1.0, k);
  EXPECT_EQ(est.drift_events().size(), 1u);  // inside the re-armed band
  for (std::size_t k = 60; k < 100; ++k)
    est.sample(0, ObsOp::kUpdate, 1.0, 0.7, k);
  const std::vector<DriftEvent> events = est.drift_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_LT(events[1].after, events[1].before);  // a speed-up, not a slowdown
}

TEST(CycleEstimator, SnapshotRingIsCapped) {
  CycleTimeEstimator::Options opt;
  opt.max_snapshots = 3;
  CycleTimeEstimator est(opt);
  est.sample(0, ObsOp::kUpdate, 1.0, 1.0, 0);
  for (std::size_t k = 0; k < 10; ++k) est.panel_boundary(k);
  const std::vector<EstimatorSnapshot> snaps = est.snapshots();
  ASSERT_EQ(snaps.size(), 3u);
  EXPECT_EQ(snaps.front().step, 7u);  // oldest dropped
  EXPECT_EQ(snaps.back().step, 9u);
  ASSERT_EQ(snaps.back().estimates.size(), 1u);
  EXPECT_EQ(snaps.back().estimates[0].seconds_per_unit, 1.0);
}

TEST(Observation, InstallReturnsPrevious) {
  RunObservation a, b;
  RunObservation* prev = install_observation(&a);
  EXPECT_EQ(installed_observation(), &a);
  EXPECT_EQ(install_observation(&b), &a);
  EXPECT_EQ(install_observation(prev), &b);
}

// ----------------------------------------------------- simulator recovery

Machine planted_machine(std::size_t p, std::size_t q,
                        std::vector<double> pool) {
  return Machine{CycleTimeGrid(p, q, std::move(pool)),
                 NetworkModel{Topology::kSwitched, 1.0e-4, 2.0e-4, true}};
}

// The acceptance case: on a simulator run over planted heterogeneous
// cycle-times, the virtual charges are seconds = t_ij * units, so the
// estimator must recover every per-(processor, op-class) t_ij exactly —
// and already in the first panel-boundary snapshot (one panel sweep).
TEST(SimObservation, EstimatorRecoversPlantedRatesAfterOnePanelSweep) {
  const std::size_t p = 2, q = 2, nb = 6;
  const Machine machine = planted_machine(p, q, {1.0, 1.5, 2.0, 3.0});
  const PanelDistribution dist = PanelDistribution::block_cyclic(p, q);
  const KernelCosts costs;

  RunObservation obs;
  RunObservation* prev = install_observation(&obs);
  const SimReport rep = simulate_lu(machine, dist, nb, costs, nullptr);
  install_observation(prev);
  ASSERT_GT(rep.total_time, 0.0);

  const ImbalanceReport report = build_imbalance_report(
      obs, rep.busy, std::vector<double>(p * q, rep.total_time),
      &machine.grid, q);
  ASSERT_FALSE(report.estimates.empty());
  for (const EstimateRow& e : report.estimates) {
    ASSERT_TRUE(e.has_true);
    EXPECT_EQ(e.estimate, e.true_t) << "proc " << e.proc;  // exact, not just 5%
    EXPECT_EQ(e.rel_err, 0.0);
  }
  // Every processor contributed at least one lane (block-cyclic: all own
  // panel rows and trailing blocks at some step).
  std::vector<bool> seen(p * q, false);
  for (const EstimateRow& e : report.estimates) seen[e.proc] = true;
  for (std::size_t id = 0; id < p * q; ++id) EXPECT_TRUE(seen[id]);

  // One panel sweep was enough: the first snapshot's lanes are already on
  // the planted values.
  const std::vector<EstimatorSnapshot> snaps = obs.estimator.snapshots();
  ASSERT_FALSE(snaps.empty());
  EXPECT_EQ(snaps.front().step, 0u);
  ASSERT_FALSE(snaps.front().estimates.empty());
  for (const CycleEstimate& e : snaps.front().estimates) {
    const double truth = machine.grid(e.proc / q, e.proc % q);
    EXPECT_EQ(e.seconds_per_unit, truth);
  }

  // With exact rates the paper's bound is a true lower bound.
  EXPECT_GT(report.lower_bound, 0.0);
  EXPECT_LE(report.lower_bound, report.makespan * (1.0 + 1e-12));
}

TEST(SimObservation, MidRunSlowdownFiresDriftOncePerAffectedLane) {
  // A planted mid-run 2x slowdown: the same observation spans two MMM
  // sweeps, the second on a grid whose processor 3 runs 2x slower. Only
  // that processor's update lane drifts, exactly once.
  const std::size_t p = 2, q = 2, nb = 8;
  const PanelDistribution dist = PanelDistribution::block_cyclic(p, q);
  const KernelCosts costs;
  const Machine before = planted_machine(p, q, {1.0, 1.0, 1.0, 1.0});
  const Machine after = planted_machine(p, q, {1.0, 1.0, 1.0, 2.0});

  RunObservation obs;
  RunObservation* prev = install_observation(&obs);
  simulate_mmm(before, dist, nb, costs, nullptr);
  simulate_mmm(after, dist, nb, costs, nullptr);
  install_observation(prev);

  const std::vector<DriftEvent> events = obs.estimator.drift_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].proc, 3u);
  EXPECT_EQ(events[0].op, ObsOp::kUpdate);
  EXPECT_EQ(events[0].before, 1.0);
  EXPECT_GT(events[0].after, 1.5);
}

// ----------------------------------------------------- report assembly

TEST(ImbalanceReport, LowerBoundIsThePerfectlyBalancedMakespan) {
  // Two processors at rates 1 and 2 s/unit with 10 units each: aggregate
  // speed 1 + 1/2 = 1.5 units/s, 20 units total -> bound 40/3.
  RunObservation obs;
  for (std::size_t k = 0; k < 2; ++k) {
    obs.estimator.sample(0, ObsOp::kUpdate, 5.0, 5.0, k);
    obs.estimator.sample(1, ObsOp::kUpdate, 5.0, 10.0, k);
  }
  const ImbalanceReport rep =
      build_imbalance_report(obs, {10.0, 20.0}, {10.0, 20.0});
  EXPECT_DOUBLE_EQ(rep.lower_bound, 20.0 / 1.5);
  EXPECT_DOUBLE_EQ(rep.makespan, 20.0);
  ASSERT_EQ(rep.lanes.size(), 2u);
  EXPECT_DOUBLE_EQ(rep.lanes[0].idle, 10.0);
  EXPECT_DOUBLE_EQ(rep.lanes[0].slack, 10.0);
  EXPECT_DOUBLE_EQ(rep.lanes[1].idle, 0.0);
  EXPECT_DOUBLE_EQ(rep.lanes[1].slack, 0.0);
  // No task records -> no critical path, and the report says so.
  EXPECT_EQ(rep.critical_path_tasks, 0u);
  EXPECT_TRUE(rep.critical.empty());
}

// ----------------------------------------------------- mp dag attribution

bool same_bits(const ConstMatrixView& a, const ConstMatrixView& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i) {
      const double x = a(i, j), y = b(i, j);
      if (std::memcmp(&x, &y, sizeof(double)) != 0) return false;
    }
  return true;
}

struct MpRun {
  MpReport rep;
  Matrix out;
  std::vector<TraceEvent> events;
};

MpRun run_kernel(const std::string& kernel, const Machine& machine,
                 const Distribution2D& dist, std::size_t nb, std::size_t block,
                 const RuntimeOptions& opts) {
  const std::size_t n = nb * block;
  const KernelCosts costs;
  Rng rng(11);
  MpRun run;
  MemoryTraceSink sink;
  if (kernel == "mmm") {
    Matrix a(n, n), b(n, n);
    fill_random(a.view(), rng);
    fill_random(b.view(), rng);
    run.out = Matrix(n, n);
    run.rep = run_mp_mmm(machine, dist, a.view(), b.view(), run.out.view(),
                         block, costs, &sink, opts);
  } else if (kernel == "lu") {
    run.out = Matrix(n, n);
    fill_diagonally_dominant(run.out.view(), rng);
    run.rep =
        run_mp_lu(machine, dist, run.out.view(), block, costs, false, &sink,
                  opts);
  } else if (kernel == "chol") {
    run.out = Matrix(n, n);
    fill_spd(run.out.view(), rng);
    run.rep = run_mp_cholesky(machine, dist, run.out.view(), block, costs,
                              &sink, opts);
  } else {
    run.out = Matrix(n, n);
    fill_random(run.out.view(), rng);
    run.rep =
        run_mp_qr(machine, dist, run.out.view(), block, costs, &sink, opts);
  }
  run.events = sink.events();
  return run;
}

void expect_same_run(const MpRun& a, const MpRun& b) {
  EXPECT_EQ(a.rep.makespan, b.rep.makespan);
  EXPECT_EQ(a.rep.clock, b.rep.clock);
  EXPECT_EQ(a.rep.busy, b.rep.busy);
  EXPECT_EQ(a.rep.messages, b.rep.messages);
  EXPECT_EQ(a.rep.blocks_moved, b.rep.blocks_moved);
  EXPECT_TRUE(same_bits(a.out.view(), b.out.view()));
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind) << "event " << i;
    EXPECT_EQ(a.events[i].proc, b.events[i].proc) << "event " << i;
    EXPECT_EQ(a.events[i].start, b.events[i].start) << "event " << i;
    EXPECT_EQ(a.events[i].duration, b.events[i].duration) << "event " << i;
  }
}

// Observation is a pure tap: for every kernel under the dag scheduler the
// observed run is bit-identical to the plain one (report, matrices, trace
// stream), the estimator recovers the planted t_ij exactly, and the
// critical path is attributed to (processor, op) segments.
TEST(MpObservation, AllKernelsBitIdenticalWithCriticalPathAttribution) {
  const std::size_t p = 2, q = 2, nb = 4, block = 4;
  const Machine machine = planted_machine(p, q, {1.0, 1.0, 1.0, 2.0});
  const PanelDistribution dist = PanelDistribution::block_cyclic(p, q);
  RuntimeOptions opts;
  opts.threads = 2;
  opts.scheduler = RuntimeOptions::Scheduler::kDag;

  for (const char* kernel : {"mmm", "lu", "chol", "qr"}) {
    SCOPED_TRACE(kernel);
    const MpRun plain = run_kernel(kernel, machine, dist, nb, block, opts);
    RunObservation obs;
    RunObservation* prev = install_observation(&obs);
    const MpRun watched = run_kernel(kernel, machine, dist, nb, block, opts);
    install_observation(prev);

    expect_same_run(watched, plain);

    const ImbalanceReport report = build_imbalance_report(
        obs, watched.rep.busy, watched.rep.clock, &machine.grid, q);
    ASSERT_FALSE(report.estimates.empty());
    for (const EstimateRow& e : report.estimates) {
      ASSERT_TRUE(e.has_true);
      EXPECT_LE(e.rel_err, 0.05);
    }
    EXPECT_GT(report.critical_path_tasks, 0u);
    EXPECT_GT(report.critical_path_cost, 0.0);
    ASSERT_FALSE(report.critical.empty());
    // Segments are weight-descending and cover the whole chain.
    std::size_t chain_tasks = 0;
    for (std::size_t i = 0; i < report.critical.size(); ++i) {
      chain_tasks += report.critical[i].tasks;
      if (i > 0) {
        EXPECT_GE(report.critical[i - 1].weight, report.critical[i].weight);
      }
    }
    EXPECT_EQ(chain_tasks, report.critical_path_tasks);
    // The critical chain can never cost more than the achieved makespan
    // (weights are the same virtual seconds the clocks accumulated).
    EXPECT_LE(report.critical_path_cost,
              report.makespan * (1.0 + 1e-12));
  }
}

TEST(MpObservation, BarrierSchedulerStillEstimatesWithoutTaskRecords) {
  const std::size_t p = 2, q = 2, nb = 4, block = 4;
  const Machine machine = planted_machine(p, q, {1.0, 1.0, 1.0, 2.0});
  const PanelDistribution dist = PanelDistribution::block_cyclic(p, q);
  RuntimeOptions opts;  // barrier scheduler, serial

  RunObservation obs;
  RunObservation* prev = install_observation(&obs);
  const MpRun run = run_kernel("lu", machine, dist, nb, block, opts);
  install_observation(prev);

  const ImbalanceReport report = build_imbalance_report(
      obs, run.rep.busy, run.rep.clock, &machine.grid, q);
  EXPECT_FALSE(report.estimates.empty());
  EXPECT_EQ(report.critical_path_tasks, 0u);  // no dag -> no chain records
}

TEST(MpObservation, JsonReportIsByteStableAcrossThreadCounts) {
  const std::size_t p = 2, q = 2, nb = 4, block = 4;
  const Machine machine = planted_machine(p, q, {1.0, 1.5, 2.0, 3.0});
  const PanelDistribution dist = PanelDistribution::block_cyclic(p, q);

  for (const char* kernel : {"lu", "qr"}) {
    SCOPED_TRACE(kernel);
    std::string first;
    for (const unsigned threads : {1u, 2u, 7u}) {
      RuntimeOptions opts;
      opts.threads = threads;
      opts.scheduler = RuntimeOptions::Scheduler::kDag;
      RunObservation obs;
      RunObservation* prev = install_observation(&obs);
      const MpRun run = run_kernel(kernel, machine, dist, nb, block, opts);
      install_observation(prev);
      std::ostringstream os;
      write_imbalance_json(os, build_imbalance_report(
                                   obs, run.rep.busy, run.rep.clock,
                                   &machine.grid, q));
      if (first.empty())
        first = os.str();
      else
        EXPECT_EQ(os.str(), first) << "threads " << threads;
    }
    EXPECT_NE(first.find("\"critical_path\""), std::string::npos);
    EXPECT_NE(first.find("\"estimates\""), std::string::npos);
  }
}

}  // namespace
}  // namespace hetgrid
