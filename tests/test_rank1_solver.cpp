// Tests for the rank-1 closed-form solver (paper Section 4.3.2).
#include <gtest/gtest.h>

#include "core/rank1_solver.hpp"
#include "util/rng.hpp"

namespace hetgrid {
namespace {

TEST(Rank1Solver, PaperFigure1GridIsPerfectlyBalanced) {
  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  const auto alloc = solve_rank1(g);
  ASSERT_TRUE(alloc.has_value());
  // Every processor fully busy.
  for (double b : workload_matrix(g, *alloc)) EXPECT_NEAR(b, 1.0, 1e-12);
  EXPECT_NEAR(obj2_value(*alloc), obj2_upper_bound(g), 1e-12);
}

TEST(Rank1Solver, RefusesNonRank1Grid) {
  EXPECT_FALSE(solve_rank1(CycleTimeGrid(2, 2, {1, 2, 3, 5})).has_value());
}

TEST(Rank1Solver, RandomOuterProductGridsArePerfect) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t p = 1 + rng.below(4), q = 1 + rng.below(4);
    std::vector<double> row(p), col(q), t(p * q);
    for (auto& v : row) v = rng.uniform(0.5, 2.0);
    for (auto& v : col) v = rng.uniform(0.5, 2.0);
    for (std::size_t i = 0; i < p; ++i)
      for (std::size_t j = 0; j < q; ++j) t[i * q + j] = row[i] * col[j];
    const CycleTimeGrid g(p, q, t);
    const auto alloc = solve_rank1(g);
    ASSERT_TRUE(alloc.has_value()) << "trial " << trial;
    for (double b : workload_matrix(g, *alloc))
      EXPECT_NEAR(b, 1.0, 1e-9) << "trial " << trial;
  }
}

TEST(Rank1Solver, SingleRowAlwaysRank1) {
  const CycleTimeGrid g(1, 4, {1, 2, 3, 4});
  const auto alloc = solve_rank1(g);
  ASSERT_TRUE(alloc.has_value());
  EXPECT_NEAR(obj2_value(*alloc), obj2_upper_bound(g), 1e-12);
}

TEST(Rank1Projection, FeasibleAndTightOnAnyGrid) {
  Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t p = 1 + rng.below(4), q = 1 + rng.below(4);
    const CycleTimeGrid g(p, q, rng.cycle_times(p * q));
    const GridAllocation a = rank1_projection(g);
    EXPECT_TRUE(is_feasible(g, a)) << "trial " << trial;
    EXPECT_TRUE(is_tight(g, a)) << "trial " << trial;
  }
}

TEST(Rank1Projection, MatchesSolverOnRank1Grids) {
  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  const GridAllocation a = rank1_projection(g);
  for (double b : workload_matrix(g, a)) EXPECT_NEAR(b, 1.0, 1e-12);
}

}  // namespace
}  // namespace hetgrid
