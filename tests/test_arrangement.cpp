// Tests for arrangement enumeration and the Theorem 1 reduction.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/arrangement.hpp"
#include "core/heuristic.hpp"
#include "util/rng.hpp"

namespace hetgrid {
namespace {

std::uint64_t count_nondecreasing(std::size_t p, std::size_t q,
                                  std::vector<double> pool) {
  return enumerate_nondecreasing_arrangements(
      p, q, std::move(pool), [](const CycleTimeGrid&) { return true; });
}

std::uint64_t count_all(std::size_t p, std::size_t q,
                        std::vector<double> pool) {
  return enumerate_all_arrangements(p, q, std::move(pool),
                                    [](const CycleTimeGrid&) { return true; });
}

// ----------------------------------------------------- counting

TEST(ArrangementEnum, NonDecreasingCountsMatchYoungTableaux) {
  // Distinct values: the number of non-decreasing fillings of a p x q
  // rectangle is the number of standard Young tableaux of that shape
  // (hook length formula): 2x2 -> 2, 2x3 -> 5, 3x3 -> 42, 2x4 -> 14.
  EXPECT_EQ(count_nondecreasing(2, 2, {1, 2, 3, 4}), 2u);
  EXPECT_EQ(count_nondecreasing(2, 3, {1, 2, 3, 4, 5, 6}), 5u);
  EXPECT_EQ(count_nondecreasing(3, 3, {1, 2, 3, 4, 5, 6, 7, 8, 9}), 42u);
  EXPECT_EQ(count_nondecreasing(2, 4, {1, 2, 3, 4, 5, 6, 7, 8}), 14u);
}

TEST(ArrangementEnum, AllCountsAreFactorialForDistinctValues) {
  EXPECT_EQ(count_all(2, 2, {1, 2, 3, 4}), 24u);
  EXPECT_EQ(count_all(2, 3, {1, 2, 3, 4, 5, 6}), 720u);
}

TEST(ArrangementEnum, RepeatedValuesDeduplicate) {
  // Pool {1,1,2,2}: distinct value grids = 4!/(2!2!) = 6; non-decreasing
  // fillings: {1,1;2,2} and {1,2;1,2} only.
  EXPECT_EQ(count_all(2, 2, {1, 1, 2, 2}), 6u);
  EXPECT_EQ(count_nondecreasing(2, 2, {1, 1, 2, 2}), 2u);
}

TEST(ArrangementEnum, AllEqualValuesGiveSingleArrangement) {
  EXPECT_EQ(count_all(2, 3, std::vector<double>(6, 1.0)), 1u);
  EXPECT_EQ(count_nondecreasing(2, 3, std::vector<double>(6, 1.0)), 1u);
}

TEST(ArrangementEnum, OneDimensionalGridHasOneNonDecreasingOrder) {
  EXPECT_EQ(count_nondecreasing(1, 4, {4, 3, 2, 1}), 1u);
  EXPECT_EQ(count_all(1, 3, {1, 2, 3}), 6u);
}

TEST(ArrangementEnum, VisitedGridsAreValidAndNonDecreasing) {
  enumerate_nondecreasing_arrangements(
      2, 3, {6, 5, 4, 3, 2, 1}, [](const CycleTimeGrid& g) {
        EXPECT_TRUE(g.is_non_decreasing());
        std::vector<double> vals = g.row_major();
        std::sort(vals.begin(), vals.end());
        EXPECT_EQ(vals, (std::vector<double>{1, 2, 3, 4, 5, 6}));
        return true;
      });
}

TEST(ArrangementEnum, EarlyStopHonored) {
  std::uint64_t calls = 0;
  enumerate_all_arrangements(2, 2, {1, 2, 3, 4},
                             [&](const CycleTimeGrid&) {
                               return ++calls < 3;
                             });
  EXPECT_EQ(calls, 3u);
}

TEST(ArrangementEnum, PoolSizeMismatchThrows) {
  EXPECT_THROW(count_nondecreasing(2, 2, {1, 2, 3}), PreconditionError);
}

// ----------------------------------------------------- Theorem 1

TEST(Theorem1, NonDecreasingSearchIsGloballyOptimal2x2) {
  Rng rng(11);
  for (int trial = 0; trial < 25; ++trial) {
    const std::vector<double> pool = rng.cycle_times(4, 0.05);
    double best_all = 0.0, best_nd = 0.0;
    enumerate_all_arrangements(2, 2, pool, [&](const CycleTimeGrid& g) {
      best_all = std::max(best_all, solve_exact(g).obj2);
      return true;
    });
    enumerate_nondecreasing_arrangements(
        2, 2, pool, [&](const CycleTimeGrid& g) {
          best_nd = std::max(best_nd, solve_exact(g).obj2);
          return true;
        });
    EXPECT_NEAR(best_all, best_nd, 1e-9 * best_all) << "trial " << trial;
  }
}

TEST(Theorem1, NonDecreasingSearchIsGloballyOptimal2x3) {
  Rng rng(12);
  for (int trial = 0; trial < 5; ++trial) {
    const std::vector<double> pool = rng.cycle_times(6, 0.05);
    double best_all = 0.0, best_nd = 0.0;
    enumerate_all_arrangements(2, 3, pool, [&](const CycleTimeGrid& g) {
      best_all = std::max(best_all, solve_exact(g).obj2);
      return true;
    });
    enumerate_nondecreasing_arrangements(
        2, 3, pool, [&](const CycleTimeGrid& g) {
          best_nd = std::max(best_nd, solve_exact(g).obj2);
          return true;
        });
    EXPECT_NEAR(best_all, best_nd, 1e-9 * best_all) << "trial " << trial;
  }
}

// ----------------------------------------------------- optimal search

TEST(OptimalArrangement, BeatsOrMatchesHeuristic) {
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    const std::vector<double> pool = rng.cycle_times(6, 0.05);
    const OptimalArrangement opt = solve_optimal_arrangement(2, 3, pool);
    const HeuristicResult h = solve_heuristic(2, 3, pool);
    EXPECT_GE(opt.solution.obj2, h.final().obj2 - 1e-9) << "trial " << trial;
    EXPECT_TRUE(opt.grid.is_non_decreasing());
    EXPECT_EQ(opt.arrangements_tried, 5u);
  }
}

TEST(OptimalArrangement, Rank1PoolReachesCapacity) {
  // {1,2} x {1,3} outer-product pool arranged optimally is perfect.
  const OptimalArrangement opt = solve_optimal_arrangement(2, 2, {1, 2, 3, 6});
  EXPECT_NEAR(opt.solution.obj2, 2.0, 1e-12);
}

TEST(OptimalArrangement, PaperExampleUpperBoundsHeuristic) {
  const OptimalArrangement opt =
      solve_optimal_arrangement(3, 3, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  // The heuristic converges to 2.5889; the exhaustive optimum over
  // non-decreasing arrangements can only be >=.
  EXPECT_GE(opt.solution.obj2, 2.5889 - 1.5e-4);
  EXPECT_EQ(opt.arrangements_tried, 42u);
}

}  // namespace
}  // namespace hetgrid
