// Tests for the fixed-size worker pool behind the parallel exact solver.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace hetgrid {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i)
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 50; ++i)
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), (round + 1) * 50);
  }
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i)
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    // No wait_idle: the destructor must finish the queue before joining.
  }
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ResolveThreadsZeroMeansHardware) {
  const unsigned n = ThreadPool::resolve_threads(0);
  EXPECT_GE(n, 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(7), 7u);
}

TEST(ThreadPool, TasksRunOnWorkerThreads) {
  ThreadPool pool(2);
  const std::thread::id main_id = std::this_thread::get_id();
  std::mutex mu;
  std::set<std::thread::id> ids;
  for (int i = 0; i < 100; ++i)
    pool.submit([&] {
      std::lock_guard<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
    });
  pool.wait_idle();
  EXPECT_FALSE(ids.contains(main_id));
  EXPECT_GE(ids.size(), 1u);
  EXPECT_LE(ids.size(), 2u);
}

TEST(ThreadPool, WaitIdleWithEmptyQueueReturnsImmediately) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolDeathTest, TaskThatThrowsTerminatesWithANamedMessage) {
  // The pool's contract is that tasks are noexcept; a task that throws
  // must terminate the process with a diagnostic naming the pool, not
  // die in std::thread's anonymous std::terminate.
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadPool pool(1);
        pool.submit([] { throw std::runtime_error("task boom"); });
        pool.wait_idle();
      },
      "ThreadPool task threw");
}

TEST(ThreadPool, SubmitBatchRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks;
  tasks.reserve(500);
  for (int i = 0; i < 500; ++i)
    tasks.emplace_back(
        [&count] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.submit_batch(std::move(tasks));
  pool.wait_idle();
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, SubmitBatchEmptyIsANoOp) {
  ThreadPool pool(2);
  pool.submit_batch({});
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, SubmitBatchInterleavesWithSubmit) {
  // Batches larger than the worker count, alternated with single submits,
  // must neither drop nor duplicate tasks (exercises the counted wakeup).
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 20; ++round) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 10; ++i)
      tasks.emplace_back(
          [&count] { count.fetch_add(1, std::memory_order_relaxed); });
    pool.submit_batch(std::move(tasks));
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 20 * 11);
}

TEST(ThreadPool, RecordsWaitLatencyHistogram) {
  // The task-wait-latency histogram (queue entry to execution start) must
  // record one sample per task, whether submitted singly or batched — the
  // regression guard for the wakeup-path changes.
  MetricsRegistry metrics;
  install_metrics(&metrics);
  {
    ThreadPool pool(2);
    for (int i = 0; i < 8; ++i) pool.submit([] {});
    std::vector<std::function<void()>> tasks(8, [] {});
    pool.submit_batch(std::move(tasks));
    pool.wait_idle();
  }
  install_metrics(nullptr);
  EXPECT_EQ(metrics.counter("pool.tasks_submitted").value(), 16u);
  EXPECT_EQ(metrics.histogram("pool.task_wait_us").count(), 16u);
  EXPECT_EQ(metrics.histogram("pool.task_run_us").count(), 16u);
}

TEST(ThreadPool, WorkerLocalSubmitRunsNewestFirst) {
  // A task submitted from a pool worker lands on that worker's own deque
  // and is popped LIFO. With a single worker there is nobody to steal, so
  // three subtasks enqueued by a running task must execute newest-first —
  // the locality property the work-stealing design trades FIFO order for.
  ThreadPool pool(1);
  std::mutex mu;
  std::vector<int> order;
  pool.submit([&] {
    for (int i = 0; i < 3; ++i)
      pool.submit([&, i] {
        std::lock_guard<std::mutex> lock(mu);
        order.push_back(i);
      });
  });
  pool.wait_idle();
  EXPECT_EQ(order, (std::vector<int>{2, 1, 0}));
}

TEST(ThreadPool, IdleWorkerStealsFromBusySibling) {
  // Force a steal deterministically: a task running on one worker submits
  // a subtask (which lands on its own deque) and then refuses to finish
  // until the subtask has started — which only the other worker can make
  // happen, by stealing it. The steal must land on a different thread and
  // be recorded in the pool.steals counter.
  MetricsRegistry metrics;
  install_metrics(&metrics);
  {
    ThreadPool pool(2);
    std::atomic<bool> stolen_started{false};
    std::thread::id owner_id, thief_id;
    pool.submit([&] {
      owner_id = std::this_thread::get_id();
      pool.submit([&] {
        thief_id = std::this_thread::get_id();
        stolen_started.store(true);
      });
      while (!stolen_started.load()) std::this_thread::yield();
    });
    pool.wait_idle();
    EXPECT_NE(owner_id, thief_id);
  }
  install_metrics(nullptr);
  EXPECT_GE(metrics.counter("pool.steals").value(), 1u);
}

TEST(ThreadPool, UnevenBatchRebalancesAcrossWorkers) {
  // One long task and many short ones submitted as a single batch: the
  // round-robin spread plus stealing must let the short tasks finish on
  // the unblocked worker instead of serializing behind the long one.
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  std::atomic<int> short_done{0};
  std::vector<std::function<void()>> tasks;
  tasks.emplace_back([&release] {
    while (!release.load()) std::this_thread::yield();
  });
  for (int i = 0; i < 64; ++i)
    tasks.emplace_back([&short_done] { short_done.fetch_add(1); });
  pool.submit_batch(std::move(tasks));
  // All short tasks complete while the long task still spins.
  while (short_done.load() < 64) std::this_thread::yield();
  release.store(true);
  pool.wait_idle();
  EXPECT_EQ(short_done.load(), 64);
}

TEST(ThreadPool, ManyProducersOneSink) {
  // Hammer submit() from several threads at once; every task must run
  // exactly once. (This is the pattern TSan watches in CI.)
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::thread> producers;
  producers.reserve(4);
  for (int t = 0; t < 4; ++t)
    producers.emplace_back([&pool, &count] {
      for (int i = 0; i < 250; ++i)
        pool.submit(
            [&count] { count.fetch_add(1, std::memory_order_relaxed); });
    });
  for (std::thread& t : producers) t.join();
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

}  // namespace
}  // namespace hetgrid
