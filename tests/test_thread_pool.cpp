// Tests for the fixed-size worker pool behind the parallel exact solver.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace hetgrid {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i)
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 50; ++i)
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), (round + 1) * 50);
  }
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i)
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    // No wait_idle: the destructor must finish the queue before joining.
  }
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ResolveThreadsZeroMeansHardware) {
  const unsigned n = ThreadPool::resolve_threads(0);
  EXPECT_GE(n, 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(7), 7u);
}

TEST(ThreadPool, TasksRunOnWorkerThreads) {
  ThreadPool pool(2);
  const std::thread::id main_id = std::this_thread::get_id();
  std::mutex mu;
  std::set<std::thread::id> ids;
  for (int i = 0; i < 100; ++i)
    pool.submit([&] {
      std::lock_guard<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
    });
  pool.wait_idle();
  EXPECT_FALSE(ids.contains(main_id));
  EXPECT_GE(ids.size(), 1u);
  EXPECT_LE(ids.size(), 2u);
}

TEST(ThreadPool, WaitIdleWithEmptyQueueReturnsImmediately) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolDeathTest, TaskThatThrowsTerminatesWithANamedMessage) {
  // The pool's contract is that tasks are noexcept; a task that throws
  // must terminate the process with a diagnostic naming the pool, not
  // die in std::thread's anonymous std::terminate.
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadPool pool(1);
        pool.submit([] { throw std::runtime_error("task boom"); });
        pool.wait_idle();
      },
      "ThreadPool task threw");
}

TEST(ThreadPool, SubmitBatchRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks;
  tasks.reserve(500);
  for (int i = 0; i < 500; ++i)
    tasks.emplace_back(
        [&count] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.submit_batch(std::move(tasks));
  pool.wait_idle();
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, SubmitBatchEmptyIsANoOp) {
  ThreadPool pool(2);
  pool.submit_batch({});
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, SubmitBatchInterleavesWithSubmit) {
  // Batches larger than the worker count, alternated with single submits,
  // must neither drop nor duplicate tasks (exercises the counted wakeup).
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 20; ++round) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 10; ++i)
      tasks.emplace_back(
          [&count] { count.fetch_add(1, std::memory_order_relaxed); });
    pool.submit_batch(std::move(tasks));
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 20 * 11);
}

TEST(ThreadPool, RecordsWaitLatencyHistogram) {
  // The task-wait-latency histogram (queue entry to execution start) must
  // record one sample per task, whether submitted singly or batched — the
  // regression guard for the wakeup-path changes.
  MetricsRegistry metrics;
  install_metrics(&metrics);
  {
    ThreadPool pool(2);
    for (int i = 0; i < 8; ++i) pool.submit([] {});
    std::vector<std::function<void()>> tasks(8, [] {});
    pool.submit_batch(std::move(tasks));
    pool.wait_idle();
  }
  install_metrics(nullptr);
  EXPECT_EQ(metrics.counter("pool.tasks_submitted").value(), 16u);
  EXPECT_EQ(metrics.histogram("pool.task_wait_us").count(), 16u);
  EXPECT_EQ(metrics.histogram("pool.task_run_us").count(), 16u);
}

TEST(ThreadPool, ManyProducersOneSink) {
  // Hammer submit() from several threads at once; every task must run
  // exactly once. (This is the pattern TSan watches in CI.)
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::thread> producers;
  producers.reserve(4);
  for (int t = 0; t < 4; ++t)
    producers.emplace_back([&pool, &count] {
      for (int i = 0; i < 250; ++i)
        pool.submit(
            [&count] { count.fetch_add(1, std::memory_order_relaxed); });
    });
  for (std::thread& t : producers) t.join();
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

}  // namespace
}  // namespace hetgrid
