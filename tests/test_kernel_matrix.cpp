// Cross-product consistency suite: every kernel x distribution x grid
// shape combination runs through the BSP simulator and (where numerics
// apply) the virtual runtime, checking the universal invariants:
//   * totals decompose (total = compute + comm),
//   * the perfect-balance bound is never beaten,
//   * per-processor busy times stay within the compute critical path,
//   * simulator and virtual runtime agree on compute accounting,
//   * executed numerics match the sequential kernels.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "core/heuristic.hpp"
#include "dist/kalinov_lastovetsky.hpp"
#include "dist/panel_distribution.hpp"
#include "matrix/cholesky.hpp"
#include "matrix/gemm.hpp"
#include "matrix/lu.hpp"
#include "matrix/norms.hpp"
#include "matrix/qr.hpp"
#include "runtime/virtual_runtime.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace hetgrid {
namespace {

enum class Kernel { kMmm, kLu, kQr, kCholesky };
enum class DistKind { kBlockCyclic, kHetContiguous, kHetInterleaved, kKl };

std::string kernel_name(Kernel k) {
  switch (k) {
    case Kernel::kMmm: return "mmm";
    case Kernel::kLu: return "lu";
    case Kernel::kQr: return "qr";
    case Kernel::kCholesky: return "cholesky";
  }
  return "?";
}

std::string dist_name(DistKind d) {
  switch (d) {
    case DistKind::kBlockCyclic: return "block-cyclic";
    case DistKind::kHetContiguous: return "het-contiguous";
    case DistKind::kHetInterleaved: return "het-interleaved";
    case DistKind::kKl: return "kalinov-lastovetsky";
  }
  return "?";
}

struct Combo {
  Kernel kernel;
  DistKind dist;
  std::size_t p, q;

  friend std::ostream& operator<<(std::ostream& os, const Combo& c) {
    return os << kernel_name(c.kernel) << "/" << dist_name(c.dist) << "/"
              << c.p << "x" << c.q;
  }
};

struct ComboSetup {
  CycleTimeGrid grid;
  std::unique_ptr<Distribution2D> dist;
};

ComboSetup make_setup(const Combo& c, Rng& rng) {
  const std::vector<double> pool = rng.cycle_times(c.p * c.q, 0.1);
  if (c.dist == DistKind::kBlockCyclic) {
    return {CycleTimeGrid::sorted_row_major(c.p, c.q, pool),
            std::make_unique<PanelDistribution>(
                PanelDistribution::block_cyclic(c.p, c.q))};
  }
  if (c.dist == DistKind::kKl) {
    CycleTimeGrid g = CycleTimeGrid::sorted_row_major(c.p, c.q, pool);
    auto d = std::make_unique<KalinovLastovetskyDistribution>(g, 4 * c.p,
                                                              4 * c.q);
    return {std::move(g), std::move(d)};
  }
  const HeuristicResult h = solve_heuristic(c.p, c.q, pool);
  const PanelOrder order = c.dist == DistKind::kHetInterleaved
                               ? PanelOrder::kInterleaved
                               : PanelOrder::kContiguous;
  auto d = std::make_unique<PanelDistribution>(
      PanelDistribution::from_allocation(h.final().grid, h.final().alloc,
                                         4 * c.p, 4 * c.q,
                                         PanelOrder::kContiguous, order,
                                         dist_name(c.dist)));
  return {h.final().grid, std::move(d)};
}

SimReport run_sim(Kernel k, const Machine& m, const Distribution2D& d,
                  std::size_t nb) {
  switch (k) {
    case Kernel::kMmm: return simulate_mmm(m, d, nb);
    case Kernel::kLu: return simulate_lu(m, d, nb);
    case Kernel::kQr: return simulate_qr(m, d, nb);
    case Kernel::kCholesky: return simulate_cholesky(m, d, nb);
  }
  HG_INTERNAL_CHECK(false, "unreachable");
}

class KernelMatrix : public ::testing::TestWithParam<Combo> {};

TEST_P(KernelMatrix, SimulatorInvariantsHold) {
  const Combo c = GetParam();
  Rng rng(static_cast<std::uint64_t>(c.p * 1000 + c.q * 100 +
                                     static_cast<int>(c.kernel) * 10 +
                                     static_cast<int>(c.dist)));
  ComboSetup s = make_setup(c, rng);
  const Machine m{s.grid, {Topology::kSwitched, 1e-3, 1e-3, true}};
  const std::size_t nb = 4 * c.p * c.q;
  const SimReport rep = run_sim(c.kernel, m, *s.dist, nb);

  EXPECT_NEAR(rep.total_time, rep.compute_time + rep.comm_time, 1e-9);
  EXPECT_GE(rep.total_time, rep.perfect_compute_bound - 1e-9);
  EXPECT_GT(rep.compute_time, 0.0);
  for (double b : rep.busy) EXPECT_LE(b, rep.compute_time + 1e-9);
  EXPECT_GT(rep.average_utilization(), 0.0);
  EXPECT_LE(rep.average_utilization(), 1.0 + 1e-9);
  EXPECT_EQ(rep.steps.size(), nb);
}

TEST_P(KernelMatrix, RuntimeNumericsAndAccountingAgree) {
  const Combo c = GetParam();
  // The virtual runtime's LU/QR/Cholesky require aligned distributions;
  // K-L is exercised for MMM only (the paper makes the same restriction
  // argument in Section 3.1.2).
  if (c.dist == DistKind::kKl && c.kernel != Kernel::kMmm) GTEST_SKIP();

  Rng rng(static_cast<std::uint64_t>(7000 + c.p * 100 + c.q * 10 +
                                     static_cast<int>(c.kernel)));
  ComboSetup s = make_setup(c, rng);
  const Machine m{s.grid, NetworkModel::free()};
  const std::size_t block = 4;
  const std::size_t nb = 4 * c.p * c.q;
  const std::size_t n = nb * block;

  switch (c.kernel) {
    case Kernel::kMmm: {
      Matrix a(n, n), b(n, n), cc(n, n), ref(n, n, 0.0);
      fill_random(a.view(), rng);
      fill_random(b.view(), rng);
      const VirtualReport vr = run_distributed_mmm(m, *s.dist, a.view(),
                                                   b.view(), cc.view(),
                                                   block);
      gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.0, ref.view());
      EXPECT_LT(max_abs_diff(cc.view(), ref.view()), 1e-10 * n);
      const SimReport sr = simulate_mmm(m, *s.dist, nb);
      EXPECT_NEAR(vr.compute_time, sr.compute_time, 1e-6 * vr.compute_time);
      break;
    }
    case Kernel::kLu: {
      Matrix a(n, n);
      fill_diagonally_dominant(a.view(), rng);
      Matrix orig(n, n);
      orig.view().copy_from(a.view());
      const VirtualLuReport vr =
          run_distributed_lu(m, *s.dist, a.view(), block);
      ASSERT_TRUE(vr.factorized);
      const Matrix prod = lu_reconstruct(a.view(), n);
      EXPECT_LT(max_abs_diff(prod.view(), orig.view()) /
                    norm_max(orig.view()),
                1e-10);
      const SimReport sr = simulate_lu(m, *s.dist, nb);
      EXPECT_NEAR(vr.compute_time, sr.compute_time, 1e-6 * vr.compute_time);
      break;
    }
    case Kernel::kQr: {
      Matrix a(n, n), orig(n, n);
      fill_random(a.view(), rng);
      orig.view().copy_from(a.view());
      const VirtualQrReport vr =
          run_distributed_qr(m, *s.dist, a.view(), block);
      const Matrix qmat = qr_form_q(a.view(), vr.tau);
      Matrix r(n, n, 0.0);
      for (std::size_t j = 0; j < n; ++j)
        for (std::size_t i = 0; i <= j; ++i) r(i, j) = a(i, j);
      Matrix prod(n, n, 0.0);
      gemm(Trans::No, Trans::No, 1.0, qmat.view(), r.view(), 0.0,
           prod.view());
      EXPECT_LT(max_abs_diff(prod.view(), orig.view()), 1e-9 * n);
      break;
    }
    case Kernel::kCholesky: {
      Matrix a(n, n), orig(n, n);
      fill_spd(a.view(), rng);
      orig.view().copy_from(a.view());
      const VirtualCholeskyReport vr =
          run_distributed_cholesky(m, *s.dist, a.view(), block);
      ASSERT_TRUE(vr.factorized);
      const Matrix rec = cholesky_reconstruct(a.view());
      EXPECT_LT(max_abs_diff(rec.view(), orig.view()) /
                    norm_max(orig.view()),
                1e-10);
      const SimReport sr = simulate_cholesky(m, *s.dist, nb);
      EXPECT_NEAR(vr.compute_time, sr.compute_time, 1e-6 * vr.compute_time);
      break;
    }
  }
}

std::vector<Combo> all_combos() {
  std::vector<Combo> out;
  const std::pair<std::size_t, std::size_t> shapes[] = {{1, 2}, {2, 2},
                                                        {2, 3}, {3, 3}};
  for (Kernel k : {Kernel::kMmm, Kernel::kLu, Kernel::kQr,
                   Kernel::kCholesky})
    for (DistKind d :
         {DistKind::kBlockCyclic, DistKind::kHetContiguous,
          DistKind::kHetInterleaved, DistKind::kKl})
      for (auto [p, q] : shapes) out.push_back({k, d, p, q});
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, KernelMatrix, ::testing::ValuesIn(all_combos()),
    [](const ::testing::TestParamInfo<Combo>& info) {
      const Combo& c = info.param;
      return kernel_name(c.kernel) + "_" +
             [&] {
               std::string s = dist_name(c.dist);
               for (char& ch : s)
                 if (ch == '-') ch = '_';
               return s;
             }() +
             "_" + std::to_string(c.p) + "x" + std::to_string(c.q);
    });

}  // namespace
}  // namespace hetgrid
