// Unit tests for the dense-matrix substrate: storage, views, GEMM, TRSM.
#include <gtest/gtest.h>

#include <tuple>

#include "matrix/gemm.hpp"
#include "matrix/matrix.hpp"
#include "matrix/norms.hpp"
#include "matrix/trsm.hpp"
#include "util/rng.hpp"

namespace hetgrid {
namespace {

// ---------------------------------------------------------------- storage

TEST(Matrix, StoresColumnMajor) {
  Matrix m(2, 3, 0.0);
  m(0, 0) = 1.0;
  m(1, 0) = 2.0;
  m(0, 1) = 3.0;
  EXPECT_DOUBLE_EQ(m.data()[0], 1.0);
  EXPECT_DOUBLE_EQ(m.data()[1], 2.0);
  EXPECT_DOUBLE_EQ(m.data()[2], 3.0);
}

TEST(Matrix, IdentityHasOnesOnDiagonal) {
  const Matrix i = Matrix::identity(4);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c)
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, BlockViewAliasesParentStorage) {
  Matrix m(4, 4, 0.0);
  MatrixView blk = m.block(1, 2, 2, 2);
  blk(0, 0) = 42.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 42.0);
  EXPECT_EQ(blk.ld(), m.ld());
}

TEST(Matrix, NestedBlockViews) {
  Matrix m(6, 6, 0.0);
  MatrixView outer = m.block(1, 1, 4, 4);
  MatrixView inner = outer.block(1, 1, 2, 2);
  inner(0, 0) = 7.0;
  EXPECT_DOUBLE_EQ(m(2, 2), 7.0);
}

TEST(Matrix, FillAndCopy) {
  Matrix a(3, 3, 0.0), b(3, 3, 0.0);
  a.view().fill(2.5);
  b.view().copy_from(a.view());
  EXPECT_TRUE(approx_equal(a.view(), b.view(), 0.0));
}

TEST(Matrix, CopyFromRejectsShapeMismatch) {
  Matrix a(2, 2), b(3, 3);
  EXPECT_THROW(b.view().copy_from(a.view()), PreconditionError);
}

TEST(Matrix, ApproxEqualRespectsTolerance) {
  Matrix a(2, 2, 1.0), b(2, 2, 1.0);
  b(0, 0) = 1.0 + 1e-6;
  EXPECT_TRUE(approx_equal(a.view(), b.view(), 1e-5));
  EXPECT_FALSE(approx_equal(a.view(), b.view(), 1e-7));
}

TEST(Matrix, FillRandomInRange) {
  Rng rng(1);
  Matrix m(10, 10);
  fill_random(m.view(), rng);
  EXPECT_LE(norm_max(m.view()), 1.0);
  EXPECT_GT(norm_frobenius(m.view()), 0.0);
}

TEST(Matrix, DiagonallyDominantHasLargeDiagonal) {
  Rng rng(2);
  Matrix m(8, 8);
  fill_diagonally_dominant(m.view(), rng);
  for (std::size_t i = 0; i < 8; ++i) {
    double off = 0.0;
    for (std::size_t j = 0; j < 8; ++j)
      if (j != i) off += std::abs(m(i, j));
    EXPECT_GT(std::abs(m(i, i)), off);
  }
}

// ---------------------------------------------------------------- norms

TEST(Norms, FrobeniusOfKnownMatrix) {
  Matrix m(2, 2, 0.0);
  m(0, 0) = 3.0;
  m(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(norm_frobenius(m.view()), 5.0);
}

TEST(Norms, InfNormIsMaxRowSum) {
  Matrix m(2, 2, 0.0);
  m(0, 0) = 1.0;
  m(0, 1) = -2.0;
  m(1, 0) = 3.0;
  EXPECT_DOUBLE_EQ(norm_inf(m.view()), 3.0);
}

TEST(Norms, MaxAbsDiffShapes) {
  Matrix a(2, 2, 1.0), b(2, 3, 1.0);
  EXPECT_THROW(max_abs_diff(a.view(), b.view()), PreconditionError);
}

// ---------------------------------------------------------------- gemm

// Parameterized over (m, n, k): blocked gemm must match the reference for
// shapes spanning smaller-than-tile, tile-boundary, and ragged sizes.
class GemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, BlockedMatchesReference) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 1000 + n * 100 + k));
  Matrix a(m, k), b(k, n), c(m, n), c_ref(m, n);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);
  fill_random(c.view(), rng);
  c_ref.view().copy_from(c.view());

  gemm(Trans::No, Trans::No, 1.5, a.view(), b.view(), -0.5, c.view());
  gemm_reference(Trans::No, Trans::No, 1.5, a.view(), b.view(), -0.5,
                 c_ref.view());
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), 1e-12 * k);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 7),
                      std::make_tuple(64, 64, 64),
                      std::make_tuple(65, 63, 66),
                      std::make_tuple(100, 1, 100),
                      std::make_tuple(1, 100, 100),
                      std::make_tuple(129, 130, 65)));

TEST(Gemm, AlphaZeroSkipsProduct) {
  Matrix a(4, 4, 7.0), b(4, 4, 7.0), c(4, 4, 2.0);
  gemm(Trans::No, Trans::No, 0.0, a.view(), b.view(), 1.0, c.view());
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
}

TEST(Gemm, BetaZeroOverwritesGarbage) {
  Matrix a = Matrix::identity(3), b = Matrix::identity(3), c(3, 3);
  c.view().fill(std::numeric_limits<double>::quiet_NaN());
  gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.0, c.view());
  EXPECT_TRUE(approx_equal(c.view(), Matrix::identity(3).view(), 0.0));
}

TEST(Gemm, TransposedVariantsMatchReference) {
  Rng rng(9);
  const int m = 13, n = 11, k = 17;
  for (Trans ta : {Trans::No, Trans::Yes}) {
    for (Trans tb : {Trans::No, Trans::Yes}) {
      Matrix a(ta == Trans::No ? m : k, ta == Trans::No ? k : m);
      Matrix b(tb == Trans::No ? k : n, tb == Trans::No ? n : k);
      Matrix c(m, n), c_ref(m, n);
      fill_random(a.view(), rng);
      fill_random(b.view(), rng);
      c.view().fill(0.3);
      c_ref.view().copy_from(c.view());
      gemm(ta, tb, 2.0, a.view(), b.view(), 1.0, c.view());
      gemm_reference(ta, tb, 2.0, a.view(), b.view(), 1.0, c_ref.view());
      EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), 1e-12 * k);
    }
  }
}

TEST(Gemm, TransposedVariantsMatchReferenceAcrossBlockBoundaries) {
  // Same four (trans_a, trans_b) combinations at sizes past the blocked
  // path's tile bounds, with beta == 0 so the accumulate prologue differs
  // from the small-shape test above.
  Rng rng(21);
  const int m = 150, n = 170, k = 130;
  for (Trans ta : {Trans::No, Trans::Yes}) {
    for (Trans tb : {Trans::No, Trans::Yes}) {
      Matrix a(ta == Trans::No ? m : k, ta == Trans::No ? k : m);
      Matrix b(tb == Trans::No ? k : n, tb == Trans::No ? n : k);
      Matrix c(m, n), c_ref(m, n);
      fill_random(a.view(), rng);
      fill_random(b.view(), rng);
      c.view().fill(std::numeric_limits<double>::quiet_NaN());
      c_ref.view().fill(0.0);
      gemm(ta, tb, -1.25, a.view(), b.view(), 0.0, c.view());
      gemm_reference(ta, tb, -1.25, a.view(), b.view(), 0.0, c_ref.view());
      EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), 1e-11 * k)
          << "ta=" << (ta == Trans::Yes) << " tb=" << (tb == Trans::Yes);
    }
  }
}

TEST(Gemm, ShapeMismatchThrows) {
  Matrix a(2, 3), b(4, 2), c(2, 2);
  EXPECT_THROW(
      gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.0, c.view()),
      PreconditionError);
}

TEST(Gemm, IdentityIsNeutral) {
  Rng rng(4);
  Matrix a(16, 16);
  fill_random(a.view(), rng);
  Matrix c(16, 16, 0.0);
  gemm(Trans::No, Trans::No, 1.0, a.view(), Matrix::identity(16).view(), 0.0,
       c.view());
  EXPECT_LT(max_abs_diff(a.view(), c.view()), 1e-14);
}

TEST(Gemm, UpdateAccumulates) {
  Matrix a = Matrix::identity(2), b = Matrix::identity(2), c(2, 2, 1.0);
  gemm_update(a.view(), b.view(), c.view());
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
}

TEST(Gemm, WorksOnSubviews) {
  Rng rng(5);
  Matrix big(20, 20, 0.0);
  Matrix a(6, 6), b(6, 6);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);
  gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.0,
       big.block(7, 9, 6, 6));
  Matrix ref(6, 6, 0.0);
  gemm_reference(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.0,
                 ref.view());
  EXPECT_LT(max_abs_diff(big.block(7, 9, 6, 6), ref.view()), 1e-13);
  // The rest of `big` untouched.
  EXPECT_DOUBLE_EQ(big(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(big(19, 19), 0.0);
}

// ---------------------------------------------------------------- trsm

TEST(Trsm, LowerUnitSolveInvertsMultiplication) {
  Rng rng(6);
  const int n = 12, nrhs = 5;
  Matrix l(n, n, 0.0);
  for (int i = 0; i < n; ++i) {
    l(i, i) = 1.0;
    for (int j = 0; j < i; ++j) l(i, j) = rng.uniform(-1.0, 1.0);
  }
  Matrix x(n, nrhs);
  fill_random(x.view(), rng);
  Matrix b(n, nrhs, 0.0);
  gemm(Trans::No, Trans::No, 1.0, l.view(), x.view(), 0.0, b.view());
  trsm_left_lower_unit(l.view(), b.view());
  EXPECT_LT(max_abs_diff(b.view(), x.view()), 1e-10);
}

TEST(Trsm, UpperSolveInvertsMultiplication) {
  Rng rng(7);
  const int n = 10, nrhs = 3;
  Matrix u(n, n, 0.0);
  for (int i = 0; i < n; ++i) {
    u(i, i) = 2.0 + rng.uniform();
    for (int j = i + 1; j < n; ++j) u(i, j) = rng.uniform(-1.0, 1.0);
  }
  Matrix x(n, nrhs);
  fill_random(x.view(), rng);
  Matrix b(n, nrhs, 0.0);
  gemm(Trans::No, Trans::No, 1.0, u.view(), x.view(), 0.0, b.view());
  trsm_left_upper(u.view(), b.view());
  EXPECT_LT(max_abs_diff(b.view(), x.view()), 1e-10);
}

TEST(Trsm, RightUpperSolveInvertsRightMultiplication) {
  Rng rng(8);
  const int n = 9, m = 4;
  Matrix u(n, n, 0.0);
  for (int i = 0; i < n; ++i) {
    u(i, i) = 1.5 + rng.uniform();
    for (int j = i + 1; j < n; ++j) u(i, j) = rng.uniform(-1.0, 1.0);
  }
  Matrix x(m, n);
  fill_random(x.view(), rng);
  Matrix b(m, n, 0.0);
  gemm(Trans::No, Trans::No, 1.0, x.view(), u.view(), 0.0, b.view());
  trsm_right_upper(u.view(), b.view());
  EXPECT_LT(max_abs_diff(b.view(), x.view()), 1e-10);
}

TEST(Trsm, SingularUpperThrows) {
  Matrix u(2, 2, 0.0);
  u(0, 0) = 1.0;  // u(1,1) == 0 -> singular
  Matrix b(2, 1, 1.0);
  EXPECT_THROW(trsm_left_upper(u.view(), b.view()), PreconditionError);
}

}  // namespace
}  // namespace hetgrid
