// Tests for CycleTimeGrid and the allocation/objective machinery
// (paper Section 4.1).
#include <gtest/gtest.h>

#include "core/allocation.hpp"
#include "core/cycle_time_grid.hpp"
#include "util/rng.hpp"

namespace hetgrid {
namespace {

// ----------------------------------------------------- grid basics

TEST(CycleTimeGrid, RowMajorIndexing) {
  CycleTimeGrid g(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_DOUBLE_EQ(g(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(g(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(g(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(g(1, 2), 6.0);
}

TEST(CycleTimeGrid, RejectsNonPositiveTimes) {
  EXPECT_THROW(CycleTimeGrid(1, 2, {1.0, 0.0}), PreconditionError);
  EXPECT_THROW(CycleTimeGrid(1, 2, {1.0, -3.0}), PreconditionError);
}

TEST(CycleTimeGrid, RejectsWrongSize) {
  EXPECT_THROW(CycleTimeGrid(2, 2, {1.0, 2.0}), PreconditionError);
}

TEST(CycleTimeGrid, FromArrangementPlacesPoolByPermutation) {
  // perm maps grid position -> pool index.
  const CycleTimeGrid g = CycleTimeGrid::from_arrangement(
      2, 2, {10.0, 20.0, 30.0, 40.0}, {3, 1, 0, 2});
  EXPECT_DOUBLE_EQ(g(0, 0), 40.0);
  EXPECT_DOUBLE_EQ(g(0, 1), 20.0);
  EXPECT_DOUBLE_EQ(g(1, 0), 10.0);
  EXPECT_DOUBLE_EQ(g(1, 1), 30.0);
}

TEST(CycleTimeGrid, FromArrangementRejectsNonPermutation) {
  EXPECT_THROW(CycleTimeGrid::from_arrangement(2, 1, {1.0, 2.0}, {0, 0}),
               PreconditionError);
}

TEST(CycleTimeGrid, SortedRowMajorIsNonDecreasing) {
  const CycleTimeGrid g =
      CycleTimeGrid::sorted_row_major(2, 3, {9, 1, 5, 3, 7, 2});
  EXPECT_TRUE(g.is_non_decreasing());
  EXPECT_DOUBLE_EQ(g(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(g(1, 2), 9.0);
}

TEST(CycleTimeGrid, NonDecreasingDetection) {
  EXPECT_TRUE(CycleTimeGrid(2, 2, {1, 2, 3, 6}).is_non_decreasing());
  EXPECT_FALSE(CycleTimeGrid(2, 2, {2, 1, 3, 6}).is_non_decreasing());
  EXPECT_FALSE(CycleTimeGrid(2, 2, {1, 2, 3, 1}).is_non_decreasing());
  // Paper's converged 3x3 arrangement is non-decreasing along rows and
  // columns even though it is not sorted row-major.
  EXPECT_TRUE(
      CycleTimeGrid(3, 3, {1, 2, 3, 4, 6, 8, 5, 7, 9}).is_non_decreasing());
}

TEST(CycleTimeGrid, RankOneDetection) {
  // Paper's Figure 1 grid {1,2;3,6} is rank 1; {1,2;3,5} is not.
  EXPECT_TRUE(CycleTimeGrid(2, 2, {1, 2, 3, 6}).is_rank_one());
  EXPECT_FALSE(CycleTimeGrid(2, 2, {1, 2, 3, 5}).is_rank_one());
}

TEST(CycleTimeGrid, TotalCapacitySumsInverses) {
  const CycleTimeGrid g(2, 2, {1, 2, 4, 4});
  EXPECT_DOUBLE_EQ(g.total_capacity(), 1.0 + 0.5 + 0.25 + 0.25);
}

TEST(CycleTimeGrid, ToStringContainsValues) {
  const CycleTimeGrid g(1, 2, {1.5, 2.5});
  const std::string s = g.to_string(1);
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
}

// ----------------------------------------------------- objectives

TEST(Allocation, WorkloadMatrixMatchesDefinition) {
  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  const GridAllocation a{{3.0, 1.0}, {2.0, 1.0}};
  const auto b = workload_matrix(g, a);
  EXPECT_DOUBLE_EQ(b[0], 3.0 * 1.0 * 2.0);
  EXPECT_DOUBLE_EQ(b[1], 3.0 * 2.0 * 1.0);
  EXPECT_DOUBLE_EQ(b[2], 1.0 * 3.0 * 2.0);
  EXPECT_DOUBLE_EQ(b[3], 1.0 * 6.0 * 1.0);
}

TEST(Allocation, Obj2IsProductOfSums) {
  const GridAllocation a{{1.0, 2.0}, {0.5, 0.5, 1.0}};
  EXPECT_DOUBLE_EQ(obj2_value(a), 3.0 * 2.0);
}

TEST(Allocation, Obj1IsWorstOverProduct) {
  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  // Perfectly balanced allocation: worst = 6, sums = 4 * 3.
  const GridAllocation a{{3.0, 1.0}, {2.0, 1.0}};
  EXPECT_DOUBLE_EQ(obj1_value(g, a), 6.0 / 12.0);
}

TEST(Allocation, FeasibilityBoundary) {
  const CycleTimeGrid g(1, 1, {2.0});
  EXPECT_TRUE(is_feasible(g, {{0.5}, {1.0}}));
  EXPECT_TRUE(is_feasible(g, {{0.5}, {1.0 + 1e-12}}));
  EXPECT_FALSE(is_feasible(g, {{0.5}, {1.1}}));
  EXPECT_FALSE(is_feasible(g, {{-0.1}, {1.0}}));
}

TEST(Allocation, ShapeMismatchThrows) {
  const CycleTimeGrid g(2, 2, {1, 1, 1, 1});
  EXPECT_THROW(workload_matrix(g, {{1.0}, {1.0, 1.0}}), PreconditionError);
}

// ----------------------------------------------------- normalize_tight

TEST(NormalizeTight, PaperFigure1AllocationIsPerfect) {
  // {1,2;3,6} with raw shares r=(1,1), c=(1,1): normalization must reach
  // the perfectly balanced point (up to scaling).
  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  GridAllocation a{{1.0, 1.0}, {1.0, 1.0}};
  normalize_tight(g, a);
  EXPECT_TRUE(is_feasible(g, a));
  EXPECT_TRUE(is_tight(g, a));
}

TEST(NormalizeTight, ResultAlwaysFeasibleAndTight) {
  Rng rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t p = 1 + rng.below(4);
    const std::size_t q = 1 + rng.below(4);
    const CycleTimeGrid g(p, q, rng.cycle_times(p * q));
    GridAllocation a;
    for (std::size_t i = 0; i < p; ++i)
      a.r.push_back(rng.uniform(0.1, 5.0));
    for (std::size_t j = 0; j < q; ++j)
      a.c.push_back(rng.uniform(0.1, 5.0));
    normalize_tight(g, a);
    EXPECT_TRUE(is_feasible(g, a)) << "trial " << trial;
    EXPECT_TRUE(is_tight(g, a)) << "trial " << trial;
  }
}

TEST(NormalizeTight, ScaleInvariant) {
  // Scaling the raw shares must not change the normalized objective.
  const CycleTimeGrid g(2, 3, {1, 2, 3, 2, 4, 6});
  GridAllocation a{{1.0, 0.5}, {1.0, 0.7, 0.3}};
  GridAllocation b{{10.0, 5.0}, {0.2, 0.14, 0.06}};
  normalize_tight(g, a);
  normalize_tight(g, b);
  EXPECT_NEAR(obj2_value(a), obj2_value(b), 1e-12);
}

TEST(NormalizeTight, RejectsZeroShares) {
  const CycleTimeGrid g(1, 1, {1.0});
  GridAllocation a{{0.0}, {1.0}};
  EXPECT_THROW(normalize_tight(g, a), PreconditionError);
}

TEST(Allocation, Obj2NeverExceedsCapacityBound) {
  Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t p = 1 + rng.below(3);
    const std::size_t q = 1 + rng.below(3);
    const CycleTimeGrid g(p, q, rng.cycle_times(p * q));
    GridAllocation a;
    for (std::size_t i = 0; i < p; ++i) a.r.push_back(rng.uniform(0.1, 2.0));
    for (std::size_t j = 0; j < q; ++j) a.c.push_back(rng.uniform(0.1, 2.0));
    normalize_tight(g, a);
    EXPECT_LE(obj2_value(a), obj2_upper_bound(g) * (1.0 + 1e-9))
        << "trial " << trial;
  }
}

TEST(Allocation, AverageWorkloadIsOneOnlyAtPerfectBalance) {
  const CycleTimeGrid rank1(2, 2, {1, 2, 3, 6});
  GridAllocation perfect{{1.0, 1.0 / 3.0}, {1.0, 0.5}};
  EXPECT_NEAR(average_workload(rank1, perfect), 1.0, 1e-12);

  const CycleTimeGrid notrank1(2, 2, {1, 2, 3, 5});
  GridAllocation a{{1.0, 1.0 / 3.0}, {1.0, 0.5}};
  normalize_tight(notrank1, a);
  EXPECT_LT(average_workload(notrank1, a), 1.0);
}

}  // namespace
}  // namespace hetgrid
