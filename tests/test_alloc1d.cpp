// Tests for the 1D heterogeneous allocator (paper refs [5,6]; used by the
// K–L baseline and the LU/QR panel-column ordering of Section 3.2.2).
#include <gtest/gtest.h>

#include <functional>

#include "core/alloc1d.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace hetgrid {
namespace {

// Brute-force optimal makespan over all compositions of `slots`.
double brute_force_makespan(const std::vector<double>& t, std::size_t slots) {
  double best = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> n(t.size(), 0);
  std::function<void(std::size_t, std::size_t)> rec = [&](std::size_t i,
                                                          std::size_t left) {
    if (i + 1 == t.size()) {
      n[i] = left;
      double mk = 0.0;
      for (std::size_t k = 0; k < t.size(); ++k)
        mk = std::max(mk, static_cast<double>(n[k]) * t[k]);
      best = std::min(best, mk);
      return;
    }
    for (std::size_t give = 0; give <= left; ++give) {
      n[i] = give;
      rec(i + 1, left - give);
    }
  };
  rec(0, slots);
  return best;
}

TEST(Alloc1d, PaperLuOrderingIsABAABA) {
  // Section 3.2.2: aggregate column cycle-times 3/20 and 5/17, six panel
  // columns -> ordering ABAABA with counts 4 and 2.
  const Alloc1dResult res = allocate_1d({3.0 / 20.0, 5.0 / 17.0}, 6);
  EXPECT_EQ(res.order, (std::vector<std::size_t>{0, 1, 0, 0, 1, 0}));
  EXPECT_EQ(res.counts, (std::vector<std::size_t>{4, 2}));
}

TEST(Alloc1d, KalinovLastovetskyRowSplits) {
  // Figure 3: column {1,3} with 4 row slots -> 3:1; column {2,5} with 7
  // row slots -> 5:2.
  EXPECT_EQ(allocate_1d({1.0, 3.0}, 4).counts,
            (std::vector<std::size_t>{3, 1}));
  EXPECT_EQ(allocate_1d({2.0, 5.0}, 7).counts,
            (std::vector<std::size_t>{5, 2}));
}

TEST(Alloc1d, KalinovLastovetskyColumnSplit) {
  // Aggregate column cycle-times 3/2 and 20/7; 61 column slots -> 40:21.
  const Alloc1dResult res = allocate_1d({1.5, 20.0 / 7.0}, 61);
  EXPECT_EQ(res.counts, (std::vector<std::size_t>{40, 21}));
  // That split is exactly balanced: 40 * 3/2 == 21 * 20/7 == 60.
  EXPECT_NEAR(res.makespan, 60.0, 1e-12);
}

TEST(Alloc1d, CountsSumToSlots) {
  Rng rng(21);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t m = 1 + rng.below(6);
    const std::size_t slots = rng.below(40);
    const Alloc1dResult res = allocate_1d(rng.cycle_times(m, 0.05), slots);
    std::size_t sum = 0;
    for (std::size_t c : res.counts) sum += c;
    EXPECT_EQ(sum, slots);
    EXPECT_EQ(res.order.size(), slots);
  }
}

TEST(Alloc1d, GreedyIsOptimalVsBruteForce) {
  Rng rng(22);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t m = 2 + rng.below(2);  // 2 or 3 processors
    const std::size_t slots = 1 + rng.below(8);
    const std::vector<double> t = rng.cycle_times(m, 0.05);
    const Alloc1dResult res = allocate_1d(t, slots);
    EXPECT_NEAR(res.makespan, brute_force_makespan(t, slots),
                1e-12) << "trial " << trial;
  }
}

TEST(Alloc1d, OrderIsConsistentWithCounts) {
  const Alloc1dResult res = allocate_1d({1.0, 2.0, 4.0}, 14);
  std::vector<std::size_t> tally(3, 0);
  for (std::size_t i : res.order) tally[i] += 1;
  EXPECT_EQ(tally, res.counts);
}

TEST(Alloc1d, HomogeneousProcessorsRoundRobin) {
  const Alloc1dResult res = allocate_1d({1.0, 1.0, 1.0}, 6);
  EXPECT_EQ(res.counts, (std::vector<std::size_t>{2, 2, 2}));
  // Ties break toward lower index -> strict round-robin.
  EXPECT_EQ(res.order, (std::vector<std::size_t>{0, 1, 2, 0, 1, 2}));
}

TEST(Alloc1d, FastProcessorTakesEverythingWhenJustified) {
  // One processor 10x faster than the other: with 5 slots the slow one
  // should get none (5 * 0.1 = 0.5 < 1 * 1.0).
  const Alloc1dResult res = allocate_1d({0.1, 1.0}, 5);
  EXPECT_EQ(res.counts, (std::vector<std::size_t>{5, 0}));
}

TEST(Alloc1d, ZeroSlotsGiveEmptyAllocation) {
  const Alloc1dResult res = allocate_1d({1.0, 2.0}, 0);
  EXPECT_EQ(res.counts, (std::vector<std::size_t>{0, 0}));
  EXPECT_TRUE(res.order.empty());
  EXPECT_DOUBLE_EQ(res.makespan, 0.0);
}

TEST(Alloc1d, RejectsBadInput) {
  EXPECT_THROW(allocate_1d({}, 3), PreconditionError);
  EXPECT_THROW(allocate_1d({1.0, -1.0}, 3), PreconditionError);
}

TEST(ProportionalShares, InverseSpeedNormalized) {
  const std::vector<double> s = proportional_shares({1.0, 3.0});
  EXPECT_NEAR(s[0], 0.75, 1e-12);
  EXPECT_NEAR(s[1], 0.25, 1e-12);
}

TEST(AggregateCycleTime, MatchesPaperExamples) {
  // LU example: 6 processors of cycle-time 1 plus 2 of cycle-time 3
  // behave like one processor of cycle-time 3/20.
  EXPECT_NEAR(aggregate_cycle_time({1, 1, 1, 1, 1, 1, 3, 3}), 3.0 / 20.0,
              1e-12);
  // And 6 of cycle-time 2 plus 2 of cycle-time 5 -> 5/17.
  EXPECT_NEAR(aggregate_cycle_time({2, 2, 2, 2, 2, 2, 5, 5}), 5.0 / 17.0,
              1e-12);
}

}  // namespace
}  // namespace hetgrid
