// Tests for the bulk-synchronous HNOW simulator.
#include <gtest/gtest.h>

#include "core/heuristic.hpp"
#include "core/rank1_solver.hpp"
#include "dist/kalinov_lastovetsky.hpp"
#include "dist/panel_distribution.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace hetgrid {
namespace {

Machine homogeneous_machine(std::size_t p, std::size_t q, double t,
                            NetworkModel net = NetworkModel::free()) {
  return Machine{CycleTimeGrid(p, q, std::vector<double>(p * q, t)), net};
}

// ----------------------------------------------------- MMM analytics

TEST(SimMmm, HomogeneousGridMatchesClosedForm) {
  // p=q=2, t=0.5, nb=8, free network: each step every processor updates
  // 16 blocks -> step = 8, total = 64.
  const Machine m = homogeneous_machine(2, 2, 0.5);
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const SimReport rep = simulate_mmm(m, d, 8);
  EXPECT_DOUBLE_EQ(rep.compute_time, 64.0);
  EXPECT_DOUBLE_EQ(rep.comm_time, 0.0);
  EXPECT_DOUBLE_EQ(rep.total_time, 64.0);
  EXPECT_NEAR(rep.average_utilization(), 1.0, 1e-12);
  EXPECT_NEAR(rep.slowdown_vs_perfect(), 1.0, 1e-12);
}

TEST(SimMmm, BlockCyclicOnHeterogeneousGridRunsAtSlowestSpeed) {
  // Abstract's claim: uniform block-cyclic limits performance to the
  // slowest processor. With t = {1,2;3,6} and nb divisible by the grid,
  // each processor owns nb^2/4 blocks; the critical path is t=6.
  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  const Machine m{g, NetworkModel::free()};
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const SimReport rep = simulate_mmm(m, d, 8);
  EXPECT_DOUBLE_EQ(rep.compute_time, 8.0 * 16.0 * 6.0);
}

TEST(SimMmm, PerfectPanelRecoversCapacityBound) {
  // The rank-1 grid with its perfect 4x3 panel: simulated compute time
  // equals the perfect bound exactly.
  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  const Machine m{g, NetworkModel::free()};
  const PanelDistribution d = PanelDistribution::from_counts(
      {3, 1}, {2, 1}, g, PanelOrder::kContiguous, PanelOrder::kContiguous,
      "perfect");
  const SimReport rep = simulate_mmm(m, d, 12);
  EXPECT_NEAR(rep.total_time, rep.perfect_compute_bound, 1e-9);
  EXPECT_NEAR(rep.average_utilization(), 1.0, 1e-12);
}

TEST(SimMmm, HeuristicPanelBeatsBlockCyclic) {
  Rng rng(71);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t p = 2 + rng.below(2), q = 2 + rng.below(2);
    const std::vector<double> pool = rng.cycle_times(p * q, 0.05);
    const HeuristicResult h = solve_heuristic(p, q, pool);
    const Machine m{h.final().grid, NetworkModel::free()};
    const PanelDistribution het = PanelDistribution::from_allocation(
        h.final().grid, h.final().alloc, 4 * p, 4 * q,
        PanelOrder::kContiguous, PanelOrder::kContiguous, "het");
    const PanelDistribution bc = PanelDistribution::block_cyclic(p, q);
    const std::size_t nb = 8 * p * q;
    const double t_het = simulate_mmm(m, het, nb).total_time;
    const double t_bc = simulate_mmm(m, bc, nb).total_time;
    EXPECT_LE(t_het, t_bc * (1.0 + 1e-9)) << "trial " << trial;
  }
}

TEST(SimMmm, TotalIsComputePlusComm) {
  const Machine m = homogeneous_machine(2, 2, 1.0,
                                        {Topology::kSwitched, 1e-3, 1e-3,
                                         true});
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const SimReport rep = simulate_mmm(m, d, 6);
  EXPECT_GT(rep.comm_time, 0.0);
  EXPECT_DOUBLE_EQ(rep.total_time, rep.compute_time + rep.comm_time);
}

TEST(SimMmm, PerfectBoundNeverExceeded) {
  Rng rng(72);
  for (int trial = 0; trial < 20; ++trial) {
    const CycleTimeGrid g(2, 3, rng.cycle_times(6, 0.05));
    const Machine m{g, NetworkModel::free()};
    const PanelDistribution d = PanelDistribution::block_cyclic(2, 3);
    const SimReport rep = simulate_mmm(m, d, 12);
    EXPECT_GE(rep.total_time, rep.perfect_compute_bound - 1e-9);
  }
}

// ----------------------------------------------------- network model

TEST(Network, EthernetSerializesBroadcasts) {
  const NetworkModel switched{Topology::kSwitched, 1e-3, 1e-3, true};
  const NetworkModel ethernet{Topology::kEthernet, 1e-3, 1e-3, true};
  const Machine ms = homogeneous_machine(3, 3, 1.0, switched);
  const Machine me = homogeneous_machine(3, 3, 1.0, ethernet);
  const PanelDistribution d = PanelDistribution::block_cyclic(3, 3);
  const SimReport rs = simulate_mmm(ms, d, 9);
  const SimReport re = simulate_mmm(me, d, 9);
  EXPECT_GT(re.comm_time, rs.comm_time);
  EXPECT_DOUBLE_EQ(re.compute_time, rs.compute_time);
}

TEST(Network, PipeliningReducesSwitchedBroadcasts) {
  const NetworkModel piped{Topology::kSwitched, 1e-3, 1e-3, true};
  const NetworkModel store{Topology::kSwitched, 1e-3, 1e-3, false};
  const Machine mp = homogeneous_machine(2, 4, 1.0, piped);
  const Machine ms = homogeneous_machine(2, 4, 1.0, store);
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 4);
  EXPECT_LT(simulate_mmm(mp, d, 8).comm_time,
            simulate_mmm(ms, d, 8).comm_time);
}

TEST(Network, BroadcastCostZeroForSingletonLine) {
  const NetworkModel net{Topology::kSwitched, 1e-3, 1e-3, true};
  EXPECT_DOUBLE_EQ(net.broadcast_cost(5, 1), 0.0);
  EXPECT_DOUBLE_EQ(net.broadcast_cost(0, 4), 0.0);
}

TEST(Network, NegativeCostsRejected) {
  Machine m = homogeneous_machine(2, 2, 1.0);
  m.net.latency = -1.0;
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  EXPECT_THROW(simulate_mmm(m, d, 4), PreconditionError);
}

// ----------------------------------------------------- LU / QR

TEST(SimLu, HomogeneousMatchesHandComputedSteps) {
  // 2x2 homogeneous grid (t=1), nb=2, free network, default costs:
  // step 0: panel rows {0,1} in column 0 -> max 1 block * 0.5;
  //         row panel 1 block * 0.5; trailing 1 block * 1.0 -> 2.0
  // step 1: panel 1 block * 0.5 -> 0.5; rest empty.
  const Machine m = homogeneous_machine(2, 2, 1.0);
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const SimReport rep = simulate_lu(m, d, 2);
  EXPECT_DOUBLE_EQ(rep.compute_time, 0.5 + 0.5 + 1.0 + 0.5);
  EXPECT_DOUBLE_EQ(rep.comm_time, 0.0);
}

TEST(SimLu, TrailingWorkDominatedBySlowestUnderBlockCyclic) {
  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  const Machine m{g, NetworkModel::free()};
  const PanelDistribution bc = PanelDistribution::block_cyclic(2, 2);
  const HeuristicResult h = solve_heuristic(2, 2, {1, 2, 3, 6});
  const PanelDistribution het = PanelDistribution::from_allocation(
      h.final().grid, h.final().alloc, 8, 6, PanelOrder::kContiguous,
      PanelOrder::kInterleaved, "het");
  const Machine mh{h.final().grid, NetworkModel::free()};
  const std::size_t nb = 48;
  EXPECT_LT(simulate_lu(mh, het, nb).total_time,
            simulate_lu(m, bc, nb).total_time);
}

TEST(SimLu, PerfectBoundHolds) {
  Rng rng(73);
  for (int trial = 0; trial < 10; ++trial) {
    const CycleTimeGrid g(2, 2, rng.cycle_times(4, 0.05));
    const Machine m{g, NetworkModel::free()};
    const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
    const SimReport rep = simulate_lu(m, d, 16);
    EXPECT_GE(rep.total_time, rep.perfect_compute_bound - 1e-9);
  }
}

TEST(SimLu, BusyTimesBoundedByComputeCriticalPath) {
  const CycleTimeGrid g(2, 3, {1, 2, 3, 2, 4, 6});
  const Machine m{g, NetworkModel::free()};
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 3);
  const SimReport rep = simulate_lu(m, d, 12);
  for (double b : rep.busy) EXPECT_LE(b, rep.compute_time + 1e-9);
}

TEST(SimQr, CostsExceedLuWithDefaultWeights) {
  const Machine m = homogeneous_machine(2, 2, 1.0);
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  EXPECT_GT(simulate_qr(m, d, 8).total_time,
            simulate_lu(m, d, 8).total_time);
}

TEST(SimQr, SameCommunicationPatternAsLu) {
  const NetworkModel net{Topology::kSwitched, 1e-3, 1e-3, true};
  const Machine m = homogeneous_machine(2, 2, 1.0, net);
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  EXPECT_DOUBLE_EQ(simulate_qr(m, d, 8).comm_time,
                   simulate_lu(m, d, 8).comm_time);
}

TEST(Sim, InterleavedColumnsBeatContiguousForLu) {
  // The Section 3.2.2 argument: the shrinking trailing matrix punishes
  // contiguous column runs; the 1D interleaving fixes it.
  const CycleTimeGrid g(2, 2, {1, 2, 3, 5});
  const HeuristicResult h = solve_heuristic(2, 2, {1, 2, 3, 5});
  const Machine m{h.final().grid, NetworkModel::free()};
  const PanelDistribution inter = PanelDistribution::from_allocation(
      h.final().grid, h.final().alloc, 8, 6, PanelOrder::kInterleaved,
      PanelOrder::kInterleaved, "interleaved");
  const PanelDistribution contig = PanelDistribution::from_allocation(
      h.final().grid, h.final().alloc, 8, 6, PanelOrder::kContiguous,
      PanelOrder::kContiguous, "contiguous");
  const std::size_t nb = 48;
  EXPECT_LE(simulate_lu(m, inter, nb).total_time,
            simulate_lu(m, contig, nb).total_time * (1.0 + 1e-9));
}

TEST(Sim, KalinovLastovetskyBalancesComputeButPaysEthernetComm) {
  const CycleTimeGrid g(2, 2, {1, 2, 3, 5});
  const KalinovLastovetskyDistribution kl(g, {4, 7}, 61);
  const PanelDistribution bc = PanelDistribution::block_cyclic(2, 2);
  const Machine free_net{g, NetworkModel::free()};
  const std::size_t nb = 56;  // multiple of lcm(4,7)
  // Pure compute: K-L beats block-cyclic clearly.
  EXPECT_LT(simulate_mmm(free_net, kl, nb).compute_time,
            simulate_mmm(free_net, bc, nb).compute_time);
}

TEST(Sim, RejectsMismatchedGridAndDistribution) {
  const Machine m = homogeneous_machine(2, 2, 1.0);
  const PanelDistribution d = PanelDistribution::block_cyclic(3, 3);
  EXPECT_THROW(simulate_mmm(m, d, 4), PreconditionError);
  EXPECT_THROW(simulate_lu(m, d, 4), PreconditionError);
}

TEST(Sim, ZeroBlocksRejected) {
  const Machine m = homogeneous_machine(2, 2, 1.0);
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  EXPECT_THROW(simulate_mmm(m, d, 0), PreconditionError);
}

}  // namespace
}  // namespace hetgrid
