// Tests for the spanning-tree exact solver (paper Section 4.3.1).
#include <gtest/gtest.h>

#include <cmath>

#include "core/exact_solver.hpp"
#include "core/heuristic.hpp"
#include "core/rank1_solver.hpp"
#include "graph/spanning_tree.hpp"
#include "util/rng.hpp"

namespace hetgrid {
namespace {

// Numerical reference for p = 2: with r_1 = 1 fixed (scale freedom) and a
// given r_2, the optimal column shares are c_j = 1 / max_i (r_i t_ij), so
// the objective reduces to a 1D function of r_2 we can grid-search.
double brute_force_obj2_p2(const CycleTimeGrid& g) {
  HG_CHECK(g.rows() == 2, "helper is for 2 x q grids");
  double best = 0.0;
  // r2 spans a wide log range; the optimum has r2 in (0, inf) but by
  // symmetry of the scale freedom values far outside cycle-time ratios
  // cannot win.
  for (int step = 0; step <= 200000; ++step) {
    const double r2 = std::pow(10.0, -3.0 + 6.0 * step / 200000.0);
    double csum = 0.0;
    for (std::size_t j = 0; j < g.cols(); ++j)
      csum += 1.0 / std::max(g(0, j), r2 * g(1, j));
    best = std::max(best, (1.0 + r2) * csum);
  }
  return best;
}

TEST(ExactSolver, Rank1GridAchievesCapacityBound) {
  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  const ExactSolution sol = solve_exact(g);
  EXPECT_NEAR(sol.obj2, obj2_upper_bound(g), 1e-12);
  EXPECT_TRUE(is_feasible(g, sol.alloc));
  EXPECT_GE(sol.trees_acceptable, 1u);
  // With pruning off the search is the exhaustive enumeration: K_{2,2} has
  // exactly 4 spanning trees, and on a rank-1 grid all of them are
  // acceptable (every tree induces the same perfectly balanced point).
  ExactSolverOptions exhaustive;
  exhaustive.prune = false;
  const ExactSolution full = solve_exact(g, exhaustive);
  EXPECT_EQ(full.trees_enumerated, 4u);
  EXPECT_EQ(full.trees_acceptable, 4u);
  EXPECT_EQ(full.subtrees_pruned, 0u);
  EXPECT_NEAR(full.obj2, sol.obj2, 1e-12);
}

TEST(ExactSolver, PaperCounterexampleCannotBePerfect) {
  // Section 3.1.2: {1,2;3,5} admits no perfect balance, so the optimum is
  // strictly below the capacity bound 1 + 1/2 + 1/3 + 1/5.
  const CycleTimeGrid g(2, 2, {1, 2, 3, 5});
  const ExactSolution sol = solve_exact(g);
  EXPECT_LT(sol.obj2, obj2_upper_bound(g) - 1e-6);
  EXPECT_TRUE(is_feasible(g, sol.alloc));
  EXPECT_TRUE(is_tight(g, sol.alloc));
}

TEST(ExactSolver, MatchesBruteForceOn2xqGrids) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t q = 2 + rng.below(3);
    const CycleTimeGrid g(2, q, rng.cycle_times(2 * q, 0.05));
    const ExactSolution sol = solve_exact(g);
    const double ref = brute_force_obj2_p2(g);
    EXPECT_NEAR(sol.obj2, ref, 1e-3 * ref) << "trial " << trial;
    EXPECT_GE(sol.obj2, ref - 1e-3 * ref) << "solver below grid search";
  }
}

TEST(ExactSolver, SingleRowGridIsCapacity) {
  const CycleTimeGrid g(1, 4, {1, 2, 4, 8});
  const ExactSolution sol = solve_exact(g);
  EXPECT_NEAR(sol.obj2, 1.0 + 0.5 + 0.25 + 0.125, 1e-12);
  EXPECT_EQ(sol.trees_enumerated, 1u);
  EXPECT_EQ(sol.trees_acceptable, 1u);
  // The only spanning tree of K_{1,4} is all 4 edges.
  EXPECT_EQ(sol.tree.size(), 4u);
}

TEST(ExactSolver, ReportsTheWinningTree) {
  const CycleTimeGrid g(2, 2, {1, 2, 3, 5});
  const ExactSolution sol = solve_exact(g);
  ASSERT_EQ(sol.tree.size(), 3u);
  // The reported tree regenerates the reported allocation exactly.
  GridAllocation re;
  ASSERT_TRUE(propagate_tree(g, sol.tree, re));
  EXPECT_EQ(re.r, sol.alloc.r);
  EXPECT_EQ(re.c, sol.alloc.c);
  EXPECT_EQ(obj2_value(re), sol.obj2);
}

TEST(ExactSolver, DominatesHeuristicOnFixedArrangement) {
  Rng rng(63);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t p = 2 + rng.below(2), q = 2 + rng.below(2);
    const CycleTimeGrid g =
        CycleTimeGrid::sorted_row_major(p, q, rng.cycle_times(p * q, 0.05));
    const ExactSolution sol = solve_exact(g);
    const GridAllocation h = heuristic_allocation(g);
    EXPECT_GE(sol.obj2, obj2_value(h) - 1e-9) << "trial " << trial;
    const GridAllocation r1 = rank1_projection(g);
    EXPECT_GE(sol.obj2, obj2_value(r1) - 1e-9) << "trial " << trial;
  }
}

TEST(ExactSolver, SolutionIsAlwaysTight) {
  Rng rng(64);
  for (int trial = 0; trial < 40; ++trial) {
    const CycleTimeGrid g(3, 3, rng.cycle_times(9, 0.05));
    const ExactSolution sol = solve_exact(g);
    EXPECT_TRUE(is_feasible(g, sol.alloc, 1e-8)) << "trial " << trial;
    // The optimum saturates at least one constraint in every row/column:
    // otherwise a share could be scaled up, contradicting optimality.
    EXPECT_TRUE(is_tight(g, sol.alloc, 1e-8)) << "trial " << trial;
  }
}

TEST(ExactSolver, TreeCapGuard) {
  const CycleTimeGrid g(3, 3, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_THROW(solve_exact(g, 10), PreconditionError);
  EXPECT_EQ(exact_solver_cost(3, 3), 81u);
}

TEST(ExactSolver, ScaleInvarianceOfArgmax) {
  // Multiplying all cycle-times by s divides the objective by s and leaves
  // the chosen allocation equivalent up to the same scaling.
  Rng rng(65);
  const std::vector<double> t = rng.cycle_times(6, 0.05);
  std::vector<double> t2(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) t2[i] = 3.0 * t[i];
  const ExactSolution a = solve_exact(CycleTimeGrid(2, 3, t));
  const ExactSolution b = solve_exact(CycleTimeGrid(2, 3, t2));
  EXPECT_NEAR(a.obj2, 3.0 * b.obj2, 1e-9 * a.obj2);
}

}  // namespace
}  // namespace hetgrid
