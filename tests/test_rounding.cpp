// Tests for the largest-remainder rounding that converts rational shares
// into integer block counts (paper Section 4.1's scaling step).
#include <gtest/gtest.h>

#include <numeric>

#include "core/rounding.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace hetgrid {
namespace {

std::size_t sum_of(const std::vector<std::size_t>& v) {
  return std::accumulate(v.begin(), v.end(), std::size_t{0});
}

TEST(Rounding, ExactSharesStayExact) {
  const auto n = round_to_sum({0.25, 0.25, 0.5}, 8);
  EXPECT_EQ(n, (std::vector<std::size_t>{2, 2, 4}));
}

TEST(Rounding, SumAlwaysPreserved) {
  Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t k = 1 + rng.below(8);
    std::vector<double> shares(k);
    for (auto& s : shares) s = rng.uniform(0.0, 3.0);
    shares[rng.below(k)] += 0.5;  // ensure a positive entry
    const std::size_t total = rng.below(100);
    const auto n = round_to_sum(shares, total);
    EXPECT_EQ(sum_of(n), total) << "trial " << trial;
  }
}

TEST(Rounding, EachCountWithinOneOfExactShare) {
  Rng rng(32);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t k = 1 + rng.below(6);
    std::vector<double> shares(k);
    for (auto& s : shares) s = rng.uniform(0.01, 2.0);
    const std::size_t total = 1 + rng.below(200);
    const auto n = round_to_sum(shares, total);
    double sum = 0.0;
    for (double s : shares) sum += s;
    for (std::size_t i = 0; i < k; ++i) {
      const double exact = total * shares[i] / sum;
      EXPECT_LT(std::abs(static_cast<double>(n[i]) - exact), 1.0)
          << "trial " << trial << " index " << i;
    }
  }
}

TEST(Rounding, ZeroShareGetsZero) {
  const auto n = round_to_sum({0.0, 1.0, 1.0}, 9);
  EXPECT_EQ(n[0], 0u);
  EXPECT_EQ(sum_of(n), 9u);
}

TEST(Rounding, LargestRemainderWinsTheSpareUnit) {
  // Exact shares of 10 units: 3.3, 3.3, 3.4 -> remainders favor the last.
  const auto n = round_to_sum({0.33, 0.33, 0.34}, 10);
  EXPECT_EQ(n, (std::vector<std::size_t>{3, 3, 4}));
}

TEST(RoundingPositive, TinyShareStillGetsOneUnit) {
  const auto n = round_to_sum_positive({1e-6, 1.0, 1.0}, 10);
  EXPECT_GE(n[0], 1u);
  EXPECT_EQ(sum_of(n), 10u);
}

TEST(RoundingPositive, RebalanceTakesFromOverAllocated) {
  // Three tiny shares forced up to 1 each must pull units back from the
  // large one while keeping the total.
  const auto n = round_to_sum_positive({1e-9, 1e-9, 1e-9, 1.0}, 6);
  EXPECT_EQ(sum_of(n), 6u);
  EXPECT_GE(n[0], 1u);
  EXPECT_GE(n[1], 1u);
  EXPECT_GE(n[2], 1u);
  EXPECT_EQ(n[3], 3u);
}

TEST(RoundingPositive, BumpedEntryDoesNotDoubleDip) {
  // Exact scaled shares: 0.885, 2.557, 2.557. Entry 0 is bumped to the
  // minimum of 1 — already above its exact share — so the spare unit must
  // go to an entry still short of its share. Ranking the handout by raw
  // fractional part instead of deficit let entry 0 double-dip (counts
  // {2,2,2}, more than one unit over its exact share of 0.885).
  const auto n = round_to_sum_positive({0.45, 1.3, 1.3}, 6);
  EXPECT_EQ(n, (std::vector<std::size_t>{1, 3, 2}));
}

TEST(RoundingPositive, NoEntryExceedsItsExactShareByMoreThanOne) {
  // With the deficit-ordered handout, no entry ends more than one unit
  // above its exact scaled share: spare units only go to entries still
  // short of their share, and a minimum bump alone is at most one unit
  // over. (The old fractional-part ranking let a bumped entry double-dip
  // and land two units over. The other direction has no such bound: the
  // forced minimums can push counts far below large entries' shares.)
  Rng rng(34);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t k = 1 + rng.below(6);
    std::vector<double> shares(k);
    for (auto& s : shares) s = rng.uniform(0.001, 2.0);
    const std::size_t total = k + rng.below(100);
    const auto n = round_to_sum_positive(shares, total);
    double sum = 0.0;
    for (double s : shares) sum += s;
    for (std::size_t i = 0; i < k; ++i) {
      const double exact = static_cast<double>(total) * shares[i] / sum;
      EXPECT_LT(static_cast<double>(n[i]) - exact, 1.0 + 1e-9)
          << "trial " << trial << " index " << i;
    }
  }
}

TEST(RoundingPositive, InsufficientTotalThrows) {
  EXPECT_THROW(round_to_sum_positive({1.0, 1.0, 1.0}, 2), PreconditionError);
}

TEST(RoundingPositive, PropertySweep) {
  Rng rng(33);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t k = 1 + rng.below(6);
    std::vector<double> shares(k);
    for (auto& s : shares) s = rng.uniform(0.001, 2.0);
    const std::size_t total = k + rng.below(100);
    const auto n = round_to_sum_positive(shares, total);
    EXPECT_EQ(sum_of(n), total) << "trial " << trial;
    for (std::size_t c : n) EXPECT_GE(c, 1u) << "trial " << trial;
  }
}

TEST(Rounding, RejectsDegenerateInput) {
  EXPECT_THROW(round_to_sum({}, 5), PreconditionError);
  EXPECT_THROW(round_to_sum({0.0, 0.0}, 5), PreconditionError);
  EXPECT_THROW(round_to_sum({-1.0, 2.0}, 5), PreconditionError);
}

TEST(Rounding, PaperScalingScenario) {
  // Scaling the paper's first-step shares r = (1.1661, .3675, .2100) to a
  // panel of height 12: exact scaled values are (8.02, 2.53, 1.44); the
  // rounded counts must sum to 12 with each within one unit.
  const auto n = round_to_sum({1.1661, 0.3675, 0.2100}, 12);
  EXPECT_EQ(sum_of(n), 12u);
  EXPECT_EQ(n[0], 8u);
  EXPECT_TRUE(n[1] == 2 || n[1] == 3);
  EXPECT_TRUE(n[2] == 1 || n[2] == 2);
}

}  // namespace
}  // namespace hetgrid
