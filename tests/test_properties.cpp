// Cross-module property tests: the invariants DESIGN.md section 6 lists,
// swept over random instances and parameterized grid shapes.
#include <gtest/gtest.h>

#include <cmath>

#include "core/arrangement.hpp"
#include "core/exact_solver.hpp"
#include "core/heuristic.hpp"
#include "core/rank1_solver.hpp"
#include "core/rounding.hpp"
#include "dist/panel_distribution.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace hetgrid {
namespace {

struct Shape {
  std::size_t p, q;
};

class SolverChain : public ::testing::TestWithParam<Shape> {};

// Invariant 3: exact >= heuristic-allocation >= usable baselines, on the
// same (sorted) arrangement; everything feasible and tight.
TEST_P(SolverChain, ExactDominatesHeuristicDominatesNothingInfeasible) {
  const auto [p, q] = GetParam();
  Rng rng(1000 + p * 10 + q);
  for (int trial = 0; trial < 20; ++trial) {
    const CycleTimeGrid g =
        CycleTimeGrid::sorted_row_major(p, q, rng.cycle_times(p * q, 0.05));
    const ExactSolution ex = solve_exact(g);
    const GridAllocation heur = heuristic_allocation(g);
    const GridAllocation proj = rank1_projection(g);

    EXPECT_TRUE(is_feasible(g, ex.alloc, 1e-8));
    EXPECT_TRUE(is_feasible(g, heur, 1e-8));
    EXPECT_TRUE(is_feasible(g, proj, 1e-8));
    EXPECT_TRUE(is_tight(g, heur, 1e-8));
    EXPECT_TRUE(is_tight(g, proj, 1e-8));

    EXPECT_GE(ex.obj2, obj2_value(heur) - 1e-9) << "trial " << trial;
    EXPECT_LE(ex.obj2, obj2_upper_bound(g) * (1 + 1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SolverChain,
                         ::testing::Values(Shape{1, 1}, Shape{1, 4},
                                           Shape{2, 2}, Shape{2, 3},
                                           Shape{3, 3}, Shape{2, 4},
                                           Shape{4, 2}));

// Obj1/Obj2 duality: for a tight allocation, max_ij B_ij == 1, so
// obj1 == 1 / obj2.
TEST(Objectives, DualityAtTightAllocations) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t p = 1 + rng.below(4), q = 1 + rng.below(4);
    const CycleTimeGrid g(p, q, rng.cycle_times(p * q, 0.05));
    const GridAllocation a = heuristic_allocation(g);
    EXPECT_NEAR(obj1_value(g, a), 1.0 / obj2_value(a), 1e-9);
  }
}

// Determinism and input-order invariance of the full heuristic.
TEST(Heuristic, DeterministicAndPermutationInvariant) {
  Rng rng(12);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> pool = rng.cycle_times(9, 0.05);
    const HeuristicResult a = solve_heuristic(3, 3, pool);
    const HeuristicResult b = solve_heuristic(3, 3, pool);
    EXPECT_EQ(a.final().grid.row_major(), b.final().grid.row_major());
    EXPECT_EQ(a.final().obj2, b.final().obj2);

    rng.shuffle(pool);
    const HeuristicResult c = solve_heuristic(3, 3, pool);
    EXPECT_EQ(a.final().grid.row_major(), c.final().grid.row_major())
        << "pool order must not matter (sorted before arranging)";
  }
}

// Panel period counts: over m x m whole periods, every processor owns
// exactly m^2 * (row multiplicity x column multiplicity) blocks.
TEST(Panels, WholePeriodsScaleExactly) {
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t p = 1 + rng.below(3), q = 1 + rng.below(3);
    const CycleTimeGrid g(p, q, rng.cycle_times(p * q, 0.05));
    const GridAllocation a = rank1_projection(g);
    const std::size_t bp = p + rng.below(6), bq = q + rng.below(6);
    const PanelDistribution d = PanelDistribution::from_allocation(
        g, a, bp, bq, PanelOrder::kInterleaved, PanelOrder::kInterleaved,
        "periods");
    const std::size_t m = 1 + rng.below(4);
    const auto counts = blocks_per_processor(d, m * bp, m * bq);
    const auto rm = d.row_multiplicities();
    const auto cm = d.col_multiplicities();
    for (std::size_t i = 0; i < p; ++i)
      for (std::size_t j = 0; j < q; ++j)
        EXPECT_EQ(counts[i * q + j], m * m * rm[i] * cm[j])
            << "trial " << trial;
  }
}

// Invariant 5: rounding respects sums and per-entry error < 1 block.
TEST(Rounding, PanelAndMatrixScalesConsistent) {
  Rng rng(14);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t p = 2 + rng.below(4);
    const CycleTimeGrid g(p, p, rng.cycle_times(p * p, 0.05));
    const GridAllocation a = heuristic_allocation(g);
    for (std::size_t target : {p, 2 * p, 16 * p, 100 * p}) {
      // The >=1 floor variant preserves sums (its within-one guarantee is
      // deliberately traded away when tiny shares get forced up).
      const auto positive = round_to_sum_positive(a.r, target);
      std::size_t sum = 0;
      for (std::size_t c : positive) sum += c;
      EXPECT_EQ(sum, target);

      // The plain variant additionally keeps every count within one block
      // of its exact scaled share.
      const auto plain = round_to_sum(a.r, target);
      double share_sum = 0.0;
      for (double r : a.r) share_sum += r;
      sum = 0;
      for (std::size_t i = 0; i < p; ++i) {
        sum += plain[i];
        const double exact =
            static_cast<double>(target) * a.r[i] / share_sum;
        EXPECT_LT(std::abs(static_cast<double>(plain[i]) - exact), 1.0);
      }
      EXPECT_EQ(sum, target);
    }
  }
}

// Invariant 8: simulated makespans respect the solver ordering once the
// panel is fine enough for rounding noise to vanish.
TEST(EndToEnd, FinePanelsRealizeTheSolverObjective) {
  Rng rng(15);
  for (int trial = 0; trial < 10; ++trial) {
    const std::vector<double> pool = rng.cycle_times(4, 0.2);
    const HeuristicResult h = solve_heuristic(2, 2, pool);
    const std::size_t nb = 120;  // fine granularity
    const PanelDistribution d = PanelDistribution::from_allocation(
        h.final().grid, h.final().alloc, nb, nb, PanelOrder::kContiguous,
        PanelOrder::kContiguous, "fine");
    const Machine m{h.final().grid, NetworkModel::free()};
    const SimReport rep = simulate_mmm(m, d, nb);
    // Simulated utilization within a few percent of the solver's
    // predicted mean workload.
    EXPECT_NEAR(rep.average_utilization(), h.final().avg_workload, 0.03)
        << "trial " << trial;
  }
}

// The heuristic's final arrangement is always a valid rearrangement of
// the pool, and (empirically, tested here) non-decreasing arrangements
// emerge from refinement on every instance we feed it.
TEST(Heuristic, FinalArrangementIsPermutationOfPool) {
  Rng rng(16);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t p = 1 + rng.below(4), q = 1 + rng.below(4);
    std::vector<double> pool = rng.cycle_times(p * q, 0.05);
    const HeuristicResult h = solve_heuristic(p, q, pool);
    std::vector<double> got = h.final().grid.row_major();
    std::sort(got.begin(), got.end());
    std::sort(pool.begin(), pool.end());
    EXPECT_EQ(got, pool) << "trial " << trial;
  }
}

// Exact solver consistency under grid transposition: solving the
// transposed grid gives the same objective with r and c swapped.
TEST(ExactSolver, TransposeSymmetry) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t p = 1 + rng.below(3), q = 1 + rng.below(3);
    const std::vector<double> t = rng.cycle_times(p * q, 0.05);
    std::vector<double> tt(q * p);
    for (std::size_t i = 0; i < p; ++i)
      for (std::size_t j = 0; j < q; ++j) tt[j * p + i] = t[i * q + j];
    const ExactSolution a = solve_exact(CycleTimeGrid(p, q, t));
    const ExactSolution b = solve_exact(CycleTimeGrid(q, p, tt));
    EXPECT_NEAR(a.obj2, b.obj2, 1e-9 * a.obj2) << "trial " << trial;
  }
}

// Adding a processor (extending a 1 x q grid) never hurts the optimum.
TEST(ExactSolver, MoreProcessorsNeverWorse) {
  Rng rng(18);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> t = rng.cycle_times(3, 0.05);
    const ExactSolution small = solve_exact(CycleTimeGrid(1, 3, t));
    t.push_back(rng.uniform(0.05, 1.0));
    const ExactSolution large = solve_exact(CycleTimeGrid(1, 4, t));
    EXPECT_GE(large.obj2, small.obj2 - 1e-9) << "trial " << trial;
  }
}

// Theorem-1 adjacent-swap check on larger grids (full enumeration is
// infeasible, but any single adjacent swap away from the heuristic's
// non-decreasing-ish final arrangement shouldn't beat the *optimal*
// non-decreasing arrangement).
TEST(Theorem1, SwapsFromOptimalNeverImprove2x3) {
  Rng rng(19);
  for (int trial = 0; trial < 8; ++trial) {
    const std::vector<double> pool = rng.cycle_times(6, 0.05);
    const OptimalArrangement opt = solve_optimal_arrangement(2, 3, pool);
    std::vector<double> base = opt.grid.row_major();
    for (std::size_t a = 0; a < base.size(); ++a) {
      for (std::size_t b = a + 1; b < base.size(); ++b) {
        std::vector<double> swapped = base;
        std::swap(swapped[a], swapped[b]);
        const ExactSolution sol =
            solve_exact(CycleTimeGrid(2, 3, swapped));
        EXPECT_LE(sol.obj2, opt.solution.obj2 + 1e-9)
            << "trial " << trial << " swap " << a << "," << b;
      }
    }
  }
}

}  // namespace
}  // namespace hetgrid
