// Tests for the asynchronous message-passing runtime: the network timing
// model, the distributed block stores, and the MMM / LU kernels on top.
#include <gtest/gtest.h>

#include "core/heuristic.hpp"
#include "dist/kalinov_lastovetsky.hpp"
#include "dist/panel_distribution.hpp"
#include "matrix/cholesky.hpp"
#include "matrix/gemm.hpp"
#include "matrix/lu.hpp"
#include "matrix/norms.hpp"
#include "matrix/qr.hpp"
#include "mp/block_store.hpp"
#include "mp/mp_runtime.hpp"
#include "mp/virtual_network.hpp"
#include "runtime/virtual_runtime.hpp"
#include "util/rng.hpp"

namespace hetgrid {
namespace {

// ----------------------------------------------------- network

TEST(VirtualNetwork, TransferTimesAddLatencyAndVolume) {
  const NetworkModel net{Topology::kSwitched, 0.5, 0.1, true};
  VirtualNetwork vn(4, net);
  // 3 blocks: 0.5 + 3*0.1 = 0.8, starting at t=1.
  EXPECT_DOUBLE_EQ(vn.transfer(0, 1, 3, 1.0), 1.8);
}

TEST(VirtualNetwork, SenderSerializesItsMessages) {
  const NetworkModel net{Topology::kSwitched, 1.0, 0.0, true};
  VirtualNetwork vn(4, net);
  EXPECT_DOUBLE_EQ(vn.transfer(0, 1, 1, 0.0), 1.0);
  // Second send from 0 cannot start before the first finished.
  EXPECT_DOUBLE_EQ(vn.transfer(0, 2, 1, 0.0), 2.0);
  // A different sender is unaffected (switched network).
  EXPECT_DOUBLE_EQ(vn.transfer(3, 1, 1, 0.0), 2.0);  // waits on recv side
  EXPECT_DOUBLE_EQ(vn.transfer(3, 2, 1, 0.0), 3.0);  // 3's send side now busy
}

TEST(VirtualNetwork, EthernetSharesOneBus) {
  const NetworkModel net{Topology::kEthernet, 1.0, 0.0, true};
  VirtualNetwork vn(4, net);
  EXPECT_DOUBLE_EQ(vn.transfer(0, 1, 1, 0.0), 1.0);
  // Disjoint endpoints, but the bus is busy until t=1.
  EXPECT_DOUBLE_EQ(vn.transfer(2, 3, 1, 0.0), 2.0);
}

TEST(VirtualNetwork, SelfSendIsFree) {
  const NetworkModel net{Topology::kSwitched, 1.0, 1.0, true};
  VirtualNetwork vn(2, net);
  EXPECT_DOUBLE_EQ(vn.transfer(0, 0, 10, 3.5), 3.5);
  EXPECT_EQ(vn.messages_sent(), 0u);
}

TEST(VirtualNetwork, CountsTraffic) {
  const NetworkModel net = NetworkModel::free();
  VirtualNetwork vn(3, net);
  vn.transfer(0, 1, 4, 0.0);
  vn.transfer(1, 2, 6, 0.0);
  EXPECT_EQ(vn.messages_sent(), 2u);
  EXPECT_DOUBLE_EQ(vn.bytes_blocks_sent(), 10.0);
}

// ----------------------------------------------------- block store

TEST(BlockStore, PutGetRoundTrip) {
  BlockStore s;
  Matrix m(2, 2, 3.0);
  s.put({1, 2}, std::move(m));
  EXPECT_TRUE(s.contains({1, 2}));
  EXPECT_DOUBLE_EQ(s.at({1, 2})(0, 0), 3.0);
}

TEST(BlockStore, MissingBlockThrows) {
  BlockStore s;
  EXPECT_THROW(s.at({0, 0}), PreconditionError);
}

TEST(BlockStore, EraseRemovesCopy) {
  BlockStore s;
  s.put({0, 0}, Matrix(1, 1, 1.0));
  s.erase({0, 0});
  EXPECT_FALSE(s.contains({0, 0}));
  EXPECT_EQ(s.size(), 0u);
}

// ----------------------------------------------------- MP MMM

TEST(MpMmm, MatchesSequentialProduct) {
  const std::size_t n = 24, block = 6;
  Rng rng(31);
  Matrix a(n, n), b(n, n), c(n, n), ref(n, n, 0.0);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);
  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  const PanelDistribution d = PanelDistribution::from_counts(
      {3, 1}, {2, 1}, g, PanelOrder::kContiguous, PanelOrder::kContiguous,
      "het");
  const Machine m{g, {Topology::kSwitched, 1e-4, 2e-4, true}};
  const MpReport rep = run_mp_mmm(m, d, a.view(), b.view(), c.view(), block);
  gemm_reference(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.0,
                 ref.view());
  EXPECT_LT(max_abs_diff(c.view(), ref.view()), 1e-11);
  EXPECT_GT(rep.messages, 0u);
  EXPECT_GT(rep.makespan, 0.0);
}

TEST(MpMmm, CorrectUnderKalinovLastovetsky) {
  const std::size_t n = 28, block = 4;
  Rng rng(32);
  Matrix a(n, n), b(n, n), c(n, n), ref(n, n, 0.0);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);
  const CycleTimeGrid g(2, 2, {1, 2, 3, 5});
  const KalinovLastovetskyDistribution kl(g, {4, 7}, 61);
  const Machine m{g, NetworkModel::free()};
  run_mp_mmm(m, kl, a.view(), b.view(), c.view(), block);
  gemm_reference(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.0,
                 ref.view());
  EXPECT_LT(max_abs_diff(c.view(), ref.view()), 1e-11);
}

TEST(MpMmm, FreeNetworkMatchesBspComputeOnHomogeneousGrid) {
  // Homogeneous grid + free network: every step's compute is identical on
  // all processors, so the async makespan equals the BSP compute time.
  const std::size_t n = 16, block = 4;
  Rng rng(33);
  Matrix a(n, n), b(n, n), c(n, n);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);
  const CycleTimeGrid g(2, 2, std::vector<double>(4, 0.5));
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const Machine m{g, NetworkModel::free()};
  const MpReport mp = run_mp_mmm(m, d, a.view(), b.view(), c.view(), block);
  const SimReport bsp = simulate_mmm(m, d, n / block);
  EXPECT_NEAR(mp.makespan, bsp.compute_time, 1e-9);
}

TEST(MpMmm, AsyncNeverSlowerThanBspBound) {
  // Without barriers, the async makespan is at most the BSP makespan
  // (same work, same messages, fewer synchronization constraints) — up to
  // the slightly different broadcast accounting; we check compute-only.
  Rng rng(34);
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t n = 24, block = 4;
    Matrix a(n, n), b(n, n), c(n, n);
    fill_random(a.view(), rng);
    fill_random(b.view(), rng);
    const std::vector<double> pool = rng.cycle_times(4, 0.2);
    const CycleTimeGrid g = CycleTimeGrid::sorted_row_major(2, 2, pool);
    const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
    const Machine m{g, NetworkModel::free()};
    const MpReport mp =
        run_mp_mmm(m, d, a.view(), b.view(), c.view(), block);
    const SimReport bsp = simulate_mmm(m, d, n / block);
    EXPECT_LE(mp.makespan, bsp.total_time + 1e-9) << "trial " << trial;
  }
}

TEST(MpMmm, UtilizationBounded) {
  const std::size_t n = 16, block = 4;
  Rng rng(35);
  Matrix a(n, n), b(n, n), c(n, n);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);
  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const Machine m{g, {Topology::kEthernet, 1e-3, 1e-3, true}};
  const MpReport rep = run_mp_mmm(m, d, a.view(), b.view(), c.view(), block);
  EXPECT_GT(rep.average_utilization(), 0.0);
  EXPECT_LE(rep.average_utilization(), 1.0 + 1e-12);
}

// ----------------------------------------------------- MP LU

TEST(MpLu, MatchesSequentialNoPivotFactors) {
  const std::size_t n = 24, block = 4;
  Rng rng(41);
  Matrix orig(n, n);
  fill_diagonally_dominant(orig.view(), rng);
  Matrix seq(n, n), par(n, n);
  seq.view().copy_from(orig.view());
  par.view().copy_from(orig.view());
  ASSERT_TRUE(lu_factor_nopivot(seq.view()));

  const CycleTimeGrid g(2, 2, {1, 2, 3, 5});
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const Machine m{g, {Topology::kSwitched, 1e-4, 2e-4, true}};
  const MpReport rep = run_mp_lu(m, d, par.view(), block);
  EXPECT_TRUE(rep.factorized);
  EXPECT_LT(max_abs_diff(seq.view(), par.view()), 1e-10);
}

TEST(MpLu, HeterogeneousPanelDistribution) {
  const std::size_t n = 48, block = 6;
  Rng rng(42);
  Matrix orig(n, n);
  fill_diagonally_dominant(orig.view(), rng);
  Matrix a(n, n);
  a.view().copy_from(orig.view());

  const HeuristicResult h = solve_heuristic(2, 2, {1, 2, 3, 5});
  const PanelDistribution d = PanelDistribution::from_allocation(
      h.final().grid, h.final().alloc, 8, 8, PanelOrder::kContiguous,
      PanelOrder::kInterleaved, "het-lu");
  const Machine m{h.final().grid, NetworkModel::free()};
  const MpReport rep = run_mp_lu(m, d, a.view(), block);
  EXPECT_TRUE(rep.factorized);

  const Matrix prod = lu_reconstruct(a.view(), n);
  EXPECT_LT(max_abs_diff(prod.view(), orig.view()) / norm_max(orig.view()),
            1e-11);
}

TEST(MpLu, RejectsMisalignedDistribution) {
  const CycleTimeGrid g(2, 2, {1, 2, 3, 5});
  const KalinovLastovetskyDistribution kl(g, {4, 7}, 61);
  Matrix a(8, 8, 1.0);
  const Machine m{g, NetworkModel::free()};
  EXPECT_THROW(run_mp_lu(m, kl, a.view(), 2), PreconditionError);
}

TEST(MpLu, ReportsZeroPivot) {
  Matrix a(4, 4, 0.0);
  const Machine m{CycleTimeGrid(1, 1, {1.0}), NetworkModel::free()};
  const PanelDistribution d = PanelDistribution::block_cyclic(1, 1);
  EXPECT_FALSE(run_mp_lu(m, d, a.view(), 2).factorized);
}

TEST(MpLu, AsyncOverlapBeatsOrMatchesBsp) {
  // LU has real cross-step dependencies, but broadcast/compute overlap
  // still lets the async execution finish no later than the BSP model
  // under the same network costs.
  const std::size_t n = 32, block = 4;
  Rng rng(43);
  Matrix a(n, n);
  fill_diagonally_dominant(a.view(), rng);
  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const Machine m{g, {Topology::kSwitched, 1e-3, 1e-3, false}};
  const MpReport mp = run_mp_lu(m, d, a.view(), block);
  const SimReport bsp = simulate_lu(m, d, n / block);
  EXPECT_LE(mp.makespan, bsp.total_time * 1.05);
}

// ----------------------------------------------------- MP Cholesky

TEST(MpCholesky, MatchesSequentialBlockedFactors) {
  const std::size_t n = 24, block = 4;
  Rng rng(46);
  Matrix orig(n, n);
  fill_spd(orig.view(), rng);
  Matrix seq(n, n), par(n, n);
  seq.view().copy_from(orig.view());
  par.view().copy_from(orig.view());

  ASSERT_TRUE(cholesky_factor_blocked(seq.view(), block));
  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const Machine m{g, {Topology::kSwitched, 1e-4, 2e-4, true}};
  const MpReport rep = run_mp_cholesky(m, d, par.view(), block);
  EXPECT_TRUE(rep.factorized);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = j; i < n; ++i)
      EXPECT_NEAR(seq(i, j), par(i, j), 1e-10) << i << "," << j;
}

TEST(MpCholesky, HeterogeneousPanelReconstruction) {
  const std::size_t n = 48, block = 6;
  Rng rng(47);
  Matrix orig(n, n);
  fill_spd(orig.view(), rng);
  Matrix a(n, n);
  a.view().copy_from(orig.view());

  const HeuristicResult h = solve_heuristic(2, 2, {1, 2, 3, 5});
  const PanelDistribution d = PanelDistribution::from_allocation(
      h.final().grid, h.final().alloc, 8, 8, PanelOrder::kContiguous,
      PanelOrder::kInterleaved, "het-chol");
  const Machine m{h.final().grid, NetworkModel::free()};
  const MpReport rep = run_mp_cholesky(m, d, a.view(), block);
  ASSERT_TRUE(rep.factorized);

  const Matrix rec = cholesky_reconstruct(a.view());
  EXPECT_LT(max_abs_diff(rec.view(), orig.view()) / norm_max(orig.view()),
            1e-11);
}

TEST(MpCholesky, ReportsNonSpdInput) {
  Matrix a(6, 6, 0.0);
  for (std::size_t i = 0; i < 6; ++i) a(i, i) = -2.0;
  const Machine m{CycleTimeGrid(1, 1, {1.0}), NetworkModel::free()};
  const PanelDistribution d = PanelDistribution::block_cyclic(1, 1);
  EXPECT_FALSE(run_mp_cholesky(m, d, a.view(), 2).factorized);
}

TEST(MpCholesky, MovesFewerBlocksThanLu) {
  // Cholesky broadcasts one (symmetric) panel per step where LU moves two
  // distinct ones; with the same machine and matrix its traffic is lower.
  const std::size_t n = 32, block = 4;
  Rng rng(48);
  Matrix spd(n, n);
  fill_spd(spd.view(), rng);
  Matrix a_lu(n, n), a_ch(n, n);
  a_lu.view().copy_from(spd.view());
  a_ch.view().copy_from(spd.view());
  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const Machine m{g, NetworkModel::free()};
  const MpReport lu = run_mp_lu(m, d, a_lu.view(), block);
  const MpReport ch = run_mp_cholesky(m, d, a_ch.view(), block);
  EXPECT_LT(ch.blocks_moved, lu.blocks_moved);
}

// ----------------------------------------------------- MP QR

// Rebuilds Q * R from the packed factored form + tau and compares it to
// the original matrix.
double qr_reconstruction_error(const Matrix& orig, const Matrix& factored,
                               const std::vector<double>& tau) {
  const std::size_t rows = orig.rows(), cols = orig.cols();
  const Matrix qmat = qr_form_q(factored.view(), tau);
  Matrix r(cols, cols, 0.0);
  for (std::size_t j = 0; j < cols; ++j)
    for (std::size_t i = 0; i <= j; ++i) r(i, j) = factored.view()(i, j);
  Matrix prod(rows, cols, 0.0);
  gemm_reference(Trans::No, Trans::No, 1.0, qmat.view(), r.view(), 0.0,
                 prod.view());
  return max_abs_diff(prod.view(), orig.view()) / norm_max(orig.view());
}

TEST(MpQr, ReconstructsOriginalSquareMatrix) {
  const std::size_t n = 24, block = 4;
  Rng rng(61);
  Matrix orig(n, n);
  fill_random(orig.view(), rng);
  Matrix a(n, n);
  a.view().copy_from(orig.view());

  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const Machine m{g, {Topology::kSwitched, 1e-4, 2e-4, true}};
  const MpQrReport rep = run_mp_qr(m, d, a.view(), block);
  ASSERT_EQ(rep.tau.size(), n);
  EXPECT_LT(qr_reconstruction_error(orig, a, rep.tau), 1e-11);
  EXPECT_GT(rep.messages, 0u);
  EXPECT_GT(rep.makespan, 0.0);
}

TEST(MpQr, ReconstructsTallMatrix) {
  const std::size_t rows = 32, cols = 16, block = 4;
  Rng rng(62);
  Matrix orig(rows, cols);
  fill_random(orig.view(), rng);
  Matrix a(rows, cols);
  a.view().copy_from(orig.view());

  const CycleTimeGrid g(2, 2, {1, 2, 3, 5});
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const Machine m{g, NetworkModel::free()};
  const MpQrReport rep = run_mp_qr(m, d, a.view(), block);
  ASSERT_EQ(rep.tau.size(), cols);
  EXPECT_LT(qr_reconstruction_error(orig, a, rep.tau), 1e-11);
}

TEST(MpQr, HeterogeneousPanelDistribution) {
  const std::size_t n = 48, block = 6;
  Rng rng(63);
  Matrix orig(n, n);
  fill_random(orig.view(), rng);
  Matrix a(n, n);
  a.view().copy_from(orig.view());

  const HeuristicResult h = solve_heuristic(2, 2, {1, 2, 3, 5});
  const PanelDistribution d = PanelDistribution::from_allocation(
      h.final().grid, h.final().alloc, 8, 8, PanelOrder::kContiguous,
      PanelOrder::kInterleaved, "het-qr");
  const Machine m{h.final().grid, NetworkModel::free()};
  const MpQrReport rep = run_mp_qr(m, d, a.view(), block);
  EXPECT_LT(qr_reconstruction_error(orig, a, rep.tau), 1e-11);
}

TEST(MpQr, BitIdenticalAcrossThreadCounts) {
  const std::size_t n = 24, block = 4;
  Rng rng(64);
  Matrix orig(n, n);
  fill_random(orig.view(), rng);
  Matrix a1(n, n), a2(n, n);
  a1.view().copy_from(orig.view());
  a2.view().copy_from(orig.view());

  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const Machine m{g, {Topology::kSwitched, 1e-4, 2e-4, true}};
  RuntimeOptions serial, pooled;
  serial.threads = 1;
  pooled.threads = 3;
  const MpQrReport r1 =
      run_mp_qr(m, d, a1.view(), block, KernelCosts{}, nullptr, serial);
  const MpQrReport r2 =
      run_mp_qr(m, d, a2.view(), block, KernelCosts{}, nullptr, pooled);
  EXPECT_EQ(r1.tau, r2.tau);
  EXPECT_DOUBLE_EQ(r1.makespan, r2.makespan);
  EXPECT_EQ(max_abs_diff(a1.view(), a2.view()), 0.0);
}

TEST(MpQr, RejectsMisalignedDistribution) {
  const CycleTimeGrid g(2, 2, {1, 2, 3, 5});
  const KalinovLastovetskyDistribution kl(g, {4, 7}, 61);
  Matrix a(8, 8, 1.0);
  const Machine m{g, NetworkModel::free()};
  EXPECT_THROW(run_mp_qr(m, kl, a.view(), 2), PreconditionError);
}

TEST(MpQr, RejectsWideMatrix) {
  const CycleTimeGrid g(1, 1, {1.0});
  const PanelDistribution d = PanelDistribution::block_cyclic(1, 1);
  Matrix a(4, 8, 1.0);
  const Machine m{g, NetworkModel::free()};
  EXPECT_THROW(run_mp_qr(m, d, a.view(), 2), PreconditionError);
}

// ----------------------------------------------------- pipelining

TEST(MpPipelining, RingArrivalsAreMonotoneAlongTheRing) {
  // With one source and a hop cost, processors further along the ring see
  // the panel strictly later; the makespan reflects the last arrival.
  const NetworkModel net{Topology::kSwitched, 1.0, 0.0, true};
  const CycleTimeGrid g(1, 4, std::vector<double>(4, 1e-6));
  const PanelDistribution d = PanelDistribution::block_cyclic(1, 4);
  Matrix a(8, 8), b(8, 8), c(8, 8);
  Rng rng(51);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);
  const Machine m{g, net};
  const MpReport rep = run_mp_mmm(m, d, a.view(), b.view(), c.view(), 2);
  // 4 steps; each step's horizontal ring has 3 hops of latency 1. With
  // negligible compute, per-step critical path ~3; rings of consecutive
  // steps pipeline through the network, so the makespan sits between the
  // one-ring cost and the fully serialized bound.
  EXPECT_GE(rep.makespan, 3.0);
  EXPECT_LE(rep.makespan, 4.0 * 3.0 + 1.0);
}

TEST(MpPipelining, SlowNetworkDominatesMakespan) {
  const CycleTimeGrid g(2, 2, std::vector<double>(4, 1e-9));
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  Matrix a(16, 16), b(16, 16), c(16, 16);
  Rng rng(52);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);
  const Machine m{g, {Topology::kSwitched, 0.5, 0.5, true}};
  const MpReport rep = run_mp_mmm(m, d, a.view(), b.view(), c.view(), 4);
  double busy_total = 0.0;
  for (double x : rep.busy) busy_total += x;
  EXPECT_GT(rep.makespan, 100.0 * busy_total);  // pure comm regime
}

TEST(MpPipelining, EthernetSlowerThanSwitchedEndToEnd) {
  Rng rng(53);
  const CycleTimeGrid g(2, 2, rng.cycle_times(4, 0.2));
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  Matrix a(16, 16), b(16, 16), c(16, 16);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);
  const Machine sw{g, {Topology::kSwitched, 1e-2, 1e-2, true}};
  const Machine eth{g, {Topology::kEthernet, 1e-2, 1e-2, true}};
  const double t_sw =
      run_mp_mmm(sw, d, a.view(), b.view(), c.view(), 4).makespan;
  const double t_eth =
      run_mp_mmm(eth, d, a.view(), b.view(), c.view(), 4).makespan;
  EXPECT_GE(t_eth, t_sw);
}

TEST(MpPipelining, FasterProcessorsFinishEarlier) {
  // Async execution: the per-processor finish times reflect their load;
  // with block-cyclic on a heterogeneous grid the fast processor's clock
  // ends well below the slow one's.
  Rng rng(54);
  const CycleTimeGrid g(2, 2, {0.1, 0.1, 0.1, 1.0});
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  Matrix a(16, 16), b(16, 16), c(16, 16);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);
  const Machine m{g, NetworkModel::free()};
  const MpReport rep = run_mp_mmm(m, d, a.view(), b.view(), c.view(), 4);
  EXPECT_LT(rep.clock[0], rep.clock[3]);
  EXPECT_NEAR(rep.makespan, rep.clock[3], 1e-12);
}

TEST(MpLu, LookaheadPreservesNumericsAndNeverSlowsDown) {
  const std::size_t n = 48, block = 4;
  Rng rng(45);
  Matrix orig(n, n);
  fill_diagonally_dominant(orig.view(), rng);
  Matrix base(n, n), look(n, n);
  base.view().copy_from(orig.view());
  look.view().copy_from(orig.view());

  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const Machine m{g, {Topology::kSwitched, 1e-3, 1e-3, true}};
  const KernelCosts costs;
  const MpReport r_base = run_mp_lu(m, d, base.view(), block, costs, false);
  const MpReport r_look = run_mp_lu(m, d, look.view(), block, costs, true);

  // Identical arithmetic (only the virtual schedule differs).
  EXPECT_LT(max_abs_diff(base.view(), look.view()), 0.0 + 1e-15);
  // Same total work.
  for (std::size_t i = 0; i < r_base.busy.size(); ++i)
    EXPECT_NEAR(r_base.busy[i], r_look.busy[i], 1e-9);
  // Lookahead takes the panel off the critical path: never slower.
  EXPECT_LE(r_look.makespan, r_base.makespan + 1e-9);
}

TEST(MpLu, LookaheadHelpsWhenPanelOwnerIsLoaded) {
  // A grid whose fastest processor owns the panel column under
  // block-cyclic: the serial panel chain is the bottleneck, and deferring
  // the rest-updates shortens the makespan measurably.
  const std::size_t n = 64, block = 4;
  Rng rng(49);
  Matrix a1(n, n), a2(n, n);
  fill_diagonally_dominant(a1.view(), rng);
  a2.view().copy_from(a1.view());
  const CycleTimeGrid g(2, 2, {1.0, 1.0, 1.0, 1.0});
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const Machine m{g, NetworkModel::free()};
  const KernelCosts costs;
  const double t0 = run_mp_lu(m, d, a1.view(), block, costs, false).makespan;
  const double t1 = run_mp_lu(m, d, a2.view(), block, costs, true).makespan;
  EXPECT_LT(t1, t0);
}

TEST(MpLu, MessageTrafficScalesWithProblem) {
  Rng rng(44);
  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const Machine m{g, NetworkModel::free()};
  Matrix small(16, 16), large(32, 32);
  fill_diagonally_dominant(small.view(), rng);
  fill_diagonally_dominant(large.view(), rng);
  const MpReport r_small = run_mp_lu(m, d, small.view(), 4);
  const MpReport r_large = run_mp_lu(m, d, large.view(), 4);
  EXPECT_GT(r_large.messages, r_small.messages);
  EXPECT_GT(r_large.blocks_moved, r_small.blocks_moved);
}

}  // namespace
}  // namespace hetgrid
