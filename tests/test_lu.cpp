// Tests for the LU factorizations (unblocked, blocked right-looking,
// unpivoted) — the sequential reference kernels for the distributed runtime.
#include <gtest/gtest.h>

#include <tuple>

#include "matrix/gemm.hpp"
#include "matrix/lu.hpp"
#include "matrix/norms.hpp"
#include "util/rng.hpp"

namespace hetgrid {
namespace {

Matrix random_square(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, n);
  fill_random(m.view(), rng);
  return m;
}

double factorization_residual(const Matrix& original, const Matrix& packed,
                              const std::vector<std::size_t>& piv) {
  // || P*A - L*U ||_max relative to ||A||_max.
  Matrix pa(original.rows(), original.cols());
  pa.view().copy_from(original.view());
  lu_apply_pivots(piv, pa.view());
  const Matrix lu_prod = lu_reconstruct(packed.view(), packed.rows());
  return max_abs_diff(pa.view(), lu_prod.view()) /
         std::max(1.0, norm_max(original.view()));
}

// ----------------------------------------------------- unblocked

TEST(LuUnblocked, Factors2x2ByHand) {
  // A = [4 3; 6 3]: pivot swaps rows, L21 = 4/6, U = [6 3; 0 1].
  Matrix a(2, 2);
  a(0, 0) = 4.0;
  a(0, 1) = 3.0;
  a(1, 0) = 6.0;
  a(1, 1) = 3.0;
  const LuResult res = lu_factor_unblocked(a.view());
  EXPECT_FALSE(res.singular);
  EXPECT_EQ(res.piv[0], 1u);  // row 1 had the larger pivot
  EXPECT_DOUBLE_EQ(a(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 3.0);
  EXPECT_NEAR(a(1, 0), 2.0 / 3.0, 1e-15);
  EXPECT_NEAR(a(1, 1), 1.0, 1e-15);
}

TEST(LuUnblocked, ResidualSmallOnRandomMatrix) {
  const Matrix orig = random_square(40, 11);
  Matrix a(40, 40);
  a.view().copy_from(orig.view());
  const LuResult res = lu_factor_unblocked(a.view());
  EXPECT_FALSE(res.singular);
  EXPECT_LT(factorization_residual(orig, a, res.piv), 1e-11);
}

TEST(LuUnblocked, DetectsSingularMatrix) {
  Matrix a(3, 3, 1.0);  // rank 1
  const LuResult res = lu_factor_unblocked(a.view());
  EXPECT_TRUE(res.singular);
}

TEST(LuUnblocked, RectangularTallMatrix) {
  Rng rng(13);
  Matrix orig(8, 5);
  fill_random(orig.view(), rng);
  Matrix a(8, 5);
  a.view().copy_from(orig.view());
  const LuResult res = lu_factor_unblocked(a.view());
  EXPECT_FALSE(res.singular);
  EXPECT_LT(factorization_residual(orig, a, res.piv), 1e-12);
}

// ----------------------------------------------------- blocked

class LuBlockedSizes
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LuBlockedSizes, MatchesUnblockedResidual) {
  const auto [n, block] = GetParam();
  const Matrix orig = random_square(static_cast<std::size_t>(n),
                                    static_cast<std::uint64_t>(n * 31 + block));
  Matrix a(orig.rows(), orig.cols());
  a.view().copy_from(orig.view());
  const LuResult res =
      lu_factor_blocked(a.view(), static_cast<std::size_t>(block));
  EXPECT_FALSE(res.singular);
  EXPECT_LT(factorization_residual(orig, a, res.piv), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndBlocks, LuBlockedSizes,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(7, 2),
                      std::make_tuple(16, 4), std::make_tuple(33, 8),
                      std::make_tuple(64, 16), std::make_tuple(50, 64),
                      std::make_tuple(48, 7)));

TEST(LuBlocked, SameFactorsAsUnblocked) {
  // The blocked algorithm reorganizes the arithmetic but (with the same
  // pivot choices) produces the same packed factors up to roundoff.
  const Matrix orig = random_square(24, 17);
  Matrix a1(24, 24), a2(24, 24);
  a1.view().copy_from(orig.view());
  a2.view().copy_from(orig.view());
  const LuResult r1 = lu_factor_unblocked(a1.view());
  const LuResult r2 = lu_factor_blocked(a2.view(), 6);
  EXPECT_EQ(r1.piv, r2.piv);
  EXPECT_LT(max_abs_diff(a1.view(), a2.view()), 1e-11);
}

TEST(LuBlocked, RejectsZeroBlock) {
  Matrix a(4, 4, 1.0);
  EXPECT_THROW(lu_factor_blocked(a.view(), 0), PreconditionError);
}

// ----------------------------------------------------- solve

TEST(LuSolve, RecoverSolutionOfRandomSystem) {
  const std::size_t n = 30;
  const Matrix a_orig = random_square(n, 23);
  Rng rng(29);
  Matrix x_true(n, 2);
  fill_random(x_true.view(), rng);
  Matrix b(n, 2, 0.0);
  gemm(Trans::No, Trans::No, 1.0, a_orig.view(), x_true.view(), 0.0,
       b.view());

  Matrix lu(n, n);
  lu.view().copy_from(a_orig.view());
  const LuResult res = lu_factor_blocked(lu.view(), 8);
  lu_solve(lu.view(), res.piv, b.view());
  EXPECT_LT(max_abs_diff(b.view(), x_true.view()), 1e-9);
}

TEST(LuSolve, IdentityGivesRhs) {
  Matrix lu = Matrix::identity(5);
  const LuResult res = lu_factor_unblocked(lu.view());
  Matrix b(5, 1, 0.0);
  for (std::size_t i = 0; i < 5; ++i) b(i, 0) = static_cast<double>(i);
  Matrix expect(5, 1, 0.0);
  expect.view().copy_from(b.view());
  lu_solve(lu.view(), res.piv, b.view());
  EXPECT_LT(max_abs_diff(b.view(), expect.view()), 1e-15);
}

// ----------------------------------------------------- no-pivot

TEST(LuNoPivot, FactorsDiagonallyDominantMatrix) {
  Rng rng(41);
  Matrix orig(32, 32);
  fill_diagonally_dominant(orig.view(), rng);
  Matrix a(32, 32);
  a.view().copy_from(orig.view());
  EXPECT_TRUE(lu_factor_nopivot(a.view()));

  const Matrix prod = lu_reconstruct(a.view(), 32);
  EXPECT_LT(max_abs_diff(prod.view(), orig.view()) /
                norm_max(orig.view()),
            1e-12);
}

TEST(LuNoPivot, FailsOnZeroLeadingPivot) {
  Matrix a(2, 2, 0.0);
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  EXPECT_FALSE(lu_factor_nopivot(a.view()));
}

TEST(LuPivots, ApplyPivotsOutOfRangeThrows) {
  Matrix a(2, 2, 1.0);
  EXPECT_THROW(lu_apply_pivots({5}, a.view()), PreconditionError);
}

}  // namespace
}  // namespace hetgrid
