// Tests for the block distributions: homogeneous block-cyclic, the paper's
// heterogeneous block-panel scheme, and the Kalinov–Lastovetsky baseline.
#include <gtest/gtest.h>

#include "core/heuristic.hpp"
#include "core/rank1_solver.hpp"
#include "dist/distribution.hpp"
#include "dist/kalinov_lastovetsky.hpp"
#include "dist/panel_distribution.hpp"
#include "util/rng.hpp"

namespace hetgrid {
namespace {

// ----------------------------------------------------- block-cyclic

TEST(BlockCyclic, OwnershipIsModular) {
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 3);
  EXPECT_EQ(d.owner(0, 0), (ProcCoord{0, 0}));
  EXPECT_EQ(d.owner(1, 2), (ProcCoord{1, 2}));
  EXPECT_EQ(d.owner(2, 3), (ProcCoord{0, 0}));
  EXPECT_EQ(d.owner(5, 7), (ProcCoord{1, 1}));
  EXPECT_EQ(d.period_rows(), 2u);
  EXPECT_EQ(d.period_cols(), 3u);
}

TEST(BlockCyclic, HasGridCommunicationPattern) {
  const PanelDistribution d = PanelDistribution::block_cyclic(3, 4);
  const NeighborCensus census = neighbor_census(d);
  EXPECT_TRUE(census.grid_pattern());
  EXPECT_EQ(census.max_west_neighbors, 1u);
  EXPECT_EQ(census.max_north_neighbors, 1u);
}

TEST(BlockCyclic, EvenBlockCountsWhenDivisible) {
  const PanelDistribution d = PanelDistribution::block_cyclic(2, 2);
  const auto counts = blocks_per_processor(d, 8, 8);
  for (std::size_t c : counts) EXPECT_EQ(c, 16u);
}

// ----------------------------------------------------- panel (Figure 2)

TEST(Panel, PaperFigure2Layout) {
  // Grid {1,2;3,6}, panel B_p=4, B_q=3, rows split 3:1, columns 2:1.
  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  const PanelDistribution d = PanelDistribution::from_counts(
      {3, 1}, {2, 1}, g, PanelOrder::kContiguous, PanelOrder::kContiguous,
      "fig2");
  EXPECT_EQ(d.row_map(), (std::vector<std::size_t>{0, 0, 0, 1}));
  EXPECT_EQ(d.col_map(), (std::vector<std::size_t>{0, 0, 1}));

  // Figure 2's 10x10 value pattern: processor cycle-times at positions.
  const double expected_row0[] = {1, 1, 2, 1, 1, 2, 1, 1, 2, 1};
  const double expected_row3[] = {3, 3, 6, 3, 3, 6, 3, 3, 6, 3};
  for (std::size_t j = 0; j < 10; ++j) {
    const ProcCoord o0 = d.owner(0, j);
    const ProcCoord o3 = d.owner(3, j);
    EXPECT_DOUBLE_EQ(g(o0.row, o0.col), expected_row0[j]) << "col " << j;
    EXPECT_DOUBLE_EQ(g(o3.row, o3.col), expected_row3[j]) << "col " << j;
  }
}

TEST(Panel, Figure2PanelBalancesPerfectly) {
  // Within one 4x3 panel: 6/3/2/1 blocks at speeds 1/2/3/6 -> all busy 6.
  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  const PanelDistribution d = PanelDistribution::from_counts(
      {3, 1}, {2, 1}, g, PanelOrder::kContiguous, PanelOrder::kContiguous,
      "fig2");
  const auto counts = blocks_per_processor(d, 4, 3);
  EXPECT_EQ(counts, (std::vector<std::size_t>{6, 3, 2, 1}));
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j)
      EXPECT_DOUBLE_EQ(static_cast<double>(counts[i * 2 + j]) * g(i, j), 6.0);
}

TEST(Panel, GridPatternAlwaysHolds) {
  Rng rng(41);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t p = 1 + rng.below(4), q = 1 + rng.below(4);
    const CycleTimeGrid g(p, q, rng.cycle_times(p * q, 0.05));
    const GridAllocation a = rank1_projection(g);
    const PanelDistribution d = PanelDistribution::from_allocation(
        g, a, p + rng.below(12), q + rng.below(12),
        trial % 2 ? PanelOrder::kInterleaved : PanelOrder::kContiguous,
        trial % 3 ? PanelOrder::kInterleaved : PanelOrder::kContiguous,
        "trial");
    EXPECT_TRUE(neighbor_census(d).grid_pattern()) << "trial " << trial;
  }
}

TEST(Panel, Figure4LuColumnOrdering) {
  // Grid {1,2;3,5}, B_p=8 rows split 6:2 contiguous, B_q=6 columns split
  // 4:2 interleaved as ABAABA (Section 3.2.2).
  const CycleTimeGrid g(2, 2, {1, 2, 3, 5});
  const PanelDistribution d = PanelDistribution::from_counts(
      {6, 2}, {4, 2}, g, PanelOrder::kContiguous, PanelOrder::kInterleaved,
      "fig4");
  EXPECT_EQ(d.col_map(), (std::vector<std::size_t>{0, 1, 0, 0, 1, 0}));
  EXPECT_EQ(d.row_map(),
            (std::vector<std::size_t>{0, 0, 0, 0, 0, 0, 1, 1}));
  EXPECT_EQ(d.row_multiplicities(), (std::vector<std::size_t>{6, 2}));
  EXPECT_EQ(d.col_multiplicities(), (std::vector<std::size_t>{4, 2}));
}

TEST(Panel, FromAllocationRoundsSharesToPanel) {
  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  const GridAllocation a = rank1_projection(g);  // perfect: r 1:1/3, c 1:1/2
  const PanelDistribution d = PanelDistribution::from_allocation(
      g, a, 4, 3, PanelOrder::kContiguous, PanelOrder::kContiguous, "alloc");
  EXPECT_EQ(d.row_multiplicities(), (std::vector<std::size_t>{3, 1}));
  EXPECT_EQ(d.col_multiplicities(), (std::vector<std::size_t>{2, 1}));
}

TEST(Panel, RejectsRowWithoutSlots) {
  EXPECT_THROW(PanelDistribution(2, 2, {0, 0, 0}, {0, 1}, "bad"),
               PreconditionError);
}

TEST(Panel, SweepMakespanMatchesHandComputation) {
  const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
  const PanelDistribution bc = PanelDistribution::block_cyclic(2, 2);
  // 4x4 blocks, block-cyclic: every processor owns 4 blocks; the slowest
  // (t=6) dominates: makespan = 24.
  EXPECT_DOUBLE_EQ(sweep_makespan(bc, g, 4, 4), 24.0);

  const PanelDistribution het = PanelDistribution::from_counts(
      {3, 1}, {2, 1}, g, PanelOrder::kContiguous, PanelOrder::kContiguous,
      "het");
  // 12x12 blocks = 3x4 whole panels: counts scale to 72/36/24/12;
  // every processor busy 72 time units.
  EXPECT_DOUBLE_EQ(sweep_makespan(het, g, 12, 12), 72.0);
}

// ----------------------------------------------------- Kalinov–Lastovetsky

TEST(KalinovLastovetsky, PaperFigure3RowAndColumnSplits) {
  const CycleTimeGrid g(2, 2, {1, 2, 3, 5});
  const KalinovLastovetskyDistribution d(g, {4, 7}, 61);
  EXPECT_EQ(d.row_counts_of_column(0), (std::vector<std::size_t>{3, 1}));
  EXPECT_EQ(d.row_counts_of_column(1), (std::vector<std::size_t>{5, 2}));
  EXPECT_EQ(d.col_counts(), (std::vector<std::size_t>{40, 21}));
}

TEST(KalinovLastovetsky, ViolatesGridPatternOnNonRank1Grid) {
  const CycleTimeGrid g(2, 2, {1, 2, 3, 5});
  const KalinovLastovetskyDistribution d(g, {4, 7}, 61);
  const NeighborCensus census = neighbor_census(d);
  EXPECT_FALSE(census.grid_pattern());
  EXPECT_GE(census.max_west_neighbors, 2u);
}

TEST(KalinovLastovetsky, PerfectBalanceInTheRationalLimit) {
  // With periods equal to exact denominators, K–L balances perfectly:
  // every processor's share * its cycle-time is equal.
  const CycleTimeGrid g(2, 2, {1, 2, 3, 5});
  const KalinovLastovetskyDistribution d(g, {4, 7}, 61);
  // One full period: 28 block rows (lcm(4,7)) x 61 block columns.
  const auto counts = blocks_per_processor(d, 28, 61);
  std::vector<double> busy(4);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j)
      busy[i * 2 + j] = static_cast<double>(counts[i * 2 + j]) * g(i, j);
  for (double b : busy) EXPECT_NEAR(b, busy[0], 1e-9);
}

TEST(KalinovLastovetsky, PeriodIsLcmOfRowPeriods) {
  const CycleTimeGrid g(2, 2, {1, 2, 3, 5});
  const KalinovLastovetskyDistribution d(g, {4, 7}, 61);
  EXPECT_EQ(d.period_rows(), 28u);
  EXPECT_EQ(d.period_cols(), 61u);
}

TEST(KalinovLastovetsky, UniformGridDegeneratesToBlockCyclicPattern) {
  const CycleTimeGrid g(2, 2, std::vector<double>(4, 1.0));
  const KalinovLastovetskyDistribution d(g, 2, 2);
  const NeighborCensus census = neighbor_census(d);
  EXPECT_TRUE(census.grid_pattern());
}

TEST(KalinovLastovetsky, RejectsTooSmallPeriods) {
  const CycleTimeGrid g(2, 2, {1, 2, 3, 5});
  EXPECT_THROW(KalinovLastovetskyDistribution(g, 1, 4), PreconditionError);
  EXPECT_THROW(KalinovLastovetskyDistribution(g, 4, 1), PreconditionError);
}

// ----------------------------------------------------- census details

TEST(NeighborCensus, HeterogeneousPanelStillGridPattern) {
  // Non-rank-1 grid with imperfect balance must still keep the 4-neighbor
  // property — that is the whole point of the paper's constraint.
  const CycleTimeGrid g(2, 2, {1, 2, 3, 5});
  const HeuristicResult h = solve_heuristic(2, 2, {1, 2, 3, 5});
  const PanelDistribution d = PanelDistribution::from_allocation(
      h.final().grid, h.final().alloc, 8, 6, PanelOrder::kContiguous,
      PanelOrder::kInterleaved, "het-lu");
  EXPECT_TRUE(neighbor_census(d).grid_pattern());
}

TEST(NeighborCensus, SingleProcessorHasNoNeighbors) {
  const PanelDistribution d = PanelDistribution::block_cyclic(1, 1);
  const NeighborCensus census = neighbor_census(d);
  EXPECT_EQ(census.max_west_neighbors, 0u);
  EXPECT_EQ(census.max_north_neighbors, 0u);
}

}  // namespace
}  // namespace hetgrid
