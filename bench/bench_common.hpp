// Shared helpers for the figure/table regeneration harnesses.
//
// Every bench binary is a standalone executable with --flags (see util/cli)
// that prints an aligned table to stdout — the same rows/series the paper's
// corresponding figure or table reports — plus an optional CSV block for
// plotting. Benchmarks are deterministic for a fixed --seed.
#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/heuristic.hpp"
#include "matrix/gemm.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace hetgrid::bench {

/// Prints the standard provenance header every harness emits.
inline void print_header(const std::string& title, const Cli& cli) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "flags: " << cli.describe() << "\n\n";
}

/// Emits the table and, if requested, a trailing CSV copy.
inline void emit(const Table& table, const Cli& cli) {
  table.print(std::cout);
  if (cli.get_bool("csv")) {
    std::cout << "\n[csv]\n";
    table.print_csv(std::cout);
  }
  std::cout << std::endl;
}

/// Machine-readable bench output: one JSON object carrying the bench name,
/// the exact flag string it ran with, an `env` block describing the
/// machine/runtime configuration the numbers depend on, and a flat
/// `results` array — enough for plotting scripts and CI trend tracking
/// without a JSON dependency. Numbers are written with 17 significant
/// digits so doubles round-trip.
///
/// The env block always carries the detected gemm kernel
/// (gemm_kernel_name()), the thread configuration, and the scheduler, so
/// two reports can be checked for comparability before their numbers are
/// compared (bench_compare fails on an env mismatch — a scalar-kernel run
/// is not a regression baseline for an avx2 one). `threads` defaults to
/// the --threads flag when the bench declares one, `scheduler` to the
/// --scheduler flag; benches whose configuration lives elsewhere override
/// via env().
class JsonReport {
 public:
  JsonReport(std::string bench, const Cli& cli)
      : bench_(std::move(bench)), flags_(cli.describe()) {
    env_.emplace_back("gemm_kernel", gemm_kernel_name());
    env_.emplace_back("threads",
                      cli.has("threads") ? cli.get_string("threads") : "1");
    env_.emplace_back(
        "scheduler",
        cli.has("scheduler") ? cli.get_string("scheduler") : "none");
  }

  /// Overrides (or adds) one env entry; keys keep first-seen order.
  void env(const std::string& key, const std::string& value) {
    for (auto& [k, v] : env_)
      if (k == key) {
        v = value;
        return;
      }
    env_.emplace_back(key, value);
  }

  class Record {
   public:
    Record& field(const std::string& key, const std::string& value) {
      fields_.emplace_back(key, quote(value));
      return *this;
    }
    Record& field(const std::string& key, const char* value) {
      return field(key, std::string(value));
    }
    Record& field(const std::string& key, double value) {
      std::ostringstream os;
      os.precision(17);
      os << value;
      fields_.emplace_back(key, os.str());
      return *this;
    }

   private:
    friend class JsonReport;
    static std::string quote(const std::string& s) {
      std::string out = "\"";
      for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
              char buf[8];
              std::snprintf(buf, sizeof buf, "\\u%04x", c);
              out += buf;
            } else {
              out += c;
            }
        }
      }
      out += "\"";
      return out;
    }
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  /// Appends one result record; fill it with chained field() calls.
  Record& add() {
    records_.emplace_back();
    return records_.back();
  }

  void write(std::ostream& os) const {
    os << "{\n  \"bench\": " << Record::quote(bench_)
       << ",\n  \"flags\": " << Record::quote(flags_) << ",\n  \"env\": {";
    for (std::size_t i = 0; i < env_.size(); ++i) {
      if (i > 0) os << ", ";
      os << Record::quote(env_[i].first) << ": "
         << Record::quote(env_[i].second);
    }
    os << "},\n  \"results\": [";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      os << (i == 0 ? "\n" : ",\n") << "    {";
      const auto& fields = records_[i].fields_;
      for (std::size_t f = 0; f < fields.size(); ++f) {
        if (f > 0) os << ", ";
        os << Record::quote(fields[f].first) << ": " << fields[f].second;
      }
      os << "}";
    }
    os << "\n  ]\n}\n";
  }

  /// Writes to `path` (no-op on empty path) and announces the file.
  void write_file(const std::string& path) const {
    if (path.empty()) return;
    std::ofstream os(path);
    if (!os) {
      std::cerr << "cannot open " << path << " for writing\n";
      return;
    }
    write(os);
    std::cout << "wrote " << records_.size() << " records to " << path
              << "\n";
  }

 private:
  std::string bench_;
  std::string flags_;
  std::vector<std::pair<std::string, std::string>> env_;
  std::vector<Record> records_;
};

/// Statistics of the heuristic over `trials` random n x n pools with
/// cycle-times uniform in (0, 1] (the paper's Section 4.4.4 workload).
struct HeuristicSweepPoint {
  RunningStats avg_workload_first;   // mean(B) after the first step
  RunningStats avg_workload_final;   // mean(B) after convergence (Fig 6)
  RunningStats tau;                  // obj gain ratio - 1 (Fig 7)
  RunningStats iterations;           // steps to convergence (Fig 8)
  RunningStats converged;            // fraction reaching a fixed point
};

inline HeuristicSweepPoint run_heuristic_sweep(std::size_t n, int trials,
                                               Rng& rng) {
  HeuristicSweepPoint point;
  for (int t = 0; t < trials; ++t) {
    const HeuristicResult res =
        solve_heuristic(n, n, rng.cycle_times(n * n));
    point.avg_workload_first.add(res.first().avg_workload);
    point.avg_workload_final.add(res.final().avg_workload);
    point.tau.add(res.refinement_gain());
    point.iterations.add(static_cast<double>(res.iterations()));
    point.converged.add(res.converged ? 1.0 : 0.0);
  }
  return point;
}

}  // namespace hetgrid::bench

#include <memory>
#include <vector>

#include "core/arrangement.hpp"
#include "dist/kalinov_lastovetsky.hpp"
#include "dist/panel_distribution.hpp"
#include "sim/simulator.hpp"

namespace hetgrid::bench {

/// One competing data-distribution strategy, ready to simulate: the grid
/// arrangement it chose plus the block distribution it induces.
struct Strategy {
  std::string name;
  CycleTimeGrid grid;
  std::unique_ptr<Distribution2D> dist;
};

/// Builds the paper's competitors for one pool of p*q cycle-times:
///  - block-cyclic: ScaLAPACK's homogeneous distribution (the strawman the
///    abstract says runs at the slowest processor's speed);
///  - kalinov-lastovetsky: per-column 1D balancing, perfect balance but no
///    grid communication pattern;
///  - heuristic: this paper's SVD + refinement solver with a grid panel;
///  - exact: the spanning-tree optimum over non-decreasing arrangements
///    (only when the grid is small enough; `include_exact`).
/// Panel periods are `scale*p` x `scale*q`.
inline std::vector<Strategy> build_strategies(std::size_t p, std::size_t q,
                                              const std::vector<double>& pool,
                                              std::size_t scale,
                                              bool include_exact,
                                              PanelOrder col_order) {
  std::vector<Strategy> out;
  const CycleTimeGrid sorted = CycleTimeGrid::sorted_row_major(p, q, pool);

  out.push_back({"block-cyclic", sorted,
                 std::make_unique<PanelDistribution>(
                     PanelDistribution::block_cyclic(p, q))});

  out.push_back({"kalinov-lastovetsky", sorted,
                 std::make_unique<KalinovLastovetskyDistribution>(
                     sorted, scale * p, scale * q)});

  const HeuristicResult h = solve_heuristic(p, q, pool);
  out.push_back({"heuristic", h.final().grid,
                 std::make_unique<PanelDistribution>(
                     PanelDistribution::from_allocation(
                         h.final().grid, h.final().alloc, scale * p,
                         scale * q, PanelOrder::kContiguous, col_order,
                         "heuristic"))});

  if (include_exact) {
    const OptimalArrangement opt = solve_optimal_arrangement(p, q, pool);
    out.push_back({"exact", opt.grid,
                   std::make_unique<PanelDistribution>(
                       PanelDistribution::from_allocation(
                           opt.grid, opt.solution.alloc, scale * p,
                           scale * q, PanelOrder::kContiguous, col_order,
                           "exact"))});
  }
  return out;
}

/// Parses --network=free|switched|ethernet into a model.
inline NetworkModel parse_network(const std::string& name) {
  if (name == "free") return NetworkModel::free();
  if (name == "switched")
    return {Topology::kSwitched, 1.0e-4, 2.0e-4, true};
  if (name == "ethernet")
    return {Topology::kEthernet, 1.0e-4, 2.0e-4, true};
  HG_CHECK(false, "unknown --network value: " << name);
}

}  // namespace hetgrid::bench
