// Regenerates every worked example in the paper's text (Figures 1–5 and
// the Section 4.4.2–4.4.3 heuristic trace), printing the computed values
// next to the published ones with a PASS/FAIL verdict. This is the
// per-number reproduction record for the non-plot parts of the paper.
#include <iomanip>
#include <iostream>

#include "core/alloc1d.hpp"
#include "core/exact_solver.hpp"
#include "core/heuristic.hpp"
#include "core/rank1_solver.hpp"
#include "dist/distribution.hpp"
#include "dist/kalinov_lastovetsky.hpp"
#include "dist/panel_distribution.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

int g_failures = 0;

void check(hetgrid::Table& t, const std::string& what, double got,
           double expected, double tol) {
  const bool ok = std::abs(got - expected) <= tol;
  if (!ok) ++g_failures;
  t.row({what, hetgrid::Table::num(expected), hetgrid::Table::num(got),
         ok ? "PASS" : "FAIL"});
}

void check_str(hetgrid::Table& t, const std::string& what,
               const std::string& got, const std::string& expected) {
  const bool ok = got == expected;
  if (!ok) ++g_failures;
  t.row({what, expected, got, ok ? "PASS" : "FAIL"});
}

// Renders a grid as a single table-cell-friendly line: "1 2 3 | 4 5 6".
std::string flat(const hetgrid::CycleTimeGrid& g) {
  std::string out;
  for (std::size_t i = 0; i < g.rows(); ++i) {
    if (i > 0) out += " | ";
    for (std::size_t j = 0; j < g.cols(); ++j) {
      if (j > 0) out += ' ';
      out += std::to_string(static_cast<long long>(g(i, j)));
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hetgrid;
  const Cli cli(argc, argv, {{"csv", "0"}});
  std::cout << "=== Paper worked examples (Figures 1-5, Sections 3-4) ===\n\n";

  Table t;
  t.header({"quantity", "paper", "computed", "verdict"});

  // ---- Figure 1/2: rank-1 grid {1,2;3,6}, panel 4x3 ------------------
  {
    const CycleTimeGrid g(2, 2, {1, 2, 3, 6});
    const auto alloc = solve_rank1(g);
    check(t, "fig1: grid {1,2;3,6} is rank-1", alloc.has_value() ? 1 : 0, 1,
          0);
    const ExactSolution sol = solve_exact(g);
    check(t, "fig1: perfect balance obj2 == capacity", sol.obj2,
          obj2_upper_bound(g), 1e-12);

    const PanelDistribution d = PanelDistribution::from_allocation(
        g, *alloc, 4, 3, PanelOrder::kContiguous, PanelOrder::kContiguous,
        "fig2");
    const auto counts = blocks_per_processor(d, 4, 3);
    check(t, "fig1: P11 blocks per 4x3 panel", double(counts[0]), 6, 0);
    check(t, "fig1: P12 blocks per 4x3 panel", double(counts[1]), 3, 0);
    check(t, "fig1: P21 blocks per 4x3 panel", double(counts[2]), 2, 0);
    check(t, "fig1: P22 blocks per 4x3 panel", double(counts[3]), 1, 0);
    check(t, "fig2: 4-neighbor grid pattern",
          neighbor_census(d).grid_pattern() ? 1 : 0, 1, 0);
  }

  // ---- Section 3.1.2 counterexample {1,2;3,5} ------------------------
  {
    const CycleTimeGrid g(2, 2, {1, 2, 3, 5});
    check(t, "3.1.2: {1,2;3,5} not rank-1", g.is_rank_one() ? 1 : 0, 0, 0);
    const ExactSolution sol = solve_exact(g);
    check(t, "3.1.2: perfect balance impossible (obj2 < capacity)",
          sol.obj2 < obj2_upper_bound(g) - 1e-6 ? 1 : 0, 1, 0);
  }

  // ---- Figure 3: Kalinov-Lastovetsky on {1,2;3,5} --------------------
  {
    const CycleTimeGrid g(2, 2, {1, 2, 3, 5});
    const KalinovLastovetskyDistribution kl(g, {4, 7}, 61);
    check(t, "fig3: column 1 row split 3", double(kl.row_counts_of_column(0)[0]),
          3, 0);
    check(t, "fig3: column 1 row split 1", double(kl.row_counts_of_column(0)[1]),
          1, 0);
    check(t, "fig3: column 2 row split 5", double(kl.row_counts_of_column(1)[0]),
          5, 0);
    check(t, "fig3: column 2 row split 2", double(kl.row_counts_of_column(1)[1]),
          2, 0);
    check(t, "fig3: aggregate col-1 cycle-time (3/2)",
          aggregate_cycle_time({1.0, 3.0}) * 2.0, 1.5, 1e-12);
    check(t, "fig3: aggregate col-2 cycle-time (20/7)",
          aggregate_cycle_time({2.0, 5.0}) * 2.0, 20.0 / 7.0, 1e-12);
    check(t, "fig3: 40 of 61 columns to grid column 1",
          double(kl.col_counts()[0]), 40, 0);
    check(t, "fig3: 21 of 61 columns to grid column 2",
          double(kl.col_counts()[1]), 21, 0);
    const NeighborCensus c = neighbor_census(kl);
    check(t, "fig3: a processor has two west neighbors",
          double(c.max_west_neighbors), 2, 0);
    check(t, "fig3: grid pattern violated", c.grid_pattern() ? 1 : 0, 0, 0);
  }

  // ---- Figure 4: LU panel on {1,2;3,5}, B_p=8, B_q=6 -----------------
  {
    const CycleTimeGrid g(2, 2, {1, 2, 3, 5});
    check(t, "fig4: aggregate column A cycle-time (3/20)",
          aggregate_cycle_time({1, 1, 1, 1, 1, 1, 3, 3}), 3.0 / 20.0, 1e-12);
    check(t, "fig4: aggregate column B cycle-time (5/17)",
          aggregate_cycle_time({2, 2, 2, 2, 2, 2, 5, 5}), 5.0 / 17.0, 1e-12);
    const Alloc1dResult ord = allocate_1d({3.0 / 20.0, 5.0 / 17.0}, 6);
    std::string seq;
    for (std::size_t i : ord.order) seq += (i == 0 ? 'A' : 'B');
    check_str(t, "fig4: panel column ordering", seq, "ABAABA");
    check(t, "fig4: grid column A gets 4 panel columns",
          double(ord.counts[0]), 4, 0);
    check(t, "fig4: grid column B gets 2 panel columns",
          double(ord.counts[1]), 2, 0);

    const PanelDistribution d = PanelDistribution::from_counts(
        {6, 2}, {4, 2}, g, PanelOrder::kContiguous, PanelOrder::kInterleaved,
        "fig4");
    std::string cmap;
    for (std::size_t i : d.col_map()) cmap += (i == 0 ? 'A' : 'B');
    check_str(t, "fig4: panel distribution column map", cmap, "ABAABA");
  }

  // ---- Section 4.4.2: heuristic first step on T = 1..9 ----------------
  const HeuristicResult res =
      solve_heuristic(3, 3, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  {
    const HeuristicStep& s0 = res.first();
    const double r_paper[] = {1.1661, 0.3675, 0.2100};
    const double c_paper[] = {0.6803, 0.4288, 0.2859};
    for (int i = 0; i < 3; ++i)
      check(t, "4.4.2: r[" + std::to_string(i) + "]", s0.alloc.r[i],
            r_paper[i], 1.5e-4);
    for (int j = 0; j < 3; ++j)
      check(t, "4.4.2: c[" + std::to_string(j) + "]", s0.alloc.c[j],
            c_paper[j], 1.5e-4);
    check(t, "4.4.2: mean(B) = 0.8302", s0.avg_workload, 0.8302, 1.5e-4);
    check(t, "4.4.2: objective = 2.4322", s0.obj2, 2.4322, 1.5e-4);
  }

  // ---- Section 4.4.3: iterative refinement trace ----------------------
  {
    check(t, "4.4.3: step-2 objective = 2.5065", res.steps[1].obj2, 2.5065,
          1.5e-4);
    check_str(t, "4.4.3: step-2 arrangement", flat(res.steps[1].grid),
              "1 2 3 | 4 5 7 | 6 8 9");
    check(t, "4.4.3: converged objective = 2.5889", res.final().obj2, 2.5889,
          1.5e-4);
    check_str(t, "4.4.3: converged arrangement", flat(res.final().grid),
              "1 2 3 | 4 6 8 | 5 7 9");
    check(t, "4.4.3: refinement reached a fixed point",
          res.converged ? 1 : 0, 1, 0);
  }

  t.print(std::cout);
  if (cli.get_bool("csv")) {
    std::cout << "\n[csv]\n";
    t.print_csv(std::cout);
  }
  std::cout << "\n"
            << (g_failures == 0 ? "ALL CHECKS PASSED"
                                : "FAILURES: " + std::to_string(g_failures))
            << std::endl;
  return g_failures == 0 ? 0 : 1;
}
