// GFLOP/s harness for the local gemm microkernels (EXPERIMENTS.md §13):
// times C += A*B at sizes where the memory hierarchy actually bites
// (default n = 2048, well past every cache level) for each available
// microkernel (scalar, avx2) and a threaded configuration, and reports
// achieved GFLOP/s (2*n^3 flops over the best-of-reps wall clock).
//
// The dispatch contract is enforced, not just reported: every
// configuration's output matrix must match the serial scalar-kernel run
// bit for bit (the SIMD kernel uses separate mul+add vectors — never FMA —
// precisely so kernel choice can never change a computed bit, and the
// threaded overload assigns every output column to exactly one stripe).
//
// --smoke keeps n at the full 2048 (a smaller n would measure cache
// residency, not the kernel) but drops to one rep and the {scalar@1,
// avx2@1, avx2@2} configurations for CI.
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "matrix/gemm.hpp"
#include "matrix/norms.hpp"
#include "util/check.hpp"
#include "util/parallel_engine.hpp"

namespace {

using namespace hetgrid;

bool same_bits(const ConstMatrixView& a, const ConstMatrixView& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t j = 0; j < a.cols(); ++j) {
    for (std::size_t i = 0; i < a.rows(); ++i) {
      const double x = a(i, j), y = b(i, j);
      if (std::memcmp(&x, &y, sizeof(double)) != 0) return false;
    }
  }
  return true;
}

struct Config {
  std::string kernel;  // "scalar" or "avx2"
  unsigned threads;    // 1 = serial overload, >1 = ParallelEngine stripes
};

}  // namespace

int main(int argc, char** argv) {
  using namespace hetgrid;
  Cli cli(argc, argv,
          {{"n", "2048"}, {"reps", "3"}, {"threads", "1,2,4"},
           {"seed", "29"}, {"smoke", "0"}, {"csv", "0"},
           {"json", "BENCH_gemm.json"}});
  bench::print_header("Gemm microkernel throughput", cli);

  const bool smoke = cli.get_bool("smoke");
  const auto n = static_cast<std::size_t>(cli.get_int("n"));
  const int reps = smoke ? 1 : static_cast<int>(cli.get_int("reps"));
  HG_CHECK(n >= 1, "--n must be positive");

  const bool have_avx2 = gemm_force_kernel("avx2");
  gemm_force_kernel("auto");
  std::cout << "n = " << n << ", detected kernel: " << gemm_kernel_name()
            << (have_avx2 ? "" : " (avx2 unavailable — scalar rows only)")
            << "\n\n";

  // The serial scalar run is the bit-identity reference, so it always runs
  // first. Additional configurations: the SIMD kernel serial, then the
  // auto-dispatched kernel through the threaded-stripe overload.
  std::vector<Config> configs{{"scalar", 1}};
  if (have_avx2) configs.push_back({"avx2", 1});
  if (smoke) {
    if (have_avx2) configs.push_back({"avx2", 2});
  } else {
    for (double v : parse_positive_list(cli.get_string("threads"))) {
      const auto t = static_cast<unsigned>(v);
      if (t > 1) configs.push_back({have_avx2 ? "avx2" : "scalar", t});
    }
  }

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  Matrix a(n, n), b(n, n), c0(n, n);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);
  fill_random(c0.view(), rng);

  const double flops = 2.0 * static_cast<double>(n) *
                       static_cast<double>(n) * static_cast<double>(n);

  Table table;
  table.header({"kernel", "threads", "ms", "gflops", "identical"});
  bench::JsonReport json("bench_gemm_kernel", cli);

  Matrix ref(n, n);
  Matrix c(n, n);
  for (std::size_t idx = 0; idx < configs.size(); ++idx) {
    const Config& cfg = configs[idx];
    HG_CHECK(gemm_force_kernel(cfg.kernel),
             "kernel unavailable: " << cfg.kernel);
    double best_ms = 0.0;
    for (int r = 0; r < reps; ++r) {
      c.view().copy_from(c0.view());
      const auto t0 = std::chrono::steady_clock::now();
      if (cfg.threads == 1) {
        gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 1.0, c.view());
      } else {
        ParallelEngine engine(cfg.threads);
        gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 1.0, c.view(),
             engine);
      }
      const auto t1 = std::chrono::steady_clock::now();
      const double ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      if (r == 0 || ms < best_ms) best_ms = ms;
    }
    if (idx == 0) ref.view().copy_from(c.view());
    const bool identical = same_bits(c.view(), ref.view());
    HG_INTERNAL_CHECK(identical, cfg.kernel << " @ " << cfg.threads
                                            << " threads diverged from the "
                                               "serial scalar kernel");
    const double gflops = best_ms > 0.0 ? flops / (best_ms * 1e6) : 0.0;
    table.row({cfg.kernel, std::to_string(cfg.threads),
               Table::num(best_ms, 2), Table::num(gflops, 2),
               identical ? "yes" : "NO"});
    json.add()
        .field("kernel", cfg.kernel)
        .field("threads", static_cast<double>(cfg.threads))
        .field("n", static_cast<double>(n))
        .field("ms", best_ms)
        .field("gflops", gflops)
        .field("identical", identical ? "yes" : "no");
  }
  gemm_force_kernel("auto");

  bench::emit(table, cli);
  json.write_file(cli.get_string("json"));
  return 0;
}
