// Throughput/latency harness for the placement server (doc/server.md,
// EXPERIMENTS.md section 12): client threads hammer the serial loopback
// front end (handle_payload — the socket paths add only framing) through
// two phases per grid shape:
//
//   cold: every request carries a *fresh* pool, so every request misses
//         the canonicalizing cache and pays a real solve;
//   warm: the same pools return shuffled, so every request is a cache hit
//         answered without touching a solver.
//
// Reported per (shape, phase): qps over the phase wall clock and the
// p50/p95/p99 of the per-request latencies, plus the serve.cache hit/miss
// counter deltas. The mix is partitioned so the counters are exact for
// any client interleaving (no two clients share a cold key), and the
// harness enforces the cache contract: cold misses == requests, warm
// misses == 0, warm hits == requests.
//
// Latencies are wall clock and noisy (CI gates them with a generous
// threshold); the counters are deterministic and gated exactly
// (tools/ci.sh). --smoke shrinks the run to CI size.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "obs/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/check.hpp"

namespace {

using namespace hetgrid;
using Clock = std::chrono::steady_clock;

struct Shape {
  std::size_t p, q;
};

std::vector<Shape> parse_shapes(const std::string& csv) {
  std::vector<Shape> out;
  std::string cur;
  for (char c : csv + ",") {
    if (c != ',') {
      cur += c;
      continue;
    }
    if (cur.empty()) continue;
    const std::size_t x = cur.find('x');
    HG_CHECK(x != std::string::npos && x > 0 && x + 1 < cur.size(),
             "--shapes entries look like 2x3, got " << cur);
    out.push_back({static_cast<std::size_t>(std::stoul(cur.substr(0, x))),
                   static_cast<std::size_t>(std::stoul(cur.substr(x + 1)))});
    cur.clear();
  }
  HG_CHECK(!out.empty(), "--shapes must name at least one grid shape");
  return out;
}

/// Sorted-latency percentile: the ceil(q*n)-th smallest sample, in us.
double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t rank = static_cast<std::size_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(sorted.size()))));
  return sorted[std::min(rank, sorted.size()) - 1];
}

struct PhaseResult {
  double qps = 0.0;
  double p50_us = 0.0, p95_us = 0.0, p99_us = 0.0;
  std::uint64_t hits = 0, misses = 0;
};

/// Runs one phase: `clients` threads issue their slice of `payloads`
/// concurrently, per-request latencies are merged, and the cache counter
/// deltas for the phase are returned. Every reply must decode to a
/// kResponse — an error frame fails the bench.
PhaseResult run_phase(serve::PlacementServer& server, MetricsRegistry& metrics,
                      const std::vector<std::vector<std::uint8_t>>& payloads,
                      unsigned clients) {
  const std::uint64_t hits0 = metrics.counter("serve.cache.hits").value();
  const std::uint64_t misses0 = metrics.counter("serve.cache.misses").value();

  std::vector<std::vector<double>> latencies(clients);
  std::vector<bool> failed(clients, false);
  const auto begin = Clock::now();
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = t; i < payloads.size(); i += clients) {
        const auto t0 = Clock::now();
        const std::vector<std::uint8_t> reply =
            server.handle_payload(payloads[i]);
        const auto t1 = Clock::now();
        latencies[t].push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
        const serve::Decoded d = serve::decode_payload(reply);
        if (!d.ok() || d.type != serve::MsgType::kResponse) failed[t] = true;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  const double total_s =
      std::chrono::duration<double>(Clock::now() - begin).count();
  for (unsigned t = 0; t < clients; ++t)
    HG_CHECK(!failed[t], "a bench request was answered with an error frame");

  std::vector<double> merged;
  for (const std::vector<double>& l : latencies)
    merged.insert(merged.end(), l.begin(), l.end());
  std::sort(merged.begin(), merged.end());

  PhaseResult res;
  res.qps = total_s > 0.0 ? static_cast<double>(merged.size()) / total_s : 0.0;
  res.p50_us = percentile(merged, 0.50);
  res.p95_us = percentile(merged, 0.95);
  res.p99_us = percentile(merged, 0.99);
  res.hits = metrics.counter("serve.cache.hits").value() - hits0;
  res.misses = metrics.counter("serve.cache.misses").value() - misses0;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hetgrid;
  Cli cli(argc, argv,
          {{"shapes", "2x2,2x3,3x3,4x4"}, {"requests", "512"},
           {"clients", "4"}, {"threads", "2"}, {"seed", "42"}, {"smoke", "0"},
           {"csv", "0"}, {"json", "BENCH_server.json"}});
  bench::print_header("Placement server throughput — cold vs warm cache", cli);

  const bool smoke = cli.get_bool("smoke");
  const std::vector<Shape> shapes =
      parse_shapes(smoke ? "2x2,2x3,3x3" : cli.get_string("shapes"));
  const std::size_t requests =
      smoke ? 64 : static_cast<std::size_t>(cli.get_int("requests"));
  const auto clients = static_cast<unsigned>(cli.get_int("clients"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  HG_CHECK(clients >= 1 && requests >= clients,
           "--clients must be >= 1 and --requests >= --clients");

  serve::ServerOptions opts;
  opts.threads = static_cast<unsigned>(cli.get_int("threads"));

  Table table;
  table.header({"shape", "phase", "requests", "qps", "p50_us", "p95_us",
                "p99_us", "hits", "misses"});
  bench::JsonReport json("bench_server_throughput", cli);

  MetricsRegistry metrics;
  MetricsRegistry* prev = install_metrics(&metrics);
  for (const Shape& shape : shapes) {
    // One fresh server per shape: cold numbers must not see earlier shapes'
    // entries, and the pool partition below keeps counters exact.
    serve::PlacementServer server(opts);
    Rng rng(seed ^ (shape.p * 131 + shape.q));

    // Cold mix: `requests` distinct pools, one request each.
    std::vector<std::vector<double>> pools;
    std::vector<std::vector<std::uint8_t>> cold;
    pools.reserve(requests);
    cold.reserve(requests);
    for (std::size_t i = 0; i < requests; ++i) {
      pools.push_back(rng.cycle_times(shape.p * shape.q));
      serve::PlacementRequest req;
      req.p = static_cast<std::uint16_t>(shape.p);
      req.q = static_cast<std::uint16_t>(shape.q);
      req.times = pools.back();
      cold.push_back(serve::encode_request(req));
    }
    // Warm mix: the same pools, shuffled layouts — all canonical hits.
    std::vector<std::vector<std::uint8_t>> warm;
    warm.reserve(requests);
    for (std::size_t i = 0; i < requests; ++i) {
      std::vector<double> times = pools[i];
      rng.shuffle(times);
      serve::PlacementRequest req;
      req.p = static_cast<std::uint16_t>(shape.p);
      req.q = static_cast<std::uint16_t>(shape.q);
      req.times = std::move(times);
      warm.push_back(serve::encode_request(req));
    }

    const std::string shape_name =
        std::to_string(shape.p) + "x" + std::to_string(shape.q);
    const PhaseResult results[2] = {
        run_phase(server, metrics, cold, clients),
        run_phase(server, metrics, warm, clients)};
    server.drain();  // async refinements (heuristic shapes) finish here

    // The cache contract this bench certifies: a cold mix is all misses, a
    // warm mix is all hits.
    HG_INTERNAL_CHECK(results[0].misses == requests && results[0].hits == 0,
                      shape_name << " cold phase was not all misses");
    HG_INTERNAL_CHECK(results[1].hits == requests && results[1].misses == 0,
                      shape_name << " warm phase was not all hits");

    for (int phase = 0; phase < 2; ++phase) {
      const PhaseResult& r = results[phase];
      const char* phase_name = phase == 0 ? "cold" : "warm";
      table.row({shape_name, phase_name,
                 std::to_string(requests), Table::num(r.qps, 0),
                 Table::num(r.p50_us, 1), Table::num(r.p95_us, 1),
                 Table::num(r.p99_us, 1),
                 std::to_string(r.hits), std::to_string(r.misses)});
      json.add()
          .field("shape", shape_name)
          .field("phase", phase_name)
          .field("requests", static_cast<double>(requests))
          .field("clients", static_cast<double>(clients))
          .field("qps", r.qps)
          .field("p50_us", r.p50_us)
          .field("p95_us", r.p95_us)
          .field("p99_us", r.p99_us)
          .field("hits", static_cast<double>(r.hits))
          .field("misses", static_cast<double>(r.misses));
    }
  }
  install_metrics(prev);

  bench::emit(table, cli);
  json.write_file(cli.get_string("json"));
  return 0;
}
