// Scaling harness for the branch-and-bound exact solver (the EXPERIMENTS.md
// table): for each grid size it times the exhaustive enumeration, the serial
// branch-and-bound, and the parallel prefix-split search at several thread
// counts, and reports the node/prune counters. The parallel rows must agree
// with the serial ones on every counter — the run asserts it — so the only
// column allowed to move with --threads is wall-clock time.
#include <chrono>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/exact_solver.hpp"
#include "graph/spanning_tree.hpp"
#include "util/check.hpp"

namespace {

using namespace hetgrid;

double time_solve(const CycleTimeGrid& grid, const ExactSolverOptions& opts,
                  int reps, ExactSolution& out) {
  // One warm-up solve, then the best of `reps` timed runs (the searches are
  // deterministic, so min is the right estimator against scheduler noise).
  out = solve_exact(grid, opts);
  double best_ms = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const ExactSolution sol = solve_exact(grid, opts);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (r == 0 || ms < best_ms) best_ms = ms;
    HG_INTERNAL_CHECK(sol.obj2 == out.obj2 && sol.nodes_visited == out.nodes_visited,
                      "exact solver is not deterministic across runs");
  }
  return best_ms;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hetgrid;
  const Cli cli(argc, argv,
                {{"max-size", "5"}, {"reps", "3"}, {"seed", "29"},
                 {"threads", "1,2,4"}, {"csv", "0"},
                 {"json", "BENCH_exact.json"}});
  bench::print_header("Exact solver scaling — exhaustive vs branch-and-bound",
                      cli);

  const auto max_size = static_cast<std::size_t>(cli.get_int("max-size"));
  const int reps = static_cast<int>(cli.get_int("reps"));
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));

  std::vector<unsigned> thread_counts;
  for (double v : parse_positive_list(cli.get_string("threads")))
    thread_counts.push_back(static_cast<unsigned>(v));

  Table table;
  table.header({"grid", "trees", "mode", "threads", "ms", "nodes", "leaves",
                "pruned", "speedup_vs_serial"});
  bench::JsonReport json("bench_exact_scaling", cli);
  const auto record = [&json](const std::string& shape, const char* mode,
                              unsigned threads, double ms,
                              const ExactSolution& sol, double speedup) {
    json.add()
        .field("grid", shape)
        .field("mode", mode)
        .field("threads", static_cast<double>(threads))
        .field("ms", ms)
        .field("nodes", static_cast<double>(sol.nodes_visited))
        .field("leaves", static_cast<double>(sol.trees_enumerated))
        .field("pruned", static_cast<double>(sol.subtrees_pruned))
        .field("speedup_vs_serial", speedup);
  };
  const std::vector<std::pair<std::size_t, std::size_t>> sizes = {
      {3, 3}, {3, 4}, {4, 4}, {4, 5}, {5, 5}, {5, 6}};
  for (const auto& [p, q] : sizes) {
    if (p > max_size || q > max_size + 1) continue;
    const CycleTimeGrid grid =
        CycleTimeGrid::sorted_row_major(p, q, rng.cycle_times(p * q, 0.05));
    const std::string shape = std::to_string(p) + "x" + std::to_string(q);
    const double trees = static_cast<double>(spanning_tree_count(p, q));

    ExactSolution serial;
    ExactSolverOptions serial_opts;
    const double serial_ms = time_solve(grid, serial_opts, reps, serial);

    ExactSolution full;
    ExactSolverOptions full_opts;
    full_opts.prune = false;
    const double full_ms = time_solve(grid, full_opts, reps, full);
    HG_INTERNAL_CHECK(full.trees_enumerated == spanning_tree_count(p, q),
                      "exhaustive mode must evaluate every spanning tree");
    table.row({shape, Table::num(trees, 0), "exhaustive", "1",
               Table::num(full_ms, 2),
               Table::num(static_cast<double>(full.nodes_visited), 0),
               Table::num(static_cast<double>(full.trees_enumerated), 0), "0",
               Table::num(serial_ms > 0.0 ? full_ms / serial_ms : 0.0, 2)});
    record(shape, "exhaustive", 1, full_ms, full,
           serial_ms > 0.0 ? full_ms / serial_ms : 0.0);
    table.row({shape, Table::num(trees, 0), "b&b", "1",
               Table::num(serial_ms, 2),
               Table::num(static_cast<double>(serial.nodes_visited), 0),
               Table::num(static_cast<double>(serial.trees_enumerated), 0),
               Table::num(static_cast<double>(serial.subtrees_pruned), 0),
               "1.00"});
    record(shape, "b&b", 1, serial_ms, serial, 1.0);

    for (unsigned threads : thread_counts) {
      if (threads <= 1) continue;
      ExactSolution par;
      ExactSolverOptions par_opts;
      par_opts.threads = threads;
      const double par_ms = time_solve(grid, par_opts, reps, par);
      HG_INTERNAL_CHECK(
          par.obj2 == serial.obj2 && par.alloc.r == serial.alloc.r &&
              par.alloc.c == serial.alloc.c && par.tree == serial.tree &&
              par.nodes_visited == serial.nodes_visited &&
              par.trees_enumerated == serial.trees_enumerated &&
              par.trees_acceptable == serial.trees_acceptable &&
              par.subtrees_pruned == serial.subtrees_pruned,
          "parallel search diverged from the serial result");
      table.row({shape, Table::num(trees, 0), "b&b",
                 std::to_string(threads), Table::num(par_ms, 2),
                 Table::num(static_cast<double>(par.nodes_visited), 0),
                 Table::num(static_cast<double>(par.trees_enumerated), 0),
                 Table::num(static_cast<double>(par.subtrees_pruned), 0),
                 Table::num(par_ms > 0.0 ? serial_ms / par_ms : 0.0, 2)});
      record(shape, "b&b", threads, par_ms, par,
             par_ms > 0.0 ? serial_ms / par_ms : 0.0);
    }
  }
  bench::emit(table, cli);
  json.write_file(cli.get_string("json"));
  return 0;
}
