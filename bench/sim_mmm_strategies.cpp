// Strategy comparison for the outer-product matrix multiplication on a
// simulated heterogeneous NOW — the experiment behind the abstract's claim
// that the uniform block-cyclic distribution "limits the performance ... to
// the speed of the slowest processor" while the paper's allocation tracks
// the machine's aggregate capacity.
//
// For each grid shape, `trials` random machines (cycle-times ~ U(eps,1])
// are simulated under every strategy; the table reports the mean slowdown
// relative to the perfect-balance zero-communication bound (1.0 = optimal)
// and the mean processor utilization.
#include "bench/bench_common.hpp"
#include "obs/utilization.hpp"

int main(int argc, char** argv) {
  using namespace hetgrid;
  const Cli cli(argc, argv,
                {{"trials", "20"},
                 {"scale", "8"},
                 {"nbfactor", "8"},
                 {"seed", "7"},
                 {"network", "switched"},
                 {"csv", "0"}});
  bench::print_header("Simulated MMM on a heterogeneous NOW — strategies",
                      cli);

  const NetworkModel net = bench::parse_network(cli.get_string("network"));
  const std::size_t scale = static_cast<std::size_t>(cli.get_int("scale"));
  const int trials = static_cast<int>(cli.get_int("trials"));
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));

  struct Shape {
    std::size_t p, q;
    bool exact;
  };
  const Shape shapes[] = {{2, 2, true}, {2, 4, true}, {3, 3, true},
                          {4, 4, false}, {4, 6, false}};

  Table table;
  table.header({"grid", "strategy", "slowdown_vs_perfect", "ci95",
                "utilization", "comm_frac", "min_util", "idle_frac"});
  for (const Shape& s : shapes) {
    const std::size_t nb =
        static_cast<std::size_t>(cli.get_int("nbfactor")) * s.p * s.q;
    std::map<std::string, RunningStats> slowdown, util, comm_frac,
        min_util, idle_frac;
    for (int trial = 0; trial < trials; ++trial) {
      const std::vector<double> pool = rng.cycle_times(s.p * s.q);
      const auto strategies = bench::build_strategies(
          s.p, s.q, pool, scale, s.exact, PanelOrder::kContiguous);
      for (const auto& st : strategies) {
        const Machine m{st.grid, net};
        MemoryTraceSink sink;
        const SimReport rep =
            simulate_mmm(m, *st.dist, nb, KernelCosts{}, &sink);
        slowdown[st.name].add(rep.slowdown_vs_perfect());
        util[st.name].add(rep.average_utilization());
        comm_frac[st.name].add(rep.comm_time / rep.total_time);
        const TraceSummary sum =
            summarize_trace(sink.events(), s.p * s.q, rep.total_time);
        min_util[st.name].add(min_utilization(sum));
        idle_frac[st.name].add(mean_idle_fraction(sum));
      }
    }
    const std::string grid_name =
        std::to_string(s.p) + "x" + std::to_string(s.q);
    for (const char* name :
         {"block-cyclic", "kalinov-lastovetsky", "heuristic", "exact"}) {
      auto it = slowdown.find(name);
      if (it == slowdown.end()) continue;
      table.row({grid_name, name, Table::num(it->second.mean(), 3),
                 Table::num(it->second.ci95_halfwidth(), 3),
                 Table::num(util[name].mean(), 3),
                 Table::num(comm_frac[name].mean(), 3),
                 Table::num(min_util[name].mean(), 3),
                 Table::num(idle_frac[name].mean(), 3)});
    }
  }
  bench::emit(table, cli);
  return 0;
}
