// Ablation: rank-1-approximate T^inv (the paper's choice, Section 4.4.2)
// versus T directly. The paper argues for T^inv because the l2 fit then
// favours the large entries of T^inv — the *fast* processors, which carry
// most of the work. This bench measures the achieved objective (relative
// to the capacity bound) for both choices over random pools.
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace hetgrid;
  const Cli cli(argc, argv,
                {{"nmin", "2"},
                 {"nmax", "8"},
                 {"trials", "60"},
                 {"seed", "37"},
                 {"csv", "0"}});
  bench::print_header(
      "SVD-target ablation — approximate T^inv (paper) vs T directly", cli);

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  const int trials = static_cast<int>(cli.get_int("trials"));

  Table table;
  table.header({"n", "obj/capacity (T^inv)", "obj/capacity (T)",
                "T^inv wins_frac", "mean_gain_pct"});
  for (std::int64_t n = cli.get_int("nmin"); n <= cli.get_int("nmax"); ++n) {
    RunningStats eff_inv, eff_direct, wins, gain;
    for (int t = 0; t < trials; ++t) {
      const std::vector<double> pool =
          rng.cycle_times(static_cast<std::size_t>(n * n));
      HeuristicOptions inv_opts, direct_opts;
      direct_opts.approximate_inverse = false;
      const HeuristicResult a = solve_heuristic(
          static_cast<std::size_t>(n), static_cast<std::size_t>(n), pool,
          inv_opts);
      const HeuristicResult b = solve_heuristic(
          static_cast<std::size_t>(n), static_cast<std::size_t>(n), pool,
          direct_opts);
      const double cap = obj2_upper_bound(a.final().grid);
      eff_inv.add(a.final().obj2 / cap);
      eff_direct.add(b.final().obj2 / cap);
      wins.add(a.final().obj2 >= b.final().obj2 ? 1.0 : 0.0);
      gain.add(100.0 * (a.final().obj2 - b.final().obj2) / b.final().obj2);
    }
    table.row({Table::num(n), Table::num(eff_inv.mean(), 4),
               Table::num(eff_direct.mean(), 4), Table::num(wins.mean(), 2),
               Table::num(gain.mean(), 2)});
  }
  bench::emit(table, cli);
  return 0;
}
