// bench_compare: regression gate over two JsonReport files (the BENCH_*.json
// emitted by the bench harnesses via bench_common.hpp's JsonReport).
//
// Modes:
//   bench_compare --base=old.json --new=new.json [--key=ms]
//                 [--threshold=0.2] [--inject=1.0]
//     Match the reports' `env` blocks (gemm kernel, threads, scheduler —
//     keys present in both must agree, so numbers from different machine
//     configurations are never compared), then match records pairwise
//     (same order, same string-valued fields) and fail (exit 1) if any new
//     `--key` value exceeds its base value by more than `--threshold`
//     (relative). `--inject` multiplies the new values first — CI uses it
//     to prove the gate actually fires.
//
//   bench_compare --check-schema=run.json --schema=baseline.json
//     Validate a bench output against a committed baseline schema
//     ({"bench": "...", "required": ["field", ...]}): the bench name must
//     match, the report must carry an `env` block with the standard keys,
//     and every result record must carry every required field. This keeps
//     the machine-readable format stable without pinning timings.
//
// The parser below reads exactly the restricted JSON that JsonReport
// writes (objects, arrays, strings with the escapes quote() emits, and
// plain numbers) — no external JSON dependency.
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "util/check.hpp"
#include "util/cli.hpp"

namespace hetgrid::bench {
namespace {

struct Value {
  enum class Kind { kObject, kArray, kString, kNumber } kind;
  // Object fields keep insertion order (record identity is ordered).
  std::vector<std::pair<std::string, Value>> object;
  std::vector<Value> array;
  std::string str;
  double num = 0.0;

  const Value* find(const std::string& key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(std::string text) : text_(std::move(text)) {}

  Value parse() {
    Value v = parse_value();
    skip_ws();
    HG_CHECK(pos_ == text_.size(), "trailing bytes after JSON value");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\r' || text_[pos_] == '\t'))
      ++pos_;
  }

  char peek() {
    skip_ws();
    HG_CHECK(pos_ < text_.size(), "unexpected end of JSON input");
    return text_[pos_];
  }

  void expect(char c) {
    HG_CHECK(peek() == c, "expected '" << c << "' at byte " << pos_);
    ++pos_;
  }

  Value parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string();
    return parse_number();
  }

  Value parse_object() {
    Value v;
    v.kind = Value::Kind::kObject;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      Value key = parse_string();
      expect(':');
      v.object.emplace_back(std::move(key.str), parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    Value v;
    v.kind = Value::Kind::kArray;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Value parse_string() {
    Value v;
    v.kind = Value::Kind::kString;
    expect('"');
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        HG_CHECK(pos_ < text_.size(), "dangling escape in JSON string");
        const char e = text_[pos_++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'u': {
            HG_CHECK(pos_ + 4 <= text_.size(), "truncated \\u escape");
            c = static_cast<char>(
                std::strtol(text_.substr(pos_, 4).c_str(), nullptr, 16));
            pos_ += 4;
            break;
          }
          default:
            HG_CHECK(false, "unsupported escape \\" << e);
        }
      }
      v.str += c;
    }
    expect('"');
    return v;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    HG_CHECK(pos_ > start, "expected a number at byte " << start);
    Value v;
    v.kind = Value::Kind::kNumber;
    v.str = text_.substr(start, pos_ - start);
    v.num = std::strtod(v.str.c_str(), nullptr);
    return v;
  }

  std::string text_;
  std::size_t pos_ = 0;
};

Value load(const std::string& path) {
  std::ifstream is(path);
  HG_CHECK(is.good(), "cannot open " << path);
  std::ostringstream buf;
  buf << is.rdbuf();
  return Parser(buf.str()).parse();
}

const Value& results_of(const Value& report, const std::string& path) {
  HG_CHECK(report.kind == Value::Kind::kObject,
           path << ": top level is not an object");
  const Value* results = report.find("results");
  HG_CHECK(results != nullptr && results->kind == Value::Kind::kArray,
           path << ": no \"results\" array");
  return *results;
}

// The environment keys every JsonReport embeds (bench_common.hpp): the
// run configuration numbers are meaningless without.
const char* const kEnvKeys[] = {"gemm_kernel", "threads", "scheduler"};

// Compares the `env` blocks of two reports: any key present in both must
// match (a scalar-kernel run is not a baseline for an avx2 one). A report
// with no env block at all (pre-env format) is noted and skipped.
int check_env(const Value& base, const std::string& base_path,
              const Value& fresh, const std::string& new_path) {
  const Value* benv = base.find("env");
  const Value* nenv = fresh.find("env");
  if (benv == nullptr || nenv == nullptr) {
    std::cout << "note: "
              << (benv == nullptr ? base_path : new_path)
              << " has no \"env\" block; skipping environment check\n";
    return 0;
  }
  for (const auto& [k, v] : benv->object) {
    if (v.kind != Value::Kind::kString) continue;
    const Value* other = nenv->find(k);
    if (other != nullptr && other->str != v.str) {
      std::cerr << "environment mismatch on \"" << k << "\": " << v.str
                << " vs " << other->str
                << " — these runs are not comparable\n";
      return 1;
    }
  }
  return 0;
}

int check_schema(const std::string& run_path, const std::string& schema_path) {
  const Value schema = load(schema_path);
  const Value run = load(run_path);
  const Value* want_bench = schema.find("bench");
  const Value* required = schema.find("required");
  HG_CHECK(want_bench != nullptr && required != nullptr &&
               required->kind == Value::Kind::kArray,
           schema_path << ": schema needs \"bench\" and \"required\"");

  const Value* got_bench = run.find("bench");
  if (got_bench == nullptr || got_bench->str != want_bench->str) {
    std::cerr << "schema mismatch: bench name is "
              << (got_bench ? got_bench->str : "<missing>") << ", expected "
              << want_bench->str << '\n';
    return 1;
  }
  const Value* env = run.find("env");
  if (env == nullptr || env->kind != Value::Kind::kObject) {
    std::cerr << "schema mismatch: " << run_path
              << " lacks the \"env\" block\n";
    return 1;
  }
  for (const char* key : kEnvKeys) {
    if (env->find(key) == nullptr) {
      std::cerr << "schema mismatch: env lacks \"" << key << "\"\n";
      return 1;
    }
  }
  const Value& results = results_of(run, run_path);
  if (results.array.empty()) {
    std::cerr << "schema mismatch: " << run_path << " has no results\n";
    return 1;
  }
  for (std::size_t i = 0; i < results.array.size(); ++i) {
    for (const Value& field : required->array) {
      if (results.array[i].find(field.str) == nullptr) {
        std::cerr << "schema mismatch: record " << i << " lacks field \""
                  << field.str << "\"\n";
        return 1;
      }
    }
  }
  std::cout << "schema ok: " << results.array.size() << " records of "
            << want_bench->str << " carry all " << required->array.size()
            << " required fields\n";
  return 0;
}

// Label for one record: its string-valued fields, which identify the
// configuration (kernel, flags) independent of the measured numbers.
std::string record_label(const Value& rec) {
  std::string out;
  for (const auto& [k, v] : rec.object)
    if (v.kind == Value::Kind::kString) out += k + "=" + v.str + " ";
  return out.empty() ? "<unlabeled>" : out;
}

int compare(const std::string& base_path, const std::string& new_path,
            const std::string& key, double threshold, double inject) {
  const Value base = load(base_path);
  const Value fresh = load(new_path);
  if (check_env(base, base_path, fresh, new_path) != 0) return 1;
  const Value& base_res = results_of(base, base_path);
  const Value& new_res = results_of(fresh, new_path);
  if (base_res.array.size() != new_res.array.size()) {
    std::cerr << "record count mismatch: " << base_res.array.size() << " vs "
              << new_res.array.size() << '\n';
    return 1;
  }

  int regressions = 0;
  for (std::size_t i = 0; i < base_res.array.size(); ++i) {
    const Value& b = base_res.array[i];
    const Value& n = new_res.array[i];
    // Records must describe the same configuration.
    for (const auto& [k, v] : b.object) {
      if (v.kind != Value::Kind::kString) continue;
      const Value* other = n.find(k);
      if (other == nullptr || other->str != v.str) {
        std::cerr << "record " << i << " mismatch on \"" << k << "\": "
                  << record_label(b) << "vs " << record_label(n) << '\n';
        return 1;
      }
    }
    const Value* bv = b.find(key);
    const Value* nv = n.find(key);
    if (bv == nullptr || nv == nullptr) {
      std::cerr << "record " << i << " lacks key \"" << key << "\"\n";
      return 1;
    }
    const double base_val = bv->num;
    const double new_val = nv->num * inject;
    if (base_val > 0.0 && new_val > base_val * (1.0 + threshold)) {
      std::cerr << "REGRESSION " << record_label(b) << key << " "
                << base_val << " -> " << new_val << " (+"
                << 100.0 * (new_val / base_val - 1.0) << "%, threshold +"
                << 100.0 * threshold << "%)\n";
      ++regressions;
    }
  }
  if (regressions > 0) {
    std::cerr << regressions << " regression(s) beyond +" << 100.0 * threshold
              << "%\n";
    return 1;
  }
  std::cout << "ok: " << base_res.array.size() << " records within +"
            << 100.0 * threshold << "% on \"" << key << "\"\n";
  return 0;
}

}  // namespace
}  // namespace hetgrid::bench

int main(int argc, char** argv) {
  using namespace hetgrid;
  try {
    const Cli cli(argc, argv,
                  {{"base", ""}, {"new", ""}, {"key", "ms"},
                   {"threshold", "0.2"}, {"inject", "1"},
                   {"check-schema", ""}, {"schema", ""}});
    const std::string schema_target = cli.get_string("check-schema");
    if (!schema_target.empty())
      return bench::check_schema(schema_target, cli.get_string("schema"));
    const std::string base = cli.get_string("base");
    const std::string fresh = cli.get_string("new");
    if (base.empty() || fresh.empty()) {
      std::cerr << "usage: bench_compare --base=old.json --new=new.json "
                   "[--key=ms] [--threshold=0.2] [--inject=1.0]\n"
                   "       bench_compare --check-schema=run.json "
                   "--schema=baseline.json\n";
      return 2;
    }
    return bench::compare(base, fresh, cli.get_string("key"),
                          cli.get_double("threshold"),
                          cli.get_double("inject"));
  } catch (const std::exception& e) {
    std::cerr << "bench_compare: " << e.what() << '\n';
    return 1;
  }
}
