// Robustness sweep: the paper evaluates on U(0,1] cycle-times
// (Section 4.4.4); real machine pools look different. This bench repeats
// the core comparison (heuristic / local-search efficiency relative to the
// capacity bound, and simulated MMM advantage over block-cyclic) across
// four speed profiles, checking that the paper's conclusions are not an
// artifact of the uniform draw.
#include "bench/bench_common.hpp"
#include "core/local_search.hpp"
#include "util/workloads.hpp"

int main(int argc, char** argv) {
  using namespace hetgrid;
  const Cli cli(argc, argv,
                {{"n", "4"}, {"trials", "30"}, {"seed", "83"}, {"csv", "0"}});
  bench::print_header(
      "Workload-profile robustness — heuristic efficiency and speedup over "
      "block-cyclic",
      cli);

  const auto n = static_cast<std::size_t>(cli.get_int("n"));
  const int trials = static_cast<int>(cli.get_int("trials"));
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));

  Table table;
  table.header({"profile", "heuristic_eff", "local_search_eff",
                "sim_speedup_vs_bc", "speedup_min"});
  for (WorkloadKind kind : kAllWorkloadKinds) {
    RunningStats eff_h, eff_ls, speedup;
    for (int t = 0; t < trials; ++t) {
      const std::vector<double> pool = draw_cycle_times(kind, n * n, rng);
      const HeuristicResult h = solve_heuristic(n, n, pool);
      const LocalSearchResult ls = solve_local_search(n, n, pool);
      const double cap = obj2_upper_bound(h.final().grid);
      eff_h.add(h.final().obj2 / cap);
      eff_ls.add(ls.obj2 / cap);

      const PanelDistribution het = PanelDistribution::from_allocation(
          ls.grid, ls.alloc, 8 * n, 8 * n, PanelOrder::kContiguous,
          PanelOrder::kContiguous, "ls-panel");
      const PanelDistribution bc = PanelDistribution::block_cyclic(n, n);
      const Machine m{ls.grid, NetworkModel::free()};
      const std::size_t nb = 16 * n;
      speedup.add(simulate_mmm(m, bc, nb).total_time /
                  simulate_mmm(m, het, nb).total_time);
    }
    table.row({workload_name(kind), Table::num(eff_h.mean(), 4),
               Table::num(eff_ls.mean(), 4), Table::num(speedup.mean(), 2),
               Table::num(speedup.min(), 2)});
  }
  bench::emit(table, cli);
  std::cout << "Reading: the heterogeneous allocation helps most on "
               "long-tailed pools (power-tail),\nand is a harmless no-op on "
               "near-homogeneous machines (speedup ~1.0) — the paper's\n"
               "approach degrades gracefully to ScaLAPACK's default.\n";
  return 0;
}
