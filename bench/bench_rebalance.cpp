// Online-rebalancing harness (EXPERIMENTS.md section 16): the planted
// mid-run straggler scenario, static plan vs panel-boundary rebalancing
// (doc/rebalance.md). A uniform 2 x 2 grid runs the kernels block-cyclic;
// grid row 0 slows down `--factor`x at step `--onset`. The static plan
// then sweeps at the stragglers' pace for the rest of the run; the
// rebalancer re-solves the allocation from the estimated rates at the
// first post-drift boundary and migrates the trailing blocks.
//
// Reported per kernel: the static and rebalanced virtual makespans, the
// makespan reduction, the distance to the imbalance report's balanced
// lower bound under the post-drift rates, the applied migrations, and the
// wall-clock cost of the rebalanced run (the only non-deterministic
// column). The harness itself enforces the acceptance bar on the MMM rows
// (both the bulk-synchronous simulator and the message-passing runtime):
// >= 25% reduction and a makespan within 15% of the balanced lower bound.
// All virtual-time columns are byte-deterministic, so CI gates them with
// --threshold=0 (tools/ci.sh).
#include <chrono>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "dist/panel_distribution.hpp"
#include "matrix/cholesky.hpp"
#include "matrix/lu.hpp"
#include "mp/mp_runtime.hpp"
#include "obs/imbalance.hpp"
#include "sim/drift.hpp"
#include "sim/dynamic.hpp"
#include "util/check.hpp"

namespace {

using namespace hetgrid;

using Rebalance = RuntimeOptions::Rebalance;

struct ScenarioResult {
  double static_makespan = 0.0;
  double rebalanced_makespan = 0.0;
  double bound = 0.0;
  std::size_t rebalances = 0;
  std::size_t blocks = 0;
  double ms = 0.0;  // wall clock of one rebalanced run (best of reps)
};

RuntimeOptions scenario_options(Rebalance rebalance, double factor,
                                std::size_t onset) {
  RuntimeOptions opts;
  opts.rebalance = rebalance;
  opts.trace = CycleTimeTrace::straggler({0, 1}, factor, onset);
  opts.estimator.alpha = 1.0;
  opts.estimator.min_samples = 1;
  return opts;
}

using SimFn = DynamicSimReport (*)(const Machine&, const Distribution2D&,
                                   std::size_t, const RuntimeOptions&,
                                   const KernelCosts&);

ScenarioResult run_sim(SimFn fn, const Machine& machine,
                       const Distribution2D& dist, std::size_t nb,
                       double factor, std::size_t onset, int reps) {
  ScenarioResult res;
  res.static_makespan =
      fn(machine, dist, nb, scenario_options(Rebalance::kOff, factor, onset),
         {})
          .total_time;
  const RuntimeOptions opts =
      scenario_options(Rebalance::kPanel, factor, onset);
  for (int r = 0; r < reps; ++r) {
    RunObservation obs(opts.estimator);
    RunObservation* prev = install_observation(&obs);
    const auto t0 = std::chrono::steady_clock::now();
    const DynamicSimReport rep = fn(machine, dist, nb, opts, {});
    const auto t1 = std::chrono::steady_clock::now();
    install_observation(prev);
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const std::vector<double> finish(rep.busy.size(), rep.total_time);
    const double bound =
        build_imbalance_report(obs, rep.busy, finish).lower_bound;
    if (r == 0) {
      res.rebalanced_makespan = rep.total_time;
      res.bound = bound;
      res.rebalances = rep.migrations;
      res.blocks = rep.blocks_moved;
      res.ms = ms;
    } else {
      HG_INTERNAL_CHECK(rep.total_time == res.rebalanced_makespan &&
                            rep.migrations == res.rebalances,
                        "rebalanced simulation is not deterministic");
      res.ms = std::min(res.ms, ms);
    }
  }
  return res;
}

ScenarioResult run_mp(const Machine& machine, const Distribution2D& dist,
                      std::size_t nb, std::size_t block, double factor,
                      std::size_t onset, int reps, std::uint64_t seed) {
  const std::size_t n = nb * block;
  ScenarioResult res;
  Rng rng(seed);
  Matrix a(n, n), b(n, n);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);
  {
    Matrix c(n, n);
    res.static_makespan =
        run_mp_mmm(machine, dist, a.view(), b.view(), c.view(), block, {},
                   nullptr, scenario_options(Rebalance::kOff, factor, onset))
            .makespan;
  }
  const RuntimeOptions opts =
      scenario_options(Rebalance::kPanel, factor, onset);
  for (int r = 0; r < reps; ++r) {
    RunObservation obs(opts.estimator);
    RunObservation* prev = install_observation(&obs);
    Matrix c(n, n);
    const auto t0 = std::chrono::steady_clock::now();
    const MpReport rep = run_mp_mmm(machine, dist, a.view(), b.view(),
                                    c.view(), block, {}, nullptr, opts);
    const auto t1 = std::chrono::steady_clock::now();
    install_observation(prev);
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double bound =
        build_imbalance_report(obs, rep.busy, rep.clock).lower_bound;
    if (r == 0) {
      res.rebalanced_makespan = rep.makespan;
      res.bound = bound;
      res.rebalances = rep.rebalances;
      res.blocks = rep.rebalance_blocks;
      res.ms = ms;
    } else {
      HG_INTERNAL_CHECK(rep.makespan == res.rebalanced_makespan &&
                            rep.rebalances == res.rebalances,
                        "rebalanced MP run is not deterministic");
      res.ms = std::min(res.ms, ms);
    }
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hetgrid;
  Cli cli(argc, argv,
          {{"nb", "32"}, {"block", "2"}, {"factor", "4"}, {"onset", "0"},
           {"reps", "3"}, {"smoke", "0"}, {"csv", "0"},
           {"json", "BENCH_rebalance.json"}});
  bench::print_header("Online rebalancing — planted straggler", cli);

  const bool smoke = cli.get_bool("smoke");
  const auto nb =
      smoke ? std::size_t{20} : static_cast<std::size_t>(cli.get_int("nb"));
  const auto block = static_cast<std::size_t>(cli.get_int("block"));
  const double factor = cli.get_double("factor");
  const auto onset = static_cast<std::size_t>(cli.get_int("onset"));
  const int reps = smoke ? 1 : static_cast<int>(cli.get_int("reps"));
  HG_CHECK(factor > 0.0, "--factor must be positive");

  const Machine machine{
      CycleTimeGrid(2, 2, std::vector<double>(4, 1.0)),
      NetworkModel{Topology::kSwitched, 1.0e-4, 2.0e-4, true}};
  const PanelDistribution dist = PanelDistribution::block_cyclic(2, 2);

  std::cout << "uniform 2x2 grid, block-cyclic, nb = " << nb
            << "; grid row 0 slows " << factor << "x at step " << onset
            << "\n\n";

  Table table;
  table.header({"kernel", "backend", "static", "rebalanced", "gain_pct",
                "bound_ratio", "rebalances", "blocks", "ms"});
  bench::JsonReport json("bench_rebalance", cli);
  json.env("grid", "2x2-uniform");

  struct Row {
    const char* kernel;
    const char* backend;
    ScenarioResult res;
  };
  std::vector<Row> rows;
  rows.push_back({"mmm", "sim", run_sim(&simulate_mmm_dynamic, machine, dist,
                                        nb, factor, onset, reps)});
  rows.push_back({"lu", "sim", run_sim(&simulate_lu_dynamic, machine, dist,
                                       nb, factor, onset, reps)});
  rows.push_back({"chol", "sim",
                  run_sim(&simulate_cholesky_dynamic, machine, dist, nb,
                          factor, onset, reps)});
  rows.push_back({"qr", "sim", run_sim(&simulate_qr_dynamic, machine, dist,
                                       nb, factor, onset, reps)});
  rows.push_back(
      {"mmm", "mp", run_mp(machine, dist, nb, block, factor, onset, reps, 17)});

  for (const Row& row : rows) {
    const ScenarioResult& r = row.res;
    const double gain_pct =
        r.static_makespan > 0.0
            ? 100.0 * (1.0 - r.rebalanced_makespan / r.static_makespan)
            : 0.0;
    const double bound_ratio =
        r.bound > 0.0 ? r.rebalanced_makespan / r.bound : 0.0;
    // Every kernel must win under the planted straggler; the MMM rows
    // carry the full acceptance bar (doc/rebalance.md).
    HG_INTERNAL_CHECK(r.rebalances >= 1,
                      row.kernel << "/" << row.backend << " never rebalanced");
    HG_INTERNAL_CHECK(gain_pct > 0.0, row.kernel << "/" << row.backend
                                                 << " did not improve");
    if (std::string(row.kernel) == "mmm") {
      HG_INTERNAL_CHECK(gain_pct >= 25.0,
                        "mmm/" << row.backend
                               << " reduction below the 25% acceptance bar: "
                               << gain_pct);
      HG_INTERNAL_CHECK(bound_ratio > 0.0 && bound_ratio <= 1.15,
                        "mmm/" << row.backend
                               << " not within 15% of the balanced lower "
                                  "bound: ratio "
                               << bound_ratio);
    }
    table.row({row.kernel, row.backend, Table::num(r.static_makespan, 2),
               Table::num(r.rebalanced_makespan, 2), Table::num(gain_pct, 1),
               Table::num(bound_ratio, 3),
               std::to_string(r.rebalances), std::to_string(r.blocks),
               Table::num(r.ms, 2)});
    json.add()
        .field("kernel", row.kernel)
        .field("backend", row.backend)
        .field("nb", static_cast<double>(nb))
        .field("static_makespan", r.static_makespan)
        .field("rebalanced_makespan", r.rebalanced_makespan)
        .field("gain_pct", gain_pct)
        .field("bound_ratio", bound_ratio)
        .field("rebalances", static_cast<double>(r.rebalances))
        .field("blocks", static_cast<double>(r.blocks))
        .field("ms", r.ms);
  }

  bench::emit(table, cli);
  json.write_file(cli.get_string("json"));
  return 0;
}
