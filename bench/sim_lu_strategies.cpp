// Strategy comparison for the right-looking LU factorization (and QR with
// --kernel=qr) on a simulated heterogeneous NOW, including the effect of
// the panel-column ordering of Section 3.2.2: "heuristic" uses the 1D
// interleaved column ordering (ABAABA-style), "heuristic-contig" keeps the
// columns contiguous, isolating the ordering's contribution.
#include "bench/bench_common.hpp"
#include "obs/utilization.hpp"

int main(int argc, char** argv) {
  using namespace hetgrid;
  const Cli cli(argc, argv,
                {{"trials", "10"},
                 {"scale", "8"},
                 {"nbfactor", "8"},
                 {"seed", "7"},
                 {"network", "switched"},
                 {"kernel", "lu"},
                 {"csv", "0"}});
  const std::string kernel = cli.get_string("kernel");
  HG_CHECK(kernel == "lu" || kernel == "qr" || kernel == "chol",
           "--kernel must be lu, qr, or chol");
  bench::print_header(
      "Simulated " + kernel +
          " on a heterogeneous NOW — strategies and panel-column ordering",
      cli);

  const NetworkModel net = bench::parse_network(cli.get_string("network"));
  const std::size_t scale = static_cast<std::size_t>(cli.get_int("scale"));
  const int trials = static_cast<int>(cli.get_int("trials"));
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));

  auto run = [&](const Machine& m, const Distribution2D& d, std::size_t nb,
                 TraceSink* sink) {
    const KernelCosts costs;
    if (kernel == "qr") return simulate_qr(m, d, nb, costs, sink);
    if (kernel == "chol") return simulate_cholesky(m, d, nb, costs, sink);
    return simulate_lu(m, d, nb, costs, sink);
  };

  struct Shape {
    std::size_t p, q;
    bool exact;
  };
  const Shape shapes[] = {{2, 2, true}, {3, 3, true}, {4, 4, false}};

  Table table;
  table.header({"grid", "strategy", "slowdown_vs_perfect", "ci95",
                "utilization", "min_util", "idle_frac"});
  for (const Shape& s : shapes) {
    const std::size_t nb =
        static_cast<std::size_t>(cli.get_int("nbfactor")) * s.p * s.q;
    std::map<std::string, RunningStats> slowdown, util, min_util,
        idle_frac;
    for (int trial = 0; trial < trials; ++trial) {
      const std::vector<double> pool = rng.cycle_times(s.p * s.q);
      // Interleaved columns (the paper's LU ordering).
      auto strategies = bench::build_strategies(
          s.p, s.q, pool, scale, s.exact, PanelOrder::kInterleaved);
      // Plus the contiguous-columns ablation of the heuristic.
      {
        const HeuristicResult h = solve_heuristic(s.p, s.q, pool);
        strategies.push_back(
            {"heuristic-contig", h.final().grid,
             std::make_unique<PanelDistribution>(
                 PanelDistribution::from_allocation(
                     h.final().grid, h.final().alloc, scale * s.p,
                     scale * s.q, PanelOrder::kContiguous,
                     PanelOrder::kContiguous, "heuristic-contig"))});
      }
      for (const auto& st : strategies) {
        const Machine m{st.grid, net};
        MemoryTraceSink sink;
        const SimReport rep = run(m, *st.dist, nb, &sink);
        slowdown[st.name].add(rep.slowdown_vs_perfect());
        util[st.name].add(rep.average_utilization());
        const TraceSummary sum =
            summarize_trace(sink.events(), s.p * s.q, rep.total_time);
        min_util[st.name].add(min_utilization(sum));
        idle_frac[st.name].add(mean_idle_fraction(sum));
      }
    }
    const std::string grid_name =
        std::to_string(s.p) + "x" + std::to_string(s.q);
    for (const char* name :
         {"block-cyclic", "kalinov-lastovetsky", "heuristic",
          "heuristic-contig", "exact"}) {
      auto it = slowdown.find(name);
      if (it == slowdown.end()) continue;
      table.row({grid_name, name, Table::num(it->second.mean(), 3),
                 Table::num(it->second.ci95_halfwidth(), 3),
                 Table::num(util[name].mean(), 3),
                 Table::num(min_util[name].mean(), 3),
                 Table::num(idle_frac[name].mean(), 3)});
    }
  }
  bench::emit(table, cli);
  return 0;
}
