// Ablation: panel size (B_p x B_q) vs achieved balance. The rational
// shares r_i, c_j must be rounded into an integer panel; small panels
// round coarsely (bad balance), large panels approximate the rational
// optimum but lengthen the distribution period. This bench sweeps the
// panel scale and reports the simulated MMM and LU slowdowns.
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace hetgrid;
  const Cli cli(argc, argv,
                {{"p", "3"},
                 {"q", "3"},
                 {"trials", "10"},
                 {"seed", "23"},
                 {"csv", "0"}});
  bench::print_header("Panel-size sweep — rounding granularity vs balance",
                      cli);

  const std::size_t p = static_cast<std::size_t>(cli.get_int("p"));
  const std::size_t q = static_cast<std::size_t>(cli.get_int("q"));
  const int trials = static_cast<int>(cli.get_int("trials"));
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));

  // Pre-draw machines so every scale sees the same machines.
  std::vector<HeuristicResult> machines;
  for (int t = 0; t < trials; ++t)
    machines.push_back(solve_heuristic(p, q, rng.cycle_times(p * q)));

  Table table;
  table.header({"scale", "B_p", "B_q", "mmm_slowdown", "lu_slowdown",
                "mmm_utilization"});
  for (std::size_t scale : {1, 2, 3, 4, 6, 8, 12, 16}) {
    RunningStats mmm_slow, lu_slow, mmm_util;
    for (const HeuristicResult& h : machines) {
      const PanelDistribution d = PanelDistribution::from_allocation(
          h.final().grid, h.final().alloc, scale * p, scale * q,
          PanelOrder::kContiguous, PanelOrder::kInterleaved, "panel");
      const Machine m{h.final().grid, NetworkModel::free()};
      // nb spans several whole panels so the period is fully exercised.
      const std::size_t nb = 48 * std::max(p, q);
      const SimReport mm = simulate_mmm(m, d, nb);
      const SimReport lu = simulate_lu(m, d, nb);
      mmm_slow.add(mm.slowdown_vs_perfect());
      lu_slow.add(lu.slowdown_vs_perfect());
      mmm_util.add(mm.average_utilization());
    }
    table.row({Table::num(static_cast<std::int64_t>(scale)),
               Table::num(static_cast<std::int64_t>(scale * p)),
               Table::num(static_cast<std::int64_t>(scale * q)),
               Table::num(mmm_slow.mean(), 4), Table::num(lu_slow.mean(), 4),
               Table::num(mmm_util.mean(), 4)});
  }
  bench::emit(table, cli);
  return 0;
}
