// Scaling harness for the parallel numerics engine and the task-graph
// scheduler (EXPERIMENTS.md table): runs the message-passing runtime's
// MMM / LU / Cholesky / QR under both schedulers (per-phase barriers vs
// dependency-driven dag) at several thread counts on a heterogeneous grid
// and reports wall-clock speedup plus the host-synchronization count. The
// runtime promises bit-identical results for any thread count and either
// scheduler, and the run enforces it: every MpReport field (makespan,
// per-processor clocks and busy times, message and block counters), the QR
// tau vector, and every gathered matrix entry must match the serial
// barrier run exactly — only the ms column may move. The dag scheduler
// must also strictly reduce the number of host synchronization points
// ("mp.barriers": one per TaskBatch flush in barrier mode, one per
// host_sync/finish in dag mode).
//
// --smoke shrinks the problem to a CI-sized instance (seconds, not
// minutes) while still crossing the serial/parallel seam and both
// schedulers at threads {1, 2, 7}.
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "dist/panel_distribution.hpp"
#include "matrix/cholesky.hpp"
#include "matrix/gemm.hpp"
#include "matrix/lu.hpp"
#include "mp/mp_runtime.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace {

using namespace hetgrid;

using Scheduler = RuntimeOptions::Scheduler;

bool same_bits(const ConstMatrixView& a, const ConstMatrixView& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t j = 0; j < a.cols(); ++j) {
    for (std::size_t i = 0; i < a.rows(); ++i) {
      const double x = a(i, j), y = b(i, j);
      if (std::memcmp(&x, &y, sizeof(double)) != 0) return false;
    }
  }
  return true;
}

bool same_report(const MpReport& x, const MpReport& y) {
  return x.makespan == y.makespan && x.clock == y.clock && x.busy == y.busy &&
         x.messages == y.messages && x.blocks_moved == y.blocks_moved &&
         x.factorized == y.factorized;
}

struct RunResult {
  MpReport report;
  Matrix out;
  std::vector<double> tau;  // QR only
  double ms = 0.0;
  double barriers = 0.0;  // host synchronization points ("mp.barriers")
};

bool same_run(const RunResult& x, const RunResult& y) {
  return same_report(x.report, y.report) && x.tau == y.tau &&
         same_bits(x.out.view(), y.out.view());
}

// One timed kernel execution at a given thread count and scheduler: fresh
// inputs each time (the factorizations run in place), best-of-`reps` wall
// clock. The timed reps run with no metrics registry installed (metric
// sites are per-task in dag mode, and by-name registry lookups there would
// tax the schedulers unevenly); one extra untimed, instrumented rep then
// captures the "mp.barriers" host-synchronization count and must
// reproduce the timed result exactly (it is computed on the host thread).
RunResult run_kernel(const std::string& kernel, const Machine& machine,
                     const Distribution2D& dist, std::size_t n,
                     std::size_t block, Scheduler sched, unsigned threads,
                     int reps, std::uint64_t seed) {
  RuntimeOptions opts;
  opts.threads = threads;
  opts.scheduler = sched;
  RunResult res;
  for (int r = 0; r <= reps; ++r) {
    const bool instrument = r == reps;  // final rep: counters, not timing
    Rng rng(seed);
    MetricsRegistry metrics;
    MetricsRegistry* prev = instrument ? install_metrics(&metrics) : nullptr;
    RunResult rep;
    if (kernel == "mmm") {
      Matrix a(n, n), b(n, n), c(n, n);
      fill_random(a.view(), rng);
      fill_random(b.view(), rng);
      const auto t0 = std::chrono::steady_clock::now();
      rep.report = run_mp_mmm(machine, dist, a.view(), b.view(), c.view(),
                              block, {}, nullptr, opts);
      const auto t1 = std::chrono::steady_clock::now();
      rep.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
      rep.out = std::move(c);
    } else if (kernel == "lu") {
      Matrix a(n, n);
      fill_diagonally_dominant(a.view(), rng);
      const auto t0 = std::chrono::steady_clock::now();
      rep.report = run_mp_lu(machine, dist, a.view(), block, {}, false,
                             nullptr, opts);
      const auto t1 = std::chrono::steady_clock::now();
      rep.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
      rep.out = std::move(a);
    } else if (kernel == "chol") {
      Matrix a(n, n);
      fill_spd(a.view(), rng);
      const auto t0 = std::chrono::steady_clock::now();
      rep.report = run_mp_cholesky(machine, dist, a.view(), block, {},
                                   nullptr, opts);
      const auto t1 = std::chrono::steady_clock::now();
      rep.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
      rep.out = std::move(a);
    } else if (kernel == "qr") {
      Matrix a(n, n);
      fill_random(a.view(), rng);
      const auto t0 = std::chrono::steady_clock::now();
      const MpQrReport qr =
          run_mp_qr(machine, dist, a.view(), block, {}, nullptr, opts);
      const auto t1 = std::chrono::steady_clock::now();
      rep.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
      rep.report = qr;
      rep.tau = qr.tau;
      rep.out = std::move(a);
    } else {
      if (instrument) install_metrics(prev);
      HG_CHECK(false, "unknown kernel: " << kernel << " (mmm|lu|chol|qr)");
    }
    if (instrument) {
      install_metrics(prev);
      rep.barriers =
          static_cast<double>(metrics.counter("mp.barriers").value());
    }
    if (r == 0) {
      res = std::move(rep);
    } else {
      HG_INTERNAL_CHECK(same_run(rep, res),
                        kernel << " run is not deterministic across reps");
      if (instrument)
        res.barriers = rep.barriers;
      else
        res.ms = std::min(res.ms, rep.ms);
    }
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hetgrid;
  Cli cli(argc, argv,
          {{"p", "4"}, {"q", "4"}, {"nb", "16"}, {"block", "32"},
           {"kernels", "mmm,lu,chol,qr"}, {"threads", "1,2,4"},
           {"reps", "3"}, {"seed", "17"}, {"smoke", "0"}, {"csv", "0"},
           {"json", "BENCH_runtime.json"}});
  bench::print_header("Runtime scaling — parallel numerics engine", cli);

  const bool smoke = cli.get_bool("smoke");
  const auto p = static_cast<std::size_t>(cli.get_int("p"));
  const auto q = static_cast<std::size_t>(cli.get_int("q"));
  const auto nb =
      smoke ? std::size_t{4} : static_cast<std::size_t>(cli.get_int("nb"));
  const auto block =
      smoke ? std::size_t{8} : static_cast<std::size_t>(cli.get_int("block"));
  const int reps = smoke ? 1 : static_cast<int>(cli.get_int("reps"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const std::size_t n = nb * block;

  std::vector<unsigned> thread_counts;
  if (smoke) {
    // The acceptance matrix: both schedulers at threads {1, 2, 7}.
    thread_counts = {1, 2, 7};
  } else {
    for (double v : parse_positive_list(cli.get_string("threads")))
      thread_counts.push_back(static_cast<unsigned>(v));
  }

  std::vector<std::string> kernels;
  {
    std::string cur;
    for (char c : cli.get_string("kernels") + ",") {
      if (c == ',') {
        if (!cur.empty()) kernels.push_back(cur);
        cur.clear();
      } else {
        cur += c;
      }
    }
  }

  // Heterogeneous pool, block-cyclic layout: aligned (so LU, Cholesky and
  // QR run) and every processor owns work in every step.
  Rng pool_rng(seed);
  const CycleTimeGrid grid =
      CycleTimeGrid::sorted_row_major(p, q, pool_rng.cycle_times(p * q, 0.25));
  const Machine machine{grid, NetworkModel::free()};
  const PanelDistribution dist = PanelDistribution::block_cyclic(p, q);

  std::cout << "grid " << p << "x" << q << ", n = " << n << " (nb = " << nb
            << ", block = " << block << ")\n\n";

  Table table;
  table.header(
      {"kernel", "sched", "threads", "ms", "speedup", "barriers",
       "identical"});
  bench::JsonReport json("bench_runtime_scaling", cli);
  json.env("scheduler", "barrier,dag");  // every run covers both

  for (const std::string& kernel : kernels) {
    // Reference: serial barrier run. Every other configuration must
    // reproduce it bit for bit.
    const RunResult serial = run_kernel(kernel, machine, dist, n, block,
                                        Scheduler::kBarrier, 1, reps, seed);
    for (const Scheduler sched : {Scheduler::kBarrier, Scheduler::kDag}) {
      const std::string sched_name =
          sched == Scheduler::kBarrier ? "barrier" : "dag";
      for (const unsigned threads : thread_counts) {
        RunResult fresh;
        const RunResult* run = &serial;  // (barrier, 1) is the reference
        if (sched != Scheduler::kBarrier || threads != 1) {
          fresh = run_kernel(kernel, machine, dist, n, block, sched,
                             threads, reps, seed);
          run = &fresh;
        }
        const RunResult& res = *run;
        const bool identical = same_run(res, serial);
        HG_INTERNAL_CHECK(identical, kernel << " (" << sched_name << ", "
                                            << threads
                                            << " threads) diverged from the "
                                               "serial barrier run");
        if (sched == Scheduler::kDag) {
          // The point of the dag scheduler: strictly fewer host
          // synchronization points than one barrier per phase.
          HG_INTERNAL_CHECK(
              res.barriers < serial.barriers,
              kernel << " dag run did not reduce the barrier count ("
                     << res.barriers << " vs " << serial.barriers << ")");
        }
        const double speedup = res.ms > 0.0 ? serial.ms / res.ms : 0.0;
        table.row({kernel, sched_name, std::to_string(threads),
                   Table::num(res.ms, 2), Table::num(speedup, 2),
                   Table::num(res.barriers, 0), identical ? "yes" : "NO"});
        json.add()
            .field("kernel", kernel)
            .field("sched", sched_name)
            .field("threads", static_cast<double>(threads))
            .field("n", static_cast<double>(n))
            .field("block", static_cast<double>(block))
            .field("ms", res.ms)
            .field("speedup", speedup)
            .field("barriers", res.barriers)
            .field("identical", identical ? "yes" : "no");
      }
    }
  }

  bench::emit(table, cli);
  json.write_file(cli.get_string("json"));
  return 0;
}
