// Scaling harness for the parallel numerics engine (EXPERIMENTS.md table):
// runs the message-passing runtime's MMM / LU / Cholesky at several thread
// counts on a heterogeneous grid and reports wall-clock speedup. The engine
// promises bit-identical results for any thread count, and the run enforces
// it: every MpReport field (makespan, per-processor clocks and busy times,
// message and block counters) and every gathered matrix entry must match
// the serial run exactly — only the ms column may move with --threads.
//
// --smoke shrinks the problem to a CI-sized instance (seconds, not
// minutes) while still crossing the serial/parallel seam.
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "dist/panel_distribution.hpp"
#include "matrix/cholesky.hpp"
#include "matrix/gemm.hpp"
#include "matrix/lu.hpp"
#include "mp/mp_runtime.hpp"
#include "util/check.hpp"

namespace {

using namespace hetgrid;

bool same_bits(const ConstMatrixView& a, const ConstMatrixView& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t j = 0; j < a.cols(); ++j) {
    for (std::size_t i = 0; i < a.rows(); ++i) {
      const double x = a(i, j), y = b(i, j);
      if (std::memcmp(&x, &y, sizeof(double)) != 0) return false;
    }
  }
  return true;
}

bool same_report(const MpReport& x, const MpReport& y) {
  return x.makespan == y.makespan && x.clock == y.clock && x.busy == y.busy &&
         x.messages == y.messages && x.blocks_moved == y.blocks_moved &&
         x.factorized == y.factorized;
}

struct RunResult {
  MpReport report;
  Matrix out;
  double ms = 0.0;
};

// One timed kernel execution at a given thread count: fresh inputs each
// time (LU/Cholesky factor in place), best-of-`reps` wall clock.
RunResult run_kernel(const std::string& kernel, const Machine& machine,
                     const Distribution2D& dist, std::size_t n,
                     std::size_t block, unsigned threads, int reps,
                     std::uint64_t seed) {
  RuntimeOptions opts;
  opts.threads = threads;
  RunResult res;
  for (int r = 0; r < reps; ++r) {
    Rng rng(seed);
    MpReport rep;
    Matrix out;
    double ms = 0.0;
    if (kernel == "mmm") {
      Matrix a(n, n), b(n, n), c(n, n);
      fill_random(a.view(), rng);
      fill_random(b.view(), rng);
      const auto t0 = std::chrono::steady_clock::now();
      rep = run_mp_mmm(machine, dist, a.view(), b.view(), c.view(), block,
                       {}, nullptr, opts);
      const auto t1 = std::chrono::steady_clock::now();
      ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
      out = std::move(c);
    } else if (kernel == "lu") {
      Matrix a(n, n);
      fill_diagonally_dominant(a.view(), rng);
      const auto t0 = std::chrono::steady_clock::now();
      rep = run_mp_lu(machine, dist, a.view(), block, {}, false, nullptr,
                      opts);
      const auto t1 = std::chrono::steady_clock::now();
      ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
      out = std::move(a);
    } else if (kernel == "chol") {
      Matrix a(n, n);
      fill_spd(a.view(), rng);
      const auto t0 = std::chrono::steady_clock::now();
      rep = run_mp_cholesky(machine, dist, a.view(), block, {}, nullptr,
                            opts);
      const auto t1 = std::chrono::steady_clock::now();
      ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
      out = std::move(a);
    } else {
      HG_CHECK(false, "unknown kernel: " << kernel << " (mmm|lu|chol)");
    }
    if (r == 0) {
      res.report = rep;
      res.out = std::move(out);
      res.ms = ms;
    } else {
      HG_INTERNAL_CHECK(same_report(rep, res.report) &&
                            same_bits(out.view(), res.out.view()),
                        kernel << " run is not deterministic across reps");
      res.ms = std::min(res.ms, ms);
    }
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hetgrid;
  Cli cli(argc, argv,
          {{"p", "4"}, {"q", "4"}, {"nb", "16"}, {"block", "32"},
           {"kernels", "mmm,lu,chol"}, {"threads", "1,2,4"}, {"reps", "3"},
           {"seed", "17"}, {"smoke", "0"}, {"csv", "0"},
           {"json", "BENCH_runtime.json"}});
  bench::print_header("Runtime scaling — parallel numerics engine", cli);

  const bool smoke = cli.get_bool("smoke");
  const auto p = static_cast<std::size_t>(cli.get_int("p"));
  const auto q = static_cast<std::size_t>(cli.get_int("q"));
  const auto nb =
      smoke ? std::size_t{4} : static_cast<std::size_t>(cli.get_int("nb"));
  const auto block =
      smoke ? std::size_t{8} : static_cast<std::size_t>(cli.get_int("block"));
  const int reps = smoke ? 1 : static_cast<int>(cli.get_int("reps"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const std::size_t n = nb * block;

  std::vector<unsigned> thread_counts;
  for (double v : parse_positive_list(cli.get_string("threads")))
    thread_counts.push_back(static_cast<unsigned>(v));

  std::vector<std::string> kernels;
  {
    std::string cur;
    for (char c : cli.get_string("kernels") + ",") {
      if (c == ',') {
        if (!cur.empty()) kernels.push_back(cur);
        cur.clear();
      } else {
        cur += c;
      }
    }
  }

  // Heterogeneous pool, block-cyclic layout: aligned (so LU and Cholesky
  // run) and every processor owns work in every step.
  Rng pool_rng(seed);
  const CycleTimeGrid grid =
      CycleTimeGrid::sorted_row_major(p, q, pool_rng.cycle_times(p * q, 0.25));
  const Machine machine{grid, NetworkModel::free()};
  const PanelDistribution dist = PanelDistribution::block_cyclic(p, q);

  std::cout << "grid " << p << "x" << q << ", n = " << n << " (nb = " << nb
            << ", block = " << block << ")\n\n";

  Table table;
  table.header({"kernel", "threads", "ms", "speedup", "identical"});
  bench::JsonReport json("bench_runtime_scaling", cli);

  for (const std::string& kernel : kernels) {
    const RunResult serial =
        run_kernel(kernel, machine, dist, n, block, 1, reps, seed);
    table.row({kernel, "1", Table::num(serial.ms, 2), "1.00", "yes"});
    json.add()
        .field("kernel", kernel)
        .field("threads", 1.0)
        .field("n", static_cast<double>(n))
        .field("block", static_cast<double>(block))
        .field("ms", serial.ms)
        .field("speedup", 1.0)
        .field("identical", "yes");
    for (unsigned threads : thread_counts) {
      if (threads <= 1) continue;
      const RunResult par =
          run_kernel(kernel, machine, dist, n, block, threads, reps, seed);
      const bool identical =
          same_report(par.report, serial.report) &&
          same_bits(par.out.view(), serial.out.view());
      HG_INTERNAL_CHECK(identical,
                        kernel << " at " << threads
                               << " threads diverged from the serial run");
      const double speedup = par.ms > 0.0 ? serial.ms / par.ms : 0.0;
      table.row({kernel, std::to_string(threads), Table::num(par.ms, 2),
                 Table::num(speedup, 2), identical ? "yes" : "NO"});
      json.add()
          .field("kernel", kernel)
          .field("threads", static_cast<double>(threads))
          .field("n", static_cast<double>(n))
          .field("block", static_cast<double>(block))
          .field("ms", par.ms)
          .field("speedup", speedup)
          .field("identical", identical ? "yes" : "no");
    }
  }

  bench::emit(table, cli);
  json.write_file(cli.get_string("json"));
  return 0;
}
