// google-benchmark microbenchmarks for the solver and kernel components:
// cost scaling of the heuristic (the paper claims roughly O(n^3) flops per
// step for n^2 processors), the exponential exact solver, the SVD kernels,
// the spanning-tree enumerator, and the blocked GEMM.
#include <benchmark/benchmark.h>

#include "core/arrangement.hpp"
#include "core/exact2x2.hpp"
#include "core/exact_solver.hpp"
#include "core/heuristic.hpp"
#include "core/local_search.hpp"
#include "graph/spanning_tree.hpp"
#include "matrix/gemm.hpp"
#include "svd/svd.hpp"
#include "util/rng.hpp"

namespace {

using namespace hetgrid;

void BM_HeuristicSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const std::vector<double> pool = rng.cycle_times(n * n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_heuristic(n, n, pool));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_HeuristicSolve)->DenseRange(2, 12, 2)->Complexity();

void BM_HeuristicSingleStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const CycleTimeGrid grid =
      CycleTimeGrid::sorted_row_major(n, n, rng.cycle_times(n * n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(heuristic_allocation(grid));
  }
}
BENCHMARK(BM_HeuristicSingleStep)->DenseRange(2, 16, 2);

// Args: {p, q, threads, prune}. threads=1/prune=1 is the default serial
// branch-and-bound; prune=0 degenerates to the exhaustive enumeration.
void BM_ExactSolver(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const auto q = static_cast<std::size_t>(state.range(1));
  ExactSolverOptions opts;
  opts.threads = static_cast<unsigned>(state.range(2));
  opts.prune = state.range(3) != 0;
  Rng rng(3);
  const CycleTimeGrid grid =
      CycleTimeGrid::sorted_row_major(p, q, rng.cycle_times(p * q));
  std::uint64_t nodes = 0;
  for (auto _ : state) {
    const ExactSolution sol = solve_exact(grid, opts);
    nodes = sol.nodes_visited;
    benchmark::DoNotOptimize(sol);
  }
  state.counters["trees"] =
      static_cast<double>(spanning_tree_count(p, q));
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_ExactSolver)
    ->Args({2, 2, 1, 1})
    ->Args({2, 3, 1, 1})
    ->Args({3, 3, 1, 1})
    ->Args({3, 4, 1, 1})
    ->Args({4, 4, 1, 1})
    ->Args({4, 4, 1, 0})
    ->Args({4, 4, 4, 1})
    ->Args({5, 5, 1, 1})
    ->Args({5, 5, 4, 1})
    ->Args({5, 5, 0, 1});

void BM_OptimalArrangement(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const auto q = static_cast<std::size_t>(state.range(1));
  Rng rng(4);
  const std::vector<double> pool = rng.cycle_times(p * q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_optimal_arrangement(p, q, pool));
  }
}
BENCHMARK(BM_OptimalArrangement)->Args({2, 2})->Args({2, 3})->Args({3, 3});

void BM_LocalSearch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  const std::vector<double> pool = rng.cycle_times(n * n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_local_search(n, n, pool));
  }
}
BENCHMARK(BM_LocalSearch)->DenseRange(2, 6, 1);

void BM_Exact2x2ClosedForm(benchmark::State& state) {
  Rng rng(9);
  const CycleTimeGrid grid(2, 2, rng.cycle_times(4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_exact_2x2(grid));
  }
}
BENCHMARK(BM_Exact2x2ClosedForm);

void BM_SpanningTreeEnumeration(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const auto q = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    std::uint64_t count = enumerate_spanning_trees(
        p, q, [](const std::vector<BipartiteEdge>&) { return true; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_SpanningTreeEnumeration)->Args({3, 3})->Args({4, 4})->Args({4, 5});

void BM_DominantTriplet(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  Matrix m(n, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) m(i, j) = 0.1 + rng.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dominant_triplet(m.view()));
  }
}
BENCHMARK(BM_DominantTriplet)->DenseRange(4, 32, 4);

void BM_JacobiSvd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  Matrix m(n, n);
  fill_random(m.view(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(jacobi_svd(m.view()));
  }
}
BENCHMARK(BM_JacobiSvd)->DenseRange(4, 16, 4);

void BM_BlockedGemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  Matrix a(n, n), b(n, n), c(n, n, 0.0);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);
  for (auto _ : state) {
    gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.0, c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 *
                          static_cast<std::int64_t>(n) * n * n);
}
BENCHMARK(BM_BlockedGemm)->Arg(64)->Arg(128)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
