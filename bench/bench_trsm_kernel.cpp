// GFLOP/s harness for the blocked triangular solve (EXPERIMENTS.md §14):
// times the LU panel solve B := inv(L) * B (trsm_left_lower_unit — unit
// lower-triangular L, n x n right-hand side) three ways: the historical
// unblocked triple-loop reference, the blocked solve on the scalar column
// primitives, and the blocked solve on the AVX2 primitives. The blocked
// solve routes its rank-k tail updates through the packed gemm microkernel,
// which is where the speedup lives; the reference row is the "before" of
// the comparison.
//
// The bit-identity contract is enforced, not just reported: this variant's
// blocked form preserves the reference's per-element floating-point
// sequence, so every configuration's solution must match the reference run
// bit for bit — across the scalar/AVX2 dispatch too.
//
// --smoke keeps n at the full default (a smaller n would understate the
// blocking's cache benefit) but drops to one rep for CI.
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "matrix/gemm.hpp"
#include "matrix/trsm.hpp"
#include "util/check.hpp"

namespace {

using namespace hetgrid;

bool same_bits(const ConstMatrixView& a, const ConstMatrixView& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t j = 0; j < a.cols(); ++j) {
    for (std::size_t i = 0; i < a.rows(); ++i) {
      const double x = a(i, j), y = b(i, j);
      if (std::memcmp(&x, &y, sizeof(double)) != 0) return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hetgrid;
  Cli cli(argc, argv,
          {{"n", "1024"}, {"nrhs", "0"}, {"reps", "3"}, {"seed", "31"},
           {"smoke", "0"}, {"csv", "0"}, {"json", "BENCH_trsm.json"}});
  bench::print_header("Blocked trsm throughput", cli);

  const bool smoke = cli.get_bool("smoke");
  const auto n = static_cast<std::size_t>(cli.get_int("n"));
  const auto nrhs_flag = static_cast<std::size_t>(cli.get_int("nrhs"));
  const std::size_t nrhs = nrhs_flag == 0 ? n : nrhs_flag;
  const int reps = smoke ? 1 : static_cast<int>(cli.get_int("reps"));
  HG_CHECK(n >= 2, "--n must be at least 2");

  const bool have_avx2 = gemm_force_kernel("avx2");
  gemm_force_kernel("auto");
  std::cout << "n = " << n << ", nrhs = " << nrhs
            << ", detected kernel: " << trsm_kernel_name()
            << (have_avx2 ? "" : " (avx2 unavailable — scalar rows only)")
            << "\n\n";

  // The unblocked reference runs first: it is both the "before" of the
  // speedup and the bit-identity anchor for every blocked configuration.
  std::vector<std::string> configs{"reference", "scalar"};
  if (have_avx2) configs.push_back("avx2");

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  Matrix l(n, n, 0.0);
  fill_random(l.view(), rng);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i <= j; ++i) l(i, j) = i == j ? 1.0 : 0.0;
  // Scale the strict lower triangle down so an n-deep substitution neither
  // overflows nor drowns the signal.
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = j + 1; i < n; ++i) l(i, j) /= double(n);
  Matrix b0(n, nrhs);
  fill_random(b0.view(), rng);

  // Forward substitution with a unit diagonal: row i of each right-hand
  // side takes i multiply-subtract pairs.
  const double flops = static_cast<double>(n) * static_cast<double>(n - 1) *
                       static_cast<double>(nrhs);

  Table table;
  table.header({"kernel", "n", "nrhs", "ms", "gflops", "identical"});
  bench::JsonReport json("bench_trsm_kernel", cli);

  Matrix ref(n, nrhs);
  Matrix x(n, nrhs);
  for (std::size_t idx = 0; idx < configs.size(); ++idx) {
    const std::string& cfg = configs[idx];
    const bool reference = cfg == "reference";
    if (!reference)
      HG_CHECK(gemm_force_kernel(cfg), "kernel unavailable: " << cfg);
    double best_ms = 0.0;
    for (int r = 0; r < reps; ++r) {
      x.view().copy_from(b0.view());
      const auto t0 = std::chrono::steady_clock::now();
      if (reference) {
        trsm_left_lower_unit_reference(l.view(), x.view());
      } else {
        trsm_left_lower_unit(l.view(), x.view());
      }
      const auto t1 = std::chrono::steady_clock::now();
      const double ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      if (r == 0 || ms < best_ms) best_ms = ms;
    }
    if (idx == 0) ref.view().copy_from(x.view());
    const bool identical = same_bits(x.view(), ref.view());
    HG_INTERNAL_CHECK(identical,
                      cfg << " diverged from the unblocked reference solve");
    const double gflops = best_ms > 0.0 ? flops / (best_ms * 1e6) : 0.0;
    table.row({cfg, std::to_string(n), std::to_string(nrhs),
               Table::num(best_ms, 2), Table::num(gflops, 2),
               identical ? "yes" : "NO"});
    json.add()
        .field("kernel", cfg)
        .field("n", static_cast<double>(n))
        .field("nrhs", static_cast<double>(nrhs))
        .field("ms", best_ms)
        .field("gflops", gflops)
        .field("identical", identical ? "yes" : "no");
  }
  gemm_force_kernel("auto");

  bench::emit(table, cli);
  json.write_file(cli.get_string("json"));
  return 0;
}
