// Message-passing model study, two questions:
//
// 1. Model fidelity: how much does the bulk-synchronous simulator (global
//    barrier per phase) overestimate the makespan relative to the
//    asynchronous message-passing execution (per-processor clocks, ring
//    pipelining, broadcast/compute overlap)? The *ranking* of strategies
//    must agree between models for the BSP benchmarks to be trustworthy.
//
// 2. The Kalinov–Lastovetsky communication penalty the paper argues from
//    Figure 3: K–L balances compute best, but its misaligned rows force
//    feeder messages beyond the grid rings. The MP runtime counts every
//    message, so the penalty becomes a number instead of an argument.
#include "bench/bench_common.hpp"
#include "matrix/norms.hpp"
#include "mp/mp_runtime.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace hetgrid;
  const Cli cli(argc, argv,
                {{"n", "96"},
                 {"block", "8"},
                 {"trials", "5"},
                 {"seed", "61"},
                 {"csv", "0"}});
  bench::print_header("Async message-passing vs bulk-synchronous model",
                      cli);

  const std::size_t n = static_cast<std::size_t>(cli.get_int("n"));
  const std::size_t block = static_cast<std::size_t>(cli.get_int("block"));
  const std::size_t nb = n / block;
  const int trials = static_cast<int>(cli.get_int("trials"));
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  const NetworkModel net{Topology::kSwitched, 1e-3, 2e-3, true};

  // --- Part 1: BSP vs async MMM and LU per strategy, 2x2 grids.
  {
    Table table("Part 1 — makespan: bulk-synchronous model vs async "
                "message-passing (2x2 grids)");
    table.header({"kernel", "strategy", "bsp_time", "mp_time", "mp/bsp",
                  "ranking_agrees"});
    RunningStats bsp_bc_m, mp_bc_m, bsp_het_m, mp_het_m;
    RunningStats bsp_bc_l, mp_bc_l, bsp_het_l, mp_het_l;
    int agree_m = 0, agree_l = 0;
    for (int t = 0; t < trials; ++t) {
      const std::vector<double> pool = rng.cycle_times(4, 0.1);
      const HeuristicResult h = solve_heuristic(2, 2, pool);
      const Machine m{h.final().grid, net};
      const PanelDistribution bc = PanelDistribution::block_cyclic(2, 2);
      const PanelDistribution het = PanelDistribution::from_allocation(
          h.final().grid, h.final().alloc, nb, nb, PanelOrder::kContiguous,
          PanelOrder::kInterleaved, "heuristic");

      Matrix a(n, n), b(n, n), c(n, n);
      fill_random(a.view(), rng);
      fill_random(b.view(), rng);

      const double s_bc = simulate_mmm(m, bc, nb).total_time;
      const double s_ht = simulate_mmm(m, het, nb).total_time;
      const double p_bc =
          run_mp_mmm(m, bc, a.view(), b.view(), c.view(), block).makespan;
      const double p_ht =
          run_mp_mmm(m, het, a.view(), b.view(), c.view(), block).makespan;
      bsp_bc_m.add(s_bc);
      mp_bc_m.add(p_bc);
      bsp_het_m.add(s_ht);
      mp_het_m.add(p_ht);
      if ((s_ht < s_bc) == (p_ht < p_bc)) ++agree_m;

      Matrix lu1(n, n), lu2(n, n);
      fill_diagonally_dominant(lu1.view(), rng);
      lu2.view().copy_from(lu1.view());
      const double sl_bc = simulate_lu(m, bc, nb).total_time;
      const double sl_ht = simulate_lu(m, het, nb).total_time;
      const double pl_bc = run_mp_lu(m, bc, lu1.view(), block).makespan;
      const double pl_ht = run_mp_lu(m, het, lu2.view(), block).makespan;
      bsp_bc_l.add(sl_bc);
      mp_bc_l.add(pl_bc);
      bsp_het_l.add(sl_ht);
      mp_het_l.add(pl_ht);
      if ((sl_ht < sl_bc) == (pl_ht < pl_bc)) ++agree_l;
    }
    auto row = [&](const char* kernel, const char* strat,
                   const RunningStats& bsp, const RunningStats& mp,
                   int agree) {
      table.row({kernel, strat, Table::num(bsp.mean(), 1),
                 Table::num(mp.mean(), 1),
                 Table::num(mp.mean() / bsp.mean(), 3),
                 std::to_string(agree) + "/" + std::to_string(trials)});
    };
    row("mmm", "block-cyclic", bsp_bc_m, mp_bc_m, agree_m);
    row("mmm", "heuristic", bsp_het_m, mp_het_m, agree_m);
    row("lu", "block-cyclic", bsp_bc_l, mp_bc_l, agree_l);
    row("lu", "heuristic", bsp_het_l, mp_het_l, agree_l);
    bench::emit(table, cli);
  }

  // --- Part 1b: lookahead ablation — deferring non-critical trailing work
  // takes the LU panel chain off the critical path.
  {
    Table table("Part 1b — LU lookahead ablation (async runtime)");
    table.header({"strategy", "no_lookahead", "lookahead", "gain_pct"});
    Rng rng2(static_cast<std::uint64_t>(cli.get_int("seed")) + 1);
    for (const char* strat : {"block-cyclic", "heuristic"}) {
      RunningStats t0, t1;
      for (int t = 0; t < trials; ++t) {
        const std::vector<double> pool = rng2.cycle_times(4, 0.1);
        const HeuristicResult h = solve_heuristic(2, 2, pool);
        const Machine m{h.final().grid, net};
        std::unique_ptr<Distribution2D> d;
        if (std::string(strat) == "block-cyclic")
          d = std::make_unique<PanelDistribution>(
              PanelDistribution::block_cyclic(2, 2));
        else
          d = std::make_unique<PanelDistribution>(
              PanelDistribution::from_allocation(
                  h.final().grid, h.final().alloc, nb, nb,
                  PanelOrder::kContiguous, PanelOrder::kInterleaved,
                  "heuristic"));
        Matrix a1(n, n), a2(n, n);
        fill_diagonally_dominant(a1.view(), rng2);
        a2.view().copy_from(a1.view());
        const KernelCosts costs;
        t0.add(run_mp_lu(m, *d, a1.view(), block, costs, false).makespan);
        t1.add(run_mp_lu(m, *d, a2.view(), block, costs, true).makespan);
      }
      table.row({strat, Table::num(t0.mean(), 1), Table::num(t1.mean(), 1),
                 Table::num(100.0 * (t0.mean() - t1.mean()) / t0.mean(), 1)});
    }
    bench::emit(table, cli);
  }

  // --- Part 2: K–L message overhead on the paper's {1,2;3,5} machine.
  {
    Table table("Part 2 — messages moved per MMM, aligned panel vs "
                "Kalinov-Lastovetsky ({1,2;3,5} machine)");
    table.header({"distribution", "messages", "blocks_moved", "makespan",
                  "aligned"});
    const CycleTimeGrid g(2, 2, {1, 2, 3, 5});
    const Machine m{g, net};
    const HeuristicResult h = solve_heuristic(2, 2, {1, 2, 3, 5});
    const std::size_t nb2 = 56;  // multiple of K-L's lcm(4,7) row period
    const std::size_t n2 = nb2 * block;

    const PanelDistribution het = PanelDistribution::from_allocation(
        h.final().grid, h.final().alloc, 28, 56, PanelOrder::kContiguous,
        PanelOrder::kContiguous, "heuristic-panel");
    const KalinovLastovetskyDistribution kl(g, {4, 7}, 61);

    Matrix a(n2, n2), b(n2, n2), c(n2, n2);
    fill_random(a.view(), rng);
    fill_random(b.view(), rng);

    const Machine mh{h.final().grid, net};
    const MpReport r_het =
        run_mp_mmm(mh, het, a.view(), b.view(), c.view(), block);
    const MpReport r_kl =
        run_mp_mmm(m, kl, a.view(), b.view(), c.view(), block);

    auto row = [&](const char* name, const MpReport& r, bool aligned) {
      table.row({name, Table::num(static_cast<std::int64_t>(r.messages)),
                 Table::num(r.blocks_moved, 0), Table::num(r.makespan, 1),
                 aligned ? "yes" : "no"});
    };
    row("heuristic-panel", r_het, true);
    row("kalinov-lastovetsky", r_kl, false);
    bench::emit(table, cli);
    std::cout << "K-L moves "
              << Table::num(r_kl.blocks_moved / r_het.blocks_moved, 2)
              << "x the data volume of the grid-aligned panel — the price "
                 "of dropping the paper's\n4-neighbor constraint.\n";
  }
  return 0;
}
