// Ablation: how far is the polynomial heuristic from the exhaustive
// optimum (exact spanning-tree solver over every non-decreasing
// arrangement)? The paper gives the exact method as exponential ground
// truth (Section 4.3) and the heuristic as the practical solver
// (Section 4.4); this bench quantifies the gap on the small grids where
// the exact search is feasible.
#include "bench/bench_common.hpp"
#include "core/local_search.hpp"

int main(int argc, char** argv) {
  using namespace hetgrid;
  const Cli cli(argc, argv,
                {{"trials", "25"}, {"seed", "17"}, {"csv", "0"}});
  bench::print_header(
      "Heuristic / local search vs exhaustive optimum — obj2 gap on small "
      "grids",
      cli);

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  const int trials = static_cast<int>(cli.get_int("trials"));

  struct Shape {
    std::size_t p, q;
  };
  const Shape shapes[] = {{2, 2}, {2, 3}, {2, 4}, {3, 3}};

  Table table;
  table.header({"grid", "heur_gap_pct", "ls_gap_pct", "heur/capacity",
                "ls/capacity", "opt/capacity"});
  for (const Shape& s : shapes) {
    RunningStats gap_h, gap_ls, heur_eff, ls_eff, opt_eff;
    for (int trial = 0; trial < trials; ++trial) {
      const std::vector<double> pool = rng.cycle_times(s.p * s.q, 0.05);
      const HeuristicResult h = solve_heuristic(s.p, s.q, pool);
      const LocalSearchResult ls = solve_local_search(s.p, s.q, pool);
      const OptimalArrangement opt =
          solve_optimal_arrangement(s.p, s.q, pool);
      const double cap = obj2_upper_bound(opt.grid);
      gap_h.add(100.0 * (opt.solution.obj2 - h.final().obj2) /
                opt.solution.obj2);
      gap_ls.add(100.0 * (opt.solution.obj2 - ls.obj2) /
                 opt.solution.obj2);
      heur_eff.add(h.final().obj2 / cap);
      ls_eff.add(ls.obj2 / cap);
      opt_eff.add(opt.solution.obj2 / cap);
    }
    table.row({std::to_string(s.p) + "x" + std::to_string(s.q),
               Table::num(gap_h.mean(), 3), Table::num(gap_ls.mean(), 3),
               Table::num(heur_eff.mean(), 4), Table::num(ls_eff.mean(), 4),
               Table::num(opt_eff.mean(), 4)});
  }
  bench::emit(table, cli);
  return 0;
}
