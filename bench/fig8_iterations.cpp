// Regenerates paper Figure 8: average number of heuristic steps until the
// arrangement refinement reaches a fixed point, vs n for n x n grids.
//
// Paper shape to reproduce: the iteration count grows with n but stays
// small ("one usually obtains satisfying results after a few steps only",
// Section 4.4.5).
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace hetgrid;
  const Cli cli(argc, argv,
                {{"nmin", "2"},
                 {"nmax", "12"},
                 {"trials", "200"},
                 {"seed", "42"},
                 {"csv", "0"}});
  bench::print_header(
      "Figure 8 — heuristic steps until the arrangement converges", cli);

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  Table table;
  table.header(
      {"n", "procs", "iters_mean", "ci95", "iters_max", "converged_frac"});
  for (std::int64_t n = cli.get_int("nmin"); n <= cli.get_int("nmax"); ++n) {
    const auto point = bench::run_heuristic_sweep(
        static_cast<std::size_t>(n), static_cast<int>(cli.get_int("trials")),
        rng);
    table.row({Table::num(n), Table::num(n * n),
               Table::num(point.iterations.mean(), 2),
               Table::num(point.iterations.ci95_halfwidth(), 2),
               Table::num(point.iterations.max(), 0),
               Table::num(point.converged.mean(), 3)});
  }
  bench::emit(table, cli);
  return 0;
}
