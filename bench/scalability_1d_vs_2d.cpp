// Why 2D grids? (paper Section 2.2: "2D-grids are the key to scalability")
//
// A 1 x n arrangement is *always* perfectly balanceable (any 1 x n matrix
// is rank 1), so on pure compute a linear array looks ideal. Its weakness
// is communication: the outer-product broadcast rings have length n
// instead of sqrt(n), and each ring must carry the *whole* column panel
// instead of a 1/sqrt(n) slice. This bench sweeps grid shapes for a fixed
// processor pool and several network costs, showing the crossover where
// squarer grids win despite their imperfect load balance. Broadcasts are
// simulated store-and-forward (no cross-step pipelining): in the solver
// kernels each step's panel depends on the previous step's update, so ring
// pipelines drain every step — this is precisely where long rings hurt.
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace hetgrid;
  const Cli cli(argc, argv,
                {{"procs", "16"},
                 {"trials", "6"},
                 {"nb", "96"},
                 {"seed", "47"},
                 {"csv", "0"}});
  bench::print_header("Grid shape sweep — 1D arrays vs 2D grids (MMM)", cli);

  const std::size_t n = static_cast<std::size_t>(cli.get_int("procs"));
  const std::size_t nb = static_cast<std::size_t>(cli.get_int("nb"));
  const int trials = static_cast<int>(cli.get_int("trials"));
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));

  std::vector<std::vector<double>> pools;
  for (int t = 0; t < trials; ++t) pools.push_back(rng.cycle_times(n));

  Table table;
  table.header({"shape", "block_transfer", "compute", "comm", "total",
                "slowdown_vs_perfect"});
  for (std::size_t p = 1; p <= n; ++p) {
    if (n % p != 0) continue;
    const std::size_t q = n / p;
    // The per-block transfer cost sweeps up to several times the average
    // cycle-time (~0.5): with r x r blocks, transfer is O(r^2) words while
    // an update is O(r^3) flops, so small blocks / slow networks genuinely
    // reach this regime on Ethernet-era NOWs.
    for (double beta : {0.01, 0.5, 2.0, 4.0}) {
      RunningStats compute, comm, total, slowdown;
      for (const auto& pool : pools) {
        const HeuristicResult h = solve_heuristic(p, q, pool);
        // The panel spans the whole block matrix: finest rounding, and the
        // period trivially divides nb, so shapes differ only by their
        // intrinsic balance and communication geometry.
        const PanelDistribution d = PanelDistribution::from_allocation(
            h.final().grid, h.final().alloc, nb, nb,
            PanelOrder::kContiguous, PanelOrder::kContiguous, "panel");
        const NetworkModel net{Topology::kSwitched, beta / 2.0, beta,
                               /*pipelined=*/false};
        const Machine m{h.final().grid, net};
        const SimReport rep = simulate_mmm(m, d, nb);
        compute.add(rep.compute_time);
        comm.add(rep.comm_time);
        total.add(rep.total_time);
        slowdown.add(rep.slowdown_vs_perfect());
      }
      table.row({std::to_string(p) + "x" + std::to_string(q),
                 Table::num(beta, 3), Table::num(compute.mean(), 1),
                 Table::num(comm.mean(), 2), Table::num(total.mean(), 1),
                 Table::num(slowdown.mean(), 3)});
    }
  }
  bench::emit(table, cli);
  std::cout << "Reading: 1xN balances perfectly (rank-1) but pays length-N "
               "broadcast rings;\nsquare grids trade a little balance for "
               "much shorter rings.\n";
  return 0;
}
