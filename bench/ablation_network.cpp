// Ablation: interconnect model (paper Section 2.2). Ethernet serializes
// every transmission in the machine while a switched (Myrinet-like)
// network only serializes per processor; pipelined ring broadcasts
// amortize hop latency. This bench sweeps the per-block transfer cost and
// reports the communication share of the simulated MMM makespan under
// each model, for the heuristic panel distribution.
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace hetgrid;
  const Cli cli(argc, argv,
                {{"p", "3"},
                 {"q", "3"},
                 {"trials", "8"},
                 {"seed", "29"},
                 {"nb", "72"},
                 {"csv", "0"}});
  bench::print_header("Network-model sweep — Ethernet vs switched", cli);

  const std::size_t p = static_cast<std::size_t>(cli.get_int("p"));
  const std::size_t q = static_cast<std::size_t>(cli.get_int("q"));
  const std::size_t nb = static_cast<std::size_t>(cli.get_int("nb"));
  const int trials = static_cast<int>(cli.get_int("trials"));
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));

  std::vector<HeuristicResult> machines;
  for (int t = 0; t < trials; ++t)
    machines.push_back(solve_heuristic(p, q, rng.cycle_times(p * q)));

  struct NetCase {
    const char* name;
    Topology topo;
    bool pipelined;
  };
  const NetCase cases[] = {
      {"switched-pipelined", Topology::kSwitched, true},
      {"switched-store&fwd", Topology::kSwitched, false},
      {"ethernet", Topology::kEthernet, true},
  };

  Table table;
  table.header({"block_transfer", "network", "total_time", "comm_frac",
                "slowdown_vs_perfect"});
  for (double beta : {1e-3, 1e-2, 1e-1, 0.5, 1.0}) {
    for (const NetCase& nc : cases) {
      RunningStats total, comm_frac, slowdown;
      for (const HeuristicResult& h : machines) {
        NetworkModel net{nc.topo, beta / 2.0, beta, nc.pipelined};
        const Machine m{h.final().grid, net};
        const PanelDistribution d = PanelDistribution::from_allocation(
            h.final().grid, h.final().alloc, 8 * p, 8 * q,
            PanelOrder::kContiguous, PanelOrder::kContiguous, "panel");
        const SimReport rep = simulate_mmm(m, d, nb);
        total.add(rep.total_time);
        comm_frac.add(rep.comm_time / rep.total_time);
        slowdown.add(rep.slowdown_vs_perfect());
      }
      table.row({Table::num(beta, 5), nc.name, Table::num(total.mean(), 2),
                 Table::num(comm_frac.mean(), 4),
                 Table::num(slowdown.mean(), 3)});
    }
  }
  bench::emit(table, cli);
  return 0;
}
