// Regenerates paper Figure 6: average workload (the mean of the busy-
// fraction matrix B = (r_i t_ij c_j)) of the converged heuristic, as a
// function of n for n x n grids of processors with random cycle-times in
// (0, 1].
//
// Paper shape to reproduce: the average workload stays high (well above
// the slowest-processor bound) and decreases slowly as the grid grows —
// larger grids are harder to balance under the r_i x c_j constraint.
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace hetgrid;
  const Cli cli(argc, argv,
                {{"nmin", "2"},
                 {"nmax", "12"},
                 {"trials", "200"},
                 {"seed", "42"},
                 {"csv", "0"}});
  bench::print_header(
      "Figure 6 — average workload of the converged heuristic (n x n grids, "
      "cycle-times ~ U(0,1])",
      cli);

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  Table table;
  table.header({"n", "procs", "avg_workload", "ci95", "first_step", "min",
                "max"});
  for (std::int64_t n = cli.get_int("nmin"); n <= cli.get_int("nmax"); ++n) {
    const auto point = bench::run_heuristic_sweep(
        static_cast<std::size_t>(n), static_cast<int>(cli.get_int("trials")),
        rng);
    table.row({Table::num(n), Table::num(n * n),
               Table::num(point.avg_workload_final.mean()),
               Table::num(point.avg_workload_final.ci95_halfwidth()),
               Table::num(point.avg_workload_first.mean()),
               Table::num(point.avg_workload_final.min()),
               Table::num(point.avg_workload_final.max())});
  }
  bench::emit(table, cli);
  return 0;
}
