// Regenerates paper Figure 7: the refinement gain
//   tau = obj2(after convergence) / obj2(after the first step) - 1
// as a function of n for n x n grids with random cycle-times in (0, 1].
//
// Paper shape to reproduce: tau is positive on average (iterative
// refinement of the arrangement helps) and is worth a few percent.
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace hetgrid;
  const Cli cli(argc, argv,
                {{"nmin", "2"},
                 {"nmax", "12"},
                 {"trials", "200"},
                 {"seed", "42"},
                 {"csv", "0"}});
  bench::print_header(
      "Figure 7 — refinement gain tau = obj(converged)/obj(first step) - 1",
      cli);

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  Table table;
  table.header({"n", "procs", "tau_mean", "ci95", "tau_p90", "tau_max"});
  for (std::int64_t n = cli.get_int("nmin"); n <= cli.get_int("nmax"); ++n) {
    Rng trial_rng(rng());  // decouple per-n streams
    std::vector<double> taus;
    const int trials = static_cast<int>(cli.get_int("trials"));
    RunningStats stats;
    for (int t = 0; t < trials; ++t) {
      const HeuristicResult res = solve_heuristic(
          static_cast<std::size_t>(n), static_cast<std::size_t>(n),
          trial_rng.cycle_times(static_cast<std::size_t>(n * n)));
      taus.push_back(res.refinement_gain());
      stats.add(res.refinement_gain());
    }
    table.row({Table::num(n), Table::num(n * n), Table::num(stats.mean()),
               Table::num(stats.ci95_halfwidth()),
               Table::num(percentile(taus, 90.0)),
               Table::num(stats.max())});
  }
  bench::emit(table, cli);
  return 0;
}
