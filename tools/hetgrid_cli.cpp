// hetgrid command-line interface.
//
// Subcommands:
//   solve     --times=1,2,3,6 --p=2 --q=2 [--solver=heuristic|exact|auto]
//             [--threads=1] [--max-trees=50000000]
//             solve the 2D load-balancing problem, print the arrangement,
//             shares, workload matrix, and objective. --threads parallelizes
//             the exact branch-and-bound (0 = all hardware threads) without
//             changing any output bit.
//   design    --times=... [--spread-report]
//             sweep all grid shapes for the pool and recommend one.
//   panel     --times=... --p=2 --q=2 --bp=8 --bq=6 [--order=lu|mmm]
//             print the rounded block panel (slot maps + multiplicities)
//             and its neighbor census.
//   simulate  --times=... --p=2 --q=2 --kernel=mmm|lu|qr|chol --nb=64
//             [--network=free|switched|ethernet] [--strategy=...]
//             simulate a kernel under a strategy and print the report.
//   trace     --times=... --p=2 --q=2 --kernel=mmm|lu|qr|chol --nb=16
//             [--backend=sim|mp] [--out=trace.json] [--threads=1] [...]
//             run a kernel with the trace recorder on, write a Chrome /
//             Perfetto trace.json, and print per-processor utilization.
//             --threads parallelizes the mp backend's real block math
//             (0 = all hardware threads); trace and numerics are
//             bit-identical for any thread count.
//   profile   --times=... --p=2 --q=2 [--out=profile.json]
//             [--metrics=metrics.json] [--threads=1] [--smoke=0]
//             run a representative workload (exact solve + mp LU) under
//             the wall-clock profiler and metrics registry; --smoke runs
//             the determinism self-checks instead (bit-identical results
//             with the profiler attached, byte-stable metrics snapshots).
//   observe   --times=... --p=2 --q=2 --kernel=mmm|lu|qr|chol [--nb=8]
//             [--backend=sim|mp] [--block=4] [--threads=1]
//             [--scheduler=barrier|dag] [--json] [--out=imbalance.json]
//             run one kernel under the cycle-time estimator and print the
//             load-imbalance report: makespan vs the paper's lower bound,
//             per-processor busy/idle/slack, critical-path attribution
//             (dag scheduler), estimated vs true t_ij, and drift events.
//             --smoke=1 runs the observatory self-check instead.
//   serve     [--port=0 | --unix=path] [--threads=2] [--no-refine]
//             run the placement server (doc/server.md): length-prefixed
//             binary requests over TCP or a unix socket, answered through
//             the canonicalizing solution cache. --smoke=1 instead runs
//             the concurrent loopback self-check (--clients client threads
//             hammer the in-process server; every response must be
//             bit-identical to a direct solver call and the warm phase
//             must hit the cache).
//   query     --times=1,2,3,6 --p=2 --q=2 [--port=7070 | --unix=path]
//             [--mode=auto|exact|heuristic] [--deadline-us=0] [--stats]
//             send one placement request to a running server and print
//             the arrangement, shares, and cache/solver provenance.
//             --stats instead asks for the server's kStats introspection
//             snapshot: cache occupancy, metrics JSON, estimator lanes.
//
// solve and trace also take [--profile=prof.json] [--metrics=metrics.json]
// to attach the wall-clock profiler / metrics registry to that run.
//
// Everything prints aligned tables; add --csv for machine-readable copies.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "hetgrid.hpp"
#include "util/cli.hpp"

namespace hetgrid::cli {

std::vector<double> parse_times(const std::string& csv) {
  return parse_positive_list(csv);
}

void print_allocation(const CycleTimeGrid& grid, const GridAllocation& alloc,
                      std::ostream& os) {
  os << "arrangement (cycle-times):\n" << grid.to_string(4);
  os << "row shares r:";
  for (double r : alloc.r) os << ' ' << Table::num(r, 4);
  os << "\ncolumn shares c:";
  for (double c : alloc.c) os << ' ' << Table::num(c, 4);
  os << "\nworkload matrix B (busy fractions):\n";
  const std::vector<double> b = workload_matrix(grid, alloc);
  for (std::size_t i = 0; i < grid.rows(); ++i) {
    for (std::size_t j = 0; j < grid.cols(); ++j)
      os << (j ? " " : "") << Table::num(b[i * grid.cols() + j], 4);
    os << '\n';
  }
  os << "objective (sum r)(sum c) = " << Table::num(obj2_value(alloc), 4)
     << "  of capacity bound " << Table::num(obj2_upper_bound(grid), 4)
     << "  (" << Table::num(100.0 * obj2_value(alloc) / obj2_upper_bound(grid),
                            1)
     << "%)\naverage workload = "
     << Table::num(average_workload(grid, alloc), 4) << '\n';
}

// Attaches the wall-clock profiler and/or a metrics registry to the scope
// between begin() and end(); either path may be empty (that side is then a
// no-op and the run is indistinguishable from an uninstrumented one).
// A profiled scope always collects metrics so the hotspot table can carry
// the machinery counters in its footer; the snapshot is written to disk
// only when a --metrics path was given.
struct ProfileSession {
  std::string profile_path, metrics_path;
  Profiler profiler;
  MetricsRegistry metrics;
  MetricsRegistry* prev_metrics = nullptr;
  bool metrics_installed = false;

  ProfileSession(std::string profile, std::string metric_out)
      : profile_path(std::move(profile)), metrics_path(std::move(metric_out)) {}

  void begin() {
    if (!metrics_path.empty() || !profile_path.empty()) {
      prev_metrics = install_metrics(&metrics);
      metrics_installed = true;
    }
    if (!profile_path.empty()) profiler.start();
  }

  void end(std::ostream& os) {
    if (metrics_installed) install_metrics(prev_metrics);
    if (!profile_path.empty()) {
      profiler.stop();
      std::ofstream f(profile_path);
      HG_CHECK(f.good(), "cannot open --profile file: " << profile_path);
      profiler.write_chrome(f);
      profiler.hotspot_table().print(os);
      // Footer: the run's machinery counters, so one glance links hotspot
      // time to scheduler and cache behavior (doc/observability.md).
      os << "run counters: pool.steals="
         << metrics.counter("pool.steals").value()
         << " gemm.pack_hits=" << metrics.counter("gemm.pack_hits").value()
         << " gemm.pack_misses="
         << metrics.counter("gemm.pack_misses").value()
         << " gemm.pack_evictions="
         << metrics.counter("gemm.pack_evictions").value()
         << " block_store.pool_evictions="
         << metrics.counter("block_store.pool_evictions").value() << '\n';
      os << "wrote " << profiler.lanes() << "-lane profile to "
         << profile_path << '\n';
    }
    if (!metrics_path.empty()) {
      std::ofstream f(metrics_path);
      HG_CHECK(f.good(), "cannot open --metrics file: " << metrics_path);
      metrics.write_json(f);
      os << "wrote metrics to " << metrics_path << '\n';
    }
  }
};

int run_solve(const Cli& cli) {
  const std::vector<double> pool = parse_times(cli.get_string("times"));
  const auto p = static_cast<std::size_t>(cli.get_int("p"));
  const auto q = static_cast<std::size_t>(cli.get_int("q"));
  HG_CHECK(p * q == pool.size(),
           "--p * --q must equal the number of cycle-times");

  ExactSolverOptions exact_opts;
  const long long threads = cli.get_int("threads");
  HG_CHECK(threads >= 0, "--threads must be >= 0 (0 = all hardware threads)");
  exact_opts.threads = static_cast<unsigned>(threads);
  const long long max_trees = cli.get_int("max-trees");
  HG_CHECK(max_trees > 0, "--max-trees must be positive");
  exact_opts.max_trees = static_cast<std::uint64_t>(max_trees);

  const std::string solver = cli.get_string("solver");
  if (solver == "heuristic") {
    const HeuristicResult res = solve_heuristic(p, q, pool);
    std::cout << "solver: heuristic (" << res.iterations() << " steps, "
              << (res.converged ? "converged" : "step cap hit") << ")\n";
    print_allocation(res.final().grid, res.final().alloc, std::cout);
    return 0;
  }
  if (solver == "exact" ||
      (solver == "auto" && exact_solver_cost(p, q) <= 100000 &&
       pool.size() <= 10)) {
    const OptimalArrangement opt =
        solve_optimal_arrangement(p, q, pool, exact_opts);
    std::cout << "solver: exact (" << opt.arrangements_tried
              << " non-decreasing arrangements x "
              << exact_solver_cost(p, q) << " spanning trees, "
              << (exact_opts.threads == 0 ? std::string("all")
                                          : std::to_string(exact_opts.threads))
              << " thread(s); best arrangement: " << opt.solution.nodes_visited
              << " nodes, " << opt.solution.subtrees_pruned << " pruned, "
              << opt.solution.trees_acceptable << " acceptable trees)\n";
    print_allocation(opt.grid, opt.solution.alloc, std::cout);
    return 0;
  }
  HG_CHECK(solver == "auto", "unknown --solver: " << solver);
  const HeuristicResult res = solve_heuristic(p, q, pool);
  std::cout << "solver: heuristic (exact too costly for this size; "
            << res.iterations() << " steps)\n";
  print_allocation(res.final().grid, res.final().alloc, std::cout);
  return 0;
}

int cmd_solve(int argc, const char* const* argv) {
  const Cli cli(argc, argv,
                {{"times", ""}, {"p", "0"}, {"q", "0"},
                 {"solver", "auto"}, {"csv", "0"},
                 {"threads", "1"}, {"max-trees", "50000000"},
                 {"profile", ""}, {"metrics", ""}});
  ProfileSession session(cli.get_string("profile"), cli.get_string("metrics"));
  session.begin();
  const int rc = run_solve(cli);
  session.end(std::cout);
  return rc;
}

int cmd_design(int argc, const char* const* argv) {
  const Cli cli(argc, argv, {{"times", ""}, {"csv", "0"}});
  const std::vector<double> pool = parse_times(cli.get_string("times"));
  const std::size_t n = pool.size();

  Table table("grid shapes for " + std::to_string(n) + " processors");
  table.header({"shape", "obj2", "efficiency", "steps"});
  double best_eff = 0.0;
  std::string best;
  for (std::size_t p = 1; p <= n; ++p) {
    if (n % p != 0) continue;
    const std::size_t q = n / p;
    const HeuristicResult h = solve_heuristic(p, q, pool);
    const double eff = h.final().obj2 / obj2_upper_bound(h.final().grid);
    table.row({std::to_string(p) + "x" + std::to_string(q),
               Table::num(h.final().obj2, 4), Table::num(eff, 4),
               Table::num(static_cast<std::int64_t>(h.iterations()))});
    if (eff > best_eff) {
      best_eff = eff;
      best = std::to_string(p) + "x" + std::to_string(q);
    }
  }
  table.print(std::cout);
  if (cli.get_bool("csv")) table.print_csv(std::cout);
  std::cout << "recommended: " << best << " ("
            << Table::num(100.0 * best_eff, 1) << "% of aggregate speed)\n";
  return 0;
}

int cmd_panel(int argc, const char* const* argv) {
  const Cli cli(argc, argv,
                {{"times", ""}, {"p", "0"}, {"q", "0"}, {"bp", "0"},
                 {"bq", "0"}, {"order", "lu"}, {"csv", "0"}});
  const std::vector<double> pool = parse_times(cli.get_string("times"));
  const auto p = static_cast<std::size_t>(cli.get_int("p"));
  const auto q = static_cast<std::size_t>(cli.get_int("q"));
  HG_CHECK(p * q == pool.size(),
           "--p * --q must equal the number of cycle-times");
  const auto bp = static_cast<std::size_t>(cli.get_int("bp"));
  const auto bq = static_cast<std::size_t>(cli.get_int("bq"));
  HG_CHECK(bp >= p && bq >= q, "--bp/--bq must be at least --p/--q");
  const std::string order = cli.get_string("order");
  HG_CHECK(order == "lu" || order == "mmm",
           "--order must be lu (interleaved columns) or mmm (contiguous)");

  const HeuristicResult h = solve_heuristic(p, q, pool);
  const PanelDistribution dist = PanelDistribution::from_allocation(
      h.final().grid, h.final().alloc, bp, bq, PanelOrder::kContiguous,
      order == "lu" ? PanelOrder::kInterleaved : PanelOrder::kContiguous,
      "panel");

  std::cout << "arrangement:\n" << h.final().grid.to_string(4);
  std::cout << "panel " << bp << "x" << bq << "\nrow slot map:   ";
  for (std::size_t g : dist.row_map()) std::cout << g << ' ';
  std::cout << "\ncolumn slot map:";
  for (std::size_t g : dist.col_map()) std::cout << ' ' << g;
  std::cout << "\nrow multiplicities:";
  for (std::size_t m : dist.row_multiplicities()) std::cout << ' ' << m;
  std::cout << "\ncolumn multiplicities:";
  for (std::size_t m : dist.col_multiplicities()) std::cout << ' ' << m;
  const NeighborCensus census = neighbor_census(dist);
  std::cout << "\naligned (4-neighbor grid pattern): "
            << (census.grid_pattern() ? "yes" : "no")
            << "\nmax west neighbors: " << census.max_west_neighbors
            << ", max north neighbors: " << census.max_north_neighbors
            << '\n';
  return 0;
}

NetworkModel parse_network_flag(const std::string& network) {
  if (network == "free") return NetworkModel::free();
  if (network == "switched") return {Topology::kSwitched, 1e-4, 2e-4, true};
  if (network == "ethernet") return {Topology::kEthernet, 1e-4, 2e-4, true};
  HG_CHECK(false, "unknown --network: " << network);
}

// Parses a comma-separated processor index list ("0,1,3") — unlike
// parse_positive_list, index 0 is valid.
std::vector<std::size_t> parse_proc_list(const std::string& csv) {
  std::vector<std::size_t> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string tok = csv.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    HG_CHECK(!tok.empty() &&
                 tok.find_first_not_of("0123456789") == std::string::npos,
             "bad processor index in --straggler: '" << tok << "'");
    out.push_back(static_cast<std::size_t>(std::stoull(tok)));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  HG_CHECK(!out.empty(), "empty --straggler processor list");
  return out;
}

// Folds the shared dynamic-run flags into `opts` (doc/rebalance.md):
// --rebalance=off|panel turns the panel-boundary rebalancer on, the
// --straggler preset slows the listed processors by --straggler-factor
// from step --straggler-onset (--straggler-recover > 0 heals them there),
// and --ewma-alpha / --drift-band configure the estimator when the caller
// declares them. Returns true when the run needs the dynamic path.
bool apply_dynamic_flags(const Cli& cli, RuntimeOptions& opts) {
  bool dynamic = false;
  const std::string reb = cli.get_string("rebalance");
  if (reb == "panel") {
    opts.rebalance = RuntimeOptions::Rebalance::kPanel;
    dynamic = true;
  } else {
    HG_CHECK(reb == "off", "--rebalance must be off or panel, got " << reb);
  }
  const std::string straggler = cli.get_string("straggler");
  if (!straggler.empty()) {
    const double factor = cli.get_double("straggler-factor");
    HG_CHECK(factor > 0.0, "--straggler-factor must be positive");
    const long long onset = cli.get_int("straggler-onset");
    const long long recover = cli.get_int("straggler-recover");
    HG_CHECK(onset >= 0 && recover >= 0,
             "--straggler-onset/--straggler-recover must be >= 0");
    opts.trace = CycleTimeTrace::straggler(
        parse_proc_list(straggler), factor, static_cast<std::size_t>(onset),
        static_cast<std::size_t>(recover));
    dynamic = true;
  }
  if (cli.has("ewma-alpha")) {
    const double alpha = cli.get_double("ewma-alpha");
    HG_CHECK(alpha > 0.0 && alpha <= 1.0, "--ewma-alpha must be in (0, 1]");
    opts.estimator.alpha = alpha;
  }
  if (cli.has("drift-band")) {
    const double band = cli.get_double("drift-band");
    HG_CHECK(band > 0.0, "--drift-band must be positive");
    opts.estimator.drift_band = band;
  }
  if (cli.has("min-samples")) {
    const long long ms = cli.get_int("min-samples");
    HG_CHECK(ms >= 1, "--min-samples must be >= 1");
    opts.estimator.min_samples = static_cast<std::uint64_t>(ms);
  }
  return dynamic;
}

struct StrategyChoice {
  CycleTimeGrid grid;
  std::unique_ptr<Distribution2D> dist;
};

StrategyChoice build_strategy(const std::string& strategy, std::size_t p,
                              std::size_t q, const std::vector<double>& pool,
                              std::size_t scale) {
  StrategyChoice out{CycleTimeGrid::sorted_row_major(p, q, pool), nullptr};
  if (strategy == "block-cyclic") {
    out.dist = std::make_unique<PanelDistribution>(
        PanelDistribution::block_cyclic(p, q));
  } else if (strategy == "kl") {
    out.dist = std::make_unique<KalinovLastovetskyDistribution>(
        out.grid, scale * p, scale * q);
  } else if (strategy == "heuristic") {
    const HeuristicResult h = solve_heuristic(p, q, pool);
    out.grid = h.final().grid;
    out.dist = std::make_unique<PanelDistribution>(
        PanelDistribution::from_allocation(
            out.grid, h.final().alloc, scale * p, scale * q,
            PanelOrder::kContiguous, PanelOrder::kInterleaved, "heuristic"));
  } else {
    HG_CHECK(false, "unknown --strategy: " << strategy
                                           << " (block-cyclic|kl|heuristic)");
  }
  return out;
}

int cmd_simulate(int argc, const char* const* argv) {
  const Cli cli(argc, argv,
                {{"times", ""}, {"p", "0"}, {"q", "0"},
                 {"kernel", "mmm"}, {"nb", "64"}, {"network", "switched"},
                 {"strategy", "heuristic"}, {"scale", "8"}, {"csv", "0"},
                 {"trace", "0"}, {"rebalance", "off"}, {"straggler", ""},
                 {"straggler-factor", "4"}, {"straggler-onset", "0"},
                 {"straggler-recover", "0"}, {"ewma-alpha", "0.25"},
                 {"drift-band", "0.5"}, {"min-samples", "2"}});
  const std::vector<double> pool = parse_times(cli.get_string("times"));
  const auto p = static_cast<std::size_t>(cli.get_int("p"));
  const auto q = static_cast<std::size_t>(cli.get_int("q"));
  HG_CHECK(p * q == pool.size(),
           "--p * --q must equal the number of cycle-times");
  const auto nb = static_cast<std::size_t>(cli.get_int("nb"));
  const auto scale = static_cast<std::size_t>(cli.get_int("scale"));

  const std::string network = cli.get_string("network");
  const NetworkModel net = parse_network_flag(network);
  const std::string strategy = cli.get_string("strategy");
  StrategyChoice choice = build_strategy(strategy, p, q, pool, scale);
  const CycleTimeGrid& grid = choice.grid;
  const std::unique_ptr<Distribution2D>& dist = choice.dist;

  const Machine machine{grid, net};
  const std::string kernel = cli.get_string("kernel");
  RuntimeOptions dyn_opts;
  const bool dynamic = apply_dynamic_flags(cli, dyn_opts);
  DynamicSimReport dyn_rep;
  SimReport rep;
  if (dynamic) {
    if (kernel == "mmm")
      dyn_rep = simulate_mmm_dynamic(machine, *dist, nb, dyn_opts);
    else if (kernel == "lu")
      dyn_rep = simulate_lu_dynamic(machine, *dist, nb, dyn_opts);
    else if (kernel == "qr")
      dyn_rep = simulate_qr_dynamic(machine, *dist, nb, dyn_opts);
    else if (kernel == "chol")
      dyn_rep = simulate_cholesky_dynamic(machine, *dist, nb, dyn_opts);
    else
      HG_CHECK(false, "unknown --kernel: " << kernel);
    rep = dyn_rep;
  } else if (kernel == "mmm")
    rep = simulate_mmm(machine, *dist, nb);
  else if (kernel == "lu")
    rep = simulate_lu(machine, *dist, nb);
  else if (kernel == "qr")
    rep = simulate_qr(machine, *dist, nb);
  else if (kernel == "chol")
    rep = simulate_cholesky(machine, *dist, nb);
  else
    HG_CHECK(false, "unknown --kernel: " << kernel);

  Table table("simulated " + kernel + " (" + std::to_string(nb) + "x" +
              std::to_string(nb) + " blocks, " + strategy + ", " + network +
              ")");
  table.header({"metric", "value"});
  table.row({"total time (s)", Table::num(rep.total_time, 2)});
  table.row({"compute time (s)", Table::num(rep.compute_time, 2)});
  table.row({"comm time (s)", Table::num(rep.comm_time, 2)});
  table.row({"perfect bound (s)", Table::num(rep.perfect_compute_bound, 2)});
  table.row({"slowdown vs perfect", Table::num(rep.slowdown_vs_perfect(), 3)});
  table.row({"avg utilization", Table::num(rep.average_utilization(), 3)});
  if (dynamic) {
    table.row({"rebalance re-solves",
               Table::num(static_cast<std::int64_t>(dyn_rep.resolves))});
    table.row({"rebalances applied",
               Table::num(static_cast<std::int64_t>(dyn_rep.migrations))});
    table.row({"blocks migrated",
               Table::num(static_cast<std::int64_t>(dyn_rep.blocks_moved))});
  }
  table.print(std::cout);
  if (cli.get_bool("csv")) table.print_csv(std::cout);
  for (const RebalanceEvent& e : dyn_rep.events)
    std::cout << "rebalance: step " << e.step << " moved " << e.blocks_moved
              << " blocks, sweep " << Table::num(e.current_sweep, 3) << " -> "
              << Table::num(e.proposed_sweep, 3) << " (cost "
              << Table::num(e.migration_cost, 4) << ")\n";

  if (cli.get_bool("trace")) {
    Table trace("per-step timeline (first and last 5 steps)");
    trace.header({"step", "panel", "row", "update", "comm"});
    auto emit_step = [&](const StepRecord& s) {
      trace.row({Table::num(static_cast<std::int64_t>(s.step)),
                 Table::num(s.panel, 3), Table::num(s.row, 3),
                 Table::num(s.update, 3), Table::num(s.comm, 4)});
    };
    const std::size_t total = rep.steps.size();
    for (std::size_t i = 0; i < std::min<std::size_t>(5, total); ++i)
      emit_step(rep.steps[i]);
    if (total > 10) trace.row({"...", "", "", "", ""});
    for (std::size_t i = total > 5 ? std::max<std::size_t>(5, total - 5) : total;
         i < total; ++i)
      emit_step(rep.steps[i]);
    std::cout << '\n';
    trace.print(std::cout);
  }
  return 0;
}

int run_trace(const Cli& cli) {
  const std::vector<double> pool = parse_times(cli.get_string("times"));
  const auto p = static_cast<std::size_t>(cli.get_int("p"));
  const auto q = static_cast<std::size_t>(cli.get_int("q"));
  HG_CHECK(p * q == pool.size(),
           "--p * --q must equal the number of cycle-times");
  const auto nb = static_cast<std::size_t>(cli.get_int("nb"));
  const auto scale = static_cast<std::size_t>(cli.get_int("scale"));
  const auto block = static_cast<std::size_t>(cli.get_int("block"));
  const std::string backend = cli.get_string("backend");
  const std::string kernel = cli.get_string("kernel");
  const std::string out_path = cli.get_string("out");
  const long long threads = cli.get_int("threads");
  HG_CHECK(threads >= 0, "--threads must be >= 0 (0 = all hardware threads)");
  RuntimeOptions run_opts;
  run_opts.threads = static_cast<unsigned>(threads);
  const std::string scheduler = cli.get_string("scheduler");
  if (scheduler == "dag")
    run_opts.scheduler = RuntimeOptions::Scheduler::kDag;
  else
    HG_CHECK(scheduler == "barrier",
             "--scheduler must be barrier or dag, got " << scheduler);
  HG_CHECK(backend == "mp" || scheduler == "barrier",
           "--scheduler only applies to --backend=mp");
  const bool dynamic = apply_dynamic_flags(cli, run_opts);
  HG_CHECK(backend == "mp" || !dynamic,
           "--rebalance/--straggler apply to --backend=mp (use `hetgrid "
           "simulate` for the bulk-synchronous dynamic model)");

  const NetworkModel net = parse_network_flag(cli.get_string("network"));
  StrategyChoice choice =
      build_strategy(cli.get_string("strategy"), p, q, pool, scale);
  const Machine machine{choice.grid, net};
  const Distribution2D& dist = *choice.dist;

  MemoryTraceSink sink;
  const KernelCosts costs;
  double makespan = 0.0;
  if (backend == "sim") {
    SimReport rep;
    if (kernel == "mmm")
      rep = simulate_mmm(machine, dist, nb, costs, &sink);
    else if (kernel == "lu")
      rep = simulate_lu(machine, dist, nb, costs, &sink);
    else if (kernel == "qr")
      rep = simulate_qr(machine, dist, nb, costs, &sink);
    else if (kernel == "chol")
      rep = simulate_cholesky(machine, dist, nb, costs, &sink);
    else
      HG_CHECK(false, "unknown --kernel: " << kernel);
    makespan = rep.total_time;
  } else if (backend == "mp") {
    // The message-passing runtime executes real arithmetic, so build a
    // small n = nb * block matrix and run it for real.
    const std::size_t n = nb * block;
    Rng rng(7);
    MpReport rep;
    if (kernel == "mmm") {
      Matrix a(n, n), b(n, n), c(n, n);
      fill_random(a.view(), rng);
      fill_random(b.view(), rng);
      rep = run_mp_mmm(machine, dist, a.view(), b.view(), c.view(), block,
                       costs, &sink, run_opts);
    } else if (kernel == "lu") {
      Matrix a(n, n);
      fill_diagonally_dominant(a.view(), rng);
      rep = run_mp_lu(machine, dist, a.view(), block, costs, false, &sink,
                      run_opts);
    } else if (kernel == "chol") {
      Matrix a(n, n);
      fill_spd(a.view(), rng);
      rep = run_mp_cholesky(machine, dist, a.view(), block, costs, &sink,
                            run_opts);
    } else if (kernel == "qr") {
      Matrix a(n, n);
      fill_random(a.view(), rng);
      rep = run_mp_qr(machine, dist, a.view(), block, costs, &sink,
                      run_opts);
    } else {
      HG_CHECK(false, "mp backend supports --kernel=mmm|lu|chol|qr, got "
                          << kernel);
    }
    makespan = rep.makespan;
    if (run_opts.rebalance == RuntimeOptions::Rebalance::kPanel)
      std::cout << "rebalance: " << rep.rebalances << " applied, "
                << rep.rebalance_blocks << " blocks migrated\n";
  } else {
    HG_CHECK(false, "unknown --backend: " << backend << " (sim|mp)");
  }

  std::vector<double> cycle_times(p * q);
  for (std::size_t i = 0; i < p; ++i)
    for (std::size_t j = 0; j < q; ++j)
      cycle_times[i * q + j] = machine.grid(i, j);
  const std::vector<std::string> labels =
      proc_lane_labels(p, q, cycle_times.data());

  std::vector<TraceEvent> events = sink.events();
  append_idle_events(events, p * q, makespan);
  {
    std::ofstream os(out_path);
    HG_CHECK(os.good(), "cannot open --out file: " << out_path);
    write_chrome_trace(os, events, p * q, labels);
  }

  const TraceSummary summary = summarize_trace(sink.events(), p * q, makespan);
  Table table = utilization_table(
      summary, labels,
      kernel + " on " + std::to_string(p) + "x" + std::to_string(q) + " (" +
          backend + " backend), makespan " + Table::num(summary.makespan, 3) +
          " s");
  table.print(std::cout);
  if (cli.get_bool("csv")) table.print_csv(std::cout);
  std::cout << "wrote " << events.size() << " events to " << out_path
            << " (open in https://ui.perfetto.dev or chrome://tracing)\n";
  return 0;
}

int trace_rebalance_smoke();

int cmd_trace(int argc, const char* const* argv) {
  const Cli cli(argc, argv,
                {{"times", ""}, {"p", "0"}, {"q", "0"},
                 {"kernel", "mmm"}, {"nb", "16"}, {"backend", "sim"},
                 {"network", "switched"}, {"strategy", "heuristic"},
                 {"scale", "8"}, {"block", "4"}, {"out", "trace.json"},
                 {"csv", "0"}, {"threads", "1"}, {"scheduler", "barrier"},
                 {"profile", ""}, {"metrics", ""}, {"rebalance", "off"},
                 {"straggler", ""}, {"straggler-factor", "4"},
                 {"straggler-onset", "0"}, {"straggler-recover", "0"},
                 {"smoke", "0"}});
  if (cli.get_bool("smoke")) return trace_rebalance_smoke();
  ProfileSession session(cli.get_string("profile"), cli.get_string("metrics"));
  session.begin();
  const int rc = run_trace(cli);
  session.end(std::cout);
  return rc;
}

// The representative workload behind `hetgrid profile`: a parallel exact
// solve (branch-and-bound fan-out) followed by a real message-passing LU
// (block math + pooled numerics). Returns enough state to compare two runs
// bit for bit.
struct ProfileWorkloadResult {
  double obj2 = 0.0;
  Matrix lu;
};

ProfileWorkloadResult run_profile_workload(const std::vector<double>& pool,
                                           std::size_t p, std::size_t q,
                                           unsigned threads, std::size_t nb,
                                           std::size_t block) {
  ExactSolverOptions eo;
  eo.threads = threads;
  const OptimalArrangement opt = solve_optimal_arrangement(p, q, pool, eo);

  const CycleTimeGrid grid = CycleTimeGrid::sorted_row_major(p, q, pool);
  const PanelDistribution dist = PanelDistribution::block_cyclic(p, q);
  const Machine machine{grid, parse_network_flag("switched")};
  RuntimeOptions ro;
  ro.threads = threads;
  Rng rng(7);
  ProfileWorkloadResult out;
  out.obj2 = opt.solution.obj2;
  out.lu = Matrix(nb * block, nb * block);
  fill_diagonally_dominant(out.lu.view(), rng);
  run_mp_lu(machine, dist, out.lu.view(), block, KernelCosts{}, false,
            nullptr, ro);
  return out;
}

bool same_bits(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i)
      if (a.view()(i, j) != b.view()(i, j)) return false;
  return true;
}

int cmd_profile(int argc, const char* const* argv) {
  const Cli cli(argc, argv,
                {{"times", "1,2,3,4,5,6"}, {"p", "2"}, {"q", "3"},
                 {"nb", "6"}, {"block", "8"}, {"threads", "1"},
                 {"out", "profile.json"}, {"metrics", ""}, {"smoke", "0"}});
  const std::vector<double> pool = parse_times(cli.get_string("times"));
  const auto p = static_cast<std::size_t>(cli.get_int("p"));
  const auto q = static_cast<std::size_t>(cli.get_int("q"));
  HG_CHECK(p * q == pool.size(),
           "--p * --q must equal the number of cycle-times");
  const auto nb = static_cast<std::size_t>(cli.get_int("nb"));
  const auto block = static_cast<std::size_t>(cli.get_int("block"));
  const long long threads = cli.get_int("threads");
  HG_CHECK(threads >= 0, "--threads must be >= 0 (0 = all hardware threads)");

  if (cli.get_bool("smoke")) {
    // Determinism self-checks, all at --threads=1 (the byte-stability
    // contract of obs/metrics holds only on the serial path).
    const ProfileWorkloadResult plain =
        run_profile_workload(pool, p, q, 1, nb, block);

    MetricsRegistry m1;
    Profiler prof1;
    install_metrics(&m1);
    prof1.start();
    const ProfileWorkloadResult instr =
        run_profile_workload(pool, p, q, 1, nb, block);
    prof1.stop();
    install_metrics(nullptr);
    HG_CHECK(instr.obj2 == plain.obj2 && same_bits(instr.lu, plain.lu),
             "profiled run changed a computed result");

    MetricsRegistry m2;
    install_metrics(&m2);
    const ProfileWorkloadResult again =
        run_profile_workload(pool, p, q, 1, nb, block);
    install_metrics(nullptr);
    HG_CHECK(same_bits(again.lu, plain.lu), "repeat run diverged");
    HG_CHECK(m1.snapshot_json() == m2.snapshot_json(),
             "metrics snapshot is not byte-stable across identical runs");

    Profiler prof2;
    prof2.start();
    run_profile_workload(pool, p, q, 2, nb, block);
    prof2.stop();
    bool saw_worker = false;
    for (const std::string& lane : prof2.lane_names())
      if (lane.rfind("worker-", 0) == 0) saw_worker = true;
    HG_CHECK(saw_worker, "threaded profile run produced no worker lane");
    std::cout << "profile smoke: results bit-identical, metrics snapshot "
                 "byte-stable, "
              << prof2.lanes() << " lanes (worker lanes present)\n";
    return 0;
  }

  ProfileSession session(cli.get_string("out"), cli.get_string("metrics"));
  session.begin();
  const ProfileWorkloadResult res = run_profile_workload(
      pool, p, q, static_cast<unsigned>(threads), nb, block);
  session.end(std::cout);
  std::cout << "workload: exact solve (obj2 = " << Table::num(res.obj2, 4)
            << ") + mp LU on " << nb * block << "x" << nb * block << '\n';
  return 0;
}

// ---------------------------------------------------------------------------
// observe: the load-imbalance observatory (doc/observability.md).

// One mp kernel run shaped like the trace path's: real block math on an
// n = nb * block matrix with deterministic inputs from Rng(7). Returns the
// report plus the output matrix so the smoke can compare runs bit for bit.
struct ObserveMpRun {
  MpReport rep;
  Matrix out;
};

ObserveMpRun observe_mp_run(const std::string& kernel, const Machine& machine,
                            const Distribution2D& dist, std::size_t nb,
                            std::size_t block,
                            const RuntimeOptions& run_opts) {
  const std::size_t n = nb * block;
  const KernelCosts costs;
  Rng rng(7);
  ObserveMpRun run;
  if (kernel == "mmm") {
    Matrix a(n, n), b(n, n);
    fill_random(a.view(), rng);
    fill_random(b.view(), rng);
    run.out = Matrix(n, n);
    run.rep = run_mp_mmm(machine, dist, a.view(), b.view(), run.out.view(),
                         block, costs, nullptr, run_opts);
  } else if (kernel == "lu") {
    run.out = Matrix(n, n);
    fill_diagonally_dominant(run.out.view(), rng);
    run.rep = run_mp_lu(machine, dist, run.out.view(), block, costs, false,
                        nullptr, run_opts);
  } else if (kernel == "chol") {
    run.out = Matrix(n, n);
    fill_spd(run.out.view(), rng);
    run.rep = run_mp_cholesky(machine, dist, run.out.view(), block, costs,
                              nullptr, run_opts);
  } else if (kernel == "qr") {
    run.out = Matrix(n, n);
    fill_random(run.out.view(), rng);
    run.rep = run_mp_qr(machine, dist, run.out.view(), block, costs, nullptr,
                        run_opts);
  } else {
    HG_CHECK(false,
             "observe supports --kernel=mmm|lu|chol|qr, got " << kernel);
  }
  return run;
}

std::string imbalance_json(const ImbalanceReport& rep) {
  std::ostringstream oss;
  write_imbalance_json(oss, rep);
  return oss.str();
}

// The rebalance smoke behind `hetgrid trace --smoke` (tools/ci.sh): a 2x2
// grid whose whole first row slows 4x from step 0. For each kernel,
//   (1) with --rebalance=off the gathered matrix stays bit-identical to
//       the drift-free run (the trace only reweights virtual time) and
//       the virtual makespan is the same for all thread counts and
//       schedulers;
//   (2) with --rebalance=panel the migration schedule is deterministic —
//       same rebalance count, migrated-block count, makespan, and gathered
//       bits across threads {1,2,7} x {barrier,dag}. MMM/LU/Cholesky also
//       stay bit-identical to the static result (migration only relocates
//       blocks); QR regroups its W reduction by the new grid rows, so it
//       is held to a small elementwise tolerance instead.
// MMM (whose whole matrix rebalances) must additionally act at least once
// and beat the static straggler makespan.
int trace_rebalance_smoke() {
  const std::vector<double> pool{1.0, 1.0, 1.0, 1.0};
  const std::size_t p = 2, q = 2, nb = 8, block = 4;
  StrategyChoice choice = build_strategy("block-cyclic", p, q, pool, 8);
  const Machine machine{choice.grid, parse_network_flag("switched")};
  const Distribution2D& dist = *choice.dist;
  const CycleTimeTrace trace = CycleTimeTrace::straggler({0, 1}, 4.0, 0);
  const RuntimeOptions::Scheduler scheds[] = {
      RuntimeOptions::Scheduler::kBarrier, RuntimeOptions::Scheduler::kDag};

  for (const char* kernel : {"mmm", "lu", "chol", "qr"}) {
    const ObserveMpRun plain =
        observe_mp_run(kernel, machine, dist, nb, block, RuntimeOptions{});

    double off_makespan = -1.0;
    for (unsigned threads : {1u, 2u, 7u})
      for (const RuntimeOptions::Scheduler sched : scheds) {
        RuntimeOptions ro;
        ro.threads = threads;
        ro.scheduler = sched;
        ro.trace = trace;
        const ObserveMpRun run =
            observe_mp_run(kernel, machine, dist, nb, block, ro);
        HG_CHECK(same_bits(run.out, plain.out),
                 "straggler trace with rebalance off changed " << kernel
                                                               << " bits");
        HG_CHECK(run.rep.rebalances == 0 && run.rep.rebalance_blocks == 0,
                 "rebalance off still migrated on " << kernel);
        if (off_makespan < 0.0) off_makespan = run.rep.makespan;
        HG_CHECK(run.rep.makespan == off_makespan,
                 "static straggler makespan differs across threads/"
                 "schedulers on "
                     << kernel);
      }

    Matrix first_out;
    MpReport first_rep;
    bool have_first = false;
    for (unsigned threads : {1u, 2u, 7u})
      for (const RuntimeOptions::Scheduler sched : scheds) {
        RuntimeOptions ro;
        ro.threads = threads;
        ro.scheduler = sched;
        ro.trace = trace;
        ro.rebalance = RuntimeOptions::Rebalance::kPanel;
        ro.estimator.alpha = 1.0;
        ro.estimator.min_samples = 1;
        const ObserveMpRun run =
            observe_mp_run(kernel, machine, dist, nb, block, ro);
        if (!have_first) {
          first_out = run.out;
          first_rep = run.rep;
          have_first = true;
          continue;
        }
        HG_CHECK(run.rep.rebalances == first_rep.rebalances &&
                     run.rep.rebalance_blocks == first_rep.rebalance_blocks &&
                     run.rep.makespan == first_rep.makespan,
                 "migration schedule differs across threads/schedulers on "
                     << kernel);
        HG_CHECK(same_bits(run.out, first_out),
                 "rebalanced " << kernel
                               << " bits differ across threads/schedulers");
      }
    if (std::string(kernel) == "qr") {
      double max_diff = 0.0;
      for (std::size_t j = 0; j < first_out.cols(); ++j)
        for (std::size_t i = 0; i < first_out.rows(); ++i)
          max_diff = std::max(
              max_diff, std::abs(first_out.view()(i, j) - plain.out.view()(i, j)));
      HG_CHECK(max_diff <= 1e-8,
               "rebalanced qr drifted from the static factorization by "
                   << max_diff);
    } else {
      HG_CHECK(same_bits(first_out, plain.out),
               "rebalanced " << kernel << " changed the computed bits");
    }
    if (std::string(kernel) == "mmm")
      HG_CHECK(first_rep.rebalances >= 1 &&
                   first_rep.makespan < off_makespan,
               "mmm rebalance never acted or did not improve the straggler "
               "makespan");
  }
  std::cout << "trace smoke: rebalance off bit-identical under a 4x "
               "straggler; migration schedule deterministic across threads "
               "{1,2,7} x {barrier,dag}; mmm/lu/chol bits unchanged, qr "
               "within 1e-8; mmm rebalance beat the static makespan\n";
  return 0;
}

// The observatory's self-check behind `hetgrid observe --smoke`
// (tools/ci.sh): on a 2x2 grid with one planted 2x-slow processor, (1)
// observing a run leaves every computed result bit-identical for all four
// kernels under the dag scheduler, the estimator recovers the planted
// t_ij within 5% (exactly, on virtual time), and the critical path is
// attributed; (2) the JSON report is byte-for-byte stable across thread
// counts.
int observe_smoke() {
  const std::vector<double> pool{1.0, 1.0, 1.0, 2.0};  // one 2x-slow lane
  const std::size_t p = 2, q = 2, nb = 4, block = 4;
  StrategyChoice choice = build_strategy("block-cyclic", p, q, pool, 8);
  const Machine machine{choice.grid, parse_network_flag("switched")};
  const Distribution2D& dist = *choice.dist;

  for (const char* kernel : {"mmm", "lu", "chol", "qr"}) {
    RuntimeOptions ro;
    ro.threads = 2;
    ro.scheduler = RuntimeOptions::Scheduler::kDag;
    const ObserveMpRun plain =
        observe_mp_run(kernel, machine, dist, nb, block, ro);
    RunObservation obs;
    RunObservation* prev = install_observation(&obs);
    const ObserveMpRun watched =
        observe_mp_run(kernel, machine, dist, nb, block, ro);
    install_observation(prev);
    HG_CHECK(same_bits(watched.out, plain.out) &&
                 watched.rep.makespan == plain.rep.makespan,
             "observed " << kernel << " run changed a computed result");
    const ImbalanceReport report = build_imbalance_report(
        obs, watched.rep.busy, watched.rep.clock, &machine.grid, q);
    HG_CHECK(!report.estimates.empty() && report.critical_path_tasks > 0,
             "observed " << kernel
                         << " produced no estimates or no critical path");
    for (const EstimateRow& e : report.estimates)
      HG_CHECK(e.has_true && e.rel_err <= 0.05,
               "estimated t_ij off by more than 5% on " << kernel);
  }

  std::string first;
  for (unsigned threads : {1u, 2u, 7u}) {
    RuntimeOptions ro;
    ro.threads = threads;
    ro.scheduler = RuntimeOptions::Scheduler::kDag;
    RunObservation obs;
    RunObservation* prev = install_observation(&obs);
    const ObserveMpRun run =
        observe_mp_run("lu", machine, dist, nb, block, ro);
    install_observation(prev);
    const std::string json = imbalance_json(build_imbalance_report(
        obs, run.rep.busy, run.rep.clock, &machine.grid, q));
    if (first.empty())
      first = json;
    else
      HG_CHECK(json == first, "observe JSON differs between thread counts");
  }

  std::cout << "observe smoke: 4 kernels bit-identical under observation, "
               "estimates within 5% of planted t_ij, JSON byte-stable "
               "across threads {1,2,7}\n";
  return 0;
}

int run_observe(const Cli& cli) {
  const std::vector<double> pool = parse_times(cli.get_string("times"));
  const auto p = static_cast<std::size_t>(cli.get_int("p"));
  const auto q = static_cast<std::size_t>(cli.get_int("q"));
  HG_CHECK(p * q == pool.size(),
           "--p * --q must equal the number of cycle-times");
  const auto nb = static_cast<std::size_t>(cli.get_int("nb"));
  const auto scale = static_cast<std::size_t>(cli.get_int("scale"));
  const auto block = static_cast<std::size_t>(cli.get_int("block"));
  const std::string backend = cli.get_string("backend");
  const std::string kernel = cli.get_string("kernel");
  const long long threads = cli.get_int("threads");
  HG_CHECK(threads >= 0, "--threads must be >= 0 (0 = all hardware threads)");
  RuntimeOptions run_opts;
  run_opts.threads = static_cast<unsigned>(threads);
  const std::string scheduler = cli.get_string("scheduler");
  if (scheduler == "dag")
    run_opts.scheduler = RuntimeOptions::Scheduler::kDag;
  else
    HG_CHECK(scheduler == "barrier",
             "--scheduler must be barrier or dag, got " << scheduler);
  const bool dynamic = apply_dynamic_flags(cli, run_opts);

  StrategyChoice choice =
      build_strategy(cli.get_string("strategy"), p, q, pool, scale);
  const Machine machine{choice.grid, parse_network_flag(
                                         cli.get_string("network"))};
  const Distribution2D& dist = *choice.dist;

  RunObservation obs(run_opts.estimator);
  RunObservation* prev = install_observation(&obs);
  std::vector<double> busy, finish;
  if (backend == "sim") {
    const KernelCosts costs;
    SimReport rep;
    if (dynamic) {
      if (kernel == "mmm")
        rep = simulate_mmm_dynamic(machine, dist, nb, run_opts, costs);
      else if (kernel == "lu")
        rep = simulate_lu_dynamic(machine, dist, nb, run_opts, costs);
      else if (kernel == "qr")
        rep = simulate_qr_dynamic(machine, dist, nb, run_opts, costs);
      else if (kernel == "chol")
        rep = simulate_cholesky_dynamic(machine, dist, nb, run_opts, costs);
      else {
        install_observation(prev);
        HG_CHECK(false, "unknown --kernel: " << kernel);
      }
    } else if (kernel == "mmm")
      rep = simulate_mmm(machine, dist, nb, costs, nullptr);
    else if (kernel == "lu")
      rep = simulate_lu(machine, dist, nb, costs, nullptr);
    else if (kernel == "qr")
      rep = simulate_qr(machine, dist, nb, costs, nullptr);
    else if (kernel == "chol")
      rep = simulate_cholesky(machine, dist, nb, costs, nullptr);
    else {
      install_observation(prev);
      HG_CHECK(false, "unknown --kernel: " << kernel);
    }
    busy = rep.busy;
    // Bulk-synchronous simulation: every lane holds its data until the
    // run's end, so the finish clock is the total time on each lane.
    finish.assign(busy.size(), rep.total_time);
  } else if (backend == "mp") {
    const ObserveMpRun run =
        observe_mp_run(kernel, machine, dist, nb, block, run_opts);
    busy = run.rep.busy;
    finish = run.rep.clock;
  } else {
    install_observation(prev);
    HG_CHECK(false, "unknown --backend: " << backend << " (sim|mp)");
  }
  install_observation(prev);

  const ImbalanceReport report =
      build_imbalance_report(obs, busy, finish, &machine.grid, q);
  const std::string out_path = cli.get_string("out");
  if (!out_path.empty()) {
    std::ofstream os(out_path);
    HG_CHECK(os.good(), "cannot open --out file: " << out_path);
    write_imbalance_json(os, report);
  }
  if (cli.get_bool("json"))
    write_imbalance_json(std::cout, report);
  else
    print_imbalance(std::cout, report);
  if (!out_path.empty())
    std::cout << "wrote imbalance report to " << out_path << '\n';
  return 0;
}

int cmd_observe(int argc, const char* const* argv) {
  const Cli cli(argc, argv,
                {{"times", ""}, {"p", "0"}, {"q", "0"},
                 {"kernel", "lu"}, {"nb", "8"}, {"backend", "mp"},
                 {"network", "switched"}, {"strategy", "heuristic"},
                 {"scale", "8"}, {"block", "4"}, {"threads", "1"},
                 {"scheduler", "dag"}, {"out", ""}, {"json", "0"},
                 {"smoke", "0"}, {"rebalance", "off"}, {"straggler", ""},
                 {"straggler-factor", "4"}, {"straggler-onset", "0"},
                 {"straggler-recover", "0"}, {"ewma-alpha", "0.25"},
                 {"drift-band", "0.5"}, {"min-samples", "2"}});
  if (cli.get_bool("smoke")) return observe_smoke();
  return run_observe(cli);
}

// ---------------------------------------------------------------------------
// serve / query: the placement service (doc/server.md).

// One distinct workload of the serve smoke: a grid shape, a pool of
// cycle-times, and the direct solver answer every server response is
// compared against.
struct SmokeCase {
  std::size_t p;
  std::size_t q;
  std::vector<double> pool;
  OptimalArrangement direct;
};

// Builds a request for `sc` with the pool optionally shuffled and scaled.
// Scales are powers of two so the FP bit-identity claims below are exact
// (doc/server.md "Canonicalization").
serve::PlacementRequest smoke_request(const SmokeCase& sc, Rng& rng,
                                      double scale, bool shuffle) {
  std::vector<std::size_t> order(sc.pool.size());
  for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
  if (shuffle) rng.shuffle(order);
  serve::PlacementRequest req;
  req.p = static_cast<std::uint16_t>(sc.p);
  req.q = static_cast<std::uint16_t>(sc.q);
  req.mode = serve::Mode::kAuto;
  req.times.resize(sc.pool.size());
  for (std::size_t k = 0; k < order.size(); ++k)
    req.times[k] = sc.pool[order[k]] * scale;
  return req;
}

// Checks one smoke response against the direct solver call. With
// `bit_identity` (the unscaled phase) the response must match the direct
// solve bit for bit: same r, c, objective, and a perm that reproduces the
// canonical arrangement. Scaled requests share a cache entry whose scale
// convention depends on which request populated it, so the scaled phase
// asserts the scale-free bitwise invariants instead: objective ==
// direct/scale and every workload product r_i * t_ij * c_j identical to
// the direct solve's (exact under power-of-two scalings). Returns "" on
// success, a diagnostic otherwise (the client threads must not throw).
std::string check_smoke_response(const SmokeCase& sc,
                                 const serve::PlacementRequest& req,
                                 double scale, bool bit_identity,
                                 const std::vector<std::uint8_t>& reply) {
  const serve::Decoded d = serve::decode_payload(reply);
  if (!d.ok()) return std::string("reply failed to decode: ") +
                      serve::wire_error_name(d.parse_error);
  if (d.type == serve::MsgType::kError)
    return std::string("server error: ") +
           serve::wire_error_name(d.error.code) + " " + d.error.detail;
  if (d.type != serve::MsgType::kResponse) return "reply is not a response";
  const serve::PlacementResponse& rsp = d.response;
  if (rsp.p != sc.p || rsp.q != sc.q) return "response shape mismatch";
  if (rsp.r.size() != sc.p || rsp.c.size() != sc.q ||
      rsp.perm.size() != sc.p * sc.q)
    return "response vector sizes mismatch";

  // perm must be a permutation of the request slots that lays out the
  // canonical (sorted) arrangement the solvers used.
  std::vector<bool> used(req.times.size(), false);
  for (std::size_t i = 0; i < sc.p; ++i)
    for (std::size_t j = 0; j < sc.q; ++j) {
      const std::uint32_t idx = rsp.perm[i * sc.q + j];
      if (idx >= req.times.size() || used[idx]) return "perm is not a permutation";
      used[idx] = true;
      if (req.times[idx] != sc.direct.grid(i, j) * scale)
        return "perm does not reproduce the canonical arrangement";
    }

  if (bit_identity) {
    if (rsp.solver != serve::SolverKind::kExact)
      return "expected the exact solver on this shape";
    if (rsp.objective != sc.direct.solution.obj2)
      return "objective differs from the direct solve";
    for (std::size_t i = 0; i < sc.p; ++i)
      if (rsp.r[i] != sc.direct.solution.alloc.r[i])
        return "row shares differ from the direct solve";
    for (std::size_t j = 0; j < sc.q; ++j)
      if (rsp.c[j] != sc.direct.solution.alloc.c[j])
        return "column shares differ from the direct solve";
    return "";
  }

  if (rsp.cache_state == serve::CacheState::kMiss)
    return "warm-phase request missed the cache";
  if (rsp.objective != sc.direct.solution.obj2 / scale)
    return "scaled objective is not direct/scale";
  for (std::size_t i = 0; i < sc.p; ++i)
    for (std::size_t j = 0; j < sc.q; ++j) {
      const double got = rsp.r[i] * (sc.direct.grid(i, j) * scale) * rsp.c[j];
      const double want = sc.direct.solution.alloc.r[i] *
                          sc.direct.grid(i, j) *
                          sc.direct.solution.alloc.c[j];
      if (got != want) return "workload products differ from the direct solve";
    }
  return "";
}

// The concurrent loopback self-check behind `hetgrid serve --smoke`
// (doc/server.md, tools/ci.sh). Phase A: client threads send an unscaled
// mix (in-order and shuffled pools); every response — miss or hit, any
// interleaving — must be bit-identical to a direct solve_optimal_arrangement
// call, and the repeats must raise the cache hit counter. Phase B: the
// same pools return shuffled and scaled by powers of two; responses must
// all hit the cache and preserve the scale-free bitwise invariants.
int serve_smoke(unsigned clients, unsigned requests, std::uint64_t seed,
                const serve::ServerOptions& opts) {
  std::vector<SmokeCase> cases;
  const std::size_t shapes[][2] = {{2, 2}, {2, 3}, {3, 2}, {3, 3}};
  for (std::size_t s = 0; s < 4; ++s) {
    const std::size_t p = shapes[s][0], q = shapes[s][1];
    Rng rng(seed + s);
    std::vector<double> pool = rng.cycle_times(p * q);
    OptimalArrangement direct = solve_optimal_arrangement(p, q, pool);
    cases.push_back(SmokeCase{p, q, std::move(pool), std::move(direct)});
  }
  HG_CHECK(clients >= 1 && requests >= 1, "--clients/--requests must be >= 1");
  HG_CHECK(static_cast<std::size_t>(clients) * requests > 2 * cases.size(),
           "--clients * --requests too small to warm the cache");

  MetricsRegistry metrics;
  MetricsRegistry* prev = install_metrics(&metrics);
  serve::PlacementServer server(opts);

  // One error slot per client; threads write only their own slot.
  std::vector<std::string> errors(clients);
  auto run_phase = [&](bool bit_identity) {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (unsigned t = 0; t < clients; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(seed * 977 + t + (bit_identity ? 0 : 100000));
        for (unsigned i = 0; i < requests && errors[t].empty(); ++i) {
          const SmokeCase& sc = cases[(t + i) % cases.size()];
          const bool shuffle = !bit_identity || i % 2 == 1;
          const double scale =
              bit_identity ? 1.0 : (i % 3 == 0 ? 1.0 : i % 3 == 1 ? 2.0 : 0.25);
          const serve::PlacementRequest req =
              smoke_request(sc, rng, scale, shuffle);
          const std::vector<std::uint8_t> reply =
              server.handle_payload(serve::encode_request(req));
          const std::string err =
              check_smoke_response(sc, req, scale, bit_identity, reply);
          if (!err.empty())
            errors[t] = err + " (client " + std::to_string(t) + ", request " +
                        std::to_string(i) + ")";
        }
      });
    }
    for (std::thread& th : threads) th.join();
  };

  run_phase(/*bit_identity=*/true);
  const std::uint64_t cold_hits = metrics.counter("serve.cache.hits").value();
  run_phase(/*bit_identity=*/false);
  server.drain();

  // kStats round trip over the same framed path the clients used: the
  // introspection reply must decode, report the real cache occupancy, and
  // carry the installed observation's estimator lanes bit for bit
  // (doc/server.md "Introspection").
  {
    RunObservation obs;
    obs.estimator.sample(3, ObsOp::kUpdate, 4.0, 2.0, 0);
    obs.estimator.sample(3, ObsOp::kUpdate, 4.0, 2.0, 1);
    RunObservation* prev_obs = install_observation(&obs);
    const std::vector<std::uint8_t> reply =
        server.handle_payload(serve::encode_stats_request());
    install_observation(prev_obs);
    const serve::Decoded d = serve::decode_payload(reply);
    HG_CHECK(d.ok() && d.type == serve::MsgType::kStatsResponse,
             "serve smoke: stats request did not round-trip");
    HG_CHECK(d.stats.cache_entries == server.cache().size() &&
                 d.stats.cache_shards == server.cache().shard_count(),
             "serve smoke: stats cache occupancy mismatch");
    HG_CHECK(!d.stats.metrics_json.empty(),
             "serve smoke: stats carried no metrics snapshot");
    HG_CHECK(d.stats.estimates.size() == 1 &&
                 d.stats.estimates[0].proc == 3 &&
                 d.stats.estimates[0].estimate == 0.5 &&
                 d.stats.estimates[0].samples == 2,
             "serve smoke: estimator lane did not survive the wire");
  }
  install_metrics(prev);

  for (const std::string& err : errors)
    HG_CHECK(err.empty(), "serve smoke failed: " << err);
  const std::uint64_t hits = metrics.counter("serve.cache.hits").value();
  const std::uint64_t misses = metrics.counter("serve.cache.misses").value();
  HG_CHECK(cold_hits > 0, "unscaled phase never hit the cache");
  // Each client misses a workload at most once (its own insert completes
  // before it revisits the key), but first encounters racing on one key may
  // each miss — lookup/solve/insert is not one atomic step.
  HG_CHECK(misses >= cases.size() && misses <= clients * cases.size(),
           "cache miss count " << misses << " outside [" << cases.size()
                               << ", " << clients * cases.size() << "]");
  std::cout << "serve smoke: " << clients << " client(s) x " << 2 * requests
            << " requests over " << cases.size()
            << " workloads: all responses bit-identical to direct solver "
               "calls; cache hits "
            << hits << ", misses " << misses
            << "; kStats round trip ok\n";
  return 0;
}

namespace {
std::atomic<bool> g_interrupted{false};
void on_signal(int) { g_interrupted.store(true, std::memory_order_relaxed); }
}  // namespace

int cmd_serve(int argc, const char* const* argv) {
  const Cli cli(argc, argv,
                {{"port", "0"}, {"unix", ""}, {"threads", "2"},
                 {"shards", "16"}, {"no-refine", "0"}, {"smoke", "0"},
                 {"clients", "4"}, {"requests", "32"}, {"seed", "42"},
                 {"csv", "0"}});
  serve::ServerOptions opts;
  const long long threads = cli.get_int("threads");
  HG_CHECK(threads >= 0, "--threads must be >= 0 (0 = all hardware threads)");
  opts.threads = static_cast<unsigned>(threads);
  const long long shards = cli.get_int("shards");
  HG_CHECK(shards >= 1, "--shards must be >= 1");
  opts.cache_shards = static_cast<std::size_t>(shards);
  opts.async_refine = !cli.get_bool("no-refine");

  if (cli.get_bool("smoke"))
    return serve_smoke(static_cast<unsigned>(cli.get_int("clients")),
                       static_cast<unsigned>(cli.get_int("requests")),
                       static_cast<std::uint64_t>(cli.get_int("seed")), opts);

  const std::string unix_path = cli.get_string("unix");
  std::uint16_t bound = 0;
  int fd = -1;
  if (!unix_path.empty()) {
    fd = serve::listen_unix(unix_path);
    std::cout << "listening on unix socket " << unix_path << '\n';
  } else {
    fd = serve::listen_tcp(static_cast<std::uint16_t>(cli.get_int("port")),
                           &bound);
    std::cout << "listening on 127.0.0.1:" << bound << '\n';
  }
  std::cout << "placement server up (" << (threads == 0 ? "all" :
            std::to_string(threads)) << " worker thread(s)); Ctrl-C stops\n"
            << std::flush;

  // A live server keeps a metrics registry installed so `hetgrid query
  // --stats` sees the serve.* counters and latency histograms in its
  // kStats snapshot.
  MetricsRegistry metrics;
  MetricsRegistry* prev = install_metrics(&metrics);
  serve::PlacementServer server(opts);
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::thread acceptor([&server, fd] { server.serve_fd(fd); });
  while (!g_interrupted.load(std::memory_order_relaxed) && !server.stopping())
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.shutdown();
  acceptor.join();
  install_metrics(prev);
  std::cout << "drained; " << server.cache().size()
            << " cached solution(s)\n";
  return 0;
}

// `hetgrid query --stats`: prints a live server's introspection snapshot —
// cache occupancy, metrics registry JSON, and the estimator lane table.
int query_stats_report(const serve::Endpoint& ep) {
  const serve::Decoded d = serve::query_stats(ep);
  HG_CHECK(d.ok(), "malformed reply: " << serve::wire_error_name(d.parse_error));
  if (d.type == serve::MsgType::kError) {
    std::cerr << "server error: " << serve::wire_error_name(d.error.code)
              << (d.error.code == serve::WireError::kBadType
                      ? " (server predates kStats)"
                      : "")
              << '\n';
    return 1;
  }
  HG_CHECK(d.type == serve::MsgType::kStatsResponse,
           "reply is not a stats response");
  const serve::StatsReply& s = d.stats;
  std::cout << "cache: " << s.cache_entries << " entr"
            << (s.cache_entries == 1 ? "y" : "ies") << " across "
            << s.cache_shards << " shard(s)\n";
  std::cout << "drift events: " << s.drift_events << '\n';
  if (!s.estimates.empty()) {
    std::cout << "proc  op       est t_ij     units  samples\n";
    for (const serve::StatsReply::Estimate& e : s.estimates)
      std::cout << std::setw(4) << e.proc << "  " << std::left << std::setw(7)
                << obs_op_name(static_cast<ObsOp>(e.op)) << std::right
                << std::setw(11) << format_compact(e.estimate)
                << std::setw(10) << format_compact(e.units) << std::setw(9)
                << e.samples << '\n';
  }
  if (!s.metrics_json.empty()) std::cout << s.metrics_json << '\n';
  return 0;
}

int cmd_query(int argc, const char* const* argv) {
  const Cli cli(argc, argv,
                {{"times", ""}, {"p", "0"}, {"q", "0"}, {"port", "0"},
                 {"unix", ""}, {"mode", "auto"}, {"deadline-us", "0"},
                 {"stats", "0"}, {"csv", "0"}});
  if (cli.get_bool("stats")) {
    serve::Endpoint ep;
    ep.unix_path = cli.get_string("unix");
    ep.port = static_cast<std::uint16_t>(cli.get_int("port"));
    HG_CHECK(!ep.unix_path.empty() || ep.port != 0,
             "pass --port=N or --unix=path of a running `hetgrid serve`");
    return query_stats_report(ep);
  }
  const std::vector<double> pool = parse_times(cli.get_string("times"));
  const auto p = static_cast<std::size_t>(cli.get_int("p"));
  const auto q = static_cast<std::size_t>(cli.get_int("q"));
  HG_CHECK(p * q == pool.size(),
           "--p * --q must equal the number of cycle-times");

  serve::PlacementRequest req;
  req.p = static_cast<std::uint16_t>(p);
  req.q = static_cast<std::uint16_t>(q);
  req.times = pool;
  const std::string mode = cli.get_string("mode");
  if (mode == "auto")
    req.mode = serve::Mode::kAuto;
  else if (mode == "exact")
    req.mode = serve::Mode::kExact;
  else if (mode == "heuristic")
    req.mode = serve::Mode::kHeuristic;
  else
    HG_CHECK(false, "--mode must be auto, exact, or heuristic");
  const long long deadline = cli.get_int("deadline-us");
  HG_CHECK(deadline >= 0, "--deadline-us must be >= 0 (0 = none)");
  req.deadline_us = static_cast<std::uint64_t>(deadline);

  serve::Endpoint ep;
  ep.unix_path = cli.get_string("unix");
  ep.port = static_cast<std::uint16_t>(cli.get_int("port"));
  HG_CHECK(!ep.unix_path.empty() || ep.port != 0,
           "pass --port=N or --unix=path of a running `hetgrid serve`");

  const serve::Decoded d = serve::query_server(ep, req);
  HG_CHECK(d.ok(), "malformed reply: " << serve::wire_error_name(d.parse_error));
  if (d.type == serve::MsgType::kError) {
    std::cerr << "server error: " << serve::wire_error_name(d.error.code)
              << (d.error.detail.empty() ? "" : ": " + d.error.detail) << '\n';
    return 1;
  }
  HG_CHECK(d.type == serve::MsgType::kResponse, "reply is not a response");
  const serve::PlacementResponse& rsp = d.response;

  std::cout << "solver: "
            << (rsp.solver == serve::SolverKind::kExact ? "exact" : "heuristic")
            << ", cache: "
            << (rsp.cache_state == serve::CacheState::kMiss ? "miss"
                : rsp.cache_state == serve::CacheState::kHit
                    ? "hit"
                    : "hit (refined to exact)")
            << '\n';
  // Re-assemble the served arrangement from the request's times and print
  // it through the same lens as `hetgrid solve`.
  std::vector<double> arranged(rsp.perm.size());
  for (std::size_t k = 0; k < rsp.perm.size(); ++k)
    arranged[k] = req.times[rsp.perm[k]];
  const CycleTimeGrid grid(p, q, arranged);
  GridAllocation alloc;
  alloc.r = rsp.r;
  alloc.c = rsp.c;
  print_allocation(grid, alloc, std::cout);
  return 0;
}

int usage() {
  std::cerr <<
      "usage: hetgrid "
      "<solve|design|panel|simulate|trace|profile|observe|serve|query>"
      " [--flags]\n"
      "  solve    --times=1,2,3,6 --p=2 --q=2 [--solver=heuristic|exact|auto]\n"
      "           [--threads=1] [--max-trees=50000000]\n"
      "           (--threads=0 uses all hardware threads; the exact result\n"
      "            is identical for any thread count)\n"
      "  design   --times=0.2,0.3,...\n"
      "  panel    --times=... --p=2 --q=2 --bp=8 --bq=6 [--order=lu|mmm]\n"
      "  simulate --times=... --p=2 --q=2 --kernel=mmm|lu|qr|chol --nb=64\n"
      "           [--network=free|switched|ethernet]\n"
      "           [--strategy=block-cyclic|kl|heuristic]\n"
      "           [--rebalance=off|panel] [--straggler=0,1\n"
      "           --straggler-factor=4 --straggler-onset=0\n"
      "           --straggler-recover=0] [--ewma-alpha=0.25]\n"
      "           (the straggler preset slows the listed processors\n"
      "            mid-run; --rebalance=panel re-solves the allocation at\n"
      "            panel boundaries and migrates blocks — doc/rebalance.md)\n"
      "  trace    --times=... --p=2 --q=2 --kernel=mmm|lu|qr|chol --nb=16\n"
      "           [--backend=sim|mp] [--out=trace.json] [--block=4]\n"
      "           [--network=...] [--strategy=...] [--threads=1]\n"
      "           [--scheduler=barrier|dag] [--rebalance=off|panel]\n"
      "           [--straggler=... flags as in simulate] [--smoke=0]\n"
      "           (--threads parallelizes the mp backend's block math;\n"
      "            0 = all hardware threads, output is bit-identical;\n"
      "            --scheduler=dag replaces the mp backend's per-phase\n"
      "            barriers with dataflow dependencies — same output;\n"
      "            --smoke runs the rebalance determinism self-check)\n"
      "  profile  --times=1,2,3,4,5,6 --p=2 --q=3 [--out=profile.json]\n"
      "           [--metrics=metrics.json] [--threads=1] [--smoke=0]\n"
      "           (--smoke runs the determinism self-checks instead)\n"
      "  observe  --times=1,2,3,6 --p=2 --q=2 --kernel=mmm|lu|qr|chol\n"
      "           [--backend=sim|mp] [--nb=8] [--block=4] [--threads=1]\n"
      "           [--scheduler=barrier|dag] [--network=...] [--strategy=...]\n"
      "           [--json] [--out=imbalance.json] [--smoke=0]\n"
      "           [--ewma-alpha=0.25] [--drift-band=0.5] [--min-samples=2]\n"
      "           [--rebalance=off|panel] [--straggler=... as in simulate]\n"
      "            prints the imbalance report: makespan vs the paper's\n"
      "            lower bound, per-processor busy/idle/slack, critical-path\n"
      "            attribution, and estimated-vs-true t_ij; observation\n"
      "            never changes computed results — --smoke proves it)\n"
      "  serve    [--port=0 | --unix=path] [--threads=2] [--shards=16]\n"
      "           [--no-refine] [--smoke=0 --clients=4 --requests=32\n"
      "           --seed=42]\n"
      "           (--smoke runs the concurrent loopback self-check:\n"
      "            every response bit-identical to a direct solver call\n"
      "            and the warm mix must hit the cache; see doc/server.md)\n"
      "  query    --times=1,2,3,6 --p=2 --q=2 (--port=N | --unix=path)\n"
      "           [--mode=auto|exact|heuristic] [--deadline-us=0]\n"
      "           [--stats]  (--stats asks the server for its kStats\n"
      "            introspection snapshot instead of a placement)\n"
      "  solve and trace also accept --profile=prof.json and\n"
      "  --metrics=metrics.json to instrument that run\n";
  return 2;
}

}  // namespace hetgrid::cli

int main(int argc, char** argv) {
  using namespace hetgrid;
  if (argc < 2) return cli::usage();
  const std::string cmd = argv[1];
  // Shift argv so the subcommand's flags start at index 1.
  try {
    if (cmd == "solve") return cli::cmd_solve(argc - 1, argv + 1);
    if (cmd == "design") return cli::cmd_design(argc - 1, argv + 1);
    if (cmd == "panel") return cli::cmd_panel(argc - 1, argv + 1);
    if (cmd == "simulate") return cli::cmd_simulate(argc - 1, argv + 1);
    if (cmd == "trace") return cli::cmd_trace(argc - 1, argv + 1);
    if (cmd == "profile") return cli::cmd_profile(argc - 1, argv + 1);
    if (cmd == "observe") return cli::cmd_observe(argc - 1, argv + 1);
    if (cmd == "serve") return cli::cmd_serve(argc - 1, argv + 1);
    if (cmd == "query") return cli::cmd_query(argc - 1, argv + 1);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return cli::usage();
}
