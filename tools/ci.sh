#!/usr/bin/env sh
# Tier-1 verification: strict (-Werror) configure + build + full test run,
# in an isolated build-ci/ tree so it never disturbs the dev build/. Then a
# smoke run of the runtime-scaling bench (crosses the parallel numerics
# engine's serial/parallel seam and asserts bit-identity), the placement
# server's concurrent-loopback and throughput smokes with their regression
# gates, a documentation link check, and finally a ThreadSanitizer pass
# over the concurrent pieces (the exact solver's thread pool, the
# message-passing runtime, the parallel numerics engine, and the placement
# server) in build-tsan/.
# Usage: tools/ci.sh  (from the repository root; any CMake >= 3.16 works,
# CMake >= 3.21 users can equivalently run `cmake --preset ci` etc.)
set -eu

cd "$(dirname "$0")/.."

NPROC="$(nproc 2>/dev/null || echo 4)"

cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS=-Werror
cmake --build build-ci -j "$NPROC"
ctest --test-dir build-ci --output-on-failure -j "$NPROC"

# Bench smoke: a CI-sized runtime-scaling run. The harness itself enforces
# that every thread count reproduces the serial MpReport and matrices
# bit-for-bit, so this doubles as an end-to-end determinism check.
build-ci/bench/bench_runtime_scaling --smoke=1 --json=build-ci/BENCH_runtime_smoke.json

# Regression gate: the bench output must match the committed schema, a
# self-compare must pass, and an injected +50% slowdown must make the gate
# fail — proving it would actually catch a regression.
build-ci/bench/bench_compare --check-schema=build-ci/BENCH_runtime_smoke.json \
      --schema=bench/baselines/bench_runtime_schema.json
build-ci/bench/bench_compare --base=build-ci/BENCH_runtime_smoke.json \
      --new=build-ci/BENCH_runtime_smoke.json

# Gate against the committed numbers baseline: the dag scheduler's host
# synchronization count must never grow (exact), and wall clock must stay
# within a generous envelope (CI machines are noisy; this catches
# catastrophic slowdowns, the bit-identity asserts above catch the rest).
build-ci/bench/bench_compare --base=bench/baselines/bench_runtime_baseline.json \
      --new=build-ci/BENCH_runtime_smoke.json --key=barriers --threshold=0
build-ci/bench/bench_compare --base=bench/baselines/bench_runtime_baseline.json \
      --new=build-ci/BENCH_runtime_smoke.json --key=ms --threshold=4.0
if build-ci/bench/bench_compare --base=build-ci/BENCH_runtime_smoke.json \
      --new=build-ci/BENCH_runtime_smoke.json --inject=1.5 --threshold=0.2 \
      2>/dev/null; then
  echo "bench_compare failed to flag an injected regression" >&2
  exit 1
fi

# Gemm microkernel bench + gate: n = 2048 GFLOP/s per kernel (the harness
# itself asserts that the scalar, avx2, and threaded configurations agree
# bit for bit). The output must match the committed schema, the "identical"
# column must reproduce the committed baseline exactly (string fields are
# compared pairwise), wall clock stays within a generous envelope, and the
# injected-regression check proves this gate would fire.
build-ci/bench/bench_gemm_kernel --smoke=1 --json=build-ci/BENCH_gemm_smoke.json
build-ci/bench/bench_compare --check-schema=build-ci/BENCH_gemm_smoke.json \
      --schema=bench/baselines/bench_gemm_schema.json
build-ci/bench/bench_compare --base=bench/baselines/bench_gemm_baseline.json \
      --new=build-ci/BENCH_gemm_smoke.json --key=ms --threshold=4.0
if build-ci/bench/bench_compare --base=bench/baselines/bench_gemm_baseline.json \
      --new=build-ci/BENCH_gemm_smoke.json --key=ms --inject=8.0 \
      --threshold=4.0 2>/dev/null; then
  echo "bench_compare failed to flag an injected gemm regression" >&2
  exit 1
fi

# Blocked-trsm bench + gate: the LU panel solve timed as unblocked
# reference vs blocked scalar vs blocked AVX2 (the harness asserts all
# three agree bit for bit — this trsm variant preserves the reference's
# floating-point sequence exactly). Same gate shape as the gemm one:
# schema, generous wall-clock envelope, and a must-fire injection check.
build-ci/bench/bench_trsm_kernel --smoke=1 --json=build-ci/BENCH_trsm_smoke.json
build-ci/bench/bench_compare --check-schema=build-ci/BENCH_trsm_smoke.json \
      --schema=bench/baselines/bench_trsm_schema.json
build-ci/bench/bench_compare --base=bench/baselines/bench_trsm_baseline.json \
      --new=build-ci/BENCH_trsm_smoke.json --key=ms --threshold=4.0
if build-ci/bench/bench_compare --base=bench/baselines/bench_trsm_baseline.json \
      --new=build-ci/BENCH_trsm_smoke.json --key=ms --inject=8.0 \
      --threshold=4.0 2>/dev/null; then
  echo "bench_compare failed to flag an injected trsm regression" >&2
  exit 1
fi

# Online-rebalancing bench + gate: the planted-straggler scenario
# (doc/rebalance.md). The harness enforces the acceptance bar itself
# (>= 25% makespan reduction, within 15% of the balanced lower bound on
# the MMM rows); every virtual-time column is deterministic, so the gate
# compares makespans and migration counts at threshold 0, with the usual
# generous wall-clock envelope and a must-fire injection check.
build-ci/bench/bench_rebalance --smoke=1 --json=build-ci/BENCH_rebalance_smoke.json
build-ci/bench/bench_compare --check-schema=build-ci/BENCH_rebalance_smoke.json \
      --schema=bench/baselines/bench_rebalance_schema.json
build-ci/bench/bench_compare --base=bench/baselines/bench_rebalance_baseline.json \
      --new=build-ci/BENCH_rebalance_smoke.json --key=rebalanced_makespan --threshold=0
build-ci/bench/bench_compare --base=bench/baselines/bench_rebalance_baseline.json \
      --new=build-ci/BENCH_rebalance_smoke.json --key=rebalances --threshold=0
build-ci/bench/bench_compare --base=bench/baselines/bench_rebalance_baseline.json \
      --new=build-ci/BENCH_rebalance_smoke.json --key=blocks --threshold=0
build-ci/bench/bench_compare --base=bench/baselines/bench_rebalance_baseline.json \
      --new=build-ci/BENCH_rebalance_smoke.json --key=ms --threshold=4.0
if build-ci/bench/bench_compare --base=build-ci/BENCH_rebalance_smoke.json \
      --new=build-ci/BENCH_rebalance_smoke.json --key=ms --inject=8.0 \
      --threshold=4.0 2>/dev/null; then
  echo "bench_compare failed to flag an injected rebalance regression" >&2
  exit 1
fi

# Degraded-configuration runs of the MP kernel tests: once with the gemm /
# trsm dispatch pinned to the scalar kernels, once with the packed-panel
# cache disabled. Bit-identity makes both pure performance toggles, so the
# full test set must pass unchanged — proving the scalar fallback and the
# cache-off path stay correct on every commit.
HETGRID_GEMM_KERNEL=scalar ctest --test-dir build-ci --output-on-failure \
      -j "$NPROC" -R '^(test_mp|test_runtime_parallel|test_task_graph)$'
HETGRID_PACK_CACHE=0 ctest --test-dir build-ci --output-on-failure \
      -j "$NPROC" -R '^(test_mp|test_runtime_parallel|test_task_graph)$'

# Placement-server smoke: concurrent loopback clients hammer the server;
# every response (miss or hit, any interleaving) must be bit-identical to a
# direct solver call and the warm mix must hit the canonicalizing cache
# (doc/server.md).
build-ci/tools/hetgrid serve --smoke=1 --clients=4 --requests=32

# Server throughput bench + gate: the output must match the committed
# schema, the cache counters must reproduce the committed baseline exactly
# (a cold mix is all misses, a warm mix all hits — deterministic for any
# client interleaving), tail latency must stay within a generous envelope,
# and the injected-regression check proves this gate would fire.
build-ci/bench/bench_server_throughput --smoke=1 --json=build-ci/BENCH_server_smoke.json
build-ci/bench/bench_compare --check-schema=build-ci/BENCH_server_smoke.json \
      --schema=bench/baselines/bench_server_schema.json
build-ci/bench/bench_compare --base=bench/baselines/bench_server_baseline.json \
      --new=build-ci/BENCH_server_smoke.json --key=misses --threshold=0
build-ci/bench/bench_compare --base=bench/baselines/bench_server_baseline.json \
      --new=build-ci/BENCH_server_smoke.json --key=hits --threshold=0
build-ci/bench/bench_compare --base=bench/baselines/bench_server_baseline.json \
      --new=build-ci/BENCH_server_smoke.json --key=p95_us --threshold=9.0
if build-ci/bench/bench_compare --base=build-ci/BENCH_server_smoke.json \
      --new=build-ci/BENCH_server_smoke.json --inject=1.5 --threshold=0.2 \
      2>/dev/null; then
  echo "bench_compare failed to flag an injected server regression" >&2
  exit 1
fi

# Documentation link check: every doc page must be indexed in the
# architecture map, and every relative markdown link in the user-facing
# docs must resolve to a file.
for f in doc/*.md; do
  base="$(basename "$f")"
  if [ "$base" != "architecture.md" ] && \
     ! grep -q "$base" doc/architecture.md; then
    echo "doc/architecture.md does not index $base" >&2
    exit 1
  fi
done
for src in README.md EXPERIMENTS.md doc/*.md; do
  dir="$(dirname "$src")"
  for link in $(grep -oE '\]\([^)]+\.md[^)]*\)' "$src" \
                | sed -e 's/^](//' -e 's/)$//' -e 's/#.*//'); do
    case "$link" in
      http://*|https://*) continue ;;
    esac
    if [ ! -f "$dir/$link" ]; then
      echo "$src links to missing file $link" >&2
      exit 1
    fi
  done
done

# Profiler smoke: instrumented reruns of the exact solver and the MP LU
# runtime must be bit-identical to plain runs, metrics snapshots must be
# byte-stable, and worker lanes must appear in the profile.
build-ci/tools/hetgrid profile --smoke=1 --out=build-ci/profile_smoke.json

# Imbalance-observatory smoke: a watched LU run must be bit-identical to a
# plain one, the cycle-time estimator must recover a planted 2x-slow
# processor, the drift detector must fire exactly once for it, and the
# imbalance JSON must be byte-stable across thread counts (doc/observability.md).
build-ci/tools/hetgrid observe --smoke=1

# Rebalance smoke: the off-path of all four MP kernels must be
# bit-identical to current behavior under a planted 4x straggler across
# threads {1, 2, 7} x {barrier, dag}, and the rebalanced migration
# schedule must be identical in every combination (doc/rebalance.md).
build-ci/tools/hetgrid trace --rebalance=panel --smoke=1

# MP QR trace smoke: the distributed QR path produces a non-empty trace.
build-ci/tools/hetgrid trace --times=1,2,3,6 --p=2 --q=2 --kernel=qr \
      --backend=mp --nb=4 --block=4 \
      --out=build-ci/trace_qr_smoke.json >/dev/null

# Dag-scheduler trace smoke: each MP kernel runs end to end under the
# dependency-driven scheduler (threaded, so the dataflow path is real).
for kernel in mmm lu chol qr; do
  build-ci/tools/hetgrid trace --times=1,2,3,6 --p=2 --q=2 \
        --kernel="$kernel" --backend=mp --nb=4 --block=4 \
        --scheduler=dag --threads=2 \
        --out="build-ci/trace_${kernel}_dag_smoke.json" >/dev/null
done

# TSan pass: only the tests that actually exercise threads (mirrors the
# "tsan" preset in CMakePresets.json).
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
      -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build build-tsan -j "$NPROC" \
      --target test_thread_pool test_exact_parallel test_mp test_runtime_parallel test_profiler test_task_graph test_serve test_imbalance test_rebalance
ctest --test-dir build-tsan --output-on-failure -j "$NPROC" \
      -R '^(test_thread_pool|test_exact_parallel|test_mp|test_runtime_parallel|test_profiler|test_task_graph|test_serve|test_imbalance|test_rebalance)$'
