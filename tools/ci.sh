#!/usr/bin/env sh
# Tier-1 verification: strict (-Werror) configure + build + full test run,
# in an isolated build-ci/ tree so it never disturbs the dev build/. Then a
# smoke run of the runtime-scaling bench (crosses the parallel numerics
# engine's serial/parallel seam and asserts bit-identity), and finally a
# ThreadSanitizer pass over the concurrent pieces (the exact solver's thread
# pool, the message-passing runtime, and the parallel numerics engine) in
# build-tsan/.
# Usage: tools/ci.sh  (from the repository root; any CMake >= 3.16 works,
# CMake >= 3.21 users can equivalently run `cmake --preset ci` etc.)
set -eu

cd "$(dirname "$0")/.."

NPROC="$(nproc 2>/dev/null || echo 4)"

cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS=-Werror
cmake --build build-ci -j "$NPROC"
ctest --test-dir build-ci --output-on-failure -j "$NPROC"

# Bench smoke: a CI-sized runtime-scaling run. The harness itself enforces
# that every thread count reproduces the serial MpReport and matrices
# bit-for-bit, so this doubles as an end-to-end determinism check.
build-ci/bench/bench_runtime_scaling --smoke=1 --json=build-ci/BENCH_runtime_smoke.json

# TSan pass: only the tests that actually exercise threads (mirrors the
# "tsan" preset in CMakePresets.json).
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
      -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build build-tsan -j "$NPROC" \
      --target test_thread_pool test_exact_parallel test_mp test_runtime_parallel
ctest --test-dir build-tsan --output-on-failure -j "$NPROC" \
      -R '^(test_thread_pool|test_exact_parallel|test_mp|test_runtime_parallel)$'
