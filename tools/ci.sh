#!/usr/bin/env sh
# Tier-1 verification: strict (-Werror) configure + build + full test run,
# in an isolated build-ci/ tree so it never disturbs the dev build/.
# Usage: tools/ci.sh  (from the repository root; any CMake >= 3.16 works,
# CMake >= 3.21 users can equivalently run `cmake --preset ci` etc.)
set -eu

cd "$(dirname "$0")/.."

cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS=-Werror
cmake --build build-ci -j "$(nproc 2>/dev/null || echo 4)"
ctest --test-dir build-ci --output-on-failure -j "$(nproc 2>/dev/null || echo 4)"
