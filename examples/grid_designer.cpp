// Grid designer: given a pool of heterogeneous processors, choose the best
// p x q grid shape and arrangement.
//
// The paper fixes p x q and solves the arrangement/allocation problem; a
// library user with n machines still has to pick the shape. This tool
// enumerates every p x q with p*q == n, solves each with the heuristic
// (and the exact search where feasible), and reports the predicted
// efficiency so the user can pick a configuration.
//
//   ./grid_designer [--procs=12] [--seed=3] [--spread=4]
#include <iostream>

#include "hetgrid.hpp"
#include "util/cli.hpp"

namespace {

// Number of standard Young tableaux of a p x q rectangle via the hook
// length formula — the count of non-decreasing arrangements for a pool of
// distinct cycle-times, i.e. how many arrangements the exact search visits.
double young_tableaux_count(std::size_t p, std::size_t q) {
  double result = 1.0;
  std::size_t k = 1;
  for (std::size_t i = 0; i < p; ++i)
    for (std::size_t j = 0; j < q; ++j) {
      const double hook = static_cast<double>((p - i) + (q - j) - 1);
      result *= static_cast<double>(k++) / hook;
    }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hetgrid;
  const Cli cli(argc, argv,
                {{"procs", "12"}, {"seed", "3"}, {"spread", "4"}});
  const std::size_t n = static_cast<std::size_t>(cli.get_int("procs"));
  const double spread = cli.get_double("spread");
  HG_CHECK(spread >= 1.0, "--spread must be >= 1");

  // Draw a machine pool with cycle-times in [1, spread].
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  std::vector<double> pool(n);
  for (double& t : pool) t = rng.uniform(1.0, spread);

  std::cout << "Machine pool (" << n << " processors, cycle-times):";
  for (double t : pool) std::cout << ' ' << Table::num(t, 2);
  std::cout << "\nCapacity bound sum(1/t) = ";
  {
    double cap = 0.0;
    for (double t : pool) cap += 1.0 / t;
    std::cout << Table::num(cap, 4) << "\n\n";
  }

  Table table("Grid shapes for " + std::to_string(n) + " processors");
  table.header({"shape", "heuristic obj2", "efficiency", "steps", "exact obj2",
                "exact feasible"});

  double best_eff = 0.0;
  std::string best_shape;
  for (std::size_t p = 1; p <= n; ++p) {
    if (n % p != 0) continue;
    const std::size_t q = n / p;
    const HeuristicResult h = solve_heuristic(p, q, pool);
    const double cap = obj2_upper_bound(h.final().grid);
    const double eff = h.final().obj2 / cap;

    // The exact arrangement search is only feasible while the spanning
    // tree count times the arrangement count stays tiny.
    std::string exact_str = "-", feasible = "no";
    const double exact_work = young_tableaux_count(p, q) *
                              static_cast<double>(exact_solver_cost(p, q));
    if (exact_work <= 300000.0) {
      const OptimalArrangement opt = solve_optimal_arrangement(p, q, pool);
      exact_str = Table::num(opt.solution.obj2, 4);
      feasible = "yes";
    }

    table.row({std::to_string(p) + "x" + std::to_string(q),
               Table::num(h.final().obj2, 4), Table::num(eff, 4),
               Table::num(static_cast<std::int64_t>(h.iterations())),
               exact_str, feasible});
    if (eff > best_eff) {
      best_eff = eff;
      best_shape = std::to_string(p) + "x" + std::to_string(q);
    }
  }
  table.print(std::cout);

  std::cout << "\nRecommended shape: " << best_shape << " (predicted "
            << Table::num(100.0 * best_eff, 1)
            << "% of the machine's aggregate speed)\n"
            << "Note: 1 x n and n x 1 are always perfectly balanceable "
               "(rank-1), but give up\none dimension of the scalable grid "
               "communication pattern — prefer the squarest\nshape with "
               "comparable efficiency (Section 2.2 of the paper).\n";
  return 0;
}
