// Multi-user parallel machine as a heterogeneous grid (paper Section 2.2).
//
// Scenario: a 16-node parallel machine with identical CPUs runs in a
// multi-user environment; external load makes effective speeds differ and
// drift over time. The paper's observation: such a machine *is* a HNOW,
// and a static heterogeneous allocation fitted to the measured loads
// beats the homogeneous block-cyclic layout — but only while the load
// snapshot stays accurate. This example simulates several "epochs" of
// load drift and compares three policies on the MMM kernel:
//   - block-cyclic (ignores loads entirely),
//   - static-once (heuristic fitted to epoch 0, reused forever),
//   - refit-per-epoch (heuristic re-run on every epoch's loads).
//
//   ./multiuser_cluster [--epochs=6] [--drift=0.35] [--seed=9]
#include <iostream>

#include "hetgrid.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace hetgrid;
  const Cli cli(argc, argv,
                {{"epochs", "8"}, {"drift", "0.2"}, {"spread", "3.0"},
                 {"seed", "9"}, {"nb", "64"}});
  const int epochs = static_cast<int>(cli.get_int("epochs"));
  const double drift = cli.get_double("drift");
  const double spread = cli.get_double("spread");
  const std::size_t nb = static_cast<std::size_t>(cli.get_int("nb"));
  const std::size_t p = 4, q = 4;

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  // Base speed 0.2 s/block; per-node multiplicative load in [1, spread].
  // Loads drift slowly: each epoch mixes the previous value with a fresh
  // draw at rate `drift` (0 = frozen, 1 = fully redrawn every epoch).
  auto draw_loads = [&](const std::vector<double>& prev) {
    std::vector<double> t(p * q);
    for (std::size_t i = 0; i < t.size(); ++i) {
      const double target = 0.2 * (1.0 + (spread - 1.0) * rng.uniform());
      t[i] = prev.empty() ? target : (1.0 - drift) * prev[i] + drift * target;
    }
    return t;
  };

  std::vector<double> loads = draw_loads({});
  const HeuristicResult fitted0 = solve_heuristic(p, q, loads);
  const NetworkModel net{Topology::kSwitched, 1e-4, 2e-4, true};

  // Recover which physical machine the epoch-0 fit pinned to each grid
  // position: the heuristic permutes the *values* of `loads`, so match
  // them back to machine ids (ties resolved in order).
  std::vector<std::size_t> machine_at(p * q);
  {
    std::vector<bool> used(p * q, false);
    const std::vector<double>& placed = fitted0.final().grid.row_major();
    for (std::size_t pos = 0; pos < placed.size(); ++pos) {
      for (std::size_t id = 0; id < loads.size(); ++id) {
        if (!used[id] && loads[id] == placed[pos]) {
          used[id] = true;
          machine_at[pos] = id;
          break;
        }
      }
    }
  }

  Table table("Simulated MMM makespan per epoch (" + std::to_string(nb) +
              " block steps, 4x4 grid)");
  table.header({"epoch", "block-cyclic", "static-once", "refit-per-epoch",
                "refit gain vs static"});

  double sum_bc = 0.0, sum_static = 0.0, sum_refit = 0.0;
  for (int e = 0; e < epochs; ++e) {
    if (e > 0) loads = draw_loads(loads);
    // The machine this epoch: actual loads, arranged as each policy sees
    // them. static-once keeps epoch-0's arrangement/panel but runs at the
    // *current* speeds of the machines it pinned to grid positions.
    const CycleTimeGrid truth_sorted =
        CycleTimeGrid::sorted_row_major(p, q, loads);

    const PanelDistribution bc = PanelDistribution::block_cyclic(p, q);
    const double t_bc =
        simulate_mmm({truth_sorted, net}, bc, nb).total_time;

    // static-once: the epoch-0 fit pinned machines to grid positions and
    // fixed the panel; this epoch those same machines run at their
    // *current* (drifted) speeds.
    static PanelDistribution static_dist =
        PanelDistribution::from_allocation(
            fitted0.final().grid, fitted0.final().alloc, 4 * p, 4 * q,
            PanelOrder::kContiguous, PanelOrder::kContiguous, "static");
    std::vector<double> static_speeds(p * q);
    for (std::size_t pos = 0; pos < p * q; ++pos)
      static_speeds[pos] = loads[machine_at[pos]];
    const CycleTimeGrid static_grid(p, q, static_speeds);
    const double t_static =
        simulate_mmm({static_grid, net}, static_dist, nb).total_time;

    const HeuristicResult refit = solve_heuristic(p, q, loads);
    const PanelDistribution refit_dist = PanelDistribution::from_allocation(
        refit.final().grid, refit.final().alloc, 4 * p, 4 * q,
        PanelOrder::kContiguous, PanelOrder::kContiguous, "refit");
    const double t_refit =
        simulate_mmm({refit.final().grid, net}, refit_dist, nb).total_time;

    sum_bc += t_bc;
    sum_static += t_static;
    sum_refit += t_refit;
    table.row({Table::num(static_cast<std::int64_t>(e)),
               Table::num(t_bc, 1), Table::num(t_static, 1),
               Table::num(t_refit, 1),
               Table::num(100.0 * (t_static - t_refit) / t_static, 1) + "%"});
  }
  table.print(std::cout);
  std::cout << "\ntotals: block-cyclic " << Table::num(sum_bc, 1)
            << ", static-once " << Table::num(sum_static, 1)
            << ", refit-per-epoch " << Table::num(sum_refit, 1) << "\n"
            << "Reading: a load-fitted allocation beats load-blind "
               "block-cyclic while the fit is\nfresh; as loads drift the "
               "stale fit decays (and can even fall behind uniform),\nwhile "
               "re-fitting each epoch keeps the full benefit. This is the "
               "paper's\n'multi-user parallel machine as HNOW' argument "
               "(Section 2.2) in numbers.\n";
  return 0;
}
