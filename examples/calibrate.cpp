// Cycle-time calibration: measure this host's real time per r x r block
// update, the quantity every hetgrid solver consumes.
//
// On a real HNOW each workstation runs this once; the resulting
// cycle-times parameterize the solvers. Here we calibrate the local CPU
// for several block sizes and then *derive* a synthetic 4-machine HNOW
// (1x, 1.5x, 2.5x, 4x the measured time) to feed the usual pipeline —
// showing the full measure -> solve -> predict workflow on one machine.
//
//   ./calibrate [--rmin=16] [--rmax=128] [--reps=5]
#include <chrono>
#include <iostream>

#include "hetgrid.hpp"
#include "util/cli.hpp"

namespace {

// Median wall-clock seconds for one C += A*B on r x r blocks.
double measure_block_update(std::size_t r, int reps, hetgrid::Rng& rng) {
  using clock = std::chrono::steady_clock;
  hetgrid::Matrix a(r, r), b(r, r), c(r, r, 0.0);
  hetgrid::fill_random(a.view(), rng);
  hetgrid::fill_random(b.view(), rng);
  std::vector<double> samples;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = clock::now();
    hetgrid::gemm_update(a.view(), b.view(), c.view());
    const auto t1 = clock::now();
    samples.push_back(std::chrono::duration<double>(t1 - t0).count());
  }
  return hetgrid::percentile(samples, 50.0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hetgrid;
  const Cli cli(argc, argv, {{"rmin", "16"}, {"rmax", "128"}, {"reps", "5"}});
  Rng rng(1);

  Table table("Measured cycle-times on this host");
  table.header({"block r", "s per block update", "GFLOP/s"});
  double chosen = 0.0;
  for (std::size_t r = static_cast<std::size_t>(cli.get_int("rmin"));
       r <= static_cast<std::size_t>(cli.get_int("rmax")); r *= 2) {
    const double t = measure_block_update(
        r, static_cast<int>(cli.get_int("reps")), rng);
    const double gflops = 2.0 * static_cast<double>(r) * r * r / t / 1e9;
    table.row({Table::num(static_cast<std::int64_t>(r)), Table::num(t, 6),
               Table::num(gflops, 2)});
    chosen = t;  // use the largest measured block
  }
  table.print(std::cout);

  // Derive a synthetic HNOW from the measurement and run the pipeline.
  const std::vector<double> hnow{chosen, 1.5 * chosen, 2.5 * chosen,
                                 4.0 * chosen};
  const HeuristicResult h = solve_heuristic(2, 2, hnow);
  std::cout << "\nSynthetic HNOW from this host's speed (1x/1.5x/2.5x/4x):\n"
            << h.final().grid.to_string(6)
            << "predicted average utilization "
            << Table::num(h.final().avg_workload, 3) << "\n";

  const PanelDistribution dist = PanelDistribution::from_allocation(
      h.final().grid, h.final().alloc, 8, 8, PanelOrder::kContiguous,
      PanelOrder::kContiguous, "calibrated");
  const Machine m{h.final().grid, NetworkModel::free()};
  const SimReport het = simulate_mmm(m, dist, 64);
  const SimReport bc = simulate_mmm(
      m, PanelDistribution::block_cyclic(2, 2), 64);
  std::cout << "predicted 64-block MMM: block-cyclic "
            << Table::num(bc.total_time, 2) << " s, calibrated panel "
            << Table::num(het.total_time, 2) << " s ("
            << Table::num(bc.total_time / het.total_time, 2) << "x)\n";
  return 0;
}
