// Distributed QR factorization and least-squares polynomial fit.
//
// Scenario: fit a degree-(d-1) polynomial to noisy samples by solving
// min ||V c - y|| with a tall Vandermonde design matrix (n samples, d
// basis columns). The rectangular QR factorization runs distributed on a
// heterogeneous 2 x 3 grid in virtual time; Q^T y and the triangular solve
// run sequentially afterwards.
//
//   ./qr_least_squares [--n=240] [--block=8] [--degree=24] [--seed=5]
#include <iostream>

#include "hetgrid.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace hetgrid;
  const Cli cli(argc, argv,
                {{"n", "240"}, {"block", "8"}, {"degree", "24"},
                 {"seed", "5"}});
  const std::size_t n = static_cast<std::size_t>(cli.get_int("n"));
  const std::size_t block = static_cast<std::size_t>(cli.get_int("block"));
  const std::size_t degree = static_cast<std::size_t>(cli.get_int("degree"));
  HG_CHECK(degree < n, "--degree must be smaller than --n");

  // Tall design matrix: Chebyshev basis on [-1, 1] (well-conditioned, so
  // the fit quality reflects the factorization, not the basis).
  Matrix a(n, degree, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = -1.0 + 2.0 * static_cast<double>(i) /
                                static_cast<double>(n - 1);
    double t_prev = 1.0, t_cur = x;
    for (std::size_t j = 0; j < degree; ++j) {
      if (j == 0) {
        a(i, j) = 1.0;
      } else if (j == 1) {
        a(i, j) = x;
      } else {
        const double t_next = 2.0 * x * t_cur - t_prev;
        t_prev = t_cur;
        t_cur = t_next;
        a(i, j) = t_cur;
      }
    }
  }

  // Ground-truth coefficients and noisy observations.
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  std::vector<double> coef(degree);
  for (double& c : coef) c = rng.uniform(-2.0, 2.0);
  Matrix y(n, 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < degree; ++j) acc += coef[j] * a(i, j);
    y(i, 0) = acc + 1e-3 * rng.uniform(-1.0, 1.0);
  }

  // Heterogeneous machine + allocation.
  const std::vector<double> pool{0.15, 0.2, 0.3, 0.35, 0.5, 0.6};
  const HeuristicResult h = solve_heuristic(2, 3, pool);
  const PanelDistribution dist = PanelDistribution::from_allocation(
      h.final().grid, h.final().alloc, 6, 3, PanelOrder::kContiguous,
      PanelOrder::kInterleaved, "qr-panel");
  const Machine machine{h.final().grid,
                        {Topology::kSwitched, 1e-4, 2e-4, true}};

  std::cout << "Grid:\n" << h.final().grid.to_string(2) << "\n";
  std::cout << "Design matrix " << n << "x" << degree << ", block " << block
            << "\n";

  // Distributed rectangular QR in virtual time.
  const VirtualQrReport rep =
      run_distributed_qr(machine, dist, a.view(), block);
  std::cout << "Distributed QR makespan: " << Table::num(rep.makespan, 1)
            << " s (virtual), utilization "
            << Table::num(rep.average_utilization(), 3) << ", "
            << rep.block_ops << " block ops\n\n";

  // Least-squares solve from the packed factors: x = R^{-1} (Q^T y)_top.
  qr_apply_qt(a.view(), rep.tau, y.view());
  Matrix r(degree, degree, 0.0);
  for (std::size_t j = 0; j < degree; ++j)
    for (std::size_t i = 0; i <= j; ++i) r(i, j) = a(i, j);
  MatrixView top = y.block(0, 0, degree, 1);
  trsm_left_upper(r.view(), top);

  double worst = 0.0;
  for (std::size_t j = 0; j < degree; ++j)
    worst = std::max(worst, std::abs(y(j, 0) - coef[j]));

  Table table("Recovered coefficients (first 6 shown)");
  table.header({"basis fn", "true", "fit", "abs err"});
  for (std::size_t j = 0; j < std::min<std::size_t>(degree, 6); ++j) {
    table.row({"T" + std::to_string(j), Table::num(coef[j], 5),
               Table::num(y(j, 0), 5),
               Table::num(std::abs(y(j, 0) - coef[j]), 6)});
  }
  table.print(std::cout);
  std::cout << "\nMax coefficient error over all " << degree
            << " coefficients: " << Table::num(worst, 6)
            << "\n(noise level 1e-3 — the fit is noise-limited, not "
               "factorization-limited)\n";
  return worst < 1e-2 ? 0 : 1;
}
