// Distributed dense linear solve on a heterogeneous grid.
//
// Scenario: solve A x = b for a large dense system using the right-looking
// LU factorization of Section 3.2, distributed over a 2 x 2 heterogeneous
// grid with the paper's worked layout ({1,2;3,5}, panel 8x6, ABAABA column
// ordering). The factorization runs in virtual time with real arithmetic;
// the solution is verified against the right-hand side.
//
//   ./lu_solver [--n=192] [--block=8] [--seed=2]
#include <iostream>

#include "hetgrid.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace hetgrid;
  const Cli cli(argc, argv, {{"n", "192"}, {"block", "8"}, {"seed", "2"}});
  const std::size_t n = static_cast<std::size_t>(cli.get_int("n"));
  const std::size_t block = static_cast<std::size_t>(cli.get_int("block"));

  // The paper's running example grid.
  const CycleTimeGrid grid(2, 2, {1, 2, 3, 5});
  std::cout << "Grid (cycle-times):\n" << grid.to_string(0) << "\n";

  // Panel of Section 3.2.2: rows 6:2 contiguous, columns 4:2 interleaved.
  const PanelDistribution lu_dist = PanelDistribution::from_counts(
      {6, 2}, {4, 2}, grid, PanelOrder::kContiguous,
      PanelOrder::kInterleaved, "lu-panel");
  std::cout << "Panel column ordering: ";
  for (std::size_t g : lu_dist.col_map()) std::cout << (g == 0 ? 'A' : 'B');
  std::cout << "  (paper: ABAABA)\n\n";

  // Build a solvable system from a *general* random matrix: the
  // distributed factorization pivots partially, with row interchanges
  // moving data across the grid exactly as ScaLAPACK's pdgetrf does.
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  Matrix a(n, n);
  fill_random(a.view(), rng);
  Matrix x_true(n, 1);
  fill_random(x_true.view(), rng);
  Matrix rhs(n, 1, 0.0);
  gemm(Trans::No, Trans::No, 1.0, a.view(), x_true.view(), 0.0, rhs.view());

  // Distributed pivoted factorization in virtual time.
  Matrix lu(n, n);
  lu.view().copy_from(a.view());
  const Machine machine{grid, {Topology::kSwitched, 1e-4, 2e-4, true}};
  const VirtualPivotedLuReport rep =
      run_distributed_lu_pivoted(machine, lu_dist, lu.view(), block);
  HG_CHECK(!rep.singular, "unexpectedly singular input");

  // Pivot application + forward/backward substitution (sequential
  // postprocessing).
  lu_solve(lu.view(), rep.piv, rhs.view());
  const double err = max_abs_diff(rhs.view(), x_true.view());

  // Compare against block-cyclic for the same machine.
  Matrix lu_bc(n, n);
  lu_bc.view().copy_from(a.view());
  const PanelDistribution bc = PanelDistribution::block_cyclic(2, 2);
  const VirtualPivotedLuReport rep_bc =
      run_distributed_lu_pivoted(machine, bc, lu_bc.view(), block);

  Table table("Distributed LU of a " + std::to_string(n) + "x" +
              std::to_string(n) + " system");
  table.header({"distribution", "makespan (s)", "utilization"});
  table.row({"block-cyclic", Table::num(rep_bc.makespan, 1),
             Table::num(rep_bc.average_utilization(), 3)});
  table.row({"lu-panel (ABAABA)", Table::num(rep.makespan, 1),
             Table::num(rep.average_utilization(), 3)});
  table.print(std::cout);

  std::cout << "\nSolution max |x - x_true| = " << Table::num(err, 12)
            << "\nSpeedup over block-cyclic: "
            << Table::num(rep_bc.makespan / rep.makespan, 2) << "x\n";
  return 0;
}
