// Heterogeneous-NOW matrix multiplication, end to end with real numerics.
//
// Scenario from the paper's introduction: a university department owns a
// mixed bag of workstations — a few fast recent machines and several older,
// slower ones — and wants to run one large matrix product overnight across
// all of them. This example:
//   1. models the department machines with calibrated cycle-times,
//   2. solves the 2D load-balancing problem (heuristic + exact for the
//      arrangement search),
//   3. executes the blocked outer-product algorithm *for real* in virtual
//      time under three distributions,
//   4. verifies every result against a sequential reference product.
//
//   ./hnow_gemm [--n=240] [--block=24] [--seed=1]
#include <iostream>

#include "hetgrid.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace hetgrid;
  const Cli cli(argc, argv, {{"n", "320"}, {"block", "16"}, {"seed", "1"}});
  const std::size_t n = static_cast<std::size_t>(cli.get_int("n"));
  const std::size_t block = static_cast<std::size_t>(cli.get_int("block"));

  // The department's machines: two new workstations, two mid-range, two
  // legacy boxes roughly 4x slower than the best.
  const std::vector<double> cycle_times{0.10, 0.12, 0.22, 0.25, 0.38, 0.42};
  const std::size_t p = 2, q = 3;
  std::cout << "Department HNOW, " << p * q
            << " workstations, cycle-times (s/block):";
  for (double t : cycle_times) std::cout << ' ' << t;
  std::cout << "\nMatrix " << n << "x" << n << ", block " << block << "\n\n";

  // Solve the allocation problem.
  const HeuristicResult h = solve_heuristic(p, q, cycle_times);
  const OptimalArrangement opt = solve_optimal_arrangement(p, q, cycle_times);
  std::cout << "Heuristic obj2 " << Table::num(h.final().obj2, 4)
            << " (capacity bound "
            << Table::num(obj2_upper_bound(h.final().grid), 4)
            << "), exact obj2 " << Table::num(opt.solution.obj2, 4) << "\n\n";

  // Candidate distributions. The panel spans the whole block matrix, so
  // the rational shares are rounded at the finest possible granularity.
  const std::size_t nb = n / block;
  const PanelDistribution bc = PanelDistribution::block_cyclic(p, q);
  const PanelDistribution het = PanelDistribution::from_allocation(
      h.final().grid, h.final().alloc, nb, nb, PanelOrder::kContiguous,
      PanelOrder::kContiguous, "heuristic-panel");
  const PanelDistribution ex = PanelDistribution::from_allocation(
      opt.grid, opt.solution.alloc, nb, nb, PanelOrder::kContiguous,
      PanelOrder::kContiguous, "exact-panel");

  // Real input data and a sequential reference.
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  Matrix a(n, n), b(n, n), c(n, n), ref(n, n, 0.0);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);
  gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.0, ref.view());

  Table table("Virtual-time execution of C = A*B (" +
              std::to_string(nb) + "x" + std::to_string(nb) + " blocks)");
  table.header({"distribution", "grid", "makespan (s)", "utilization",
                "max |err|"});

  struct Case {
    const Distribution2D* dist;
    const CycleTimeGrid* grid;
  };
  const Case cases[] = {{&bc, &h.final().grid},
                        {&het, &h.final().grid},
                        {&ex, &opt.grid}};
  const NetworkModel net{Topology::kSwitched, 1e-4, 2e-4, true};

  for (const Case& cs : cases) {
    const Machine machine{*cs.grid, net};
    const VirtualReport rep = run_distributed_mmm(
        machine, *cs.dist, a.view(), b.view(), c.view(), block);
    std::string grid_desc;
    for (std::size_t i = 0; i < cs.grid->size(); ++i) {
      if (i) grid_desc += ' ';
      grid_desc += Table::num(cs.grid->row_major()[i], 2);
    }
    table.row({cs.dist->name(), grid_desc, Table::num(rep.makespan, 1),
               Table::num(rep.average_utilization(), 3),
               Table::num(max_abs_diff(c.view(), ref.view()), 12)});
  }
  table.print(std::cout);
  std::cout << "\nAll three executions computed the same product as the "
               "sequential kernel;\nonly the (virtual) time differs — that "
               "difference is the data allocation.\n";
  return 0;
}
