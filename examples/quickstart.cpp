// Quickstart: balance a small heterogeneous workstation network.
//
// Scenario: four workstations of different speeds must cooperate on a
// matrix product. We measure each machine's cycle-time (seconds per r x r
// block update), run the paper's heuristic to arrange them on a 2 x 2 grid
// and split the work, and compare the simulated execution time against
// ScaLAPACK's uniform block-cyclic distribution.
//
//   ./quickstart
#include <iostream>

#include "hetgrid.hpp"

int main() {
  using namespace hetgrid;

  // Step 1 — the machine: cycle-times from a quick calibration run.
  // (A workstation twice as slow has twice the cycle-time.)
  const std::vector<double> cycle_times{0.18, 0.25, 0.40, 0.55};
  std::cout << "Workstation cycle-times (s/block):";
  for (double t : cycle_times) std::cout << ' ' << t;
  std::cout << "\n\n";

  // Step 2 — solve the 2D load-balancing problem (arrangement + shares).
  const HeuristicResult solved = solve_heuristic(2, 2, cycle_times);
  const CycleTimeGrid& grid = solved.final().grid;
  const GridAllocation& alloc = solved.final().alloc;
  std::cout << "Chosen 2x2 arrangement (cycle-times):\n"
            << grid.to_string(2) << "\n";
  std::cout << "Row shares r:";
  for (double r : alloc.r) std::cout << ' ' << Table::num(r, 3);
  std::cout << "\nColumn shares c:";
  for (double c : alloc.c) std::cout << ' ' << Table::num(c, 3);
  std::cout << "\nPredicted average utilization: "
            << Table::num(solved.final().avg_workload, 3) << "\n\n";

  // Step 3 — turn the rational shares into a block panel.
  const std::size_t panel = 8;
  const PanelDistribution het = PanelDistribution::from_allocation(
      grid, alloc, panel, panel, PanelOrder::kContiguous,
      PanelOrder::kContiguous, "heterogeneous");
  std::cout << "Panel " << panel << "x" << panel
            << ": row multiplicities";
  for (std::size_t m : het.row_multiplicities()) std::cout << ' ' << m;
  std::cout << ", column multiplicities";
  for (std::size_t m : het.col_multiplicities()) std::cout << ' ' << m;
  std::cout << "\n4-neighbor grid pattern: "
            << (neighbor_census(het).grid_pattern() ? "yes" : "no")
            << "\n\n";

  // Step 4 — simulate a 64x64-block matrix product and compare.
  const Machine machine{grid, {Topology::kSwitched, 1e-4, 2e-4, true}};
  const PanelDistribution bc = PanelDistribution::block_cyclic(2, 2);
  const SimReport r_het = simulate_mmm(machine, het, 64);
  const SimReport r_bc = simulate_mmm(machine, bc, 64);

  Table table("Simulated 64x64-block matrix multiplication");
  table.header({"distribution", "time (s)", "vs perfect", "utilization"});
  for (const SimReport* rep : {&r_bc, &r_het}) {
    table.row({rep->distribution, Table::num(rep->total_time, 1),
               Table::num(rep->slowdown_vs_perfect(), 3),
               Table::num(rep->average_utilization(), 3)});
  }
  table.print(std::cout);
  std::cout << "\nSpeedup over block-cyclic: "
            << Table::num(r_bc.total_time / r_het.total_time, 2) << "x\n";
  return 0;
}
