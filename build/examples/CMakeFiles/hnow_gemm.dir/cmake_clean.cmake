file(REMOVE_RECURSE
  "CMakeFiles/hnow_gemm.dir/hnow_gemm.cpp.o"
  "CMakeFiles/hnow_gemm.dir/hnow_gemm.cpp.o.d"
  "hnow_gemm"
  "hnow_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hnow_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
