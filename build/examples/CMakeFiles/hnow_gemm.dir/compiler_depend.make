# Empty compiler generated dependencies file for hnow_gemm.
# This may be replaced when dependencies are built.
