file(REMOVE_RECURSE
  "CMakeFiles/qr_least_squares.dir/qr_least_squares.cpp.o"
  "CMakeFiles/qr_least_squares.dir/qr_least_squares.cpp.o.d"
  "qr_least_squares"
  "qr_least_squares.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qr_least_squares.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
