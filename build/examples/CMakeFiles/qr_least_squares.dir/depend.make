# Empty dependencies file for qr_least_squares.
# This may be replaced when dependencies are built.
