# Empty compiler generated dependencies file for multiuser_cluster.
# This may be replaced when dependencies are built.
