file(REMOVE_RECURSE
  "CMakeFiles/multiuser_cluster.dir/multiuser_cluster.cpp.o"
  "CMakeFiles/multiuser_cluster.dir/multiuser_cluster.cpp.o.d"
  "multiuser_cluster"
  "multiuser_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiuser_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
