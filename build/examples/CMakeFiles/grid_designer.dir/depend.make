# Empty dependencies file for grid_designer.
# This may be replaced when dependencies are built.
