# Empty compiler generated dependencies file for grid_designer.
# This may be replaced when dependencies are built.
