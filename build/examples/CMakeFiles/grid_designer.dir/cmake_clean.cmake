file(REMOVE_RECURSE
  "CMakeFiles/grid_designer.dir/grid_designer.cpp.o"
  "CMakeFiles/grid_designer.dir/grid_designer.cpp.o.d"
  "grid_designer"
  "grid_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
