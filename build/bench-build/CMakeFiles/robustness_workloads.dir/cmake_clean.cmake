file(REMOVE_RECURSE
  "../bench/robustness_workloads"
  "../bench/robustness_workloads.pdb"
  "CMakeFiles/robustness_workloads.dir/robustness_workloads.cpp.o"
  "CMakeFiles/robustness_workloads.dir/robustness_workloads.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
