# Empty dependencies file for robustness_workloads.
# This may be replaced when dependencies are built.
