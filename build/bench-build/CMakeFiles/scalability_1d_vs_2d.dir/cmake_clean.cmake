file(REMOVE_RECURSE
  "../bench/scalability_1d_vs_2d"
  "../bench/scalability_1d_vs_2d.pdb"
  "CMakeFiles/scalability_1d_vs_2d.dir/scalability_1d_vs_2d.cpp.o"
  "CMakeFiles/scalability_1d_vs_2d.dir/scalability_1d_vs_2d.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalability_1d_vs_2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
