# Empty dependencies file for scalability_1d_vs_2d.
# This may be replaced when dependencies are built.
