# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for scalability_1d_vs_2d.
