# Empty dependencies file for ablation_svd_target.
# This may be replaced when dependencies are built.
