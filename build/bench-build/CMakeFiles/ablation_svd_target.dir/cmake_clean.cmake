file(REMOVE_RECURSE
  "../bench/ablation_svd_target"
  "../bench/ablation_svd_target.pdb"
  "CMakeFiles/ablation_svd_target.dir/ablation_svd_target.cpp.o"
  "CMakeFiles/ablation_svd_target.dir/ablation_svd_target.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_svd_target.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
