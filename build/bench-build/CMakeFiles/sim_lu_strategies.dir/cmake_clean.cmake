file(REMOVE_RECURSE
  "../bench/sim_lu_strategies"
  "../bench/sim_lu_strategies.pdb"
  "CMakeFiles/sim_lu_strategies.dir/sim_lu_strategies.cpp.o"
  "CMakeFiles/sim_lu_strategies.dir/sim_lu_strategies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_lu_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
