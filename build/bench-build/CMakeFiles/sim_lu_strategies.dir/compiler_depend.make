# Empty compiler generated dependencies file for sim_lu_strategies.
# This may be replaced when dependencies are built.
