
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig6_avg_workload.cpp" "bench-build/CMakeFiles/fig6_avg_workload.dir/fig6_avg_workload.cpp.o" "gcc" "bench-build/CMakeFiles/fig6_avg_workload.dir/fig6_avg_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/hetgrid_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hetgrid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/hetgrid_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hetgrid_core.dir/DependInfo.cmake"
  "/root/repo/build/src/svd/CMakeFiles/hetgrid_svd.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hetgrid_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/hetgrid_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hetgrid_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
