file(REMOVE_RECURSE
  "../bench/fig6_avg_workload"
  "../bench/fig6_avg_workload.pdb"
  "CMakeFiles/fig6_avg_workload.dir/fig6_avg_workload.cpp.o"
  "CMakeFiles/fig6_avg_workload.dir/fig6_avg_workload.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_avg_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
