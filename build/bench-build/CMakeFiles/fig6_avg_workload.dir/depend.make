# Empty dependencies file for fig6_avg_workload.
# This may be replaced when dependencies are built.
