file(REMOVE_RECURSE
  "../bench/ablation_exact_gap"
  "../bench/ablation_exact_gap.pdb"
  "CMakeFiles/ablation_exact_gap.dir/ablation_exact_gap.cpp.o"
  "CMakeFiles/ablation_exact_gap.dir/ablation_exact_gap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_exact_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
