# Empty compiler generated dependencies file for ablation_exact_gap.
# This may be replaced when dependencies are built.
