file(REMOVE_RECURSE
  "../bench/ablation_panel_size"
  "../bench/ablation_panel_size.pdb"
  "CMakeFiles/ablation_panel_size.dir/ablation_panel_size.cpp.o"
  "CMakeFiles/ablation_panel_size.dir/ablation_panel_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_panel_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
