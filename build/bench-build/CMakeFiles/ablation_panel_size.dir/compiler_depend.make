# Empty compiler generated dependencies file for ablation_panel_size.
# This may be replaced when dependencies are built.
