file(REMOVE_RECURSE
  "../bench/sim_mmm_strategies"
  "../bench/sim_mmm_strategies.pdb"
  "CMakeFiles/sim_mmm_strategies.dir/sim_mmm_strategies.cpp.o"
  "CMakeFiles/sim_mmm_strategies.dir/sim_mmm_strategies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_mmm_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
