# Empty compiler generated dependencies file for sim_mmm_strategies.
# This may be replaced when dependencies are built.
