file(REMOVE_RECURSE
  "../bench/ablation_network"
  "../bench/ablation_network.pdb"
  "CMakeFiles/ablation_network.dir/ablation_network.cpp.o"
  "CMakeFiles/ablation_network.dir/ablation_network.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
