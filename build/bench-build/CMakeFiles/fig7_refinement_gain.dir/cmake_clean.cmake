file(REMOVE_RECURSE
  "../bench/fig7_refinement_gain"
  "../bench/fig7_refinement_gain.pdb"
  "CMakeFiles/fig7_refinement_gain.dir/fig7_refinement_gain.cpp.o"
  "CMakeFiles/fig7_refinement_gain.dir/fig7_refinement_gain.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_refinement_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
