# Empty dependencies file for fig7_refinement_gain.
# This may be replaced when dependencies are built.
