file(REMOVE_RECURSE
  "../bench/table_worked_examples"
  "../bench/table_worked_examples.pdb"
  "CMakeFiles/table_worked_examples.dir/table_worked_examples.cpp.o"
  "CMakeFiles/table_worked_examples.dir/table_worked_examples.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_worked_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
