# Empty compiler generated dependencies file for table_worked_examples.
# This may be replaced when dependencies are built.
