# Empty dependencies file for mp_model_fidelity.
# This may be replaced when dependencies are built.
