file(REMOVE_RECURSE
  "../bench/mp_model_fidelity"
  "../bench/mp_model_fidelity.pdb"
  "CMakeFiles/mp_model_fidelity.dir/mp_model_fidelity.cpp.o"
  "CMakeFiles/mp_model_fidelity.dir/mp_model_fidelity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_model_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
