# Empty dependencies file for test_exact_solver.
# This may be replaced when dependencies are built.
