file(REMOVE_RECURSE
  "CMakeFiles/test_exact_solver.dir/test_exact_solver.cpp.o"
  "CMakeFiles/test_exact_solver.dir/test_exact_solver.cpp.o.d"
  "test_exact_solver"
  "test_exact_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exact_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
