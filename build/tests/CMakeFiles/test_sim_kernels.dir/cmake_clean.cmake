file(REMOVE_RECURSE
  "CMakeFiles/test_sim_kernels.dir/test_sim_kernels.cpp.o"
  "CMakeFiles/test_sim_kernels.dir/test_sim_kernels.cpp.o.d"
  "test_sim_kernels"
  "test_sim_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
