# Empty dependencies file for test_heuristic.
# This may be replaced when dependencies are built.
