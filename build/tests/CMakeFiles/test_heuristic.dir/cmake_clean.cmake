file(REMOVE_RECURSE
  "CMakeFiles/test_heuristic.dir/test_heuristic.cpp.o"
  "CMakeFiles/test_heuristic.dir/test_heuristic.cpp.o.d"
  "test_heuristic"
  "test_heuristic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heuristic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
