file(REMOVE_RECURSE
  "CMakeFiles/test_alloc1d.dir/test_alloc1d.cpp.o"
  "CMakeFiles/test_alloc1d.dir/test_alloc1d.cpp.o.d"
  "test_alloc1d"
  "test_alloc1d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alloc1d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
