# Empty compiler generated dependencies file for test_alloc1d.
# This may be replaced when dependencies are built.
