# Empty dependencies file for test_runtime_factorizations.
# This may be replaced when dependencies are built.
