file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_factorizations.dir/test_runtime_factorizations.cpp.o"
  "CMakeFiles/test_runtime_factorizations.dir/test_runtime_factorizations.cpp.o.d"
  "test_runtime_factorizations"
  "test_runtime_factorizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_factorizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
