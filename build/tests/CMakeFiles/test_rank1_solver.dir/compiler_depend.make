# Empty compiler generated dependencies file for test_rank1_solver.
# This may be replaced when dependencies are built.
