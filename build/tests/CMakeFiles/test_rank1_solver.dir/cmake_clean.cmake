file(REMOVE_RECURSE
  "CMakeFiles/test_rank1_solver.dir/test_rank1_solver.cpp.o"
  "CMakeFiles/test_rank1_solver.dir/test_rank1_solver.cpp.o.d"
  "test_rank1_solver"
  "test_rank1_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rank1_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
