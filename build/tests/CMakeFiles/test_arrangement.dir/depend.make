# Empty dependencies file for test_arrangement.
# This may be replaced when dependencies are built.
