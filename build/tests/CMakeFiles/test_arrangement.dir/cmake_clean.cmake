file(REMOVE_RECURSE
  "CMakeFiles/test_arrangement.dir/test_arrangement.cpp.o"
  "CMakeFiles/test_arrangement.dir/test_arrangement.cpp.o.d"
  "test_arrangement"
  "test_arrangement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arrangement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
