file(REMOVE_RECURSE
  "CMakeFiles/hetgrid.dir/hetgrid_cli.cpp.o"
  "CMakeFiles/hetgrid.dir/hetgrid_cli.cpp.o.d"
  "hetgrid"
  "hetgrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetgrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
