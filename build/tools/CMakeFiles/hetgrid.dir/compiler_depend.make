# Empty compiler generated dependencies file for hetgrid.
# This may be replaced when dependencies are built.
