# Empty compiler generated dependencies file for hetgrid_graph.
# This may be replaced when dependencies are built.
