file(REMOVE_RECURSE
  "libhetgrid_graph.a"
)
