file(REMOVE_RECURSE
  "CMakeFiles/hetgrid_graph.dir/spanning_tree.cpp.o"
  "CMakeFiles/hetgrid_graph.dir/spanning_tree.cpp.o.d"
  "libhetgrid_graph.a"
  "libhetgrid_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetgrid_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
