# Empty dependencies file for hetgrid_mp.
# This may be replaced when dependencies are built.
