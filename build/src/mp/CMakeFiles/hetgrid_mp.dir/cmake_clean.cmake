file(REMOVE_RECURSE
  "CMakeFiles/hetgrid_mp.dir/block_store.cpp.o"
  "CMakeFiles/hetgrid_mp.dir/block_store.cpp.o.d"
  "CMakeFiles/hetgrid_mp.dir/mp_runtime.cpp.o"
  "CMakeFiles/hetgrid_mp.dir/mp_runtime.cpp.o.d"
  "CMakeFiles/hetgrid_mp.dir/virtual_network.cpp.o"
  "CMakeFiles/hetgrid_mp.dir/virtual_network.cpp.o.d"
  "libhetgrid_mp.a"
  "libhetgrid_mp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetgrid_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
