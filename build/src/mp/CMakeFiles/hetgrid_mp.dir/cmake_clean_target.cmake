file(REMOVE_RECURSE
  "libhetgrid_mp.a"
)
