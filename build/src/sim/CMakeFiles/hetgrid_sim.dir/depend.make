# Empty dependencies file for hetgrid_sim.
# This may be replaced when dependencies are built.
