file(REMOVE_RECURSE
  "CMakeFiles/hetgrid_sim.dir/simulator.cpp.o"
  "CMakeFiles/hetgrid_sim.dir/simulator.cpp.o.d"
  "libhetgrid_sim.a"
  "libhetgrid_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetgrid_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
