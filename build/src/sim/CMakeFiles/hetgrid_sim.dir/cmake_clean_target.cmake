file(REMOVE_RECURSE
  "libhetgrid_sim.a"
)
