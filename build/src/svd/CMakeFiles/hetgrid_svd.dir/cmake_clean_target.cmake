file(REMOVE_RECURSE
  "libhetgrid_svd.a"
)
