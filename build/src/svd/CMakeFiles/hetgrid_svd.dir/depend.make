# Empty dependencies file for hetgrid_svd.
# This may be replaced when dependencies are built.
