file(REMOVE_RECURSE
  "CMakeFiles/hetgrid_svd.dir/svd.cpp.o"
  "CMakeFiles/hetgrid_svd.dir/svd.cpp.o.d"
  "libhetgrid_svd.a"
  "libhetgrid_svd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetgrid_svd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
