file(REMOVE_RECURSE
  "CMakeFiles/hetgrid_util.dir/check.cpp.o"
  "CMakeFiles/hetgrid_util.dir/check.cpp.o.d"
  "CMakeFiles/hetgrid_util.dir/cli.cpp.o"
  "CMakeFiles/hetgrid_util.dir/cli.cpp.o.d"
  "CMakeFiles/hetgrid_util.dir/rng.cpp.o"
  "CMakeFiles/hetgrid_util.dir/rng.cpp.o.d"
  "CMakeFiles/hetgrid_util.dir/stats.cpp.o"
  "CMakeFiles/hetgrid_util.dir/stats.cpp.o.d"
  "CMakeFiles/hetgrid_util.dir/table.cpp.o"
  "CMakeFiles/hetgrid_util.dir/table.cpp.o.d"
  "CMakeFiles/hetgrid_util.dir/workloads.cpp.o"
  "CMakeFiles/hetgrid_util.dir/workloads.cpp.o.d"
  "libhetgrid_util.a"
  "libhetgrid_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetgrid_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
