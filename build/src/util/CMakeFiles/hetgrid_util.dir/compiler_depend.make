# Empty compiler generated dependencies file for hetgrid_util.
# This may be replaced when dependencies are built.
