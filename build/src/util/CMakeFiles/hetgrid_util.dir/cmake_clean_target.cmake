file(REMOVE_RECURSE
  "libhetgrid_util.a"
)
