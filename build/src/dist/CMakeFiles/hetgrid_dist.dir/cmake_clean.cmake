file(REMOVE_RECURSE
  "CMakeFiles/hetgrid_dist.dir/distribution.cpp.o"
  "CMakeFiles/hetgrid_dist.dir/distribution.cpp.o.d"
  "CMakeFiles/hetgrid_dist.dir/kalinov_lastovetsky.cpp.o"
  "CMakeFiles/hetgrid_dist.dir/kalinov_lastovetsky.cpp.o.d"
  "CMakeFiles/hetgrid_dist.dir/panel_distribution.cpp.o"
  "CMakeFiles/hetgrid_dist.dir/panel_distribution.cpp.o.d"
  "libhetgrid_dist.a"
  "libhetgrid_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetgrid_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
