file(REMOVE_RECURSE
  "libhetgrid_dist.a"
)
