# Empty compiler generated dependencies file for hetgrid_dist.
# This may be replaced when dependencies are built.
