# Empty compiler generated dependencies file for hetgrid_core.
# This may be replaced when dependencies are built.
