file(REMOVE_RECURSE
  "CMakeFiles/hetgrid_core.dir/alloc1d.cpp.o"
  "CMakeFiles/hetgrid_core.dir/alloc1d.cpp.o.d"
  "CMakeFiles/hetgrid_core.dir/allocation.cpp.o"
  "CMakeFiles/hetgrid_core.dir/allocation.cpp.o.d"
  "CMakeFiles/hetgrid_core.dir/arrangement.cpp.o"
  "CMakeFiles/hetgrid_core.dir/arrangement.cpp.o.d"
  "CMakeFiles/hetgrid_core.dir/cycle_time_grid.cpp.o"
  "CMakeFiles/hetgrid_core.dir/cycle_time_grid.cpp.o.d"
  "CMakeFiles/hetgrid_core.dir/exact2x2.cpp.o"
  "CMakeFiles/hetgrid_core.dir/exact2x2.cpp.o.d"
  "CMakeFiles/hetgrid_core.dir/exact_solver.cpp.o"
  "CMakeFiles/hetgrid_core.dir/exact_solver.cpp.o.d"
  "CMakeFiles/hetgrid_core.dir/heuristic.cpp.o"
  "CMakeFiles/hetgrid_core.dir/heuristic.cpp.o.d"
  "CMakeFiles/hetgrid_core.dir/local_search.cpp.o"
  "CMakeFiles/hetgrid_core.dir/local_search.cpp.o.d"
  "CMakeFiles/hetgrid_core.dir/rank1_solver.cpp.o"
  "CMakeFiles/hetgrid_core.dir/rank1_solver.cpp.o.d"
  "CMakeFiles/hetgrid_core.dir/rounding.cpp.o"
  "CMakeFiles/hetgrid_core.dir/rounding.cpp.o.d"
  "libhetgrid_core.a"
  "libhetgrid_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetgrid_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
