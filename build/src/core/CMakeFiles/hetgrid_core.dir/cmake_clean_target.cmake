file(REMOVE_RECURSE
  "libhetgrid_core.a"
)
