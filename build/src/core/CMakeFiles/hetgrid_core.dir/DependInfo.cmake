
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alloc1d.cpp" "src/core/CMakeFiles/hetgrid_core.dir/alloc1d.cpp.o" "gcc" "src/core/CMakeFiles/hetgrid_core.dir/alloc1d.cpp.o.d"
  "/root/repo/src/core/allocation.cpp" "src/core/CMakeFiles/hetgrid_core.dir/allocation.cpp.o" "gcc" "src/core/CMakeFiles/hetgrid_core.dir/allocation.cpp.o.d"
  "/root/repo/src/core/arrangement.cpp" "src/core/CMakeFiles/hetgrid_core.dir/arrangement.cpp.o" "gcc" "src/core/CMakeFiles/hetgrid_core.dir/arrangement.cpp.o.d"
  "/root/repo/src/core/cycle_time_grid.cpp" "src/core/CMakeFiles/hetgrid_core.dir/cycle_time_grid.cpp.o" "gcc" "src/core/CMakeFiles/hetgrid_core.dir/cycle_time_grid.cpp.o.d"
  "/root/repo/src/core/exact2x2.cpp" "src/core/CMakeFiles/hetgrid_core.dir/exact2x2.cpp.o" "gcc" "src/core/CMakeFiles/hetgrid_core.dir/exact2x2.cpp.o.d"
  "/root/repo/src/core/exact_solver.cpp" "src/core/CMakeFiles/hetgrid_core.dir/exact_solver.cpp.o" "gcc" "src/core/CMakeFiles/hetgrid_core.dir/exact_solver.cpp.o.d"
  "/root/repo/src/core/heuristic.cpp" "src/core/CMakeFiles/hetgrid_core.dir/heuristic.cpp.o" "gcc" "src/core/CMakeFiles/hetgrid_core.dir/heuristic.cpp.o.d"
  "/root/repo/src/core/local_search.cpp" "src/core/CMakeFiles/hetgrid_core.dir/local_search.cpp.o" "gcc" "src/core/CMakeFiles/hetgrid_core.dir/local_search.cpp.o.d"
  "/root/repo/src/core/rank1_solver.cpp" "src/core/CMakeFiles/hetgrid_core.dir/rank1_solver.cpp.o" "gcc" "src/core/CMakeFiles/hetgrid_core.dir/rank1_solver.cpp.o.d"
  "/root/repo/src/core/rounding.cpp" "src/core/CMakeFiles/hetgrid_core.dir/rounding.cpp.o" "gcc" "src/core/CMakeFiles/hetgrid_core.dir/rounding.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hetgrid_util.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/hetgrid_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/svd/CMakeFiles/hetgrid_svd.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hetgrid_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
