file(REMOVE_RECURSE
  "CMakeFiles/hetgrid_runtime.dir/virtual_runtime.cpp.o"
  "CMakeFiles/hetgrid_runtime.dir/virtual_runtime.cpp.o.d"
  "libhetgrid_runtime.a"
  "libhetgrid_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetgrid_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
