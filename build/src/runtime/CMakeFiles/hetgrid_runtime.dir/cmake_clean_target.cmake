file(REMOVE_RECURSE
  "libhetgrid_runtime.a"
)
