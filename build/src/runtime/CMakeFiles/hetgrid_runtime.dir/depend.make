# Empty dependencies file for hetgrid_runtime.
# This may be replaced when dependencies are built.
