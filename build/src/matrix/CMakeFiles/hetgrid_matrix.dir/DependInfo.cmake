
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matrix/cholesky.cpp" "src/matrix/CMakeFiles/hetgrid_matrix.dir/cholesky.cpp.o" "gcc" "src/matrix/CMakeFiles/hetgrid_matrix.dir/cholesky.cpp.o.d"
  "/root/repo/src/matrix/gemm.cpp" "src/matrix/CMakeFiles/hetgrid_matrix.dir/gemm.cpp.o" "gcc" "src/matrix/CMakeFiles/hetgrid_matrix.dir/gemm.cpp.o.d"
  "/root/repo/src/matrix/lu.cpp" "src/matrix/CMakeFiles/hetgrid_matrix.dir/lu.cpp.o" "gcc" "src/matrix/CMakeFiles/hetgrid_matrix.dir/lu.cpp.o.d"
  "/root/repo/src/matrix/matrix.cpp" "src/matrix/CMakeFiles/hetgrid_matrix.dir/matrix.cpp.o" "gcc" "src/matrix/CMakeFiles/hetgrid_matrix.dir/matrix.cpp.o.d"
  "/root/repo/src/matrix/norms.cpp" "src/matrix/CMakeFiles/hetgrid_matrix.dir/norms.cpp.o" "gcc" "src/matrix/CMakeFiles/hetgrid_matrix.dir/norms.cpp.o.d"
  "/root/repo/src/matrix/qr.cpp" "src/matrix/CMakeFiles/hetgrid_matrix.dir/qr.cpp.o" "gcc" "src/matrix/CMakeFiles/hetgrid_matrix.dir/qr.cpp.o.d"
  "/root/repo/src/matrix/trsm.cpp" "src/matrix/CMakeFiles/hetgrid_matrix.dir/trsm.cpp.o" "gcc" "src/matrix/CMakeFiles/hetgrid_matrix.dir/trsm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hetgrid_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
