file(REMOVE_RECURSE
  "libhetgrid_matrix.a"
)
