# Empty compiler generated dependencies file for hetgrid_matrix.
# This may be replaced when dependencies are built.
