file(REMOVE_RECURSE
  "CMakeFiles/hetgrid_matrix.dir/cholesky.cpp.o"
  "CMakeFiles/hetgrid_matrix.dir/cholesky.cpp.o.d"
  "CMakeFiles/hetgrid_matrix.dir/gemm.cpp.o"
  "CMakeFiles/hetgrid_matrix.dir/gemm.cpp.o.d"
  "CMakeFiles/hetgrid_matrix.dir/lu.cpp.o"
  "CMakeFiles/hetgrid_matrix.dir/lu.cpp.o.d"
  "CMakeFiles/hetgrid_matrix.dir/matrix.cpp.o"
  "CMakeFiles/hetgrid_matrix.dir/matrix.cpp.o.d"
  "CMakeFiles/hetgrid_matrix.dir/norms.cpp.o"
  "CMakeFiles/hetgrid_matrix.dir/norms.cpp.o.d"
  "CMakeFiles/hetgrid_matrix.dir/qr.cpp.o"
  "CMakeFiles/hetgrid_matrix.dir/qr.cpp.o.d"
  "CMakeFiles/hetgrid_matrix.dir/trsm.cpp.o"
  "CMakeFiles/hetgrid_matrix.dir/trsm.cpp.o.d"
  "libhetgrid_matrix.a"
  "libhetgrid_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetgrid_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
