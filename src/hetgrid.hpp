// Umbrella header for the hetgrid library.
//
// hetgrid reproduces "Load Balancing Strategies for Dense Linear Algebra
// Kernels on Heterogeneous Two-dimensional Grids" (Beaumont, Boudet,
// Rastello, Robert — IPPS 2000): data-allocation solvers for heterogeneous
// p x q processor grids, the block-panel distributions they induce, and
// simulators / a virtual-time runtime for the ScaLAPACK-style matrix
// multiplication, LU, and QR kernels on top of them.
//
// Typical flow:
//   1. Measure or choose processor cycle-times (time per r x r block).
//   2. solve_heuristic / solve_exact / solve_optimal_arrangement to get an
//      arrangement and rational row/column shares (core/).
//   3. PanelDistribution::from_allocation to turn shares into a B_p x B_q
//      block panel with the 4-neighbor grid property (dist/).
//   4. simulate_mmm / simulate_lu / simulate_qr to predict performance, or
//      run_distributed_* to execute the kernels in virtual time (sim/,
//      runtime/).
#pragma once

#include "core/alloc1d.hpp"           // IWYU pragma: export
#include "core/allocation.hpp"        // IWYU pragma: export
#include "core/arrangement.hpp"       // IWYU pragma: export
#include "core/cycle_time_grid.hpp"   // IWYU pragma: export
#include "core/exact2x2.hpp"          // IWYU pragma: export
#include "core/exact_solver.hpp"      // IWYU pragma: export
#include "core/heuristic.hpp"         // IWYU pragma: export
#include "core/local_search.hpp"      // IWYU pragma: export
#include "core/rank1_solver.hpp"      // IWYU pragma: export
#include "core/rebalance.hpp"         // IWYU pragma: export
#include "core/rounding.hpp"          // IWYU pragma: export
#include "dist/distribution.hpp"      // IWYU pragma: export
#include "dist/kalinov_lastovetsky.hpp"  // IWYU pragma: export
#include "dist/panel_distribution.hpp"   // IWYU pragma: export
#include "matrix/gemm.hpp"            // IWYU pragma: export
#include "matrix/lu.hpp"              // IWYU pragma: export
#include "matrix/matrix.hpp"          // IWYU pragma: export
#include "matrix/norms.hpp"           // IWYU pragma: export
#include "matrix/cholesky.hpp"        // IWYU pragma: export
#include "matrix/qr.hpp"              // IWYU pragma: export
#include "matrix/trsm.hpp"            // IWYU pragma: export
#include "mp/mp_runtime.hpp"          // IWYU pragma: export
#include "obs/chrome_trace.hpp"       // IWYU pragma: export
#include "obs/cycle_estimator.hpp"    // IWYU pragma: export
#include "obs/imbalance.hpp"          // IWYU pragma: export
#include "obs/metrics.hpp"            // IWYU pragma: export
#include "obs/profiler.hpp"           // IWYU pragma: export
#include "obs/trace.hpp"              // IWYU pragma: export
#include "obs/utilization.hpp"        // IWYU pragma: export
#include "runtime/virtual_runtime.hpp"   // IWYU pragma: export
#include "serve/client.hpp"           // IWYU pragma: export
#include "serve/protocol.hpp"         // IWYU pragma: export
#include "serve/server.hpp"           // IWYU pragma: export
#include "serve/solution_cache.hpp"   // IWYU pragma: export
#include "sim/drift.hpp"              // IWYU pragma: export
#include "sim/dynamic.hpp"            // IWYU pragma: export
#include "sim/network.hpp"            // IWYU pragma: export
#include "sim/simulator.hpp"          // IWYU pragma: export
#include "svd/svd.hpp"                // IWYU pragma: export
#include "util/rng.hpp"               // IWYU pragma: export
#include "util/stats.hpp"             // IWYU pragma: export
#include "util/table.hpp"             // IWYU pragma: export
#include "util/workloads.hpp"         // IWYU pragma: export
