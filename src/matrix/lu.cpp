#include "matrix/lu.hpp"

#include <algorithm>
#include <cmath>

#include "matrix/gemm.hpp"
#include "matrix/trsm.hpp"

namespace hetgrid {

namespace {

void swap_rows(MatrixView a, std::size_t r1, std::size_t r2) {
  if (r1 == r2) return;
  for (std::size_t j = 0; j < a.cols(); ++j)
    std::swap(a(r1, j), a(r2, j));
}

}  // namespace

LuResult lu_factor_unblocked(MatrixView a) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const std::size_t steps = std::min(m, n);
  LuResult res;
  res.piv.resize(steps);

  for (std::size_t k = 0; k < steps; ++k) {
    // Partial pivoting: largest |a(i,k)| for i >= k.
    std::size_t pivot = k;
    double best = std::abs(a(k, k));
    for (std::size_t i = k + 1; i < m; ++i) {
      if (std::abs(a(i, k)) > best) {
        best = std::abs(a(i, k));
        pivot = i;
      }
    }
    res.piv[k] = pivot;
    swap_rows(a, k, pivot);

    const double akk = a(k, k);
    if (akk == 0.0) {
      res.singular = true;
      continue;  // column already zero below the diagonal
    }
    for (std::size_t i = k + 1; i < m; ++i) a(i, k) /= akk;
    for (std::size_t j = k + 1; j < n; ++j) {
      const double akj = a(k, j);
      if (akj == 0.0) continue;
      for (std::size_t i = k + 1; i < m; ++i) a(i, j) -= a(i, k) * akj;
    }
  }
  return res;
}

LuResult lu_factor_blocked(MatrixView a, std::size_t block) {
  HG_CHECK(block > 0, "block size must be positive");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const std::size_t steps = std::min(m, n);
  LuResult res;
  res.piv.resize(steps);

  for (std::size_t k = 0; k < steps; k += block) {
    const std::size_t b = std::min(block, steps - k);

    // Factor the current m-k x b panel (columns k..k+b).
    MatrixView panel = a.block(k, k, m - k, b);
    LuResult pres = lu_factor_unblocked(panel);
    res.singular = res.singular || pres.singular;

    // Record pivots in global numbering and apply them to the columns left
    // and right of the panel.
    for (std::size_t i = 0; i < b; ++i) {
      const std::size_t g1 = k + i;
      const std::size_t g2 = k + pres.piv[i];
      res.piv[g1] = g2;
      if (g1 != g2) {
        if (k > 0) swap_rows(a.block(0, 0, m, k), g1, g2);
        if (k + b < n)
          swap_rows(a.block(0, k + b, m, n - (k + b)), g1, g2);
      }
    }

    if (k + b < n) {
      // U12 := inv(L11) * A12.
      ConstMatrixView l11 = a.block(k, k, b, b);
      MatrixView a12 = a.block(k, k + b, b, n - (k + b));
      trsm_left_lower_unit(l11, a12);

      if (k + b < m) {
        // Trailing update A22 -= L21 * U12 (the rank-b update the paper's
        // heterogeneous distribution load-balances).
        ConstMatrixView l21 = a.block(k + b, k, m - (k + b), b);
        ConstMatrixView u12 = a.block(k, k + b, b, n - (k + b));
        MatrixView a22 = a.block(k + b, k + b, m - (k + b), n - (k + b));
        gemm(Trans::No, Trans::No, -1.0, l21, u12, 1.0, a22);
      }
    }
  }
  return res;
}

bool lu_factor_nopivot(MatrixView a) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const std::size_t steps = std::min(m, n);
  for (std::size_t k = 0; k < steps; ++k) {
    const double akk = a(k, k);
    if (akk == 0.0) return false;
    for (std::size_t i = k + 1; i < m; ++i) a(i, k) /= akk;
    for (std::size_t j = k + 1; j < n; ++j) {
      const double akj = a(k, j);
      if (akj == 0.0) continue;
      for (std::size_t i = k + 1; i < m; ++i) a(i, j) -= a(i, k) * akj;
    }
  }
  return true;
}

void lu_apply_pivots(const std::vector<std::size_t>& piv, MatrixView a) {
  for (std::size_t k = 0; k < piv.size(); ++k) {
    HG_CHECK(piv[k] < a.rows(), "pivot index out of range");
    swap_rows(a, k, piv[k]);
  }
}

void lu_solve(const ConstMatrixView& lu, const std::vector<std::size_t>& piv,
              MatrixView b) {
  HG_CHECK(lu.rows() == lu.cols(), "lu_solve needs a square factorization");
  HG_CHECK(b.rows() == lu.rows(), "rhs shape mismatch");
  lu_apply_pivots(piv, b);
  trsm_left_lower_unit(lu, b);
  trsm_left_upper(lu, b);
}

Matrix lu_reconstruct(const ConstMatrixView& lu, std::size_t orig_rows) {
  const std::size_t m = lu.rows();
  const std::size_t n = lu.cols();
  HG_CHECK(orig_rows == m, "reconstruct shape mismatch");
  const std::size_t r = std::min(m, n);

  // L: m x r unit lower; U: r x n upper.
  Matrix l(m, r, 0.0), u(r, n, 0.0);
  for (std::size_t j = 0; j < r; ++j) {
    l(j, j) = 1.0;
    for (std::size_t i = j + 1; i < m; ++i) l(i, j) = lu(i, j);
  }
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i <= std::min(j, r - 1); ++i) u(i, j) = lu(i, j);

  Matrix pa(m, n, 0.0);
  gemm(Trans::No, Trans::No, 1.0, l.view(), u.view(), 0.0, pa.view());
  return pa;
}

}  // namespace hetgrid
