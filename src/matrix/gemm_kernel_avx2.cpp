// AVX2 packed-tile gemm microkernel.
//
// This is the only TU compiled with -mavx2 (plus -ffp-contract=off so the
// compiler cannot contract the scalar edge loops into FMAs on hosts where
// the build enables them). Everything else in the library stays on the
// baseline ISA; gemm.cpp asks gemm_kernel_avx2() at first use and falls back
// to the scalar kernel when this returns nullptr.
//
// Bit-identity with the scalar kernel (see gemm_kernel.hpp): the kernel
// vectorizes across i (rows of C) only. For each C element the accumulation
// chain is still "for p ascending: c = c + a*b" with an individually rounded
// multiply and add per step — _mm256_mul_pd/_mm256_add_pd are used, never
// _mm256_fmadd_pd, because FMA's single rounding differs from mul-then-add.
// The register blocking loads the live C values into accumulators *before*
// the p loop and stores after it, so the chain starts from C exactly as the
// scalar kernel's in-memory updates do.
#include "matrix/gemm_kernel.hpp"

#if defined(__x86_64__) && defined(__AVX2__)

#include <immintrin.h>

namespace hetgrid::detail {
namespace {

// One column's saxpy step: ccol[0:mlen) += acol[0:mlen) * bpj, 4 lanes at a
// time with a scalar tail. Called once per p in ascending order, so the
// per-element operation sequence matches the scalar kernel exactly.
inline void saxpy_col(const double* acol, double bpj, double* ccol,
                      std::size_t mlen) {
  const __m256d vb = _mm256_set1_pd(bpj);
  std::size_t i = 0;
  for (; i + 4 <= mlen; i += 4) {
    const __m256d va = _mm256_loadu_pd(acol + i);
    const __m256d vc = _mm256_loadu_pd(ccol + i);
    _mm256_storeu_pd(ccol + i, _mm256_add_pd(vc, _mm256_mul_pd(va, vb)));
  }
  for (; i < mlen; ++i) ccol[i] += acol[i] * bpj;
}

// Register-blocked core: an 8x4 block of C lives in eight ymm accumulators
// across the whole p loop (8 accumulators + 2 A lanes + 1 B broadcast = 11
// of the 16 ymm registers), so the hot loop touches memory only for the
// packed A column and four B scalars per step.
inline void block_8x4(const double* apack, std::size_t mlen,
                      const double* bpack, std::size_t klen, double* cbase,
                      std::size_t ldc, std::size_t i0, std::size_t j0) {
  const double* b0 = bpack + (j0 + 0) * klen;
  const double* b1 = bpack + (j0 + 1) * klen;
  const double* b2 = bpack + (j0 + 2) * klen;
  const double* b3 = bpack + (j0 + 3) * klen;
  double* c0 = cbase + (j0 + 0) * ldc + i0;
  double* c1 = cbase + (j0 + 1) * ldc + i0;
  double* c2 = cbase + (j0 + 2) * ldc + i0;
  double* c3 = cbase + (j0 + 3) * ldc + i0;
  __m256d c0l = _mm256_loadu_pd(c0), c0h = _mm256_loadu_pd(c0 + 4);
  __m256d c1l = _mm256_loadu_pd(c1), c1h = _mm256_loadu_pd(c1 + 4);
  __m256d c2l = _mm256_loadu_pd(c2), c2h = _mm256_loadu_pd(c2 + 4);
  __m256d c3l = _mm256_loadu_pd(c3), c3h = _mm256_loadu_pd(c3 + 4);
  for (std::size_t p = 0; p < klen; ++p) {
    const double* acol = apack + p * mlen + i0;
    const __m256d al = _mm256_loadu_pd(acol);
    const __m256d ah = _mm256_loadu_pd(acol + 4);
    __m256d vb = _mm256_set1_pd(b0[p]);
    c0l = _mm256_add_pd(c0l, _mm256_mul_pd(al, vb));
    c0h = _mm256_add_pd(c0h, _mm256_mul_pd(ah, vb));
    vb = _mm256_set1_pd(b1[p]);
    c1l = _mm256_add_pd(c1l, _mm256_mul_pd(al, vb));
    c1h = _mm256_add_pd(c1h, _mm256_mul_pd(ah, vb));
    vb = _mm256_set1_pd(b2[p]);
    c2l = _mm256_add_pd(c2l, _mm256_mul_pd(al, vb));
    c2h = _mm256_add_pd(c2h, _mm256_mul_pd(ah, vb));
    vb = _mm256_set1_pd(b3[p]);
    c3l = _mm256_add_pd(c3l, _mm256_mul_pd(al, vb));
    c3h = _mm256_add_pd(c3h, _mm256_mul_pd(ah, vb));
  }
  _mm256_storeu_pd(c0, c0l);
  _mm256_storeu_pd(c0 + 4, c0h);
  _mm256_storeu_pd(c1, c1l);
  _mm256_storeu_pd(c1 + 4, c1h);
  _mm256_storeu_pd(c2, c2l);
  _mm256_storeu_pd(c2 + 4, c2h);
  _mm256_storeu_pd(c3, c3l);
  _mm256_storeu_pd(c3 + 4, c3h);
}

void tile_nn_packed_avx2(const double* apack, std::size_t mlen,
                         const double* bpack, std::size_t klen, double* cbase,
                         std::size_t ldc, std::size_t jlen) {
  std::size_t j = 0;
  for (; j + 4 <= jlen; j += 4) {
    std::size_t i = 0;
    for (; i + 8 <= mlen; i += 8)
      block_8x4(apack, mlen, bpack, klen, cbase, ldc, i, j);
    if (i < mlen) {
      // Row tail of the 4-column block: per column, same ascending-p saxpy.
      for (std::size_t t = 0; t < 4; ++t) {
        const double* bcol = bpack + (j + t) * klen;
        double* ccol = cbase + (j + t) * ldc + i;
        for (std::size_t p = 0; p < klen; ++p)
          saxpy_col(apack + p * mlen + i, bcol[p], ccol, mlen - i);
      }
    }
  }
  for (; j < jlen; ++j) {  // column tail
    const double* bcol = bpack + j * klen;
    double* ccol = cbase + j * ldc;
    for (std::size_t p = 0; p < klen; ++p)
      saxpy_col(apack + p * mlen, bcol[p], ccol, mlen);
  }
}

// Blocking for the vectorized kernel: the mc x kc A pack (96*256 doubles,
// ~192 KiB) targets L2 and the kc x nc B pack (256*512 doubles, 1 MiB)
// targets L3 — a level up from the scalar kernel's L1-sized 64/64/128 tiles,
// which would leave the 8x4 register core starved on repacks. mc is a
// multiple of the 8-row register block and nc of its 4-column width.
constexpr GemmKernel kAvx2Kernel{"avx2", 96, 256, 512, tile_nn_packed_avx2};

}  // namespace

const GemmKernel* gemm_kernel_avx2() {
  return __builtin_cpu_supports("avx2") ? &kAvx2Kernel : nullptr;
}

}  // namespace hetgrid::detail

#else  // non-x86-64 target or AVX2 not enabled for this TU

namespace hetgrid::detail {

const GemmKernel* gemm_kernel_avx2() { return nullptr; }

}  // namespace hetgrid::detail

#endif
