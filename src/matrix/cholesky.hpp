// Cholesky factorization (lower variant) — the third dense solver kernel
// whose ScaLAPACK parallelization shares the paper's outer-product
// structure (panel factor -> panel broadcast -> symmetric trailing update).
#pragma once

#include "matrix/matrix.hpp"
#include "matrix/trsm.hpp"  // trsm_right_lower_transposed (the panel solve)

namespace hetgrid {

/// Unblocked in-place Cholesky of the lower triangle: A = L * L^T with L
/// lower triangular. Only the lower triangle of `a` is referenced and
/// overwritten (the strict upper triangle is left untouched). Returns
/// false if the matrix is not (numerically) positive definite.
bool cholesky_factor_unblocked(MatrixView a);

/// Blocked right-looking Cholesky: factor the diagonal block, solve the
/// sub-diagonal panel (L21 := A21 * inv(L11)^T), symmetric rank-b update
/// of the trailing matrix. Returns false on a non-positive pivot.
bool cholesky_factor_blocked(MatrixView a, std::size_t block);

/// Solves A x = b given the Cholesky factor (forward then transposed-back
/// substitution). `b` is overwritten with the solution.
void cholesky_solve(const ConstMatrixView& l, MatrixView b);

/// Reconstructs L * L^T from the lower triangle of `a` (upper ignored).
Matrix cholesky_reconstruct(const ConstMatrixView& a);

/// Fills `a` with a random symmetric positive definite matrix
/// (A = M M^T + n*I) using the given generator.
class Rng;
void fill_spd(MatrixView a, Rng& rng);

}  // namespace hetgrid
