#include "matrix/qr.hpp"

#include <cmath>

#include "matrix/gemm.hpp"
#include "matrix/trsm.hpp"

namespace hetgrid {

namespace {

// Applies the reflector H = I - tau * v v^T (v stored in col k of `qr`
// below the diagonal, v[k] = 1 implicit) to columns [j0, cols) of `target`
// rows k..m.
void apply_reflector(const ConstMatrixView& qr, std::size_t k, double tau,
                     MatrixView target) {
  if (tau == 0.0) return;
  const std::size_t m = qr.rows();
  for (std::size_t j = 0; j < target.cols(); ++j) {
    // w = v^T * target(k:m, j)
    double w = target(k, j);
    for (std::size_t i = k + 1; i < m; ++i) w += qr(i, k) * target(i, j);
    w *= tau;
    target(k, j) -= w;
    for (std::size_t i = k + 1; i < m; ++i) target(i, j) -= qr(i, k) * w;
  }
}

}  // namespace

QrResult qr_factor(MatrixView a) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  HG_CHECK(m >= n, "qr_factor requires rows >= cols, got " << m << "x" << n);
  QrResult res;
  res.tau.assign(n, 0.0);

  for (std::size_t k = 0; k < n; ++k) {
    // Build the Householder vector for column k.
    double norm2 = 0.0;
    for (std::size_t i = k; i < m; ++i) norm2 += a(i, k) * a(i, k);
    const double norm = std::sqrt(norm2);
    if (norm == 0.0) {
      res.tau[k] = 0.0;
      continue;
    }
    const double alpha = a(k, k);
    const double beta = (alpha >= 0.0) ? -norm : norm;
    const double v0 = alpha - beta;
    res.tau[k] = -v0 / beta;  // == (beta - alpha)/beta, in (0, 2]
    // Normalize so v[k] = 1.
    for (std::size_t i = k + 1; i < m; ++i) a(i, k) /= v0;
    a(k, k) = beta;

    // Apply H_k to the trailing columns. Temporarily treat a(k,k) as 1.
    if (k + 1 < n) {
      const double saved = a(k, k);
      a(k, k) = 1.0;
      MatrixView trailing = a.block(0, k + 1, m, n - (k + 1));
      apply_reflector(a, k, res.tau[k], trailing);
      a(k, k) = saved;
    }
  }
  return res;
}

void qr_apply_qt(const ConstMatrixView& qr, const std::vector<double>& tau,
                 MatrixView b) {
  HG_CHECK(b.rows() == qr.rows(), "rhs shape mismatch");
  // Q^T = H_{n-1} ... H_1 H_0 applied in forward order.
  Matrix work(qr.rows(), qr.cols(), 0.0);
  work.view().copy_from(qr);
  for (std::size_t k = 0; k < tau.size(); ++k) {
    const double saved = work(k, k);
    work(k, k) = 1.0;
    apply_reflector(work.view(), k, tau[k], b);
    work(k, k) = saved;
  }
}

Matrix qr_form_q(const ConstMatrixView& qr, const std::vector<double>& tau) {
  const std::size_t m = qr.rows();
  const std::size_t n = qr.cols();
  // Start from the first n columns of I and apply H_0 H_1 ... H_{n-1} in
  // reverse order.
  Matrix q(m, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) q(i, i) = 1.0;
  Matrix work(m, n, 0.0);
  work.view().copy_from(qr);
  for (std::size_t kk = tau.size(); kk > 0; --kk) {
    const std::size_t k = kk - 1;
    const double saved = work(k, k);
    work(k, k) = 1.0;
    apply_reflector(work.view(), k, tau[k], q.view());
    work(k, k) = saved;
  }
  return q;
}

Matrix qr_form_t(const ConstMatrixView& panel,
                 const std::vector<double>& tau) {
  const std::size_t m = panel.rows();
  const std::size_t b = panel.cols();
  HG_CHECK(tau.size() == b, "tau size mismatch");

  // v_i is column i of the unit lower trapezoid: v_i[i] = 1, v_i[r] =
  // panel(r, i) for r > i, zero above.
  auto v_at = [&](std::size_t r, std::size_t i) -> double {
    if (r < i) return 0.0;
    if (r == i) return 1.0;
    return panel(r, i);
  };

  Matrix t(b, b, 0.0);
  for (std::size_t i = 0; i < b; ++i) {
    t(i, i) = tau[i];
    if (i == 0 || tau[i] == 0.0) continue;
    // w = V(:, 0:i)^T v_i.
    std::vector<double> w(i, 0.0);
    for (std::size_t c = 0; c < i; ++c) {
      double acc = 0.0;
      for (std::size_t r = i; r < m; ++r) acc += v_at(r, c) * v_at(r, i);
      w[c] = acc;
    }
    // T(0:i, i) = -tau_i * T(0:i, 0:i) * w.
    for (std::size_t r = 0; r < i; ++r) {
      double acc = 0.0;
      for (std::size_t c = r; c < i; ++c) acc += t(r, c) * w[c];
      t(r, i) = -tau[i] * acc;
    }
  }
  return t;
}

void qr_solve(const ConstMatrixView& qr, const std::vector<double>& tau,
              MatrixView b) {
  const std::size_t n = qr.cols();
  qr_apply_qt(qr, tau, b);
  MatrixView top = b.block(0, 0, n, b.cols());
  // R is the upper triangle of qr.
  Matrix r(n, n, 0.0);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i <= j; ++i) r(i, j) = qr(i, j);
  trsm_left_upper(r.view(), top);
}

}  // namespace hetgrid
