// LU factorization with partial pivoting — the right-looking variant the
// paper parallelizes (Section 3.2.1).
#pragma once

#include <cstddef>
#include <vector>

#include "matrix/matrix.hpp"

namespace hetgrid {

/// Result of an in-place LU: `piv[k]` is the row swapped with row k at step
/// k (LAPACK-style ipiv, 0-based). A is overwritten with L (unit lower, not
/// stored diagonal) and U.
struct LuResult {
  std::vector<std::size_t> piv;
  bool singular = false;  // an exact zero pivot was hit
};

/// Unblocked LU with partial pivoting on the full view (getf2 analogue).
LuResult lu_factor_unblocked(MatrixView a);

/// Blocked right-looking LU with partial pivoting (getrf analogue):
/// factor panel -> apply pivots to trailing columns -> triangular solve for
/// the U row panel -> rank-b trailing update. `block` is the panel width.
LuResult lu_factor_blocked(MatrixView a, std::size_t block);

/// Unblocked LU *without* pivoting; requires a matrix whose leading
/// principal minors are nonsingular (e.g. diagonally dominant). Used by the
/// distributed runtime, where pivot row swaps would move data across
/// processor rows and change ownership mid-run. Returns true on success,
/// false if an exact zero pivot was hit (matrix left partially factored).
bool lu_factor_nopivot(MatrixView a);

/// Applies recorded row interchanges to `a` (laswp analogue) for columns of
/// a matrix that was not part of the factorization (e.g. RHS).
void lu_apply_pivots(const std::vector<std::size_t>& piv, MatrixView a);

/// Solves A x = b for multiple RHS using a factorization produced above.
/// `lu` holds packed L\U; `b` is overwritten with the solution.
void lu_solve(const ConstMatrixView& lu, const std::vector<std::size_t>& piv,
              MatrixView b);

/// Reconstructs L*U from the packed factors (equals P*A for the pivoted
/// factorization, A itself for the unpivoted one); used by tests to
/// measure the backward error.
Matrix lu_reconstruct(const ConstMatrixView& lu, std::size_t orig_rows);

}  // namespace hetgrid
