#include "matrix/gemm.hpp"

#include <algorithm>

namespace hetgrid {

namespace {

// Cache-blocking tile sizes: a KC x NC panel of B is streamed against
// MC x KC panels of A; tuned for "fits comfortably in L1/L2" rather than for
// a specific machine.
constexpr std::size_t kMc = 64;
constexpr std::size_t kKc = 64;
constexpr std::size_t kNc = 128;

double op_at(const ConstMatrixView& m, Trans t, std::size_t i, std::size_t j) {
  return t == Trans::No ? m(i, j) : m(j, i);
}

void scale_c(double beta, MatrixView c) {
  if (beta == 1.0) return;
  for (std::size_t j = 0; j < c.cols(); ++j)
    for (std::size_t i = 0; i < c.rows(); ++i)
      c(i, j) = (beta == 0.0) ? 0.0 : beta * c(i, j);
}

void check_shapes(Trans trans_a, Trans trans_b, const ConstMatrixView& a,
                  const ConstMatrixView& b, const MatrixView& c) {
  const std::size_t m = c.rows(), n = c.cols();
  const std::size_t ka = trans_a == Trans::No ? a.cols() : a.rows();
  const std::size_t ma = trans_a == Trans::No ? a.rows() : a.cols();
  const std::size_t kb = trans_b == Trans::No ? b.rows() : b.cols();
  const std::size_t nb = trans_b == Trans::No ? b.cols() : b.rows();
  HG_CHECK(ma == m && nb == n && ka == kb,
           "gemm shape mismatch: C " << m << "x" << n << ", op(A) " << ma
                                     << "x" << ka << ", op(B) " << kb << "x"
                                     << nb);
}

// Inner kernel for the no-transpose fast path: C(i,j) += sum_p A(i,p)*B(p,j)
// over a tile, with B element hoisted so the inner loop is a saxpy down a
// contiguous column of A and C.
void tile_nn(double alpha, const ConstMatrixView& a, const ConstMatrixView& b,
             MatrixView c, std::size_t i0, std::size_t i1, std::size_t p0,
             std::size_t p1, std::size_t j0, std::size_t j1) {
  for (std::size_t j = j0; j < j1; ++j) {
    for (std::size_t p = p0; p < p1; ++p) {
      const double bpj = alpha * b(p, j);
      if (bpj == 0.0) continue;
      const double* acol = a.data() + i0 + p * a.ld();
      double* ccol = c.data() + i0 + j * c.ld();
      const std::size_t len = i1 - i0;
      for (std::size_t i = 0; i < len; ++i) ccol[i] += acol[i] * bpj;
    }
  }
}

}  // namespace

void gemm(Trans trans_a, Trans trans_b, double alpha, const ConstMatrixView& a,
          const ConstMatrixView& b, double beta, MatrixView c) {
  check_shapes(trans_a, trans_b, a, b, c);
  scale_c(beta, c);
  if (alpha == 0.0) return;

  const std::size_t m = c.rows(), n = c.cols();
  const std::size_t k = trans_a == Trans::No ? a.cols() : a.rows();

  if (trans_a == Trans::No && trans_b == Trans::No) {
    for (std::size_t j0 = 0; j0 < n; j0 += kNc) {
      const std::size_t j1 = std::min(j0 + kNc, n);
      for (std::size_t p0 = 0; p0 < k; p0 += kKc) {
        const std::size_t p1 = std::min(p0 + kKc, k);
        for (std::size_t i0 = 0; i0 < m; i0 += kMc) {
          const std::size_t i1 = std::min(i0 + kMc, m);
          tile_nn(alpha, a, b, c, i0, i1, p0, p1, j0, j1);
        }
      }
    }
    return;
  }

  // Transposed paths: correctness-first triple loop (these only appear in the
  // QR update, far off any benchmark's critical path).
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < m; ++i) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p)
        acc += op_at(a, trans_a, i, p) * op_at(b, trans_b, p, j);
      c(i, j) += alpha * acc;
    }
}

void gemm_update(const ConstMatrixView& a, const ConstMatrixView& b,
                 MatrixView c) {
  gemm(Trans::No, Trans::No, 1.0, a, b, 1.0, c);
}

void gemm_reference(Trans trans_a, Trans trans_b, double alpha,
                    const ConstMatrixView& a, const ConstMatrixView& b,
                    double beta, MatrixView c) {
  check_shapes(trans_a, trans_b, a, b, c);
  const std::size_t m = c.rows(), n = c.cols();
  const std::size_t k = trans_a == Trans::No ? a.cols() : a.rows();
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < m; ++i) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p)
        acc += op_at(a, trans_a, i, p) * op_at(b, trans_b, p, j);
      c(i, j) = alpha * acc + (beta == 0.0 ? 0.0 : beta * c(i, j));
    }
}

}  // namespace hetgrid
