#include "matrix/gemm.hpp"

#include <algorithm>
#include <vector>

#include "obs/metrics.hpp"
#include "util/parallel_engine.hpp"

namespace hetgrid {

namespace {

// Cache-blocking tile sizes: a KC x NC panel of B is streamed against
// MC x KC panels of A; tuned for "fits comfortably in L1/L2" rather than for
// a specific machine.
constexpr std::size_t kMc = 64;
constexpr std::size_t kKc = 64;
constexpr std::size_t kNc = 128;

double op_at(const ConstMatrixView& m, Trans t, std::size_t i, std::size_t j) {
  return t == Trans::No ? m(i, j) : m(j, i);
}

// Beta-scaling prologue. This is the one place a zero test earns its keep:
// it runs once per output element per call, not inside the accumulation
// loop, and beta == 0 must overwrite (not propagate) stale NaNs in C.
void scale_c(double beta, MatrixView c) {
  if (beta == 1.0) return;
  for (std::size_t j = 0; j < c.cols(); ++j)
    for (std::size_t i = 0; i < c.rows(); ++i)
      c(i, j) = (beta == 0.0) ? 0.0 : beta * c(i, j);
}

void check_shapes(Trans trans_a, Trans trans_b, const ConstMatrixView& a,
                  const ConstMatrixView& b, const MatrixView& c) {
  const std::size_t m = c.rows(), n = c.cols();
  const std::size_t ka = trans_a == Trans::No ? a.cols() : a.rows();
  const std::size_t ma = trans_a == Trans::No ? a.rows() : a.cols();
  const std::size_t kb = trans_b == Trans::No ? b.rows() : b.cols();
  const std::size_t nb = trans_b == Trans::No ? b.cols() : b.rows();
  HG_CHECK(ma == m && nb == n && ka == kb,
           "gemm shape mismatch: C " << m << "x" << n << ", op(A) " << ma
                                     << "x" << ka << ", op(B) " << kb << "x"
                                     << nb);
}

// Inner kernel for the no-transpose path: C(i,j) += sum_p A(i,p)*B(p,j)
// over a tile, with the B element hoisted so the inner loop is a saxpy down
// a contiguous column of A and C. The loop body is branch-free: zero B
// elements flow through the multiply-add like any other value, so the
// compiler can vectorize the i loop on dense inputs.
void tile_nn(double alpha, const ConstMatrixView& a, const ConstMatrixView& b,
             MatrixView c, std::size_t i0, std::size_t i1, std::size_t p0,
             std::size_t p1, std::size_t j0, std::size_t j1) {
  for (std::size_t j = j0; j < j1; ++j) {
    for (std::size_t p = p0; p < p1; ++p) {
      const double bpj = alpha * b(p, j);
      const double* acol = a.data() + i0 + p * a.ld();
      double* ccol = c.data() + i0 + j * c.ld();
      const std::size_t len = i1 - i0;
      for (std::size_t i = 0; i < len; ++i) ccol[i] += acol[i] * bpj;
    }
  }
}

// Copies A(i0:i1, p0:p1) into a contiguous column-major mlen x klen tile.
void pack_a(const ConstMatrixView& a, std::size_t i0, std::size_t i1,
            std::size_t p0, std::size_t p1, double* buf) {
  const std::size_t mlen = i1 - i0;
  for (std::size_t p = p0; p < p1; ++p) {
    const double* src = a.data() + i0 + p * a.ld();
    double* dst = buf + (p - p0) * mlen;
    std::copy(src, src + mlen, dst);
  }
}

// Copies alpha * B(p0:p1, j0:j1) into a contiguous column-major klen x jlen
// tile; folding alpha into the pack keeps it out of the inner kernel.
void pack_b(double alpha, const ConstMatrixView& b, std::size_t p0,
            std::size_t p1, std::size_t j0, std::size_t j1, double* buf) {
  const std::size_t klen = p1 - p0;
  for (std::size_t j = j0; j < j1; ++j) {
    const double* src = b.data() + p0 + j * b.ld();
    double* dst = buf + (j - j0) * klen;
    for (std::size_t p = 0; p < klen; ++p) dst[p] = alpha * src[p];
  }
}

// Same saxpy kernel as tile_nn, reading the packed tiles. The p loop runs
// in the same ascending order over the same values, so every C element sees
// the identical floating-point operation sequence as the unpacked kernel —
// packing is pure data movement.
void tile_nn_packed(const double* apack, std::size_t mlen,
                    const double* bpack, std::size_t klen, double* cbase,
                    std::size_t ldc, std::size_t jlen) {
  for (std::size_t j = 0; j < jlen; ++j) {
    const double* bcol = bpack + j * klen;
    double* ccol = cbase + j * ldc;
    for (std::size_t p = 0; p < klen; ++p) {
      const double bpj = bcol[p];
      const double* acol = apack + p * mlen;
      for (std::size_t i = 0; i < mlen; ++i) ccol[i] += acol[i] * bpj;
    }
  }
}

// Blocked no-transpose path. Small problems (one tile) skip the packing
// entirely — the distributed runtimes call this once per owned block, and a
// 16..64-wide block gains nothing from an extra copy. Large problems pack
// each A/B tile once into contiguous, alpha-folded buffers and stream the
// branch-free kernel over them.
void gemm_nn_blocked(double alpha, const ConstMatrixView& a,
                     const ConstMatrixView& b, MatrixView c) {
  const std::size_t m = c.rows(), n = c.cols(), k = a.cols();
  if (m <= kMc && k <= kKc) {
    metric_count("gemm.tile_calls");
    tile_nn(alpha, a, b, c, 0, m, 0, k, 0, n);
    return;
  }
  metric_count("gemm.packed_calls");
  // Per-thread pack buffers: allocated once per worker, reused across
  // calls, so the threaded stripes in gemm(..., engine) never share them.
  thread_local std::vector<double> apack(kMc * kKc);
  thread_local std::vector<double> bpack(kKc * kNc);
  for (std::size_t j0 = 0; j0 < n; j0 += kNc) {
    const std::size_t j1 = std::min(j0 + kNc, n);
    for (std::size_t p0 = 0; p0 < k; p0 += kKc) {
      const std::size_t p1 = std::min(p0 + kKc, k);
      pack_b(alpha, b, p0, p1, j0, j1, bpack.data());
      for (std::size_t i0 = 0; i0 < m; i0 += kMc) {
        const std::size_t i1 = std::min(i0 + kMc, m);
        pack_a(a, i0, i1, p0, p1, apack.data());
        tile_nn_packed(apack.data(), i1 - i0, bpack.data(), p1 - p0,
                       c.data() + i0 + j0 * c.ld(), c.ld(), j1 - j0);
      }
    }
  }
}

}  // namespace

void gemm(Trans trans_a, Trans trans_b, double alpha, const ConstMatrixView& a,
          const ConstMatrixView& b, double beta, MatrixView c) {
  check_shapes(trans_a, trans_b, a, b, c);
  // Call counts depend only on the computation, never on the clock or the
  // thread count, so recording them keeps metric snapshots byte-stable.
  metric_count("gemm.calls");
  scale_c(beta, c);
  if (alpha == 0.0) return;

  const std::size_t m = c.rows(), n = c.cols();
  const std::size_t k = trans_a == Trans::No ? a.cols() : a.rows();

  if (trans_a == Trans::No && trans_b == Trans::No) {
    gemm_nn_blocked(alpha, a, b, c);
    return;
  }

  // Transposed paths: correctness-first triple loop (these only appear in the
  // QR update, far off any benchmark's critical path).
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < m; ++i) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p)
        acc += op_at(a, trans_a, i, p) * op_at(b, trans_b, p, j);
      c(i, j) += alpha * acc;
    }
}

void gemm(Trans trans_a, Trans trans_b, double alpha, const ConstMatrixView& a,
          const ConstMatrixView& b, double beta, MatrixView c,
          ParallelEngine& engine) {
  check_shapes(trans_a, trans_b, a, b, c);
  const std::size_t n = c.cols();
  // One stripe per worker, aligned to whole NC panels. Each column of C is
  // produced by exactly one stripe with the same i/p loop structure as the
  // serial path, so the result is bit-identical for any stripe count.
  const std::size_t panels = (n + kNc - 1) / kNc;
  const std::size_t stripes =
      std::min<std::size_t>(engine.threads(), panels);
  if (engine.serial() || stripes <= 1) {
    gemm(trans_a, trans_b, alpha, a, b, beta, c);
    return;
  }
  engine.run_indexed(stripes, [&](std::size_t s) {
    const std::size_t j_lo = std::min(n, panels * s / stripes * kNc);
    const std::size_t j_hi = std::min(n, panels * (s + 1) / stripes * kNc);
    if (j_lo >= j_hi) return;
    const std::size_t jlen = j_hi - j_lo;
    const ConstMatrixView bsub =
        trans_b == Trans::No ? b.block(0, j_lo, b.rows(), jlen)
                             : b.block(j_lo, 0, jlen, b.cols());
    gemm(trans_a, trans_b, alpha, a, bsub, beta,
         c.block(0, j_lo, c.rows(), jlen));
  });
}

void gemm_update(const ConstMatrixView& a, const ConstMatrixView& b,
                 MatrixView c) {
  gemm(Trans::No, Trans::No, 1.0, a, b, 1.0, c);
}

void gemm_reference(Trans trans_a, Trans trans_b, double alpha,
                    const ConstMatrixView& a, const ConstMatrixView& b,
                    double beta, MatrixView c) {
  check_shapes(trans_a, trans_b, a, b, c);
  const std::size_t m = c.rows(), n = c.cols();
  const std::size_t k = trans_a == Trans::No ? a.cols() : a.rows();
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < m; ++i) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p)
        acc += op_at(a, trans_a, i, p) * op_at(b, trans_b, p, j);
      c(i, j) = alpha * acc + (beta == 0.0 ? 0.0 : beta * c(i, j));
    }
}

}  // namespace hetgrid
