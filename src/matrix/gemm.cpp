#include "matrix/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "matrix/gemm_kernel.hpp"
#include "matrix/packed_cache.hpp"
#include "obs/metrics.hpp"
#include "util/parallel_engine.hpp"

namespace hetgrid {

namespace {

using detail::GemmKernel;

const GemmKernel& active_kernel();  // defined below with the kernels

// Small-path classification bounds. These are fixed constants — NOT the
// dispatched kernel's blocking — so whether a call counts as a tile call or
// a packed call (gemm.tile_calls / gemm.packed_calls) is a property of the
// call's shape alone, identical on every host and for every kernel choice.
// They double as the scalar kernel's cache blocking, tuned for "fits
// comfortably in L1/L2" rather than for a specific machine.
constexpr std::size_t kSmallM = 64;
constexpr std::size_t kSmallK = 64;
constexpr std::size_t kSmallN = 128;

// Column-stripe alignment for the threaded overload. Also a fixed constant
// (not the kernel's nc) so the stripe geometry — and with it the engine/pool
// task structure — never depends on the SIMD dispatch.
constexpr std::size_t kStripePanel = 128;

double op_at(const ConstMatrixView& m, Trans t, std::size_t i, std::size_t j) {
  return t == Trans::No ? m(i, j) : m(j, i);
}

// Beta-scaling prologue. This is the one place a zero test earns its keep:
// it runs once per output element per call, not inside the accumulation
// loop, and beta == 0 must overwrite (not propagate) stale NaNs in C.
void scale_c(double beta, MatrixView c) {
  if (beta == 1.0) return;
  for (std::size_t j = 0; j < c.cols(); ++j)
    for (std::size_t i = 0; i < c.rows(); ++i)
      c(i, j) = (beta == 0.0) ? 0.0 : beta * c(i, j);
}

void check_shapes(Trans trans_a, Trans trans_b, const ConstMatrixView& a,
                  const ConstMatrixView& b, const MatrixView& c) {
  const std::size_t m = c.rows(), n = c.cols();
  const std::size_t ka = trans_a == Trans::No ? a.cols() : a.rows();
  const std::size_t ma = trans_a == Trans::No ? a.rows() : a.cols();
  const std::size_t kb = trans_b == Trans::No ? b.rows() : b.cols();
  const std::size_t nb = trans_b == Trans::No ? b.cols() : b.rows();
  HG_CHECK(ma == m && nb == n && ka == kb,
           "gemm shape mismatch: C " << m << "x" << n << ", op(A) " << ma
                                     << "x" << ka << ", op(B) " << kb << "x"
                                     << nb);
}

bool is_small_nn(std::size_t m, std::size_t n, std::size_t k) {
  return m <= kSmallM && k <= kSmallK && n <= kSmallN;
}

// Counts one *logical* gemm call. Classification uses only the call's
// transpose flags, alpha, and full output shape — never the stripe split,
// the thread count, or the dispatched kernel — so metric snapshots are
// byte-stable across all of those. Both public overloads call this exactly
// once and then run the uncounted gemm_core (per stripe, for the threaded
// overload).
void count_gemm_call(Trans trans_a, Trans trans_b, double alpha,
                     std::size_t m, std::size_t n, std::size_t k) {
  metric_count("gemm.calls");
  if (alpha == 0.0) return;  // no kernel runs: scale-only call
  if (trans_a != Trans::No || trans_b != Trans::No) return;
  metric_count(is_small_nn(m, n, k) ? "gemm.tile_calls"
                                    : "gemm.packed_calls");
}

// Inner kernel for the no-transpose path: C(i,j) += sum_p A(i,p)*B(p,j)
// over a tile, with the B element hoisted so the inner loop is a saxpy down
// a contiguous column of A and C. The loop body is branch-free: zero B
// elements flow through the multiply-add like any other value, so the
// compiler can vectorize the i loop on dense inputs.
void tile_nn(double alpha, const ConstMatrixView& a, const ConstMatrixView& b,
             MatrixView c, std::size_t i0, std::size_t i1, std::size_t p0,
             std::size_t p1, std::size_t j0, std::size_t j1) {
  for (std::size_t j = j0; j < j1; ++j) {
    for (std::size_t p = p0; p < p1; ++p) {
      const double bpj = alpha * b(p, j);
      const double* acol = a.data() + i0 + p * a.ld();
      double* ccol = c.data() + i0 + j * c.ld();
      const std::size_t len = i1 - i0;
      for (std::size_t i = 0; i < len; ++i) ccol[i] += acol[i] * bpj;
    }
  }
}

// Copies A(i0:i1, p0:p1) into a contiguous column-major mlen x klen tile.
void pack_a(const ConstMatrixView& a, std::size_t i0, std::size_t i1,
            std::size_t p0, std::size_t p1, double* buf) {
  const std::size_t mlen = i1 - i0;
  for (std::size_t p = p0; p < p1; ++p) {
    const double* src = a.data() + i0 + p * a.ld();
    double* dst = buf + (p - p0) * mlen;
    std::copy(src, src + mlen, dst);
  }
}

// Copies alpha * B(p0:p1, j0:j1) into a contiguous column-major klen x jlen
// tile; folding alpha into the pack keeps it out of the inner kernel.
void pack_b(double alpha, const ConstMatrixView& b, std::size_t p0,
            std::size_t p1, std::size_t j0, std::size_t j1, double* buf) {
  const std::size_t klen = p1 - p0;
  for (std::size_t j = j0; j < j1; ++j) {
    const double* src = b.data() + p0 + j * b.ld();
    double* dst = buf + (j - j0) * klen;
    for (std::size_t p = 0; p < klen; ++p) dst[p] = alpha * src[p];
  }
}

// Transposed-tile packs: the same contiguous layouts, filled through op().
// Transposition happens entirely in the copy — the compute kernels never
// see a transpose flag — so every transpose combination runs the identical
// microkernel sequence and inherits its bit-identity contract.
void pack_a_t(const ConstMatrixView& a, std::size_t i0, std::size_t i1,
              std::size_t p0, std::size_t p1, double* buf) {
  const std::size_t mlen = i1 - i0;
  // op(A)(i, p) = a(p, i): read each source column a(p0:p1, i) contiguously.
  for (std::size_t i = i0; i < i1; ++i) {
    const double* src = a.data() + p0 + i * a.ld();
    double* dst = buf + (i - i0);
    for (std::size_t p = 0; p < p1 - p0; ++p) dst[p * mlen] = src[p];
  }
}

void pack_b_t(double alpha, const ConstMatrixView& b, std::size_t p0,
              std::size_t p1, std::size_t j0, std::size_t j1, double* buf) {
  const std::size_t klen = p1 - p0;
  // op(B)(p, j) = b(j, p): read each source column b(j0:j1, p) contiguously.
  for (std::size_t p = p0; p < p1; ++p) {
    const double* src = b.data() + j0 + p * b.ld();
    double* dst = buf + (p - p0);
    for (std::size_t j = 0; j < j1 - j0; ++j) dst[j * klen] = alpha * src[j];
  }
}

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

// Whole-operand pack builders. Tiles are laid out tightly in pack-loop
// order with per-tile offsets, exactly the bytes the streaming path's
// per-tile packs would produce, so the compute loop below replays the
// identical kernel-call sequence. `out` is reused (vectors only grow).
void build_pack_a(Trans trans_a, const ConstMatrixView& a,
                  const detail::GemmKernel& kern, PackedPanel& out) {
  const std::size_t m = trans_a == Trans::No ? a.rows() : a.cols();
  const std::size_t k = trans_a == Trans::No ? a.cols() : a.rows();
  out.rows = m;
  out.cols = k;
  out.mc = kern.mc;
  out.kc = kern.kc;
  out.nc = kern.nc;
  const std::size_t ni = ceil_div(m + (m == 0), kern.mc);
  const std::size_t np = ceil_div(k + (k == 0), kern.kc);
  out.tile_off.assign(ni * np, 0);
  out.data.resize(m * k);
  std::size_t off = 0;
  for (std::size_t pp = 0; pp < np; ++pp) {
    const std::size_t p0 = pp * kern.kc, p1 = std::min(p0 + kern.kc, k);
    for (std::size_t ip = 0; ip < ni; ++ip) {
      const std::size_t i0 = ip * kern.mc, i1 = std::min(i0 + kern.mc, m);
      out.tile_off[pp * ni + ip] = off;
      if (trans_a == Trans::No)
        pack_a(a, i0, i1, p0, p1, out.data.data() + off);
      else
        pack_a_t(a, i0, i1, p0, p1, out.data.data() + off);
      off += (i1 - i0) * (p1 - p0);
    }
  }
}

void build_pack_b(Trans trans_b, double alpha, const ConstMatrixView& b,
                  const detail::GemmKernel& kern, PackedPanel& out) {
  const std::size_t k = trans_b == Trans::No ? b.rows() : b.cols();
  const std::size_t n = trans_b == Trans::No ? b.cols() : b.rows();
  out.rows = k;
  out.cols = n;
  out.mc = kern.mc;
  out.kc = kern.kc;
  out.nc = kern.nc;
  const std::size_t np = ceil_div(k + (k == 0), kern.kc);
  const std::size_t nj = ceil_div(n + (n == 0), kern.nc);
  out.tile_off.assign(nj * np, 0);
  out.data.resize(k * n);
  std::size_t off = 0;
  for (std::size_t jp = 0; jp < nj; ++jp) {
    const std::size_t j0 = jp * kern.nc, j1 = std::min(j0 + kern.nc, n);
    for (std::size_t pp = 0; pp < np; ++pp) {
      const std::size_t p0 = pp * kern.kc, p1 = std::min(p0 + kern.kc, k);
      out.tile_off[jp * np + pp] = off;
      if (trans_b == Trans::No)
        pack_b(alpha, b, p0, p1, j0, j1, out.data.data() + off);
      else
        pack_b_t(alpha, b, p0, p1, j0, j1, out.data.data() + off);
      off += (p1 - p0) * (j1 - j0);
    }
  }
}

// Streams the dispatched microkernel over two whole-operand packs, in the
// same (j0, p0, i0) order — and therefore the same per-element ascending-p
// operation sequence — as the streaming gemm_nn_blocked path.
void packed_compute(const PackedPanel& pa, const PackedPanel& pb,
                    MatrixView c) {
  const GemmKernel& kern = active_kernel();
  HG_CHECK(pa.mc == kern.mc && pa.kc == kern.kc && pa.nc == kern.nc &&
               pb.mc == kern.mc && pb.kc == kern.kc && pb.nc == kern.nc,
           "packed panel blocking does not match the dispatched kernel "
           << kern.name);
  HG_CHECK(pa.rows == c.rows() && pb.cols == c.cols() && pa.cols == pb.rows,
           "packed panel shapes do not match C");
  const std::size_t m = pa.rows, k = pa.cols, n = pb.cols;
  if (m == 0 || k == 0 || n == 0) return;
  const std::size_t ni = ceil_div(m, kern.mc);
  const std::size_t np = ceil_div(k, kern.kc);
  for (std::size_t j0 = 0; j0 < n; j0 += kern.nc) {
    const std::size_t j1 = std::min(j0 + kern.nc, n);
    const std::size_t jp = j0 / kern.nc;
    for (std::size_t p0 = 0; p0 < k; p0 += kern.kc) {
      const std::size_t p1 = std::min(p0 + kern.kc, k);
      const std::size_t pp = p0 / kern.kc;
      const double* bt = pb.data.data() + pb.tile_off[jp * np + pp];
      for (std::size_t i0 = 0; i0 < m; i0 += kern.mc) {
        const std::size_t i1 = std::min(i0 + kern.mc, m);
        const std::size_t ip = i0 / kern.mc;
        kern.tile(pa.data.data() + pa.tile_off[pp * ni + ip], i1 - i0, bt,
                  p1 - p0, c.data() + i0 + j0 * c.ld(), c.ld(), j1 - j0);
      }
    }
  }
}

// Pack-cache consumption switch: -1 = unset (read HETGRID_PACK_CACHE on
// first use), else 0/1. A pure performance toggle by the bit-identity
// contract, which is why an environment variable is an acceptable owner.
std::atomic<int> g_pack_cache{-1};

std::uint64_t alpha_bits_of(double alpha) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &alpha, sizeof bits);
  return bits;
}

// Cache entry metadata: operand side, transpose, and kernel blocking. Two
// kernels never share packs (layout differs), and neither do the two sides
// or transpose senses of one block.
std::uint64_t pack_meta(bool b_side, Trans trans,
                        const detail::GemmKernel& kern) {
  return (b_side ? 1u : 0u) | (trans == Trans::Yes ? 2u : 0u) |
         (static_cast<std::uint64_t>(kern.mc) << 4) |
         (static_cast<std::uint64_t>(kern.kc) << 24) |
         (static_cast<std::uint64_t>(kern.nc) << 44);
}

// Resolves one operand to a packed panel: through the cache when tagged
// (pack once per (block, version), reuse across the whole trailing sweep),
// into a reusable thread-local panel otherwise. The returned pointer is
// valid until the next untagged resolve on this thread for that slot.
struct PanelRef {
  std::shared_ptr<const PackedPanel> owned;  // keeps a cached pack alive
  const PackedPanel* panel = nullptr;
};

PanelRef resolve_a(PackedPanelCache* cache, PackTag tag, Trans trans_a,
                   double, const ConstMatrixView& a,
                   const detail::GemmKernel& kern, PackedPanel& local) {
  PanelRef ref;
  if (cache != nullptr && tag.valid) {
    const PackedPanelCache::Key key{tag.id, tag.version,
                                    pack_meta(false, trans_a, kern), 0};
    ref.owned = cache->get(key, [&] {
      PackedPanel p;
      build_pack_a(trans_a, a, kern, p);
      return p;
    });
    ref.panel = ref.owned.get();
    return ref;
  }
  build_pack_a(trans_a, a, kern, local);
  ref.panel = &local;
  return ref;
}

PanelRef resolve_b(PackedPanelCache* cache, PackTag tag, Trans trans_b,
                   double alpha, const ConstMatrixView& b,
                   const detail::GemmKernel& kern, PackedPanel& local) {
  PanelRef ref;
  if (cache != nullptr && tag.valid) {
    const PackedPanelCache::Key key{tag.id, tag.version,
                                    pack_meta(true, trans_b, kern),
                                    alpha_bits_of(alpha)};
    ref.owned = cache->get(key, [&] {
      PackedPanel p;
      build_pack_b(trans_b, alpha, b, kern, p);
      return p;
    });
    ref.panel = ref.owned.get();
    return ref;
  }
  build_pack_b(trans_b, alpha, b, kern, local);
  ref.panel = &local;
  return ref;
}

// The fully packed path: both operands as whole-operand panels (cached
// where tagged), then the shared compute loop. Serves every transposed call
// and every cached no-transpose call.
void gemm_packed_path(Trans trans_a, Trans trans_b, double alpha,
                      const ConstMatrixView& a, PackTag a_tag,
                      const ConstMatrixView& b, PackTag b_tag, MatrixView c,
                      PackedPanelCache* cache) {
  const GemmKernel& kern = active_kernel();
  thread_local PackedPanel local_a, local_b;
  const PanelRef pa =
      resolve_a(cache, a_tag, trans_a, alpha, a, kern, local_a);
  const PanelRef pb =
      resolve_b(cache, b_tag, trans_b, alpha, b, kern, local_b);
  packed_compute(*pa.panel, *pb.panel, c);
}

// Same saxpy kernel as tile_nn, reading the packed tiles. The p loop runs
// in the same ascending order over the same values, so every C element sees
// the identical floating-point operation sequence as the unpacked kernel —
// packing is pure data movement. This is the portable fallback microkernel;
// the AVX2 kernel (gemm_kernel_avx2.cpp) reproduces the same per-element
// sequence with explicit mul+add vectors.
void tile_nn_packed(const double* apack, std::size_t mlen,
                    const double* bpack, std::size_t klen, double* cbase,
                    std::size_t ldc, std::size_t jlen) {
  for (std::size_t j = 0; j < jlen; ++j) {
    const double* bcol = bpack + j * klen;
    double* ccol = cbase + j * ldc;
    for (std::size_t p = 0; p < klen; ++p) {
      const double bpj = bcol[p];
      const double* acol = apack + p * mlen;
      for (std::size_t i = 0; i < mlen; ++i) ccol[i] += acol[i] * bpj;
    }
  }
}

constexpr GemmKernel kScalarKernel{"scalar", kSmallM, kSmallK, kSmallN,
                                   tile_nn_packed};

// Test hook: when non-null, overrides the auto-detected kernel.
std::atomic<const GemmKernel*> g_forced_kernel{nullptr};

const GemmKernel& active_kernel() {
  const GemmKernel* forced = g_forced_kernel.load(std::memory_order_relaxed);
  if (forced != nullptr) return *forced;
  // Detected once; the probe is a cpuid-backed builtin, not a config file,
  // so "auto" is a pure function of the host — unless HETGRID_GEMM_KERNEL
  // pins it ("scalar"/"avx2"), which is how CI proves the scalar fallback
  // on AVX2 builders. Unknown or unavailable values fall back to detection.
  static const GemmKernel* const detected = []() -> const GemmKernel* {
    const GemmKernel* simd = detail::gemm_kernel_avx2();
    const char* env = std::getenv("HETGRID_GEMM_KERNEL");
    if (env != nullptr) {
      if (std::string_view(env) == "scalar") return &kScalarKernel;
      if (std::string_view(env) == "avx2" && simd != nullptr) return simd;
    }
    return simd != nullptr ? simd : &kScalarKernel;
  }();
  return *detected;
}

// Blocked no-transpose path. Small problems (one scalar-sized tile in every
// dimension) skip the packing entirely — the distributed runtimes call this
// once per owned block, and a 16..64-wide block gains nothing from an extra
// copy. Large problems pack each A/B tile once into contiguous, alpha-folded
// buffers sized for the dispatched kernel's blocking and stream its
// microkernel over them: the kc x nc B pack is the outer (L3-resident)
// level, the mc x kc A pack the L2-resident level below it.
void gemm_nn_blocked(double alpha, const ConstMatrixView& a,
                     const ConstMatrixView& b, MatrixView c) {
  const std::size_t m = c.rows(), n = c.cols(), k = a.cols();
  if (is_small_nn(m, n, k)) {
    // Bounded by n as well as m/k: a 64 x 64 x N call with huge N would
    // otherwise stream strided B columns with no reuse. Taking the packed
    // path instead is bit-safe — the kernels are FP-identical per element.
    tile_nn(alpha, a, b, c, 0, m, 0, k, 0, n);
    return;
  }
  const GemmKernel& kern = active_kernel();
  // Per-thread pack buffers: reused across calls (resize only grows the
  // allocation), so the threaded stripes in gemm(..., engine) never share
  // them and a kernel switch mid-process just re-sizes on next use.
  thread_local std::vector<double> apack;
  thread_local std::vector<double> bpack;
  apack.resize(kern.mc * kern.kc);
  bpack.resize(kern.kc * kern.nc);
  for (std::size_t j0 = 0; j0 < n; j0 += kern.nc) {
    const std::size_t j1 = std::min(j0 + kern.nc, n);
    for (std::size_t p0 = 0; p0 < k; p0 += kern.kc) {
      const std::size_t p1 = std::min(p0 + kern.kc, k);
      pack_b(alpha, b, p0, p1, j0, j1, bpack.data());
      for (std::size_t i0 = 0; i0 < m; i0 += kern.mc) {
        const std::size_t i1 = std::min(i0 + kern.mc, m);
        pack_a(a, i0, i1, p0, p1, apack.data());
        kern.tile(apack.data(), i1 - i0, bpack.data(), p1 - p0,
                  c.data() + i0 + j0 * c.ld(), c.ld(), j1 - j0);
      }
    }
  }
}

// The computation behind both public overloads, with no metric counting —
// the caller has already counted the logical call (count_gemm_call), so the
// threaded overload can run this once per stripe without inflating the
// counters.
void gemm_core(Trans trans_a, Trans trans_b, double alpha,
               const ConstMatrixView& a, const ConstMatrixView& b, double beta,
               MatrixView c) {
  scale_c(beta, c);
  if (alpha == 0.0) return;

  if (trans_a == Trans::No && trans_b == Trans::No) {
    gemm_nn_blocked(alpha, a, b, c);
    return;
  }

  // Transposed paths always run the packed microkernel path (transposition
  // happens in the pack), never a naive accumulator loop: the threaded
  // overload splits C into stripes, and only the in-memory ascending-p
  // update sequence gives each stripe the same per-element arithmetic as
  // the serial call — a register-accumulator loop would not.
  gemm_packed_path(trans_a, trans_b, alpha, a, PackTag{}, b, PackTag{}, c,
                   nullptr);
}

// Lazily reads HETGRID_PACK_CACHE into the consumption switch.
bool pack_cache_enabled_impl() {
  int v = g_pack_cache.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("HETGRID_PACK_CACHE");
    v = (env != nullptr && std::string_view(env) == "0") ? 0 : 1;
    g_pack_cache.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

}  // namespace

const char* gemm_kernel_name() { return active_kernel().name; }

bool gemm_force_kernel(std::string_view name) {
  if (name == "auto") {
    g_forced_kernel.store(nullptr, std::memory_order_relaxed);
    return true;
  }
  if (name == "scalar") {
    g_forced_kernel.store(&kScalarKernel, std::memory_order_relaxed);
    return true;
  }
  if (name == "avx2") {
    const GemmKernel* simd = detail::gemm_kernel_avx2();
    if (simd == nullptr) return false;
    g_forced_kernel.store(simd, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void gemm(Trans trans_a, Trans trans_b, double alpha, const ConstMatrixView& a,
          const ConstMatrixView& b, double beta, MatrixView c) {
  check_shapes(trans_a, trans_b, a, b, c);
  const std::size_t k = trans_a == Trans::No ? a.cols() : a.rows();
  count_gemm_call(trans_a, trans_b, alpha, c.rows(), c.cols(), k);
  gemm_core(trans_a, trans_b, alpha, a, b, beta, c);
}

void gemm(Trans trans_a, Trans trans_b, double alpha, const ConstMatrixView& a,
          const ConstMatrixView& b, double beta, MatrixView c,
          ParallelEngine& engine) {
  check_shapes(trans_a, trans_b, a, b, c);
  const std::size_t n = c.cols();
  const std::size_t k = trans_a == Trans::No ? a.cols() : a.rows();
  // Counted once for the logical call, before any stripe split — the
  // counters cannot depend on the thread count.
  count_gemm_call(trans_a, trans_b, alpha, c.rows(), n, k);
  // One stripe per worker, aligned to whole column panels. Each column of C
  // is produced by exactly one stripe with the same i/p loop structure as
  // the serial path, so the result is bit-identical for any stripe count.
  const std::size_t panels = (n + kStripePanel - 1) / kStripePanel;
  const std::size_t stripes =
      std::min<std::size_t>(engine.threads(), panels);
  if (engine.serial() || stripes <= 1) {
    gemm_core(trans_a, trans_b, alpha, a, b, beta, c);
    return;
  }
  engine.run_indexed(stripes, [&](std::size_t s) {
    const std::size_t j_lo = std::min(n, panels * s / stripes * kStripePanel);
    const std::size_t j_hi =
        std::min(n, panels * (s + 1) / stripes * kStripePanel);
    if (j_lo >= j_hi) return;
    const std::size_t jlen = j_hi - j_lo;
    const ConstMatrixView bsub =
        trans_b == Trans::No ? b.block(0, j_lo, b.rows(), jlen)
                             : b.block(j_lo, 0, jlen, b.cols());
    gemm_core(trans_a, trans_b, alpha, a, bsub, beta,
              c.block(0, j_lo, c.rows(), jlen));
  });
}

void gemm_update(const ConstMatrixView& a, const ConstMatrixView& b,
                 MatrixView c) {
  gemm(Trans::No, Trans::No, 1.0, a, b, 1.0, c);
}

void gemm_cached(Trans trans_a, Trans trans_b, double alpha,
                 const ConstMatrixView& a, PackTag a_tag,
                 const ConstMatrixView& b, PackTag b_tag, double beta,
                 MatrixView c, PackedPanelCache* cache) {
  check_shapes(trans_a, trans_b, a, b, c);
  const std::size_t k = trans_a == Trans::No ? a.cols() : a.rows();
  // Counted exactly like the plain overloads, so swapping a call site
  // between gemm and gemm_cached never moves a metric fingerprint.
  count_gemm_call(trans_a, trans_b, alpha, c.rows(), c.cols(), k);
  scale_c(beta, c);
  if (alpha == 0.0) return;
  if (cache != nullptr && !pack_cache_enabled_impl()) cache = nullptr;
  const bool tagged = cache != nullptr && (a_tag.valid || b_tag.valid);
  if (trans_a == Trans::No && trans_b == Trans::No &&
      (is_small_nn(c.rows(), c.cols(), k) || !tagged)) {
    // Exactly the plain-gemm path: the small fast path gains nothing from
    // caching, and an untagged large call packs per-tile streaming (no
    // whole-operand copy) — both bit-identical to the packed path anyway.
    gemm_nn_blocked(alpha, a, b, c);
    return;
  }
  gemm_packed_path(trans_a, trans_b, alpha, a, a_tag, b, b_tag, c,
                   tagged ? cache : nullptr);
}

PackedPanel gemm_pack_a(Trans trans_a, const ConstMatrixView& a) {
  PackedPanel p;
  build_pack_a(trans_a, a, active_kernel(), p);
  return p;
}

PackedPanel gemm_pack_b(Trans trans_b, double alpha,
                        const ConstMatrixView& b) {
  PackedPanel p;
  build_pack_b(trans_b, alpha, b, active_kernel(), p);
  return p;
}

void gemm_prepacked(const PackedPanel& packed_a, const PackedPanel& packed_b,
                    MatrixView c) {
  // No metric counting: this is the compute half of a call the caller has
  // already accounted for (or chosen not to) when it packed the operands.
  packed_compute(packed_a, packed_b, c);
}

bool gemm_set_pack_cache(bool enabled) {
  const bool prev = pack_cache_enabled_impl();
  g_pack_cache.store(enabled ? 1 : 0, std::memory_order_relaxed);
  return prev;
}

bool gemm_pack_cache_enabled() { return pack_cache_enabled_impl(); }

void gemm_reference(Trans trans_a, Trans trans_b, double alpha,
                    const ConstMatrixView& a, const ConstMatrixView& b,
                    double beta, MatrixView c) {
  check_shapes(trans_a, trans_b, a, b, c);
  const std::size_t m = c.rows(), n = c.cols();
  const std::size_t k = trans_a == Trans::No ? a.cols() : a.rows();
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < m; ++i) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p)
        acc += op_at(a, trans_a, i, p) * op_at(b, trans_b, p, j);
      c(i, j) = alpha * acc + (beta == 0.0 ? 0.0 : beta * c(i, j));
    }
}

}  // namespace hetgrid
