#include "matrix/norms.hpp"

#include <algorithm>
#include <cmath>

namespace hetgrid {

double norm_frobenius(const ConstMatrixView& a) {
  double acc = 0.0;
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i) acc += a(i, j) * a(i, j);
  return std::sqrt(acc);
}

double norm_inf(const ConstMatrixView& a) {
  double best = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) row += std::abs(a(i, j));
    best = std::max(best, row);
  }
  return best;
}

double norm_max(const ConstMatrixView& a) {
  double best = 0.0;
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i)
      best = std::max(best, std::abs(a(i, j)));
  return best;
}

double max_abs_diff(const ConstMatrixView& a, const ConstMatrixView& b) {
  HG_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
           "max_abs_diff shape mismatch");
  double best = 0.0;
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i)
      best = std::max(best, std::abs(a(i, j) - b(i, j)));
  return best;
}

double relative_error(const ConstMatrixView& computed,
                      const ConstMatrixView& reference) {
  return max_abs_diff(computed, reference) /
         std::max(1.0, norm_max(reference));
}

}  // namespace hetgrid
