// Internal trsm microkernel dispatch table.
//
// The blocked triangular solves (matrix/trsm.cpp) spend their in-block time
// in two column primitives: a subtract-scaled-column saxpy and an
// elementwise column divide. A TrsmKernel bundles vectorizable
// implementations of both; trsm.cpp owns the scalar fallback and follows the
// gemm dispatch choice (gemm_kernel_name()), so gemm_force_kernel /
// HETGRID_GEMM_KERNEL is the single toggle for the whole microkernel family.
// trsm_kernel_avx2.cpp (compiled with -mavx2 like its gemm sibling)
// contributes the vectorized kernel on capable hosts.
//
// Bit-identity contract, same as gemm_kernel.hpp: both primitives are
// elementwise — each y[i] sees one individually rounded multiply-then-
// subtract (never FMA, whose single rounding differs) or one IEEE divide,
// and vector lanes round exactly like scalar ops — so the dispatch choice
// can never change a computed bit.
#pragma once

#include <cstddef>

namespace hetgrid::detail {

struct TrsmKernel {
  const char* name;  // "scalar", "avx2" — follows gemm_kernel_name()
  // y[i] -= x[i] * a for i in [0, n): the column update of a right-looking
  // solve step (x is a triangle column or a solved rhs column).
  void (*axpy_sub)(double* y, const double* x, double a, std::size_t n);
  // y[i] /= d for i in [0, n): the diagonal divide of a non-unit solve.
  void (*col_div)(double* y, double d, std::size_t n);
};

/// The AVX2 kernel, or nullptr when the build target or the running CPU
/// lacks AVX2. Defined in trsm_kernel_avx2.cpp.
const TrsmKernel* trsm_kernel_avx2();

}  // namespace hetgrid::detail
