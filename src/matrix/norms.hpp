// Matrix norms and residual measures used by correctness tests.
#pragma once

#include "matrix/matrix.hpp"

namespace hetgrid {

/// Frobenius norm.
double norm_frobenius(const ConstMatrixView& a);

/// Infinity norm (max absolute row sum).
double norm_inf(const ConstMatrixView& a);

/// Largest absolute entry.
double norm_max(const ConstMatrixView& a);

/// max_ij |a_ij - b_ij|; shapes must match.
double max_abs_diff(const ConstMatrixView& a, const ConstMatrixView& b);

/// Relative residual ||computed - reference||_max / max(1, ||reference||_max).
double relative_error(const ConstMatrixView& computed,
                      const ConstMatrixView& reference);

}  // namespace hetgrid
