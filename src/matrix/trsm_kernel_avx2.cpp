// AVX2 trsm column microkernels.
//
// Compiled with -mavx2 -ffp-contract=off like gemm_kernel_avx2.cpp (the
// compiler must not contract the scalar tails into FMAs). Both primitives
// vectorize across i only, with one individually rounded multiply and
// subtract (or one IEEE divide) per element — _mm256_mul_pd/_mm256_sub_pd/
// _mm256_div_pd, never _mm256_fmadd_pd — so every lane computes exactly
// what the scalar kernel computes and the dispatch choice cannot change a
// bit of the solve.
#include "matrix/trsm_kernel.hpp"

#if defined(__x86_64__) && defined(__AVX2__)

#include <immintrin.h>

namespace hetgrid::detail {
namespace {

void axpy_sub_avx2(double* y, const double* x, double a, std::size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vx = _mm256_loadu_pd(x + i);
    const __m256d vy = _mm256_loadu_pd(y + i);
    _mm256_storeu_pd(y + i, _mm256_sub_pd(vy, _mm256_mul_pd(vx, va)));
  }
  for (; i < n; ++i) y[i] -= x[i] * a;
}

void col_div_avx2(double* y, double d, std::size_t n) {
  // Elementwise IEEE divide: div_pd rounds each lane exactly like the
  // scalar divide, so no reciprocal-multiply trickery is allowed here.
  const __m256d vd = _mm256_set1_pd(d);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vy = _mm256_loadu_pd(y + i);
    _mm256_storeu_pd(y + i, _mm256_div_pd(vy, vd));
  }
  for (; i < n; ++i) y[i] /= d;
}

constexpr TrsmKernel kAvx2TrsmKernel{"avx2", axpy_sub_avx2, col_div_avx2};

}  // namespace

const TrsmKernel* trsm_kernel_avx2() {
  return __builtin_cpu_supports("avx2") ? &kAvx2TrsmKernel : nullptr;
}

}  // namespace hetgrid::detail

#else  // non-x86-64 target or AVX2 not enabled for this TU

namespace hetgrid::detail {

const TrsmKernel* trsm_kernel_avx2() { return nullptr; }

}  // namespace hetgrid::detail

#endif
