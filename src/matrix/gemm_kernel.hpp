// Internal gemm microkernel dispatch table.
//
// A GemmKernel bundles a packed-tile inner kernel with the cache-blocking
// geometry it was tuned for. gemm.cpp owns the scalar fallback and picks the
// best kernel the host supports at first use; gemm_kernel_avx2.cpp (the only
// TU compiled with -mavx2) contributes the vectorized kernel when the build
// targets x86-64 and the CPU reports AVX2 at runtime.
//
// Bit-identity contract: every kernel must produce, for every C element, the
// exact floating-point operation sequence of the scalar kernel — an ascending-
// p chain of individually rounded multiply-then-add steps (no FMA, which
// rounds once where mul+add rounds twice). Vectorizing across i (rows) keeps
// each element's chain untouched, so scalar and SIMD kernels agree to the bit
// and the dispatch choice can never change a computed result.
#pragma once

#include <cstddef>

namespace hetgrid::detail {

/// Packed-tile kernel: C(0:mlen, 0:jlen) += Apack * Bpack, where Apack is a
/// contiguous column-major mlen x klen tile, Bpack a contiguous column-major
/// klen x jlen tile (alpha already folded in by the pack), and C a column-
/// major view with leading dimension ldc.
using GemmTileFn = void (*)(const double* apack, std::size_t mlen,
                            const double* bpack, std::size_t klen,
                            double* cbase, std::size_t ldc, std::size_t jlen);

struct GemmKernel {
  const char* name;  // "scalar", "avx2", ... — surfaced by gemm_kernel_name()
  std::size_t mc;    // A-panel rows   (mc x kc pack, L1/L2 resident)
  std::size_t kc;    // shared depth   (kc x nc B pack, L2/L3 resident)
  std::size_t nc;    // B-panel cols
  GemmTileFn tile;
};

/// The AVX2 kernel, or nullptr when the build target or the running CPU
/// lacks AVX2. Defined in gemm_kernel_avx2.cpp.
const GemmKernel* gemm_kernel_avx2();

}  // namespace hetgrid::detail
