// Householder QR factorization (the paper's second solver kernel, whose
// parallelization mirrors the right-looking LU).
#pragma once

#include <vector>

#include "matrix/matrix.hpp"

namespace hetgrid {

/// In-place Householder QR: after the call, the upper triangle of `a` holds
/// R and the strict lower triangle holds the Householder vectors v_k
/// (normalized so v_k[k] = 1, implicit); `tau[k]` are the reflector scales.
struct QrResult {
  std::vector<double> tau;
};

/// Unblocked Householder QR (geqr2 analogue). Requires rows >= cols.
QrResult qr_factor(MatrixView a);

/// Applies Q^T (the product of the stored reflectors, transposed) to `b`
/// in place: b := Q^T b. Needed for least-squares solves.
void qr_apply_qt(const ConstMatrixView& qr, const std::vector<double>& tau,
                 MatrixView b);

/// Materializes the thin Q (rows x cols) from the stored reflectors.
Matrix qr_form_q(const ConstMatrixView& qr, const std::vector<double>& tau);

/// Builds the b x b upper-triangular block-reflector factor T with
/// H_0 H_1 ... H_{b-1} = I - V T V^T, where V is the unit-lower-trapezoid
/// of `panel` (LAPACK larft, forward columnwise). Needed by the blocked /
/// distributed QR trailing update.
Matrix qr_form_t(const ConstMatrixView& panel, const std::vector<double>& tau);

/// Least-squares solve min ||A x - b||: `qr`/`tau` from qr_factor of A
/// (m x n, m >= n); `b` is m x nrhs on input, the top n rows hold x on
/// output.
void qr_solve(const ConstMatrixView& qr, const std::vector<double>& tau,
              MatrixView b);

}  // namespace hetgrid
