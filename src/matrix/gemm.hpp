// General matrix multiply kernels.
//
// gemm computes C := alpha * op(A) * op(B) + beta * C with a cache-blocked
// triple loop (jik order, column-major friendly). This is the compute kernel
// the distributed outer-product algorithm calls on each local block update.
#pragma once

#include <string_view>

#include "matrix/matrix.hpp"

namespace hetgrid {

class ParallelEngine;

enum class Trans { No, Yes };

/// C := alpha * op(A) * op(B) + beta * C.
/// Shapes: op(A) is m x k, op(B) is k x n, C is m x n.
/// The no-transpose path is cache-blocked with a branch-free saxpy inner
/// loop; problems larger than one tile additionally pack the A/B tiles
/// into contiguous buffers (pure data movement — the floating-point
/// operation sequence per C element is identical either way).
void gemm(Trans trans_a, Trans trans_b, double alpha, const ConstMatrixView& a,
          const ConstMatrixView& b, double beta, MatrixView c);

/// Multithreaded large-block variant: partitions C into column stripes
/// (aligned to whole cache panels) and runs one serial gemm per stripe on
/// `engine`. Every column of C is computed by exactly one stripe with the
/// serial loop structure, so the result is bit-identical to the serial
/// gemm for any thread count. Falls back to the serial path when the
/// engine is serial or the problem is a single panel wide.
void gemm(Trans trans_a, Trans trans_b, double alpha, const ConstMatrixView& a,
          const ConstMatrixView& b, double beta, MatrixView c,
          ParallelEngine& engine);

/// Name of the packed-tile microkernel gemm would dispatch to right now:
/// "avx2" on an x86-64 host with AVX2 (explicit mul+add vectors — never FMA,
/// whose single rounding would break bit-identity with the scalar kernel),
/// "scalar" otherwise. Every kernel produces bit-identical results; the
/// name only tells you which one is doing it.
const char* gemm_kernel_name();

/// Test hook: force the microkernel dispatch. Accepts "scalar", "avx2", or
/// "auto" (restore runtime detection). Returns false — leaving the current
/// choice untouched — when the named kernel is unknown or unavailable on
/// this host. Takes effect on the next gemm call; not meant to be raced
/// against in-flight gemms.
bool gemm_force_kernel(std::string_view name);

/// Convenience: C += A * B (the rank-k update at the heart of the paper's
/// kernels).
void gemm_update(const ConstMatrixView& a, const ConstMatrixView& b,
                 MatrixView c);

/// Reference (unblocked, naive) implementation used by tests to validate the
/// blocked kernel.
void gemm_reference(Trans trans_a, Trans trans_b, double alpha,
                    const ConstMatrixView& a, const ConstMatrixView& b,
                    double beta, MatrixView c);

}  // namespace hetgrid
