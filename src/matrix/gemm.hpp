// General matrix multiply kernels.
//
// gemm computes C := alpha * op(A) * op(B) + beta * C with a cache-blocked
// triple loop (jik order, column-major friendly). This is the compute kernel
// the distributed outer-product algorithm calls on each local block update.
#pragma once

#include <cstdint>
#include <string_view>

#include "matrix/matrix.hpp"

namespace hetgrid {

class ParallelEngine;
class PackedPanelCache;
struct PackedPanel;

enum class Trans { No, Yes };

/// C := alpha * op(A) * op(B) + beta * C.
/// Shapes: op(A) is m x k, op(B) is k x n, C is m x n.
/// The no-transpose path is cache-blocked with a branch-free saxpy inner
/// loop; problems larger than one tile additionally pack the A/B tiles
/// into contiguous buffers (pure data movement — the floating-point
/// operation sequence per C element is identical either way). Transposed
/// operands are handled by the pack alone (the tiles are copied through
/// op()), so every transpose combination runs on the same dispatched
/// microkernel and inherits its scalar-vs-SIMD bit-identity.
void gemm(Trans trans_a, Trans trans_b, double alpha, const ConstMatrixView& a,
          const ConstMatrixView& b, double beta, MatrixView c);

/// Multithreaded large-block variant: partitions C into column stripes
/// (aligned to whole cache panels) and runs one serial gemm per stripe on
/// `engine`. Every column of C is computed by exactly one stripe with the
/// serial loop structure, so the result is bit-identical to the serial
/// gemm for any thread count. Falls back to the serial path when the
/// engine is serial or the problem is a single panel wide.
void gemm(Trans trans_a, Trans trans_b, double alpha, const ConstMatrixView& a,
          const ConstMatrixView& b, double beta, MatrixView c,
          ParallelEngine& engine);

/// Name of the packed-tile microkernel gemm would dispatch to right now:
/// "avx2" on an x86-64 host with AVX2 (explicit mul+add vectors — never FMA,
/// whose single rounding would break bit-identity with the scalar kernel),
/// "scalar" otherwise. Every kernel produces bit-identical results; the
/// name only tells you which one is doing it.
const char* gemm_kernel_name();

/// Test hook: force the microkernel dispatch. Accepts "scalar", "avx2", or
/// "auto" (restore runtime detection). Returns false — leaving the current
/// choice untouched — when the named kernel is unknown or unavailable on
/// this host. Takes effect on the next gemm call; not meant to be raced
/// against in-flight gemms. This is the one toggle for the whole microkernel
/// family: the blocked trsm (matrix/trsm.hpp) follows the same choice, so
/// forcing "scalar" proves the entire scalar fallback. "auto" detection can
/// additionally be pinned process-wide with the HETGRID_GEMM_KERNEL
/// environment variable ("scalar" or "avx2", read once at first dispatch) —
/// how CI runs the MP kernel tests on the scalar path.
bool gemm_force_kernel(std::string_view name);

/// Convenience: C += A * B (the rank-k update at the heart of the paper's
/// kernels).
void gemm_update(const ConstMatrixView& a, const ConstMatrixView& b,
                 MatrixView c);

// ---- Packing split / packed-operand reuse ----------------------------------
//
// Packing (copying an operand into contiguous kernel-blocked tiles) is pure
// data movement: the compute loop reads the same bytes in the same order
// whether they were packed this call or three calls ago. These entry points
// split the two so a caller that reuses an operand across many calls — the
// MP runtime's trailing-update sweeps — can pack it once.

/// Names one cached operand for gemm_cached: `id` identifies the underlying
/// data (the MP runtime uses the block key), `version` its write epoch —
/// the owner must bump it on every write (BlockStore::bump_version), which
/// is what keeps a reordering DAG scheduler from ever consuming a stale
/// pack. A default-constructed tag (valid == false) means "do not cache".
struct PackTag {
  std::uint64_t id = 0;
  std::uint64_t version = 0;
  bool valid = false;
};

/// C := alpha * op(A) * op(B) + beta * C, arithmetic bit-identical to
/// gemm(...), consulting `cache` for pre-packed operand panels. An operand
/// with a valid tag is looked up by (tag, side, transpose, alpha for B,
/// kernel blocking) and packed into the cache on a miss; a null cache,
/// invalid tag, disabled cache (gemm_set_pack_cache), or a call on the
/// small-problem fast path packs fresh exactly like gemm. Counts the
/// gemm.pack_hits / gemm.pack_misses metrics on cache lookups.
void gemm_cached(Trans trans_a, Trans trans_b, double alpha,
                 const ConstMatrixView& a, PackTag a_tag,
                 const ConstMatrixView& b, PackTag b_tag, double beta,
                 MatrixView c, PackedPanelCache* cache);

/// Packs op(A) (m x k) into kernel-blocked tiles for the currently
/// dispatched kernel. The panel is self-describing (shape + blocking); the
/// compute loop checks it against the active kernel, so a pack can never be
/// consumed with mismatched geometry.
PackedPanel gemm_pack_a(Trans trans_a, const ConstMatrixView& a);

/// Packs alpha * op(B) (k x n) the same way; alpha is folded into the pack
/// (an exact operation for the -1.0/+1.0 the runtimes use — and for any
/// alpha, the same fold the unsplit path performs).
PackedPanel gemm_pack_b(Trans trans_b, double alpha, const ConstMatrixView& b);

/// C := C + packed_a * packed_b over pre-packed panels (alpha already folded
/// into the B pack by gemm_pack_b). Bit-identical to the corresponding
/// gemm(alpha, a, b, 1.0, c) call. Throws PreconditionError if the panels'
/// blocking does not match the active kernel or the shapes disagree.
void gemm_prepacked(const PackedPanel& packed_a, const PackedPanel& packed_b,
                    MatrixView c);

/// Globally enables/disables packed-panel cache consumption (gemm_cached
/// treats every cache as null when disabled). Returns the previous setting.
/// Initial state comes from the HETGRID_PACK_CACHE environment variable
/// ("0" disables; anything else — or unset — enables), so CI can prove the
/// cache-off configuration on every commit. Bit-identity makes this a pure
/// performance toggle.
bool gemm_set_pack_cache(bool enabled);

/// Current pack-cache consumption setting (lazily reads the environment).
bool gemm_pack_cache_enabled();

/// Reference (unblocked, naive) implementation used by tests to validate the
/// blocked kernel.
void gemm_reference(Trans trans_a, Trans trans_b, double alpha,
                    const ConstMatrixView& a, const ConstMatrixView& b,
                    double beta, MatrixView c);

}  // namespace hetgrid
