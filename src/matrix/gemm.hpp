// General matrix multiply kernels.
//
// gemm computes C := alpha * op(A) * op(B) + beta * C with a cache-blocked
// triple loop (jik order, column-major friendly). This is the compute kernel
// the distributed outer-product algorithm calls on each local block update.
#pragma once

#include "matrix/matrix.hpp"

namespace hetgrid {

enum class Trans { No, Yes };

/// C := alpha * op(A) * op(B) + beta * C.
/// Shapes: op(A) is m x k, op(B) is k x n, C is m x n.
void gemm(Trans trans_a, Trans trans_b, double alpha, const ConstMatrixView& a,
          const ConstMatrixView& b, double beta, MatrixView c);

/// Convenience: C += A * B (the rank-k update at the heart of the paper's
/// kernels).
void gemm_update(const ConstMatrixView& a, const ConstMatrixView& b,
                 MatrixView c);

/// Reference (unblocked, naive) implementation used by tests to validate the
/// blocked kernel.
void gemm_reference(Trans trans_a, Trans trans_b, double alpha,
                    const ConstMatrixView& a, const ConstMatrixView& b,
                    double beta, MatrixView c);

}  // namespace hetgrid
