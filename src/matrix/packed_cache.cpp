#include "matrix/packed_cache.hpp"

#include "obs/metrics.hpp"

namespace hetgrid {

namespace {

// splitmix64 finalizer — same full-avalanche mix as BlockKeyHash.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::size_t PackedPanelCache::KeyHash::operator()(const Key& k) const {
  std::uint64_t h = mix(k.id);
  h = mix(h ^ k.version);
  h = mix(h ^ k.meta);
  h = mix(h ^ k.alpha_bits);
  return static_cast<std::size_t>(h);
}

std::shared_ptr<const PackedPanel> PackedPanelCache::get(
    const Key& key, const std::function<PackedPanel()>& build) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      metric_count("gemm.pack_hits");
      lru_.splice(lru_.begin(), lru_, it->second);  // bump to front
      return it->second->panel;
    }
  }
  metric_count("gemm.pack_misses");
  auto panel = std::make_shared<const PackedPanel>(build());
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // A concurrent miss inserted the (byte-identical) pack first; keep it.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->panel;
  }
  lru_.push_front(Entry{key, panel});
  index_.emplace(key, lru_.begin());
  held_ += panel->doubles();
  evict_to_fit_locked();
  return panel;
}

void PackedPanelCache::evict_to_fit_locked() {
  // Never evict the sole entry: a pack bigger than the whole capacity still
  // has to survive until its caller is done going through the cache.
  while (held_ > capacity_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    metric_count("gemm.pack_evictions");
    held_ -= victim.panel->doubles();
    index_.erase(victim.key);
    lru_.pop_back();
  }
}

std::size_t PackedPanelCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::size_t PackedPanelCache::held_doubles() const {
  std::lock_guard<std::mutex> lock(mu_);
  return held_;
}

void PackedPanelCache::set_capacity(std::size_t capacity_doubles) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity_doubles;
  while (held_ > capacity_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    metric_count("gemm.pack_evictions");
    held_ -= victim.panel->doubles();
    index_.erase(victim.key);
    lru_.pop_back();
  }
}

void PackedPanelCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  held_ = 0;
}

}  // namespace hetgrid
