#include "matrix/trsm.hpp"

#include <algorithm>
#include <string_view>

#include "matrix/gemm.hpp"
#include "matrix/trsm_kernel.hpp"

namespace hetgrid {

namespace {

using detail::TrsmKernel;

// Diagonal-block size of the blocked solves. Fixed (not tied to the gemm
// kernel's blocking) so the tail-update gemm call shapes — and with them the
// gemm metric fingerprints — are a property of the problem size alone.
constexpr std::size_t kTrsmBlock = 64;

void axpy_sub_scalar(double* y, const double* x, double a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] -= x[i] * a;
}

void col_div_scalar(double* y, double d, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] /= d;
}

constexpr TrsmKernel kScalarTrsmKernel{"scalar", axpy_sub_scalar,
                                       col_div_scalar};

// Follows the gemm dispatch (one toggle — gemm_force_kernel /
// HETGRID_GEMM_KERNEL — proves the scalar fallback of the whole family).
const TrsmKernel& active_trsm_kernel() {
  if (std::string_view(gemm_kernel_name()) == "avx2") {
    const TrsmKernel* simd = detail::trsm_kernel_avx2();
    if (simd != nullptr) return *simd;
  }
  return kScalarTrsmKernel;
}

// All four solves are blocked the same way: a right-looking head solve on a
// kTrsmBlock-wide slice of the triangle (column saxpy/divide primitives from
// the dispatched TrsmKernel), then one gemm-shaped rank-k update that pushes
// the solved slice into the rest of B through the gemm microkernel.
//
// Bit-identity with the historical unblocked solves: for every B element the
// subtraction chain still runs in ascending p order — earlier slices arrive
// via the tail gemms (whose packed path applies p ascending per element,
// with the -1 alpha folded into the pack: x + b*(-coef) rounds exactly like
// x - b*coef), the in-slice terms via the p-ascending head — and the
// diagonal divide still comes last. trsm_left_lower_unit, trsm_right_upper
// and trsm_right_lower_transposed are therefore bit-identical to their
// *_reference forms (asserted in tests). trsm_left_upper is the exception:
// the blocked form substitutes bottom slice first and descends within a
// slice, a different (deterministic) summation order than the reference's
// ascending-p row sweep, so its tests compare with tolerance.

void check_diag_nonzero(const ConstMatrixView& t, const char* what) {
  for (std::size_t j = 0; j < t.rows(); ++j)
    HG_CHECK(t(j, j) != 0.0, "singular " << what << " at diagonal " << j);
}

}  // namespace

void trsm_left_lower_unit(const ConstMatrixView& l, MatrixView b) {
  const std::size_t n = l.rows();
  HG_CHECK(l.cols() == n, "L must be square");
  HG_CHECK(b.rows() == n, "rhs rows " << b.rows() << " != " << n);
  const TrsmKernel& kern = active_trsm_kernel();
  for (std::size_t k0 = 0; k0 < n; k0 += kTrsmBlock) {
    const std::size_t k1 = std::min(k0 + kTrsmBlock, n);
    // Head: forward substitution inside the diagonal block. Row p of the
    // slice is final as soon as the rows above it have been applied (unit
    // diagonal: no divide), and the saxpy pushes it down the block column.
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double* bcol = b.data() + j * b.ld();
      for (std::size_t p = k0; p < k1; ++p)
        kern.axpy_sub(bcol + p + 1, l.data() + (p + 1) + p * l.ld(), bcol[p],
                      k1 - p - 1);
    }
    // Tail: B2 -= L21 * B1 through the gemm microkernel.
    if (k1 < n)
      gemm(Trans::No, Trans::No, -1.0, l.block(k1, k0, n - k1, k1 - k0),
           b.block(k0, 0, k1 - k0, b.cols()), 1.0,
           b.block(k1, 0, n - k1, b.cols()));
  }
}

void trsm_left_upper(const ConstMatrixView& u, MatrixView b) {
  const std::size_t n = u.rows();
  HG_CHECK(u.cols() == n, "U must be square");
  HG_CHECK(b.rows() == n, "rhs rows " << b.rows() << " != " << n);
  check_diag_nonzero(u, "U");
  const TrsmKernel& kern = active_trsm_kernel();
  const std::size_t nblocks = (n + kTrsmBlock - 1) / kTrsmBlock;
  for (std::size_t kb = nblocks; kb > 0; --kb) {
    const std::size_t k0 = (kb - 1) * kTrsmBlock;
    const std::size_t k1 = std::min(k0 + kTrsmBlock, n);
    // Head: back substitution inside the diagonal block, bottom row up;
    // each solved row is pushed up the block column by the saxpy.
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double* bcol = b.data() + j * b.ld();
      for (std::size_t pp = k1; pp > k0; --pp) {
        const std::size_t p = pp - 1;
        bcol[p] /= u(p, p);
        kern.axpy_sub(bcol + k0, u.data() + k0 + p * u.ld(), bcol[p],
                      p - k0);
      }
    }
    // Tail: B0 -= U01 * B1 for everything above the slice.
    if (k0 > 0)
      gemm(Trans::No, Trans::No, -1.0, u.block(0, k0, k0, k1 - k0),
           b.block(k0, 0, k1 - k0, b.cols()), 1.0,
           b.block(0, 0, k0, b.cols()));
  }
}

void trsm_right_upper(const ConstMatrixView& u, MatrixView b) {
  const std::size_t n = u.rows();
  HG_CHECK(u.cols() == n, "U must be square");
  HG_CHECK(b.cols() == n, "rhs cols " << b.cols() << " != " << n);
  check_diag_nonzero(u, "U");
  const TrsmKernel& kern = active_trsm_kernel();
  const std::size_t m = b.rows();
  for (std::size_t j0 = 0; j0 < n; j0 += kTrsmBlock) {
    const std::size_t j1 = std::min(j0 + kTrsmBlock, n);
    // Head: solve the block's columns left to right — subtract the already
    // solved in-block columns, then the whole-column diagonal divide.
    for (std::size_t j = j0; j < j1; ++j) {
      double* bj = b.data() + j * b.ld();
      for (std::size_t p = j0; p < j; ++p)
        kern.axpy_sub(bj, b.data() + p * b.ld(), u(p, j), m);
      kern.col_div(bj, u(j, j), m);
    }
    // Tail: B(:, j1:) -= B(:, j0:j1) * U(j0:j1, j1:).
    if (j1 < n)
      gemm(Trans::No, Trans::No, -1.0, b.block(0, j0, m, j1 - j0),
           u.block(j0, j1, j1 - j0, n - j1), 1.0,
           b.block(0, j1, m, n - j1));
  }
}

void trsm_right_lower_transposed(const ConstMatrixView& l, MatrixView b) {
  const std::size_t n = l.rows();
  HG_CHECK(l.cols() == n, "L must be square");
  HG_CHECK(b.cols() == n, "rhs cols " << b.cols() << " != " << n);
  check_diag_nonzero(l, "L");
  const TrsmKernel& kern = active_trsm_kernel();
  const std::size_t m = b.rows();
  for (std::size_t j0 = 0; j0 < n; j0 += kTrsmBlock) {
    const std::size_t j1 = std::min(j0 + kTrsmBlock, n);
    // Head: same sweep as trsm_right_upper with the coefficient read from
    // the transposed triangle, l(j, p).
    for (std::size_t j = j0; j < j1; ++j) {
      double* bj = b.data() + j * b.ld();
      for (std::size_t p = j0; p < j; ++p)
        kern.axpy_sub(bj, b.data() + p * b.ld(), l(j, p), m);
      kern.col_div(bj, l(j, j), m);
    }
    // Tail: B(:, j1:) -= B(:, j0:j1) * L(j1:, j0:j1)^T — the transpose is
    // handled by the gemm pack, so this runs the same microkernel too.
    if (j1 < n)
      gemm(Trans::No, Trans::Yes, -1.0, b.block(0, j0, m, j1 - j0),
           l.block(j1, j0, n - j1, j1 - j0), 1.0,
           b.block(0, j1, m, n - j1));
  }
}

const char* trsm_kernel_name() { return active_trsm_kernel().name; }

// ---- Reference (historical unblocked) solves -------------------------------

void trsm_left_lower_unit_reference(const ConstMatrixView& l, MatrixView b) {
  const std::size_t n = l.rows();
  HG_CHECK(l.cols() == n, "L must be square");
  HG_CHECK(b.rows() == n, "rhs rows " << b.rows() << " != " << n);
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      double x = b(i, j);
      for (std::size_t p = 0; p < i; ++p) x -= l(i, p) * b(p, j);
      b(i, j) = x;  // unit diagonal: no divide
    }
  }
}

void trsm_left_upper_reference(const ConstMatrixView& u, MatrixView b) {
  const std::size_t n = u.rows();
  HG_CHECK(u.cols() == n, "U must be square");
  HG_CHECK(b.rows() == n, "rhs rows " << b.rows() << " != " << n);
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t ii = n; ii > 0; --ii) {
      const std::size_t i = ii - 1;
      double x = b(i, j);
      for (std::size_t p = i + 1; p < n; ++p) x -= u(i, p) * b(p, j);
      HG_CHECK(u(i, i) != 0.0, "singular U at diagonal " << i);
      b(i, j) = x / u(i, i);
    }
  }
}

void trsm_right_upper_reference(const ConstMatrixView& u, MatrixView b) {
  const std::size_t n = u.rows();
  HG_CHECK(u.cols() == n, "U must be square");
  HG_CHECK(b.cols() == n, "rhs cols " << b.cols() << " != " << n);
  for (std::size_t j = 0; j < n; ++j) {
    HG_CHECK(u(j, j) != 0.0, "singular U at diagonal " << j);
    for (std::size_t i = 0; i < b.rows(); ++i) {
      double x = b(i, j);
      for (std::size_t p = 0; p < j; ++p) x -= b(i, p) * u(p, j);
      b(i, j) = x / u(j, j);
    }
  }
}

void trsm_right_lower_transposed_reference(const ConstMatrixView& l,
                                           MatrixView b) {
  const std::size_t n = l.rows();
  HG_CHECK(l.cols() == n, "L must be square");
  HG_CHECK(b.cols() == n, "rhs cols " << b.cols() << " != " << n);
  // Solve X * L^T = B, i.e. for each row of B: x_j = (b_j - sum_{p<j}
  // x_p * L(j,p)) / L(j,j), sweeping columns left to right.
  for (std::size_t j = 0; j < n; ++j) {
    HG_CHECK(l(j, j) != 0.0, "singular L at diagonal " << j);
    for (std::size_t i = 0; i < b.rows(); ++i) {
      double x = b(i, j);
      for (std::size_t p = 0; p < j; ++p) x -= b(i, p) * l(j, p);
      b(i, j) = x / l(j, j);
    }
  }
}

}  // namespace hetgrid
