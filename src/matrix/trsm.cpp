#include "matrix/trsm.hpp"

namespace hetgrid {

void trsm_left_lower_unit(const ConstMatrixView& l, MatrixView b) {
  const std::size_t n = l.rows();
  HG_CHECK(l.cols() == n, "L must be square");
  HG_CHECK(b.rows() == n, "rhs rows " << b.rows() << " != " << n);
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      double x = b(i, j);
      for (std::size_t p = 0; p < i; ++p) x -= l(i, p) * b(p, j);
      b(i, j) = x;  // unit diagonal: no divide
    }
  }
}

void trsm_left_upper(const ConstMatrixView& u, MatrixView b) {
  const std::size_t n = u.rows();
  HG_CHECK(u.cols() == n, "U must be square");
  HG_CHECK(b.rows() == n, "rhs rows " << b.rows() << " != " << n);
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t ii = n; ii > 0; --ii) {
      const std::size_t i = ii - 1;
      double x = b(i, j);
      for (std::size_t p = i + 1; p < n; ++p) x -= u(i, p) * b(p, j);
      HG_CHECK(u(i, i) != 0.0, "singular U at diagonal " << i);
      b(i, j) = x / u(i, i);
    }
  }
}

void trsm_right_upper(const ConstMatrixView& u, MatrixView b) {
  const std::size_t n = u.rows();
  HG_CHECK(u.cols() == n, "U must be square");
  HG_CHECK(b.cols() == n, "rhs cols " << b.cols() << " != " << n);
  for (std::size_t j = 0; j < n; ++j) {
    HG_CHECK(u(j, j) != 0.0, "singular U at diagonal " << j);
    for (std::size_t i = 0; i < b.rows(); ++i) {
      double x = b(i, j);
      for (std::size_t p = 0; p < j; ++p) x -= b(i, p) * u(p, j);
      b(i, j) = x / u(j, j);
    }
  }
}

}  // namespace hetgrid
