#include "matrix/cholesky.hpp"

#include <cmath>

#include "matrix/gemm.hpp"
#include "matrix/trsm.hpp"
#include "util/rng.hpp"

namespace hetgrid {

bool cholesky_factor_unblocked(MatrixView a) {
  const std::size_t n = a.rows();
  HG_CHECK(a.cols() == n, "cholesky needs a square matrix");
  for (std::size_t k = 0; k < n; ++k) {
    double d = a(k, k);
    for (std::size_t p = 0; p < k; ++p) d -= a(k, p) * a(k, p);
    if (d <= 0.0) return false;
    const double lkk = std::sqrt(d);
    a(k, k) = lkk;
    for (std::size_t i = k + 1; i < n; ++i) {
      double x = a(i, k);
      for (std::size_t p = 0; p < k; ++p) x -= a(i, p) * a(k, p);
      a(i, k) = x / lkk;
    }
  }
  return true;
}

bool cholesky_factor_blocked(MatrixView a, std::size_t block) {
  HG_CHECK(block > 0, "block size must be positive");
  const std::size_t n = a.rows();
  HG_CHECK(a.cols() == n, "cholesky needs a square matrix");

  for (std::size_t k = 0; k < n; k += block) {
    const std::size_t b = std::min(block, n - k);
    MatrixView a11 = a.block(k, k, b, b);
    if (!cholesky_factor_unblocked(a11)) return false;

    if (k + b < n) {
      const std::size_t rest = n - (k + b);
      MatrixView a21 = a.block(k + b, k, rest, b);
      trsm_right_lower_transposed(a11, a21);

      // Symmetric trailing update: A22 -= L21 * L21^T (lower part only;
      // we update the full block — the upper triangle is never read).
      MatrixView a22 = a.block(k + b, k + b, rest, rest);
      gemm(Trans::No, Trans::Yes, -1.0, a21, a21, 1.0, a22);
    }
  }
  return true;
}

void cholesky_solve(const ConstMatrixView& l, MatrixView b) {
  const std::size_t n = l.rows();
  HG_CHECK(l.cols() == n && b.rows() == n, "shape mismatch");
  // Forward substitution with non-unit lower L.
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      double x = b(i, j);
      for (std::size_t p = 0; p < i; ++p) x -= l(i, p) * b(p, j);
      HG_CHECK(l(i, i) != 0.0, "singular factor");
      b(i, j) = x / l(i, i);
    }
    // Back substitution with L^T.
    for (std::size_t ii = n; ii > 0; --ii) {
      const std::size_t i = ii - 1;
      double x = b(i, j);
      for (std::size_t p = i + 1; p < n; ++p) x -= l(p, i) * b(p, j);
      b(i, j) = x / l(i, i);
    }
  }
}

Matrix cholesky_reconstruct(const ConstMatrixView& a) {
  const std::size_t n = a.rows();
  Matrix l(n, n, 0.0);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = j; i < n; ++i) l(i, j) = a(i, j);
  Matrix out(n, n, 0.0);
  gemm(Trans::No, Trans::Yes, 1.0, l.view(), l.view(), 0.0, out.view());
  return out;
}

void fill_spd(MatrixView a, Rng& rng) {
  const std::size_t n = a.rows();
  HG_CHECK(a.cols() == n, "fill_spd needs a square matrix");
  Matrix m(n, n);
  fill_random(m.view(), rng);
  gemm(Trans::No, Trans::Yes, 1.0, m.view(), m.view(), 0.0, a);
  for (std::size_t i = 0; i < n; ++i)
    a(i, i) += static_cast<double>(n);
}

}  // namespace hetgrid
