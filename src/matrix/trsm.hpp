// Triangular solves with multiple right-hand sides (BLAS-3 trsm subset).
//
// Only the variants the right-looking LU / QR factorizations need are
// implemented; each is explicit rather than hidden behind a flag soup.
#pragma once

#include "matrix/matrix.hpp"

namespace hetgrid {

/// B := inv(L) * B where L is lower triangular with unit diagonal
/// (forward substitution; the "apply L panel" step of LU).
void trsm_left_lower_unit(const ConstMatrixView& l, MatrixView b);

/// B := inv(U) * B where U is upper triangular, non-unit diagonal
/// (back substitution).
void trsm_left_upper(const ConstMatrixView& u, MatrixView b);

/// B := B * inv(U) where U is upper triangular, non-unit diagonal
/// (the "compute U12 row panel" step of right-looking LU uses the dual:
///  solving X * L11^T = ... is expressed with this form on transposes; we
///  provide the direct right-solve used by our blocked LU).
void trsm_right_upper(const ConstMatrixView& u, MatrixView b);

/// B := inv(L11) * B for the LU row-panel update: given the unit-lower factor
/// L11 of the diagonal block, computes U12 = inv(L11) * A12. Alias of
/// trsm_left_lower_unit, named for call-site clarity.
inline void lu_row_panel_update(const ConstMatrixView& l11, MatrixView a12) {
  trsm_left_lower_unit(l11, a12);
}

}  // namespace hetgrid
