// Triangular solves with multiple right-hand sides (BLAS-3 trsm subset).
//
// Only the variants the right-looking LU / Cholesky / QR factorizations need
// are implemented; each is explicit rather than hidden behind a flag soup.
//
// All four are *blocked* solves: a small right-looking head on each diagonal
// slice of the triangle (vectorizable column saxpy/divide primitives,
// dispatched scalar vs AVX2 alongside the gemm microkernel) plus one
// gemm-shaped rank-k tail update per slice that runs on the packed gemm
// microkernel itself. The dispatch follows gemm_force_kernel /
// HETGRID_GEMM_KERNEL, and every variant is bit-identical across that
// dispatch. Three of the four (trsm_left_lower_unit, trsm_right_upper,
// trsm_right_lower_transposed — exactly the ones on the MP runtime's
// critical path) additionally preserve the historical unblocked solves'
// per-element floating-point sequence, so their results are bit-identical
// to the *_reference forms below; trsm_left_upper's blocked form uses a
// different (deterministic) summation order.
#pragma once

#include "matrix/matrix.hpp"

namespace hetgrid {

/// B := inv(L) * B where L is lower triangular with unit diagonal
/// (forward substitution; the "apply L panel" step of LU).
void trsm_left_lower_unit(const ConstMatrixView& l, MatrixView b);

/// B := inv(U) * B where U is upper triangular, non-unit diagonal
/// (back substitution).
void trsm_left_upper(const ConstMatrixView& u, MatrixView b);

/// B := B * inv(U) where U is upper triangular, non-unit diagonal
/// (the "compute U12 row panel" step of right-looking LU uses the dual:
///  solving X * L11^T = ... is expressed with this form on transposes; we
///  provide the direct right-solve used by our blocked LU).
void trsm_right_upper(const ConstMatrixView& u, MatrixView b);

/// B := B * inv(L)^T with L lower triangular, non-unit diagonal — the
/// panel solve of the blocked Cholesky.
void trsm_right_lower_transposed(const ConstMatrixView& l, MatrixView b);

/// Name of the trsm column-primitive kernel the solves would use right now
/// ("scalar" or "avx2"); always matches gemm_kernel_name()'s family choice.
const char* trsm_kernel_name();

/// Reference (historical unblocked triple-loop) solves, kept for tests and
/// the trsm bench. The three bit-identity-preserving blocked variants must
/// match these to the bit; trsm_left_upper matches to rounding error.
void trsm_left_lower_unit_reference(const ConstMatrixView& l, MatrixView b);
void trsm_left_upper_reference(const ConstMatrixView& u, MatrixView b);
void trsm_right_upper_reference(const ConstMatrixView& u, MatrixView b);
void trsm_right_lower_transposed_reference(const ConstMatrixView& l,
                                           MatrixView b);

/// B := inv(L11) * B for the LU row-panel update: given the unit-lower factor
/// L11 of the diagonal block, computes U12 = inv(L11) * A12. Alias of
/// trsm_left_lower_unit, named for call-site clarity.
inline void lu_row_panel_update(const ConstMatrixView& l11, MatrixView a12) {
  trsm_left_lower_unit(l11, a12);
}

}  // namespace hetgrid
