// Dense column-major matrix storage and non-owning views.
//
// hetgrid implements its own dense kernels (GEMM/LU/QR) instead of binding a
// vendor BLAS: the paper's contribution is the data *allocation*, and the
// kernels only need to be numerically correct and reasonably blocked so the
// virtual-time runtime exercises realistic block operations.
//
// Layout is column-major with an explicit leading dimension (LAPACK
// convention), so that sub-matrix views alias parent storage with no copies.
#pragma once

#include <cstddef>
#include <vector>

#include "util/check.hpp"

namespace hetgrid {

class ConstMatrixView;

/// Non-owning mutable view of a column-major block: element (i,j) lives at
/// data[i + j*ld].
class MatrixView {
 public:
  MatrixView(double* data, std::size_t rows, std::size_t cols, std::size_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    HG_DCHECK(ld >= rows || rows == 0, "leading dimension smaller than rows");
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t ld() const { return ld_; }
  double* data() const { return data_; }

  double& operator()(std::size_t i, std::size_t j) const {
    HG_DCHECK(i < rows_ && j < cols_,
              "index (" << i << "," << j << ") out of " << rows_ << "x"
                        << cols_);
    return data_[i + j * ld_];
  }

  /// Sub-block view of `r x c` elements starting at (i, j). Aliases storage.
  MatrixView block(std::size_t i, std::size_t j, std::size_t r,
                   std::size_t c) const {
    HG_DCHECK(i + r <= rows_ && j + c <= cols_, "block out of range");
    return MatrixView(data_ + i + j * ld_, r, c, ld_);
  }

  void fill(double value) const;
  void copy_from(const ConstMatrixView& src) const;

 private:
  double* data_;
  std::size_t rows_, cols_, ld_;
};

/// Non-owning read-only view; implicitly convertible from MatrixView.
class ConstMatrixView {
 public:
  ConstMatrixView(const double* data, std::size_t rows, std::size_t cols,
                  std::size_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    HG_DCHECK(ld >= rows || rows == 0, "leading dimension smaller than rows");
  }

  // NOLINTNEXTLINE(google-explicit-constructor): view decay is intentional.
  ConstMatrixView(const MatrixView& m)
      : data_(m.data()), rows_(m.rows()), cols_(m.cols()), ld_(m.ld()) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t ld() const { return ld_; }
  const double* data() const { return data_; }

  double operator()(std::size_t i, std::size_t j) const {
    HG_DCHECK(i < rows_ && j < cols_,
              "index (" << i << "," << j << ") out of " << rows_ << "x"
                        << cols_);
    return data_[i + j * ld_];
  }

  ConstMatrixView block(std::size_t i, std::size_t j, std::size_t r,
                        std::size_t c) const {
    HG_DCHECK(i + r <= rows_ && j + c <= cols_, "block out of range");
    return ConstMatrixView(data_ + i + j * ld_, r, c, ld_);
  }

 private:
  const double* data_;
  std::size_t rows_, cols_, ld_;
};

/// Owning column-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double init = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t ld() const { return rows_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t i, std::size_t j) {
    HG_DCHECK(i < rows_ && j < cols_, "index out of range");
    return data_[i + j * rows_];
  }
  double operator()(std::size_t i, std::size_t j) const {
    HG_DCHECK(i < rows_ && j < cols_, "index out of range");
    return data_[i + j * rows_];
  }

  MatrixView view() {
    return MatrixView(data_.data(), rows_, cols_, rows_);
  }
  ConstMatrixView view() const {
    return ConstMatrixView(data_.data(), rows_, cols_, rows_);
  }
  MatrixView block(std::size_t i, std::size_t j, std::size_t r,
                   std::size_t c) {
    return view().block(i, j, r, c);
  }
  ConstMatrixView block(std::size_t i, std::size_t j, std::size_t r,
                        std::size_t c) const {
    return view().block(i, j, r, c);
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// Deep equality within absolute tolerance `tol` (and equal shapes).
bool approx_equal(const ConstMatrixView& a, const ConstMatrixView& b,
                  double tol);

/// Fills `m` with uniform values in [-1, 1] from a caller-owned generator
/// state (declared here to keep matrix independent of util/rng's interface).
class Rng;
void fill_random(MatrixView m, Rng& rng);

/// Fills `m` so it is diagonally dominant (LU without pivoting growth is
/// benign; handy for conditioning-sensitive tests).
void fill_diagonally_dominant(MatrixView m, Rng& rng);

}  // namespace hetgrid
