// Capacity-bounded cache of packed gemm operand panels.
//
// The MP runtime's trailing updates call one block-GEMM per owned block, and
// every one of those calls re-reads the same pivot row/column panel blocks.
// Without a cache each call re-packs its operands into kernel-blocked tiles
// (pure data movement, but O(block^2) of it per call). A PackedPanelCache
// amortizes that: the first call to touch a panel block packs it once
// (gemm.pack_misses) and every later call in the step reuses the pack
// (gemm.pack_hits).
//
// Keying and invalidation: an entry is keyed on (operand id, version, pack
// metadata). The id names the operand (the MP runtime uses the block key);
// the version is a monotone counter the owner bumps on every write to the
// underlying data (BlockStore::bump_version, called at op-emission time on
// the host thread). A pack of stale data is therefore never *returned* — it
// is simply unreachable, because every reader asks for the current version —
// which is what makes the scheme safe under the DAG scheduler's reordering:
// the version a task looks up is captured at emission, and the task-graph
// dependencies guarantee the block's bytes match that version when the task
// runs. Stale entries age out through the LRU bound.
//
// Bit-identity: a packed panel is a pure copy of the operand (plus an exact
// alpha fold for B panels), so cache hit vs miss can never change a computed
// bit — asserted end-to-end in tests across {cache on, off} x kernels x
// schedulers x thread counts.
//
// Thread safety: get() may be called concurrently by DAG-scheduler workers.
// A mutex guards the map; the pack itself is built outside the lock (two
// concurrent misses both build — byte-identical — panels and the first
// insert wins). Entries are handed out as shared_ptr so eviction can never
// free a panel a running kernel still reads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace hetgrid {

/// One whole gemm operand packed into kernel-blocked tiles (see
/// gemm_pack_a / gemm_pack_b in matrix/gemm.hpp). `rows` x `cols` is the
/// op-shape and `mc`/`kc`/`nc` the kernel blocking the tiles and offsets
/// were computed for, so a pack can never silently be consumed by a kernel
/// with different geometry.
struct PackedPanel {
  std::size_t rows = 0, cols = 0;
  std::size_t mc = 0, kc = 0, nc = 0;
  std::vector<std::size_t> tile_off;  // tile start offsets into data
  std::vector<double> data;

  std::size_t doubles() const { return data.size(); }
};

/// LRU cache of PackedPanels, bounded by total doubles held.
class PackedPanelCache {
 public:
  /// Default bound: 1M doubles (8 MiB) per cache — a few dozen packed
  /// 256-wide blocks, far more than one trailing-update sweep touches.
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 20;

  explicit PackedPanelCache(std::size_t capacity_doubles = kDefaultCapacity)
      : capacity_(capacity_doubles) {}

  /// Full entry key. `id` names the operand, `version` its write epoch;
  /// `meta` encodes everything else that changes the packed bytes or their
  /// layout (operand side, transpose, kernel blocking); `alpha_bits` the
  /// bit pattern of the alpha folded into B packs (0 for A packs).
  struct Key {
    std::uint64_t id = 0;
    std::uint64_t version = 0;
    std::uint64_t meta = 0;
    std::uint64_t alpha_bits = 0;

    friend bool operator==(const Key&, const Key&) = default;
  };

  /// Returns the cached pack for `key`, building it with `build` on a miss
  /// (outside the lock). Counts gemm.pack_hits / gemm.pack_misses.
  std::shared_ptr<const PackedPanel> get(
      const Key& key, const std::function<PackedPanel()>& build);

  std::size_t size() const;            // entries held
  std::size_t held_doubles() const;    // total payload doubles held
  std::size_t capacity() const { return capacity_; }
  void set_capacity(std::size_t capacity_doubles);  // evicts down to fit
  void clear();

 private:
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };
  struct Entry {
    Key key;
    std::shared_ptr<const PackedPanel> panel;
  };
  using LruList = std::list<Entry>;

  void evict_to_fit_locked();  // requires mu_ held

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::size_t held_ = 0;
  LruList lru_;  // front = most recently used
  std::unordered_map<Key, LruList::iterator, KeyHash> index_;
};

}  // namespace hetgrid
