#include "matrix/matrix.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace hetgrid {

void MatrixView::fill(double value) const {
  for (std::size_t j = 0; j < cols_; ++j)
    for (std::size_t i = 0; i < rows_; ++i) (*this)(i, j) = value;
}

void MatrixView::copy_from(const ConstMatrixView& src) const {
  HG_CHECK(src.rows() == rows_ && src.cols() == cols_,
           "copy_from shape mismatch: " << rows_ << "x" << cols_ << " vs "
                                        << src.rows() << "x" << src.cols());
  for (std::size_t j = 0; j < cols_; ++j)
    for (std::size_t i = 0; i < rows_; ++i) (*this)(i, j) = src(i, j);
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

bool approx_equal(const ConstMatrixView& a, const ConstMatrixView& b,
                  double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i)
      if (std::abs(a(i, j) - b(i, j)) > tol) return false;
  return true;
}

void fill_random(MatrixView m, Rng& rng) {
  for (std::size_t j = 0; j < m.cols(); ++j)
    for (std::size_t i = 0; i < m.rows(); ++i)
      m(i, j) = rng.uniform(-1.0, 1.0);
}

void fill_diagonally_dominant(MatrixView m, Rng& rng) {
  fill_random(m, rng);
  const std::size_t n = std::min(m.rows(), m.cols());
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < m.cols(); ++j) row_sum += std::abs(m(i, j));
    m(i, i) = row_sum + 1.0;
  }
}

}  // namespace hetgrid
