#include "runtime/virtual_runtime.hpp"

#include <algorithm>

#include "matrix/cholesky.hpp"
#include "matrix/gemm.hpp"
#include "matrix/lu.hpp"
#include "matrix/qr.hpp"
#include "matrix/trsm.hpp"
#include "sim/trace_emit.hpp"
#include "util/parallel_engine.hpp"

namespace hetgrid {

double VirtualReport::average_utilization() const {
  if (makespan <= 0.0 || busy.empty()) return 0.0;
  double acc = 0.0;
  for (double b : busy) acc += b / makespan;
  return acc / static_cast<double>(busy.size());
}

namespace {

std::size_t block_count(std::size_t n, std::size_t block) {
  return (n + block - 1) / block;
}

// Extent of block index I along a dimension of n elements.
std::size_t block_lo(std::size_t idx, std::size_t block) {
  return idx * block;
}
std::size_t block_len(std::size_t idx, std::size_t block, std::size_t n) {
  const std::size_t lo = idx * block;
  return std::min(n - lo, block);
}

// Fraction of a full r x r x r block operation that a ragged block
// represents, so edge blocks are charged proportionally to their flops.
double vol_frac(std::size_t rows, std::size_t cols, std::size_t inner,
                std::size_t block) {
  const double full = static_cast<double>(block) * static_cast<double>(block) *
                      static_cast<double>(block);
  return static_cast<double>(rows) * static_cast<double>(cols) *
         static_cast<double>(inner) / full;
}

// Per-phase clock accounting: charge() accumulates work on a processor;
// finish() folds the phase's critical path into the report and clears.
// The clock also owns the run's timeline cursor and streams one compute
// span per busy processor per phase (and one broadcast span per line
// participant per comm phase) into the optional trace sink.
class PhaseClock {
 public:
  PhaseClock(std::size_t p, std::size_t q, VirtualReport& rep,
             TraceSink* sink)
      : p_(p), q_(q), charges_(p * q, 0.0), rep_(rep), sink_(sink) {}

  void set_step(std::size_t step) { step_ = step; }

  void charge(std::size_t proc, double amount) {
    charges_[proc] += amount;
    rep_.busy[proc] += amount;
    rep_.block_ops += 1;
  }

  void finish(const char* name) {
    double worst = 0.0;
    for (std::size_t id = 0; id < charges_.size(); ++id) {
      if (charges_[id] > 0.0)
        trace_span(sink_, TraceEventKind::kComputeBlock, id, now_,
                   charges_[id], step_, name);
      worst = std::max(worst, charges_[id]);
      charges_[id] = 0.0;
    }
    rep_.compute_time += worst;
    rep_.makespan += worst;
    now_ += worst;
  }

  /// One BSP broadcast phase along grid rows (`lines_are_rows`) or
  /// columns; charges the combined cost and emits per-line spans.
  void broadcast_phase(const NetworkModel& net,
                       const std::vector<double>& line_costs,
                       const std::vector<std::size_t>& line_blocks,
                       bool lines_are_rows, const char* name) {
    emit_broadcast_spans(sink_, net, line_costs, line_blocks, lines_are_rows,
                         p_, q_, now_, step_, name);
    comm(combine_broadcasts(net, line_costs), nullptr);
  }

  /// Unstructured communication charge (pivot-row exchanges). With a
  /// non-null `name`, emits a machine-lane broadcast span — the exchange
  /// is not attributed to individual processors by this BSP model.
  void comm(double amount, const char* name) {
    if (name != nullptr && amount > 0.0)
      trace_span(sink_, TraceEventKind::kBroadcast, kMachineLane, now_,
                 amount, step_, name);
    rep_.comm_time += amount;
    rep_.makespan += amount;
    now_ += amount;
  }

 private:
  std::size_t p_, q_;
  std::vector<double> charges_;
  VirtualReport& rep_;
  TraceSink* sink_;
  std::size_t step_ = 0;
  double now_ = 0.0;
};

// Parallel numerics for the bulk-synchronous runtime: each phase's block
// operations are queued into `batch` (one lane per grid processor — or,
// for QR's shared-accumulator pass, one lane per trailing block column)
// and flushed through `engine` at the phase boundary. Lanes run their ops
// in submission order and touch disjoint memory, so results are
// bit-identical to the serial path for any thread count; the PhaseClock
// never leaves the host thread.

}  // namespace

VirtualReport run_distributed_mmm(const Machine& machine,
                                  const Distribution2D& dist,
                                  const ConstMatrixView& a,
                                  const ConstMatrixView& b, MatrixView c,
                                  std::size_t block,
                                  const KernelCosts& costs,
                                  TraceSink* sink,
                                  const RuntimeOptions& opts) {
  machine.net.validate();
  const std::size_t n = a.rows();
  HG_CHECK(a.cols() == n && b.rows() == n && b.cols() == n &&
               c.rows() == n && c.cols() == n,
           "run_distributed_mmm needs square same-size A, B, C");
  HG_CHECK(block > 0, "block size must be positive");
  HG_CHECK(machine.grid.rows() == dist.grid_rows() &&
               machine.grid.cols() == dist.grid_cols(),
           "machine grid does not match distribution");

  const CycleTimeGrid& grid = machine.grid;
  const std::size_t p = grid.rows(), q = grid.cols();
  const std::size_t nb = block_count(n, block);

  VirtualReport rep;
  rep.busy.assign(p * q, 0.0);
  c.fill(0.0);

  PhaseClock clock(p, q, rep, sink);
  ParallelEngine engine(opts.threads);
  TaskBatch batch(p * q);
  std::vector<double> line_costs;
  std::vector<std::size_t> a_rows(p), b_cols(q);

  for (std::size_t k = 0; k < nb; ++k) {
    clock.set_step(k);
    // Broadcast phase: the A column panel travels along grid rows, the B
    // row panel along grid columns.
    std::fill(a_rows.begin(), a_rows.end(), 0);
    std::fill(b_cols.begin(), b_cols.end(), 0);
    for (std::size_t i = 0; i < nb; ++i) a_rows[dist.owner(i, k).row] += 1;
    for (std::size_t j = 0; j < nb; ++j) b_cols[dist.owner(k, j).col] += 1;
    line_costs.clear();
    for (std::size_t gi = 0; gi < p; ++gi)
      line_costs.push_back(machine.net.broadcast_cost(a_rows[gi], q));
    clock.broadcast_phase(machine.net, line_costs, a_rows, true, "a-panel");
    line_costs.clear();
    for (std::size_t gj = 0; gj < q; ++gj)
      line_costs.push_back(machine.net.broadcast_cost(b_cols[gj], p));
    clock.broadcast_phase(machine.net, line_costs, b_cols, false, "b-panel");

    // Update phase: C_IJ += A_Ik * B_kJ on every block, executed by its
    // owner at its speed.
    const std::size_t klen = block_len(k, block, n);
    for (std::size_t bi = 0; bi < nb; ++bi) {
      const std::size_t ilo = block_lo(bi, block);
      const std::size_t ilen = block_len(bi, block, n);
      for (std::size_t bj = 0; bj < nb; ++bj) {
        const std::size_t jlo = block_lo(bj, block);
        const std::size_t jlen = block_len(bj, block, n);
        const ProcCoord o = dist.owner(bi, bj);
        const ConstMatrixView av =
            a.block(ilo, block_lo(k, block), ilen, klen);
        const ConstMatrixView bv =
            b.block(block_lo(k, block), jlo, klen, jlen);
        const MatrixView cv = c.block(ilo, jlo, ilen, jlen);
        batch.add(o.row * q + o.col, [av, bv, cv] { gemm_update(av, bv, cv); });
        clock.charge(o.row * q + o.col,
                     grid(o.row, o.col) * costs.update *
                         vol_frac(ilen, jlen, klen, block));
      }
    }
    batch.run(engine);
    clock.finish("update");
  }
  return rep;
}

VirtualLuReport run_distributed_lu(const Machine& machine,
                                   const Distribution2D& dist, MatrixView a,
                                   std::size_t block,
                                   const KernelCosts& costs,
                                   TraceSink* sink,
                                   const RuntimeOptions& opts) {
  machine.net.validate();
  const std::size_t n = a.rows();
  HG_CHECK(a.cols() == n, "run_distributed_lu needs a square matrix");
  HG_CHECK(block > 0, "block size must be positive");
  HG_CHECK(machine.grid.rows() == dist.grid_rows() &&
               machine.grid.cols() == dist.grid_cols(),
           "machine grid does not match distribution");

  const CycleTimeGrid& grid = machine.grid;
  const std::size_t p = grid.rows(), q = grid.cols();
  const std::size_t nb = block_count(n, block);

  VirtualLuReport rep;
  rep.busy.assign(p * q, 0.0);
  PhaseClock clock(p, q, rep, sink);
  ParallelEngine engine(opts.threads);
  TaskBatch batch(p * q);
  std::vector<double> line_costs;
  std::vector<std::size_t> l_rows(p), u_cols(q);

  for (std::size_t k = 0; k < nb; ++k) {
    clock.set_step(k);
    const std::size_t klo = block_lo(k, block);
    const std::size_t klen = block_len(k, block, n);
    const ProcCoord diag = dist.owner(k, k);

    // --- Panel phase: factor the diagonal block, then form the L21 blocks
    // below it (A_Ik := A_Ik * inv(U11)), all inside the owner grid column.
    MatrixView diag_block = a.block(klo, klo, klen, klen);
    if (!lu_factor_nopivot(diag_block)) {
      // Zero pivot: the triangular solves below would divide by zero.
      // Report failure and stop; the matrix is left partially factored.
      rep.factorized = false;
      return rep;
    }
    clock.charge(diag.row * q + diag.col,
                 grid(diag.row, diag.col) * costs.panel_factor *
                     vol_frac(klen, klen, klen, block));
    for (std::size_t bi = k + 1; bi < nb; ++bi) {
      const std::size_t ilo = block_lo(bi, block);
      const std::size_t ilen = block_len(bi, block, n);
      const ProcCoord o = dist.owner(bi, k);
      const MatrixView lv = a.block(ilo, klo, ilen, klen);
      batch.add(o.row * q + o.col,
                [diag_block, lv] { trsm_right_upper(diag_block, lv); });
      clock.charge(o.row * q + o.col,
                   grid(o.row, o.col) * costs.panel_factor *
                       vol_frac(ilen, klen, klen, block));
    }
    batch.run(engine);
    clock.finish("panel");

    // --- Horizontal broadcast of the L panel.
    std::fill(l_rows.begin(), l_rows.end(), 0);
    for (std::size_t i = k; i < nb; ++i) l_rows[dist.owner(i, k).row] += 1;
    line_costs.clear();
    for (std::size_t gi = 0; gi < p; ++gi)
      line_costs.push_back(machine.net.broadcast_cost(l_rows[gi], q));
    clock.broadcast_phase(machine.net, line_costs, l_rows, true, "l-bcast");

    // --- Row phase: U12 blocks (A_kJ := inv(L11) * A_kJ) in the owner row.
    for (std::size_t bj = k + 1; bj < nb; ++bj) {
      const std::size_t jlo = block_lo(bj, block);
      const std::size_t jlen = block_len(bj, block, n);
      const ProcCoord o = dist.owner(k, bj);
      const MatrixView uv = a.block(klo, jlo, klen, jlen);
      batch.add(o.row * q + o.col,
                [diag_block, uv] { trsm_left_lower_unit(diag_block, uv); });
      clock.charge(o.row * q + o.col,
                   grid(o.row, o.col) * costs.trsm *
                       vol_frac(klen, jlen, klen, block));
    }
    batch.run(engine);
    clock.finish("row");

    // --- Vertical broadcast of the U panel.
    std::fill(u_cols.begin(), u_cols.end(), 0);
    for (std::size_t j = k + 1; j < nb; ++j)
      u_cols[dist.owner(k, j).col] += 1;
    line_costs.clear();
    for (std::size_t gj = 0; gj < q; ++gj)
      line_costs.push_back(machine.net.broadcast_cost(u_cols[gj], p));
    clock.broadcast_phase(machine.net, line_costs, u_cols, false, "u-bcast");

    // --- Trailing update A_IJ -= A_Ik * A_kJ.
    for (std::size_t bi = k + 1; bi < nb; ++bi) {
      const std::size_t ilo = block_lo(bi, block);
      const std::size_t ilen = block_len(bi, block, n);
      for (std::size_t bj = k + 1; bj < nb; ++bj) {
        const std::size_t jlo = block_lo(bj, block);
        const std::size_t jlen = block_len(bj, block, n);
        const ProcCoord o = dist.owner(bi, bj);
        const ConstMatrixView lv = a.block(ilo, klo, ilen, klen);
        const ConstMatrixView uv = a.block(klo, jlo, klen, jlen);
        const MatrixView tv = a.block(ilo, jlo, ilen, jlen);
        batch.add(o.row * q + o.col, [lv, uv, tv] {
          gemm(Trans::No, Trans::No, -1.0, lv, uv, 1.0, tv);
        });
        clock.charge(o.row * q + o.col,
                     grid(o.row, o.col) * costs.update *
                         vol_frac(ilen, jlen, klen, block));
      }
    }
    batch.run(engine);
    clock.finish("update");
  }
  return rep;
}

VirtualPivotedLuReport run_distributed_lu_pivoted(const Machine& machine,
                                                  const Distribution2D& dist,
                                                  MatrixView a,
                                                  std::size_t block,
                                                  const KernelCosts& costs,
                                                  TraceSink* sink,
                                                  const RuntimeOptions& opts) {
  machine.net.validate();
  const std::size_t n = a.rows();
  HG_CHECK(a.cols() == n, "run_distributed_lu_pivoted needs a square matrix");
  HG_CHECK(block > 0, "block size must be positive");
  HG_CHECK(machine.grid.rows() == dist.grid_rows() &&
               machine.grid.cols() == dist.grid_cols(),
           "machine grid does not match distribution");

  const CycleTimeGrid& grid = machine.grid;
  const std::size_t p = grid.rows(), q = grid.cols();
  const std::size_t nb = block_count(n, block);

  VirtualPivotedLuReport rep;
  rep.busy.assign(p * q, 0.0);
  rep.piv.resize(n);
  PhaseClock clock(p, q, rep, sink);
  ParallelEngine engine(opts.threads);
  TaskBatch batch(p * q);
  std::vector<double> line_costs;
  std::vector<std::size_t> l_rows(p), u_cols(q);

  for (std::size_t k = 0; k < nb; ++k) {
    clock.set_step(k);
    const std::size_t klo = block_lo(k, block);
    const std::size_t b = block_len(k, block, n);

    // --- Panel phase with partial pivoting (ScaLAPACK pdgetf2): factor
    // the full-height panel; the pivot row interchange moves data, never
    // ownership.
    MatrixView panel = a.block(klo, klo, n - klo, b);
    const LuResult pres = lu_factor_unblocked(panel);
    rep.singular = rep.singular || pres.singular;
    double swap_comm = 0.0;
    for (std::size_t i = 0; i < b; ++i) {
      const std::size_t g1 = klo + i;
      const std::size_t g2 = klo + pres.piv[i];
      rep.piv[g1] = g2;
      if (g1 != g2) {
        // The panel factorization already swapped the panel columns; swap
        // the remaining columns of the two rows.
        for (std::size_t j = 0; j < klo; ++j) std::swap(a(g1, j), a(g2, j));
        for (std::size_t j = klo + b; j < n; ++j)
          std::swap(a(g1, j), a(g2, j));
        const std::size_t o1 = dist.owner(g1 / block, 0).row;
        const std::size_t o2 = dist.owner(g2 / block, 0).row;
        if (o1 != o2)
          swap_comm += 2.0 * (machine.net.latency +
                              static_cast<double>(nb) *
                                  machine.net.block_transfer);
      }
    }
    clock.comm(swap_comm, "pivot-swaps");
    for (std::size_t bi = k; bi < nb; ++bi) {
      const ProcCoord o = dist.owner(bi, k);
      clock.charge(o.row * q + o.col,
                   grid(o.row, o.col) * costs.panel_factor *
                       vol_frac(block_len(bi, block, n), b, b, block));
    }
    clock.finish("panel");

    // --- Broadcast the L panel along grid rows.
    std::fill(l_rows.begin(), l_rows.end(), 0);
    for (std::size_t i = k; i < nb; ++i) l_rows[dist.owner(i, k).row] += 1;
    line_costs.clear();
    for (std::size_t gi = 0; gi < p; ++gi)
      line_costs.push_back(machine.net.broadcast_cost(l_rows[gi], q));
    clock.broadcast_phase(machine.net, line_costs, l_rows, true, "l-bcast");

    if (k + 1 >= nb) continue;

    // --- Row phase: U12 := inv(L11) * A12.
    ConstMatrixView l11 = a.block(klo, klo, b, b);
    for (std::size_t bj = k + 1; bj < nb; ++bj) {
      const std::size_t jlo = block_lo(bj, block);
      const std::size_t jlen = block_len(bj, block, n);
      const ProcCoord o = dist.owner(k, bj);
      const MatrixView uv = a.block(klo, jlo, b, jlen);
      batch.add(o.row * q + o.col,
                [l11, uv] { trsm_left_lower_unit(l11, uv); });
      clock.charge(o.row * q + o.col,
                   grid(o.row, o.col) * costs.trsm *
                       vol_frac(b, jlen, b, block));
    }
    batch.run(engine);
    clock.finish("row");

    // --- Broadcast the U panel down grid columns.
    std::fill(u_cols.begin(), u_cols.end(), 0);
    for (std::size_t j = k + 1; j < nb; ++j)
      u_cols[dist.owner(k, j).col] += 1;
    line_costs.clear();
    for (std::size_t gj = 0; gj < q; ++gj)
      line_costs.push_back(machine.net.broadcast_cost(u_cols[gj], p));
    clock.broadcast_phase(machine.net, line_costs, u_cols, false, "u-bcast");

    // --- Trailing update.
    for (std::size_t bi = k + 1; bi < nb; ++bi) {
      const std::size_t ilo = block_lo(bi, block);
      const std::size_t ilen = block_len(bi, block, n);
      for (std::size_t bj = k + 1; bj < nb; ++bj) {
        const std::size_t jlo = block_lo(bj, block);
        const std::size_t jlen = block_len(bj, block, n);
        const ProcCoord o = dist.owner(bi, bj);
        const ConstMatrixView lv = a.block(ilo, klo, ilen, b);
        const ConstMatrixView uv = a.block(klo, jlo, b, jlen);
        const MatrixView tv = a.block(ilo, jlo, ilen, jlen);
        batch.add(o.row * q + o.col, [lv, uv, tv] {
          gemm(Trans::No, Trans::No, -1.0, lv, uv, 1.0, tv);
        });
        clock.charge(o.row * q + o.col,
                     grid(o.row, o.col) * costs.update *
                         vol_frac(ilen, jlen, b, block));
      }
    }
    batch.run(engine);
    clock.finish("update");
  }
  return rep;
}

VirtualQrReport run_distributed_qr(const Machine& machine,
                                   const Distribution2D& dist, MatrixView a,
                                   std::size_t block,
                                   const KernelCosts& costs,
                                   TraceSink* sink,
                                   const RuntimeOptions& opts) {
  machine.net.validate();
  const std::size_t rows = a.rows();
  const std::size_t cols = a.cols();
  HG_CHECK(rows >= cols, "run_distributed_qr needs rows >= cols, got "
                             << rows << "x" << cols);
  HG_CHECK(block > 0, "block size must be positive");
  HG_CHECK(machine.grid.rows() == dist.grid_rows() &&
               machine.grid.cols() == dist.grid_cols(),
           "machine grid does not match distribution");

  const CycleTimeGrid& grid = machine.grid;
  const std::size_t p = grid.rows(), q = grid.cols();
  const std::size_t nbr = block_count(rows, block);
  const std::size_t nbc = block_count(cols, block);

  VirtualQrReport rep;
  rep.busy.assign(p * q, 0.0);
  rep.tau.reserve(cols);
  PhaseClock clock(p, q, rep, sink);
  ParallelEngine engine(opts.threads);
  // QR's W-accumulation sums over block rows into one w block per trailing
  // block column: group by block column (not owner) so each shared
  // accumulator is written by exactly one lane, in ascending-bi order.
  TaskBatch batch(std::max<std::size_t>(p * q, 1));
  std::vector<double> line_costs;
  std::vector<std::size_t> v_rows(p), w_cols(q);

  for (std::size_t k = 0; k < nbc; ++k) {
    clock.set_step(k);
    const std::size_t klo = block_lo(k, block);
    const std::size_t b = block_len(k, block, cols);

    // --- Panel phase: Householder QR of the current column panel,
    // executed block-row by block-row inside the owner grid column.
    MatrixView panel = a.block(klo, klo, rows - klo, b);
    const QrResult pres = qr_factor(panel);
    rep.tau.insert(rep.tau.end(), pres.tau.begin(), pres.tau.end());
    for (std::size_t bi = k; bi < nbr; ++bi) {
      const ProcCoord o = dist.owner(bi, k);
      clock.charge(o.row * q + o.col,
                   grid(o.row, o.col) * costs.qr_factor *
                       vol_frac(block_len(bi, block, rows), b, b, block));
    }
    clock.finish("panel");

    if (k + 1 >= nbc) continue;

    // --- Broadcast the V panel along grid rows, then the reduced W panel
    // along grid columns (same ring pattern as LU's L and U panels).
    std::fill(v_rows.begin(), v_rows.end(), 0);
    for (std::size_t i = k; i < nbr; ++i) v_rows[dist.owner(i, k).row] += 1;
    line_costs.clear();
    for (std::size_t gi = 0; gi < p; ++gi)
      line_costs.push_back(machine.net.broadcast_cost(v_rows[gi], q));
    clock.broadcast_phase(machine.net, line_costs, v_rows, true, "v-bcast");

    std::fill(w_cols.begin(), w_cols.end(), 0);
    for (std::size_t j = k + 1; j < nbc; ++j)
      w_cols[dist.owner(k, j).col] += 1;
    line_costs.clear();
    for (std::size_t gj = 0; gj < q; ++gj)
      line_costs.push_back(machine.net.broadcast_cost(w_cols[gj], p));
    clock.broadcast_phase(machine.net, line_costs, w_cols, false, "w-bcast");

    // --- Compact-WY trailing update over columns J > k, rows I >= k:
    //   C := C - V * (T^T * (V^T * C)).
    // V is the unit lower trapezoid of the panel; T from larft.
    const std::size_t mrest = rows - klo;
    Matrix v(mrest, b, 0.0);
    for (std::size_t j = 0; j < b; ++j) {
      v(j, j) = 1.0;
      for (std::size_t i = j + 1; i < mrest; ++i) v(i, j) = panel(i, j);
    }
    const Matrix t = qr_form_t(panel, pres.tau);
    const std::size_t ntrail = cols - (klo + b);
    Matrix w(b, ntrail, 0.0);

    // Pass 1: W = V^T * C, accumulated block by block so each owner is
    // charged for its share (half of the qr_update weight).
    for (std::size_t bi = k; bi < nbr; ++bi) {
      const std::size_t ilo = block_lo(bi, block);
      const std::size_t ilen = block_len(bi, block, rows);
      for (std::size_t bj = k + 1; bj < nbc; ++bj) {
        const std::size_t jlo = block_lo(bj, block);
        const std::size_t jlen = block_len(bj, block, cols);
        const ProcCoord o = dist.owner(bi, bj);
        const ConstMatrixView vv = v.view().block(ilo - klo, 0, ilen, b);
        const ConstMatrixView cv = a.block(ilo, jlo, ilen, jlen);
        const MatrixView wv = w.view().block(0, jlo - (klo + b), b, jlen);
        batch.add((bj - (k + 1)) % batch.groups(), [vv, cv, wv] {
          gemm(Trans::Yes, Trans::No, 1.0, vv, cv, 1.0, wv);
        });
        clock.charge(o.row * q + o.col,
                     grid(o.row, o.col) * 0.5 * costs.qr_update *
                         vol_frac(ilen, jlen, b, block));
      }
    }
    batch.run(engine);
    clock.finish("w-accumulate");

    // Y = T^T * W (small b x ntrail product; charged to the diagonal
    // block's owner as part of the panel critical path).
    Matrix y(b, ntrail, 0.0);
    gemm(Trans::Yes, Trans::No, 1.0, t.view(), w.view(), 0.0, y.view());
    {
      const ProcCoord o = dist.owner(k, k);
      clock.charge(o.row * q + o.col,
                   grid(o.row, o.col) * costs.qr_update *
                       vol_frac(b, ntrail, b, block));
      clock.finish("t-multiply");
    }

    // Pass 2: C -= V * Y, again block by block.
    for (std::size_t bi = k; bi < nbr; ++bi) {
      const std::size_t ilo = block_lo(bi, block);
      const std::size_t ilen = block_len(bi, block, rows);
      for (std::size_t bj = k + 1; bj < nbc; ++bj) {
        const std::size_t jlo = block_lo(bj, block);
        const std::size_t jlen = block_len(bj, block, cols);
        const ProcCoord o = dist.owner(bi, bj);
        const ConstMatrixView vv = v.view().block(ilo - klo, 0, ilen, b);
        const ConstMatrixView yv =
            y.view().block(0, jlo - (klo + b), b, jlen);
        const MatrixView cv = a.block(ilo, jlo, ilen, jlen);
        batch.add(o.row * q + o.col, [vv, yv, cv] {
          gemm(Trans::No, Trans::No, -1.0, vv, yv, 1.0, cv);
        });
        clock.charge(o.row * q + o.col,
                     grid(o.row, o.col) * 0.5 * costs.qr_update *
                         vol_frac(ilen, jlen, b, block));
      }
    }
    batch.run(engine);
    clock.finish("update");
  }
  return rep;
}

VirtualCholeskyReport run_distributed_cholesky(const Machine& machine,
                                               const Distribution2D& dist,
                                               MatrixView a,
                                               std::size_t block,
                                               const KernelCosts& costs,
                                               TraceSink* sink,
                                               const RuntimeOptions& opts) {
  machine.net.validate();
  const std::size_t n = a.rows();
  HG_CHECK(a.cols() == n, "run_distributed_cholesky needs a square matrix");
  HG_CHECK(block > 0, "block size must be positive");
  HG_CHECK(machine.grid.rows() == dist.grid_rows() &&
               machine.grid.cols() == dist.grid_cols(),
           "machine grid does not match distribution");

  const CycleTimeGrid& grid = machine.grid;
  const std::size_t p = grid.rows(), q = grid.cols();
  const std::size_t nb = block_count(n, block);

  VirtualCholeskyReport rep;
  rep.busy.assign(p * q, 0.0);
  PhaseClock clock(p, q, rep, sink);
  ParallelEngine engine(opts.threads);
  TaskBatch batch(p * q);
  std::vector<double> line_costs;
  std::vector<std::size_t> l_rows(p), l_cols(q);

  for (std::size_t k = 0; k < nb; ++k) {
    clock.set_step(k);
    const std::size_t klo = block_lo(k, block);
    const std::size_t b = block_len(k, block, n);
    const ProcCoord diag = dist.owner(k, k);

    // --- Panel phase: factor the diagonal block, solve L21.
    MatrixView a11 = a.block(klo, klo, b, b);
    if (!cholesky_factor_unblocked(a11)) {
      rep.factorized = false;
      return rep;
    }
    clock.charge(diag.row * q + diag.col,
                 grid(diag.row, diag.col) * costs.chol_factor *
                     vol_frac(b, b, b, block));
    for (std::size_t bi = k + 1; bi < nb; ++bi) {
      const std::size_t ilo = block_lo(bi, block);
      const std::size_t ilen = block_len(bi, block, n);
      const ProcCoord o = dist.owner(bi, k);
      const MatrixView lv = a.block(ilo, klo, ilen, b);
      batch.add(o.row * q + o.col,
                [a11, lv] { trsm_right_lower_transposed(a11, lv); });
      clock.charge(o.row * q + o.col,
                   grid(o.row, o.col) * costs.chol_factor *
                       vol_frac(ilen, b, b, block));
    }
    batch.run(engine);
    clock.finish("panel");

    // --- Broadcast L21 along grid rows and (transposed) along columns.
    std::fill(l_rows.begin(), l_rows.end(), 0);
    std::fill(l_cols.begin(), l_cols.end(), 0);
    for (std::size_t i = k + 1; i < nb; ++i) {
      l_rows[dist.owner(i, k).row] += 1;
      l_cols[dist.owner(k, i).col] += 1;
    }
    line_costs.clear();
    for (std::size_t gi = 0; gi < p; ++gi)
      line_costs.push_back(machine.net.broadcast_cost(l_rows[gi], q));
    clock.broadcast_phase(machine.net, line_costs, l_rows, true,
                          "l-bcast-row");
    line_costs.clear();
    for (std::size_t gj = 0; gj < q; ++gj)
      line_costs.push_back(machine.net.broadcast_cost(l_cols[gj], p));
    clock.broadcast_phase(machine.net, line_costs, l_cols, false,
                          "l-bcast-col");

    // --- Symmetric trailing update (lower blocks only):
    //   A_IJ -= L_I * L_J^T for I >= J > k.
    for (std::size_t bi = k + 1; bi < nb; ++bi) {
      const std::size_t ilo = block_lo(bi, block);
      const std::size_t ilen = block_len(bi, block, n);
      for (std::size_t bj = k + 1; bj <= bi; ++bj) {
        const std::size_t jlo = block_lo(bj, block);
        const std::size_t jlen = block_len(bj, block, n);
        const ProcCoord o = dist.owner(bi, bj);
        const ConstMatrixView li = a.block(ilo, klo, ilen, b);
        const ConstMatrixView lj = a.block(jlo, klo, jlen, b);
        const MatrixView tv = a.block(ilo, jlo, ilen, jlen);
        batch.add(o.row * q + o.col, [li, lj, tv] {
          gemm(Trans::No, Trans::Yes, -1.0, li, lj, 1.0, tv);
        });
        clock.charge(o.row * q + o.col,
                     grid(o.row, o.col) * costs.update *
                         vol_frac(ilen, jlen, b, block));
      }
    }
    batch.run(engine);
    clock.finish("update");
  }
  return rep;
}

}  // namespace hetgrid
