// Virtual-time execution of the distributed kernels with real numerics.
//
// The discrete simulator (src/sim) charges costs without touching data;
// this runtime actually *executes* the blocked outer-product multiplication
// and the right-looking LU, block operation by block operation, under any
// periodic distribution. Each grid processor carries a virtual clock that
// advances by (its cycle-time x phase weight) per block operation it owns;
// steps are bulk-synchronous, so the per-step makespan is the slowest
// processor's clock, exactly as on the simulated HNOW.
//
// The point is end-to-end validation: the computed product / factorization
// must match the sequential kernels bit-for-bit in structure (same blocked
// arithmetic => same rounding up to associativity of disjoint blocks), and
// the accumulated virtual makespans must reproduce the simulator's compute
// times. MPI is deliberately not used: the companion paper [4] holds the
// real-machine experiments, and a message-passing harness would add nothing
// to the load-balance question studied here.
#pragma once

#include <cstddef>
#include <vector>

#include "dist/distribution.hpp"
#include "matrix/matrix.hpp"
#include "sim/simulator.hpp"

namespace hetgrid {

struct VirtualReport {
  double makespan = 0.0;      // virtual seconds, including broadcast charges
  double compute_time = 0.0;  // critical-path compute portion
  double comm_time = 0.0;     // broadcast portion
  /// Per-processor total busy compute time.
  std::vector<double> busy;
  std::size_t block_ops = 0;  // block operations executed

  double average_utilization() const;
};

/// Executes C = A * B (all n x n) by the outer-product algorithm with
/// square blocks of `block` elements (ragged edge blocks allowed) under
/// `dist` on `machine`. C is overwritten.
///
/// All run_distributed_* entry points honor `opts.threads`: each phase's
/// independent block operations fan out across a worker pool while the
/// PhaseClock accounting (charges, spans, makespan) runs entirely on the
/// host thread — reports, traces, and numerics are bit-identical for any
/// thread count (see doc/parallel_runtime.md).
VirtualReport run_distributed_mmm(const Machine& machine,
                                  const Distribution2D& dist,
                                  const ConstMatrixView& a,
                                  const ConstMatrixView& b, MatrixView c,
                                  std::size_t block,
                                  const KernelCosts& costs = {},
                                  TraceSink* sink = nullptr,
                                  const RuntimeOptions& opts = {});

/// Executes the right-looking blocked LU *without pivoting* in place (the
/// matrix must be safely factorizable without pivoting, e.g. diagonally
/// dominant; pivoting would migrate rows across processor rows and change
/// ownership — ScaLAPACK physically swaps data, which the virtual runtime
/// does not model). Returns false in the report's `factorized` flag if a
/// zero pivot was hit.
struct VirtualLuReport : VirtualReport {
  bool factorized = true;
};

VirtualLuReport run_distributed_lu(const Machine& machine,
                                   const Distribution2D& dist, MatrixView a,
                                   std::size_t block,
                                   const KernelCosts& costs = {},
                                   TraceSink* sink = nullptr,
                                   const RuntimeOptions& opts = {});

/// Right-looking blocked LU *with partial pivoting*, ScaLAPACK-style: the
/// pivot search scans the whole column (charged to the owner column's
/// processors), and the row interchange physically swaps the two matrix
/// rows everywhere — ownership of block coordinates never changes, data
/// moves instead. Each swap between rows owned by different grid rows is
/// charged one exchange message per involved block column pair.
struct VirtualPivotedLuReport : VirtualReport {
  std::vector<std::size_t> piv;  // LAPACK-style ipiv (0-based)
  bool singular = false;
};

VirtualPivotedLuReport run_distributed_lu_pivoted(
    const Machine& machine, const Distribution2D& dist, MatrixView a,
    std::size_t block, const KernelCosts& costs = {},
    TraceSink* sink = nullptr, const RuntimeOptions& opts = {});

/// Executes the right-looking blocked Householder QR in place (compact-WY
/// trailing updates: C -= V (T^T (V^T C))). Accepts rectangular matrices
/// with rows >= cols (least-squares systems). On return the upper triangle
/// of `a` holds R, the strict lower trapezoid the Householder vectors, and
/// the report carries the concatenated tau scalars (same packing as
/// qr_factor, so qr_form_q / qr_apply_qt work on the result).
struct VirtualQrReport : VirtualReport {
  std::vector<double> tau;
};

VirtualQrReport run_distributed_qr(const Machine& machine,
                                   const Distribution2D& dist, MatrixView a,
                                   std::size_t block,
                                   const KernelCosts& costs = {},
                                   TraceSink* sink = nullptr,
                                   const RuntimeOptions& opts = {});

/// Executes the right-looking blocked Cholesky (lower variant) in place on
/// a symmetric positive definite matrix. Only the lower triangle is
/// referenced/overwritten. `factorized` is false if a non-positive pivot
/// was hit (matrix not SPD).
struct VirtualCholeskyReport : VirtualReport {
  bool factorized = true;
};

VirtualCholeskyReport run_distributed_cholesky(const Machine& machine,
                                               const Distribution2D& dist,
                                               MatrixView a,
                                               std::size_t block,
                                               const KernelCosts& costs = {},
                                               TraceSink* sink = nullptr,
                                               const RuntimeOptions& opts = {});

}  // namespace hetgrid
