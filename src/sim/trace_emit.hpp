// Shared helpers for the bulk-synchronous backends (src/sim, src/runtime):
// combining per-line ring-broadcast costs under a topology, and emitting
// the matching trace spans into an optional TraceSink.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "obs/trace.hpp"
#include "sim/network.hpp"

namespace hetgrid {

/// Combines per-line broadcast costs according to the topology: on
/// Ethernet every transmission serializes across the machine; on a
/// switched network the lines proceed in parallel.
inline double combine_broadcasts(const NetworkModel& net,
                                 const std::vector<double>& line_costs) {
  double total = 0.0, worst = 0.0;
  for (double c : line_costs) {
    total += c;
    worst = std::max(worst, c);
  }
  return net.topology == Topology::kEthernet ? total : worst;
}

/// Emits one broadcast span per processor of each line with nonzero cost.
/// On Ethernet the lines serialize across the shared medium (matching
/// combine_broadcasts); on a switched network every line starts at
/// `start`. `line_blocks[line]` is the panel-block count travelling on
/// that line.
inline void emit_broadcast_spans(TraceSink* sink, const NetworkModel& net,
                                 const std::vector<double>& line_costs,
                                 const std::vector<std::size_t>& line_blocks,
                                 bool lines_are_rows, std::size_t p,
                                 std::size_t q, double start,
                                 std::size_t step, const char* name) {
  if (sink == nullptr) return;
  double offset = 0.0;
  for (std::size_t line = 0; line < line_costs.size(); ++line) {
    const double cost = line_costs[line];
    if (cost > 0.0) {
      const double line_start =
          net.topology == Topology::kEthernet ? start + offset : start;
      const std::size_t span = lines_are_rows ? q : p;
      for (std::size_t m = 0; m < span; ++m) {
        const std::size_t proc =
            lines_are_rows ? line * q + m : m * q + line;
        trace_span(sink, TraceEventKind::kBroadcast, proc, line_start, cost,
                   step, name, static_cast<double>(line_blocks[line]));
      }
    }
    offset += cost;
  }
}

}  // namespace hetgrid
