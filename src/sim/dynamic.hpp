// Dynamic (rebalancing) variants of the bulk-synchronous simulators.
//
// The static simulators in sim/simulator.hpp price the paper's kernels
// under fixed cycle-times and a fixed distribution. These variants add the
// two ingredients of the online-rebalancing study (doc/rebalance.md):
//
//   * time-varying effective rates — every per-step charge is scaled by
//     `opts.trace` (sim/drift.hpp), so a straggler that slows down
//     mid-run is priced step by step;
//   * the panel-boundary rebalancer — with `opts.rebalance = kPanel` an
//     internal CycleTimeEstimator (configured by `opts.estimator`) watches
//     the traced charges, and at every boundary plan_rebalance() re-solves
//     the trailing allocation from the estimated rates. When it acts, the
//     live row/column slot maps are rewritten and the migration bill is
//     charged to that step's communication time.
//
// With `opts.rebalance = kOff` and an empty trace the reports are
// bit-identical to the static simulators — the dynamic path multiplies by
// no factor and consults the original distribution directly. Rebalancing
// requires an aligned (grid-pattern) distribution, exactly like the
// message-passing runtime.
#pragma once

#include "core/rebalance.hpp"
#include "sim/simulator.hpp"

namespace hetgrid {

/// A SimReport plus the rebalancer's activity. `resolves` counts the
/// boundaries where a re-solve actually ran (guards passed), `migrations`
/// the boundaries that acted, `blocks_moved` the total owner changes
/// (already including the per-kernel block multiplier — 3 for MMM).
struct DynamicSimReport : SimReport {
  std::size_t resolves = 0;
  std::size_t migrations = 0;
  std::size_t blocks_moved = 0;
  std::vector<RebalanceEvent> events;  // applied rebalances, step order
};

DynamicSimReport simulate_mmm_dynamic(const Machine& machine,
                                      const Distribution2D& dist,
                                      std::size_t nb,
                                      const RuntimeOptions& opts = {},
                                      const KernelCosts& costs = {});

DynamicSimReport simulate_lu_dynamic(const Machine& machine,
                                     const Distribution2D& dist,
                                     std::size_t nb,
                                     const RuntimeOptions& opts = {},
                                     const KernelCosts& costs = {});

DynamicSimReport simulate_qr_dynamic(const Machine& machine,
                                     const Distribution2D& dist,
                                     std::size_t nb,
                                     const RuntimeOptions& opts = {},
                                     const KernelCosts& costs = {});

DynamicSimReport simulate_cholesky_dynamic(const Machine& machine,
                                           const Distribution2D& dist,
                                           std::size_t nb,
                                           const RuntimeOptions& opts = {},
                                           const KernelCosts& costs = {});

}  // namespace hetgrid
