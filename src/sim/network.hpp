// Communication model for the simulated heterogeneous network of
// workstations (paper Section 2.2).
//
// Two interconnect families are modelled:
//  * Ethernet — a shared medium: every transmission in the machine
//    serializes, but a physical broadcast reaches a whole row/column in one
//    transmission.
//  * Switched (Myrinet-like) — independent links: different processors
//    communicate in parallel, while each single processor's communications
//    stay sequential (the paper's assumption).
//
// Broadcasts along grid rows/columns are ring broadcasts; with pipelining
// (`pipelined = true`, ScaLAPACK's steady-state assumption) the per-step
// cost of a ring broadcast is one hop, otherwise the message crosses all
// hops within the step.
#pragma once

#include <cstddef>

#include "util/check.hpp"

namespace hetgrid {

enum class Topology {
  kEthernet,
  kSwitched,
};

struct NetworkModel {
  Topology topology = Topology::kSwitched;
  /// Per-message start-up cost (seconds).
  double latency = 1.0e-4;
  /// Transfer time for one r x r block (seconds).
  double block_transfer = 2.0e-4;
  /// Ring broadcasts amortize across steps (steady-state pipelining).
  bool pipelined = true;

  void validate() const {
    HG_CHECK(latency >= 0.0 && block_transfer >= 0.0,
             "network costs must be nonnegative");
  }

  /// Cost charged to one ring broadcast of `blocks` blocks along a line of
  /// `line_size` processors, as seen by the critical path of one step.
  double broadcast_cost(std::size_t blocks, std::size_t line_size) const {
    if (line_size <= 1 || blocks == 0) return 0.0;
    const double one_hop =
        latency + static_cast<double>(blocks) * block_transfer;
    if (topology == Topology::kEthernet) return one_hop;  // bus broadcast
    const std::size_t hops = pipelined ? 1 : line_size - 1;
    return one_hop * static_cast<double>(hops);
  }

  /// Zero-cost network, for isolating pure load-balance effects.
  static NetworkModel free() { return {Topology::kSwitched, 0.0, 0.0, true}; }
};

}  // namespace hetgrid
