#include "sim/dynamic.hpp"

#include <algorithm>
#include <vector>

#include "obs/imbalance.hpp"
#include "sim/trace_emit.hpp"

namespace hetgrid {

namespace {

// Per-run state shared by the four dynamic kernels: the live slot maps,
// the internal estimator the rebalancer plans from, and the traced-rate
// accessors. With rebalancing off the owner/rate hooks reduce exactly to
// the static simulators' arithmetic (no factor multiply, distribution
// consulted directly), which is what keeps the off-reports bit-identical.
struct DynState {
  const Machine& machine;
  const Distribution2D& dist;
  const RuntimeOptions& opts;
  bool on;  // opts.rebalance == kPanel
  std::size_t p, q;
  std::vector<std::size_t> row_of, col_of;  // live slot maps (on only)
  CycleTimeEstimator est;

  DynState(const Machine& m, const Distribution2D& d, std::size_t nbr,
           std::size_t nbc, const RuntimeOptions& o)
      : machine(m),
        dist(d),
        opts(o),
        on(o.rebalance == RuntimeOptions::Rebalance::kPanel),
        p(m.grid.rows()),
        q(m.grid.cols()),
        est(o.estimator) {
    m.net.validate();
    HG_CHECK(p == d.grid_rows() && q == d.grid_cols(),
             "machine grid " << p << "x" << q
                             << " does not match distribution grid "
                             << d.grid_rows() << "x" << d.grid_cols());
    if (!on) return;
    HG_CHECK(
        neighbor_census(d).aligned,
        "rebalance=panel requires an aligned (grid-pattern) distribution");
    row_of.resize(nbr);
    col_of.resize(nbc);
    for (std::size_t i = 0; i < nbr; ++i) row_of[i] = d.owner(i, 0).row;
    for (std::size_t j = 0; j < nbc; ++j) col_of[j] = d.owner(0, j).col;
  }

  ProcCoord owner(std::size_t bi, std::size_t bj) const {
    if (!on) return dist.owner(bi, bj);
    return ProcCoord{row_of[bi], col_of[bj]};
  }

  /// Effective cycle-time of processor (gi, gj) at step `k` under the
  /// drift trace. An empty trace performs no multiply at all.
  double rate(std::size_t gi, std::size_t gj, std::size_t k) const {
    const double t = machine.grid(gi, gj);
    return opts.trace.empty() ? t : t * opts.trace.factor(gi * q + gj, k);
  }

  /// Aggregate speed sum_ij 1/rate at step `k` — the denominator of the
  /// perfectly balanced bound under the traced rates.
  double capacity(std::size_t k) const {
    double cap = 0.0;
    for (std::size_t gi = 0; gi < p; ++gi)
      for (std::size_t gj = 0; gj < q; ++gj) cap += 1.0 / rate(gi, gj, k);
    return cap;
  }

  void sample(std::size_t gi, std::size_t gj, ObsOp op, double units,
              double seconds, std::size_t k, RunObservation* obs) {
    if (on) est.sample(gi * q + gj, op, units, seconds, k);
    if (obs != nullptr)
      obs->estimator.sample(gi * q + gj, op, units, seconds, k);
  }

  /// Plans one boundary rebalance over `region` (absolute block
  /// coordinates) and applies it to the live maps when it acts. Returns
  /// the migration seconds charged to this step's communication time.
  double boundary(std::size_t k, RebalanceRegion region,
                  DynamicSimReport& rep, RunObservation* obs) {
    if (!on || k == 0) return 0.0;
    // plan_rebalance keeps every line at >= 1 slot; a trailing region
    // smaller than the grid cannot satisfy that, so the last boundaries
    // simply hold.
    if (region.row_hi - region.row_lo < p ||
        region.col_hi - region.col_lo < q)
      return 0.0;
    rep.resolves += 1;
    region.per_block_move_cost =
        machine.net.latency + machine.net.block_transfer;
    const CycleTimeGrid rates = estimated_rate_grid(
        est.estimates(), machine.grid, ObsOp::kUpdate,
        est.options().min_samples);
    // Plan over the trailing sub-maps only (region shifted to the origin),
    // so every rounded slot lands on a row/column that still has work.
    std::vector<std::size_t> sub_rows(row_of.begin() + region.row_lo,
                                      row_of.begin() + region.row_hi);
    std::vector<std::size_t> sub_cols(col_of.begin() + region.col_lo,
                                      col_of.begin() + region.col_hi);
    RebalanceRegion local = region;
    local.row_hi -= local.row_lo;
    local.col_hi -= local.col_lo;
    local.row_lo = 0;
    local.col_lo = 0;
    const RebalanceDecision d = plan_rebalance(rates, sub_rows, sub_cols,
                                               local, opts.rebalance_opts);
    if (!d.act) return 0.0;
    std::copy(d.row_map.begin(), d.row_map.end(),
              row_of.begin() + static_cast<std::ptrdiff_t>(region.row_lo));
    std::copy(d.col_map.begin(), d.col_map.end(),
              col_of.begin() + static_cast<std::ptrdiff_t>(region.col_lo));
    rep.migrations += 1;
    rep.blocks_moved += d.blocks_to_move;
    rep.events.push_back({k, d.current_sweep, d.proposed_sweep,
                          d.migration_cost, d.blocks_to_move});
    if (obs != nullptr) obs->rebalances.push_back(rep.events.back());
    return d.migration_cost;
  }
};

}  // namespace

DynamicSimReport simulate_mmm_dynamic(const Machine& machine,
                                      const Distribution2D& dist,
                                      std::size_t nb,
                                      const RuntimeOptions& opts,
                                      const KernelCosts& costs) {
  HG_CHECK(nb > 0, "matrix must have at least one block");
  DynState st(machine, dist, nb, nb, opts);
  const std::size_t p = st.p, q = st.q;
  RunObservation* const obs = installed_observation();

  DynamicSimReport rep;
  rep.kernel = "mmm";
  rep.distribution = dist.name();
  rep.busy.assign(p * q, 0.0);

  const double step_volume =
      static_cast<double>(nb) * static_cast<double>(nb) * costs.update;

  std::vector<std::size_t> owned(p * q), a_rows(p), b_cols(q);
  std::vector<double> h_costs(p), v_costs(q);

  for (std::size_t k = 0; k < nb; ++k) {
    // All of C updates at every step, so the priced region is the whole
    // matrix and one owner change drags A, B and C blocks along.
    const double migration = st.boundary(
        k,
        RebalanceRegion{0, nb, 0, nb, false, static_cast<double>(nb - k),
                        0.0, 3.0},
        rep, obs);

    // Ownership may change across boundaries, so recount per step.
    std::fill(owned.begin(), owned.end(), 0);
    for (std::size_t i = 0; i < nb; ++i)
      for (std::size_t j = 0; j < nb; ++j) {
        const ProcCoord o = st.owner(i, j);
        owned[o.row * q + o.col] += 1;
      }

    std::fill(a_rows.begin(), a_rows.end(), 0);
    std::fill(b_cols.begin(), b_cols.end(), 0);
    for (std::size_t i = 0; i < nb; ++i) a_rows[st.owner(i, k).row] += 1;
    for (std::size_t j = 0; j < nb; ++j) b_cols[st.owner(k, j).col] += 1;
    for (std::size_t i = 0; i < p; ++i)
      h_costs[i] = machine.net.broadcast_cost(a_rows[i], q);
    for (std::size_t j = 0; j < q; ++j)
      v_costs[j] = machine.net.broadcast_cost(b_cols[j], p);
    const double comm_step = combine_broadcasts(machine.net, h_costs) +
                             combine_broadcasts(machine.net, v_costs) +
                             migration;

    double compute_step = 0.0;
    for (std::size_t i = 0; i < p; ++i)
      for (std::size_t j = 0; j < q; ++j) {
        const double work = static_cast<double>(owned[i * q + j]) *
                            st.rate(i, j, k) * costs.update;
        compute_step = std::max(compute_step, work);
        rep.busy[i * q + j] += work;
        if (work > 0.0)
          st.sample(i, j, ObsOp::kUpdate,
                    static_cast<double>(owned[i * q + j]) * costs.update,
                    work, k, obs);
      }

    rep.comm_time += comm_step;
    rep.compute_time += compute_step;
    rep.steps.push_back({k, 0.0, 0.0, compute_step, comm_step});
    rep.perfect_compute_bound += step_volume / st.capacity(k);
    if (obs != nullptr) obs->estimator.panel_boundary(k);
  }
  rep.total_time = rep.comm_time + rep.compute_time;
  return rep;
}

namespace {

struct DynFactorizationWeights {
  double panel;
  double row;
  double update;
  const char* kernel;
};

DynamicSimReport simulate_factorization_dynamic(
    const Machine& machine, const Distribution2D& dist, std::size_t nb,
    const RuntimeOptions& opts, const DynFactorizationWeights& w) {
  HG_CHECK(nb > 0, "matrix must have at least one block");
  DynState st(machine, dist, nb, nb, opts);
  const std::size_t p = st.p, q = st.q;
  RunObservation* const obs = installed_observation();

  DynamicSimReport rep;
  rep.kernel = w.kernel;
  rep.distribution = dist.name();
  rep.busy.assign(p * q, 0.0);

  std::vector<std::size_t> trailing(p * q);
  std::vector<std::size_t> panel_rows(p), row_cols(q);
  std::vector<std::size_t> l_rows(p), u_cols(q);
  std::vector<double> line_costs;

  for (std::size_t k = 0; k < nb; ++k) {
    const double migration = st.boundary(
        k,
        RebalanceRegion{k, nb, k, nb, false,
                        static_cast<double>(nb - k) / 3.0, 0.0, 1.0},
        rep, obs);
    const ProcCoord diag = st.owner(k, k);

    std::fill(panel_rows.begin(), panel_rows.end(), 0);
    for (std::size_t i = k; i < nb; ++i)
      panel_rows[st.owner(i, k).row] += 1;
    double panel_time = 0.0;
    for (std::size_t gi = 0; gi < p; ++gi) {
      const double tt = static_cast<double>(panel_rows[gi]) *
                        st.rate(gi, diag.col, k) * w.panel;
      panel_time = std::max(panel_time, tt);
      rep.busy[gi * q + diag.col] += tt;
      if (tt > 0.0)
        st.sample(gi, diag.col, ObsOp::kPanel,
                  static_cast<double>(panel_rows[gi]) * w.panel, tt, k, obs);
    }

    std::fill(l_rows.begin(), l_rows.end(), 0);
    for (std::size_t i = k; i < nb; ++i) l_rows[st.owner(i, k).row] += 1;
    line_costs.clear();
    for (std::size_t gi = 0; gi < p; ++gi)
      line_costs.push_back(machine.net.broadcast_cost(l_rows[gi], q));
    const double l_bcast = combine_broadcasts(machine.net, line_costs);

    std::fill(row_cols.begin(), row_cols.end(), 0);
    for (std::size_t j = k + 1; j < nb; ++j)
      row_cols[st.owner(k, j).col] += 1;
    double row_time = 0.0;
    for (std::size_t gj = 0; gj < q; ++gj) {
      const double tt = static_cast<double>(row_cols[gj]) *
                        st.rate(diag.row, gj, k) * w.row;
      row_time = std::max(row_time, tt);
      rep.busy[diag.row * q + gj] += tt;
      if (tt > 0.0)
        st.sample(diag.row, gj, ObsOp::kSolve,
                  static_cast<double>(row_cols[gj]) * w.row, tt, k, obs);
    }

    std::fill(u_cols.begin(), u_cols.end(), 0);
    for (std::size_t j = k + 1; j < nb; ++j)
      u_cols[st.owner(k, j).col] += 1;
    line_costs.clear();
    for (std::size_t gj = 0; gj < q; ++gj)
      line_costs.push_back(machine.net.broadcast_cost(u_cols[gj], p));
    const double u_bcast = combine_broadcasts(machine.net, line_costs);

    std::fill(trailing.begin(), trailing.end(), 0);
    for (std::size_t i = k + 1; i < nb; ++i)
      for (std::size_t j = k + 1; j < nb; ++j) {
        const ProcCoord o = st.owner(i, j);
        trailing[o.row * q + o.col] += 1;
      }
    double update_time = 0.0;
    for (std::size_t gi = 0; gi < p; ++gi)
      for (std::size_t gj = 0; gj < q; ++gj) {
        const double tt = static_cast<double>(trailing[gi * q + gj]) *
                          st.rate(gi, gj, k) * w.update;
        update_time = std::max(update_time, tt);
        rep.busy[gi * q + gj] += tt;
        if (tt > 0.0)
          st.sample(gi, gj, ObsOp::kUpdate,
                    static_cast<double>(trailing[gi * q + gj]) * w.update,
                    tt, k, obs);
      }

    rep.compute_time += panel_time + row_time + update_time;
    rep.comm_time += l_bcast + u_bcast + migration;
    rep.steps.push_back(
        {k, panel_time, row_time, update_time, l_bcast + u_bcast + migration});
    if (obs != nullptr) obs->estimator.panel_boundary(k);

    const double panel_vol = static_cast<double>(nb - k) * w.panel;
    const double row_vol = static_cast<double>(nb - k - 1) * w.row;
    const double upd_vol = static_cast<double>(nb - k - 1) *
                           static_cast<double>(nb - k - 1) * w.update;
    rep.perfect_compute_bound +=
        (panel_vol + row_vol + upd_vol) / st.capacity(k);
  }
  rep.total_time = rep.compute_time + rep.comm_time;
  return rep;
}

}  // namespace

DynamicSimReport simulate_lu_dynamic(const Machine& machine,
                                     const Distribution2D& dist,
                                     std::size_t nb,
                                     const RuntimeOptions& opts,
                                     const KernelCosts& costs) {
  return simulate_factorization_dynamic(
      machine, dist, nb, opts,
      {costs.panel_factor, costs.trsm, costs.update, "lu"});
}

DynamicSimReport simulate_qr_dynamic(const Machine& machine,
                                     const Distribution2D& dist,
                                     std::size_t nb,
                                     const RuntimeOptions& opts,
                                     const KernelCosts& costs) {
  return simulate_factorization_dynamic(
      machine, dist, nb, opts,
      {costs.qr_factor, costs.qr_update, costs.qr_update, "qr"});
}

DynamicSimReport simulate_cholesky_dynamic(const Machine& machine,
                                           const Distribution2D& dist,
                                           std::size_t nb,
                                           const RuntimeOptions& opts,
                                           const KernelCosts& costs) {
  HG_CHECK(nb > 0, "matrix must have at least one block");
  DynState st(machine, dist, nb, nb, opts);
  const std::size_t p = st.p, q = st.q;
  RunObservation* const obs = installed_observation();

  DynamicSimReport rep;
  rep.kernel = "cholesky";
  rep.distribution = dist.name();
  rep.busy.assign(p * q, 0.0);

  std::vector<std::size_t> panel_rows(p), trailing(p * q), l_rows(p),
      l_cols(q);
  std::vector<double> line_costs;

  for (std::size_t k = 0; k < nb; ++k) {
    const double migration = st.boundary(
        k,
        RebalanceRegion{k, nb, k, nb, true,
                        static_cast<double>(nb - k) / 3.0, 0.0, 1.0},
        rep, obs);
    const ProcCoord diag = st.owner(k, k);

    std::fill(panel_rows.begin(), panel_rows.end(), 0);
    for (std::size_t i = k; i < nb; ++i)
      panel_rows[st.owner(i, k).row] += 1;
    double panel_time = 0.0;
    for (std::size_t gi = 0; gi < p; ++gi) {
      const double tt = static_cast<double>(panel_rows[gi]) *
                        st.rate(gi, diag.col, k) * costs.chol_factor;
      panel_time = std::max(panel_time, tt);
      rep.busy[gi * q + diag.col] += tt;
      if (tt > 0.0)
        st.sample(gi, diag.col, ObsOp::kPanel,
                  static_cast<double>(panel_rows[gi]) * costs.chol_factor,
                  tt, k, obs);
    }

    std::fill(l_rows.begin(), l_rows.end(), 0);
    std::fill(l_cols.begin(), l_cols.end(), 0);
    for (std::size_t i = k + 1; i < nb; ++i) {
      l_rows[st.owner(i, k).row] += 1;
      l_cols[st.owner(k, i).col] += 1;
    }
    line_costs.clear();
    for (std::size_t gi = 0; gi < p; ++gi)
      line_costs.push_back(machine.net.broadcast_cost(l_rows[gi], q));
    const double row_bcast = combine_broadcasts(machine.net, line_costs);
    line_costs.clear();
    for (std::size_t gj = 0; gj < q; ++gj)
      line_costs.push_back(machine.net.broadcast_cost(l_cols[gj], p));
    const double col_bcast = combine_broadcasts(machine.net, line_costs);
    const double bcast = row_bcast + col_bcast;

    std::fill(trailing.begin(), trailing.end(), 0);
    for (std::size_t i = k + 1; i < nb; ++i)
      for (std::size_t j = k + 1; j <= i; ++j) {
        const ProcCoord o = st.owner(i, j);
        trailing[o.row * q + o.col] += 1;
      }
    double update_time = 0.0;
    for (std::size_t gi = 0; gi < p; ++gi)
      for (std::size_t gj = 0; gj < q; ++gj) {
        const double tt = static_cast<double>(trailing[gi * q + gj]) *
                          st.rate(gi, gj, k) * costs.update;
        update_time = std::max(update_time, tt);
        rep.busy[gi * q + gj] += tt;
        if (tt > 0.0)
          st.sample(gi, gj, ObsOp::kUpdate,
                    static_cast<double>(trailing[gi * q + gj]) * costs.update,
                    tt, k, obs);
      }

    rep.compute_time += panel_time + update_time;
    rep.comm_time += bcast + migration;
    rep.steps.push_back({k, panel_time, 0.0, update_time, bcast + migration});
    if (obs != nullptr) obs->estimator.panel_boundary(k);

    const double m = static_cast<double>(nb - k - 1);
    rep.perfect_compute_bound +=
        (static_cast<double>(nb - k) * costs.chol_factor +
         m * (m + 1.0) / 2.0 * costs.update) /
        st.capacity(k);
  }
  rep.total_time = rep.compute_time + rep.comm_time;
  return rep;
}

}  // namespace hetgrid
