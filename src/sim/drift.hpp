// Time-varying cycle-time traces: the drift scenarios the rebalancer is
// evaluated against.
//
// A trace multiplies processor `proc`'s static cycle-time by a
// step-dependent factor, composing three primitive shapes:
//   - step:     factor f from step `onset` onwards (a node slows down);
//   - ramp:     factor interpolates 1 -> f over [onset, onset + length)
//               (gradual contention build-up);
//   - recovery: factor f over [onset, recovery), back to 1 afterwards
//               (a transient straggler that heals).
// Factors on the same processor multiply, so scenarios compose. An empty
// trace is the static paper model; backends skip the multiply entirely in
// that case, keeping drift-free runs bit-identical to pre-trace builds.
//
// Traces are plain data evaluated as a pure function of (proc, step) —
// deterministic in virtual time, independent of threads and schedulers.
#pragma once

#include <cstddef>
#include <vector>

#include "util/check.hpp"

namespace hetgrid {

class CycleTimeTrace {
 public:
  /// Processor `proc` runs `factor`x slower from step `onset` onwards.
  CycleTimeTrace& add_step(std::size_t proc, double factor,
                           std::size_t onset) {
    HG_CHECK(factor > 0.0, "trace factor must be positive");
    events_.push_back({proc, factor, onset, 0, 0});
    return *this;
  }

  /// Slowdown ramps linearly from 1 at `onset` to `factor` at
  /// `onset + length` (then stays there). length == 0 degenerates to a step.
  CycleTimeTrace& add_ramp(std::size_t proc, double factor, std::size_t onset,
                           std::size_t length) {
    HG_CHECK(factor > 0.0, "trace factor must be positive");
    events_.push_back({proc, factor, onset, length, 0});
    return *this;
  }

  /// Slowdown holds over [onset, recovery), then the processor heals.
  CycleTimeTrace& add_recovery(std::size_t proc, double factor,
                               std::size_t onset, std::size_t recovery) {
    HG_CHECK(factor > 0.0, "trace factor must be positive");
    HG_CHECK(recovery > onset, "recovery must come after onset");
    events_.push_back({proc, factor, onset, 0, recovery});
    return *this;
  }

  /// The straggler scenario preset (EXPERIMENTS section 16): each processor
  /// in `procs` runs `factor`x slower from `onset` on; `recover` > 0 heals
  /// them at that step.
  static CycleTimeTrace straggler(const std::vector<std::size_t>& procs,
                                  double factor, std::size_t onset,
                                  std::size_t recover = 0) {
    CycleTimeTrace t;
    for (std::size_t p : procs) {
      if (recover > 0)
        t.add_recovery(p, factor, onset, recover);
      else
        t.add_step(p, factor, onset);
    }
    return t;
  }

  bool empty() const { return events_.empty(); }

  /// Multiplicative slowdown of processor `proc` at kernel step `step`
  /// (1.0 when no event applies).
  double factor(std::size_t proc, std::size_t step) const {
    double f = 1.0;
    for (const Event& e : events_) {
      if (e.proc != proc || step < e.onset) continue;
      if (e.recovery > 0 && step >= e.recovery) continue;
      if (e.length > 0 && step < e.onset + e.length) {
        const double frac = static_cast<double>(step - e.onset + 1) /
                            static_cast<double>(e.length);
        f *= 1.0 + (e.factor - 1.0) * frac;
      } else {
        f *= e.factor;
      }
    }
    return f;
  }

 private:
  struct Event {
    std::size_t proc;
    double factor;
    std::size_t onset;
    std::size_t length;    // > 0: ramp over [onset, onset + length)
    std::size_t recovery;  // > 0: heal at this step
  };
  std::vector<Event> events_;
};

}  // namespace hetgrid
