#include "sim/simulator.hpp"

#include <algorithm>

#include "obs/imbalance.hpp"
#include "sim/trace_emit.hpp"

namespace hetgrid {

double SimReport::average_utilization() const {
  if (total_time <= 0.0 || busy.empty()) return 0.0;
  double acc = 0.0;
  for (double b : busy) acc += b / total_time;
  return acc / static_cast<double>(busy.size());
}

double SimReport::slowdown_vs_perfect() const {
  if (perfect_compute_bound <= 0.0) return 1.0;
  return total_time / perfect_compute_bound;
}

namespace {

void check_machine(const Machine& machine, const Distribution2D& dist) {
  machine.net.validate();
  HG_CHECK(machine.grid.rows() == dist.grid_rows() &&
               machine.grid.cols() == dist.grid_cols(),
           "machine grid " << machine.grid.rows() << "x" << machine.grid.cols()
                           << " does not match distribution grid "
                           << dist.grid_rows() << "x" << dist.grid_cols());
}

}  // namespace

SimReport simulate_mmm(const Machine& machine, const Distribution2D& dist,
                       std::size_t nb, const KernelCosts& costs,
                       TraceSink* sink) {
  check_machine(machine, dist);
  HG_CHECK(nb > 0, "matrix must have at least one block");
  const CycleTimeGrid& grid = machine.grid;
  const std::size_t p = grid.rows(), q = grid.cols();
  RunObservation* const obs = installed_observation();

  SimReport rep;
  rep.kernel = "mmm";
  rep.distribution = dist.name();
  rep.busy.assign(p * q, 0.0);

  // Ownership of the nb x nb block matrix (identical in every step: the
  // whole C matrix is updated at every k).
  std::vector<std::size_t> owned(p * q, 0);
  for (std::size_t i = 0; i < nb; ++i)
    for (std::size_t j = 0; j < nb; ++j) {
      const ProcCoord o = dist.owner(i, j);
      owned[o.row * q + o.col] += 1;
    }

  double compute_step = 0.0;
  for (std::size_t i = 0; i < p; ++i)
    for (std::size_t j = 0; j < q; ++j) {
      const double work = static_cast<double>(owned[i * q + j]) *
                          grid(i, j) * costs.update;
      compute_step = std::max(compute_step, work);
    }

  const double step_volume =
      static_cast<double>(nb) * static_cast<double>(nb) * costs.update;
  const double perfect_step = step_volume / grid.total_capacity();

  // Broadcast counts are computed per step: the A column panel at step k is
  // block column k, whose row ownership may depend on k for misaligned
  // distributions (Kalinov–Lastovetsky).
  std::vector<std::size_t> a_rows(p), b_cols(q);
  std::vector<double> h_costs(p), v_costs(q);

  double now = 0.0;
  for (std::size_t k = 0; k < nb; ++k) {
    std::fill(a_rows.begin(), a_rows.end(), 0);
    std::fill(b_cols.begin(), b_cols.end(), 0);
    for (std::size_t i = 0; i < nb; ++i) a_rows[dist.owner(i, k).row] += 1;
    for (std::size_t j = 0; j < nb; ++j) b_cols[dist.owner(k, j).col] += 1;
    for (std::size_t i = 0; i < p; ++i)
      h_costs[i] = machine.net.broadcast_cost(a_rows[i], q);
    for (std::size_t j = 0; j < q; ++j)
      v_costs[j] = machine.net.broadcast_cost(b_cols[j], p);

    const double h_comb = combine_broadcasts(machine.net, h_costs);
    const double v_comb = combine_broadcasts(machine.net, v_costs);
    const double comm_step = h_comb + v_comb;
    emit_broadcast_spans(sink, machine.net, h_costs, a_rows, true, p, q, now,
                         k, "a-panel");
    emit_broadcast_spans(sink, machine.net, v_costs, b_cols, false, p, q,
                         now + h_comb, k, "b-panel");
    rep.comm_time += comm_step;
    rep.compute_time += compute_step;
    rep.steps.push_back({k, 0.0, 0.0, compute_step, comm_step});
    rep.perfect_compute_bound += perfect_step;
    for (std::size_t i = 0; i < p; ++i)
      for (std::size_t j = 0; j < q; ++j) {
        const double work = static_cast<double>(owned[i * q + j]) *
                            grid(i, j) * costs.update;
        rep.busy[i * q + j] += work;
        if (work > 0.0) {
          trace_span(sink, TraceEventKind::kComputeBlock, i * q + j,
                     now + comm_step, work, k, "update");
          if (obs != nullptr)
            obs->estimator.sample(
                i * q + j, ObsOp::kUpdate,
                static_cast<double>(owned[i * q + j]) * costs.update, work, k);
        }
      }
    trace_span(sink, TraceEventKind::kPhase, kMachineLane, now,
               comm_step + compute_step, k, "step");
    if (obs != nullptr) obs->estimator.panel_boundary(k);
    now += comm_step + compute_step;
  }
  rep.total_time = rep.comm_time + rep.compute_time;
  return rep;
}

namespace {

struct FactorizationWeights {
  double panel;   // per block of the current column panel
  double row;     // per block of the current row panel (trsm / reflector)
  double update;  // per block of the trailing submatrix
  const char* kernel;
};

SimReport simulate_factorization(const Machine& machine,
                                 const Distribution2D& dist, std::size_t nb,
                                 const FactorizationWeights& w,
                                 TraceSink* sink) {
  check_machine(machine, dist);
  HG_CHECK(nb > 0, "matrix must have at least one block");
  const CycleTimeGrid& grid = machine.grid;
  const std::size_t p = grid.rows(), q = grid.cols();
  const double capacity = grid.total_capacity();
  RunObservation* const obs = installed_observation();

  SimReport rep;
  rep.kernel = w.kernel;
  rep.distribution = dist.name();
  rep.busy.assign(p * q, 0.0);

  std::vector<std::size_t> trailing(p * q);
  std::vector<std::size_t> panel_rows(p), row_cols(q);
  std::vector<std::size_t> l_rows(p), u_cols(q);
  std::vector<double> line_costs;

  double now = 0.0;
  for (std::size_t k = 0; k < nb; ++k) {
    const ProcCoord diag = dist.owner(k, k);

    // --- Panel factorization: column k, rows k..nb-1, done by the owner
    // grid column in parallel across its grid rows.
    std::fill(panel_rows.begin(), panel_rows.end(), 0);
    for (std::size_t i = k; i < nb; ++i)
      panel_rows[dist.owner(i, k).row] += 1;
    double panel_time = 0.0;
    for (std::size_t gi = 0; gi < p; ++gi) {
      const double tt = static_cast<double>(panel_rows[gi]) *
                        grid(gi, diag.col) * w.panel;
      panel_time = std::max(panel_time, tt);
      rep.busy[gi * q + diag.col] += tt;
      if (tt > 0.0) {
        trace_span(sink, TraceEventKind::kComputeBlock, gi * q + diag.col,
                   now, tt, k, "panel");
        if (obs != nullptr)
          obs->estimator.sample(gi * q + diag.col, ObsOp::kPanel,
                                static_cast<double>(panel_rows[gi]) * w.panel,
                                tt, k);
      }
    }

    // --- Horizontal broadcast of the L panel (one ring per grid row).
    std::fill(l_rows.begin(), l_rows.end(), 0);
    for (std::size_t i = k; i < nb; ++i) l_rows[dist.owner(i, k).row] += 1;
    line_costs.clear();
    for (std::size_t gi = 0; gi < p; ++gi)
      line_costs.push_back(machine.net.broadcast_cost(l_rows[gi], q));
    const double l_bcast = combine_broadcasts(machine.net, line_costs);
    emit_broadcast_spans(sink, machine.net, line_costs, l_rows, true, p, q,
                         now + panel_time, k, "l-bcast");

    // --- Row panel: row k, columns k+1..nb-1, solved by the owner grid row.
    std::fill(row_cols.begin(), row_cols.end(), 0);
    for (std::size_t j = k + 1; j < nb; ++j)
      row_cols[dist.owner(k, j).col] += 1;
    double row_time = 0.0;
    for (std::size_t gj = 0; gj < q; ++gj) {
      const double tt =
          static_cast<double>(row_cols[gj]) * grid(diag.row, gj) * w.row;
      row_time = std::max(row_time, tt);
      rep.busy[diag.row * q + gj] += tt;
      if (tt > 0.0) {
        trace_span(sink, TraceEventKind::kComputeBlock, diag.row * q + gj,
                   now + panel_time + l_bcast, tt, k, "row");
        if (obs != nullptr)
          obs->estimator.sample(diag.row * q + gj, ObsOp::kSolve,
                                static_cast<double>(row_cols[gj]) * w.row, tt,
                                k);
      }
    }

    // --- Vertical broadcast of the U row panel (one ring per grid column).
    std::fill(u_cols.begin(), u_cols.end(), 0);
    for (std::size_t j = k + 1; j < nb; ++j)
      u_cols[dist.owner(k, j).col] += 1;
    line_costs.clear();
    for (std::size_t gj = 0; gj < q; ++gj)
      line_costs.push_back(machine.net.broadcast_cost(u_cols[gj], p));
    const double u_bcast = combine_broadcasts(machine.net, line_costs);
    emit_broadcast_spans(sink, machine.net, line_costs, u_cols, false, p, q,
                         now + panel_time + l_bcast + row_time, k, "u-bcast");

    // --- Trailing update of blocks (I > k, J > k).
    std::fill(trailing.begin(), trailing.end(), 0);
    for (std::size_t i = k + 1; i < nb; ++i)
      for (std::size_t j = k + 1; j < nb; ++j) {
        const ProcCoord o = dist.owner(i, j);
        trailing[o.row * q + o.col] += 1;
      }
    const double update_start = now + panel_time + l_bcast + row_time + u_bcast;
    double update_time = 0.0;
    for (std::size_t gi = 0; gi < p; ++gi)
      for (std::size_t gj = 0; gj < q; ++gj) {
        const double tt = static_cast<double>(trailing[gi * q + gj]) *
                          grid(gi, gj) * w.update;
        update_time = std::max(update_time, tt);
        rep.busy[gi * q + gj] += tt;
        if (tt > 0.0) {
          trace_span(sink, TraceEventKind::kComputeBlock, gi * q + gj,
                     update_start, tt, k, "update");
          if (obs != nullptr)
            obs->estimator.sample(
                gi * q + gj, ObsOp::kUpdate,
                static_cast<double>(trailing[gi * q + gj]) * w.update, tt, k);
        }
      }

    rep.compute_time += panel_time + row_time + update_time;
    rep.comm_time += l_bcast + u_bcast;
    rep.steps.push_back(
        {k, panel_time, row_time, update_time, l_bcast + u_bcast});
    trace_span(sink, TraceEventKind::kPhase, kMachineLane, now,
               rep.steps.back().total(), k, "step");
    if (obs != nullptr) obs->estimator.panel_boundary(k);
    now += rep.steps.back().total();

    const double panel_vol =
        static_cast<double>(nb - k) * w.panel;
    const double row_vol = static_cast<double>(nb - k - 1) * w.row;
    const double upd_vol = static_cast<double>(nb - k - 1) *
                           static_cast<double>(nb - k - 1) * w.update;
    rep.perfect_compute_bound += (panel_vol + row_vol + upd_vol) / capacity;
  }
  rep.total_time = rep.compute_time + rep.comm_time;
  return rep;
}

}  // namespace

SimReport simulate_cholesky(const Machine& machine,
                            const Distribution2D& dist, std::size_t nb,
                            const KernelCosts& costs, TraceSink* sink) {
  check_machine(machine, dist);
  HG_CHECK(nb > 0, "matrix must have at least one block");
  const CycleTimeGrid& grid = machine.grid;
  const std::size_t p = grid.rows(), q = grid.cols();
  const double capacity = grid.total_capacity();
  RunObservation* const obs = installed_observation();

  SimReport rep;
  rep.kernel = "cholesky";
  rep.distribution = dist.name();
  rep.busy.assign(p * q, 0.0);

  std::vector<std::size_t> panel_rows(p), trailing(p * q), l_rows(p),
      l_cols(q);
  std::vector<double> line_costs;

  double now = 0.0;
  for (std::size_t k = 0; k < nb; ++k) {
    const ProcCoord diag = dist.owner(k, k);

    // Panel phase: factor the diagonal block and solve the sub-diagonal
    // panel inside the owner grid column.
    std::fill(panel_rows.begin(), panel_rows.end(), 0);
    for (std::size_t i = k; i < nb; ++i)
      panel_rows[dist.owner(i, k).row] += 1;
    double panel_time = 0.0;
    for (std::size_t gi = 0; gi < p; ++gi) {
      const double tt = static_cast<double>(panel_rows[gi]) *
                        grid(gi, diag.col) * costs.chol_factor;
      panel_time = std::max(panel_time, tt);
      rep.busy[gi * q + diag.col] += tt;
      if (tt > 0.0) {
        trace_span(sink, TraceEventKind::kComputeBlock, gi * q + diag.col,
                   now, tt, k, "panel");
        if (obs != nullptr)
          obs->estimator.sample(
              gi * q + diag.col, ObsOp::kPanel,
              static_cast<double>(panel_rows[gi]) * costs.chol_factor, tt, k);
      }
    }

    // The L21 panel travels along grid rows (as the left GEMM operand) and
    // along grid columns (transposed, as the right operand).
    std::fill(l_rows.begin(), l_rows.end(), 0);
    std::fill(l_cols.begin(), l_cols.end(), 0);
    for (std::size_t i = k + 1; i < nb; ++i) {
      l_rows[dist.owner(i, k).row] += 1;
      // Block (i, k) transposed is needed by the grid column owning block
      // column i of the trailing matrix.
      l_cols[dist.owner(k, i).col] += 1;
    }
    line_costs.clear();
    for (std::size_t gi = 0; gi < p; ++gi)
      line_costs.push_back(machine.net.broadcast_cost(l_rows[gi], q));
    const double row_bcast = combine_broadcasts(machine.net, line_costs);
    emit_broadcast_spans(sink, machine.net, line_costs, l_rows, true, p, q,
                         now + panel_time, k, "l-bcast-row");
    line_costs.clear();
    for (std::size_t gj = 0; gj < q; ++gj)
      line_costs.push_back(machine.net.broadcast_cost(l_cols[gj], p));
    const double col_bcast = combine_broadcasts(machine.net, line_costs);
    emit_broadcast_spans(sink, machine.net, line_costs, l_cols, false, p, q,
                         now + panel_time + row_bcast, k, "l-bcast-col");
    const double bcast = row_bcast + col_bcast;

    // Symmetric trailing update: only lower blocks (I >= J > k).
    std::fill(trailing.begin(), trailing.end(), 0);
    for (std::size_t i = k + 1; i < nb; ++i)
      for (std::size_t j = k + 1; j <= i; ++j) {
        const ProcCoord o = dist.owner(i, j);
        trailing[o.row * q + o.col] += 1;
      }
    double update_time = 0.0;
    for (std::size_t gi = 0; gi < p; ++gi)
      for (std::size_t gj = 0; gj < q; ++gj) {
        const double tt = static_cast<double>(trailing[gi * q + gj]) *
                          grid(gi, gj) * costs.update;
        update_time = std::max(update_time, tt);
        rep.busy[gi * q + gj] += tt;
        if (tt > 0.0) {
          trace_span(sink, TraceEventKind::kComputeBlock, gi * q + gj,
                     now + panel_time + bcast, tt, k, "update");
          if (obs != nullptr)
            obs->estimator.sample(
                gi * q + gj, ObsOp::kUpdate,
                static_cast<double>(trailing[gi * q + gj]) * costs.update, tt,
                k);
        }
      }

    rep.compute_time += panel_time + update_time;
    rep.comm_time += bcast;
    rep.steps.push_back({k, panel_time, 0.0, update_time, bcast});
    trace_span(sink, TraceEventKind::kPhase, kMachineLane, now,
               rep.steps.back().total(), k, "step");
    if (obs != nullptr) obs->estimator.panel_boundary(k);
    now += rep.steps.back().total();

    const double m = static_cast<double>(nb - k - 1);
    rep.perfect_compute_bound +=
        (static_cast<double>(nb - k) * costs.chol_factor +
         m * (m + 1.0) / 2.0 * costs.update) /
        capacity;
  }
  rep.total_time = rep.compute_time + rep.comm_time;
  return rep;
}

SimReport simulate_lu(const Machine& machine, const Distribution2D& dist,
                      std::size_t nb, const KernelCosts& costs,
                      TraceSink* sink) {
  return simulate_factorization(
      machine, dist, nb,
      {costs.panel_factor, costs.trsm, costs.update, "lu"}, sink);
}

SimReport simulate_qr(const Machine& machine, const Distribution2D& dist,
                      std::size_t nb, const KernelCosts& costs,
                      TraceSink* sink) {
  return simulate_factorization(
      machine, dist, nb,
      {costs.qr_factor, costs.qr_update, costs.qr_update, "qr"}, sink);
}

}  // namespace hetgrid
