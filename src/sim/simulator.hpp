// Bulk-synchronous simulation of the paper's three kernels on a
// heterogeneous 2D grid under any periodic block distribution.
//
// The simulator replays the outer-product matrix multiplication
// (Section 3.1) and the right-looking LU / QR factorizations (Section 3.2)
// step by step, charging each processor its owned block operations at its
// cycle-time and each row/column broadcast at the network model's cost. It
// reports the makespan, its compute/communication split, per-processor busy
// times, and the per-step perfect-balance lower bound — everything the
// strategy-comparison benchmarks need.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/cycle_time_grid.hpp"
#include "core/rebalance.hpp"
#include "dist/distribution.hpp"
#include "obs/cycle_estimator.hpp"
#include "obs/trace.hpp"
#include "sim/drift.hpp"
#include "sim/network.hpp"

namespace hetgrid {

/// A simulated machine: cycle-times are seconds per r x r block update.
struct Machine {
  CycleTimeGrid grid;
  NetworkModel net;
};

/// Timeline record for one bulk-synchronous step of a simulated kernel.
struct StepRecord {
  std::size_t step = 0;  // k, the block step index
  double panel = 0.0;    // panel-factorization phase critical path
  double row = 0.0;      // row-panel (trsm/reflector) phase (LU/QR only)
  double update = 0.0;   // trailing / full update phase critical path
  double comm = 0.0;     // broadcast phases

  double total() const { return panel + row + update + comm; }
};

struct SimReport {
  std::string kernel;        // "mmm", "lu", "qr", "cholesky"
  std::string distribution;  // distribution name
  double total_time = 0.0;   // simulated makespan (seconds)
  double compute_time = 0.0; // sum over steps of the compute critical path
  double comm_time = 0.0;    // sum over steps of the broadcast critical path
  /// Per-processor busy compute time, indexed [grid_row * q + grid_col].
  std::vector<double> busy;
  /// Sum over steps of (step work volume / total grid capacity): the
  /// makespan of a perfectly balanced, zero-communication execution with
  /// the same bulk-synchronous step structure.
  double perfect_compute_bound = 0.0;
  /// Per-step timeline (one record per block step, in order).
  std::vector<StepRecord> steps;

  /// Average fraction of the makespan processors spend computing.
  double average_utilization() const;
  /// total_time relative to the perfect bound (>= 1; 1 means optimal).
  double slowdown_vs_perfect() const;
};

/// Relative flop weights of the kernels' phases, in units of one block
/// update (= one r x r GEMM accumulation, the paper's cycle-time unit).
struct KernelCosts {
  double panel_factor = 0.5;  // LU panel: half the flops of a full update
  double trsm = 0.5;          // triangular solve on one block
  double update = 1.0;        // rank-r GEMM update of one block
  double qr_factor = 2.0;     // Householder panel on one block
  double qr_update = 2.0;     // apply block reflector to one block
  double chol_factor = 0.5;   // Cholesky panel work per block (half of LU's
                              // GEMM update, like the LU panel)
};

/// Host-execution options for the numerics-executing backends (the
/// virtual-time runtime in src/runtime and the message-passing runtime in
/// src/mp). `threads` fans each step's independent per-processor block
/// updates across a util/thread_pool worker pool; 0 means all hardware
/// threads, 1 (the default) runs serially inline. Virtual clocks, message
/// counters, and trace spans are always computed on the host thread, and
/// the floating-point results are bit-identical for every thread count
/// (see doc/parallel_runtime.md for the contract).
///
/// `scheduler` selects how the MP runtime orders its real block math:
/// kBarrier flushes a TaskBatch at every phase boundary (bulk-synchronous,
/// the fallback), kDag emits a util/task_graph whose block-versioned
/// read/write dependencies alone order the work, so step k+1's panel chain
/// overlaps step k's trailing updates. Both schedulers produce bit-identical
/// reports, traces, and matrices at every thread count.
/// `rebalance` arms the online rebalancer (doc/rebalance.md): at every
/// panel boundary the backend re-solves the allocation from its internal
/// cycle-time estimator (configured by `estimator`) and, when the
/// `rebalance_opts` thresholds clear, migrates trailing blocks to the new
/// owners. Off by default and bit-identical to pre-rebalance builds when
/// off. `trace` plants time-varying cycle-times (drift scenarios); an empty
/// trace is the static paper model.
struct RuntimeOptions {
  enum class Scheduler { kBarrier, kDag };
  enum class Rebalance { kOff, kPanel };

  unsigned threads = 1;
  Scheduler scheduler = Scheduler::kBarrier;
  Rebalance rebalance = Rebalance::kOff;
  RebalanceOptions rebalance_opts;
  CycleTimeEstimator::Options estimator;
  CycleTimeTrace trace;
};

/// Simulates C = A * B on nb x nb blocks (outer-product algorithm,
/// Section 3.1): nb steps, each with one horizontal and one vertical
/// broadcast followed by the full rank-r update sweep.
///
/// All simulate_* functions optionally stream their timeline into `sink`
/// (compute/broadcast spans per processor, one phase marker per step; see
/// doc/observability.md). A null sink costs nothing.
SimReport simulate_mmm(const Machine& machine, const Distribution2D& dist,
                       std::size_t nb, const KernelCosts& costs = {},
                       TraceSink* sink = nullptr);

/// Simulates the right-looking LU factorization (Section 3.2): at step k,
/// panel factorization in the owner column, L broadcast along rows, U
/// triangular solves in the owner row, U broadcast along columns, trailing
/// update of blocks (I > k, J > k).
SimReport simulate_lu(const Machine& machine, const Distribution2D& dist,
                      std::size_t nb, const KernelCosts& costs = {},
                      TraceSink* sink = nullptr);

/// Simulates the right-looking Householder QR (same communication pattern
/// as LU, heavier panel and update flops).
SimReport simulate_qr(const Machine& machine, const Distribution2D& dist,
                      std::size_t nb, const KernelCosts& costs = {},
                      TraceSink* sink = nullptr);

/// Simulates the right-looking Cholesky factorization (lower variant): at
/// step k the owner column factors/solves the panel, the L21 panel is
/// broadcast along rows and (transposed) along columns, and only the lower
/// trailing blocks (I >= J > k) are updated.
SimReport simulate_cholesky(const Machine& machine,
                            const Distribution2D& dist, std::size_t nb,
                            const KernelCosts& costs = {},
                            TraceSink* sink = nullptr);

}  // namespace hetgrid
