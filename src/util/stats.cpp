#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace hetgrid {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  HG_CHECK(n_ > 0, "mean of empty sample");
  return mean_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  HG_CHECK(n_ > 0, "min of empty sample");
  return min_;
}

double RunningStats::max() const {
  HG_CHECK(n_ > 0, "max of empty sample");
  return max_;
}

double RunningStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

double percentile(std::vector<double> values, double p) {
  HG_CHECK(!values.empty(), "percentile of empty sample");
  HG_CHECK(p >= 0.0 && p <= 100.0, "percentile p out of [0,100]: " << p);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double mean_of(const std::vector<double>& values) {
  HG_CHECK(!values.empty(), "mean of empty sample");
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double harmonic_mean(const std::vector<double>& values) {
  HG_CHECK(!values.empty(), "harmonic mean of empty sample");
  double inv_sum = 0.0;
  for (double v : values) {
    HG_CHECK(v > 0.0, "harmonic mean needs positive values, got " << v);
    inv_sum += 1.0 / v;
  }
  return static_cast<double>(values.size()) / inv_sum;
}

}  // namespace hetgrid
