#include "util/workloads.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hetgrid {

std::string workload_name(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kUniform:
      return "uniform";
    case WorkloadKind::kTwoGenerations:
      return "two-generations";
    case WorkloadKind::kPowerTail:
      return "power-tail";
    case WorkloadKind::kNearHomogeneous:
      return "near-homogeneous";
  }
  HG_INTERNAL_CHECK(false, "unknown workload kind");
}

std::vector<double> draw_cycle_times(WorkloadKind kind, std::size_t count,
                                     Rng& rng) {
  std::vector<double> t(count);
  switch (kind) {
    case WorkloadKind::kUniform:
      for (double& v : t) v = rng.uniform(1e-3, 1.0);
      break;
    case WorkloadKind::kTwoGenerations:
      for (std::size_t i = 0; i < count; ++i)
        t[i] = (i % 2 == 0) ? rng.uniform(0.1, 0.2) : rng.uniform(0.5, 1.0);
      rng.shuffle(t);
      break;
    case WorkloadKind::kPowerTail:
      for (double& v : t) v = std::min(10.0, 0.1 / rng.uniform(0.01, 1.0));
      break;
    case WorkloadKind::kNearHomogeneous:
      for (double& v : t) v = rng.uniform(0.45, 0.55);
      break;
  }
  for (double v : t) HG_INTERNAL_CHECK(v > 0.0, "nonpositive cycle-time");
  return t;
}

}  // namespace hetgrid
