#include "util/check.hpp"

namespace hetgrid::detail {

namespace {
std::string format(const char* kind, const char* expr, const char* file,
                   int line, const std::string& msg) {
  std::ostringstream oss;
  oss << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) oss << " — " << msg;
  return oss.str();
}
}  // namespace

void throw_precondition(const char* expr, const char* file, int line,
                        const std::string& msg) {
  throw PreconditionError(format("precondition", expr, file, line, msg));
}

void throw_internal(const char* expr, const char* file, int line,
                    const std::string& msg) {
  throw InternalError(format("internal invariant", expr, file, line, msg));
}

}  // namespace hetgrid::detail
