// Shared parallel execution engine for the numerics-executing backends.
//
// The distributed runtimes (src/runtime's virtual-time executor, src/mp's
// message-passing runtime) and the large-block GEMM path fan their real
// floating-point block updates out through this engine while all
// virtual-time accounting, message counting, and trace emission stays on
// the host thread. The determinism contract (doc/parallel_runtime.md):
//
//   * work is organized in *groups*; ops inside one group always execute
//     in submission order on a single worker;
//   * distinct groups touch disjoint memory, so their interleaving cannot
//     affect any result — bit-identical output for every thread count,
//     including the serial (threads == 1) inline path;
//   * run_groups()/run_indexed() block until every op has finished, i.e.
//     each batch is a synchronization point for the caller.
//
// With threads == 1 no pool is created and everything runs inline on the
// caller's thread — the serial path has zero synchronization overhead.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "util/thread_pool.hpp"

namespace hetgrid {

class ParallelEngine {
 public:
  /// `threads` as in RuntimeOptions: 0 means all hardware threads, 1 means
  /// serial inline execution (no pool), n > 1 spawns n workers.
  explicit ParallelEngine(unsigned threads);

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  unsigned threads() const { return threads_; }
  bool serial() const { return pool_ == nullptr; }

  /// Executes every op of every group and returns when all are done. One
  /// group is one unit of scheduling: its ops run in order on one worker.
  /// Groups are dispatched in index order (relevant only for the inline
  /// path; concurrent groups must be independent by contract).
  void run_groups(std::vector<std::vector<std::function<void()>>>& groups);

  /// Executes fn(0) ... fn(n-1), each index as its own group.
  void run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  unsigned threads_;
  std::unique_ptr<ThreadPool> pool_;  // null when serial
};

/// Accumulator for one fan-out round: ops are appended to per-group lanes
/// (in the runtimes, one lane per virtual processor) and flushed through
/// the engine at the phase boundary. Reusable across rounds.
class TaskBatch {
 public:
  explicit TaskBatch(std::size_t groups) : lanes_(groups), prev_ops_(groups) {}

  void add(std::size_t group, std::function<void()> op) {
    lanes_[group].push_back(std::move(op));
  }

  /// Pre-sizes every lane for roughly `ops` pending ops, so the first
  /// round does not grow its std::function vectors geometrically. Later
  /// rounds re-reserve from their own previous counts (see run()).
  void hint(std::size_t ops) {
    for (auto& lane : lanes_) lane.reserve(std::max(lane.capacity(), ops));
  }

  /// Runs all pending ops (blocking) and clears the lanes for reuse. Each
  /// lane is re-reserved to its previous round's count: successive rounds
  /// of one kernel queue similar op counts per processor, so the steady
  /// state performs no std::function vector reallocation.
  void run(ParallelEngine& engine) {
    for (std::size_t i = 0; i < lanes_.size(); ++i)
      prev_ops_[i] = lanes_[i].size();
    engine.run_groups(lanes_);
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      lanes_[i].clear();
      lanes_[i].reserve(prev_ops_[i]);
    }
  }

  std::size_t groups() const { return lanes_.size(); }

 private:
  std::vector<std::vector<std::function<void()>>> lanes_;
  std::vector<std::size_t> prev_ops_;  // per-lane op count of the last run
};

}  // namespace hetgrid
