#include "util/rng.hpp"

#include "util/check.hpp"

namespace hetgrid {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  HG_CHECK(lo <= hi, "uniform(lo,hi) needs lo <= hi, got " << lo << "," << hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::below(std::uint64_t n) {
  HG_CHECK(n > 0, "below(n) needs n > 0");
  // Lemire's rejection-free-in-expectation bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    std::uint64_t threshold = (-n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  HG_CHECK(lo <= hi, "range(lo,hi) needs lo <= hi");
  return lo + static_cast<std::int64_t>(
                  below(static_cast<std::uint64_t>(hi - lo) + 1));
}

std::vector<double> Rng::cycle_times(std::size_t count, double eps) {
  HG_CHECK(eps > 0.0 && eps < 1.0, "eps must be in (0,1), got " << eps);
  std::vector<double> t(count);
  for (auto& v : t) v = eps + (1.0 - eps) * uniform();
  return t;
}

}  // namespace hetgrid
