// Lightweight precondition / invariant checking for hetgrid.
//
// HG_CHECK is always on (cheap argument-validation at API boundaries);
// HG_DCHECK compiles out in release builds (hot-loop invariants).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hetgrid {

/// Thrown on violated API preconditions (bad sizes, out-of-range indices,
/// non-positive cycle-times, ...). Library code never aborts the process.
class PreconditionError : public std::invalid_argument {
 public:
  explicit PreconditionError(const std::string& what)
      : std::invalid_argument(what) {}
};

/// Thrown when an algorithm reaches a state that should be impossible
/// (a broken internal invariant rather than bad user input).
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] void throw_precondition(const char* expr, const char* file,
                                     int line, const std::string& msg);
[[noreturn]] void throw_internal(const char* expr, const char* file, int line,
                                 const std::string& msg);

}  // namespace detail

}  // namespace hetgrid

#define HG_CHECK(cond, msg)                                                  \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::std::ostringstream hg_oss_;                                          \
      hg_oss_ << msg; /* NOLINT */                                           \
      ::hetgrid::detail::throw_precondition(#cond, __FILE__, __LINE__,       \
                                            hg_oss_.str());                  \
    }                                                                        \
  } while (0)

#define HG_INTERNAL_CHECK(cond, msg)                                         \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::std::ostringstream hg_oss_;                                          \
      hg_oss_ << msg; /* NOLINT */                                           \
      ::hetgrid::detail::throw_internal(#cond, __FILE__, __LINE__,           \
                                        hg_oss_.str());                      \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define HG_DCHECK(cond, msg) \
  do {                       \
  } while (0)
#else
#define HG_DCHECK(cond, msg) HG_CHECK(cond, msg)
#endif
