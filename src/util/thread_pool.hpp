// A small fixed-size worker pool for CPU-bound fan-out (the parallel exact
// solver's prefix tasks, the parallel numerics engine, the dag scheduler's
// pump closures). Tasks are plain std::function<void()>; submit() is
// thread-safe, wait_idle() blocks until every submitted task has finished,
// and the pool is reusable across wait_idle() rounds.
//
// Scheduling: work stealing over per-worker deques. Each worker owns one
// deque; a task submitted *from* a pool worker is pushed onto that worker's
// own deque and popped LIFO (the task most recently produced is the one
// whose data is still hot), while a task submitted from outside the pool is
// placed round-robin across the deques. An idle worker first drains its own
// deque, then steals from its siblings' deques FIFO (the oldest — and, for
// divide-and-conquer producers, typically largest — unit of work migrates),
// so uneven-cost fan-outs rebalance instead of serializing behind a single
// shared queue and its mutex.
//
// Non-throwing contract: tasks must not throw. A task that lets an
// exception escape terminates the process, after printing a named
// "hetgrid: fatal: ThreadPool task threw ..." diagnostic to stderr —
// there is nowhere sensible to deliver the exception (the submitter may
// be gone, and half-finished sibling tasks cannot be unwound).
//
// Observability: when a metrics registry is installed (obs/metrics), the
// pool records a queue-depth gauge, task wait/run latency histograms, a
// submitted-task counter, and a cross-worker steal counter; when a
// profiler is running (obs/profiler), each task executes inside a
// "pool.task" span on a "worker-<i>" lane. With nothing installed the
// instrumentation is a pointer test.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hetgrid {

class ThreadPool {
 public:
  /// Spawns exactly `threads` workers (>= 1; pass resolve_threads(n) to map
  /// 0 to the hardware concurrency).
  explicit ThreadPool(unsigned threads);

  /// Drains every deque (pending tasks still run), then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; runs on some worker, in no particular order relative
  /// to other tasks. From a pool worker the task goes onto that worker's
  /// own deque (LIFO); from any other thread it is placed round-robin.
  /// Wakes at most one worker, and only when one is actually parked — a
  /// worker that failed to find work re-checks the pending count before
  /// sleeping, so no wakeup is ever missed and none is wasted.
  void submit(std::function<void()> task);

  /// Enqueues all tasks and wakes at most min(tasks, parked workers)
  /// workers — the batched form of submit() for fan-out callers (TaskGraph
  /// releasing several ready tasks at once, ParallelEngine flushing a
  /// batch). From outside the pool the tasks are spread round-robin, one
  /// per deque, so a fan-out starts balanced before any stealing happens.
  void submit_batch(std::vector<std::function<void()>> tasks);

  /// Blocks until every deque is empty and no task is executing.
  void wait_idle();

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Maps a user-facing thread-count request to a worker count: 0 means
  /// "all hardware threads" (at least 1), anything else is taken verbatim.
  static unsigned resolve_threads(unsigned requested);

 private:
  struct Item {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
    bool timed = false;  // enqueued stamp taken (metrics were installed)
  };

  // One worker's deque. back is the LIFO end (local push/pop); front is
  // the FIFO end (steals). unique_ptr keeps addresses stable in the vector
  // and each mutex on its own allocation (no false sharing of the locks).
  struct Deque {
    std::mutex mu;
    std::deque<Item> items;
  };

  void worker_loop(unsigned index);
  void push_item(Item&& item, std::size_t target);
  bool try_pop_local(unsigned self, Item& out);
  bool try_steal(unsigned self, Item& out);
  void run_item(Item& item);
  void maybe_wake(std::size_t count);

  std::vector<std::unique_ptr<Deque>> deques_;
  std::atomic<std::size_t> pending_{0};      // queued, not yet claimed
  std::atomic<std::size_t> outstanding_{0};  // queued + executing
  std::atomic<std::size_t> next_{0};         // round-robin external target
  std::atomic<bool> stop_{false};

  std::mutex sleep_mu_;              // guards waiting_ and the cv waits
  std::condition_variable cv_work_;  // signalled on submit and shutdown
  std::condition_variable cv_idle_;  // signalled when the pool goes idle
  std::size_t waiting_ = 0;          // workers parked in cv_work_.wait

  std::vector<std::thread> workers_;
};

}  // namespace hetgrid
