// A small fixed-size worker pool for CPU-bound fan-out (the parallel exact
// solver's prefix tasks, the parallel numerics engine). Tasks are plain
// std::function<void()>; submit() is thread-safe, wait_idle() blocks until
// every submitted task has finished, and the pool is reusable across
// wait_idle() rounds.
//
// Non-throwing contract: tasks must not throw. A task that lets an
// exception escape terminates the process, after printing a named
// "hetgrid: fatal: ThreadPool task threw ..." diagnostic to stderr —
// there is nowhere sensible to deliver the exception (the submitter may
// be gone, and half-finished sibling tasks cannot be unwound).
//
// Observability: when a metrics registry is installed (obs/metrics), the
// pool records a queue-depth gauge, task wait/run latency histograms, and
// a submitted-task counter; when a profiler is running (obs/profiler),
// each task executes inside a "pool.task" span on a "worker-<i>" lane.
// With nothing installed the instrumentation is a pointer test.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hetgrid {

class ThreadPool {
 public:
  /// Spawns exactly `threads` workers (>= 1; pass resolve_threads(n) to map
  /// 0 to the hardware concurrency).
  explicit ThreadPool(unsigned threads);

  /// Drains the queue (pending tasks still run), then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; runs on some worker, in no particular order relative
  /// to other tasks. Wakes at most one worker, and only when one is
  /// actually parked — busy workers re-check the queue before sleeping, so
  /// no wakeup is ever missed and none is wasted.
  void submit(std::function<void()> task);

  /// Enqueues all tasks under a single queue lock and wakes at most
  /// min(tasks, parked workers) workers — the batched form of submit() for
  /// fan-out callers (TaskGraph releasing several ready tasks at once).
  void submit_batch(std::vector<std::function<void()>> tasks);

  /// Blocks until the queue is empty and no task is executing.
  void wait_idle();

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Maps a user-facing thread-count request to a worker count: 0 means
  /// "all hardware threads" (at least 1), anything else is taken verbatim.
  static unsigned resolve_threads(unsigned requested);

 private:
  struct Item {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
    bool timed = false;  // enqueued stamp taken (metrics were installed)
  };

  void worker_loop(unsigned index);

  std::mutex mu_;
  std::condition_variable cv_work_;  // signalled on submit and shutdown
  std::condition_variable cv_idle_;  // signalled when the pool goes idle
  std::deque<Item> queue_;
  std::size_t in_flight_ = 0;  // tasks popped but not yet finished
  std::size_t waiting_ = 0;    // workers parked in cv_work_.wait
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace hetgrid
