// Deterministic, fast pseudo-random generation for experiments.
//
// All hetgrid experiments are seeded so that every table/figure regenerates
// bit-identically. The generator is xoshiro256** (public domain algorithm by
// Blackman & Vigna), which is far faster than std::mt19937_64 and has no
// observable bias for our use (uniform reals, small-range integers).
#pragma once

#include <cstdint>
#include <vector>

namespace hetgrid {

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit state words from `seed` via splitmix64, which
  /// guarantees a non-zero, well-mixed state for any seed value.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// `count` cycle-times drawn uniformly from (eps, 1]; never returns zero
  /// (a zero cycle-time would mean an infinitely fast processor).
  std::vector<double> cycle_times(std::size_t count, double eps = 1e-3);

  /// Fisher–Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace hetgrid
