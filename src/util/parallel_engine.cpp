#include "util/parallel_engine.hpp"

#include <chrono>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace hetgrid {

ParallelEngine::ParallelEngine(unsigned threads)
    : threads_(ThreadPool::resolve_threads(threads)) {
  if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_);
}

void ParallelEngine::run_groups(
    std::vector<std::vector<std::function<void()>>>& groups) {
  // Batch sizes are properties of the computation (not of the clock), so
  // they are recorded on the serial path too — a --threads=1 metrics
  // snapshot stays byte-stable. Flush *durations* are wall clock and are
  // recorded only when the pool actually runs.
  MetricsRegistry* metrics = installed_metrics();
  if (metrics != nullptr) {
    std::size_t ops = 0;
    for (const auto& group : groups) ops += group.size();
    metrics->histogram("engine.batch_ops").record(static_cast<double>(ops));
  }
  if (pool_ == nullptr) {
    for (auto& group : groups)
      for (auto& op : group) op();
    return;
  }
  std::chrono::steady_clock::time_point t0;
  if (metrics != nullptr) t0 = std::chrono::steady_clock::now();
  {
    ProfScope span("engine.flush");
    // One batched submit: a single queue lock and at most one wakeup per
    // parked worker instead of a lock + notify per group. The group
    // vectors outlive wait_idle() below, so capturing references is safe;
    // the queue mutex publishes the ops.
    std::vector<std::function<void()>> units;
    units.reserve(groups.size());
    for (auto& group : groups) {
      if (group.empty()) continue;
      units.emplace_back([&group] {
        for (auto& op : group) op();
      });
    }
    pool_->submit_batch(std::move(units));
    pool_->wait_idle();
  }
  if (metrics != nullptr)
    metrics->histogram("engine.flush_us")
        .record(std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
}

void ParallelEngine::run_indexed(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (pool_ == nullptr || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ProfScope span("engine.flush");
  // One batched submit: the pool spreads the units round-robin across the
  // worker deques, so an uneven-cost fan-out starts balanced and the slow
  // items get stolen instead of queueing behind one another. `fn` outlives
  // wait_idle() below, so capturing a reference is safe.
  std::vector<std::function<void()>> units;
  units.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    units.emplace_back([&fn, i] { fn(i); });
  pool_->submit_batch(std::move(units));
  pool_->wait_idle();
}

}  // namespace hetgrid
