#include "util/parallel_engine.hpp"

namespace hetgrid {

ParallelEngine::ParallelEngine(unsigned threads)
    : threads_(ThreadPool::resolve_threads(threads)) {
  if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_);
}

void ParallelEngine::run_groups(
    std::vector<std::vector<std::function<void()>>>& groups) {
  if (pool_ == nullptr) {
    for (auto& group : groups)
      for (auto& op : group) op();
    return;
  }
  for (auto& group : groups) {
    if (group.empty()) continue;
    // The group vector outlives wait_idle() below, so capturing a
    // reference is safe; submit()'s queue mutex publishes the ops.
    pool_->submit([&group] {
      for (auto& op : group) op();
    });
  }
  pool_->wait_idle();
}

void ParallelEngine::run_indexed(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (pool_ == nullptr || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  for (std::size_t i = 0; i < n; ++i)
    pool_->submit([&fn, i] { fn(i); });
  pool_->wait_idle();
}

}  // namespace hetgrid
