// Cycle-time generators beyond U(0,1]: realistic HNOW speed profiles for
// the robustness benchmarks.
//
// The paper's Section 4.4.4 draws cycle-times uniformly; real departments
// look different — a few fast new machines plus a tail of old ones, or two
// distinct hardware generations. These generators let the benches check
// that the solvers' behaviour is not an artifact of the uniform draw.
#pragma once

#include <string>
#include <vector>

#include "util/rng.hpp"

namespace hetgrid {

enum class WorkloadKind {
  kUniform,        // U(eps, 1] — the paper's draw
  kTwoGenerations, // half ~ U(0.1, 0.2], half ~ U(0.5, 1.0]
  kPowerTail,      // 1 / U(eps, 1]: few very fast, long slow tail, capped
  kNearHomogeneous // U(0.45, 0.55]: sanity regime, little to gain
};

/// All kinds, for sweeps.
inline const WorkloadKind kAllWorkloadKinds[] = {
    WorkloadKind::kUniform, WorkloadKind::kTwoGenerations,
    WorkloadKind::kPowerTail, WorkloadKind::kNearHomogeneous};

std::string workload_name(WorkloadKind kind);

/// Draws `count` positive cycle-times of the given profile.
std::vector<double> draw_cycle_times(WorkloadKind kind, std::size_t count,
                                     Rng& rng);

}  // namespace hetgrid
