#include "util/cli.hpp"

#include <cstdlib>
#include <sstream>

#include "util/check.hpp"

namespace hetgrid {

Cli::Cli(int argc, const char* const* argv,
         std::map<std::string, std::string> spec)
    : values_(std::move(spec)) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    HG_CHECK(arg.rfind("--", 0) == 0, "expected --flag[=value], got " << arg);
    arg = arg.substr(2);
    std::string name = arg;
    std::string value = "1";  // bare flag means boolean true
    if (auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    }
    auto it = values_.find(name);
    HG_CHECK(it != values_.end(), "unknown flag --" << name);
    it->second = value;
  }
}

std::int64_t Cli::get_int(const std::string& name) const {
  const std::string& s = get_string(name);
  char* end = nullptr;
  long long v = std::strtoll(s.c_str(), &end, 10);
  HG_CHECK(end && *end == '\0' && !s.empty(),
           "flag --" << name << " is not an integer: " << s);
  return v;
}

double Cli::get_double(const std::string& name) const {
  const std::string& s = get_string(name);
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  HG_CHECK(end && *end == '\0' && !s.empty(),
           "flag --" << name << " is not a number: " << s);
  return v;
}

bool Cli::get_bool(const std::string& name) const {
  const std::string& s = get_string(name);
  return s == "1" || s == "true" || s == "yes" || s == "on";
}

const std::string& Cli::get_string(const std::string& name) const {
  auto it = values_.find(name);
  HG_CHECK(it != values_.end(), "flag --" << name << " not declared in spec");
  return it->second;
}

std::vector<double> parse_positive_list(const std::string& csv) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string item =
        csv.substr(pos, comma == std::string::npos ? std::string::npos
                                                   : comma - pos);
    HG_CHECK(!item.empty(), "empty entry in list '" << csv << "'");
    char* end = nullptr;
    const double v = std::strtod(item.c_str(), &end);
    HG_CHECK(end && *end == '\0', "malformed number: " << item);
    HG_CHECK(v > 0.0, "values must be positive, got " << v);
    out.push_back(v);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  HG_CHECK(!out.empty(), "list must contain at least one value");
  return out;
}

std::string Cli::describe() const {
  std::ostringstream oss;
  bool first = true;
  for (const auto& [k, v] : values_) {
    oss << (first ? "" : " ") << k << '=' << v;
    first = false;
  }
  return oss.str();
}

}  // namespace hetgrid
