// Minimal --flag=value parser shared by the bench/example binaries.
//
// Every hetgrid executable accepts the same flag syntax:
//   ./bench_fig6 --nmax=8 --trials=200 --seed=42 --csv
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hetgrid {

/// Parsed command line. Unknown flags are an error (typos should not turn a
/// parameter sweep into the default sweep silently).
class Cli {
 public:
  /// `spec` maps flag name -> default value (as text); every flag present in
  /// argv must appear in spec. Boolean flags may be given without "=value".
  Cli(int argc, const char* const* argv,
      std::map<std::string, std::string> spec);

  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;

  /// True when `name` was declared in the spec (present flags always are —
  /// unknown argv flags throw in the constructor). Lets shared helpers ask
  /// about flags only some binaries declare.
  bool has(const std::string& name) const { return values_.count(name) != 0; }

  /// Renders "name=value name=value ..." for experiment provenance lines.
  std::string describe() const;

 private:
  std::map<std::string, std::string> values_;
};

/// Parses a comma-separated list of positive doubles ("1,2,3.5") — the
/// --times=... syntax of the hetgrid CLI. Throws PreconditionError on
/// empty lists, malformed numbers, or non-positive values.
std::vector<double> parse_positive_list(const std::string& csv);

}  // namespace hetgrid
