#include "util/task_graph.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "util/check.hpp"

namespace hetgrid {

TaskGraph::TaskGraph(unsigned threads)
    : threads_(ThreadPool::resolve_threads(threads)) {
  if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_);
}

TaskGraph::~TaskGraph() {
  wait_all();
  // Join the workers before mu_/cv_done_ die: the pump that completed the
  // final task can still be inside cv_done_.notify_all() when wait_all
  // returns, and destroying a condition variable with a notifier mid-call
  // is a race (caught by TSan). ~ThreadPool joins that worker first.
  pool_.reset();
}

void TaskGraph::collect_deps(const std::vector<Key>& reads,
                             const std::vector<Key>& writes, TaskId self,
                             std::vector<TaskId>& deps) const {
  for (const Key k : reads) {
    const auto w = last_writer_.find(k);
    if (w != last_writer_.end() && w->second != self)
      deps.push_back(w->second);
  }
  for (const Key k : writes) {
    const auto w = last_writer_.find(k);
    if (w != last_writer_.end() && w->second != self)
      deps.push_back(w->second);
    const auto r = readers_.find(k);
    if (r != readers_.end())
      for (const TaskId t : r->second)
        if (t != self) deps.push_back(t);
  }
  std::sort(deps.begin(), deps.end());
  deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
}

std::size_t TaskGraph::append_record(const char* name, std::uint64_t tag,
                                     double weight,
                                     const std::vector<TaskId>& deps,
                                     const std::vector<Key>& reads,
                                     const std::vector<Key>& writes,
                                     bool host) {
  // Heaviest-chain base: task dependencies first (deps are sorted, so ties
  // resolve to the lowest record deterministically), then any host-chain
  // entry on a touched key — that is how a chain crosses a host_acquire,
  // whose key-history erasure would otherwise sever it.
  double base = 0.0;
  std::ptrdiff_t pred = -1;
  for (const TaskId d : deps) {
    const std::size_t r = tasks_[d].rec;
    if (r != SIZE_MAX && records_[r].chain_cost > base) {
      base = records_[r].chain_cost;
      pred = static_cast<std::ptrdiff_t>(r);
    }
  }
  auto fold_key = [&](Key k) {
    const auto it = host_chain_.find(k);
    if (it != host_chain_.end() && records_[it->second].chain_cost > base) {
      base = records_[it->second].chain_cost;
      pred = static_cast<std::ptrdiff_t>(it->second);
    }
  };
  for (const Key k : reads) fold_key(k);
  for (const Key k : writes) fold_key(k);
  TaskRecord rec;
  rec.name = name;
  rec.tag = tag;
  rec.weight = weight;
  rec.chain_cost = base + weight;
  rec.chain_pred = pred;
  rec.host = host;
  records_.push_back(rec);
  record_task_.push_back(SIZE_MAX);
  return records_.size() - 1;
}

void TaskGraph::note_host_work(const std::vector<Key>& writes, double weight,
                               const char* name, std::uint64_t tag) {
  if (!observe_) return;
  const std::size_t rec =
      append_record(name, tag, weight, {}, {}, writes, /*host=*/true);
  for (const Key k : writes) host_chain_[k] = rec;
}

std::vector<TaskRecord> TaskGraph::records() const {
  std::vector<TaskRecord> out = records_;
  for (std::size_t r = 0; r < out.size(); ++r) {
    const std::size_t t = record_task_[r];
    if (t != SIZE_MAX) {
      out[r].wall_start = tasks_[t].wall_start;
      out[r].wall_finish = tasks_[t].wall_finish;
    }
  }
  return out;
}

TaskGraph::TaskId TaskGraph::add(const char* name, std::vector<Key> reads,
                                 std::vector<Key> writes,
                                 std::function<void()> fn, int priority,
                                 const std::vector<TaskId>& after,
                                 double weight, std::uint64_t tag) {
  const TaskId id = tasks_.size();
  // The only way to express a cycle is an `after` edge that does not point
  // strictly backwards; inferred dependencies always reference earlier
  // tasks, so rejecting these keeps the graph acyclic by construction.
  for (const TaskId a : after)
    HG_CHECK(a < id, "TaskGraph: `after` dependency " << a
                         << " is not an earlier task than " << id
                         << " (forward or self edges would form a cycle)");

  std::vector<TaskId> deps;
  collect_deps(reads, writes, id, deps);
  deps.insert(deps.end(), after.begin(), after.end());
  std::sort(deps.begin(), deps.end());
  deps.erase(std::unique(deps.begin(), deps.end()), deps.end());

  const std::size_t rec =
      observe_ ? append_record(name, tag, weight, deps, reads, writes,
                               /*host=*/false)
               : SIZE_MAX;
  if (rec != SIZE_MAX) record_task_[rec] = id;

  // Advance the key history: this task is now the reader-of-record for its
  // read keys and the writer-of-record for its write keys.
  for (const Key k : reads) readers_[k].push_back(id);
  for (const Key k : writes) {
    last_writer_[k] = id;
    readers_[k].clear();
  }

  stats_.tasks += 1;
  stats_.edges += deps.size();

  MetricsRegistry* metrics = installed_metrics();
  if (metrics != nullptr) {
    metrics->counter("dag.tasks").add(1);
    metrics->counter("dag.edges").add(static_cast<double>(deps.size()));
  }

  if (pool_ == nullptr) {
    // Serial: submission order is a topological order (every dependency is
    // an earlier, already-executed task), so run inline. Depth still feeds
    // the critical-path statistic so it matches the threaded modes.
    std::size_t depth = 1;
    for (const TaskId d : deps) {
      HG_INTERNAL_CHECK(tasks_[d].done, "serial TaskGraph dep not done");
      depth = std::max(depth, tasks_[d].depth + 1);
    }
    Task& t = tasks_.emplace_back();
    t.name = name;
    t.priority = priority;
    t.depth = depth;
    t.rec = rec;
    stats_.critical_path = std::max(stats_.critical_path, depth);
    stats_.ready_at_submit += 1;
    if (metrics != nullptr) metrics->counter("dag.ready_at_submit").add(1);
    {
      ProfScope span(name);
      fn();
    }
    t.done = true;
    ++done_count_;
    return id;
  }

  bool ready = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Task& t = tasks_.emplace_back();
    t.fn = std::move(fn);
    t.name = name;
    t.priority = priority;
    t.rec = rec;
    std::size_t depth = 1;
    for (const TaskId d : deps) {
      depth = std::max(depth, tasks_[d].depth + 1);
      if (!tasks_[d].done) {
        tasks_[d].dependents.push_back(id);
        ++t.unmet;
      }
    }
    t.depth = depth;
    stats_.critical_path = std::max(stats_.critical_path, depth);
    ready = t.unmet == 0;
    if (ready) {
      ready_.push(ReadyEntry{priority, id});
      stats_.ready_at_submit += 1;
    } else {
      stats_.blocked_at_submit += 1;
    }
    if (metrics != nullptr) {
      metrics->counter(ready ? "dag.ready_at_submit" : "dag.blocked_at_submit")
          .add(1);
      metrics->gauge("dag.ready_depth")
          .set(static_cast<double>(ready_.size()));
    }
  }
  if (ready) pool_->submit([this] { pump(); });
  return id;
}

void TaskGraph::pump() {
  // Greedy drain: one pump closure is submitted per task pushed ready, but
  // a running pump keeps popping work itself instead of round-tripping
  // every task through the pool (a pump that finds the ready queue empty
  // because another worker drained it simply returns). Completing one task
  // and claiming the next share a single critical section, and when a
  // completion readies several tasks this worker keeps one and offers only
  // the rest to the pool — per-task scheduling cost is one lock
  // acquisition in the steady state, with no wakeup syscalls unless the
  // host is blocked on the completing task. The extra pumps land on the
  // completing worker's own deque (LIFO local push), where idle siblings
  // steal them from the FIFO end — a fused task of uneven cost keeps this
  // worker busy while the stolen pumps drain the rest of the wavefront.
  Task* t = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ready_.empty()) return;
    t = &tasks_[ready_.top().id];
    ready_.pop();
    MetricsRegistry* metrics = installed_metrics();
    if (metrics != nullptr)
      metrics->gauge("dag.ready_depth")
          .set(static_cast<double>(ready_.size()));
  }
  while (t != nullptr) {
    // observe_ is set once before the first add() and never flips during a
    // run, so reading it off-lock here is race-free.
    const double t0 = observe_ ? wall_now() : 0.0;
    {
      ProfScope span(t->name);
      t->fn();
    }
    const double t1 = observe_ ? wall_now() : 0.0;
    std::size_t extra = 0;  // ready tasks beyond the one this worker keeps
    bool notify = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (observe_) {
        t->wall_start = t0;
        t->wall_finish = t1;
      }
      t->done = true;
      t->fn = nullptr;  // release captured views/buffers promptly
      ++done_count_;
      std::size_t newly_ready = 0;
      for (const TaskId d : t->dependents) {
        Task& dt = tasks_[d];
        HG_INTERNAL_CHECK(dt.unmet > 0, "TaskGraph dependent underflow");
        if (--dt.unmet == 0) {
          ready_.push(ReadyEntry{dt.priority, d});
          ++newly_ready;
        }
      }
      if (t->host_waited) {
        t->host_waited = false;
        HG_INTERNAL_CHECK(host_wait_remaining_ > 0,
                          "TaskGraph host wait underflow");
        if (--host_wait_remaining_ == 0) notify = true;
      }
      if (host_wait_all_ && done_count_ == tasks_.size()) notify = true;
      if (!ready_.empty()) {
        t = &tasks_[ready_.top().id];
        ready_.pop();
        if (newly_ready > 0) extra = newly_ready - 1;
      } else {
        t = nullptr;
      }
      MetricsRegistry* metrics = installed_metrics();
      if (metrics != nullptr)
        metrics->gauge("dag.ready_depth")
            .set(static_cast<double>(ready_.size()));
    }
    if (notify) cv_done_.notify_all();
    if (extra > 0) {
      std::vector<std::function<void()>> pumps;
      pumps.reserve(extra);
      for (std::size_t i = 0; i < extra; ++i)
        pumps.emplace_back([this] { pump(); });
      pool_->submit_batch(std::move(pumps));
    }
  }
}

void TaskGraph::host_acquire(const std::vector<Key>& reads,
                             const std::vector<Key>& writes) {
  std::vector<TaskId> waits;
  collect_deps(reads, writes, tasks_.size(), waits);
  if (pool_ != nullptr && !waits.empty()) {
    std::unique_lock<std::mutex> lock(mu_);
    // Mark the exact tasks being waited on so only their completions
    // signal cv_done_ — everything else drains without waking the host.
    std::size_t remaining = 0;
    for (const TaskId t : waits)
      if (!tasks_[t].done) {
        tasks_[t].host_waited = true;
        ++remaining;
      }
    if (remaining > 0) {
      host_wait_remaining_ = remaining;
      cv_done_.wait(lock, [this] { return host_wait_remaining_ == 0; });
    }
  }
  // The host now owns the write keys synchronously: whatever it writes is
  // complete before any later add(), so later readers need no dependency.
  // Observation: the erased tasks' chains are stashed per key first, so a
  // later note_host_work / add() on the key still extends them.
  for (const Key k : writes) {
    if (observe_) {
      auto stash = [&](TaskId t) {
        const std::size_t r = tasks_[t].rec;
        if (r == SIZE_MAX) return;
        const auto it = host_chain_.find(k);
        if (it == host_chain_.end() ||
            records_[r].chain_cost > records_[it->second].chain_cost)
          host_chain_[k] = r;
      };
      const auto w = last_writer_.find(k);
      if (w != last_writer_.end()) stash(w->second);
      const auto r = readers_.find(k);
      if (r != readers_.end())
        for (const TaskId t : r->second) stash(t);
    }
    last_writer_.erase(k);
    readers_.erase(k);
  }
}

void TaskGraph::wait_all() {
  if (pool_ != nullptr) {
    std::unique_lock<std::mutex> lock(mu_);
    if (done_count_ != tasks_.size()) {
      host_wait_all_ = true;
      cv_done_.wait(lock, [this] { return done_count_ == tasks_.size(); });
      host_wait_all_ = false;
    }
  }
  MetricsRegistry* metrics = installed_metrics();
  if (metrics != nullptr)
    metrics->gauge("dag.critical_path")
        .set(static_cast<double>(stats_.critical_path));
}

bool TaskGraph::done(TaskId id) const {
  HG_CHECK(id < tasks_.size(), "TaskGraph::done: no task " << id);
  if (pool_ == nullptr) return true;  // serial tasks complete inside add()
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_[id].done;
}

std::vector<TaskGraph::TaskId> TaskGraph::pending_on(Key key) const {
  std::vector<TaskId> out;
  if (pool_ == nullptr) return out;
  std::lock_guard<std::mutex> lock(mu_);
  const auto w = last_writer_.find(key);
  if (w != last_writer_.end() && !tasks_[w->second].done)
    out.push_back(w->second);
  const auto r = readers_.find(key);
  if (r != readers_.end())
    for (const TaskId t : r->second)
      if (!tasks_[t].done) out.push_back(t);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace hetgrid
