#include "util/thread_pool.hpp"

#include <utility>

#include "util/check.hpp"

namespace hetgrid {

ThreadPool::ThreadPool(unsigned threads) {
  HG_CHECK(threads >= 1, "ThreadPool needs at least one worker");
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    HG_CHECK(!stop_, "submit on a stopping ThreadPool");
    queue_.push_back(std::move(task));
  }
  cv_work_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

unsigned ThreadPool::resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();  // noexcept by contract; an escaping exception terminates
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
    cv_idle_.notify_all();
  }
}

}  // namespace hetgrid
