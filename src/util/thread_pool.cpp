#include "util/thread_pool.hpp"

#include <cstdio>
#include <exception>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "util/check.hpp"

namespace hetgrid {

namespace {

double us_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

// Identifies the current thread as worker `tls_index` of `tls_pool`, so
// submit() can route a worker-produced task onto that worker's own deque
// (the LIFO local push). Any other thread sees tls_pool == nullptr.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local unsigned tls_index = 0;

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  HG_CHECK(threads >= 1, "ThreadPool needs at least one worker");
  deques_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    deques_.emplace_back(std::make_unique<Deque>());
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    stop_.store(true, std::memory_order_relaxed);
  }
  cv_work_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::push_item(Item&& item, std::size_t target) {
  {
    std::lock_guard<std::mutex> lock(deques_[target]->mu);
    deques_[target]->items.push_back(std::move(item));
  }
  // pending_ rises only after the item is visible in its deque, so a
  // worker woken by the pending count can always find the work by
  // rescanning (at worst it loops once while the push completes).
  pending_.fetch_add(1);
}

void ThreadPool::maybe_wake(std::size_t count) {
  std::size_t wake = 0;
  {
    // Only wake workers that are actually parked. A worker that failed its
    // scan re-checks pending_ under sleep_mu_ before sleeping, so skipping
    // the notify here can never strand a task.
    std::lock_guard<std::mutex> lock(sleep_mu_);
    wake = std::min(waiting_, count);
  }
  for (std::size_t i = 0; i < wake; ++i) cv_work_.notify_one();
}

void ThreadPool::submit(std::function<void()> task) {
  HG_CHECK(!stop_.load(std::memory_order_relaxed),
           "submit on a stopping ThreadPool");
  MetricsRegistry* metrics = installed_metrics();
  Item item;
  item.fn = std::move(task);
  if (metrics != nullptr) {
    item.enqueued = std::chrono::steady_clock::now();
    item.timed = true;
  }
  outstanding_.fetch_add(1);
  // A worker submits to itself (LIFO locality: the freshest task reuses
  // the producer's hot data, and siblings steal from the cold FIFO end);
  // everyone else spreads round-robin.
  const std::size_t target = tls_pool == this
                                 ? tls_index
                                 : next_.fetch_add(1) % deques_.size();
  push_item(std::move(item), target);
  maybe_wake(1);
  if (metrics != nullptr) {
    metrics->counter("pool.tasks_submitted").add(1);
    metrics->gauge("pool.queue_depth")
        .set(static_cast<double>(outstanding_.load()));
  }
}

void ThreadPool::submit_batch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  HG_CHECK(!stop_.load(std::memory_order_relaxed),
           "submit_batch on a stopping ThreadPool");
  MetricsRegistry* metrics = installed_metrics();
  std::chrono::steady_clock::time_point now;
  if (metrics != nullptr) now = std::chrono::steady_clock::now();
  outstanding_.fetch_add(tasks.size());
  const bool local = tls_pool == this;
  for (std::function<void()>& task : tasks) {
    Item item;
    item.fn = std::move(task);
    if (metrics != nullptr) {
      item.enqueued = now;
      item.timed = true;
    }
    const std::size_t target =
        local ? tls_index : next_.fetch_add(1) % deques_.size();
    push_item(std::move(item), target);
  }
  maybe_wake(tasks.size());
  if (metrics != nullptr) {
    metrics->counter("pool.tasks_submitted")
        .add(static_cast<double>(tasks.size()));
    metrics->gauge("pool.queue_depth")
        .set(static_cast<double>(outstanding_.load()));
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(sleep_mu_);
  cv_idle_.wait(lock, [this] { return outstanding_.load() == 0; });
}

unsigned ThreadPool::resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

bool ThreadPool::try_pop_local(unsigned self, Item& out) {
  Deque& d = *deques_[self];
  std::lock_guard<std::mutex> lock(d.mu);
  if (d.items.empty()) return false;
  out = std::move(d.items.back());  // LIFO end
  d.items.pop_back();
  // Decremented under the deque mutex, so "every deque scanned empty"
  // implies pending_ has already dropped for every claimed item — the
  // shutdown drain cannot spin on a phantom count.
  pending_.fetch_sub(1);
  return true;
}

bool ThreadPool::try_steal(unsigned self, Item& out) {
  const std::size_t n = deques_.size();
  for (std::size_t hop = 1; hop < n; ++hop) {
    Deque& d = *deques_[(self + hop) % n];
    std::lock_guard<std::mutex> lock(d.mu);
    if (d.items.empty()) continue;
    out = std::move(d.items.front());  // FIFO end: the oldest task migrates
    d.items.pop_front();
    pending_.fetch_sub(1);
    metric_count("pool.steals");
    return true;
  }
  return false;
}

void ThreadPool::run_item(Item& item) {
  MetricsRegistry* metrics = installed_metrics();
  std::chrono::steady_clock::time_point run_start;
  if (metrics != nullptr) {
    run_start = std::chrono::steady_clock::now();
    if (item.timed)
      metrics->histogram("pool.task_wait_us")
          .record(us_between(item.enqueued, run_start));
  }
  {
    ProfScope span("pool.task");
    // Non-throwing contract: deliver a named diagnostic instead of the
    // anonymous terminate an escaping exception would otherwise cause.
    try {
      item.fn();
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "hetgrid: fatal: ThreadPool task threw an exception "
                   "(tasks are noexcept by contract): %s\n",
                   e.what());
      std::terminate();
    } catch (...) {
      std::fprintf(stderr,
                   "hetgrid: fatal: ThreadPool task threw a non-standard "
                   "exception (tasks are noexcept by contract)\n");
      std::terminate();
    }
  }
  if (metrics != nullptr)
    metrics->histogram("pool.task_run_us")
        .record(us_between(run_start, std::chrono::steady_clock::now()));
}

void ThreadPool::worker_loop(unsigned index) {
  prof_set_thread_name("worker-" + std::to_string(index));
  tls_pool = this;
  tls_index = index;
  for (;;) {
    Item item;
    if (try_pop_local(index, item) || try_steal(index, item)) {
      run_item(item);
      item.fn = nullptr;  // release captures before the idle signal
      if (outstanding_.fetch_sub(1) == 1) {
        // wait_idle's predicate can only turn true at this transition;
        // taking sleep_mu_ orders the notify after the host's predicate
        // check, so the host can never sleep through it.
        std::lock_guard<std::mutex> lock(sleep_mu_);
        cv_idle_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mu_);
    ++waiting_;
    cv_work_.wait(lock, [this] {
      return stop_.load(std::memory_order_relaxed) || pending_.load() > 0;
    });
    --waiting_;
    if (stop_.load(std::memory_order_relaxed) && pending_.load() == 0)
      return;  // stop requested and every deque drained
  }
}

}  // namespace hetgrid
