#include "util/thread_pool.hpp"

#include <cstdio>
#include <exception>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "util/check.hpp"

namespace hetgrid {

namespace {

double us_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  HG_CHECK(threads >= 1, "ThreadPool needs at least one worker");
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  MetricsRegistry* metrics = installed_metrics();
  Item item;
  item.fn = std::move(task);
  if (metrics != nullptr) {
    item.enqueued = std::chrono::steady_clock::now();
    item.timed = true;
  }
  std::size_t depth = 0;
  bool wake = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    HG_CHECK(!stop_, "submit on a stopping ThreadPool");
    queue_.push_back(std::move(item));
    depth = queue_.size() + in_flight_;
    // Only wake a worker that is actually parked. A worker that has not
    // reached cv_work_.wait yet re-checks the queue under mu_ before
    // sleeping, so skipping the notify here can never strand the task.
    wake = waiting_ > 0;
  }
  if (wake) cv_work_.notify_one();
  if (metrics != nullptr) {
    metrics->counter("pool.tasks_submitted").add(1);
    metrics->gauge("pool.queue_depth").set(static_cast<double>(depth));
  }
}

void ThreadPool::submit_batch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  MetricsRegistry* metrics = installed_metrics();
  std::chrono::steady_clock::time_point now;
  if (metrics != nullptr) now = std::chrono::steady_clock::now();
  std::size_t depth = 0;
  std::size_t wake = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    HG_CHECK(!stop_, "submit_batch on a stopping ThreadPool");
    for (std::function<void()>& task : tasks) {
      Item item;
      item.fn = std::move(task);
      if (metrics != nullptr) {
        item.enqueued = now;
        item.timed = true;
      }
      queue_.push_back(std::move(item));
    }
    depth = queue_.size() + in_flight_;
    wake = std::min(waiting_, tasks.size());
  }
  for (std::size_t i = 0; i < wake; ++i) cv_work_.notify_one();
  if (metrics != nullptr) {
    metrics->counter("pool.tasks_submitted")
        .add(static_cast<double>(tasks.size()));
    metrics->gauge("pool.queue_depth").set(static_cast<double>(depth));
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

unsigned ThreadPool::resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::worker_loop(unsigned index) {
  prof_set_thread_name("worker-" + std::to_string(index));
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++waiting_;
      cv_work_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      --waiting_;
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      item = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    MetricsRegistry* metrics = installed_metrics();
    std::chrono::steady_clock::time_point run_start;
    if (metrics != nullptr) {
      run_start = std::chrono::steady_clock::now();
      if (item.timed)
        metrics->histogram("pool.task_wait_us")
            .record(us_between(item.enqueued, run_start));
    }
    {
      ProfScope span("pool.task");
      // Non-throwing contract: deliver a named diagnostic instead of the
      // anonymous terminate an escaping exception would otherwise cause.
      try {
        item.fn();
      } catch (const std::exception& e) {
        std::fprintf(stderr,
                     "hetgrid: fatal: ThreadPool task threw an exception "
                     "(tasks are noexcept by contract): %s\n",
                     e.what());
        std::terminate();
      } catch (...) {
        std::fprintf(stderr,
                     "hetgrid: fatal: ThreadPool task threw a non-standard "
                     "exception (tasks are noexcept by contract)\n");
        std::terminate();
      }
    }
    if (metrics != nullptr)
      metrics->histogram("pool.task_run_us")
          .record(us_between(run_start, std::chrono::steady_clock::now()));
    bool idle = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      idle = queue_.empty() && in_flight_ == 0;
    }
    // wait_idle's predicate can only turn true at this transition, so a
    // per-task notify_all was pure wakeup churn for the host thread.
    if (idle) cv_idle_.notify_all();
  }
}

}  // namespace hetgrid
