// Dependency-driven task-graph scheduler for the numerics-executing
// backends: the dataflow alternative to the bulk-synchronous TaskBatch.
//
// Tasks declare read/write sets over opaque 64-bit keys (the MP runtime
// encodes (processor, block) pairs). Dependencies are inferred from the
// key history exactly like a scoreboard: a task depends on the last writer
// of every key it reads (RAW), and on the last writer *and* all readers
// since that write of every key it writes (WAW / WAR). Because every
// dependency points at an earlier task, the graph is acyclic by
// construction — the explicit `after` list is checked for forward or self
// references, which is the only way a cycle could ever be expressed.
//
// Determinism contract (doc/parallel_runtime.md): each task's arithmetic
// is self-contained, and every read-modify-write chain on one key is
// serialized in submission order by its WAW dependencies — so reductions
// keep their canonical order and the results are bit-identical for any
// thread count. The ready queue breaks ties deterministically (higher
// priority first, then lower task id), so the schedule itself — not just
// the results — is reproducible modulo worker timing.
//
// With threads == 1 no pool is created: add() runs the task inline
// (submission order is a topological order by construction), and the
// bookkeeping still records the same dependency statistics, so dag.tasks /
// dag.edges / the critical path are identical for every thread count.
//
// Observability (obs/metrics, obs/profiler): counters dag.tasks, dag.edges,
// dag.ready_at_submit, dag.blocked_at_submit; gauges dag.ready_depth
// (threaded only — wall-clock scheduling state) and dag.critical_path
// (deterministic, set by wait_all); each task body runs inside a ProfScope
// named after the task, so worker lanes show the real dataflow schedule.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/thread_pool.hpp"

namespace hetgrid {

/// Per-task observation record (set_observe). `chain_cost` is the weight of
/// the heaviest dependency chain ending at this record (its own weight
/// included), computed on the host at submission time from the declared
/// weights — deterministic for any thread count, unlike the wall-clock
/// fields, which are only filled by the threaded scheduler (seconds since
/// the graph's construction; 0 in serial mode). `chain_pred` indexes the
/// predecessor record on that chain (-1 for a chain head). Host-side work
/// noted via note_host_work() appears as records too, so critical paths
/// that pass through host panel factorizations stay connected.
struct TaskRecord {
  const char* name = "";
  std::uint64_t tag = 0;  // caller-defined lane tag (the MP runtime: proc id)
  double weight = 0.0;
  double chain_cost = 0.0;
  std::ptrdiff_t chain_pred = -1;
  double wall_start = 0.0;
  double wall_finish = 0.0;
  bool host = false;  // true for note_host_work records
};

class TaskGraph {
 public:
  /// Opaque resource key; callers encode whatever identifies one unit of
  /// mutable state (the MP runtime packs (processor, block row, block col)).
  using Key = std::uint64_t;
  using TaskId = std::size_t;

  /// Deterministic dependency statistics (identical for any thread count).
  struct Stats {
    std::size_t tasks = 0;
    std::size_t edges = 0;             // dependency edges after dedup
    std::size_t ready_at_submit = 0;   // tasks with no unfinished deps
    std::size_t blocked_at_submit = 0;
    std::size_t critical_path = 0;     // longest dependency chain (tasks)
  };

  /// `threads` as in RuntimeOptions: 0 means all hardware threads, 1 means
  /// serial inline execution (no pool), n > 1 spawns n workers.
  explicit TaskGraph(unsigned threads);

  /// Waits for every submitted task before tearing down the pool, so task
  /// closures never outlive the state they reference (callers destroy the
  /// graph before the stores its tasks read).
  ~TaskGraph();

  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Tag value for tasks with no caller-defined lane.
  static constexpr std::uint64_t kNoTag = ~std::uint64_t{0};

  /// Submits one task. `name` must have static storage duration (it labels
  /// profiler spans). Dependencies are inferred from `reads`/`writes` as
  /// described above; `after` adds explicit edges to earlier tasks and
  /// throws PreconditionError on a forward or self reference (the cycle
  /// check). Ties in the ready queue break on (priority desc, id asc).
  /// Tasks must not throw (ThreadPool's non-throwing contract).
  /// `weight` and `tag` only feed the observation records (set_observe);
  /// they never influence scheduling or results.
  TaskId add(const char* name, std::vector<Key> reads,
             std::vector<Key> writes, std::function<void()> fn,
             int priority = 0, const std::vector<TaskId>& after = {},
             double weight = 0.0, std::uint64_t tag = kNoTag);

  /// Enables per-task observation records (weighted critical-path chains +
  /// wall-clock spans). Must be called before the first add(); off by
  /// default, in which case add() skips all record bookkeeping.
  void set_observe(bool on) { observe_ = on; }
  bool observing() const { return observe_; }

  /// Records host-side inline work (a panel factorization the host ran
  /// between host_acquire and the next add) as an observation record:
  /// its chain extends the heaviest chain seen on `writes`, and later
  /// tasks touching those keys chain through it. No task is created and
  /// scheduling is unaffected. No-op unless observing.
  void note_host_work(const std::vector<Key>& writes, double weight,
                      const char* name, std::uint64_t tag = kNoTag);

  /// Copies the observation records (task records get their wall-clock
  /// spans merged in). Host-thread only, after wait_all(). Empty unless
  /// observing.
  std::vector<TaskRecord> records() const;

  /// Blocks the host thread until every task touching `reads` (last
  /// writer) or `writes` (last writer + readers since) has finished, then
  /// records the host as the new synchronous owner of the write keys —
  /// subsequent tasks reading them need no dependency. This is the partial
  /// synchronization the host uses for inline work (panel factorizations):
  /// unrelated tasks keep running.
  void host_acquire(const std::vector<Key>& reads,
                    const std::vector<Key>& writes);

  /// Blocks until every submitted task has finished.
  void wait_all();

  bool done(TaskId id) const;

  /// Ids of the not-yet-finished tasks that read or write `key` (used to
  /// defer freeing a buffer until its readers drain). Host-thread only.
  std::vector<TaskId> pending_on(Key key) const;

  const Stats& stats() const { return stats_; }
  bool serial() const { return pool_ == nullptr; }
  unsigned threads() const { return threads_; }

 private:
  struct Task {
    std::function<void()> fn;
    const char* name = "";
    int priority = 0;
    std::size_t unmet = 0;           // unfinished dependencies
    std::vector<TaskId> dependents;  // tasks waiting on this one
    std::size_t depth = 1;           // longest chain ending here
    bool done = false;
    bool host_waited = false;        // host_acquire is blocked on this task
    std::size_t rec = SIZE_MAX;      // observation record index (observe_)
    double wall_start = 0.0;         // threaded + observe_ only
    double wall_finish = 0.0;
  };

  struct ReadyEntry {
    int priority;
    TaskId id;
  };
  struct ReadyWorse {
    bool operator()(const ReadyEntry& a, const ReadyEntry& b) const {
      if (a.priority != b.priority) return a.priority < b.priority;
      return a.id > b.id;  // lower id wins among equal priorities
    }
  };

  void pump();  // runs on a pool worker: pop one ready task, execute it
  void collect_deps(const std::vector<Key>& reads,
                    const std::vector<Key>& writes, TaskId self,
                    std::vector<TaskId>& deps) const;
  // Appends an observation record chained through `deps` (task records)
  // and the host-chain entries of the touched keys. Host-thread only.
  std::size_t append_record(const char* name, std::uint64_t tag,
                            double weight, const std::vector<TaskId>& deps,
                            const std::vector<Key>& reads,
                            const std::vector<Key>& writes, bool host);
  double wall_now() const {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  unsigned threads_;
  std::unique_ptr<ThreadPool> pool_;  // null when serial

  // Key history, host-thread only (add / host_acquire / pending_on).
  std::unordered_map<Key, TaskId> last_writer_;
  std::unordered_map<Key, std::vector<TaskId>> readers_;  // since last write

  Stats stats_;

  // Observation state (set_observe). records_ / host_chain_ are touched
  // only by the host thread; workers write wall times into their Task
  // under mu_ and records() merges them afterwards. host_chain_ maps a key
  // to the record index of the heaviest chain the host absorbed for it
  // (host_acquire stashes the erased writers' chains there, note_host_work
  // extends them), so chains survive the key-history erasure at host syncs.
  bool observe_ = false;
  std::vector<TaskRecord> records_;
  std::vector<std::size_t> record_task_;  // record -> task id (SIZE_MAX: host)
  std::unordered_map<Key, std::size_t> host_chain_;  // key -> record index
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();

  // Task state shared with workers. cv_done_ is only signalled when the
  // single host thread is actually blocked on the completing task
  // (host_waited / host_wait_all_), so draining the graph performs no
  // per-task wakeup syscalls.
  mutable std::mutex mu_;
  std::condition_variable cv_done_;
  std::size_t host_wait_remaining_ = 0;  // unfinished host_waited tasks
  bool host_wait_all_ = false;           // host blocked in wait_all()
  std::deque<Task> tasks_;        // deque: stable references across add()
  std::size_t done_count_ = 0;
  std::priority_queue<ReadyEntry, std::vector<ReadyEntry>, ReadyWorse> ready_;
};

}  // namespace hetgrid
