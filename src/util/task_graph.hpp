// Dependency-driven task-graph scheduler for the numerics-executing
// backends: the dataflow alternative to the bulk-synchronous TaskBatch.
//
// Tasks declare read/write sets over opaque 64-bit keys (the MP runtime
// encodes (processor, block) pairs). Dependencies are inferred from the
// key history exactly like a scoreboard: a task depends on the last writer
// of every key it reads (RAW), and on the last writer *and* all readers
// since that write of every key it writes (WAW / WAR). Because every
// dependency points at an earlier task, the graph is acyclic by
// construction — the explicit `after` list is checked for forward or self
// references, which is the only way a cycle could ever be expressed.
//
// Determinism contract (doc/parallel_runtime.md): each task's arithmetic
// is self-contained, and every read-modify-write chain on one key is
// serialized in submission order by its WAW dependencies — so reductions
// keep their canonical order and the results are bit-identical for any
// thread count. The ready queue breaks ties deterministically (higher
// priority first, then lower task id), so the schedule itself — not just
// the results — is reproducible modulo worker timing.
//
// With threads == 1 no pool is created: add() runs the task inline
// (submission order is a topological order by construction), and the
// bookkeeping still records the same dependency statistics, so dag.tasks /
// dag.edges / the critical path are identical for every thread count.
//
// Observability (obs/metrics, obs/profiler): counters dag.tasks, dag.edges,
// dag.ready_at_submit, dag.blocked_at_submit; gauges dag.ready_depth
// (threaded only — wall-clock scheduling state) and dag.critical_path
// (deterministic, set by wait_all); each task body runs inside a ProfScope
// named after the task, so worker lanes show the real dataflow schedule.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/thread_pool.hpp"

namespace hetgrid {

class TaskGraph {
 public:
  /// Opaque resource key; callers encode whatever identifies one unit of
  /// mutable state (the MP runtime packs (processor, block row, block col)).
  using Key = std::uint64_t;
  using TaskId = std::size_t;

  /// Deterministic dependency statistics (identical for any thread count).
  struct Stats {
    std::size_t tasks = 0;
    std::size_t edges = 0;             // dependency edges after dedup
    std::size_t ready_at_submit = 0;   // tasks with no unfinished deps
    std::size_t blocked_at_submit = 0;
    std::size_t critical_path = 0;     // longest dependency chain (tasks)
  };

  /// `threads` as in RuntimeOptions: 0 means all hardware threads, 1 means
  /// serial inline execution (no pool), n > 1 spawns n workers.
  explicit TaskGraph(unsigned threads);

  /// Waits for every submitted task before tearing down the pool, so task
  /// closures never outlive the state they reference (callers destroy the
  /// graph before the stores its tasks read).
  ~TaskGraph();

  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Submits one task. `name` must have static storage duration (it labels
  /// profiler spans). Dependencies are inferred from `reads`/`writes` as
  /// described above; `after` adds explicit edges to earlier tasks and
  /// throws PreconditionError on a forward or self reference (the cycle
  /// check). Ties in the ready queue break on (priority desc, id asc).
  /// Tasks must not throw (ThreadPool's non-throwing contract).
  TaskId add(const char* name, std::vector<Key> reads,
             std::vector<Key> writes, std::function<void()> fn,
             int priority = 0, const std::vector<TaskId>& after = {});

  /// Blocks the host thread until every task touching `reads` (last
  /// writer) or `writes` (last writer + readers since) has finished, then
  /// records the host as the new synchronous owner of the write keys —
  /// subsequent tasks reading them need no dependency. This is the partial
  /// synchronization the host uses for inline work (panel factorizations):
  /// unrelated tasks keep running.
  void host_acquire(const std::vector<Key>& reads,
                    const std::vector<Key>& writes);

  /// Blocks until every submitted task has finished.
  void wait_all();

  bool done(TaskId id) const;

  /// Ids of the not-yet-finished tasks that read or write `key` (used to
  /// defer freeing a buffer until its readers drain). Host-thread only.
  std::vector<TaskId> pending_on(Key key) const;

  const Stats& stats() const { return stats_; }
  bool serial() const { return pool_ == nullptr; }
  unsigned threads() const { return threads_; }

 private:
  struct Task {
    std::function<void()> fn;
    const char* name = "";
    int priority = 0;
    std::size_t unmet = 0;           // unfinished dependencies
    std::vector<TaskId> dependents;  // tasks waiting on this one
    std::size_t depth = 1;           // longest chain ending here
    bool done = false;
    bool host_waited = false;        // host_acquire is blocked on this task
  };

  struct ReadyEntry {
    int priority;
    TaskId id;
  };
  struct ReadyWorse {
    bool operator()(const ReadyEntry& a, const ReadyEntry& b) const {
      if (a.priority != b.priority) return a.priority < b.priority;
      return a.id > b.id;  // lower id wins among equal priorities
    }
  };

  void pump();  // runs on a pool worker: pop one ready task, execute it
  void collect_deps(const std::vector<Key>& reads,
                    const std::vector<Key>& writes, TaskId self,
                    std::vector<TaskId>& deps) const;

  unsigned threads_;
  std::unique_ptr<ThreadPool> pool_;  // null when serial

  // Key history, host-thread only (add / host_acquire / pending_on).
  std::unordered_map<Key, TaskId> last_writer_;
  std::unordered_map<Key, std::vector<TaskId>> readers_;  // since last write

  Stats stats_;

  // Task state shared with workers. cv_done_ is only signalled when the
  // single host thread is actually blocked on the completing task
  // (host_waited / host_wait_all_), so draining the graph performs no
  // per-task wakeup syscalls.
  mutable std::mutex mu_;
  std::condition_variable cv_done_;
  std::size_t host_wait_remaining_ = 0;  // unfinished host_waited tasks
  bool host_wait_all_ = false;           // host blocked in wait_all()
  std::deque<Task> tasks_;        // deque: stable references across add()
  std::size_t done_count_ = 0;
  std::priority_queue<ReadyEntry, std::vector<ReadyEntry>, ReadyWorse> ready_;
};

}  // namespace hetgrid
