// Streaming statistics used by the experiment harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace hetgrid {

/// Welford's online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Half-width of the ~95% normal confidence interval on the mean.
  double ci95_halfwidth() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile of a sample (linear interpolation between order
/// statistics). `p` in [0,100]. Copies and sorts; fine for harness sizes.
double percentile(std::vector<double> values, double p);

/// Arithmetic mean of a sample. Requires a non-empty vector.
double mean_of(const std::vector<double>& values);

/// Harmonic mean; all values must be positive.
double harmonic_mean(const std::vector<double>& values);

}  // namespace hetgrid
