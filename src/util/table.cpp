#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace hetgrid {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void Table::row(std::vector<std::string> cells) {
  HG_CHECK(header_.empty() || cells.size() == header_.size(),
           "row width " << cells.size() << " != header width "
                        << header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

std::string Table::num(std::int64_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    if (cells.size() > width.size()) width.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      width[i] = std::max(width[i], cells[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << (i == 0 ? "" : "  ") << std::left
         << std::setw(static_cast<int>(width[i])) << cells[i];
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < width.size(); ++i)
      total += width[i] + (i == 0 ? 0 : 2);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      os << (i == 0 ? "" : ",") << cells[i];
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
}

}  // namespace hetgrid
