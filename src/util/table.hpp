// Plain-text table rendering for the benchmark harnesses, so every bench
// binary prints figures/tables in the same aligned format the paper uses.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace hetgrid {

/// Column-aligned text table with an optional title.
///
///   Table t("Figure 6");
///   t.header({"n", "avg workload"});
///   t.row({"2", "0.97"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::string title = "");

  void header(std::vector<std::string> cells);
  void row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` digits after the point.
  static std::string num(double v, int precision = 4);
  static std::string num(std::int64_t v);

  void print(std::ostream& os) const;

  /// Same data as CSV (header first), for downstream plotting.
  void print_csv(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hetgrid
