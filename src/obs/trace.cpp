#include "obs/trace.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hetgrid {

TraceSink::~TraceSink() = default;

void MemoryTraceSink::record(TraceEvent event) {
  events_.push_back(std::move(event));
}

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kComputeBlock: return "compute_block";
    case TraceEventKind::kSend: return "send";
    case TraceEventKind::kRecv: return "recv";
    case TraceEventKind::kBroadcast: return "broadcast";
    case TraceEventKind::kIdle: return "idle";
    case TraceEventKind::kPhase: return "phase";
  }
  return "unknown";
}

namespace {

struct Interval {
  double lo, hi;
};

// Sorted union of the intervals; `out` receives the merged runs.
void merge_intervals(std::vector<Interval>& iv, std::vector<Interval>& out) {
  out.clear();
  if (iv.empty()) return;
  std::sort(iv.begin(), iv.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  out.push_back(iv.front());
  for (std::size_t i = 1; i < iv.size(); ++i) {
    if (iv[i].lo <= out.back().hi)
      out.back().hi = std::max(out.back().hi, iv[i].hi);
    else
      out.push_back(iv[i]);
  }
}

bool counts_toward_busy(TraceEventKind kind) {
  return kind == TraceEventKind::kComputeBlock ||
         kind == TraceEventKind::kSend || kind == TraceEventKind::kRecv ||
         kind == TraceEventKind::kBroadcast;
}

}  // namespace

TraceSummary summarize_trace(const std::vector<TraceEvent>& events,
                             std::size_t processors,
                             double reported_makespan) {
  HG_CHECK(processors > 0, "summarize_trace needs at least one processor");
  TraceSummary sum;
  sum.makespan = reported_makespan;
  sum.procs.assign(processors, ProcCounters{});

  std::vector<std::vector<Interval>> spans(processors);
  for (const TraceEvent& e : events) {
    if (e.proc >= processors || !counts_toward_busy(e.kind)) continue;
    HG_CHECK(e.duration >= 0.0, "negative-duration trace span");
    ProcCounters& pc = sum.procs[e.proc];
    switch (e.kind) {
      case TraceEventKind::kComputeBlock:
        pc.compute_time += e.duration;
        break;
      case TraceEventKind::kSend:
        pc.comm_time += e.duration;
        pc.blocks_sent += e.blocks;
        pc.messages_sent += 1;
        break;
      case TraceEventKind::kRecv:
        pc.comm_time += e.duration;
        pc.blocks_received += e.blocks;
        pc.messages_received += 1;
        break;
      case TraceEventKind::kBroadcast:
        pc.comm_time += e.duration;
        pc.blocks_received += e.blocks;
        break;
      default:
        break;
    }
    if (e.duration > 0.0) spans[e.proc].push_back({e.start, e.end()});
    sum.makespan = std::max(sum.makespan, e.end());
  }

  std::vector<Interval> merged;
  for (std::size_t id = 0; id < processors; ++id) {
    merge_intervals(spans[id], merged);
    double busy = 0.0;
    for (const Interval& iv : merged) busy += iv.hi - iv.lo;
    sum.procs[id].busy_time = busy;
    sum.procs[id].idle_time = std::max(0.0, sum.makespan - busy);
  }
  return sum;
}

void append_idle_events(std::vector<TraceEvent>& events,
                        std::size_t processors, double makespan) {
  std::vector<std::vector<Interval>> spans(processors);
  for (const TraceEvent& e : events) {
    if (e.proc >= processors || !counts_toward_busy(e.kind)) continue;
    if (e.duration > 0.0) spans[e.proc].push_back({e.start, e.end()});
    makespan = std::max(makespan, e.end());
  }
  std::vector<Interval> merged;
  for (std::size_t id = 0; id < processors; ++id) {
    merge_intervals(spans[id], merged);
    double cursor = 0.0;
    auto emit_gap = [&](double until) {
      if (until > cursor)
        events.push_back({TraceEventKind::kIdle, id, cursor, until - cursor,
                          0, 0.0, kNoPeer, "idle"});
    };
    for (const Interval& iv : merged) {
      emit_gap(iv.lo);
      cursor = std::max(cursor, iv.hi);
    }
    emit_gap(makespan);
  }
}

}  // namespace hetgrid
