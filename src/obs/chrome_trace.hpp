// Chrome/Perfetto trace exporter.
//
// Writes a trace in the Chrome Trace Event JSON format ("JSON Array
// Format" wrapped in an object with "traceEvents"), loadable in
// chrome://tracing and https://ui.perfetto.dev. One process ("hetgrid"),
// one thread lane per processor named "P(i,j) t=<cycle-time>" plus a
// "machine" lane for phase markers. Virtual seconds are exported as
// microseconds, the format's native unit.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace hetgrid {

/// Human-readable lane labels, one per processor (index = flat id). The
/// last extra entry, if any, is ignored; a trailing "machine" lane label
/// is always emitted for kMachineLane events.
std::vector<std::string> proc_lane_labels(std::size_t p, std::size_t q,
                                          const double* cycle_times);

/// Serializes `events` as Chrome Trace JSON. `labels` may be empty (lanes
/// are then named "P<id>"). Deterministic output: events are written in
/// the order given, metadata first.
void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceEvent>& events,
                        std::size_t processors,
                        const std::vector<std::string>& labels = {});

/// JSON string escaping (quotes, backslashes, control characters) for the
/// exporter; exposed for tests.
std::string json_escape(const std::string& s);

/// Fixed-point "%.6f" with trailing zeros (and a bare trailing dot)
/// trimmed: deterministic across platforms and locales. This is the
/// byte-stable number format shared by the trace exporter and the metrics
/// snapshot writer (obs/metrics).
std::string format_compact(double v);

}  // namespace hetgrid
