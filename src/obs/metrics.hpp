// Wall-clock metrics registry: counters, gauges, and log-bucketed
// histograms for the real execution machinery (thread pool, parallel
// engine, exact solver, gemm, block store).
//
// Design mirrors the TraceSink null-pointer discipline: instrumentation
// sites call the free helpers (metric_count / metric_gauge /
// metric_record), which reduce to one atomic load and a branch when no
// registry is installed — the library pays nothing unless a profiling run
// installs one via install_metrics().
//
// Determinism contract (doc/observability.md): every metric recorded on
// the serial path (--threads=1) carries values derived only from the
// computation itself — block counts, node counts, pool hits — never from
// wall-clock time. Wall-clock-valued metrics (task latency, flush
// duration) are recorded exclusively on the pooled path, so a
// --threads=1 snapshot is byte-stable across runs. The snapshot writer
// reuses chrome_trace.cpp's fixed-point number formatting for the same
// reason.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hetgrid {

/// Monotone event counter. add() is thread-safe and wait-free.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value gauge that also tracks the maximum ever set (queue depth,
/// resident blocks). set() is thread-safe.
class Gauge {
 public:
  void set(double v);
  double last() const { return last_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> last_{0.0};
  std::atomic<double> max_{0.0};
};

/// Power-of-two log-bucketed histogram over non-negative values. A value
/// v lands in the bucket whose upper edge is the smallest 2^e >= v (via
/// frexp), clamped to [2^kMinExp, 2^kMaxExp]. Quantiles report the upper
/// edge of the bucket holding the requested rank — coarse, but exactly
/// reproducible, which is what the byte-stable snapshot needs.
class Histogram {
 public:
  static constexpr int kMinExp = -32;  // bucket 0 upper edge: 2^-32
  static constexpr int kMaxExp = 63;   // last bucket upper edge: 2^63
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kMaxExp - kMinExp + 1);

  void record(double v);
  std::uint64_t count() const;
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Upper edge of the bucket containing the ceil(q * count)-th smallest
  /// sample (q in [0, 1]); 0 when empty.
  double quantile(double q) const;
  /// (upper_edge, count) for every non-empty bucket, ascending.
  std::vector<std::pair<double, std::uint64_t>> buckets() const;

 private:
  std::atomic<std::uint64_t> counts_[kBuckets] = {};
  std::atomic<double> sum_{0.0};
};

/// Named metrics, created on first use and alive for the registry's
/// lifetime (stable references; storage is never rehashed). Lookup takes
/// a mutex — cheap enough for profiling runs, and the helpers below skip
/// it entirely when no registry is installed.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Deterministic JSON snapshot: one record per metric, sorted by name,
  /// numbers in chrome_trace.cpp's trimmed fixed-point format.
  void write_json(std::ostream& os) const;
  std::string snapshot_json() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

namespace obs_detail {
extern std::atomic<MetricsRegistry*> g_metrics;
}  // namespace obs_detail

/// Installs `m` as the process-wide registry the instrumentation helpers
/// feed (nullptr uninstalls). Returns the previously installed registry.
/// Install/uninstall while instrumented code is running on other threads
/// is not supported — bracket the workload, as the CLI does.
MetricsRegistry* install_metrics(MetricsRegistry* m);

inline MetricsRegistry* installed_metrics() {
  return obs_detail::g_metrics.load(std::memory_order_acquire);
}

/// Instrumentation helpers: no-ops (one load + branch) when nothing is
/// installed.
inline void metric_count(const char* name, std::uint64_t n = 1) {
  if (MetricsRegistry* m = installed_metrics()) m->counter(name).add(n);
}
inline void metric_gauge(const char* name, double v) {
  if (MetricsRegistry* m = installed_metrics()) m->gauge(name).set(v);
}
inline void metric_record(const char* name, double v) {
  if (MetricsRegistry* m = installed_metrics()) m->histogram(name).record(v);
}

}  // namespace hetgrid
