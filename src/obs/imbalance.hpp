// Load-imbalance report: where a finished run's makespan was actually
// lost, and how close it came to the paper's lower bound under the
// *estimated* cycle-times.
//
// A RunObservation is the per-run collection vessel: instrumented backends
// (mp/mp_runtime, sim/simulator) fetch the installed one with a single
// atomic load and, when present, feed their per-task charges into its
// CycleTimeEstimator and deposit the dag scheduler's task records at
// finish. Installing an observation never changes any computed result —
// MpReport, gathered matrices, and trace streams stay bit-identical.
//
// build_imbalance_report() then derives:
//   - makespan vs. the lower bound  total_units / sum_i(1/t_hat_i)  with
//     t_hat_i the units-weighted mean estimated rate of processor i — the
//     paper's perfectly-balanced bound, under observed rather than assumed
//     cycle-times;
//   - per-processor busy / idle / slack (slack: how much earlier the lane
//     finished than the makespan — pure tail slack, while idle also counts
//     in-run gaps);
//   - critical-path attribution from the dag scheduler's task records: the
//     heaviest weighted dependency chain, aggregated into (processor,
//     op-name) segments, so "which lane's which phase held the run" is one
//     table;
//   - the estimate table itself, with relative error against the true
//     t_ij when the machine grid is known, plus any drift events.
//
// write_imbalance_json() is byte-stable (format_compact, fixed key order)
// and deliberately excludes the wall-clock task fields — its bytes are
// identical for every thread count, which CI asserts.
#pragma once

#include <atomic>
#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/cycle_time_grid.hpp"
#include "core/rebalance.hpp"
#include "obs/cycle_estimator.hpp"
#include "util/task_graph.hpp"

namespace hetgrid {

/// Everything one observed run collects. Install with install_observation()
/// around the run; the estimator is thread-safe, `tasks` is written once by
/// the host at finish. The estimator's EWMA alpha / drift band are
/// configurable via the explicit constructor (`hetgrid observe
/// --ewma-alpha`); the estimator itself is immovable (it owns a mutex), so
/// options must be chosen at construction.
struct RunObservation {
  RunObservation() = default;
  explicit RunObservation(const CycleTimeEstimator::Options& opt)
      : estimator(opt) {}

  CycleTimeEstimator estimator;
  std::vector<TaskRecord> tasks;  // dag scheduler records (empty otherwise)
  /// Applied rebalances in step order (written by the host at the panel
  /// boundary that acted; empty when the rebalancer is off or never acted).
  std::vector<RebalanceEvent> rebalances;
};

/// Installs `obs` as the process-wide observation sink and returns the
/// previous one. Instrumentation sites pay one relaxed atomic load when
/// nothing is installed.
RunObservation* install_observation(RunObservation* obs);

namespace detail {
extern std::atomic<RunObservation*> g_observation;
}

inline RunObservation* installed_observation() {
  return detail::g_observation.load(std::memory_order_relaxed);
}

struct LaneStat {
  std::size_t proc = 0;
  double busy = 0.0;
  double idle = 0.0;   // makespan - busy
  double slack = 0.0;  // makespan - finish (tail slack)
  double finish = 0.0;
};

/// One aggregated critical-path segment: all chain records with this
/// (processor, op name), heaviest first.
struct CriticalSegment {
  std::size_t proc = 0;  // TaskGraph::kNoTag-tagged records: SIZE_MAX
  std::string op;
  double weight = 0.0;
  std::size_t tasks = 0;
};

struct EstimateRow {
  std::size_t proc = 0;
  ObsOp op = ObsOp::kUpdate;
  double estimate = 0.0;
  double units = 0.0;
  std::uint64_t samples = 0;
  bool has_true = false;
  double true_t = 0.0;
  double rel_err = 0.0;  // |estimate - true| / true (has_true only)
};

struct ImbalanceReport {
  double makespan = 0.0;
  double lower_bound = 0.0;       // 0 when the estimator saw no samples
  double critical_path_cost = 0.0;
  std::size_t critical_path_tasks = 0;
  std::vector<LaneStat> lanes;
  std::vector<CriticalSegment> critical;  // weight-descending
  std::vector<EstimateRow> estimates;     // (proc, op)-ascending
  std::vector<DriftEvent> drift;
  std::vector<RebalanceEvent> rebalances;  // applied rebalances, step order
};

/// Builds the report from a finished run: `busy` and `finish` are the
/// per-processor virtual busy times and final clocks (MpReport::busy /
/// MpReport::clock; a bulk-synchronous SimReport passes its busy vector
/// and a finish vector of `total_time` per lane). `true_grid` (optional)
/// adds per-lane ground truth to the estimate rows; `grid_cols` maps flat
/// processor ids to grid coordinates for it.
ImbalanceReport build_imbalance_report(const RunObservation& obs,
                                       const std::vector<double>& busy,
                                       const std::vector<double>& finish,
                                       const CycleTimeGrid* true_grid = nullptr,
                                       std::size_t grid_cols = 0);

/// Byte-stable JSON (doc/observability.md): fixed key order, format_compact
/// numbers, no wall-clock fields — identical bytes for any thread count.
void write_imbalance_json(std::ostream& os, const ImbalanceReport& rep);

/// Human-readable tables (the `hetgrid observe` output).
void print_imbalance(std::ostream& os, const ImbalanceReport& rep);

}  // namespace hetgrid
