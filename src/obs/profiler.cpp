#include "obs/profiler.hpp"

#include <algorithm>
#include <map>
#include <ostream>

#include "obs/chrome_trace.hpp"
#include "util/check.hpp"

namespace hetgrid {

namespace obs_detail {
std::atomic<Profiler*> g_profiler{nullptr};
}  // namespace obs_detail

namespace {

// Session counter: bumped on every start() so a thread's cached log
// pointer from a previous profiler is never reused against a new one.
std::atomic<std::uint64_t> g_session{0};
thread_local std::uint64_t t_session = 0;
thread_local void* t_log = nullptr;
thread_local std::string t_thread_name;

}  // namespace

struct Profiler::ThreadLog {
  struct RawSpan {
    const char* name;
    std::chrono::steady_clock::time_point begin;
    std::chrono::steady_clock::time_point end;
  };
  std::string name;
  std::vector<RawSpan> spans;
};

Profiler::Profiler() = default;

Profiler::~Profiler() {
  if (running()) stop();
}

void Profiler::start() {
  HG_CHECK(!running(), "Profiler::start called while already running");
  Profiler* expected = nullptr;
  HG_CHECK(obs_detail::g_profiler.compare_exchange_strong(
               expected, this, std::memory_order_acq_rel),
           "another Profiler is already installed");
  g_session.fetch_add(1, std::memory_order_relaxed);
  logs_.clear();
  lane_names_.clear();
  events_.clear();
  total_seconds_ = 0.0;
  running_.store(true, std::memory_order_release);
  start_tp_ = std::chrono::steady_clock::now();
  prof_set_thread_name("main");
  (void)log_for_current_thread();  // "main" is always lane 0
}

void Profiler::stop() {
  HG_CHECK(running(), "Profiler::stop called while not running");
  const auto end_tp = std::chrono::steady_clock::now();
  obs_detail::g_profiler.store(nullptr, std::memory_order_release);
  running_.store(false, std::memory_order_release);
  total_seconds_ = std::chrono::duration<double>(end_tp - start_tp_).count();

  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t lane = 0; lane < logs_.size(); ++lane) {
    const ThreadLog& log = *logs_[lane];
    lane_names_.push_back(
        log.name.empty() ? "thread-" + std::to_string(lane) : log.name);
    for (const ThreadLog::RawSpan& s : log.spans) {
      TraceEvent e;
      e.kind = TraceEventKind::kComputeBlock;
      e.proc = lane;
      e.start = std::chrono::duration<double>(s.begin - start_tp_).count();
      e.duration = std::chrono::duration<double>(s.end - s.begin).count();
      e.name = s.name;
      events_.push_back(std::move(e));
    }
  }
}

Profiler::ThreadLog* Profiler::log_for_current_thread() {
  const std::uint64_t session = g_session.load(std::memory_order_relaxed);
  if (t_session == session && t_log != nullptr)
    return static_cast<ThreadLog*>(t_log);
  std::lock_guard<std::mutex> lock(mu_);
  logs_.push_back(std::make_unique<ThreadLog>());
  ThreadLog* log = logs_.back().get();
  log->name = t_thread_name;
  t_session = session;
  t_log = log;
  return log;
}

void Profiler::record(const char* name,
                      std::chrono::steady_clock::time_point begin,
                      std::chrono::steady_clock::time_point end) {
  if (!running()) return;  // span outlived the profiler; drop it
  log_for_current_thread()->spans.push_back({name, begin, end});
}

double Profiler::span_seconds(const std::string& name) const {
  double acc = 0.0;
  for (const TraceEvent& e : events_)
    if (e.name == name) acc += e.duration;
  return acc;
}

void Profiler::write_chrome(std::ostream& os) const {
  write_chrome_trace(os, events_, lane_names_.size(), lane_names_);
}

Table Profiler::hotspot_table(std::size_t top_k) const {
  struct Agg {
    std::uint64_t calls = 0;
    double total = 0.0;
  };
  std::map<std::string, Agg> by_name;
  double all = 0.0;
  for (const TraceEvent& e : events_) {
    Agg& a = by_name[e.name];
    a.calls += 1;
    a.total += e.duration;
    all += e.duration;
  }
  std::vector<std::pair<std::string, Agg>> ranked(by_name.begin(),
                                                  by_name.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& x, const auto& y) {
    if (x.second.total != y.second.total) return x.second.total > y.second.total;
    return x.first < y.first;
  });
  if (ranked.size() > top_k) ranked.resize(top_k);

  Table table("hotspots (wall clock, top " + std::to_string(top_k) + ")");
  table.header({"span", "calls", "total ms", "mean us", "share"});
  for (const auto& [name, a] : ranked) {
    const double mean_us =
        a.calls == 0 ? 0.0 : a.total * 1e6 / static_cast<double>(a.calls);
    table.row({name, Table::num(static_cast<std::int64_t>(a.calls)),
               Table::num(a.total * 1e3, 3), Table::num(mean_us, 1),
               Table::num(all > 0.0 ? 100.0 * a.total / all : 0.0, 1) + "%"});
  }
  return table;
}

void prof_set_thread_name(const std::string& name) {
  t_thread_name = name;
  if (t_log != nullptr &&
      t_session == g_session.load(std::memory_order_relaxed))
    static_cast<Profiler::ThreadLog*>(t_log)->name = name;
}

}  // namespace hetgrid
