#include "obs/metrics.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

#include "obs/chrome_trace.hpp"

namespace hetgrid {

namespace obs_detail {
std::atomic<MetricsRegistry*> g_metrics{nullptr};
}  // namespace obs_detail

namespace {

// Atomic add / max for doubles via CAS (C++20 fetch_add on atomic<double>
// is not universally lock-free yet).
void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// Bucket index for value v: smallest e with v <= 2^e, clamped to the
// histogram's range. frexp(v) = f * 2^e with f in [0.5, 1), so e is the
// exponent of the enclosing power of two (exact powers land in their own
// bucket because f == 0.5 yields e one higher than needed — corrected by
// the f == 0.5 test).
std::size_t bucket_index(double v) {
  if (!(v > 0.0)) return 0;  // zeros and negatives land in bucket 0
  int e = 0;
  const double f = std::frexp(v, &e);
  if (f == 0.5) e -= 1;  // exact power of two: v == 2^(e-1)
  e = std::max(Histogram::kMinExp, std::min(Histogram::kMaxExp, e));
  return static_cast<std::size_t>(e - Histogram::kMinExp);
}

double bucket_edge(std::size_t idx) {
  return std::ldexp(1.0, static_cast<int>(idx) + Histogram::kMinExp);
}

}  // namespace

void Gauge::set(double v) {
  last_.store(v, std::memory_order_relaxed);
  atomic_max(max_, v);
}

void Histogram::record(double v) {
  counts_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
}

std::uint64_t Histogram::count() const {
  std::uint64_t n = 0;
  for (const auto& c : counts_) n += c.load(std::memory_order_relaxed);
  return n;
}

double Histogram::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  const double want = q * static_cast<double>(total);
  std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(want));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cum += counts_[i].load(std::memory_order_relaxed);
    if (cum >= rank) return bucket_edge(i);
  }
  return bucket_edge(kBuckets - 1);
}

std::vector<std::pair<double, std::uint64_t>> Histogram::buckets() const {
  std::vector<std::pair<double, std::uint64_t>> out;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = counts_[i].load(std::memory_order_relaxed);
    if (c > 0) out.emplace_back(bucket_edge(i), c);
  }
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\"metrics\":[";
  bool first = true;
  // The three maps are each name-sorted; merge them into one name-sorted
  // stream so the snapshot layout is independent of metric kinds.
  auto ci = counters_.begin();
  auto gi = gauges_.begin();
  auto hi = histograms_.begin();
  auto emit_sep = [&] {
    os << (first ? "\n" : ",\n") << "  ";
    first = false;
  };
  while (ci != counters_.end() || gi != gauges_.end() ||
         hi != histograms_.end()) {
    // Smallest pending name across the three maps.
    const std::string* next = nullptr;
    if (ci != counters_.end()) next = &ci->first;
    if (gi != gauges_.end() && (next == nullptr || gi->first < *next))
      next = &gi->first;
    if (hi != histograms_.end() && (next == nullptr || hi->first < *next))
      next = &hi->first;
    if (ci != counters_.end() && ci->first == *next) {
      emit_sep();
      os << "{\"name\":\"" << json_escape(ci->first)
         << "\",\"type\":\"counter\",\"value\":"
         << std::to_string(ci->second->value()) << "}";
      ++ci;
    } else if (gi != gauges_.end() && gi->first == *next) {
      emit_sep();
      os << "{\"name\":\"" << json_escape(gi->first)
         << "\",\"type\":\"gauge\",\"last\":"
         << format_compact(gi->second->last())
         << ",\"max\":" << format_compact(gi->second->max()) << "}";
      ++gi;
    } else {
      emit_sep();
      const Histogram& h = *hi->second;
      os << "{\"name\":\"" << json_escape(hi->first)
         << "\",\"type\":\"histogram\",\"count\":"
         << std::to_string(h.count())
         << ",\"sum\":" << format_compact(h.sum())
         << ",\"p50\":" << format_compact(h.quantile(0.50))
         << ",\"p95\":" << format_compact(h.quantile(0.95))
         << ",\"p99\":" << format_compact(h.quantile(0.99))
         << ",\"buckets\":[";
      bool bfirst = true;
      for (const auto& [edge, cnt] : h.buckets()) {
        os << (bfirst ? "" : ",") << "{\"le\":" << format_compact(edge)
           << ",\"count\":" << std::to_string(cnt) << "}";
        bfirst = false;
      }
      os << "]}";
      ++hi;
    }
  }
  os << "\n]}\n";
}

std::string MetricsRegistry::snapshot_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

MetricsRegistry* install_metrics(MetricsRegistry* m) {
  return obs_detail::g_metrics.exchange(m, std::memory_order_acq_rel);
}

}  // namespace hetgrid
