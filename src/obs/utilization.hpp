// Plain-text utilization report: one row per processor with its busy /
// compute / communication / idle breakdown against the makespan, rendered
// through util/table so it matches every other hetgrid report.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "util/table.hpp"

namespace hetgrid {

/// Builds the per-processor utilization table from a trace summary.
/// `labels` (optional, from proc_lane_labels) names the rows; otherwise
/// processors are named "P<id>". The final row aggregates the machine:
/// totals for times, mean utilization.
Table utilization_table(const TraceSummary& summary,
                        const std::vector<std::string>& labels = {},
                        const std::string& title = "per-processor utilization");

/// Minimum over processors of busy_time / makespan — the straggler's view
/// of the run (1.0 only for a perfectly balanced, communication-free
/// execution).
double min_utilization(const TraceSummary& summary);

/// Mean over processors of idle_time / makespan.
double mean_idle_fraction(const TraceSummary& summary);

}  // namespace hetgrid
