// Tracing and metrics for the simulators and runtimes.
//
// Every backend (the bulk-synchronous simulator in src/sim, the
// virtual-time executor in src/runtime, the asynchronous message-passing
// runtime in src/mp) can emit a timeline of typed spans — compute,
// send/recv, broadcast, phase markers — into a TraceSink. The sink is
// always optional: instrumentation sites take a `TraceSink*` that defaults
// to nullptr, and the emit helpers below reduce to a single pointer test
// on the null path, so untraced runs pay nothing measurable.
//
// From a recorded trace, summarize_trace() derives per-processor counters
// (busy/idle time, blocks and messages moved) whose defining invariant is
//   busy + idle == makespan   for every processor,
// with busy the measure of the union of that processor's spans (overlap
// between compute and communication, possible in the async MP model, is
// never double counted). The schema, the counter definitions, and the
// exporters are documented in doc/observability.md.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace hetgrid {

/// Span types. kPhase spans live on the synthetic "machine" lane (see
/// kMachineLane) and mark kernel steps / phases; all others belong to one
/// processor's timeline.
enum class TraceEventKind {
  kComputeBlock,  // block operations executed by one processor
  kSend,          // point-to-point message leaving a processor (MP runtime)
  kRecv,          // point-to-point message arriving at a processor
  kBroadcast,     // participation in a row/column ring broadcast (BSP models)
  kIdle,          // synthesized gap (append_idle_events)
  kPhase,         // step/phase marker on the machine lane
};

/// Stable lower-case name of an event kind ("compute_block", "send", ...);
/// used verbatim in the Chrome-trace "cat" field.
const char* to_string(TraceEventKind kind);

/// `proc` value for events that belong to the whole machine rather than to
/// one processor (phase markers, global charges like pivot-row swaps).
inline constexpr std::size_t kMachineLane =
    std::numeric_limits<std::size_t>::max();

/// `peer` value when a span has no communication partner.
inline constexpr std::size_t kNoPeer = std::numeric_limits<std::size_t>::max();

/// One timeline span, in virtual seconds.
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kComputeBlock;
  std::size_t proc = 0;       // flat processor id (grid_row * q + grid_col)
  double start = 0.0;         // virtual seconds from the run's origin
  double duration = 0.0;      // >= 0
  std::size_t step = 0;       // kernel step index k the span belongs to
  double blocks = 0.0;        // r x r blocks moved (send/recv/broadcast)
  std::size_t peer = kNoPeer; // send: destination, recv: source
  std::string name;           // phase label: "panel", "update", "l-bcast"...

  double end() const { return start + duration; }
};

/// Consumer of trace events. Implementations must tolerate events arriving
/// out of start-time order: the async MP runtime discovers timings as its
/// per-processor clocks advance, not globally sorted.
class TraceSink {
 public:
  virtual ~TraceSink();
  virtual void record(TraceEvent event) = 0;
};

/// Default sink: appends to an in-memory vector. The simulators are
/// single-threaded, so a plain vector (amortized O(1) push_back, no
/// locking) is "lock-free enough"; a concurrent backend would wrap one
/// sink per worker and merge.
class MemoryTraceSink final : public TraceSink {
 public:
  void record(TraceEvent event) override;

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

/// Per-processor counters derived from a trace.
struct ProcCounters {
  double compute_time = 0.0;  // sum of compute_block durations
  double comm_time = 0.0;     // sum of send/recv/broadcast durations
  /// Measure of the union of the processor's spans: time not idle. In the
  /// BSP models busy == compute + comm exactly (phases never overlap); in
  /// the async MP model compute can overlap communication, so busy may be
  /// less than the sum of the parts.
  double busy_time = 0.0;
  double idle_time = 0.0;     // makespan - busy_time
  double blocks_sent = 0.0;       // from kSend spans
  double blocks_received = 0.0;   // from kRecv and kBroadcast spans
  std::size_t messages_sent = 0;
  std::size_t messages_received = 0;

  double utilization(double makespan) const {
    return makespan > 0.0 ? busy_time / makespan : 0.0;
  }
};

struct TraceSummary {
  /// max(reported makespan, latest span end): the horizon against which
  /// idle time is measured, so busy + idle == makespan holds even if a
  /// trailing relay outlives the last compute.
  double makespan = 0.0;
  std::vector<ProcCounters> procs;
};

/// Aggregates a trace into per-processor counters. Events on kMachineLane,
/// kPhase markers, kIdle spans, and events of processors >= `processors`
/// are ignored. `reported_makespan` is the backend's makespan (SimReport /
/// MpReport); the summary extends it if any span ends later.
TraceSummary summarize_trace(const std::vector<TraceEvent>& events,
                             std::size_t processors,
                             double reported_makespan);

/// Appends one kIdle span per gap in each processor's span union, covering
/// [0, makespan] minus the busy intervals — so the exported Chrome trace
/// shows idle time explicitly instead of as blank space.
void append_idle_events(std::vector<TraceEvent>& events,
                        std::size_t processors, double makespan);

/// Emit helper used by the instrumented backends: one branch when no sink
/// is attached, so the null path compiles down to a pointer test.
inline void trace_span(TraceSink* sink, TraceEventKind kind, std::size_t proc,
                       double start, double duration, std::size_t step,
                       const char* name, double blocks = 0.0,
                       std::size_t peer = kNoPeer) {
  if (sink == nullptr) return;
  sink->record({kind, proc, start, duration, step, blocks, peer, name});
}

}  // namespace hetgrid
