// Wall-clock profiler: RAII scoped spans on std::chrono::steady_clock,
// recorded into per-thread buffers and merged when the profiler stops.
//
// This is the real-time sibling of the virtual-time TraceSink and follows
// the same null-pointer discipline: ProfScope's constructor loads one
// atomic pointer, and when no profiler is installed neither constructor
// nor destructor touches the clock — attaching (or not attaching) a
// profiler cannot change any computed result, only observe it.
//
// While running, each thread appends spans to its own buffer (registered
// once, under a mutex, on the thread's first span); there is no
// cross-thread synchronization on the hot path. stop() merges the buffers
// into per-thread lanes exportable through the existing Chrome-trace
// writer, plus a top-k hotspot table (util/table) aggregated by span name.
//
// Wall-clock lanes are *not* byte-stable across runs — real time never
// is. The deterministic side of a profiling run lives in obs/metrics.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "util/table.hpp"

namespace hetgrid {

class Profiler {
 public:
  Profiler();   // out of line: members need the complete ThreadLog
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Installs this profiler as the process-wide span recorder and names
  /// the calling thread's lane "main". Only one profiler may run at a
  /// time.
  void start();

  /// Uninstalls and merges every thread's buffer. Must be called after
  /// the instrumented work has quiesced (pools idle); spans recorded
  /// after stop() are dropped.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  struct ThreadLog;  // per-thread span buffer (defined in profiler.cpp)

  // --- Results, valid after stop():

  /// One lane per thread that recorded at least one span, in registration
  /// order ("main", then workers as they first record).
  std::size_t lanes() const { return lane_names_.size(); }
  const std::vector<std::string>& lane_names() const { return lane_names_; }

  /// Spans as trace events (proc = lane index, seconds relative to
  /// start()), ready for write_chrome_trace.
  const std::vector<TraceEvent>& events() const { return events_; }

  /// Wall-clock seconds between start() and stop().
  double total_seconds() const { return total_seconds_; }

  /// Sum of the durations of every span named `name`.
  double span_seconds(const std::string& name) const;

  /// Chrome/Perfetto trace with one lane per recording thread.
  void write_chrome(std::ostream& os) const;

  /// Top-k spans by total time: name, calls, total ms, mean us, share of
  /// all span time.
  Table hotspot_table(std::size_t top_k = 10) const;

  /// Called by ProfScope; appends to the calling thread's buffer.
  void record(const char* name,
              std::chrono::steady_clock::time_point begin,
              std::chrono::steady_clock::time_point end);

 private:
  ThreadLog* log_for_current_thread();

  std::mutex mu_;  // guards logs_ registration only
  std::vector<std::unique_ptr<ThreadLog>> logs_;
  std::chrono::steady_clock::time_point start_tp_;
  std::atomic<bool> running_{false};
  // Merged on stop():
  std::vector<std::string> lane_names_;
  std::vector<TraceEvent> events_;
  double total_seconds_ = 0.0;
};

namespace obs_detail {
extern std::atomic<Profiler*> g_profiler;
}  // namespace obs_detail

/// The currently running profiler, or nullptr.
inline Profiler* installed_profiler() {
  return obs_detail::g_profiler.load(std::memory_order_acquire);
}

/// Names the calling thread's profiler lane (thread pool workers call
/// this with "worker-<i>"). Safe — and a cheap thread-local store — when
/// no profiler is running.
void prof_set_thread_name(const std::string& name);

/// RAII scoped span: records [construction, destruction) under `name` on
/// the profiler installed at construction time. `name` must outlive the
/// scope (pass string literals).
class ProfScope {
 public:
  explicit ProfScope(const char* name)
      : prof_(installed_profiler()), name_(name) {
    if (prof_ != nullptr) begin_ = std::chrono::steady_clock::now();
  }
  ~ProfScope() {
    if (prof_ != nullptr)
      prof_->record(name_, begin_, std::chrono::steady_clock::now());
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  Profiler* prof_;
  const char* name_;
  std::chrono::steady_clock::time_point begin_;
};

}  // namespace hetgrid
