// Runtime cycle-time estimation: the load-balancing signal layer.
//
// The paper's allocations assume static, known cycle-times t_ij. On a real
// (non-dedicated) machine they drift, so a dynamic rebalancer needs the
// *effective* seconds-per-block-update each processor currently delivers.
// CycleTimeEstimator consumes per-task samples — (processor, op class,
// work units, seconds) — and maintains one EWMA estimate of seconds/unit
// per (processor, op class) lane, where a "unit" is the paper's flop
// measure: costs.X * vol_frac, i.e. the cycle-time-free part of a charge.
// Feeding it the backends' virtual-time charges therefore recovers the
// planted t_ij exactly, which is how estimator accuracy is tested; feeding
// wall-clock task durations recovers the machine's real effective rates.
//
// Two auxiliary signals ride on the lanes:
//   - panel-boundary snapshots: panel_boundary(k) freezes a copy of the
//     current estimates, so a rebalancer (or the imbalance report) can see
//     the estimate trajectory across kernel steps;
//   - drift events: once a lane has `min_samples` samples its EWMA is
//     "armed" as the baseline; whenever the EWMA later moves more than
//     `drift_band` (relative) away from the baseline, one typed DriftEvent
//     is emitted and the baseline re-arms at the new value. A planted 2x
//     mid-run slowdown therefore fires exactly once (the EWMA converges to
//     the new rate, which stays inside the re-armed band).
//
// Null-sink contract (doc/observability.md): instrumentation sites fetch
// the installed observation once (a single relaxed atomic load) and do
// nothing when none is installed. Observation never changes any computed
// result — samples are derived from values the backends compute anyway.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

namespace hetgrid {

/// Kernel-op classes the estimator distinguishes. Coarse on purpose: the
/// paper's cost model prices every op as cycle_time * flop-units, so one
/// rate per class is enough to reconstruct t_ij, and the classes map 1:1
/// onto the phases a rebalancer would re-cost (panel / solve / update).
enum class ObsOp : std::uint8_t {
  kPanel = 0,   // panel factorizations ("panel")
  kSolve = 1,   // triangular solves ("l-solve", "u-solve")
  kUpdate = 2,  // trailing updates and GEMM-like work ("update", "w-*")
  kAux = 3,     // everything else ("t-form", reductions)
};
inline constexpr std::size_t kObsOpCount = 4;

/// Stable lower-case class name ("panel", "solve", "update", "aux").
const char* obs_op_name(ObsOp op);

/// One (processor, op class) lane's current state.
struct CycleEstimate {
  std::size_t proc = 0;
  ObsOp op = ObsOp::kUpdate;
  double seconds_per_unit = 0.0;  // the EWMA estimate of effective t_ij
  double units = 0.0;             // total work units sampled on this lane
  std::uint64_t samples = 0;
};

/// Typed drift signal: lane (proc, op) moved from `before` (the armed
/// baseline) to `after` (the EWMA when the band was crossed) at `step`.
struct DriftEvent {
  std::size_t proc = 0;
  ObsOp op = ObsOp::kUpdate;
  std::size_t step = 0;
  double before = 0.0;
  double after = 0.0;
};

/// Estimates frozen at one panel boundary.
struct EstimatorSnapshot {
  std::size_t step = 0;
  std::vector<CycleEstimate> estimates;  // sorted by (proc, op)
};

class CycleTimeEstimator {
 public:
  struct Options {
    double alpha = 0.25;        // EWMA weight of the newest sample
    double drift_band = 0.5;    // relative band around the armed baseline
    std::uint64_t min_samples = 2;  // samples before a lane arms
    std::size_t max_snapshots = 64;  // oldest snapshots are dropped
  };

  CycleTimeEstimator() = default;
  explicit CycleTimeEstimator(const Options& opt) : opt_(opt) {}

  /// Folds one sample into lane (proc, op). `units` is the cycle-time-free
  /// work measure, `seconds` the observed duration; non-positive samples
  /// are ignored. Thread-safe (the serve introspection path reads state
  /// while a run feeds it).
  void sample(std::size_t proc, ObsOp op, double units, double seconds,
              std::size_t step);

  /// Freezes the current estimates as the snapshot for `step`.
  void panel_boundary(std::size_t step);

  /// Current estimates, sorted by (proc, op) — deterministic output order.
  std::vector<CycleEstimate> estimates() const;
  std::vector<DriftEvent> drift_events() const;
  std::vector<EstimatorSnapshot> snapshots() const;
  std::uint64_t total_samples() const;

  const Options& options() const { return opt_; }

 private:
  struct Lane {
    double ewma = 0.0;
    double units = 0.0;
    std::uint64_t samples = 0;
    double baseline = 0.0;
    bool armed = false;
  };

  // std::map keeps lanes ordered by (proc, op): estimates() and every
  // report built from it are byte-stable without a sort.
  mutable std::mutex mu_;
  Options opt_;
  std::map<std::pair<std::size_t, std::uint8_t>, Lane> lanes_;
  std::vector<DriftEvent> drift_;
  std::vector<EstimatorSnapshot> snapshots_;
  std::uint64_t total_samples_ = 0;
};

}  // namespace hetgrid
