#include "obs/chrome_trace.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

namespace hetgrid {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string format_compact(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  std::string s(buf);
  const std::size_t dot = s.find('.');
  std::size_t last = s.find_last_not_of('0');
  if (last == dot) last -= 1;
  s.erase(last + 1);
  return s;
}

namespace {

// Microseconds, the Chrome trace format's native unit.
std::string format_us(double seconds) { return format_compact(seconds * 1e6); }

std::string format_num(double v) { return format_compact(v); }

void write_metadata(std::ostream& os, std::size_t tid,
                    const std::string& name, bool first) {
  if (!first) os << ",\n";
  os << "  {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
     << ",\"args\":{\"name\":\"" << json_escape(name) << "\"}},\n"
     << "  {\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":"
     << tid << ",\"args\":{\"sort_index\":" << tid << "}}";
}

}  // namespace

std::vector<std::string> proc_lane_labels(std::size_t p, std::size_t q,
                                          const double* cycle_times) {
  std::vector<std::string> labels;
  labels.reserve(p * q);
  for (std::size_t i = 0; i < p; ++i)
    for (std::size_t j = 0; j < q; ++j) {
      std::ostringstream lane;
      lane << "P(" << i << "," << j << ")";
      if (cycle_times != nullptr)
        lane << " t=" << format_num(cycle_times[i * q + j]);
      labels.push_back(lane.str());
    }
  return labels;
}

void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceEvent>& events,
                        std::size_t processors,
                        const std::vector<std::string>& labels) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  os << "  {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
     << "\"args\":{\"name\":\"hetgrid\"}}";
  for (std::size_t id = 0; id < processors; ++id) {
    const std::string name =
        id < labels.size() ? labels[id] : "P" + std::to_string(id);
    write_metadata(os, id, name, false);
  }
  write_metadata(os, processors, "machine", false);

  for (const TraceEvent& e : events) {
    const std::size_t tid = e.proc == kMachineLane ? processors : e.proc;
    os << ",\n  {\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
       << to_string(e.kind) << "\",\"ph\":\"X\",\"ts\":" << format_us(e.start)
       << ",\"dur\":" << format_us(e.duration) << ",\"pid\":0,\"tid\":" << tid
       << ",\"args\":{\"step\":" << e.step;
    if (e.blocks > 0.0) os << ",\"blocks\":" << format_num(e.blocks);
    if (e.peer != kNoPeer) os << ",\"peer\":" << e.peer;
    os << "}}";
  }
  os << "\n]}\n";
}

}  // namespace hetgrid
