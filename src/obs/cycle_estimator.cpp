#include "obs/cycle_estimator.hpp"

#include <cmath>

namespace hetgrid {

const char* obs_op_name(ObsOp op) {
  switch (op) {
    case ObsOp::kPanel:
      return "panel";
    case ObsOp::kSolve:
      return "solve";
    case ObsOp::kUpdate:
      return "update";
    case ObsOp::kAux:
      return "aux";
  }
  return "?";
}

void CycleTimeEstimator::sample(std::size_t proc, ObsOp op, double units,
                                double seconds, std::size_t step) {
  if (!(units > 0.0) || !(seconds > 0.0)) return;
  const double rate = seconds / units;
  std::lock_guard<std::mutex> lock(mu_);
  Lane& lane = lanes_[{proc, static_cast<std::uint8_t>(op)}];
  lane.ewma = lane.samples == 0
                  ? rate
                  : opt_.alpha * rate + (1.0 - opt_.alpha) * lane.ewma;
  lane.units += units;
  lane.samples += 1;
  ++total_samples_;
  if (!lane.armed) {
    if (lane.samples >= opt_.min_samples) {
      lane.baseline = lane.ewma;
      lane.armed = true;
    }
    return;
  }
  if (std::abs(lane.ewma - lane.baseline) >
      opt_.drift_band * std::abs(lane.baseline)) {
    drift_.push_back(DriftEvent{proc, op, step, lane.baseline, lane.ewma});
    lane.baseline = lane.ewma;  // re-arm: a settled shift fires only once
  }
}

void CycleTimeEstimator::panel_boundary(std::size_t step) {
  std::lock_guard<std::mutex> lock(mu_);
  EstimatorSnapshot snap;
  snap.step = step;
  snap.estimates.reserve(lanes_.size());
  for (const auto& [key, lane] : lanes_)
    snap.estimates.push_back(CycleEstimate{key.first,
                                           static_cast<ObsOp>(key.second),
                                           lane.ewma, lane.units,
                                           lane.samples});
  snapshots_.push_back(std::move(snap));
  if (snapshots_.size() > opt_.max_snapshots)
    snapshots_.erase(snapshots_.begin(),
                     snapshots_.begin() +
                         static_cast<std::ptrdiff_t>(snapshots_.size() -
                                                     opt_.max_snapshots));
}

std::vector<CycleEstimate> CycleTimeEstimator::estimates() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CycleEstimate> out;
  out.reserve(lanes_.size());
  for (const auto& [key, lane] : lanes_)
    out.push_back(CycleEstimate{key.first, static_cast<ObsOp>(key.second),
                                lane.ewma, lane.units, lane.samples});
  return out;
}

std::vector<DriftEvent> CycleTimeEstimator::drift_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return drift_;
}

std::vector<EstimatorSnapshot> CycleTimeEstimator::snapshots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshots_;
}

std::uint64_t CycleTimeEstimator::total_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_samples_;
}

}  // namespace hetgrid
