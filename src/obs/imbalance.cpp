#include "obs/imbalance.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <map>
#include <ostream>

#include "obs/chrome_trace.hpp"

namespace hetgrid {

namespace detail {
std::atomic<RunObservation*> g_observation{nullptr};
}

RunObservation* install_observation(RunObservation* obs) {
  return detail::g_observation.exchange(obs, std::memory_order_relaxed);
}

ImbalanceReport build_imbalance_report(const RunObservation& obs,
                                       const std::vector<double>& busy,
                                       const std::vector<double>& finish,
                                       const CycleTimeGrid* true_grid,
                                       std::size_t grid_cols) {
  ImbalanceReport rep;
  const std::size_t procs = std::min(busy.size(), finish.size());
  for (const double f : finish) rep.makespan = std::max(rep.makespan, f);

  rep.lanes.reserve(procs);
  for (std::size_t i = 0; i < procs; ++i) {
    LaneStat lane;
    lane.proc = i;
    lane.busy = busy[i];
    lane.finish = finish[i];
    lane.idle = std::max(0.0, rep.makespan - busy[i]);
    lane.slack = std::max(0.0, rep.makespan - finish[i]);
    rep.lanes.push_back(lane);
  }

  // Estimate rows + the lower bound. Per processor, the units-weighted
  // mean estimated rate stands in for t_i; the bound is the perfectly
  // balanced makespan total_units / sum_i (1 / t_hat_i) — the paper's
  // bound evaluated at the observed cycle-times.
  const std::vector<CycleEstimate> est = obs.estimator.estimates();
  std::map<std::size_t, std::pair<double, double>> per_proc;  // units, cost
  double total_units = 0.0;
  for (const CycleEstimate& e : est) {
    EstimateRow row;
    row.proc = e.proc;
    row.op = e.op;
    row.estimate = e.seconds_per_unit;
    row.units = e.units;
    row.samples = e.samples;
    if (true_grid != nullptr && grid_cols > 0) {
      row.has_true = true;
      row.true_t = (*true_grid)(e.proc / grid_cols, e.proc % grid_cols);
      if (row.true_t > 0.0)
        row.rel_err = std::abs(row.estimate - row.true_t) / row.true_t;
    }
    rep.estimates.push_back(row);
    per_proc[e.proc].first += e.units;
    per_proc[e.proc].second += e.units * e.seconds_per_unit;
    total_units += e.units;
  }
  double aggregate_speed = 0.0;
  for (const auto& [proc, uw] : per_proc) {
    (void)proc;
    if (uw.first > 0.0 && uw.second > 0.0)
      aggregate_speed += uw.first / uw.second;  // 1 / t_hat_i
  }
  if (aggregate_speed > 0.0) rep.lower_bound = total_units / aggregate_speed;

  // Critical-path attribution: walk the heaviest chain through the task
  // records (ties break to the lowest record index, matching the
  // deterministic chain construction), then aggregate per (proc, op).
  std::ptrdiff_t head = -1;
  for (std::size_t r = 0; r < obs.tasks.size(); ++r)
    if (head < 0 ||
        obs.tasks[r].chain_cost >
            obs.tasks[static_cast<std::size_t>(head)].chain_cost)
      head = static_cast<std::ptrdiff_t>(r);
  std::map<std::pair<std::size_t, std::string>, CriticalSegment> segs;
  for (std::ptrdiff_t r = head; r >= 0;
       r = obs.tasks[static_cast<std::size_t>(r)].chain_pred) {
    const TaskRecord& t = obs.tasks[static_cast<std::size_t>(r)];
    rep.critical_path_tasks += 1;
    const std::size_t proc =
        t.tag == TaskGraph::kNoTag ? SIZE_MAX : static_cast<std::size_t>(t.tag);
    CriticalSegment& s = segs[{proc, t.name}];
    s.proc = proc;
    s.op = t.name;
    s.weight += t.weight;
    s.tasks += 1;
  }
  if (head >= 0)
    rep.critical_path_cost =
        obs.tasks[static_cast<std::size_t>(head)].chain_cost;
  for (auto& [key, seg] : segs) {
    (void)key;
    rep.critical.push_back(std::move(seg));
  }
  std::sort(rep.critical.begin(), rep.critical.end(),
            [](const CriticalSegment& a, const CriticalSegment& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              if (a.proc != b.proc) return a.proc < b.proc;
              return a.op < b.op;
            });

  rep.drift = obs.estimator.drift_events();
  rep.rebalances = obs.rebalances;
  return rep;
}

namespace {

long long json_proc(std::size_t proc) {
  return proc == SIZE_MAX ? -1 : static_cast<long long>(proc);
}

}  // namespace

void write_imbalance_json(std::ostream& os, const ImbalanceReport& rep) {
  os << "{\"imbalance\":{";
  os << "\"makespan\":" << format_compact(rep.makespan);
  os << ",\"lower_bound\":" << format_compact(rep.lower_bound);
  os << ",\"critical_path\":{\"cost\":"
     << format_compact(rep.critical_path_cost)
     << ",\"tasks\":" << rep.critical_path_tasks << ",\"segments\":[";
  for (std::size_t i = 0; i < rep.critical.size(); ++i) {
    const CriticalSegment& s = rep.critical[i];
    if (i != 0) os << ",";
    os << "{\"proc\":" << json_proc(s.proc) << ",\"op\":\"" << s.op
       << "\",\"weight\":" << format_compact(s.weight)
       << ",\"tasks\":" << s.tasks << "}";
  }
  os << "]},\"lanes\":[";
  for (std::size_t i = 0; i < rep.lanes.size(); ++i) {
    const LaneStat& l = rep.lanes[i];
    if (i != 0) os << ",";
    os << "{\"proc\":" << l.proc << ",\"busy\":" << format_compact(l.busy)
       << ",\"idle\":" << format_compact(l.idle)
       << ",\"slack\":" << format_compact(l.slack)
       << ",\"finish\":" << format_compact(l.finish) << "}";
  }
  os << "],\"estimates\":[";
  for (std::size_t i = 0; i < rep.estimates.size(); ++i) {
    const EstimateRow& e = rep.estimates[i];
    if (i != 0) os << ",";
    os << "{\"proc\":" << e.proc << ",\"op\":\"" << obs_op_name(e.op)
       << "\",\"estimate\":" << format_compact(e.estimate)
       << ",\"units\":" << format_compact(e.units)
       << ",\"samples\":" << e.samples;
    if (e.has_true)
      os << ",\"true\":" << format_compact(e.true_t)
         << ",\"rel_err\":" << format_compact(e.rel_err);
    os << "}";
  }
  os << "],\"drift\":[";
  for (std::size_t i = 0; i < rep.drift.size(); ++i) {
    const DriftEvent& d = rep.drift[i];
    if (i != 0) os << ",";
    os << "{\"proc\":" << d.proc << ",\"op\":\"" << obs_op_name(d.op)
       << "\",\"step\":" << d.step
       << ",\"before\":" << format_compact(d.before)
       << ",\"after\":" << format_compact(d.after) << "}";
  }
  os << "],\"rebalances\":[";
  for (std::size_t i = 0; i < rep.rebalances.size(); ++i) {
    const RebalanceEvent& r = rep.rebalances[i];
    if (i != 0) os << ",";
    os << "{\"step\":" << r.step << ",\"blocks\":" << r.blocks_moved
       << ",\"before\":" << format_compact(r.current_sweep)
       << ",\"after\":" << format_compact(r.proposed_sweep)
       << ",\"cost\":" << format_compact(r.migration_cost) << "}";
  }
  os << "]}}\n";
}

void print_imbalance(std::ostream& os, const ImbalanceReport& rep) {
  os << "makespan      " << format_compact(rep.makespan) << "\n";
  os << "lower bound   " << format_compact(rep.lower_bound);
  if (rep.lower_bound > 0.0 && rep.makespan > 0.0)
    os << "  (achieved/bound = "
       << format_compact(rep.makespan / rep.lower_bound) << ")";
  os << "\n\n";

  os << "proc       busy       idle      slack     finish\n";
  for (const LaneStat& l : rep.lanes) {
    os << std::setw(4) << l.proc << std::setw(11) << format_compact(l.busy)
       << std::setw(11) << format_compact(l.idle) << std::setw(11)
       << format_compact(l.slack) << std::setw(11)
       << format_compact(l.finish) << "\n";
  }

  if (!rep.critical.empty()) {
    os << "\ncritical path: cost " << format_compact(rep.critical_path_cost)
       << " across " << rep.critical_path_tasks << " tasks\n";
    os << "proc  op                weight  tasks\n";
    for (const CriticalSegment& s : rep.critical) {
      if (s.proc == SIZE_MAX)
        os << "   -";
      else
        os << std::setw(4) << s.proc;
      os << "  " << std::left << std::setw(14) << s.op << std::right
         << std::setw(10) << format_compact(s.weight) << std::setw(7)
         << s.tasks << "\n";
    }
  }

  if (!rep.estimates.empty()) {
    os << "\nproc  op       est t_ij     units  samples";
    const bool truth =
        std::any_of(rep.estimates.begin(), rep.estimates.end(),
                    [](const EstimateRow& e) { return e.has_true; });
    if (truth) os << "   true t_ij    rel err";
    os << "\n";
    for (const EstimateRow& e : rep.estimates) {
      os << std::setw(4) << e.proc << "  " << std::left << std::setw(7)
         << obs_op_name(e.op) << std::right << std::setw(11)
         << format_compact(e.estimate) << std::setw(10)
         << format_compact(e.units) << std::setw(9) << e.samples;
      if (e.has_true)
        os << std::setw(12) << format_compact(e.true_t) << std::setw(11)
           << format_compact(e.rel_err);
      os << "\n";
    }
  }

  for (const DriftEvent& d : rep.drift)
    os << "\ndrift: proc " << d.proc << " " << obs_op_name(d.op) << " at step "
       << d.step << ": " << format_compact(d.before) << " -> "
       << format_compact(d.after) << "\n";

  for (const RebalanceEvent& r : rep.rebalances)
    os << "\nrebalance: step " << r.step << " moved " << r.blocks_moved
       << " blocks, sweep " << format_compact(r.current_sweep) << " -> "
       << format_compact(r.proposed_sweep) << " (migration cost "
       << format_compact(r.migration_cost) << ")\n";
}

}  // namespace hetgrid
