#include "obs/utilization.hpp"

#include <algorithm>

namespace hetgrid {

Table utilization_table(const TraceSummary& summary,
                        const std::vector<std::string>& labels,
                        const std::string& title) {
  Table t(title);
  t.header({"proc", "busy", "compute", "comm", "idle", "util", "msgs_out",
            "msgs_in", "blocks_in"});
  double busy = 0.0, compute = 0.0, comm = 0.0, idle = 0.0, util = 0.0;
  double blocks_in = 0.0;
  std::int64_t msgs_out = 0, msgs_in = 0;
  for (std::size_t id = 0; id < summary.procs.size(); ++id) {
    const ProcCounters& pc = summary.procs[id];
    const std::string name =
        id < labels.size() ? labels[id] : "P" + std::to_string(id);
    t.row({name, Table::num(pc.busy_time, 4), Table::num(pc.compute_time, 4),
           Table::num(pc.comm_time, 4), Table::num(pc.idle_time, 4),
           Table::num(pc.utilization(summary.makespan), 3),
           Table::num(static_cast<std::int64_t>(pc.messages_sent)),
           Table::num(static_cast<std::int64_t>(pc.messages_received)),
           Table::num(pc.blocks_received, 1)});
    busy += pc.busy_time;
    compute += pc.compute_time;
    comm += pc.comm_time;
    idle += pc.idle_time;
    util += pc.utilization(summary.makespan);
    msgs_out += static_cast<std::int64_t>(pc.messages_sent);
    msgs_in += static_cast<std::int64_t>(pc.messages_received);
    blocks_in += pc.blocks_received;
  }
  const double n = summary.procs.empty()
                       ? 1.0
                       : static_cast<double>(summary.procs.size());
  t.row({"total", Table::num(busy, 4), Table::num(compute, 4),
         Table::num(comm, 4), Table::num(idle, 4), Table::num(util / n, 3),
         Table::num(msgs_out), Table::num(msgs_in),
         Table::num(blocks_in, 1)});
  return t;
}

double min_utilization(const TraceSummary& summary) {
  double lo = summary.procs.empty() ? 0.0 : 1.0;
  for (const ProcCounters& pc : summary.procs)
    lo = std::min(lo, pc.utilization(summary.makespan));
  return lo;
}

double mean_idle_fraction(const TraceSummary& summary) {
  if (summary.procs.empty() || summary.makespan <= 0.0) return 0.0;
  double acc = 0.0;
  for (const ProcCounters& pc : summary.procs)
    acc += pc.idle_time / summary.makespan;
  return acc / static_cast<double>(summary.procs.size());
}

}  // namespace hetgrid
