#include "core/local_search.hpp"

#include <utility>

#include "core/heuristic.hpp"

namespace hetgrid {

namespace {

GridAllocation default_allocator(const CycleTimeGrid& grid) {
  return heuristic_allocation(grid);
}

}  // namespace

LocalSearchResult local_search(const CycleTimeGrid& start,
                               const LocalSearchOptions& opts) {
  const auto score = opts.allocator ? opts.allocator : default_allocator;
  const std::size_t n = start.size();

  LocalSearchResult res{start, score(start), 0.0, 0, false};
  res.obj2 = obj2_value(res.alloc);

  for (int round = 0; round < opts.max_swaps; ++round) {
    double best_obj = res.obj2;
    std::size_t best_a = 0, best_b = 0;
    GridAllocation best_alloc;
    bool improved = false;

    std::vector<double> values = res.grid.row_major();
    for (std::size_t a = 0; a + 1 < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        if (values[a] == values[b]) continue;  // no-op swap
        std::swap(values[a], values[b]);
        const CycleTimeGrid cand(res.grid.rows(), res.grid.cols(), values);
        GridAllocation alloc = score(cand);
        const double obj = obj2_value(alloc);
        if (obj > best_obj * (1.0 + 1e-12)) {
          best_obj = obj;
          best_a = a;
          best_b = b;
          best_alloc = std::move(alloc);
          improved = true;
        }
        std::swap(values[a], values[b]);  // restore
      }
    }

    if (!improved) {
      res.local_optimum = true;
      return res;
    }
    std::swap(values[best_a], values[best_b]);
    res.grid = CycleTimeGrid(res.grid.rows(), res.grid.cols(),
                             std::move(values));
    res.alloc = std::move(best_alloc);
    res.obj2 = best_obj;
    res.swaps += 1;
  }
  return res;  // swap cap hit; local_optimum stays false
}

LocalSearchResult solve_local_search(std::size_t p, std::size_t q,
                                     std::vector<double> pool,
                                     const LocalSearchOptions& opts) {
  const HeuristicResult h = solve_heuristic(p, q, std::move(pool));
  return local_search(h.final().grid, opts);
}

}  // namespace hetgrid
