// Swap-based local search over arrangements — a middle tier between the
// polynomial heuristic and the exponential exhaustive search.
//
// The paper leaves the arrangement choice to either the sorted heuristic
// (Section 4.4.1 + refinement) or full enumeration (Section 4.3). Local
// search starts from the heuristic's converged arrangement and repeatedly
// applies the best improving swap of two grid positions, scoring each
// arrangement with a caller-selected allocator (the SVD heuristic for
// speed, or the exact spanning-tree solver on small grids). It closes
// most of the heuristic-to-optimal gap at polynomial cost (see
// bench/ablation_exact_gap).
#pragma once

#include <functional>

#include "core/allocation.hpp"
#include "core/cycle_time_grid.hpp"

namespace hetgrid {

struct LocalSearchOptions {
  /// Score an arrangement: returns a tight feasible allocation whose obj2
  /// is the arrangement's value. Default (empty) uses the SVD heuristic
  /// allocation.
  std::function<GridAllocation(const CycleTimeGrid&)> allocator;
  /// Stop after this many improving swaps (safety cap).
  int max_swaps = 1000;
};

struct LocalSearchResult {
  CycleTimeGrid grid;
  GridAllocation alloc;
  double obj2 = 0.0;
  int swaps = 0;        // improving swaps applied
  bool local_optimum = false;  // no single swap improves further
};

/// Best-improvement swap search from `start`.
LocalSearchResult local_search(const CycleTimeGrid& start,
                               const LocalSearchOptions& opts = {});

/// Convenience: heuristic (arrangement + refinement) followed by local
/// search from its converged arrangement.
LocalSearchResult solve_local_search(std::size_t p, std::size_t q,
                                     std::vector<double> pool,
                                     const LocalSearchOptions& opts = {});

}  // namespace hetgrid
