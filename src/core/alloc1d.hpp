// Uni-dimensional heterogeneous allocation (the paper's refs [5, 6]),
// needed in two places:
//   * the Kalinov–Lastovetsky baseline balances each processor column
//     independently with the 1D scheme, then balances across columns;
//   * the LU/QR kernels order the panel columns with the 1D scheme applied
//     to the aggregate column speeds (the "ABAABA" example, Section 3.2.2).
//
// Problem: distribute B identical slots over m processors with cycle-times
// t_1..t_m, minimizing max_i n_i * t_i subject to sum n_i = B. The
// incremental greedy — repeatedly give the next slot to the processor whose
// finish time (n_i + 1) * t_i is smallest — is optimal, and the order in
// which slots are handed out is the balanced period ordering.
#pragma once

#include <cstddef>
#include <vector>

namespace hetgrid {

struct Alloc1dResult {
  /// Slots per processor; sums to the requested B.
  std::vector<std::size_t> counts;
  /// order[k] = processor receiving the k-th slot; the period ordering used
  /// for LU/QR panel columns.
  std::vector<std::size_t> order;
  /// max_i counts[i] * t_i, the period's makespan.
  double makespan = 0.0;
};

/// Optimal 1D allocation by incremental greedy. Requires positive
/// cycle-times; B may be 0 (empty result). Ties broken toward the lower
/// processor index, so results are deterministic.
Alloc1dResult allocate_1d(const std::vector<double>& cycle_times,
                          std::size_t slots);

/// Proportional (rational) shares 1/t_i normalized to sum 1 — the ideal
/// shares the greedy approximates; used for distributing matrix rows in the
/// Kalinov–Lastovetsky scheme and by the rounding tests.
std::vector<double> proportional_shares(const std::vector<double>& cycle_times);

/// Aggregate cycle-time of a group of processors working side by side with
/// proportional shares: 1 / sum_i (1/t_i). A whole processor column behaves
/// like a single processor of this speed (up to the per-column processor
/// count factor, which cancels in ratios).
double aggregate_cycle_time(const std::vector<double>& cycle_times);

}  // namespace hetgrid
