// The p x q grid of processor cycle-times that every solver operates on.
//
// A *cycle-time* t_ij is the (normalized) time processor P_ij needs to
// update one r x r matrix block; smaller is faster (paper Figure 1). The
// grid may be built directly from a p x q table, or from a flat pool of n
// processors plus an arrangement (a permutation placing processor
// perm[i*q+j] at grid position (i,j)).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace hetgrid {

class CycleTimeGrid {
 public:
  /// Builds from row-major values; all must be positive.
  CycleTimeGrid(std::size_t p, std::size_t q, std::vector<double> row_major);

  /// Builds by placing `pool[perm[i*q + j]]` at position (i,j).
  /// `perm` must be a permutation of 0..p*q-1.
  static CycleTimeGrid from_arrangement(std::size_t p, std::size_t q,
                                        const std::vector<double>& pool,
                                        const std::vector<std::size_t>& perm);

  /// Canonical paper arrangement (Section 4.4.1): sort the pool ascending
  /// and fill row-major, so t_{i,j} <= t_{i,j+1} and t_{i,q} <= t_{i+1,1}.
  static CycleTimeGrid sorted_row_major(std::size_t p, std::size_t q,
                                        std::vector<double> pool);

  std::size_t rows() const { return p_; }
  std::size_t cols() const { return q_; }
  std::size_t size() const { return p_ * q_; }

  double operator()(std::size_t i, std::size_t j) const {
    HG_DCHECK(i < p_ && j < q_, "grid index out of range");
    return t_[i * q_ + j];
  }

  const std::vector<double>& row_major() const { return t_; }

  /// True if every row and every column is non-decreasing (the arrangement
  /// class Theorem 1 reduces the search to).
  bool is_non_decreasing() const;

  /// True if the matrix is (numerically) rank 1: every 2x2 minor vanishes
  /// relative to the entries involved (within `tol`). Rank-1 grids admit a
  /// perfectly balanced allocation (Section 4.3.2).
  bool is_rank_one(double tol = 1e-12) const;

  /// Element-wise inverse (the T^inv the heuristic takes the SVD of).
  std::vector<double> inverse_row_major() const;

  /// Sum of 1/t_ij over the whole grid: the aggregate compute capacity, and
  /// the denominator of the perfect-balance bound.
  double total_capacity() const;

  std::string to_string(int precision = 4) const;

  friend bool operator==(const CycleTimeGrid&, const CycleTimeGrid&) = default;

 private:
  std::size_t p_, q_;
  std::vector<double> t_;
};

}  // namespace hetgrid
