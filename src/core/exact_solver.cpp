#include "core/exact_solver.hpp"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "util/thread_pool.hpp"

namespace hetgrid {

namespace {

// Relative slack when checking the non-tree inequalities: propagation is a
// chain of multiplications, so allow a little accumulated roundoff.
constexpr double kTol = 1e-9;

// Edges are decided in row-major index order; the search splits into tasks
// on the include/exclude prefix of the first kSplitDepth edges. The depth
// is a function of the grid alone (never of the thread count), so the task
// list — and with it every counter and the returned tree — is identical
// for any number of workers.
constexpr std::uint32_t kSplitDepth = 10;

struct Counters {
  std::uint64_t trees_enumerated = 0;
  std::uint64_t trees_acceptable = 0;
  std::uint64_t nodes_visited = 0;
  std::uint64_t subtrees_pruned = 0;

  void add(const Counters& o) {
    trees_enumerated += o.trees_enumerated;
    trees_acceptable += o.trees_acceptable;
    nodes_visited += o.nodes_visited;
    subtrees_pruned += o.subtrees_pruned;
  }
};

struct Candidate {
  bool found = false;
  double obj2 = 0.0;  // incremental value; only used to compare candidates
  std::vector<std::uint32_t> edge_idx;  // ascending edge indices of the tree
};

// An include/exclude decision prefix: bit e of `mask` set means edge e is
// included, for e < depth. Only structurally valid prefixes are emitted, so
// replaying one never needs checks.
struct PrefixTask {
  std::uint32_t depth = 0;
  std::uint64_t mask = 0;
};

// The branch-and-bound engine. One instance per task (and one for prefix
// generation); all state is local, so tasks run concurrently without
// sharing anything but the read-only grid.
//
// Partial-forest state: every vertex v carries a relative share val_[v].
// Within one union-find component with free scale x, the induced point is
// r_i = val_[i] * x and c_j = val_[p+j] / x, so the product r_i c_j of any
// same-component (row, column) pair is val-determined and scale-free. That
// yields
//   * an admissible Obj2 bound: obj2 = sum_ij r_i c_j, where same-component
//     pairs contribute their fixed product and cross-component pairs at
//     most 1/t_ij (any acceptable completion must satisfy r_i t_ij c_j <= 1);
//   * an infeasibility cut: a same-component pair with
//     val_i * val_j * t_ij > 1 + kTol violates its constraint in EVERY
//     completion, so the subtree holds no acceptable tree.
class Search {
 public:
  Search(const CycleTimeGrid& grid, bool prune)
      : grid_(grid),
        p_(grid.rows()),
        q_(grid.cols()),
        n_(p_ + q_),
        needed_(n_ - 1),
        n_edges_(static_cast<std::uint32_t>(p_ * q_)),
        prune_(prune),
        t_(grid.row_major()),
        uf_(n_),
        val_(n_, 1.0) {
    inv_t_.resize(t_.size());
    ub_ = 0.0;
    for (std::size_t k = 0; k < t_.size(); ++k) {
      inv_t_[k] = 1.0 / t_[k];
      ub_ += inv_t_[k];  // all pairs start cross-component: capacity bound
    }
    chosen_.reserve(needed_);
  }

  // Replays a prefix emitted by a generation pass.
  void replay(const PrefixTask& task) {
    for (std::uint32_t e = 0; e < task.depth; ++e)
      if (task.mask >> e & 1ull) {
        apply_include(e);
        chosen_.push_back(e);
      }
  }

  // Walks the subtree rooted at the current state, deciding edges from
  // `start` on. Generation mode (out_prefixes != nullptr): nodes at depth
  // `limit` — and complete trees above it — are emitted as prefixes instead
  // of being expanded/evaluated; the executor that replays them re-enters
  // them, so they are not counted here. Execution mode: pass
  // limit > n_edges() so every node is expanded.
  void search(std::uint32_t start, std::uint32_t limit,
              std::vector<PrefixTask>* out_prefixes, Candidate& best,
              Counters& cnt) {
    std::vector<Frame> stack;
    stack.reserve(n_edges_ + 1 - start);
    stack.push_back({start, 0, 0, 0, 0, 0.0, 0});
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.stage == 0) {
        const bool leaf = chosen_.size() == needed_;
        if (prune_ && (viol_ > 0 || ub_ <= best.obj2)) {
          ++cnt.nodes_visited;
          ++cnt.subtrees_pruned;
          stack.pop_back();
          continue;
        }
        if (out_prefixes != nullptr && (leaf || f.idx == limit)) {
          out_prefixes->push_back({f.idx, mask_});
          stack.pop_back();
          continue;
        }
        ++cnt.nodes_visited;
        if (leaf) {
          evaluate_leaf(best, cnt);
          stack.pop_back();
          continue;
        }
        if (f.idx == n_edges_ ||
            chosen_.size() + (n_edges_ - f.idx) < needed_ ||
            !completable(f.idx)) {
          stack.pop_back();
          continue;
        }
        // Branch 1: include edges[idx] if it joins two components.
        f.uf_mark = uf_.checkpoint();
        f.val_mark = val_undo_.size();
        f.saved_ub = ub_;
        f.saved_viol = viol_;
        const std::size_t row = f.idx / q_, colv = p_ + f.idx % q_;
        if (uf_.find(row) != uf_.find(colv)) {
          apply_include(f.idx);
          chosen_.push_back(f.idx);
          if (out_prefixes != nullptr) mask_ |= 1ull << f.idx;
          f.stage = 1;
          f.included = 1;
        } else {
          f.stage = 2;  // cycle edge: only the exclude branch exists
        }
        stack.push_back({f.idx + 1, 0, 0, 0, 0, 0.0, 0});
        continue;
      }
      if (f.stage == 1) {
        // Back from the include branch: restore the pre-include state
        // (saved copies, never inverse arithmetic, so the state is
        // bit-identical to a fresh replay of the same decisions).
        chosen_.pop_back();
        if (out_prefixes != nullptr) mask_ &= ~(1ull << f.idx);
        uf_.rollback(f.uf_mark);
        while (val_undo_.size() > f.val_mark) {
          val_[val_undo_.back().vertex] = val_undo_.back().old_value;
          val_undo_.pop_back();
        }
        ub_ = f.saved_ub;
        viol_ = f.saved_viol;
        f.stage = 2;
        stack.push_back({f.idx + 1, 0, 0, 0, 0, 0.0, 0});
        continue;
      }
      stack.pop_back();  // both branches done
    }
  }

  std::uint32_t n_edges() const { return n_edges_; }

 private:
  struct ValUndo {
    std::size_t vertex;
    double old_value;
  };

  struct Frame {
    std::uint32_t idx;      // edge this node decides
    std::uint8_t stage;     // 0 fresh, 1 include explored, 2 exclude explored
    std::uint8_t included;  // include branch was actually taken
    std::size_t uf_mark;
    std::size_t val_mark;
    double saved_ub;
    std::uint32_t saved_viol;
  };

  // Merges the components of edge e's endpoints (which must differ):
  // rescales the column endpoint's component so the new edge is tight,
  // then moves every newly intra-component pair from its 1/t cross bound
  // to its now-fixed product, counting constraint violations.
  void apply_include(std::uint32_t e) {
    const std::size_t row = e / q_, colv = p_ + e % q_;
    const std::size_t ra = uf_.find(row), rb = uf_.find(colv);
    HG_DCHECK(ra != rb, "apply_include on a cycle edge");
    a_members_.clear();
    b_members_.clear();
    for (std::size_t v = 0; v < n_; ++v) {
      const std::size_t r = uf_.find(v);
      if (r == ra)
        a_members_.push_back(v);
      else if (r == rb)
        b_members_.push_back(v);
    }
    const double f = val_[row] * val_[colv] * t_[e];
    for (std::size_t v : b_members_) {
      val_undo_.push_back({v, val_[v]});
      if (v < p_)
        val_[v] *= f;  // row shares scale up with the component
      else
        val_[v] /= f;  // column shares scale down
    }
    uf_.unite(row, colv);
    double ub = ub_;
    for (std::size_t i : a_members_) {
      if (i >= p_) continue;
      for (std::size_t jv : b_members_) {
        if (jv < p_) continue;
        ub += pair_fixed(i, jv);
      }
    }
    for (std::size_t i : b_members_) {
      if (i >= p_) continue;
      for (std::size_t jv : a_members_) {
        if (jv < p_) continue;
        ub += pair_fixed(i, jv);
      }
    }
    ub_ = ub;
  }

  // Pair (row i, column vertex jv) just became intra-component: its product
  // is now fixed. Returns the bound delta and counts a violation if the
  // pair's constraint can no longer hold.
  double pair_fixed(std::size_t i, std::size_t jv) {
    const std::size_t k = i * q_ + (jv - p_);
    const double prod = val_[i] * val_[jv];
    if (prod * t_[k] > 1.0 + kTol) ++viol_;
    return prod - inv_t_[k];
  }

  void evaluate_leaf(Candidate& best, Counters& cnt) {
    ++cnt.trees_enumerated;
    if (viol_ != 0) return;
    ++cnt.trees_acceptable;
    // Fix the (single) component's scale so that r_0 = 1.
    const double a0 = val_[0];
    double sum_r = 0.0, sum_c = 0.0;
    for (std::size_t i = 0; i < p_; ++i) sum_r += val_[i] / a0;
    for (std::size_t j = 0; j < q_; ++j) sum_c += val_[p_ + j] * a0;
    const double obj2 = sum_r * sum_c;
    if (!best.found || obj2 > best.obj2) {
      best.found = true;
      best.obj2 = obj2;
      best.edge_idx = chosen_;
    }
  }

  // True if the vertices can still be fully connected using the current
  // forest plus edges[idx..].
  bool completable(std::uint32_t idx) {
    const std::size_t mark = uf_.checkpoint();
    for (std::uint32_t e = idx; e < n_edges_; ++e)
      uf_.unite(e / q_, p_ + e % q_);
    const bool ok = uf_.components() == 1;
    uf_.rollback(mark);
    return ok;
  }

  const CycleTimeGrid& grid_;
  const std::size_t p_, q_, n_, needed_;
  const std::uint32_t n_edges_;
  const bool prune_;
  const std::vector<double>& t_;  // row-major cycle-times
  std::vector<double> inv_t_;

  UnionFind uf_;
  std::vector<double> val_;  // rows: a_i, columns (offset p_): b_j
  std::vector<ValUndo> val_undo_;
  std::vector<std::uint32_t> chosen_;  // included edge indices, ascending
  std::vector<std::size_t> a_members_, b_members_;  // merge scratch
  double ub_ = 0.0;        // admissible Obj2 upper bound for this subtree
  std::uint32_t viol_ = 0; // intra-component constraint violations
  std::uint64_t mask_ = 0; // include-bits of the current path (generation)
};

}  // namespace

ExactSolution solve_exact(const CycleTimeGrid& grid,
                          const ExactSolverOptions& opts) {
  ProfScope prof_span("exact.solve");
  const std::size_t p = grid.rows(), q = grid.cols();
  const std::uint64_t n_trees = spanning_tree_count(p, q);
  HG_CHECK(n_trees <= opts.max_trees,
           "exact solver would search " << n_trees << " spanning trees (cap "
                                        << opts.max_trees << ")");

  // Phase 1: deterministic prefix split. The generation pass walks the
  // decision tree down to kSplitDepth, applying the same structural and
  // infeasibility cuts as the executor, and emits every surviving node as
  // a task — in DFS order, which is the order ties are resolved in.
  const std::uint32_t n_edges = static_cast<std::uint32_t>(p * q);
  const std::uint32_t split_depth = std::min(n_edges, kSplitDepth);
  std::vector<PrefixTask> tasks;
  Counters gen_counters;
  {
    Search gen(grid, opts.prune);
    Candidate none;  // stays empty: the bound cut is inert while best == 0
    gen.search(0, split_depth, &tasks, none, gen_counters);
  }

  // Phase 2: execute every task with its own engine and its own incumbent.
  // Tasks never share mutable state, so scheduling order cannot change any
  // result; the pool only changes wall-clock time.
  struct TaskResult {
    Candidate best;
    Counters counters;
  };
  std::vector<TaskResult> results(tasks.size());
  auto run_task = [&](std::size_t k) {
    ProfScope task_span("exact.task");
    Search s(grid, opts.prune);
    s.replay(tasks[k]);
    s.search(tasks[k].depth, n_edges + 1, nullptr, results[k].best,
             results[k].counters);
  };
  const unsigned threads =
      std::min<std::size_t>(ThreadPool::resolve_threads(opts.threads),
                            std::max<std::size_t>(tasks.size(), 1));
  if (threads <= 1) {
    for (std::size_t k = 0; k < tasks.size(); ++k) run_task(k);
  } else {
    ThreadPool pool(threads);
    for (std::size_t k = 0; k < tasks.size(); ++k)
      pool.submit([&run_task, k] { run_task(k); });
    pool.wait_idle();
  }

  // Phase 3: deterministic merge in task (= DFS prefix) order. Strict
  // improvement keeps the earliest task on ties, and each task's incumbent
  // already is its earliest best tree in edge order, so the winner is the
  // DFS-first maximum — exactly what a serial sweep returns.
  ExactSolution out;
  out.nodes_visited = gen_counters.nodes_visited;
  out.subtrees_pruned = gen_counters.subtrees_pruned;
  const Candidate* winner = nullptr;
  for (const TaskResult& r : results) {
    out.trees_enumerated += r.counters.trees_enumerated;
    out.trees_acceptable += r.counters.trees_acceptable;
    out.nodes_visited += r.counters.nodes_visited;
    out.subtrees_pruned += r.counters.subtrees_pruned;
    if (r.best.found && (winner == nullptr || r.best.obj2 > winner->obj2))
      winner = &r.best;
  }
  HG_INTERNAL_CHECK(winner != nullptr && out.trees_acceptable > 0,
                    "no acceptable spanning tree found; at least the "
                    "bottleneck-relaxation tree must be acceptable");

  out.tree.reserve(winner->edge_idx.size());
  for (std::uint32_t e : winner->edge_idx)
    out.tree.push_back({e / q, e % q});
  const bool spanned = propagate_tree(grid, out.tree, out.alloc);
  HG_INTERNAL_CHECK(spanned, "winning edge set does not span the grid");
  out.obj2 = obj2_value(out.alloc);
  // Surface the search counters to an installed metrics registry; the
  // values are deterministic (independent of the thread count), so they
  // never perturb a byte-stable snapshot.
  if (MetricsRegistry* m = installed_metrics()) {
    m->counter("exact.nodes_visited").add(out.nodes_visited);
    m->counter("exact.subtrees_pruned").add(out.subtrees_pruned);
    m->counter("exact.trees_enumerated").add(out.trees_enumerated);
    m->counter("exact.trees_acceptable").add(out.trees_acceptable);
    m->counter("exact.solves").add(1);
  }
  return out;
}

ExactSolution solve_exact(const CycleTimeGrid& grid, std::uint64_t max_trees) {
  ExactSolverOptions opts;
  opts.max_trees = max_trees;
  return solve_exact(grid, opts);
}

bool propagate_tree(const CycleTimeGrid& grid,
                    const std::vector<BipartiteEdge>& tree,
                    GridAllocation& out) {
  const std::size_t p = grid.rows(), q = grid.cols();
  out.r.assign(p, 0.0);
  out.c.assign(q, 0.0);
  // Explicit known-flags per variable: a sentinel value would make a NaN
  // (or any propagation bug) silently pass as "known".
  std::vector<std::uint8_t> r_known(p, 0), c_known(q, 0);
  out.r[0] = 1.0;
  r_known[0] = 1;
  std::size_t remaining = p + q - 1;
  bool progress = true;
  // Sweep until all p + q values are set; each sweep fixes at least one
  // value when the edges form a tree.
  while (remaining > 0 && progress) {
    progress = false;
    for (const BipartiteEdge& e : tree) {
      if (r_known[e.row] == c_known[e.col]) continue;  // both or neither
      if (r_known[e.row]) {
        out.c[e.col] = 1.0 / (out.r[e.row] * grid(e.row, e.col));
        c_known[e.col] = 1;
      } else {
        out.r[e.row] = 1.0 / (out.c[e.col] * grid(e.row, e.col));
        r_known[e.row] = 1;
      }
      --remaining;
      progress = true;
    }
  }
  return remaining == 0;
}

std::uint64_t exact_solver_cost(std::size_t p, std::size_t q) {
  return spanning_tree_count(p, q);
}

}  // namespace hetgrid
