#include "core/exact_solver.hpp"

#include <vector>

#include "graph/spanning_tree.hpp"

namespace hetgrid {

namespace {

// Propagates r_i t_ij c_j = 1 along the tree edges starting from r[0] = 1.
// Tree edges arrive as a list; we sweep until all p + q values are set
// (each sweep fixes at least one value because the edges form a tree).
// Returns false if the tree left a variable unset (cannot happen for a
// valid spanning tree; defensive).
bool propagate(const CycleTimeGrid& grid,
               const std::vector<BipartiteEdge>& tree, GridAllocation& out) {
  const std::size_t p = grid.rows(), q = grid.cols();
  out.r.assign(p, -1.0);
  out.c.assign(q, -1.0);
  out.r[0] = 1.0;
  std::size_t remaining = p + q - 1;
  bool progress = true;
  while (remaining > 0 && progress) {
    progress = false;
    for (const BipartiteEdge& e : tree) {
      const bool r_known = out.r[e.row] >= 0.0;
      const bool c_known = out.c[e.col] >= 0.0;
      if (r_known == c_known) continue;  // both known or both unknown
      if (r_known)
        out.c[e.col] = 1.0 / (out.r[e.row] * grid(e.row, e.col));
      else
        out.r[e.row] = 1.0 / (out.c[e.col] * grid(e.row, e.col));
      --remaining;
      progress = true;
    }
  }
  return remaining == 0;
}

}  // namespace

ExactSolution solve_exact(const CycleTimeGrid& grid, std::uint64_t max_trees) {
  const std::size_t p = grid.rows(), q = grid.cols();
  const std::uint64_t n_trees = spanning_tree_count(p, q);
  HG_CHECK(n_trees <= max_trees,
           "exact solver would enumerate " << n_trees
                                           << " spanning trees (cap "
                                           << max_trees << ")");

  ExactSolution best;
  GridAllocation candidate;
  // Relative slack when checking the non-tree inequalities: propagation is a
  // chain of multiplications, so allow a little accumulated roundoff.
  constexpr double kTol = 1e-9;

  best.trees_enumerated = enumerate_spanning_trees(
      p, q, [&](const std::vector<BipartiteEdge>& tree) {
        if (!propagate(grid, tree, candidate)) return true;  // skip
        if (!is_feasible(grid, candidate, kTol)) return true;
        ++best.trees_acceptable;
        const double value = obj2_value(candidate);
        if (value > best.obj2) {
          best.obj2 = value;
          best.alloc = candidate;
        }
        return true;
      });

  HG_INTERNAL_CHECK(best.trees_acceptable > 0,
                    "no acceptable spanning tree found; at least the "
                    "bottleneck-relaxation tree must be acceptable");
  return best;
}

std::uint64_t exact_solver_cost(std::size_t p, std::size_t q) {
  return spanning_tree_count(p, q);
}

}  // namespace hetgrid
