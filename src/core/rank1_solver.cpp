#include "core/rank1_solver.hpp"

namespace hetgrid {

namespace {

GridAllocation first_row_col_allocation(const CycleTimeGrid& grid) {
  GridAllocation alloc;
  alloc.r.resize(grid.rows());
  alloc.c.resize(grid.cols());
  for (std::size_t i = 0; i < grid.rows(); ++i)
    alloc.r[i] = 1.0 / grid(i, 0);
  for (std::size_t j = 0; j < grid.cols(); ++j)
    alloc.c[j] = grid(0, 0) / grid(0, j);
  return alloc;
}

}  // namespace

std::optional<GridAllocation> solve_rank1(const CycleTimeGrid& grid,
                                          double tol) {
  if (!grid.is_rank_one(tol)) return std::nullopt;
  return first_row_col_allocation(grid);
}

GridAllocation rank1_projection(const CycleTimeGrid& grid) {
  GridAllocation alloc = first_row_col_allocation(grid);
  normalize_tight(grid, alloc);
  return alloc;
}

}  // namespace hetgrid
