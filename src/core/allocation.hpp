// Grid allocations (r_i, c_j) and the paper's objective functions.
//
// An allocation assigns r_i "row shares" to grid row i and c_j "column
// shares" to grid column j; processor P_ij is responsible for an r_i x c_j
// share of the work and finishes it in r_i * t_ij * c_j time. Obj2 (paper
// Section 4.1) maximizes (sum r)(sum c) subject to r_i t_ij c_j <= 1;
// processors whose constraint is tight run with no idle time.
#pragma once

#include <vector>

#include "core/cycle_time_grid.hpp"

namespace hetgrid {

struct GridAllocation {
  std::vector<double> r;  // one per grid row, nonnegative
  std::vector<double> c;  // one per grid column, nonnegative

  bool shapes_match(const CycleTimeGrid& grid) const {
    return r.size() == grid.rows() && c.size() == grid.cols();
  }
};

/// The matrix B with b_ij = r_i * t_ij * c_j: entry (i,j) is the busy
/// fraction of processor P_ij during one balanced time unit. B == all-ones
/// means perfect balance.
std::vector<double> workload_matrix(const CycleTimeGrid& grid,
                                    const GridAllocation& alloc);

/// Mean of the workload matrix (the paper's "average workload" in Fig 6).
double average_workload(const CycleTimeGrid& grid,
                        const GridAllocation& alloc);

/// Obj2 value (sum_i r_i) * (sum_j c_j); larger is better.
double obj2_value(const GridAllocation& alloc);

/// Obj1 value max_ij r_i t_ij c_j / ((sum r)(sum c)) with r, c as given
/// (not required to sum to 1); smaller is better. Equals 1/Obj2 whenever
/// the allocation is normalized so that max_ij r_i t_ij c_j = 1.
double obj1_value(const CycleTimeGrid& grid, const GridAllocation& alloc);

/// True if r_i * t_ij * c_j <= 1 + tol for all i, j.
bool is_feasible(const CycleTimeGrid& grid, const GridAllocation& alloc,
                 double tol = 1e-9);

/// True if the allocation is feasible AND every row and every column of B
/// contains an entry equal to 1 (within tol): no row or column share can be
/// raised without breaking a constraint.
bool is_tight(const CycleTimeGrid& grid, const GridAllocation& alloc,
              double tol = 1e-9);

/// Rescales the allocation in place so every constraint holds and every
/// row/column of B has a tight entry — the two-pass normalization of paper
/// Section 4.4.2: divide each c_j by the max of column j of B, then divide
/// each r_i by the max of row i of the updated B.
void normalize_tight(const CycleTimeGrid& grid, GridAllocation& alloc);

/// The perfect-balance upper bound on Obj2 for this grid: no allocation can
/// exceed sum_ij 1/t_ij (every processor fully busy). Equality holds iff
/// the grid is rank-1 (Section 4.3.2).
double obj2_upper_bound(const CycleTimeGrid& grid);

}  // namespace hetgrid
